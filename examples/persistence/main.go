// persistence: open a database on real files, commit transactions with a
// real fsync behind every commit, kill the instance without any shutdown,
// and reopen the directory — restart recovery replays the write-ahead log
// and the flash cache metadata from disk and every committed transaction
// is back.
//
// Run with:
//
//	go run ./examples/persistence [dir]
//
// Without an argument a temporary directory is used and removed at the
// end; with one, the database is left on disk so a second run demonstrates
// recovery across processes.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"os"

	"github.com/reprolab/face"
)

const counters = 8

func options(dir string) []face.Option {
	return []face.Option{
		face.WithDir(dir),
		face.WithPolicy(face.PolicyFaCEGSC),
		face.WithBufferPages(64),
		face.WithFlashFrames(512),
	}
}

func main() {
	dir := ""
	tmp := ""
	if len(os.Args) > 1 {
		dir = os.Args[1]
	} else {
		var err error
		if tmp, err = os.MkdirTemp("", "face-persistence-*"); err != nil {
			log.Fatal(err)
		}
		dir = tmp
	}
	// log.Fatal would skip deferred cleanup, so run the demo in a helper
	// and remove the temp directory on every outcome.
	err := run(dir)
	if tmp != "" {
		os.RemoveAll(tmp)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func run(dir string) error {
	db, err := face.Open(options(dir)...)
	if err != nil {
		return err
	}
	if rep := db.RecoveryReport(); rep != nil {
		fmt.Printf("existing database recovered: %d records scanned, %d redone, %d pages from flash\n",
			rep.RecordsScanned, rep.RedoApplied, rep.FlashReads)
	} else {
		fmt.Printf("fresh database created in %s\n", dir)
	}

	// A page per counter; each committed transaction increments one.
	ctx := context.Background()
	var ids [counters]face.PageID
	err = db.Update(ctx, func(tx *face.Tx) error {
		for i := range ids {
			var err error
			if ids[i], err = tx.Alloc(face.TypeHeap); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	var want [counters]uint64
	for n := 0; n < 100; n++ {
		i := n % counters
		err := db.Update(ctx, func(tx *face.Tx) error {
			return tx.Modify(ids[i], func(buf face.PageBuf) error {
				v := binary.LittleEndian.Uint64(buf.Payload()) + 1
				binary.LittleEndian.PutUint64(buf.Payload(), v)
				want[i] = v
				return nil
			})
		})
		if err != nil {
			return err
		}
	}
	fmt.Printf("committed 100 increments across %d pages (every commit fsynced)\n", counters)

	// Kill the instance: buffer pool, log tail and cache metadata are
	// gone; only the files remain.
	db.Crash()
	fmt.Println("crashed without shutdown")

	// Reopen the same directory: recovery is automatic.
	db2, err := face.Open(options(dir)...)
	if err != nil {
		return err
	}
	defer db2.Close()
	rep := db2.RecoveryReport()
	if rep == nil {
		return fmt.Errorf("reopen ran no recovery")
	}
	fmt.Printf("recovered: %d records scanned, %d redone, %d winner / %d loser txns\n",
		rep.RecordsScanned, rep.RedoApplied, rep.WinnerTxns, rep.LoserTxns)

	err = db2.View(ctx, func(tx *face.Tx) error {
		for i, id := range ids {
			if err := tx.Read(id, func(buf face.PageBuf) error {
				got := binary.LittleEndian.Uint64(buf.Payload())
				if got != want[i] {
					return fmt.Errorf("page %d: recovered %d, committed %d", id, got, want[i])
				}
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Println("all committed counters intact after kill-and-reopen")
	return nil
}
