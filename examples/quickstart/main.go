// Quickstart: open a database with a FaCE flash cache extension, run a few
// transactions against it, and print the cache statistics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/page"
)

func main() {
	// Devices: an 8-disk RAID-0 array for the database, one disk for the
	// write-ahead log and an MLC SSD for the flash cache.  All devices are
	// calibrated simulators (see internal/device); contents are real,
	// service times are simulated.
	dataDev := device.NewArray("data", device.ProfileCheetah15K, 8, 32768)
	logDev := device.New("log", device.ProfileCheetah15K, 1<<16)
	flashDev := device.New("flash", device.ProfileSamsung470, 4096)

	db, err := engine.Open(engine.Config{
		DataDev:     dataDev,
		LogDev:      logDev,
		FlashDev:    flashDev,
		BufferPages: 64,                   // DRAM buffer pool
		Policy:      engine.PolicyFaCEGSC, // FaCE with Group Second Chance
		FlashFrames: 1024,                 // flash cache capacity in pages
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Allocate a thousand pages and store a counter in each.
	tx, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	var ids []page.ID
	for i := 0; i < 1000; i++ {
		id, err := tx.Alloc(page.TypeHeap)
		if err != nil {
			log.Fatal(err)
		}
		if err := tx.Modify(id, func(buf page.Buf) error {
			binary.LittleEndian.PutUint64(buf.Payload(), uint64(i))
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Read everything back a few times.  The working set does not fit in
	// the 64-page DRAM buffer, so most reads are served by the flash cache
	// rather than the disk array.
	for round := 0; round < 3; round++ {
		tx, err := db.Begin()
		if err != nil {
			log.Fatal(err)
		}
		var sum uint64
		for _, id := range ids {
			if err := tx.Read(id, func(buf page.Buf) error {
				sum += binary.LittleEndian.Uint64(buf.Payload())
				return nil
			}); err != nil {
				log.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: checksum %d\n", round+1, sum)
	}

	pool := db.Pool().Stats()
	cache := db.Cache().Stats()
	fmt.Printf("\nDRAM buffer:  %.1f%% hit rate (%d hits / %d accesses)\n",
		pool.HitRate()*100, pool.Hits, pool.Hits+pool.Misses)
	fmt.Printf("Flash cache:  %.1f%% hit rate, %.1f%% of dirty evictions absorbed\n",
		cache.HitRate()*100, cache.WriteReduction()*100)
	fmt.Printf("Flash device: %d page reads, %d page writes (sequential append-only)\n",
		cache.FlashPageReads, cache.FlashPageWrites)
	fmt.Printf("Disk array:   %d reads, %d writes\n",
		dataDev.Stats().Reads(), dataDev.Stats().Writes())
	fmt.Printf("Simulated elapsed time: %v\n", db.Elapsed())
}
