// Quickstart: open a database with a FaCE flash cache extension through
// the public options API, run concurrent View/Update transactions against
// it, and print the cache statistics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"github.com/reprolab/face"
)

func main() {
	ctx := context.Background()

	// Devices: an 8-disk RAID-0 array for the database, one disk for the
	// write-ahead log and an MLC SSD for the flash cache.  All devices are
	// calibrated simulators (see internal/device); contents are real,
	// service times are simulated.
	dataDev := face.NewDiskArray("data", 8, 32768)

	db, err := face.Open(
		face.WithDevices(dataDev, face.NewDisk("log", 1<<16)),
		face.WithFlashDevice(face.NewSSD("flash", 4096)),
		face.WithPolicy(face.PolicyFaCEGSC), // FaCE with Group Second Chance
		face.WithBufferPages(64),            // DRAM buffer pool
		face.WithFlashFrames(1024),          // flash cache capacity in pages
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Allocate a thousand pages and store a counter in each.  Update runs
	// the closure in a read-write transaction and commits it on nil.
	var ids []face.PageID
	err = db.Update(ctx, func(tx *face.Tx) error {
		for i := 0; i < 1000; i++ {
			id, err := tx.Alloc(face.TypeHeap)
			if err != nil {
				return err
			}
			if err := tx.Modify(id, func(buf face.PageBuf) error {
				binary.LittleEndian.PutUint64(buf.Payload(), uint64(i))
				return nil
			}); err != nil {
				return err
			}
			ids = append(ids, id)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Read everything back from several goroutines at once: View
	// transactions share the read side of the transaction scheduler and
	// run in parallel.  The working set does not fit in the 64-page DRAM
	// buffer, so most reads are served by the flash cache rather than the
	// disk array.
	var wg sync.WaitGroup
	for round := 1; round <= 3; round++ {
		round := round
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum uint64
			err := db.View(ctx, func(tx *face.Tx) error {
				for _, id := range ids {
					if err := tx.Read(id, func(buf face.PageBuf) error {
						sum += binary.LittleEndian.Uint64(buf.Payload())
						return nil
					}); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("reader %d: checksum %d\n", round, sum)
		}()
	}
	wg.Wait()

	pool := db.Pool().Stats()
	cache := db.Cache().Stats()
	fmt.Printf("\nDRAM buffer:  %.1f%% hit rate (%d hits / %d accesses)\n",
		pool.HitRate()*100, pool.Hits, pool.Hits+pool.Misses)
	fmt.Printf("Flash cache:  %.1f%% hit rate, %.1f%% of dirty evictions absorbed\n",
		cache.HitRate()*100, cache.WriteReduction()*100)
	fmt.Printf("Flash device: %d page reads, %d page writes (sequential append-only)\n",
		cache.FlashPageReads, cache.FlashPageWrites)
	fmt.Printf("Disk array:   %d reads, %d writes\n",
		dataDev.Stats().Reads(), dataDev.Stats().Writes())
	fmt.Printf("Simulated elapsed time: %v\n", db.Elapsed())
}
