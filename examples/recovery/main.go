// recovery: crash a running TPC-C system in the middle of a checkpoint
// interval and measure how long the restart takes with and without the
// FaCE flash cache — the paper's Table 6 experiment in miniature.
//
// Run with:
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/reprolab/face"
	"github.com/reprolab/face/internal/bench"
)

func main() {
	opts := bench.QuickOptions()
	opts.Progress = os.Stderr

	golden, err := bench.BuildGolden(opts)
	if err != nil {
		log.Fatal(err)
	}

	interval := 500 * time.Millisecond
	fmt.Printf("Crashing the system halfway through a %v checkpoint interval...\n\n", interval)

	faceRun, err := golden.RunRecovery(bench.RunSpec{
		Policy:          face.PolicyFaCEGSC,
		CacheFraction:   opts.RecoveryCacheFraction,
		BufferPages:     opts.RecoveryBufferPages,
		CheckpointEvery: interval,
		Label:           "FaCE+GSC",
	}, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	hdd, err := golden.RunRecovery(bench.RunSpec{
		Policy:          face.PolicyNone,
		BufferPages:     opts.RecoveryBufferPages,
		CheckpointEvery: interval,
		Label:           "HDD-only",
	}, 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	report := func(r bench.RecoveryRun) {
		fmt.Printf("%-10s restart %-10v (metadata restore %v, %d pages from flash, %d from disk, %d redo)\n",
			r.Label, r.RestartTime.Round(time.Millisecond), r.MetadataRestoreTime.Round(time.Microsecond),
			r.FlashReads, r.DiskReads, r.RedoApplied)
	}
	report(faceRun)
	report(hdd)
	if faceRun.RestartTime > 0 {
		fmt.Printf("\nFaCE restarts %.1fx faster: most pages needed during recovery are served\n",
			float64(hdd.RestartTime)/float64(faceRun.RestartTime))
		fmt.Println("from the persistent flash cache instead of random disk reads (paper §5.5).")
	}
}
