// recovery: crash a running TPC-C system in the middle of a checkpoint
// interval and measure how long the restart takes with and without the
// FaCE flash cache — the paper's Table 6 experiment in miniature.
//
// Run with:
//
//	go run ./examples/recovery
//	go run ./examples/recovery -dir $(mktemp -d)
//
// With -dir the experiment runs on persistent file-backed devices: the
// crash really closes the device files, the restart reopens them from
// the directory, and the reported wall-clock restart time is the
// downtime a served deployment (cmd/faced) would observe.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/reprolab/face"
	"github.com/reprolab/face/internal/bench"
)

func main() {
	dir := flag.String("dir", "", "run on file-backed devices in this directory (default: simulated in-memory devices)")
	nofsync := flag.Bool("nofsync", false, "with -dir, skip the fsync durability barrier")
	flag.Parse()

	opts := bench.QuickOptions()
	opts.Progress = os.Stderr
	opts.Dir = *dir
	opts.NoFsync = *nofsync

	golden, err := bench.BuildGolden(opts)
	if err != nil {
		log.Fatal(err)
	}

	interval := 500 * time.Millisecond
	fmt.Printf("Crashing the system halfway through a %v checkpoint interval...\n\n", interval)

	faceRun, err := golden.RunRecovery(bench.RunSpec{
		Policy:          face.PolicyFaCEGSC,
		CacheFraction:   opts.RecoveryCacheFraction,
		BufferPages:     opts.RecoveryBufferPages,
		CheckpointEvery: interval,
		Label:           "FaCE+GSC",
	}, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	hdd, err := golden.RunRecovery(bench.RunSpec{
		Policy:          face.PolicyNone,
		BufferPages:     opts.RecoveryBufferPages,
		CheckpointEvery: interval,
		Label:           "HDD-only",
	}, 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	report := func(r bench.RecoveryRun) {
		fmt.Printf("%-10s restart %-10v wall %-10v (metadata restore %v, %d pages from flash, %d from disk, %d redo)\n",
			r.Label, r.RestartTime.Round(time.Millisecond), r.RestartWall.Round(time.Millisecond),
			r.MetadataRestoreTime.Round(time.Microsecond),
			r.FlashReads, r.DiskReads, r.RedoApplied)
	}
	report(faceRun)
	report(hdd)
	if faceRun.RestartTime > 0 {
		fmt.Printf("\nFaCE restarts %.1fx faster: most pages needed during recovery are served\n",
			float64(hdd.RestartTime)/float64(faceRun.RestartTime))
		fmt.Println("from the persistent flash cache instead of random disk reads (paper §5.5).")
	}
	if *dir != "" {
		fmt.Println("\nWall-clock restart measured over a real close-and-reopen of the device")
		fmt.Printf("files in %s — the kill-and-restart path cmd/faced takes.\n", *dir)
	}
}
