// tpccbench: load a small TPC-C database and compare the transaction
// throughput of the LC baseline against FaCE+GSC at the same flash cache
// size — the core comparison of the paper's Figure 4.
//
// Run with:
//
//	go run ./examples/tpccbench
//
// With -terminals N every configuration runs under the page-lock (2PL)
// transaction scheduler with N concurrent terminal goroutines issuing the
// mix (deadlock victims are retried), instead of the single-stream driver:
//
//	go run ./examples/tpccbench -terminals 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/reprolab/face"
	"github.com/reprolab/face/internal/bench"
)

func main() {
	terminals := flag.Int("terminals", 0, "concurrent terminals under the 2PL scheduler (0 = single-stream driver)")
	flag.Parse()

	opts := bench.QuickOptions()
	opts.Warehouses = 1
	opts.Progress = os.Stderr
	if *terminals >= 1 {
		opts.Terminals = *terminals
		fmt.Printf("Scheduler: page-level 2PL, %d terminal(s) (deadlock victims retried)\n", *terminals)
	}

	golden, err := bench.BuildGolden(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-C database: %d warehouses, %d pages (%.1f MB)\n\n",
		opts.Warehouses, golden.DBPages(), float64(golden.DBPages())*4096/1e6)

	var results []bench.Result
	// Policies are selected by registry name; the face.Policy* constants
	// name the built-in schemes.
	for _, spec := range []bench.RunSpec{
		{Policy: face.PolicyNone, Label: "HDD-only"},
		{Policy: face.PolicyLC, CacheFraction: 0.15, Label: "LC (LRU write-back)"},
		{Policy: face.PolicyFaCE, CacheFraction: 0.15, Label: "FaCE (mvFIFO)"},
		{Policy: face.PolicyFaCEGSC, CacheFraction: 0.15, Label: "FaCE+GSC"},
		{Policy: face.PolicyNone, DataOnFlash: true, Label: "SSD-only"},
	} {
		res, err := golden.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
	}

	fmt.Println(bench.FormatResults("TPC-C throughput, flash cache = 15% of the database", results))
	fmt.Println("Expected shape (paper, Section 5.3): FaCE+GSC > FaCE > LC, every flash")
	fmt.Println("cache beats HDD-only, and FaCE+GSC with a small cache beats SSD-only.")
	if *terminals >= 1 {
		for _, r := range results {
			if r.PageLocks {
				fmt.Printf("%-20s lock waits=%d (%v) deadlock retries=%d group-commit fan-in=%.2f\n",
					r.Label, r.Locks.Waits, r.Locks.WaitTime, r.DeadlockRetries, r.GroupCommit.FanIn())
			}
		}
	}
}
