// tpccbench: load a small TPC-C database and compare the transaction
// throughput of the LC baseline against FaCE+GSC at the same flash cache
// size — the core comparison of the paper's Figure 4.
//
// Run with:
//
//	go run ./examples/tpccbench
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/reprolab/face"
	"github.com/reprolab/face/internal/bench"
)

func main() {
	opts := bench.QuickOptions()
	opts.Warehouses = 1
	opts.Progress = os.Stderr

	golden, err := bench.BuildGolden(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-C database: %d warehouses, %d pages (%.1f MB)\n\n",
		opts.Warehouses, golden.DBPages(), float64(golden.DBPages())*4096/1e6)

	var results []bench.Result
	// Policies are selected by registry name; the face.Policy* constants
	// name the built-in schemes.
	for _, spec := range []bench.RunSpec{
		{Policy: face.PolicyNone, Label: "HDD-only"},
		{Policy: face.PolicyLC, CacheFraction: 0.15, Label: "LC (LRU write-back)"},
		{Policy: face.PolicyFaCE, CacheFraction: 0.15, Label: "FaCE (mvFIFO)"},
		{Policy: face.PolicyFaCEGSC, CacheFraction: 0.15, Label: "FaCE+GSC"},
		{Policy: face.PolicyNone, DataOnFlash: true, Label: "SSD-only"},
	} {
		res, err := golden.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
	}

	fmt.Println(bench.FormatResults("TPC-C throughput, flash cache = 15% of the database", results))
	fmt.Println("Expected shape (paper, Section 5.3): FaCE+GSC > FaCE > LC, every flash")
	fmt.Println("cache beats HDD-only, and FaCE+GSC with a small cache beats SSD-only.")
}
