// Command faceload drives a faced server with an open-loop workload and
// reports served-traffic results in the facebench JSON schema
// (bench.ReportSchema).
//
// Usage:
//
//	faceload -addr host:port [flags]
//	faceload -addr host:port -preload 10000        # load keys 0..9999
//	faceload -addr host:port -verify 10000         # check keys 0..9999
//
// The generator is open-loop: requests arrive on a fixed schedule at
// -qps regardless of how fast the server answers, the way independent
// clients would.  Latency is measured from each request's scheduled
// arrival, so server stalls surface as latency instead of being hidden
// by coordinated omission; arrivals that find every worker busy are
// counted as dropped.  BUSY responses (admission control shedding load)
// are counted, not retried, so overload stays visible in the report.
//
// Keys are drawn from a Zipf distribution over -keys keys with exponent
// -skew (use 0 for uniform); -reads sets the GET fraction, the rest are
// SETs of -value-byte payloads.
//
// With -metrics pointing at faced's -metrics-addr, the generator scrapes
// the server's /metrics endpoint when the run ends and folds the
// server-side GET/SET latency quantiles, the admission shed count, and
// the pinned anomaly-trace count into the report, making the
// client-vs-server latency gap (queueing) visible alongside the
// open-loop client percentiles.
//
// By default every request carries a client-minted trace ID (-trace),
// so anomaly traces pinned in the server's span journal — retrievable
// from faced's /debug/traces endpoint — correlate with this run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/reprolab/face/internal/bench"
	"github.com/reprolab/face/internal/server/client"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type counters struct {
	mu        sync.Mutex
	succeeded int64
	notFound  int64
	busy      int64
	timeouts  int64
	errors    int64
	latencies []time.Duration
	lastErr   error
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faceload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:4320", "faced address")
		ns       = fs.String("ns", "bench", "namespace to drive")
		conns    = fs.Int("conns", 8, "client TCP connections")
		workers  = fs.Int("workers", 64, "maximum in-flight requests")
		qps      = fs.Float64("qps", 5000, "open-loop offered arrival rate (requests/second)")
		duration = fs.Duration("duration", 10*time.Second, "measurement duration")
		reads    = fs.Float64("reads", 0.8, "fraction of requests that are GETs")
		keys     = fs.Uint64("keys", 100000, "key-space size")
		value    = fs.Int("value", 128, "SET value size in bytes")
		skew     = fs.Float64("skew", 1.1, "Zipf exponent over the key space (0 = uniform, else > 1)")
		seed     = fs.Int64("seed", 1, "workload random seed")
		timeout  = fs.Duration("timeout", 2*time.Second, "per-request deadline sent to the server")
		preload  = fs.Uint64("preload", 0, "load keys 0..N-1 sequentially and exit")
		verify   = fs.Uint64("verify", 0, "verify keys 0..N-1 exist and exit")
		jsonOut  = fs.Bool("json", false, "emit a facebench JSON report instead of text")
		label    = fs.String("label", "", "label for the result (default: derived from the workload)")
		metrics  = fs.String("metrics", "", "faced /metrics URL to scrape at run end (folds server-side p99 + shed into the report)")
		traced   = fs.Bool("trace", true, "attach a trace ID to every request so server-side anomaly traces correlate with this run")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	c, err := client.Dial(*addr, client.Options{Conns: *conns, RequestTimeout: *timeout, Trace: *traced})
	if err != nil {
		fmt.Fprintf(stderr, "faceload: %v\n", err)
		return 1
	}
	defer c.Close()
	if err := c.Create(*ns); err != nil {
		fmt.Fprintf(stderr, "faceload: create %s: %v\n", *ns, err)
		return 1
	}

	if *preload > 0 {
		if err := doPreload(c, *ns, *preload, *value); err != nil {
			fmt.Fprintf(stderr, "faceload: preload: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "preloaded %d keys into %s\n", *preload, *ns)
		return 0
	}
	if *verify > 0 {
		if err := doVerify(c, *ns, *verify); err != nil {
			fmt.Fprintf(stderr, "faceload: verify: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "verified %d keys in %s\n", *verify, *ns)
		return 0
	}

	res := drive(c, driveConfig{
		ns: *ns, conns: *conns, workers: *workers, qps: *qps,
		duration: *duration, reads: *reads, keys: *keys,
		value: *value, skew: *skew, seed: *seed,
	}, stderr)
	if *label != "" {
		res.Label = *label
	}
	if *metrics != "" {
		if err := scrapeMetrics(*metrics, res); err != nil {
			fmt.Fprintf(stderr, "faceload: metrics scrape: %v\n", err)
		}
	}

	if *jsonOut {
		rep := &bench.Report{
			Schema:      bench.ReportSchema,
			Experiments: map[string]any{"serve": res},
		}
		if err := rep.Write(stdout); err != nil {
			fmt.Fprintf(stderr, "faceload: %v\n", err)
			return 1
		}
		return 0
	}
	bench.FormatServe(stdout, res)
	return 0
}

// scrapeMetrics fetches the server's Prometheus /metrics endpoint and
// folds the server-side latency quantiles and shed count into the serve
// result, so the client-vs-server latency gap (queueing) is visible in
// one report.  A bare host:port is accepted and completed to a URL.
func scrapeMetrics(url string, res *bench.ServeResult) error {
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(url, "/metrics") {
		url = strings.TrimRight(url, "/") + "/metrics"
	}
	hc := &http.Client{Timeout: 5 * time.Second}
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	res.FillServerMetrics(string(body))
	return nil
}

func doPreload(c *client.Client, ns string, n uint64, size int) error {
	val := make([]byte, size)
	for i := range val {
		val[i] = byte(i)
	}
	for k := uint64(0); k < n; k++ {
		// Preload is correctness setup, so BUSY is retried here.
		for {
			err := c.Set(ns, k, val)
			if err == nil {
				break
			}
			if !errors.Is(err, client.ErrBusy) {
				return fmt.Errorf("key %d: %w", k, err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

func doVerify(c *client.Client, ns string, n uint64) error {
	for k := uint64(0); k < n; k++ {
		_, found, err := c.Get(ns, k)
		if err != nil {
			return fmt.Errorf("key %d: %w", k, err)
		}
		if !found {
			return fmt.Errorf("key %d: missing", k)
		}
	}
	return nil
}

type driveConfig struct {
	ns       string
	conns    int
	workers  int
	qps      float64
	duration time.Duration
	reads    float64
	keys     uint64
	value    int
	skew     float64
	seed     int64
}

// job is one scheduled arrival.
type job struct {
	at time.Time
}

func drive(c *client.Client, cfg driveConfig, stderr io.Writer) *bench.ServeResult {
	if cfg.qps <= 0 {
		cfg.qps = 1
	}
	if cfg.workers <= 0 {
		cfg.workers = 1
	}
	val := make([]byte, cfg.value)
	for i := range val {
		val[i] = byte(i * 7)
	}

	var (
		cnt     counters
		dropped int64
		issued  int64
		wg      sync.WaitGroup
	)
	jobs := make(chan job) // unbuffered: a full pool drops, open-loop style

	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			var zipf *rand.Zipf
			if cfg.skew > 1 {
				zipf = rand.NewZipf(rng, cfg.skew, 1, cfg.keys-1)
			}
			for j := range jobs {
				var key uint64
				if zipf != nil {
					key = zipf.Uint64()
				} else {
					key = rng.Uint64() % cfg.keys
				}
				var err error
				var found bool
				if rng.Float64() < cfg.reads {
					_, found, err = c.Get(cfg.ns, key)
				} else {
					err = c.Set(cfg.ns, key, val)
					found = true
				}
				// Open-loop latency: from the scheduled arrival, not from
				// the moment a worker got around to sending.
				d := time.Since(j.at)
				cnt.mu.Lock()
				switch {
				case err == nil && found:
					cnt.succeeded++
					cnt.latencies = append(cnt.latencies, d)
				case err == nil:
					cnt.notFound++
					cnt.latencies = append(cnt.latencies, d)
				case errors.Is(err, client.ErrBusy):
					cnt.busy++
				case errors.Is(err, client.ErrTimeout):
					cnt.timeouts++
				default:
					cnt.errors++
					cnt.lastErr = err
				}
				cnt.mu.Unlock()
			}
		}(w)
	}

	interval := time.Duration(float64(time.Second) / cfg.qps)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	start := time.Now()
	end := start.Add(cfg.duration)
	next := start
	for next.Before(end) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		select {
		case jobs <- job{at: next}:
			issued++
		default:
			dropped++ // every worker busy: the arrival is abandoned, not delayed
		}
		next = next.Add(interval)
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	if cnt.lastErr != nil {
		fmt.Fprintf(stderr, "faceload: last error: %v\n", cnt.lastErr)
	}

	res := &bench.ServeResult{
		Label:        fmt.Sprintf("%s @ %.0f qps", cfg.ns, cfg.qps),
		Conns:        cfg.conns,
		Workers:      cfg.workers,
		OfferedQPS:   cfg.qps,
		Duration:     elapsed,
		Requests:     issued,
		Succeeded:    cnt.succeeded,
		NotFound:     cnt.notFound,
		Busy:         cnt.busy,
		Timeouts:     cnt.timeouts,
		Errors:       cnt.errors,
		Dropped:      dropped,
		ReadFraction: cfg.reads,
		ValueSize:    cfg.value,
		Keys:         cfg.keys,
		Skew:         cfg.skew,
	}
	res.AchievedQPS = float64(cnt.succeeded+cnt.notFound) / elapsed.Seconds()
	res.FillPercentiles(cnt.latencies)
	return res
}
