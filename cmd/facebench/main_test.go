package main

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/reprolab/face/internal/bench"
)

func TestPoliciesText(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"policies"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, p := range []string{"face", "face+gr", "face+gsc", "lc", "wt", "none"} {
		if !strings.Contains(out.String(), p) {
			t.Fatalf("policies output missing %q:\n%s", p, out.String())
		}
	}
}

func TestPoliciesJSON(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-json", "policies"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	// Every -json invocation emits the same versioned envelope.
	var doc struct {
		Schema      string `json:"schema"`
		Experiments struct {
			Policies []string `json:"policies"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if doc.Schema != bench.ReportSchema {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if len(doc.Experiments.Policies) < 6 {
		t.Fatalf("policies = %v", doc.Experiments.Policies)
	}
}

func TestTable1JSONUsesEnvelope(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-json", "table1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var doc struct {
		Schema      string         `json:"schema"`
		Experiments map[string]any `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if doc.Schema != bench.ReportSchema || doc.Experiments["table1"] == nil {
		t.Fatalf("envelope malformed: schema=%q keys=%v", doc.Schema, doc.Experiments)
	}
}

func TestTable1Text(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"table1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Fatalf("table1 output malformed:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-quick", "nope"}, &out, &errOut); code == 0 {
		t.Fatal("unknown experiment accepted")
	}
}
