// Command facebench regenerates the tables and figures of the FaCE paper's
// evaluation (Section 5) against the simulated device stack.
//
// Usage:
//
//	facebench [flags] <experiment>
//
// Experiments:
//
//	table1    device price/performance characteristics
//	table3    flash cache hit ratio and write reduction vs cache size
//	table4    flash device utilization and I/O throughput vs cache size
//	fig4      transaction throughput vs cache size (MLC and SLC SSDs)
//	table5    equal-cost DRAM vs flash increments
//	fig5      throughput vs number of RAID-0 disks
//	table6    restart time after a crash vs checkpoint interval
//	fig6      post-restart throughput timeline
//	lockmgr   single-writer vs page-level 2PL scheduler at 1/2/4/8 terminals
//	shards    striped vs single-mutex buffer pool and cache directory at
//	          1/2/4/8 terminals (wall-clock hit-path scaling)
//	wal       mutex-compat WAL front end vs the lock-free reservation
//	          pipeline at 1/2/4/8 terminals (force coalescing)
//	obs       observability layer cost: commit-path phase tracing and
//	          histograms on vs off (wall-clock overhead, phase p99s)
//	trace     request-scoped span tracer cost: tracing on vs off vs
//	          observability off (wall-clock overhead, journal activity)
//	ablations design-choice ablations (sync policy, async I/O, group size,
//	          segment size, lock manager)
//	policies  list the registered cache policies
//	all       every experiment above, in order
//
// With -terminals N the throughput experiments run under the page-lock
// (2PL) transaction scheduler with N concurrent terminal goroutines,
// retrying transactions that lose a deadlock; the default keeps the
// paper-faithful single-stream driver.
//
// With -dir PATH every configuration runs on persistent file-backed
// devices in a fresh subdirectory of PATH instead of the simulated
// in-memory devices: real pread/pwrite I/O, a real fsync on every commit
// force and checkpoint, and restart recovery replaying from real files.
// Wall-clock tpmC becomes the headline column; the simulated-time figures
// no longer model the run.  -wallclock adds the wall-clock columns without
// changing the backend, and -nofsync disables the durability barrier for
// faster sweeps:
//
//	facebench -quick -dir $(mktemp -d) table3
//	facebench -quick -dir $(mktemp -d) shards
//
// With -json the results are emitted as one machine-readable JSON document
// (schema bench.ReportSchema, currently "facebench/v8") instead of text
// tables, so a perf trajectory can be tracked across commits, e.g.:
//
//	facebench -quick -json ablations > BENCH_ablations.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/reprolab/face"
	"github.com/reprolab/face/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("facebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		warehouses = fs.Int("warehouses", 0, "TPC-C warehouses (0 = default scale)")
		quick      = fs.Bool("quick", false, "use the small test scale instead of the default scale")
		warmup     = fs.Int("warmup", 0, "warm-up transactions per configuration (0 = default)")
		measure    = fs.Int("measure", 0, "measured transactions per configuration (0 = default)")
		verbose    = fs.Bool("v", false, "print one progress line per completed run")
		seed       = fs.Int64("seed", 0, "workload random seed (0 = default)")
		jsonOut    = fs.Bool("json", false, "emit machine-readable JSON instead of text tables")
		terminals  = fs.Int("terminals", 0, "run throughput experiments from N concurrent terminals under the 2PL scheduler (0 = classic single-stream driver)")
		shards     = fs.Int("shards", 0, "stripe the DRAM buffer pool and flash cache directory over N shards (0 = 1, the single-mutex structures)")
		dir        = fs.String("dir", "", "run on persistent file-backed devices in subdirectories of this path (default: simulated in-memory devices)")
		wallclock  = fs.Bool("wallclock", false, "show wall-clock throughput columns even on the in-memory backend")
		nofsync    = fs.Bool("nofsync", false, "disable the fsync durability barrier of the file backend (-dir)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: facebench [flags] <table1|table3|table4|fig4|table5|fig5|table6|fig6|lockmgr|shards|wal|obs|trace|ablations|policies|all>\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	what := strings.ToLower(fs.Arg(0))

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	if *warehouses > 0 {
		opts.Warehouses = *warehouses
	}
	if *warmup > 0 {
		opts.WarmupTx = *warmup
	}
	if *measure > 0 {
		opts.MeasureTx = *measure
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *terminals > 0 {
		opts.Terminals = *terminals
	}
	if *shards > 0 {
		opts.Shards = *shards
	}
	if *dir != "" {
		opts.Dir = *dir
	}
	if *wallclock {
		opts.Wallclock = true
	}
	if *nofsync {
		opts.NoFsync = true
	}
	if *verbose {
		opts.Progress = stderr
	}

	// Table 1 and the policy listing need no database; with -json they
	// still use the same facebench/v1 envelope as every other experiment.
	if what == "table1" || what == "policies" {
		if *jsonOut {
			rep := bench.NewStaticReport(opts)
			if what == "table1" {
				rep.Add("table1", bench.Table1DeviceCharacteristics())
			} else {
				rep.Add("policies", face.Policies())
			}
			if err := rep.Write(stdout); err != nil {
				fmt.Fprintf(stderr, "facebench: %v\n", err)
				return 1
			}
			return 0
		}
		if what == "table1" {
			fmt.Fprintln(stdout, bench.FormatTable1(bench.Table1DeviceCharacteristics()))
		} else {
			printPolicies(stdout)
		}
		return 0
	}

	start := time.Now()
	golden, err := bench.BuildGolden(opts)
	if err != nil {
		fmt.Fprintf(stderr, "facebench: %v\n", err)
		return 1
	}
	if *verbose {
		fmt.Fprintf(stderr, "golden database built in %v\n", time.Since(start).Round(time.Millisecond))
	}

	var report *bench.Report
	if *jsonOut {
		report = bench.NewReport(golden)
	}

	experiments := []string{what}
	if what == "all" {
		experiments = []string{"table1", "table3", "table4", "fig4", "table5", "fig5", "table6", "fig6", "lockmgr", "shards", "wal", "obs", "trace", "ablations"}
	}
	for _, exp := range experiments {
		if err := runExperiment(golden, exp, stdout, report); err != nil {
			fmt.Fprintf(stderr, "facebench %s: %v\n", exp, err)
			return 1
		}
	}
	if report != nil {
		if err := report.Write(stdout); err != nil {
			fmt.Fprintf(stderr, "facebench: %v\n", err)
			return 1
		}
	}
	if *verbose {
		fmt.Fprintf(stderr, "total wall-clock time: %v\n", time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// runExperiment executes one experiment.  With a non-nil report the raw
// result structs are recorded there; otherwise the text tables are printed.
func runExperiment(g *bench.Golden, what string, out io.Writer, report *bench.Report) error {
	record := func(name string, data any, text func() string) {
		if report != nil {
			report.Add(name, data)
			return
		}
		fmt.Fprintln(out, text())
	}
	switch what {
	case "table1":
		rows := bench.Table1DeviceCharacteristics()
		record("table1", rows, func() string { return bench.FormatTable1(rows) })
	case "table3", "table4", "table3+4":
		sweep, err := g.CacheSweep(nil, nil)
		if err != nil {
			return err
		}
		if what != "table4" {
			record("table3", sweep, func() string { return bench.FormatTable3(sweep) })
		}
		if what != "table3" {
			record("table4", sweep, func() string { return bench.FormatTable4(sweep) })
		}
	case "fig4":
		for _, ssd := range []string{"mlc", "slc"} {
			profile := g.Options().MLCProfile
			if ssd == "slc" {
				profile = g.Options().SLCProfile
			}
			fig, err := g.Figure4Throughput(profile)
			if err != nil {
				return err
			}
			record("fig4_"+ssd, fig, func() string { return bench.FormatFigure4(fig) })
		}
	case "table5":
		rows, err := g.Table5DRAMvsFlash(5)
		if err != nil {
			return err
		}
		record("table5", rows, func() string { return bench.FormatTable5(rows) })
	case "fig5":
		fig, err := g.Figure5DiskScaling(0)
		if err != nil {
			return err
		}
		record("fig5", fig, func() string { return bench.FormatFigure5(fig) })
	case "table6":
		rows, err := g.Table6RecoveryTime(0)
		if err != nil {
			return err
		}
		record("table6", rows, func() string { return bench.FormatTable6(rows) })
	case "fig6":
		fig, err := g.Figure6PostRestartThroughput(0)
		if err != nil {
			return err
		}
		record("fig6", fig, func() string { return bench.FormatFigure6(fig) })
	case "lockmgr":
		rows, err := g.AblationLockManager(nil)
		if err != nil {
			return err
		}
		record("ablation_lock_manager", rows, func() string { return bench.FormatLockAblation(rows) })
	case "shards":
		// -shards N compares {1, N} stripes and -terminals M sweeps
		// {1, M} terminals; without them the ablation uses its defaults
		// (1 vs GOMAXPROCS-derived stripes at 1/2/4/8 terminals).
		var shardCounts, terminalCounts []int
		if s := g.Options().Shards; s > 1 {
			shardCounts = []int{1, s}
		}
		if n := g.Options().Terminals; n > 1 {
			terminalCounts = []int{1, n}
		}
		rows, err := g.AblationShards(shardCounts, terminalCounts)
		if err != nil {
			return err
		}
		record("ablation_shards", rows, func() string { return bench.FormatShardAblation(rows) })
	case "wal":
		// -terminals M sweeps {1, M} terminals; without it the ablation
		// uses its default 1/2/4/8 sweep.  Both WAL front ends run at
		// every count.
		var terminalCounts []int
		if n := g.Options().Terminals; n > 1 {
			terminalCounts = []int{1, n}
		}
		rows, err := g.AblationWalPipeline(terminalCounts)
		if err != nil {
			return err
		}
		record("ablation_wal_pipeline", rows, func() string { return bench.FormatWalAblation(rows) })
	case "obs":
		// -terminals M compares {1, M} terminals; without it the ablation
		// uses its default {1, 4}.  Each count runs with observability on
		// and off.
		var terminalCounts []int
		if n := g.Options().Terminals; n > 1 {
			terminalCounts = []int{1, n}
		}
		rows, err := g.AblationObservability(terminalCounts)
		if err != nil {
			return err
		}
		record("ablation_observability", rows, func() string { return bench.FormatObsAblation(rows) })
	case "trace":
		// -terminals M compares {1, M} terminals; without it the ablation
		// uses its default {1, 4}.  Each count runs with the span tracer
		// on, the tracer off, and the whole observability layer off.
		var terminalCounts []int
		if n := g.Options().Terminals; n > 1 {
			terminalCounts = []int{1, n}
		}
		rows, err := g.AblationTracing(terminalCounts)
		if err != nil {
			return err
		}
		record("ablation_tracing", rows, func() string { return bench.FormatTraceAblation(rows) })
	case "ablations":
		sync, err := g.AblationSyncPolicy(0)
		if err != nil {
			return err
		}
		record("ablation_sync_policy", sync, func() string {
			return bench.FormatResults("Ablation: write-back vs write-through (Section 3.2)", sync)
		})
		async, err := g.AblationAsyncIO(0)
		if err != nil {
			return err
		}
		record("ablation_async_io", async, func() string { return bench.FormatAsyncAblation(async) })
		groups, err := g.AblationGroupSize(0, nil)
		if err != nil {
			return err
		}
		record("ablation_group_size", groups, func() string {
			return bench.FormatResults("Ablation: replacement group size (Section 3.3)", groups)
		})
		segs, err := g.AblationSegmentSize(0, nil)
		if err != nil {
			return err
		}
		record("ablation_segment_size", segs, func() string {
			return bench.FormatResults("Ablation: metadata segment size (Section 4.1)", segs)
		})
	default:
		return fmt.Errorf("unknown experiment %q", what)
	}
	return nil
}

// printPolicies lists the cache policies registered with the policy
// registry, which is also the set of names RunSpec.Policy accepts.
func printPolicies(out io.Writer) {
	fmt.Fprintln(out, "Registered cache policies:")
	for _, name := range face.Policies() {
		fmt.Fprintf(out, "  %s\n", name)
	}
}
