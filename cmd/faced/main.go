// Command faced serves a file-backed FaCE database over TCP.
//
// Usage:
//
//	faced -dir /var/lib/face [flags]
//
// The database lives in -dir (created on first start); reopening the same
// directory after a crash or a restart runs the engine's restart recovery
// automatically, so drain-and-restart and kill-and-restart converge on
// the same path.  Clients speak the length-prefixed binary protocol of
// internal/server/wire; internal/server/client is the Go client and
// cmd/faceload the load generator.
//
// Write admission is bounded by -writers concurrently executing write
// requests plus a -queue of waiters; anything beyond both is refused with
// a retryable BUSY instead of queueing without bound.
//
// With -metrics-addr the server also exposes a plain HTTP observability
// endpoint on a second listener:
//
//	/metrics       Prometheus text exposition: per-op server latency
//	               histograms, commit-path phase histograms, per-layer
//	               counters, admission and drain-gate gauges
//	/debug/traces  the span journal as JSON: pinned anomaly traces (slow
//	               transactions, deadlock victims with their wait-for
//	               cycles, admission sheds, WAL sync stalls), a sample of
//	               normal traces, flight-recorder lifecycle events, and
//	               the histogram exemplars linking latency buckets back
//	               to trace IDs
//	/debug/vars    the same registry as expvar JSON
//	/debug/pprof/  net/http/pprof profiles of the live process
//
// -stats-interval logs a one-line throughput/latency digest periodically,
// and -slow-tx logs a per-phase breakdown of every write transaction
// slower than the threshold (the same threshold pins those transactions'
// traces in the journal).
//
// SIGQUIT dumps the flight recorder — the journal and lifecycle events as
// one JSON log line — without stopping the server; a burst of pinned
// anomalies (deadlocks or sheds) triggers the same dump automatically.
//
// SIGINT or SIGTERM drains gracefully: listeners close, in-flight
// requests and open batches get up to -drain to finish (stragglers are
// cancelled through their request contexts), then the engine closes with
// a final checkpoint.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/reprolab/face"
	"github.com/reprolab/face/internal/obs"
	"github.com/reprolab/face/internal/server"
	"github.com/reprolab/face/internal/server/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("faced", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:4320", "TCP listen address")
		dir         = fs.String("dir", "", "database directory (required; created on first start)")
		policy      = fs.String("policy", face.PolicyFaCEGSC, "flash cache policy ("+strings.Join(face.Policies(), ", ")+")")
		flashFrames = fs.Int("flash-frames", 4096, "flash cache frames")
		bufferPages = fs.Int("buffer-pages", 1024, "DRAM buffer pool pages")
		writers     = fs.Int("writers", server.DefaultWriters, "concurrently executing write requests")
		queue       = fs.Int("queue", 0, "write requests allowed to wait beyond -writers (0 = 4x writers, negative = none)")
		timeout     = fs.Duration("timeout", server.DefaultRequestTimeout, "per-request deadline cap (negative = none)")
		drain       = fs.Duration("drain", 30*time.Second, "graceful drain deadline on SIGINT/SIGTERM")
		nofsync     = fs.Bool("nofsync", false, "disable commit/checkpoint fsync (faster, crash-unsafe)")
		metricsAddr = fs.String("metrics-addr", "", "HTTP listen address for /metrics, /debug/vars and /debug/pprof/ (empty = disabled)")
		statsEvery  = fs.Duration("stats-interval", 0, "log a periodic stats line at this interval (0 = disabled)")
		slowTx      = fs.Duration("slow-tx", 0, "log a per-phase breakdown of write transactions slower than this (0 = disabled)")
		verbose     = fs.Bool("v", false, "log per-lifecycle diagnostics")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "faced: -dir is required")
		fs.Usage()
		return 2
	}

	logger := log.New(stderr, "faced: ", log.LstdFlags|log.Lmicroseconds)

	// One registry shared by the engine and the server, so /metrics shows
	// the whole stack.
	reg := obs.NewRegistry()

	start := time.Now()
	opts := []face.Option{
		face.WithDir(*dir),
		face.WithPolicy(*policy),
		face.WithFlashFrames(*flashFrames),
		face.WithBufferPages(*bufferPages),
		face.WithLockManager(),
		face.WithMaxWriters(*writers),
		face.WithMetricsRegistry(reg),
		face.WithSlowTxLog(logger.Printf),
	}
	if *slowTx > 0 {
		opts = append(opts, face.WithSlowTxThreshold(*slowTx))
	}
	if *nofsync {
		opts = append(opts, face.WithFsync(false))
	}
	db, err := face.Open(opts...)
	if err != nil {
		logger.Printf("open %s: %v", *dir, err)
		return 1
	}
	if rep := db.RecoveryReport(); rep != nil {
		logger.Printf("recovered %s in %v (%d records scanned, %d redo, %d undo, %d winners, %d losers, %d flash reads)",
			*dir, time.Since(start).Round(time.Millisecond),
			rep.RecordsScanned, rep.RedoApplied, rep.UndoApplied,
			rep.WinnerTxns, rep.LoserTxns, rep.FlashReads)
	} else {
		logger.Printf("opened %s in %v", *dir, time.Since(start).Round(time.Millisecond))
	}

	cfg := server.Config{Writers: *writers, Queue: *queue, RequestTimeout: *timeout, Obs: reg, Tracer: db.Tracer()}
	if *verbose {
		cfg.Logf = logger.Printf
	}
	srv, err := server.New(db, cfg)
	if err != nil {
		logger.Printf("server: %v", err)
		db.Close()
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen %s: %v", *addr, err)
		db.Close()
		return 1
	}
	logger.Printf("serving on %s (policy %s, %d writers)", ln.Addr(), *policy, *writers)

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			logger.Printf("metrics listen %s: %v", *metricsAddr, err)
			ln.Close()
			db.Close()
			return 1
		}
		metricsSrv = &http.Server{Handler: metricsMux(reg, db.Tracer())}
		go func() {
			if err := metricsSrv.Serve(mln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("metrics serve: %v", err)
			}
		}()
		logger.Printf("metrics on http://%s/metrics (also /debug/vars, /debug/pprof/)", mln.Addr())
	}

	statsStop := make(chan struct{})
	if *statsEvery > 0 {
		go statsLoop(logger, srv, reg, *statsEvery, statsStop)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Flight recorder: SIGQUIT dumps the journal on demand, and the
	// tracer's burst detector dumps it on its own when pinned anomalies
	// (deadlocks, sheds) cluster in a window.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			dumpFlightRecorder(logger, "SIGQUIT", reg, db.Tracer())
		}
	}()
	if tr := db.Tracer(); tr != nil {
		tr.OnBurst(func(n int64) {
			dumpFlightRecorder(logger, fmt.Sprintf("anomaly burst: %d pinned traces in window", n), reg, db.Tracer())
		})
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Printf("%v: draining (deadline %v)", s, *drain)
	case err := <-serveErr:
		if err != nil {
			logger.Printf("serve: %v", err)
		}
	}

	close(statsStop)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain: %v", err)
	}
	if metricsSrv != nil {
		metricsSrv.Shutdown(ctx)
	}
	if err := db.Close(); err != nil {
		logger.Printf("close: %v", err)
		return 1
	}
	st := srv.Stats()
	logger.Printf("stopped (%d requests: %d ok, %d not-found, %d busy, %d timeout, %d errors; admission: %d admitted, %d shed, %d waited; %d in flight)",
		st.Requests, st.OK, st.NotFound, st.Busy, st.Timeout, st.Errors,
		st.Admission.Admitted, st.Admission.Rejected, st.Admission.Waits, srv.InFlight())
	return 0
}

// metricsMux builds the observability endpoint: Prometheus text at
// /metrics, the span journal at /debug/traces, the same registry as
// expvar JSON at /debug/vars, and the stdlib pprof handlers at
// /debug/pprof/.
func metricsMux(reg *face.MetricsRegistry, tracer *face.Tracer) *http.ServeMux {
	// Publish once per process: a second run of run() (tests) must not
	// hit expvar's duplicate-name panic.
	if expvar.Get("face") == nil {
		expvar.Publish("face", reg.Expvar())
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(tracesDoc(reg, tracer))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// tracesPayload is the /debug/traces document: the journal dump plus the
// histogram exemplars linking latency buckets back to trace IDs.
type tracesPayload struct {
	face.TraceDump
	Exemplars map[string][]obs.Exemplar `json:"exemplars,omitempty"`
}

// tracesDoc snapshots the journal and the exemplar-carrying histograms
// (the engine's total-latency histogram and the per-op server ones).  A
// nil tracer yields a well-formed empty document.
func tracesDoc(reg *face.MetricsRegistry, tracer *face.Tracer) tracesPayload {
	doc := tracesPayload{TraceDump: tracer.Dump(), Exemplars: map[string][]obs.Exemplar{}}
	names := []string{"face_tx_total_seconds"}
	for op := byte(wire.OpPing); op <= wire.OpAbort; op++ {
		names = append(names, `face_server_op_seconds{op="`+strings.ToLower(wire.OpName(op))+`"}`)
	}
	for _, name := range names {
		if ex := reg.Histogram(name).Snapshot().ExemplarList(); len(ex) > 0 {
			doc.Exemplars[name] = ex
		}
	}
	return doc
}

// dumpFlightRecorder logs the whole journal as one JSON line — the
// anomaly post-mortem a crashing or misbehaving deployment leaves behind.
func dumpFlightRecorder(logger *log.Logger, why string, reg *face.MetricsRegistry, tracer *face.Tracer) {
	data, err := json.Marshal(tracesDoc(reg, tracer))
	if err != nil {
		logger.Printf("flight recorder (%s): marshal: %v", why, err)
		return
	}
	logger.Printf("flight recorder (%s): %s", why, data)
}

// statsLoop logs a one-line digest every interval: request deltas plus
// the server-side SET p99 from the shared registry.
func statsLoop(logger *log.Logger, srv *server.Server, reg *face.MetricsRegistry, every time.Duration, stop <-chan struct{}) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	var last server.Stats
	setHist := reg.Histogram(`face_server_op_seconds{op="set"}`)
	getHist := reg.Histogram(`face_server_op_seconds{op="get"}`)
	lastSet, lastGet := setHist.Snapshot(), getHist.Snapshot()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		st := srv.Stats()
		set := setHist.Snapshot()
		get := getHist.Snapshot()
		setW, getW := set.Sub(lastSet), get.Sub(lastGet)
		logger.Printf("stats: %d req (%d ok, %d busy, %d timeout) | set p50=%v p99=%v | get p50=%v p99=%v | inflight=%d",
			st.Requests-last.Requests, st.OK-last.OK, st.Busy-last.Busy, st.Timeout-last.Timeout,
			setW.Quantile(0.50), setW.Quantile(0.99),
			getW.Quantile(0.50), getW.Quantile(0.99),
			srv.InFlight())
		last, lastSet, lastGet = st, set, get
	}
}
