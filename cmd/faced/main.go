// Command faced serves a file-backed FaCE database over TCP.
//
// Usage:
//
//	faced -dir /var/lib/face [flags]
//
// The database lives in -dir (created on first start); reopening the same
// directory after a crash or a restart runs the engine's restart recovery
// automatically, so drain-and-restart and kill-and-restart converge on
// the same path.  Clients speak the length-prefixed binary protocol of
// internal/server/wire; internal/server/client is the Go client and
// cmd/faceload the load generator.
//
// Write admission is bounded by -writers concurrently executing write
// requests plus a -queue of waiters; anything beyond both is refused with
// a retryable BUSY instead of queueing without bound.
//
// SIGINT or SIGTERM drains gracefully: listeners close, in-flight
// requests and open batches get up to -drain to finish (stragglers are
// cancelled through their request contexts), then the engine closes with
// a final checkpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/reprolab/face"
	"github.com/reprolab/face/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("faced", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:4320", "TCP listen address")
		dir         = fs.String("dir", "", "database directory (required; created on first start)")
		policy      = fs.String("policy", face.PolicyFaCEGSC, "flash cache policy ("+strings.Join(face.Policies(), ", ")+")")
		flashFrames = fs.Int("flash-frames", 4096, "flash cache frames")
		bufferPages = fs.Int("buffer-pages", 1024, "DRAM buffer pool pages")
		writers     = fs.Int("writers", server.DefaultWriters, "concurrently executing write requests")
		queue       = fs.Int("queue", 0, "write requests allowed to wait beyond -writers (0 = 4x writers, negative = none)")
		timeout     = fs.Duration("timeout", server.DefaultRequestTimeout, "per-request deadline cap (negative = none)")
		drain       = fs.Duration("drain", 30*time.Second, "graceful drain deadline on SIGINT/SIGTERM")
		nofsync     = fs.Bool("nofsync", false, "disable commit/checkpoint fsync (faster, crash-unsafe)")
		verbose     = fs.Bool("v", false, "log per-lifecycle diagnostics")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "faced: -dir is required")
		fs.Usage()
		return 2
	}

	logger := log.New(stderr, "faced: ", log.LstdFlags|log.Lmicroseconds)

	start := time.Now()
	opts := []face.Option{
		face.WithDir(*dir),
		face.WithPolicy(*policy),
		face.WithFlashFrames(*flashFrames),
		face.WithBufferPages(*bufferPages),
		face.WithLockManager(),
		face.WithMaxWriters(*writers),
	}
	if *nofsync {
		opts = append(opts, face.WithFsync(false))
	}
	db, err := face.Open(opts...)
	if err != nil {
		logger.Printf("open %s: %v", *dir, err)
		return 1
	}
	if rep := db.RecoveryReport(); rep != nil {
		logger.Printf("recovered %s in %v (%d records scanned, %d redo, %d undo, %d winners, %d losers, %d flash reads)",
			*dir, time.Since(start).Round(time.Millisecond),
			rep.RecordsScanned, rep.RedoApplied, rep.UndoApplied,
			rep.WinnerTxns, rep.LoserTxns, rep.FlashReads)
	} else {
		logger.Printf("opened %s in %v", *dir, time.Since(start).Round(time.Millisecond))
	}

	cfg := server.Config{Writers: *writers, Queue: *queue, RequestTimeout: *timeout}
	if *verbose {
		cfg.Logf = logger.Printf
	}
	srv, err := server.New(db, cfg)
	if err != nil {
		logger.Printf("server: %v", err)
		db.Close()
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen %s: %v", *addr, err)
		db.Close()
		return 1
	}
	logger.Printf("serving on %s (policy %s, %d writers)", ln.Addr(), *policy, *writers)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Printf("%v: draining (deadline %v)", s, *drain)
	case err := <-serveErr:
		if err != nil {
			logger.Printf("serve: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain: %v", err)
	}
	if err := db.Close(); err != nil {
		logger.Printf("close: %v", err)
		return 1
	}
	st := srv.Stats()
	logger.Printf("stopped (%d requests: %d ok, %d not-found, %d busy, %d timeout, %d errors)",
		st.Requests, st.OK, st.NotFound, st.Busy, st.Timeout, st.Errors)
	return 0
}
