package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/reprolab/face/internal/obs"
)

// TestMetricsEndpoint checks the observability mux faced mounts on
// -metrics-addr: Prometheus text on /metrics with the right content
// type, the registry as JSON on /debug/vars, and the pprof index.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Histogram(`face_server_op_seconds{op="get"}`).Observe(3 * time.Millisecond)
	reg.Counter("face_server_requests_total").Add(1)

	ts := httptest.NewServer(metricsMux(reg))
	defer ts.Close()

	get := func(path string) (string, *http.Response) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(body), resp
	}

	body, resp := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain", ct)
	}
	for _, want := range []string{
		"# TYPE face_server_op_seconds summary",
		`face_server_op_seconds_count{op="get"} 1`,
		`face_server_op_seconds{op="get",quantile="0.99"} `,
		"face_server_requests_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, _ = get("/debug/vars")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if _, ok := vars["face"]; !ok {
		t.Errorf("/debug/vars missing the face registry:\n%s", body)
	}

	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}
}
