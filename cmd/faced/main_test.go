package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/reprolab/face/internal/obs"
	"github.com/reprolab/face/internal/obs/trace"
)

// TestMetricsEndpoint checks the observability mux faced mounts on
// -metrics-addr: Prometheus text on /metrics with the right content
// type, the registry as JSON on /debug/vars, and the pprof index.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Histogram(`face_server_op_seconds{op="get"}`).Observe(3 * time.Millisecond)
	reg.Counter("face_server_requests_total").Add(1)

	ts := httptest.NewServer(metricsMux(reg, nil))
	defer ts.Close()

	get := func(path string) (string, *http.Response) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(body), resp
	}

	body, resp := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain", ct)
	}
	for _, want := range []string{
		"# TYPE face_server_op_seconds summary",
		`face_server_op_seconds_count{op="get"} 1`,
		`face_server_op_seconds{op="get",quantile="0.99"} `,
		"face_server_requests_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, _ = get("/debug/vars")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if _, ok := vars["face"]; !ok {
		t.Errorf("/debug/vars missing the face registry:\n%s", body)
	}

	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}

	// Without a tracer /debug/traces still serves a well-formed empty
	// document.
	body, resp = get("/debug/traces")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/debug/traces Content-Type = %q, want application/json", ct)
	}
	var empty map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &empty); err != nil {
		t.Fatalf("/debug/traces is not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"stats", "pinned", "sampled", "events"} {
		if _, ok := empty[key]; !ok {
			t.Errorf("/debug/traces missing %q:\n%s", key, body)
		}
	}
}

// TestTracesEndpoint checks /debug/traces with a live tracer: a pinned
// slow trace shows up with its spans, and the histogram exemplar points
// at its ID.
func TestTracesEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := trace.New(trace.Config{SlowTx: time.Nanosecond})

	tr := tracer.Start(0, "set")
	tr.Span("wal_append", time.Now(), time.Millisecond, 42, "")
	tracer.Finish(tr)
	tracer.Event("open: complete")
	reg.Histogram(`face_server_op_seconds{op="set"}`).ObserveExemplar(3*time.Millisecond, uint64(tr.ID()))

	ts := httptest.NewServer(metricsMux(reg, tracer))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Pinned []struct {
			ID    string `json:"id"`
			Kind  string `json:"kind"`
			Pins  []struct{ Kind string }
			Spans []struct {
				Name string `json:"name"`
				Page uint64 `json:"page,omitempty"`
			} `json:"spans"`
		} `json:"pinned"`
		Events []struct {
			Msg string `json:"msg"`
		} `json:"events"`
		Exemplars map[string][]struct {
			TraceID string `json:"trace_id"`
		} `json:"exemplars"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/debug/traces: %v\n%s", err, body)
	}
	if len(doc.Pinned) != 1 || doc.Pinned[0].Kind != "set" {
		t.Fatalf("pinned = %+v, want one set trace", doc.Pinned)
	}
	if len(doc.Pinned[0].Spans) != 1 || doc.Pinned[0].Spans[0].Name != "wal_append" || doc.Pinned[0].Spans[0].Page != 42 {
		t.Fatalf("spans = %+v", doc.Pinned[0].Spans)
	}
	if len(doc.Events) != 1 || doc.Events[0].Msg != "open: complete" {
		t.Fatalf("events = %+v", doc.Events)
	}
	ex := doc.Exemplars[`face_server_op_seconds{op="set"}`]
	if len(ex) != 1 || ex[0].TraceID != doc.Pinned[0].ID {
		t.Fatalf("exemplars = %+v, want the pinned trace's ID %s", ex, doc.Pinned[0].ID)
	}
}
