// Facevet machine-checks the invariants this codebase's correctness
// arguments lean on: lock-free device I/O (nolockio), single-discipline
// atomics (atomicmix), errors.Is for sentinel matching (sentinelerr),
// and nil-guarded instrumentation on hot paths (obsguard).
//
// It speaks the go vet tool protocol, so the usual invocation is
//
//	go build -o /tmp/facevet ./cmd/facevet
//	go vet -vettool=/tmp/facevet ./...
//
// which analyzes test files too and caches per-package results.  It also
// runs directly — `facevet ./...` — by driving `go list -export` itself.
// Intentional violations are suppressed in place with a justified
// //lint:allow facevet/<analyzer> directive; see internal/analysis.
package main

import (
	"github.com/reprolab/face/internal/analysis"
	"github.com/reprolab/face/internal/analysis/atomicmix"
	"github.com/reprolab/face/internal/analysis/nolockio"
	"github.com/reprolab/face/internal/analysis/obsguard"
	"github.com/reprolab/face/internal/analysis/sentinelerr"
)

func main() {
	analysis.Main([]*analysis.Analyzer{
		atomicmix.Analyzer,
		nolockio.Analyzer,
		obsguard.Analyzer,
		sentinelerr.Analyzer,
	})
}
