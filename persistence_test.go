package face

// Durability tests for the persistent file-backed device subsystem: a
// database opened with WithDir must survive write-kill-reopen cycles with
// every committed transaction intact, recovered by the restart replay
// running against real files.

import (
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// dirOptions returns the option set the persistence tests open their
// database with; reopen must use identical cache geometry.
func dirOptions(dir string, fsync bool) []Option {
	return []Option{
		WithDir(dir),
		WithFsync(fsync),
		WithPolicy(PolicyFaCEGSC),
		WithBufferPages(48),
		WithFlashFrames(256),
		WithGroupSize(16),
		WithSegmentEntries(64),
	}
}

func TestWithDirValidation(t *testing.T) {
	if _, err := Open(WithDir("")); err == nil {
		t.Fatal("empty WithDir accepted")
	}
	_, err := Open(
		WithDir(t.TempDir()),
		WithDevices(NewDisk("data", 1024), NewDisk("log", 1024)),
	)
	if err == nil {
		t.Fatal("WithDir combined with WithDevices accepted")
	}
}

func TestWithDirCreatesFilesAndReopens(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dirOptions(dir, true)...)
	if err != nil {
		t.Fatal(err)
	}
	if db.RecoveryReport() != nil {
		t.Fatal("fresh directory ran recovery")
	}

	var id PageID
	err = db.Update(context.Background(), func(tx *Tx) error {
		var err error
		if id, err = tx.Alloc(TypeHeap); err != nil {
			return err
		}
		return tx.Modify(id, func(buf PageBuf) error {
			copy(buf.Payload(), "hello, disk")
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"data.db", "wal.log", "flash.cache"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("device file %s missing: %v", name, err)
		}
	}

	db2, err := Open(dirOptions(dir, true)...)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.RecoveryReport() == nil {
		t.Fatal("reopen of an existing directory did not run recovery")
	}
	err = db2.View(context.Background(), func(tx *Tx) error {
		return tx.Read(id, func(buf PageBuf) error {
			if string(buf.Payload()[:11]) != "hello, disk" {
				t.Errorf("payload %q after reopen", buf.Payload()[:11])
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReopenRejectsDroppedFlashPolicy guards against silent data loss:
// under FaCE the flash cache is part of the persistent database, so
// reopening a directory that holds a non-empty flash.cache with a
// non-flash policy must fail instead of serving stale disk images.
func TestReopenRejectsDroppedFlashPolicy(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dirOptions(dir, false)...)
	if err != nil {
		t.Fatal(err)
	}
	err = db.Update(context.Background(), func(tx *Tx) error {
		id, err := tx.Alloc(TypeHeap)
		if err != nil {
			return err
		}
		return tx.Modify(id, func(buf PageBuf) error {
			buf.Payload()[0] = 1
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(WithDir(dir), WithPolicy(PolicyNone)); err == nil {
		t.Fatal("reopen with a non-flash policy accepted despite a non-empty flash.cache")
	}

	// The original policy still opens it.
	db2, err := Open(dirOptions(dir, false)...)
	if err != nil {
		t.Fatal(err)
	}
	db2.Close()
}

// TestCrashReopenTorture commits transactions against file-backed devices,
// kills the instance without any orderly shutdown, reopens the directory
// and verifies that every committed page carries its committed content and
// the recovered flash cache window is well-formed — three times in a row.
func TestCrashReopenTorture(t *testing.T) {
	const (
		pages      = 24
		cycles     = 3
		txPerCycle = 40
	)
	dir := filepath.Join(t.TempDir(), "db")
	// fsync off keeps the torture fast; in-process kill-and-reopen
	// durability does not depend on it (the OS page cache survives), and
	// the fsync code path itself is covered by the other persistence
	// tests.
	opts := func() []Option { return dirOptions(dir, false) }

	db, err := Open(opts()...)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]PageID, pages)
	err = db.Update(context.Background(), func(tx *Tx) error {
		for i := range ids {
			var err error
			if ids[i], err = tx.Alloc(TypeHeap); err != nil {
				return err
			}
			if err := tx.Modify(ids[i], func(buf PageBuf) error {
				binary.LittleEndian.PutUint64(buf.Payload(), 0)
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// expected[i] is the last committed value of page ids[i].
	expected := make([]uint64, pages)
	next := uint64(1)

	for cycle := 0; cycle < cycles; cycle++ {
		for tx := 0; tx < txPerCycle; tx++ {
			i := int(next) % pages
			v := next
			err := db.Update(context.Background(), func(tx *Tx) error {
				return tx.Modify(ids[i], func(buf PageBuf) error {
					binary.LittleEndian.PutUint64(buf.Payload(), v)
					return nil
				})
			})
			if err != nil {
				t.Fatalf("cycle %d: update %d: %v", cycle, tx, err)
			}
			// Committed: recovery must reproduce it whatever happens next.
			expected[i] = v
			next++
		}

		// Kill: volatile state (buffer pool, log tail, cache metadata,
		// async pipeline) is dropped; only the device files remain.
		db.Crash()
		if err := db.Update(context.Background(), func(tx *Tx) error { return nil }); !errors.Is(err, ErrCrashed) {
			t.Fatalf("cycle %d: update after crash: %v, want ErrCrashed", cycle, err)
		}

		db, err = Open(opts()...)
		if err != nil {
			t.Fatalf("cycle %d: reopen: %v", cycle, err)
		}
		rep := db.RecoveryReport()
		if rep == nil {
			t.Fatalf("cycle %d: reopen ran no recovery", cycle)
		}

		// Cache-window invariants of the recovered flash cache: the queue
		// never holds more entries than it has frames.
		if c := db.Cache(); c != nil {
			if c.Len() > c.Capacity() {
				t.Fatalf("cycle %d: recovered cache window %d exceeds capacity %d", cycle, c.Len(), c.Capacity())
			}
		}

		// Every committed value must be back.
		err = db.View(context.Background(), func(tx *Tx) error {
			for i, id := range ids {
				want := expected[i]
				if err := tx.Read(id, func(buf PageBuf) error {
					if got := binary.LittleEndian.Uint64(buf.Payload()); got != want {
						t.Errorf("cycle %d: page %d holds %d, want %d", cycle, id, got, want)
					}
					return nil
				}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("cycle %d: verify: %v", cycle, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDirFsyncDurability runs one commit-crash-reopen round with real
// fsync enabled end to end, exercising the Sync calls on the WAL force and
// checkpoint paths against actual files.
func TestDirFsyncDurability(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dirOptions(dir, true)...)
	if err != nil {
		t.Fatal(err)
	}
	var id PageID
	err = db.Update(context.Background(), func(tx *Tx) error {
		var err error
		if id, err = tx.Alloc(TypeHeap); err != nil {
			return err
		}
		return tx.Modify(id, func(buf PageBuf) error {
			binary.LittleEndian.PutUint64(buf.Payload(), 0xDEADBEEF)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	db.Crash()

	db2, err := Open(dirOptions(dir, true)...)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	err = db2.View(context.Background(), func(tx *Tx) error {
		return tx.Read(id, func(buf PageBuf) error {
			if got := binary.LittleEndian.Uint64(buf.Payload()); got != 0xDEADBEEF {
				t.Errorf("recovered payload %#x, want 0xDEADBEEF", got)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}
