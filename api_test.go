package face

import (
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// openTestDB opens a small database through the public options API.
func openTestDB(t testing.TB, policy string) *DB {
	t.Helper()
	db, err := Open(
		WithDevices(NewDiskArray("data", 4, 8192), NewDisk("log", 1<<15)),
		WithFlashDevice(NewSSD("flash", 2048)),
		WithPolicy(policy),
		WithBufferPages(48),
		WithFlashFrames(256),
		WithGroupSize(16),
		WithSegmentEntries(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestOpenValidatesOptions(t *testing.T) {
	if _, err := Open(); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("Open without devices: %v, want ErrNoDevice", err)
	}
	_, err := Open(
		WithDevices(NewDisk("data", 1024), NewDisk("log", 1024)),
		WithPolicy("no-such-policy"),
	)
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := Open(WithBufferPages(0)); err == nil {
		t.Fatal("WithBufferPages(0) accepted")
	}
	if _, err := Open(WithCleanThreshold(1.5)); err == nil {
		t.Fatal("WithCleanThreshold(1.5) accepted")
	}
	// The flash device and frame count are required only when the policy
	// needs them.
	db, err := Open(WithDevices(NewDisk("data", 1024), NewDisk("log", 1024)))
	if err != nil {
		t.Fatalf("minimal Open: %v", err)
	}
	db.Close()
}

func TestEveryRegisteredPolicyOpensByName(t *testing.T) {
	for _, name := range Policies() {
		if name == "none" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			db := openTestDB(t, name)
			err := db.Update(context.Background(), func(tx *Tx) error {
				id, err := tx.Alloc(TypeHeap)
				if err != nil {
					return err
				}
				return tx.Modify(id, func(buf PageBuf) error {
					buf.Payload()[0] = 1
					return nil
				})
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentViewUpdate drives mixed View/Update traffic from many
// goroutines.  Writers increment a pair of pages by the same amount inside
// one Update; readers assert the pair invariant under View.  Afterwards
// the committed count and the final page images must match the bookkeeping
// done on the side.
func TestConcurrentViewUpdate(t *testing.T) {
	const (
		pairs      = 8
		writers    = 4
		readers    = 8
		iterations = 50
	)
	db := openTestDB(t, PolicyFaCEGSC)

	var ids [pairs][2]PageID
	err := db.Update(context.Background(), func(tx *Tx) error {
		for i := range ids {
			for j := 0; j < 2; j++ {
				id, err := tx.Alloc(TypeHeap)
				if err != nil {
					return err
				}
				ids[i][j] = id
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	committedBefore := db.Committed()

	var increments [pairs]atomic.Uint64
	var commits, views atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()

	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < iterations; i++ {
				pair := rng.Intn(pairs)
				delta := uint64(rng.Intn(9) + 1)
				err := db.Update(ctx, func(tx *Tx) error {
					for j := 0; j < 2; j++ {
						if err := tx.Modify(ids[pair][j], func(buf PageBuf) error {
							v := binary.LittleEndian.Uint64(buf.Payload())
							binary.LittleEndian.PutUint64(buf.Payload(), v+delta)
							return nil
						}); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					t.Errorf("Update: %v", err)
					return
				}
				// Only count the increment once the commit succeeded.
				increments[pair].Add(delta)
				commits.Add(1)
			}
		}()
	}
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 100))
			for i := 0; i < iterations; i++ {
				pair := rng.Intn(pairs)
				err := db.View(ctx, func(tx *Tx) error {
					var a, b uint64
					if err := tx.Read(ids[pair][0], func(buf PageBuf) error {
						a = binary.LittleEndian.Uint64(buf.Payload())
						return nil
					}); err != nil {
						return err
					}
					if err := tx.Read(ids[pair][1], func(buf PageBuf) error {
						b = binary.LittleEndian.Uint64(buf.Payload())
						return nil
					}); err != nil {
						return err
					}
					if a != b {
						t.Errorf("pair %d torn: %d != %d", pair, a, b)
					}
					return nil
				})
				if err != nil {
					t.Errorf("View: %v", err)
					return
				}
				views.Add(1)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if got, want := db.Committed()-committedBefore, commits.Load()+views.Load(); got != want {
		t.Fatalf("committed count grew by %d, want %d (%d updates + %d views)",
			got, want, commits.Load(), views.Load())
	}

	// Final page images match the side bookkeeping.
	err = db.View(ctx, func(tx *Tx) error {
		for i := range ids {
			want := increments[i].Load()
			for j := 0; j < 2; j++ {
				if err := tx.Read(ids[i][j], func(buf PageBuf) error {
					if got := binary.LittleEndian.Uint64(buf.Payload()); got != want {
						t.Errorf("pair %d page %d = %d, want %d", i, j, got, want)
					}
					return nil
				}); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestViewsRunInParallel proves the read side of the scheduler admits more
// than one transaction at once: two Views rendezvous inside their
// closures, which deadlocks if Views exclude each other.
func TestViewsRunInParallel(t *testing.T) {
	db := openTestDB(t, PolicyFaCE)
	if err := db.Update(context.Background(), func(tx *Tx) error {
		_, err := tx.Alloc(TypeHeap)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	var entered sync.WaitGroup
	entered.Add(2)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := db.View(context.Background(), func(tx *Tx) error {
				entered.Done()
				<-release // both Views must be inside before either leaves
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	entered.Wait() // deadlocks here if Views serialize
	close(release)
	wg.Wait()
}

func TestPublicErrorValues(t *testing.T) {
	db := openTestDB(t, PolicyFaCE)
	ctx := context.Background()
	err := db.View(ctx, func(tx *Tx) error {
		_, err := tx.Alloc(TypeHeap)
		return err
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("Alloc in View: %v, want ErrConflict", err)
	}
	err = db.Update(ctx, func(tx *Tx) error { return tx.Commit() })
	if !errors.Is(err, ErrTxManaged) {
		t.Fatalf("manual Commit: %v, want ErrTxManaged", err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := db.Update(cancelled, func(*Tx) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Update: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.View(ctx, func(*Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("View after Close: %v, want ErrClosed", err)
	}
}

func TestRegisterPolicyPublicAPI(t *testing.T) {
	RegisterPolicy("api-custom", func(p PolicyParams) (Extension, error) {
		return NewPolicy(PolicyLC, p)
	})
	db := openTestDB(t, "api-custom")
	if name := db.Cache().Name(); name != "LC" {
		t.Fatalf("custom policy cache = %q, want the delegated LC", name)
	}
	found := false
	for _, n := range Policies() {
		if n == "api-custom" {
			found = true
		}
	}
	if !found {
		t.Fatal("api-custom missing from Policies()")
	}
}

// TestLockManagerPublicAPI opens a database with WithLockManager and
// WithMaxWriters, proves concurrent Update closures overlap, forces a
// deadlock matched by the public ErrDeadlock sentinel, and checks the
// Snapshot counters surface lock and group-commit activity.
func TestLockManagerPublicAPI(t *testing.T) {
	db, err := Open(
		WithDevices(NewDiskArray("data", 4, 8192), NewDisk("log", 1<<15)),
		WithBufferPages(48),
		WithPolicy(PolicyNone),
		WithLockManager(),
		WithMaxWriters(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ctx := context.Background()

	var a, b PageID
	if err := db.Update(ctx, func(tx *Tx) error {
		var err error
		if a, err = tx.Alloc(TypeHeap); err != nil {
			return err
		}
		b, err = tx.Alloc(TypeHeap)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	set := func(tx *Tx, id PageID, v uint64) error {
		return tx.Modify(id, func(buf PageBuf) error {
			binary.LittleEndian.PutUint64(buf.Payload(), v)
			return nil
		})
	}

	// Classic AB/BA cycle through the public API: exactly one victim.
	haveA, haveB := make(chan struct{}), make(chan struct{})
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs <- db.Update(ctx, func(tx *Tx) error {
			if err := set(tx, a, 1); err != nil {
				return err
			}
			close(haveA)
			<-haveB
			return set(tx, b, 1)
		})
	}()
	go func() {
		defer wg.Done()
		errs <- db.Update(ctx, func(tx *Tx) error {
			if err := set(tx, b, 2); err != nil {
				return err
			}
			close(haveB)
			<-haveA
			return set(tx, a, 2)
		})
	}()
	wg.Wait()
	close(errs)
	var deadlocks, committed int
	for err := range errs {
		switch {
		case err == nil:
			committed++
		case errors.Is(err, ErrDeadlock):
			deadlocks++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if deadlocks != 1 || committed != 1 {
		t.Fatalf("deadlocks=%d committed=%d, want exactly one of each", deadlocks, committed)
	}

	// Concurrent disjoint writers commit in parallel; retry any deadlock.
	var wg2 sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg2.Add(1)
		go func(id PageID, base uint64) {
			defer wg2.Done()
			for i := 0; i < 25; i++ {
				for {
					err := db.Update(ctx, func(tx *Tx) error { return set(tx, id, base+uint64(i)) })
					if errors.Is(err, ErrDeadlock) {
						continue
					}
					if err != nil {
						t.Error(err)
					}
					break
				}
			}
		}([]PageID{a, b}[w%2], uint64(w*1000))
	}
	wg2.Wait()

	snap := db.Snapshot()
	if snap.Locks.Grants() == 0 || snap.Locks.Deadlocks != 1 {
		t.Fatalf("lock counters not surfaced: %+v", snap.Locks)
	}
	if snap.GroupCommit.Requests == 0 {
		t.Fatalf("group-commit counters not surfaced: %+v", snap.GroupCommit)
	}
}
