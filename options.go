package face

import (
	"fmt"
	"time"

	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/obs"
)

// DefaultBufferPages is the DRAM buffer pool capacity Open uses when
// WithBufferPages is not given.
const DefaultBufferPages = 256

// Option configures a database being opened.  Options are applied in
// order; later options override earlier ones.  The engine configuration
// they build is an internal detail of the package.
type Option func(*engine.Config) error

// WithDevices sets the data device (database pages) and the log device
// (write-ahead log).  Both are required.
func WithDevices(data, log Dev) Option {
	return func(c *engine.Config) error {
		c.DataDev = data
		c.LogDev = log
		return nil
	}
}

// WithDir opens the database on persistent file-backed devices inside the
// directory (created when missing): data.db holds the database pages,
// wal.log the write-ahead log and flash.cache the flash cache when the
// policy uses one.  It replaces WithDevices/WithFlashDevice; combining
// them fails at Open.
//
// Unlike the simulated devices, the files have real latency and a real
// fsync: commit-time log forces, the flash cache's
// destage-before-front-advance invariant and checkpoints all call Sync()
// on the underlying files, so acknowledged commits survive a crash of the
// host, not just of the process.  The log's partial tail block is staged
// through a double-write slot before each in-place rewrite, so a torn
// 4 KiB tail write on hardware without power-loss protection is repaired
// at the next open — see the README's Logging section.  Reopening a
// directory whose data file already exists automatically runs restart
// recovery — kill-and-reopen is the normal restart path and needs no
// WithRecovery.
//
// On Unix-like systems the directory is guarded by an exclusive flock for
// the database's lifetime, so a second concurrent Open of the same
// directory fails cleanly; platforms without flock do not detect
// concurrent openers.
func WithDir(path string) Option {
	return func(c *engine.Config) error {
		if path == "" {
			return fmt.Errorf("face: WithDir: empty directory path")
		}
		c.Dir = path
		return nil
	}
}

// WithFsync enables or disables the fsync durability barrier of the
// file-backed devices opened by WithDir (enabled by default).
// WithFsync(false) trades host-crash durability for speed: Sync points are
// still counted but no longer reach the disk, so a process crash loses
// nothing while a host crash may lose acknowledged commits.  It has no
// effect on simulated devices.
func WithFsync(enabled bool) Option {
	return func(c *engine.Config) error {
		c.NoFsync = !enabled
		return nil
	}
}

// WithFileDevices overrides the logical capacities (in 4 KiB blocks) of
// the device files opened by WithDir: the data file, the log file and the
// flash cache file.  Zero keeps a field at its default (generous sparse
// capacities; the flash file is sized from WithFlashFrames).  Files are
// sparse, so large capacities cost no disk space until written.
func WithFileDevices(dataBlocks, logBlocks, flashBlocks int64) Option {
	return func(c *engine.Config) error {
		if dataBlocks < 0 || logBlocks < 0 || flashBlocks < 0 {
			return fmt.Errorf("face: WithFileDevices(%d, %d, %d): capacities must not be negative",
				dataBlocks, logBlocks, flashBlocks)
		}
		c.FileDataBlocks = dataBlocks
		c.FileLogBlocks = logBlocks
		c.FileFlashBlocks = flashBlocks
		return nil
	}
}

// WithFileWorkers sets the data file's positioned-I/O worker pool width
// under WithDir (default engine.DefaultFileWorkers).  Run operations are
// split across the pool and the count is reported as the device's
// Parallelism, playing the role the member count plays for a simulated
// disk array.
func WithFileWorkers(n int) Option {
	return func(c *engine.Config) error {
		if n < 1 {
			return fmt.Errorf("face: WithFileWorkers(%d): must be at least 1", n)
		}
		c.FileWorkers = n
		return nil
	}
}

// WithFlashDevice sets the flash device holding the cache extension.  It
// is required by every policy except "none".
func WithFlashDevice(flash Dev) Option {
	return func(c *engine.Config) error {
		c.FlashDev = flash
		return nil
	}
}

// WithPolicy selects the flash cache policy by registry name — one of the
// Policy* constants or any name added with RegisterPolicy.  Unknown names
// fail at Open.
func WithPolicy(name string) Option {
	return func(c *engine.Config) error {
		p, err := engine.ParsePolicy(name)
		if err != nil {
			return err
		}
		c.Policy = p
		return nil
	}
}

// WithBufferPages sets the DRAM buffer pool capacity in 4 KiB pages
// (default DefaultBufferPages).
func WithBufferPages(n int) Option {
	return func(c *engine.Config) error {
		if n < 1 {
			return fmt.Errorf("face: WithBufferPages(%d): must be at least 1", n)
		}
		c.BufferPages = n
		return nil
	}
}

// WithBufferShards sets the number of independently locked shards the
// DRAM buffer pool is striped over.  Each shard has its own mutex, LRU
// list and statistics, and pages are assigned to shards by a hash of
// their id, so concurrent transactions hitting different pages never
// serialize on one pool lock.  The default derives the count from
// GOMAXPROCS; WithBufferShards(1) reproduces the single-mutex global-LRU
// pool (useful when strict LRU eviction order matters more than
// scalability).  The count is clamped so every shard holds at least one
// page.
func WithBufferShards(n int) Option {
	return func(c *engine.Config) error {
		if n < 1 {
			return fmt.Errorf("face: WithBufferShards(%d): must be at least 1", n)
		}
		c.BufferShards = n
		return nil
	}
}

// WithCacheStripes sets the number of independently locked stripes the
// flash cache's lookup structures (the page directory and the in-transit
// map) are split over, so cache probes for different pages never contend
// with each other or with an in-flight group write.  The default derives
// the count from GOMAXPROCS; WithCacheStripes(1) reproduces the
// single-mutex lookup path.  Policies without striped lookup structures
// ("lc", "wt") ignore it.
func WithCacheStripes(n int) Option {
	return func(c *engine.Config) error {
		if n < 1 {
			return fmt.Errorf("face: WithCacheStripes(%d): must be at least 1", n)
		}
		c.CacheStripes = n
		return nil
	}
}

// WithFlashFrames sets the flash cache capacity in 4 KiB page frames.  It
// is required by every policy that uses flash.
func WithFlashFrames(n int) Option {
	return func(c *engine.Config) error {
		if n < 1 {
			return fmt.Errorf("face: WithFlashFrames(%d): must be at least 1", n)
		}
		c.FlashFrames = n
		return nil
	}
}

// WithGroupSize overrides the replacement batch size used by the FaCE
// group optimizations (default: the flash block size, 64 pages).
func WithGroupSize(n int) Option {
	return func(c *engine.Config) error {
		if n < 1 {
			return fmt.Errorf("face: WithGroupSize(%d): must be at least 1", n)
		}
		c.GroupSize = n
		return nil
	}
}

// WithSegmentEntries overrides the persistent metadata segment size of the
// FaCE metadata directory (Section 4.1 of the paper).
func WithSegmentEntries(n int) Option {
	return func(c *engine.Config) error {
		if n < 1 {
			return fmt.Errorf("face: WithSegmentEntries(%d): must be at least 1", n)
		}
		c.SegmentEntries = n
		return nil
	}
}

// WithCleanThreshold sets the Lazy Cleaning dirty-frame fraction that
// triggers the lazy cleaner (policy "lc" only; default 0.75).
func WithCleanThreshold(t float64) Option {
	return func(c *engine.Config) error {
		if t <= 0 || t > 1 {
			return fmt.Errorf("face: WithCleanThreshold(%g): must be in (0, 1]", t)
		}
		c.CleanThreshold = t
		return nil
	}
}

// WithAsyncIO enables the asynchronous group-write and destage pipeline
// for the mvFIFO cache policies ("face", "face+gr", "face+gsc"): pages
// evicted from the DRAM buffer are staged into a bounded ring of depth
// pages and written to flash by a background group writer, and cold dirty
// pages are drained to disk by background destager workers, so Pool.Get
// returns without waiting on flash or disk I/O.  The ring applies
// backpressure when full.
//
// WithAsyncIO(0) selects the synchronous path (the default): every group
// write and destage happens inline on the evicting transaction.  Prefer it
// when deterministic, strictly paper-faithful I/O scheduling matters more
// than throughput.  A negative depth selects the default ring depth.
func WithAsyncIO(depth int) Option {
	return func(c *engine.Config) error {
		c.AsyncIODepth = depth
		return nil
	}
}

// WithIOWriters sets the number of background destager workers that write
// cold dirty pages back to the data device under WithAsyncIO (default 1).
// More workers exploit the parallelism of a striped data array.
func WithIOWriters(n int) Option {
	return func(c *engine.Config) error {
		if n < 1 {
			return fmt.Errorf("face: WithIOWriters(%d): must be at least 1", n)
		}
		c.IOWriters = n
		return nil
	}
}

// WithLockManager replaces the single-writer transaction scheduler with a
// page-granularity two-phase lock manager: Update transactions run
// concurrently, taking shared locks on the pages they read and exclusive
// locks on the pages they write at first touch, held until commit or
// abort (strict 2PL, so the schedule stays serializable).  View
// transactions take shared locks as well, giving them consistent
// multi-page snapshots against concurrent writers.
//
// A transaction that would close a cycle in the wait-for graph is rolled
// back and returns ErrDeadlock; retrying it is safe and expected.
// Commit-time log forces from concurrent writers are batched by the
// write-ahead log's leader/follower group-commit protocol.
//
// Without this option (the default) Update transactions are serialized by
// a reader-writer lock, which is cheaper for single-writer workloads and
// can never deadlock.
func WithLockManager() Option {
	return func(c *engine.Config) error {
		c.PageLocks = true
		return nil
	}
}

// WithMaxWriters caps the number of Update transactions admitted
// concurrently under WithLockManager (unlimited by default).  The cap
// keeps lock contention and buffer-pool pin pressure proportionate to
// small DRAM pools, and doubles as the group-commit batching hint: the
// write-ahead log collects up to this many commit forces into one device
// write.  It has no effect without WithLockManager.
func WithMaxWriters(n int) Option {
	return func(c *engine.Config) error {
		if n < 1 {
			return fmt.Errorf("face: WithMaxWriters(%d): must be at least 1", n)
		}
		c.MaxWriters = n
		return nil
	}
}

// WithWalSegments selects the write-ahead log front end.  The default
// (zero) is the lock-free commit pipeline: appenders reserve log space
// with one atomic compare-and-swap on a ring of log buffer segments and
// copy their records in parallel, while a dedicated syncer goroutine
// coalesces commit forces and issues the fsync barrier off the append
// path.  WithWalSegments(1) selects the historical mutex front end
// (every append serializes on one lock), kept as a comparison baseline;
// values above 1 run the pipeline with that many buffer segments.
func WithWalSegments(n int) Option {
	return func(c *engine.Config) error {
		if n < 0 {
			return fmt.Errorf("face: WithWalSegments(%d): must not be negative", n)
		}
		c.WalSegments = n
		return nil
	}
}

// WithCheckpointInterval enables periodic database checkpoints every d of
// simulated time (zero disables them, the default).
func WithCheckpointInterval(d time.Duration) Option {
	return func(c *engine.Config) error {
		if d < 0 {
			return fmt.Errorf("face: WithCheckpointInterval(%v): must not be negative", d)
		}
		c.CheckpointEvery = d
		return nil
	}
}

// WithRecovery runs crash recovery during Open.  Use it when reopening
// devices after a crash; the restart report is available from
// DB.RecoveryReport.
func WithRecovery() Option {
	return func(c *engine.Config) error {
		c.Recover = true
		return nil
	}
}

// WithObservability enables or disables the observability layer (enabled
// by default): commit-path phase histograms, per-layer counters and the
// registry served by DB.Metrics.  Disabling it reduces every recording
// site to a nil check and makes DB.Metrics return nil; the measured cost
// of leaving it on is small (see the facebench "obs" ablation).
func WithObservability(enabled bool) Option {
	return func(c *engine.Config) error {
		c.DisableObs = !enabled
		return nil
	}
}

// WithTracing enables or disables request-scoped span tracing (enabled by
// default whenever observability is on; WithObservability(false) implies
// it off).  With tracing on, every Update carries a span trace — adopted
// from the request context when a server attached one, self-started
// otherwise — whose commit-path phases land in the tail-sampled journal
// behind DB.Tracer, with slow transactions, deadlock victims and WAL sync
// stalls pinned.  Disabling it makes DB.Tracer return nil and reduces the
// recording sites to nil checks (see the facebench "trace" ablation).
func WithTracing(enabled bool) Option {
	return func(c *engine.Config) error {
		c.DisableTracing = !enabled
		return nil
	}
}

// WithTraceJournal tunes the trace journal's retention: capacity is the
// size of each ring (pinned anomalies and sampled normals; default 256)
// and sampleEvery keeps 1 in that many unpinned traces (default 16;
// negative disables sampling so only pinned traces are retained).  Zero
// keeps a field at its default.
func WithTraceJournal(capacity, sampleEvery int) Option {
	return func(c *engine.Config) error {
		if capacity < 0 {
			return fmt.Errorf("face: WithTraceJournal(%d, %d): capacity must not be negative", capacity, sampleEvery)
		}
		c.TraceCapacity = capacity
		c.TraceSampleEvery = sampleEvery
		return nil
	}
}

// WithSlowTxThreshold enables the slow-transaction log: every committed
// write transaction whose wall-clock latency reaches d emits a one-line
// per-phase breakdown (admission, lock, buffer, WAL append, durable wait,
// closure) through the sink set by WithSlowTxLog (default log.Printf).
// The same threshold pins slow transactions' span traces in the journal
// (WithTracing), so the log line's trace ID is retrievable later.  Zero
// (the default) disables both; phase tracing itself stays on.
func WithSlowTxThreshold(d time.Duration) Option {
	return func(c *engine.Config) error {
		if d < 0 {
			return fmt.Errorf("face: WithSlowTxThreshold(%v): must not be negative", d)
		}
		c.SlowTxThreshold = d
		return nil
	}
}

// WithSlowTxLog sets the sink that receives slow-transaction log lines
// (default log.Printf).  A nil logf restores the default.
func WithSlowTxLog(logf func(format string, args ...any)) Option {
	return func(c *engine.Config) error {
		c.Logf = logf
		return nil
	}
}

// WithMetricsRegistry shares a caller-supplied metrics registry with the
// engine, so an embedder (like faced) can serve engine and application
// metrics from one endpoint.  Nil lets the engine allocate its own,
// available from DB.Metrics.
func WithMetricsRegistry(reg *obs.Registry) Option {
	return func(c *engine.Config) error {
		c.Obs = reg
		return nil
	}
}
