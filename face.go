// Package face is a Go reproduction of "Flash-Based Extended Cache for
// Higher Throughput and Faster Recovery" (Kang, Lee, Moon — VLDB 2012).
//
// It implements flash memory used as an extension of the DRAM buffer pool
// of a transactional storage engine: pages are cached in flash on exit
// from the DRAM buffer, the flash cache is managed by the paper's
// multi-version FIFO replacement with Group Replacement and Group Second
// Chance, its metadata directory is kept persistent in flash, and restart
// recovery reads the pages it needs from the flash cache instead of the
// disk array.
//
// # Opening a database
//
// A database is opened with functional options; the cache policy is
// selected by name through the policy registry:
//
//	db, err := face.Open(
//	    face.WithDevices(face.NewDiskArray("data", 8, 1<<16), face.NewDisk("log", 1<<16)),
//	    face.WithFlashDevice(face.NewSSD("flash", 8192)),
//	    face.WithPolicy(face.PolicyFaCEGSC),
//	    face.WithBufferPages(256),
//	    face.WithFlashFrames(4096),
//	)
//
// # Persistence
//
// WithDir replaces the simulated devices with real files in a directory —
// data.db, wal.log and flash.cache — whose writes go through pread/pwrite
// and whose durability barriers are real fsyncs:
//
//	db, err := face.Open(
//	    face.WithDir("/var/lib/mydb"),
//	    face.WithPolicy(face.PolicyFaCEGSC),
//	    face.WithFlashFrames(4096),
//	)
//
// Reopening an existing directory runs restart recovery automatically, so
// a process kill followed by Open recovers every committed transaction.
// cmd/faced serves such a directory over TCP (KV namespaces, admission
// control, graceful drain); see internal/server and the README's
// "Serving" section.
//
// # Transactions
//
// Work happens in closure transactions.  Any number of View transactions
// run concurrently; Update transactions are serialized and exclusive with
// every View:
//
//	err = db.Update(ctx, func(tx *face.Tx) error {
//	    id, err := tx.Alloc(face.TypeHeap)
//	    if err != nil {
//	        return err
//	    }
//	    return tx.Modify(id, func(buf face.PageBuf) error {
//	        copy(buf.Payload(), payload)
//	        return nil
//	    })
//	})
//
//	err = db.View(ctx, func(tx *face.Tx) error {
//	    return tx.Read(id, func(buf face.PageBuf) error { ... })
//	})
//
// A nil return commits (with a commit-time log force for Update); an error
// rolls back and is propagated.  The context is checked at the transaction
// boundaries, so a cancelled context never commits.  Writes inside View
// fail with ErrConflict.
//
// With WithLockManager, Update transactions run concurrently under
// page-granularity strict two-phase locking with deadlock detection —
// transactions returning ErrDeadlock have been rolled back and should be
// retried — and concurrent commits batch their log forces through the
// WAL's group-commit protocol.  The default scheduler serializes writers
// and never deadlocks.
//
// # Cache policies
//
// The paper's schemes — FaCE ("face"), FaCE with Group Replacement
// ("face+gr"), FaCE with Group Second Chance ("face+gsc"), Lazy Cleaning
// ("lc"), write-through ("wt") and "none" — self-register in the policy
// registry.  Policies() lists them, and RegisterPolicy adds custom ones:
//
//	face.RegisterPolicy("mine", func(p face.PolicyParams) (face.Extension, error) {
//	    return face.NewPolicy("face+gsc", p) // or any Extension implementation
//	})
//
// The implementation lives in the internal packages: device (calibrated
// simulated block devices), buffer (DRAM buffer pool), face (the cache
// managers), wal, engine, heap/btree, tpcc, and bench (the harness that
// regenerates every paper table and figure; see cmd/facebench).
package face

import (
	"github.com/reprolab/face/internal/bench"
	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/engine"
	intface "github.com/reprolab/face/internal/face"
	"github.com/reprolab/face/internal/lock"
	"github.com/reprolab/face/internal/metrics"
	"github.com/reprolab/face/internal/obs"
	"github.com/reprolab/face/internal/obs/trace"
	"github.com/reprolab/face/internal/page"
)

// Core engine types.
type (
	// DB is a transactional page store with an optional flash cache
	// extension.  View and Update run concurrent closure transactions.
	DB = engine.DB
	// Tx is a transaction.
	Tx = engine.Tx
	// RecoveryReport describes a completed restart.
	RecoveryReport = engine.RecoveryReport

	// PageID identifies a database page.
	PageID = page.ID
	// PageBuf is a raw 4 KiB page image.
	PageBuf = page.Buf
	// PageType tags the content of a page.
	PageType = page.Type

	// Dev is a simulated block device (a single Device or an Array).
	Dev = device.Dev
	// DeviceProfile describes a simulated storage device.
	DeviceProfile = device.Profile

	// Extension is the interface a flash cache manager implements; custom
	// policies registered with RegisterPolicy return one.
	Extension = intface.Extension
	// PolicyParams carries the engine wiring handed to a policy
	// constructor.
	PolicyParams = intface.PolicyParams
	// CacheStats is a snapshot of flash cache activity.
	CacheStats = intface.Stats
	// PipelineStats is a snapshot of the asynchronous I/O pipeline
	// enabled by WithAsyncIO; it is part of DB.Snapshot.
	PipelineStats = metrics.PipelineStats
	// LockStats is a snapshot of the page lock manager enabled by
	// WithLockManager (grants, waits, deadlocks); it is part of
	// DB.Snapshot.
	LockStats = metrics.LockStats
	// ShardStats is the per-shard breakdown of buffer pool activity under
	// WithBufferShards; DB.Snapshot carries one per shard.
	ShardStats = metrics.ShardStats
	// CacheStripeStats is the per-stripe breakdown of flash cache lookup
	// activity under WithCacheStripes; DB.Snapshot carries one per stripe
	// and metrics.StripeImbalance summarises the spread.
	CacheStripeStats = metrics.CacheStripeStats
	// GroupCommitStats is a snapshot of the write-ahead log's commit
	// batching (requests, device writes, piggybacked forces); it is part
	// of DB.Snapshot.
	GroupCommitStats = metrics.GroupCommitStats
	// WalStats is a snapshot of the write-ahead log's commit pipeline
	// (reservations, stalls, syncer coalescing, torn-slot writes); it is
	// part of DB.Snapshot and selected by WithWalSegments.
	WalStats = metrics.WalStats

	// MetricsRegistry is the named registry of histograms, counters and
	// gauges behind DB.Metrics; share one across engine and embedder with
	// WithMetricsRegistry and render it with its WritePrometheus method.
	MetricsRegistry = obs.Registry
	// LatencyHistogram is the lock-free log-bucketed latency histogram
	// the observability layer records into.
	LatencyHistogram = obs.Histogram
	// LatencySummary condenses a histogram window into count, mean and
	// p50/p95/p99/p999/max.
	LatencySummary = obs.Summary
	// TxPhases is the commit-path phase breakdown carried by DB.Snapshot
	// (histogram snapshots per phase; Sub isolates a window and
	// Summaries condenses it).
	TxPhases = obs.TxPhases
	// TxPhaseSummaries is the condensed, JSON-friendly form of TxPhases.
	TxPhaseSummaries = obs.TxPhaseSummaries

	// Tracer owns the request-scoped span journal and flight recorder
	// behind DB.Tracer (nil with WithTracing(false) or
	// WithObservability(false)); its Dump method is what faced serves at
	// /debug/traces.
	Tracer = trace.Tracer
	// Trace is one request-scoped span trace; servers start one per
	// request and the engine attaches its commit-path phases as spans.
	Trace = trace.Trace
	// TraceID identifies a trace; it is the value histogram exemplars
	// carry and the wire protocol propagates.
	TraceID = trace.ID
	// TraceDump is the JSON-friendly journal snapshot returned by
	// Tracer.Dump: retention stats, pinned and sampled traces, and the
	// flight recorder's lifecycle events.
	TraceDump = trace.Dump
	// DeadlockError is the structured form of ErrDeadlock under
	// WithLockManager: the victim, the wait-for cycle it would have
	// closed, and the pages it held.  Match with errors.As; errors.Is
	// against ErrDeadlock keeps working.
	DeadlockError = lock.DeadlockError

	// BenchOptions scales the paper-reproduction experiments.
	BenchOptions = bench.Options
	// Golden is a pre-loaded TPC-C database image used by the experiments.
	Golden = bench.Golden
)

// Built-in cache policy names (see the paper's Table 2 and Section 3).
// The constants are untyped strings: they are accepted by WithPolicy and
// anywhere else a policy name is expected.
const (
	PolicyNone         = "none"
	PolicyFaCE         = "face"
	PolicyFaCEGR       = "face+gr"
	PolicyFaCEGSC      = "face+gsc"
	PolicyLC           = "lc"
	PolicyWriteThrough = "wt"
)

// PageSize is the database page size in bytes (4 KiB).
const PageSize = page.Size

// TypeHeap tags a heap page; it is the page type application transactions
// allocate.
const TypeHeap = page.TypeHeap

// Sentinel errors, matched with errors.Is.
var (
	// ErrClosed is returned by operations on a closed database.
	ErrClosed = engine.ErrClosed
	// ErrCrashed is returned after Crash until the database is reopened.
	ErrCrashed = engine.ErrCrashed
	// ErrNoDevice is returned by Open when a required device is missing.
	ErrNoDevice = engine.ErrNoDevice
	// ErrTxDone is returned by operations on a finished transaction.
	ErrTxDone = engine.ErrTxDone
	// ErrConflict is returned for writes attempted inside a read-only
	// (View) transaction.
	ErrConflict = engine.ErrConflict
	// ErrTxManaged is returned by manual Commit/Abort of a transaction
	// managed by View or Update.
	ErrTxManaged = engine.ErrTxManaged
	// ErrDeadlock is returned by View/Update transactions chosen as
	// deadlock victims under WithLockManager.  The transaction has been
	// rolled back; retrying it is safe and expected.
	ErrDeadlock = engine.ErrDeadlock
)

// Open creates or reopens a database configured by the given options.  At
// minimum the data and log devices must be provided with WithDevices.
func Open(opts ...Option) (*DB, error) {
	cfg := engine.Config{
		BufferPages: DefaultBufferPages,
		Policy:      engine.PolicyNone,
	}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return engine.Open(cfg)
}

// RegisterPolicy makes a cache policy selectable by name through
// WithPolicy.  The built-in schemes register themselves; registering an
// empty or duplicate name panics.  A nil constructor registers a policy
// that runs without a flash cache.
func RegisterPolicy(name string, ctor func(PolicyParams) (Extension, error)) {
	if ctor == nil {
		intface.RegisterPolicy(name, nil)
		return
	}
	intface.RegisterPolicy(name, intface.PolicyConstructor(ctor))
}

// Policies returns the registered cache policy names in sorted order.
func Policies() []string { return intface.Policies() }

// NewPolicy constructs the named policy's cache manager; it is the hook
// custom constructors use to wrap or delegate to built-in policies.
func NewPolicy(name string, p PolicyParams) (Extension, error) {
	return intface.NewPolicy(name, p)
}

// NewDisk creates a simulated enterprise 15k-RPM disk drive with the given
// capacity in 4 KiB blocks.
func NewDisk(name string, blocks int64) *device.Device {
	return device.New(name, device.ProfileCheetah15K, blocks)
}

// NewDiskArray creates a simulated RAID-0 array of n 15k-RPM disk drives.
func NewDiskArray(name string, n int, blocks int64) *device.Array {
	return device.NewArray(name, device.ProfileCheetah15K, n, blocks)
}

// NewSSD creates a simulated MLC flash SSD (Samsung 470) with the given
// capacity in 4 KiB blocks.
func NewSSD(name string, blocks int64) *device.Device {
	return device.New(name, device.ProfileSamsung470, blocks)
}

// NewSLCSSD creates a simulated SLC flash SSD (Intel X25-E).
func NewSLCSSD(name string, blocks int64) *device.Device {
	return device.New(name, device.ProfileIntelX25E, blocks)
}

// NewMetricsRegistry creates an empty metrics registry to share between
// the engine (WithMetricsRegistry) and the embedder's own exporter; see
// MetricsRegistry.WritePrometheus and MetricsRegistry.Expvar.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DefaultBenchOptions returns the experiment scale used by the facebench
// command.
func DefaultBenchOptions() BenchOptions { return bench.DefaultOptions() }

// QuickBenchOptions returns a small experiment scale for tests.
func QuickBenchOptions() BenchOptions { return bench.QuickOptions() }

// BuildGolden loads the TPC-C database image used by the experiments.
func BuildGolden(opts BenchOptions) (*Golden, error) { return bench.BuildGolden(opts) }
