// Package face is a Go reproduction of "Flash-Based Extended Cache for
// Higher Throughput and Faster Recovery" (Kang, Lee, Moon — VLDB 2012).
//
// It implements flash memory used as an extension of the DRAM buffer pool
// of a transactional storage engine: pages are cached in flash on exit
// from the DRAM buffer, the flash cache is managed by the paper's
// multi-version FIFO replacement with Group Replacement and Group Second
// Chance, its metadata directory is kept persistent in flash, and restart
// recovery reads the pages it needs from the flash cache instead of the
// disk array.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/device:   calibrated simulated block devices (Table 1)
//   - internal/buffer:   DRAM buffer pool with dirty/fdirty flags
//   - internal/face:     the flash cache managers (FaCE, GR, GSC, LC, WT)
//   - internal/wal:      write-ahead log
//   - internal/engine:   the transactional engine tying them together
//   - internal/heap, internal/btree: record layer used by the workload
//   - internal/tpcc:     scaled TPC-C workload generator
//   - internal/bench:    harness that regenerates every paper table/figure
//
// The types exported here are aliases of the engine, device and bench
// types, so the facade can be used without importing internal packages:
//
//	db, err := face.Open(face.Config{
//	    DataDev:     face.NewDiskArray("data", 8, 1<<16),
//	    LogDev:      face.NewDisk("log", 1<<16),
//	    FlashDev:    face.NewSSD("flash", 8192),
//	    BufferPages: 256,
//	    Policy:      face.PolicyFaCEGSC,
//	    FlashFrames: 4096,
//	})
package face

import (
	"github.com/reprolab/face/internal/bench"
	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/page"
)

// Core engine types.
type (
	// DB is a transactional page store with an optional flash cache
	// extension.
	DB = engine.DB
	// Tx is a transaction.
	Tx = engine.Tx
	// Config describes a database instance.
	Config = engine.Config
	// CachePolicy selects the flash cache scheme.
	CachePolicy = engine.CachePolicy
	// RecoveryReport describes a completed restart.
	RecoveryReport = engine.RecoveryReport

	// PageID identifies a database page.
	PageID = page.ID
	// PageBuf is a raw 4 KiB page image.
	PageBuf = page.Buf

	// DeviceProfile describes a simulated storage device.
	DeviceProfile = device.Profile

	// BenchOptions scales the paper-reproduction experiments.
	BenchOptions = bench.Options
	// Golden is a pre-loaded TPC-C database image used by the experiments.
	Golden = bench.Golden
)

// Cache policies (see the paper's Table 2 and Section 3).
const (
	PolicyNone         = engine.PolicyNone
	PolicyFaCE         = engine.PolicyFaCE
	PolicyFaCEGR       = engine.PolicyFaCEGR
	PolicyFaCEGSC      = engine.PolicyFaCEGSC
	PolicyLC           = engine.PolicyLC
	PolicyWriteThrough = engine.PolicyWriteThrough
)

// PageSize is the database page size in bytes (4 KiB).
const PageSize = page.Size

// Open creates or reopens a database on the given devices.
func Open(cfg Config) (*DB, error) { return engine.Open(cfg) }

// NewDisk creates a simulated enterprise 15k-RPM disk drive with the given
// capacity in 4 KiB blocks.
func NewDisk(name string, blocks int64) *device.Device {
	return device.New(name, device.ProfileCheetah15K, blocks)
}

// NewDiskArray creates a simulated RAID-0 array of n 15k-RPM disk drives.
func NewDiskArray(name string, n int, blocks int64) *device.Array {
	return device.NewArray(name, device.ProfileCheetah15K, n, blocks)
}

// NewSSD creates a simulated MLC flash SSD (Samsung 470) with the given
// capacity in 4 KiB blocks.
func NewSSD(name string, blocks int64) *device.Device {
	return device.New(name, device.ProfileSamsung470, blocks)
}

// NewSLCSSD creates a simulated SLC flash SSD (Intel X25-E).
func NewSLCSSD(name string, blocks int64) *device.Device {
	return device.New(name, device.ProfileIntelX25E, blocks)
}

// DefaultBenchOptions returns the experiment scale used by the facebench
// command.
func DefaultBenchOptions() BenchOptions { return bench.DefaultOptions() }

// QuickBenchOptions returns a small experiment scale for tests.
func QuickBenchOptions() BenchOptions { return bench.QuickOptions() }

// BuildGolden loads the TPC-C database image used by the experiments.
func BuildGolden(opts BenchOptions) (*Golden, error) { return bench.BuildGolden(opts) }
