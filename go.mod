module github.com/reprolab/face

go 1.24
