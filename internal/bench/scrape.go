package bench

import (
	"strconv"
	"strings"
	"time"
)

// FillServerMetrics folds a Prometheus text-exposition scrape of faced's
// /metrics endpoint into the result's server-side fields.  It reads the
// face_server_op_seconds summary quantiles for GET and SET (exported in
// seconds, stored here as durations), the face_server_rejected_total
// shed counter, and the face_trace_pinned_total anomaly-trace counter;
// everything else in the scrape is ignored.  Unparseable
// lines are skipped, so a scrape from a newer or older server degrades
// to missing fields rather than an error.
func (r *ServeResult) FillServerMetrics(metricsText string) {
	for _, line := range strings.Split(metricsText, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name, val := line[:sp], strings.TrimSpace(line[sp+1:])
		switch name {
		case `face_server_op_seconds{op="get",quantile="0.5"}`:
			r.ServerGetP50 = secondsToDuration(val, &r.ServerScraped)
		case `face_server_op_seconds{op="get",quantile="0.99"}`:
			r.ServerGetP99 = secondsToDuration(val, &r.ServerScraped)
		case `face_server_op_seconds{op="set",quantile="0.5"}`:
			r.ServerSetP50 = secondsToDuration(val, &r.ServerScraped)
		case `face_server_op_seconds{op="set",quantile="0.99"}`:
			r.ServerSetP99 = secondsToDuration(val, &r.ServerScraped)
		case "face_server_rejected_total":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.ServerShed = n
				r.ServerScraped = true
			}
		case "face_trace_pinned_total":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.ServerPinnedTraces = n
				r.ServerScraped = true
			}
		}
	}
}

// secondsToDuration parses a Prometheus seconds value into a Duration,
// marking *ok on success.
func secondsToDuration(s string, ok *bool) time.Duration {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	*ok = true
	return time.Duration(f * float64(time.Second))
}
