package bench

import (
	"os"
	"testing"

	"github.com/reprolab/face/internal/engine"
)

// TestFileBackendRun drives one configuration end to end on the
// file-backed device stack: golden image installed into real files, the
// workload running with wall-clock accounting, and the per-run clone
// directory removed afterwards.
func TestFileBackendRun(t *testing.T) {
	opts := QuickOptions()
	opts.Dir = t.TempDir()
	opts.NoFsync = true // keep the unit test fast; fsync is covered by the wal/engine tests
	g, err := BuildGolden(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(RunSpec{
		Policy:        engine.PolicyFaCEGSC,
		CacheFraction: 0.15,
		WarmupTx:      40,
		MeasureTx:     80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != BackendFile {
		t.Fatalf("Backend = %q, want %q", res.Backend, BackendFile)
	}
	if !res.WallclockMode {
		t.Fatal("file-backend result not marked for wall-clock reporting")
	}
	if res.WallClock <= 0 || res.TpmCWall <= 0 {
		t.Fatalf("wall-clock figures missing: wall=%v tpmCWall=%f", res.WallClock, res.TpmCWall)
	}
	if res.NewOrders <= 0 {
		t.Fatal("no NewOrder transactions measured")
	}
	if res.FlashHitRate <= 0 {
		t.Fatal("flash cache served no hits on the file backend")
	}
	// The per-run clone directory is removed once the run ends.
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("run directories left behind: %v", entries)
	}

	// An explicit Backend overrides the option-level default.
	memRes, err := g.Run(RunSpec{
		Policy:        engine.PolicyFaCEGSC,
		CacheFraction: 0.15,
		Backend:       BackendMem,
		WarmupTx:      40,
		MeasureTx:     80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if memRes.Backend != BackendMem {
		t.Fatalf("explicit mem backend reported %q", memRes.Backend)
	}
}
