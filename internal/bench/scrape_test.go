package bench

import (
	"strings"
	"testing"
	"time"
)

// TestMetricsScrape checks that a faced /metrics scrape folds into the
// serve result: summary quantiles become durations, the shed counter
// lands, and unknown or malformed lines are ignored.
func TestMetricsScrape(t *testing.T) {
	scrape := strings.Join([]string{
		`# HELP face_server_op_seconds request latency`,
		`# TYPE face_server_op_seconds summary`,
		`face_server_op_seconds{op="get",quantile="0.5"} 0.000128`,
		`face_server_op_seconds{op="get",quantile="0.99"} 0.002048`,
		`face_server_op_seconds{op="set",quantile="0.5"} 0.000256`,
		`face_server_op_seconds{op="set",quantile="0.99"} 0.004096`,
		`face_server_op_seconds_count{op="get"} 100`,
		`face_server_rejected_total 7`,
		`face_trace_pinned_total 3`,
		`face_server_requests_total 123`,
		`garbage line without value`,
		`face_server_op_seconds{op="get",quantile="0.999"} not-a-number`,
		``,
	}, "\n")

	var r ServeResult
	r.FillServerMetrics(scrape)
	if !r.ServerScraped {
		t.Fatal("ServerScraped = false after a good scrape")
	}
	if want := 128 * time.Microsecond; r.ServerGetP50 != want {
		t.Errorf("ServerGetP50 = %v, want %v", r.ServerGetP50, want)
	}
	if want := 2048 * time.Microsecond; r.ServerGetP99 != want {
		t.Errorf("ServerGetP99 = %v, want %v", r.ServerGetP99, want)
	}
	if want := 256 * time.Microsecond; r.ServerSetP50 != want {
		t.Errorf("ServerSetP50 = %v, want %v", r.ServerSetP50, want)
	}
	if want := 4096 * time.Microsecond; r.ServerSetP99 != want {
		t.Errorf("ServerSetP99 = %v, want %v", r.ServerSetP99, want)
	}
	if r.ServerShed != 7 {
		t.Errorf("ServerShed = %d, want 7", r.ServerShed)
	}
	if r.ServerPinnedTraces != 3 {
		t.Errorf("ServerPinnedTraces = %d, want 3", r.ServerPinnedTraces)
	}

	var sb strings.Builder
	FormatServe(&sb, &r)
	if !strings.Contains(sb.String(), "shed 7") {
		t.Errorf("FormatServe missing server line:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "pinned traces 3") {
		t.Errorf("FormatServe missing pinned-trace count:\n%s", sb.String())
	}
}

// TestMetricsScrapeEmpty checks that an empty or irrelevant scrape
// leaves the server-side fields unset.
func TestMetricsScrapeEmpty(t *testing.T) {
	var r ServeResult
	r.FillServerMetrics("go_goroutines 12\n")
	if r.ServerScraped {
		t.Fatal("ServerScraped = true for an irrelevant scrape")
	}
	var sb strings.Builder
	FormatServe(&sb, &r)
	if strings.Contains(sb.String(), "server ") {
		t.Errorf("FormatServe printed server line without a scrape:\n%s", sb.String())
	}
}
