package bench

import (
	"fmt"

	"github.com/reprolab/face/internal/engine"
)

// Ablations beyond the paper's tables: each isolates one design choice
// discussed in Section 3 of the paper so its contribution can be measured
// separately.

// AblationSyncPolicy compares write-back (FaCE+GSC) against a TAC-style
// write-through cache at the same cache size ("Write-Back than
// Write-Through", Section 3.2).
func (g *Golden) AblationSyncPolicy(cacheFraction float64) ([]Result, error) {
	if cacheFraction <= 0 {
		cacheFraction = 0.12
	}
	var out []Result
	for _, spec := range []RunSpec{
		{Policy: engine.PolicyFaCEGSC, CacheFraction: cacheFraction, Label: "write-back (FaCE+GSC)"},
		{Policy: engine.PolicyWriteThrough, CacheFraction: cacheFraction, Label: "write-through (TAC-style)"},
	} {
		res, err := g.Run(spec)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationAsyncIO compares the synchronous flash I/O path (every group
// write and destage inline on the evicting transaction) against the
// asynchronous pipeline (staging ring, background group writer, destager
// workers) at the same cache size, for both FaCE+GR and FaCE+GSC.  The
// async pipeline batches staged evictions into fuller group writes and
// coalesces repeated evictions of hot pages in the ring, which is where
// its simulated-time win comes from; its wall-clock win (DRAM eviction no
// longer blocking on flash) is demonstrated by the concurrency tests.
func (g *Golden) AblationAsyncIO(cacheFraction float64) ([]Result, error) {
	if cacheFraction <= 0 {
		cacheFraction = 0.12
	}
	// The ring is sized relative to the replacement group so its transient
	// contents stay small next to the cache itself and the hit ratios of
	// the two modes remain comparable.
	depth := 4 * g.opts.GroupSize
	var out []Result
	for _, spec := range []RunSpec{
		{Policy: engine.PolicyFaCEGR, CacheFraction: cacheFraction, Label: "GR sync"},
		{Policy: engine.PolicyFaCEGR, CacheFraction: cacheFraction, AsyncDepth: depth, IOWriters: 2, Label: "GR async"},
		{Policy: engine.PolicyFaCEGSC, CacheFraction: cacheFraction, Label: "GSC sync"},
		{Policy: engine.PolicyFaCEGSC, CacheFraction: cacheFraction, AsyncDepth: depth, IOWriters: 2, Label: "GSC async"},
	} {
		res, err := g.Run(spec)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationLockManager compares the single-writer transaction scheduler
// against page-granularity two-phase locking (with WAL group commit) at
// increasing terminal counts.
//
// The configuration is deliberately log-bound: the DRAM buffer holds the
// whole database and no flash cache is attached, so the commit-time log
// force is the dominant per-transaction device cost — the resource the
// scheduler change actually affects.  (Under an I/O-bound configuration
// the data array serves the same page misses either way and masks the
// commit path entirely.)  The workload schedule is identical across rows
// — terminals claim slots from one precomputed transaction sequence — so
// rows differ only in scheduling: lock waits, deadlock retries, and how
// many commit forces share one log write.  The multi-writer win in
// simulated time comes from group commit (fewer, larger log writes); its
// wall-clock win (closures overlapping) is demonstrated by the engine's
// concurrency tests.
func (g *Golden) AblationLockManager(terminalCounts []int) ([]Result, error) {
	if len(terminalCounts) == 0 {
		terminalCounts = []int{1, 2, 4, 8}
	}
	bufPages := int(g.dbPages) + 64
	// Deep warm-up: the measurement window must start with the buffer hot
	// and the log already the dominant accumulated resource, otherwise
	// cold-start data-array reads (identical in every row) hide the
	// commit-path difference being measured.
	warmup := g.opts.WarmupTx + 3*g.opts.MeasureTx
	specs := []RunSpec{
		{Policy: engine.PolicyNone, BufferPages: bufPages, Terminals: 1, WarmupTx: warmup, Label: "single-writer"},
	}
	for _, n := range terminalCounts {
		specs = append(specs, RunSpec{
			Policy:      engine.PolicyNone,
			BufferPages: bufPages,
			PageLocks:   true,
			Terminals:   n,
			WarmupTx:    warmup,
			Label:       fmt.Sprintf("2PL x%d", n),
		})
	}
	var out []Result
	for _, spec := range specs {
		res, err := g.Run(spec)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationWalPipeline compares the WAL's mutex-compat front end (one lock
// serializes every append, the leader/follower protocol batches forces)
// against the lock-free reservation pipeline (atomic log-space
// reservation, parallel record copy, dedicated syncer coalescing forces)
// at increasing terminal counts.
//
// Like AblationLockManager the configuration is deliberately log-bound:
// the DRAM buffer holds the whole database and no flash cache is
// attached, so the commit path is what the rows measure.  All rows run
// under 2PL with group commit; they differ only in the log front end.
// The headline columns are Forces — which must grow sublinearly in
// terminals as the syncer coalesces parked commits — and the wall-clock
// throughput, where removing the append mutex and moving fsync off the
// commit path shows up.
func (g *Golden) AblationWalPipeline(terminalCounts []int) ([]Result, error) {
	if len(terminalCounts) == 0 {
		terminalCounts = []int{1, 2, 4, 8}
	}
	bufPages := int(g.dbPages) + 64
	// Deep warm-up, as in AblationLockManager: the window must start hot
	// so commit-path costs dominate.
	warmup := g.opts.WarmupTx + 3*g.opts.MeasureTx
	modes := []struct {
		segments int
		name     string
	}{
		{1, "mutex"},
		{0, "reserved"},
	}
	var specs []RunSpec
	for _, mode := range modes {
		for _, n := range terminalCounts {
			specs = append(specs, RunSpec{
				Policy:      engine.PolicyNone,
				BufferPages: bufPages,
				PageLocks:   true,
				Terminals:   n,
				WalSegments: mode.segments,
				WarmupTx:    warmup,
				Label:       fmt.Sprintf("wal=%s x%d", mode.name, n),
			})
		}
	}
	var out []Result
	for _, spec := range specs {
		res, err := g.Run(spec)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationObservability prices the observability layer: identical
// log-bound configurations run with the commit-path phase tracing and
// registry enabled (the default) and with DisableObs, which compiles the
// layer down to nil checks.
//
// Like AblationLockManager the configuration is log-bound (whole
// database in DRAM, no flash cache) so the per-transaction commit path —
// exactly where the tracing sits — dominates; any overhead the histogram
// records and time.Now calls add appears in the wall-clock columns.  The
// simulated-time figures (TpmC) charge modeled device and CPU time only,
// so they are observability-independent by construction; the wall-clock
// throughput (TpmCWall) is the column the rows are compared on, and the
// acceptance bar is observability costing no more than ~2%.
func (g *Golden) AblationObservability(terminalCounts []int) ([]Result, error) {
	if len(terminalCounts) == 0 {
		terminalCounts = []int{1, 4}
	}
	bufPages := int(g.dbPages) + 64
	// Deep warm-up, as in AblationLockManager: the window must start hot
	// so commit-path costs dominate.
	warmup := g.opts.WarmupTx + 3*g.opts.MeasureTx
	modes := []struct {
		disable bool
		name    string
	}{
		{false, "obs on"},
		{true, "obs off"},
	}
	var out []Result
	for _, mode := range modes {
		for _, n := range terminalCounts {
			res, err := g.Run(RunSpec{
				Policy:      engine.PolicyNone,
				BufferPages: bufPages,
				PageLocks:   true,
				Terminals:   n,
				DisableObs:  mode.disable,
				WarmupTx:    warmup,
				Label:       fmt.Sprintf("%s x%d", mode.name, n),
			})
			if err != nil {
				return out, err
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// AblationTracing prices the request-scoped span tracer on top of the
// observability layer: identical log-bound configurations run with the
// full layer (span tracer + phase histograms, the default), with the
// tracer compiled down to nil checks (DisableTracing), and with the
// whole observability layer off — three rows that separate what tracing
// adds over histograms from what observability costs at all.
//
// The configuration and warm-up mirror AblationObservability: log-bound
// (whole database in DRAM, no flash cache) so the per-transaction
// commit path — where every span is recorded — dominates, and the
// wall-clock throughput (TpmCWall) is the column the rows are compared
// on.  The acceptance bar is the tracer costing no more than ~2% over
// the trace-off row, and exactly nothing when observability is off.
func (g *Golden) AblationTracing(terminalCounts []int) ([]Result, error) {
	if len(terminalCounts) == 0 {
		terminalCounts = []int{1, 4}
	}
	bufPages := int(g.dbPages) + 64
	warmup := g.opts.WarmupTx + 3*g.opts.MeasureTx
	modes := []struct {
		disableObs   bool
		disableTrace bool
		name         string
	}{
		{false, false, "trace on"},
		{false, true, "trace off"},
		{true, false, "obs off"},
	}
	var out []Result
	for _, mode := range modes {
		for _, n := range terminalCounts {
			res, err := g.Run(RunSpec{
				Policy:         engine.PolicyNone,
				BufferPages:    bufPages,
				PageLocks:      true,
				Terminals:      n,
				DisableObs:     mode.disableObs,
				DisableTracing: mode.disableTrace,
				WarmupTx:       warmup,
				Label:          fmt.Sprintf("%s x%d", mode.name, n),
			})
			if err != nil {
				return out, err
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// AblationShards measures the DRAM/flash hot-path sharding: the striped
// buffer pool and cache directory against the historical single-mutex
// structures, at increasing terminal counts.
//
// Like AblationLockManager the configuration keeps the whole database in
// the DRAM buffer, so nearly every page access is a DRAM hit and the run
// is dominated by the hot path the sharding stripes.  The simulated-time
// figures (TpmC) are shard-independent by design — the model charges the
// same CPU and device time whichever mutex a hit took — so the columns to
// read are the wall-clock ones: HitsPerSecWall, the DRAM hits retired per
// host second, stops scaling with terminals when every hit funnels through
// one pool mutex and keeps scaling when the pool is striped.  shardCounts
// selects the stripe counts to compare (default 1 vs GOMAXPROCS-derived);
// terminalCounts the concurrency sweep (default 1/2/4/8).
func (g *Golden) AblationShards(shardCounts, terminalCounts []int) ([]Result, error) {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, engine.DefaultShards()}
		if shardCounts[1] == 1 {
			shardCounts[1] = 4
		}
	}
	if len(terminalCounts) == 0 {
		terminalCounts = []int{1, 2, 4, 8}
	}
	bufPages := int(g.dbPages) + 64
	warmup := g.opts.WarmupTx + g.opts.MeasureTx
	var out []Result
	for _, shards := range shardCounts {
		for _, n := range terminalCounts {
			res, err := g.Run(RunSpec{
				Policy:       engine.PolicyNone,
				BufferPages:  bufPages,
				BufferShards: shards,
				CacheStripes: shards,
				PageLocks:    true,
				Terminals:    n,
				WarmupTx:     warmup,
				Label:        fmt.Sprintf("shards=%d x%d", shards, n),
			})
			if err != nil {
				return out, err
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// AblationGroupSize sweeps the replacement batch size of Group Second
// Chance (the paper suggests the number of pages in a flash block,
// typically 64 or 128).
func (g *Golden) AblationGroupSize(cacheFraction float64, groupSizes []int) ([]Result, error) {
	if cacheFraction <= 0 {
		cacheFraction = 0.12
	}
	if len(groupSizes) == 0 {
		groupSizes = []int{1, 16, 64, 128}
	}
	var out []Result
	for _, gs := range groupSizes {
		policy := engine.PolicyFaCEGSC
		if gs <= 1 {
			policy = engine.PolicyFaCE
		}
		res, err := g.Run(RunSpec{
			Policy:        policy,
			CacheFraction: cacheFraction,
			GroupSize:     gs,
			Label:         fmt.Sprintf("group=%d", gs),
		})
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationSegmentSize sweeps the persistent metadata segment size
// (Section 4.1; the paper uses 64 000 entries ≈ 1.5 MB).
func (g *Golden) AblationSegmentSize(cacheFraction float64, segmentSizes []int) ([]Result, error) {
	if cacheFraction <= 0 {
		cacheFraction = 0.12
	}
	if len(segmentSizes) == 0 {
		segmentSizes = []int{128, 1024, 8192}
	}
	var out []Result
	for _, ss := range segmentSizes {
		res, err := g.Run(RunSpec{
			Policy:         engine.PolicyFaCEGSC,
			CacheFraction:  cacheFraction,
			SegmentEntries: ss,
			Label:          fmt.Sprintf("segment=%d", ss),
		})
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}
