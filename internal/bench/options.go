// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 5) against the simulated
// devices, plus a set of ablation studies for the design choices discussed
// in Section 3.
//
// The harness loads one "golden" TPC-C database image per option set and
// clones it (device contents and catalog) into every experiment
// configuration, so all configurations start from an identical, fully
// checkpointed database.  Measurements are taken between two snapshots
// after a warm-up phase, as in the paper ("all performance measurements
// were done after the flash cache was fully populated").
package bench

import (
	"io"
	"time"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/engine"
)

// Options scales the experiments.  The defaults preserve the paper's
// ratios (DRAM buffer ≈ 0.4 % of the database, flash cache 4–28 % of the
// database, 8-disk RAID-0 data volume) at laptop scale.
type Options struct {
	// Warehouses is the TPC-C scale factor.
	Warehouses int
	// BufferFraction is the DRAM buffer size as a fraction of the
	// database (the paper uses 200 MB / 50 GB = 0.4 %).
	BufferFraction float64
	// MinBufferPages bounds the buffer from below at small scales.
	MinBufferPages int
	// WarmupTx and MeasureTx are the number of transactions run before
	// and during the measurement window of each configuration.
	WarmupTx  int
	MeasureTx int
	// CacheFractions are the flash cache sizes (fraction of the database)
	// used for Tables 3 and 4 (the paper sweeps 2–10 GB of a 50 GB
	// database).
	CacheFractions []float64
	// Figure4Fractions are the cache sizes for Figure 4 (4–28 % of the
	// database).
	Figure4Fractions []float64
	// DiskCounts are the RAID-0 sizes for Figure 5.
	DiskCounts []int
	// DefaultDisks is the data array size for all other experiments.
	DefaultDisks int
	// CheckpointIntervals are the simulated checkpoint intervals for
	// Table 6 (the paper uses 60/120/180 s of wall-clock time; the
	// defaults here are scaled down with the database so that the pages
	// dirtied during one interval still fit in the flash cache, as they do
	// in the paper's configuration).
	CheckpointIntervals []time.Duration
	// RecoveryBufferPages is the DRAM buffer used by the recovery
	// experiments (Table 6, Figure 6).  It is larger than the throughput
	// experiments' buffer so that a crash actually loses a meaningful
	// amount of buffered work, as it does at the paper's scale.
	RecoveryBufferPages int
	// RecoveryCacheFraction is the flash cache size used by the recovery
	// experiments.
	RecoveryCacheFraction float64
	// Figure6Buckets and Figure6BucketWidth shape the post-restart
	// throughput timeline of Figure 6.
	Figure6Buckets     int
	Figure6BucketWidth time.Duration
	// GroupSize and SegmentEntries configure the FaCE cache.
	GroupSize      int
	SegmentEntries int
	// Shards, when set (1 or more), stripes the DRAM buffer pool and the
	// flash cache directory of every configuration over this many
	// shards/stripes (the facebench -shards flag).  Zero selects 1 —
	// the historical single-mutex structures — so published experiment
	// numbers do not depend on the machine's core count.
	Shards int
	// Dir, when non-empty, runs every configuration on persistent
	// file-backed devices (internal/device/filedev) in a fresh
	// subdirectory of Dir per run instead of the simulated in-memory
	// devices (the facebench -dir flag): pread/pwrite I/O, real fsync on
	// every commit force and checkpoint, and restart recovery replaying
	// from real files.  Wall-clock figures (TpmCWall, WallClock) become
	// the headline columns of the text reports.
	Dir string
	// Wallclock adds the wall-clock throughput columns to the text
	// reports even for in-memory runs (they are always included when Dir
	// selects the file backend).  JSON reports carry both either way.
	Wallclock bool
	// NoFsync disables the fsync durability barrier of the file backend
	// (the facebench -nofsync flag): faster sweeps, host-crash durability
	// forfeited.  Ignored without Dir.
	NoFsync bool
	// Terminals, when set (1 or more), runs every throughput experiment
	// with the page-lock (2PL) transaction scheduler and this many
	// concurrent terminal goroutines instead of the classic single-stream
	// driver (the facebench -terminals flag); 1 gives the scheduled
	// single-terminal baseline.  Recovery experiments keep the classic
	// driver.  Zero preserves the paper-faithful single-stream setup.
	Terminals int
	// MLCProfile and SLCProfile are the flash devices for Figure 4(a) and
	// 4(b).
	MLCProfile device.Profile
	SLCProfile device.Profile
	// Seed makes runs deterministic.
	Seed int64
	// Progress, when non-nil, receives one line per completed run.  It is
	// excluded from JSON reports.
	Progress io.Writer `json:"-"`
}

// DefaultOptions returns the scale used by the facebench CLI.
func DefaultOptions() Options {
	return Options{
		Warehouses:            2,
		BufferFraction:        0.004,
		MinBufferPages:        24,
		WarmupTx:              1500,
		MeasureTx:             3000,
		CacheFractions:        []float64{0.04, 0.08, 0.12, 0.16, 0.20},
		Figure4Fractions:      []float64{0.04, 0.08, 0.12, 0.16, 0.20, 0.24, 0.28},
		DiskCounts:            []int{4, 8, 12, 16},
		DefaultDisks:          8,
		CheckpointIntervals:   []time.Duration{500 * time.Millisecond, 1 * time.Second, 1500 * time.Millisecond},
		RecoveryBufferPages:   192,
		RecoveryCacheFraction: 0.35,
		Figure6Buckets:        16,
		Figure6BucketWidth:    500 * time.Millisecond,
		GroupSize:             64,
		SegmentEntries:        1024,
		MLCProfile:            device.ProfileSamsung470,
		SLCProfile:            device.ProfileIntelX25E,
		Seed:                  1,
	}
}

// QuickOptions returns a much smaller scale intended for unit tests and
// testing.B benchmarks.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Warehouses = 1
	o.WarmupTx = 150
	o.MeasureTx = 300
	o.CacheFractions = []float64{0.05, 0.15}
	o.Figure4Fractions = []float64{0.05, 0.15}
	o.DiskCounts = []int{4, 8}
	o.CheckpointIntervals = []time.Duration{500 * time.Millisecond}
	o.RecoveryBufferPages = 448
	o.RecoveryCacheFraction = 0.6
	o.Figure6Buckets = 6
	o.Figure6BucketWidth = 250 * time.Millisecond
	o.GroupSize = 16
	o.SegmentEntries = 256
	o.MinBufferPages = 24
	return o
}

func (o *Options) normalize() {
	d := DefaultOptions()
	if o.Warehouses < 1 {
		o.Warehouses = d.Warehouses
	}
	if o.BufferFraction <= 0 {
		o.BufferFraction = d.BufferFraction
	}
	if o.MinBufferPages < 8 {
		o.MinBufferPages = d.MinBufferPages
	}
	if o.WarmupTx < 0 {
		o.WarmupTx = d.WarmupTx
	}
	if o.MeasureTx < 1 {
		o.MeasureTx = d.MeasureTx
	}
	if len(o.CacheFractions) == 0 {
		o.CacheFractions = d.CacheFractions
	}
	if len(o.Figure4Fractions) == 0 {
		o.Figure4Fractions = d.Figure4Fractions
	}
	if len(o.DiskCounts) == 0 {
		o.DiskCounts = d.DiskCounts
	}
	if o.DefaultDisks < 1 {
		o.DefaultDisks = d.DefaultDisks
	}
	if len(o.CheckpointIntervals) == 0 {
		o.CheckpointIntervals = d.CheckpointIntervals
	}
	if o.RecoveryBufferPages < 1 {
		o.RecoveryBufferPages = d.RecoveryBufferPages
	}
	if o.RecoveryCacheFraction <= 0 {
		o.RecoveryCacheFraction = d.RecoveryCacheFraction
	}
	if o.Figure6Buckets < 1 {
		o.Figure6Buckets = d.Figure6Buckets
	}
	if o.Figure6BucketWidth <= 0 {
		o.Figure6BucketWidth = d.Figure6BucketWidth
	}
	if o.GroupSize < 1 {
		o.GroupSize = d.GroupSize
	}
	if o.SegmentEntries < 16 {
		o.SegmentEntries = d.SegmentEntries
	}
	if o.MLCProfile.Name == "" {
		o.MLCProfile = d.MLCProfile
	}
	if o.SLCProfile.Name == "" {
		o.SLCProfile = d.SLCProfile
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
}

// ComparedPolicies are the cache schemes compared throughout the paper's
// evaluation, in presentation order.
func ComparedPolicies() []engine.CachePolicy {
	return []engine.CachePolicy{
		engine.PolicyLC,
		engine.PolicyFaCE,
		engine.PolicyFaCEGR,
		engine.PolicyFaCEGSC,
	}
}
