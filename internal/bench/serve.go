package bench

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// ServeResult is one served-traffic measurement: cmd/faceload driving
// cmd/faced over TCP with an open-loop arrival process.  It is the
// payload the facebench schema (since v5) carries for network serving,
// emitted as
//
//	{"schema": "facebench/v8", "experiments": {"serve": {...}}}
//
// Latencies are measured from each request's scheduled arrival time, not
// from its send time, so a stalled server shows up as growing latency
// instead of being hidden by coordinated omission.
type ServeResult struct {
	Label string `json:"label"`
	// Conns is the number of client TCP connections.
	Conns int `json:"conns"`
	// Workers is the number of in-flight request slots (goroutines).
	Workers int `json:"workers"`
	// OfferedQPS is the configured open-loop arrival rate; AchievedQPS is
	// completed requests divided by the measured duration.
	OfferedQPS  float64       `json:"offered_qps"`
	AchievedQPS float64       `json:"achieved_qps"`
	Duration    time.Duration `json:"duration_ns"`
	// Requests counts completions by outcome.  Busy are admission-control
	// rejections (retryable by contract, not retried by the generator so
	// overload stays visible); Dropped are arrivals abandoned because
	// every worker was still busy when their slot came up.
	Requests  int64 `json:"requests"`
	Succeeded int64 `json:"succeeded"`
	NotFound  int64 `json:"not_found"`
	Busy      int64 `json:"busy"`
	Timeouts  int64 `json:"timeouts"`
	Errors    int64 `json:"errors"`
	Dropped   int64 `json:"dropped"`
	// Workload shape.
	ReadFraction float64 `json:"read_fraction"`
	ValueSize    int     `json:"value_size"`
	Keys         uint64  `json:"keys"`
	Skew         float64 `json:"zipf_skew"`
	// Latency percentiles over successful and not-found completions.
	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
	Max  time.Duration `json:"max_ns"`
	// Server-side view, scraped from faced's /metrics endpoint at run
	// end when faceload is given -metrics.  The client percentiles above
	// include scheduling delay and network queueing; these do not, so the
	// gap between client p99 and server p99 is time spent queued.
	ServerScraped bool          `json:"server_scraped,omitempty"`
	ServerGetP50  time.Duration `json:"server_get_p50_ns,omitempty"`
	ServerGetP99  time.Duration `json:"server_get_p99_ns,omitempty"`
	ServerSetP50  time.Duration `json:"server_set_p50_ns,omitempty"`
	ServerSetP99  time.Duration `json:"server_set_p99_ns,omitempty"`
	// ServerShed is face_server_rejected_total: write requests refused
	// with BUSY by admission control over the server's lifetime.
	ServerShed int64 `json:"server_shed,omitempty"`
	// ServerPinnedTraces is face_trace_pinned_total: anomaly traces (slow
	// transactions, deadlock victims, admission sheds, WAL sync stalls)
	// pinned in the server's span journal, retrievable from faced's
	// /debug/traces endpoint.
	ServerPinnedTraces int64 `json:"server_pinned_traces,omitempty"`
}

// Percentile returns the p-th percentile (0 < p <= 100) of the sorted-
// or-unsorted latency sample; it sorts its argument in place.
func Percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := int(float64(len(lat))*p/100+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return lat[idx]
}

// FillPercentiles computes the result's latency fields from a sample
// (sorted in place).
func (r *ServeResult) FillPercentiles(lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(p float64) time.Duration {
		idx := int(float64(len(lat))*p/100+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return lat[idx]
	}
	r.P50 = at(50)
	r.P95 = at(95)
	r.P99 = at(99)
	r.P999 = at(99.9)
	r.Max = lat[len(lat)-1]
}

// FormatServe renders one served-traffic result as the text table
// cmd/faceload prints without -json.
func FormatServe(w io.Writer, r *ServeResult) {
	fmt.Fprintf(w, "served traffic: %s\n", r.Label)
	fmt.Fprintf(w, "  conns %d  workers %d  reads %.0f%%  value %dB  keys %d  zipf %.2f\n",
		r.Conns, r.Workers, r.ReadFraction*100, r.ValueSize, r.Keys, r.Skew)
	fmt.Fprintf(w, "  offered %10.1f req/s   achieved %10.1f req/s   over %v\n",
		r.OfferedQPS, r.AchievedQPS, r.Duration.Round(time.Millisecond))
	fmt.Fprintf(w, "  %10s %10s %10s %10s %10s %10s %10s\n",
		"requests", "ok", "not-found", "busy", "timeout", "errors", "dropped")
	fmt.Fprintf(w, "  %10d %10d %10d %10d %10d %10d %10d\n",
		r.Requests, r.Succeeded, r.NotFound, r.Busy, r.Timeouts, r.Errors, r.Dropped)
	fmt.Fprintf(w, "  latency p50 %v  p95 %v  p99 %v  p99.9 %v  max %v\n",
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.P999.Round(time.Microsecond),
		r.Max.Round(time.Microsecond))
	if r.ServerScraped {
		fmt.Fprintf(w, "  server  get p50 %v  p99 %v | set p50 %v  p99 %v | shed %d | pinned traces %d  (client-server p99 gap = queueing; pinned traces at /debug/traces)\n",
			r.ServerGetP50.Round(time.Microsecond), r.ServerGetP99.Round(time.Microsecond),
			r.ServerSetP50.Round(time.Microsecond), r.ServerSetP99.Round(time.Microsecond),
			r.ServerShed, r.ServerPinnedTraces)
	}
}
