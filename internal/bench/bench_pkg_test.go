package bench

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/engine"
)

// buildQuickGolden builds one tiny golden image shared by the package tests
// (loading is the expensive part).
var sharedGolden *Golden

func quickGolden(t *testing.T) *Golden {
	t.Helper()
	if sharedGolden != nil {
		return sharedGolden
	}
	g, err := BuildGolden(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	sharedGolden = g
	return g
}

func TestOptionsNormalize(t *testing.T) {
	var o Options
	o.normalize()
	d := DefaultOptions()
	if o.Warehouses != d.Warehouses || o.BufferFraction != d.BufferFraction || len(o.CacheFractions) == 0 {
		t.Fatalf("normalize produced %+v", o)
	}
	q := QuickOptions()
	if q.MeasureTx >= d.MeasureTx {
		t.Fatal("QuickOptions should be smaller than DefaultOptions")
	}
	if len(ComparedPolicies()) != 4 {
		t.Fatal("expected four compared policies")
	}
}

func TestTable1Static(t *testing.T) {
	rows := Table1DeviceCharacteristics()
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "Samsung 470") || !strings.Contains(text, "RAID-0") {
		t.Fatalf("Table 1 text missing devices:\n%s", text)
	}
}

func TestGoldenBuildAndSingleRun(t *testing.T) {
	g := quickGolden(t)
	if g.DBPages() < 500 {
		t.Fatalf("golden database suspiciously small: %d pages", g.DBPages())
	}
	if g.Options().Warehouses != 1 {
		t.Fatal("options not retained")
	}
	res, err := g.Run(RunSpec{Policy: engine.PolicyFaCEGSC, CacheFraction: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if res.TpmC <= 0 || res.Elapsed <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.FlashHitRate <= 0 || res.FlashHitRate > 1 {
		t.Fatalf("flash hit rate out of range: %v", res.FlashHitRate)
	}
	if res.CacheFrames <= 0 || res.BufferPages <= 0 {
		t.Fatalf("sizing not reported: %+v", res)
	}
	if res.Label != "face+gsc" {
		t.Fatalf("label = %q", res.Label)
	}
}

func TestRunSpecLabels(t *testing.T) {
	if (RunSpec{Policy: engine.PolicyNone}).label() != "HDD-only" {
		t.Fatal("HDD-only label")
	}
	if (RunSpec{Policy: engine.PolicyNone, DataOnFlash: true}).label() != "SSD-only" {
		t.Fatal("SSD-only label")
	}
	if (RunSpec{Policy: engine.PolicyLC}).label() != "lc" {
		t.Fatal("policy label")
	}
	if (RunSpec{Label: "custom"}).label() != "custom" {
		t.Fatal("custom label")
	}
}

func TestFaCEOutperformsLCAndHDD(t *testing.T) {
	g := quickGolden(t)
	face, err := g.Run(RunSpec{Policy: engine.PolicyFaCEGSC, CacheFraction: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	lc, err := g.Run(RunSpec{Policy: engine.PolicyLC, CacheFraction: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	hdd, err := g.Run(RunSpec{Policy: engine.PolicyNone})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline orderings: FaCE+GSC beats LC, and any flash
	// cache beats the HDD-only baseline.
	if face.TpmC <= lc.TpmC {
		t.Errorf("FaCE+GSC tpmC (%.0f) should exceed LC (%.0f)", face.TpmC, lc.TpmC)
	}
	if face.TpmC <= hdd.TpmC || lc.TpmC <= hdd.TpmC {
		t.Errorf("flash caching should beat HDD-only: face=%.0f lc=%.0f hdd=%.0f",
			face.TpmC, lc.TpmC, hdd.TpmC)
	}
	// LC saturates the flash device harder than FaCE (random writes).
	if lc.FlashUtilization <= face.FlashUtilization {
		t.Errorf("LC flash utilization (%.2f) should exceed FaCE+GSC (%.2f)",
			lc.FlashUtilization, face.FlashUtilization)
	}
}

func TestCacheSweepAndFormatters(t *testing.T) {
	g := quickGolden(t)
	sweep, err := g.CacheSweep([]engine.CachePolicy{engine.PolicyLC, engine.PolicyFaCEGSC}, []float64{0.06, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Results[engine.PolicyLC]) != 2 || len(sweep.Results[engine.PolicyFaCEGSC]) != 2 {
		t.Fatalf("sweep incomplete: %+v", sweep)
	}
	// Hit rate should not decrease with a larger cache.
	for _, p := range sweep.Policies {
		rs := sweep.Results[p]
		if rs[1].FlashHitRate+0.05 < rs[0].FlashHitRate {
			t.Errorf("%s: hit rate decreased with a larger cache: %.2f -> %.2f",
				p, rs[0].FlashHitRate, rs[1].FlashHitRate)
		}
	}
	t3 := FormatTable3(sweep)
	t4 := FormatTable4(sweep)
	if !strings.Contains(t3, "Table 3(a)") || !strings.Contains(t3, "Table 3(b)") {
		t.Fatalf("Table 3 text malformed:\n%s", t3)
	}
	if !strings.Contains(t4, "IOPS") {
		t.Fatalf("Table 4 text malformed:\n%s", t4)
	}
}

func TestTable5(t *testing.T) {
	g := quickGolden(t)
	rows, err := g.Table5DRAMvsFlash(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("Table 5 rows = %d", len(rows))
	}
	// The paper's point: flash increments buy more throughput than equal-
	// cost DRAM increments.
	if rows[1].MoreFlash.TpmC <= rows[1].MoreDRAM.TpmC {
		t.Errorf("more flash (%.0f) should beat more DRAM (%.0f)",
			rows[1].MoreFlash.TpmC, rows[1].MoreDRAM.TpmC)
	}
	if !strings.Contains(FormatTable5(rows), "More Flash") {
		t.Fatal("Table 5 text malformed")
	}
}

func TestTable6AndFormat(t *testing.T) {
	g := quickGolden(t)
	rows, err := g.Table6RecoveryTime(0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(g.Options().CheckpointIntervals) {
		t.Fatalf("Table 6 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FaCE.RestartTime <= 0 || r.HDDOnly.RestartTime <= 0 {
			t.Fatalf("restart times missing: %+v", r)
		}
		// The headline result: FaCE restarts faster than HDD-only.
		if r.FaCE.RestartTime >= r.HDDOnly.RestartTime {
			t.Errorf("interval %v: FaCE restart (%v) should beat HDD-only (%v)",
				r.Interval, r.FaCE.RestartTime, r.HDDOnly.RestartTime)
		}
	}
	if !strings.Contains(FormatTable6(rows), "restart") {
		t.Fatal("Table 6 text malformed")
	}
}

func TestAblationsQuick(t *testing.T) {
	g := quickGolden(t)
	sync, err := g.AblationSyncPolicy(0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sync) != 2 {
		t.Fatalf("sync ablation rows = %d", len(sync))
	}
	// Write-back must reduce more disk writes than write-through (which
	// reduces none).
	if sync[0].WriteReduction <= sync[1].WriteReduction {
		t.Errorf("write-back reduction (%.2f) should exceed write-through (%.2f)",
			sync[0].WriteReduction, sync[1].WriteReduction)
	}
	groups, err := g.AblationGroupSize(0.10, []int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("group ablation rows = %d", len(groups))
	}
	if !strings.Contains(FormatResults("ablation", groups), "group=16") {
		t.Fatal("ablation text malformed")
	}
}

func TestAblationAsyncIOQuick(t *testing.T) {
	g := quickGolden(t)
	rows, err := g.AblationAsyncIO(0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("async ablation rows = %d", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		sync, async := rows[i], rows[i+1]
		// The asynchronous pipeline must not cost simulated throughput; a
		// small tolerance absorbs run-to-run divergence in the replacement
		// decisions.
		if async.TpmC < 0.9*sync.TpmC {
			t.Errorf("%s tpmC %.0f fell below 90%% of %s tpmC %.0f",
				async.Label, async.TpmC, sync.Label, sync.TpmC)
		}
		// Hit ratios of the two modes must stay comparable: the ring is a
		// transient buffer, not a second cache tier.
		if diff := async.FlashHitRate - sync.FlashHitRate; diff < -0.10 || diff > 0.15 {
			t.Errorf("%s flash hit rate %.3f diverges from %s %.3f",
				async.Label, async.FlashHitRate, sync.Label, sync.FlashHitRate)
		}
		if async.Pipeline.Staged == 0 || async.Pipeline.Batches == 0 {
			t.Errorf("%s: pipeline counters empty: %+v", async.Label, async.Pipeline)
		}
		if sync.Pipeline.Staged != 0 {
			t.Errorf("%s: sync run reports pipeline activity", sync.Label)
		}
	}
	if !strings.Contains(FormatAsyncAblation(rows), "group fill") {
		t.Fatal("async ablation text malformed")
	}
}

func TestJSONReport(t *testing.T) {
	g := quickGolden(t)
	rep := NewReport(g)
	res, err := g.Run(RunSpec{Policy: engine.PolicyFaCEGR, CacheFraction: 0.10, AsyncDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	rep.Add("single_run", []Result{res})
	var buf strings.Builder
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{ReportSchema, `"single_run"`, `"Policy"`, `"TpmC"`, `"Pipeline"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON report missing %s:\n%s", want, out[:min(len(out), 400)])
		}
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
}

func TestFigure6Quick(t *testing.T) {
	g := quickGolden(t)
	fig, err := g.Figure6PostRestartThroughput(0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.FaCE.Timeline) != g.Options().Figure6Buckets {
		t.Fatalf("timeline buckets = %d", len(fig.FaCE.Timeline))
	}
	var total float64
	for _, v := range fig.FaCE.Timeline {
		total += v
	}
	if total <= 0 {
		t.Fatal("FaCE post-restart timeline is empty")
	}
	if !strings.Contains(FormatFigure6(fig), "Figure 6") {
		t.Fatal("Figure 6 text malformed")
	}
}

func TestSSDOnlyRunsOnFlashDevice(t *testing.T) {
	g := quickGolden(t)
	res, err := g.Run(RunSpec{Policy: engine.PolicyNone, DataOnFlash: true, FlashProfile: device.ProfileSamsung470})
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "SSD-only" || res.TpmC <= 0 {
		t.Fatalf("SSD-only result: %+v", res)
	}
}

func TestFormatHelpers(t *testing.T) {
	if pct(0.5) != "50.0" || fnum(1234.4) != "1234" {
		t.Fatal("numeric formatters")
	}
	if fdur(1500*time.Millisecond) != "1.5s" {
		t.Fatalf("fdur = %q", fdur(1500*time.Millisecond))
	}
	table := formatTable([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(table, "a") || !strings.Contains(table, "333") {
		t.Fatal("formatTable broken")
	}
}

// TestLockManagerAblation asserts the acceptance shape of the scheduler
// ablation: the page-lock scheduler must not lose throughput against the
// single-writer baseline, and at 4 terminals its group commit must batch
// concurrent commit forces (fewer log writes, fan-in above 1).
func TestLockManagerAblation(t *testing.T) {
	g := quickGolden(t)
	rows, err := g.AblationLockManager([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want baseline + 2PL x4", len(rows))
	}
	single, multi := rows[0], rows[1]
	if single.PageLocks || !multi.PageLocks || multi.Terminals != 4 {
		t.Fatalf("row shapes wrong: %+v / %+v", single, multi)
	}
	// The schedule is deterministic and independent of the terminal
	// count, so the committed workload must be identical.
	if single.NewOrders != multi.NewOrders || single.TotalTx != multi.TotalTx {
		t.Fatalf("workloads differ: single %d/%d multi %d/%d new-orders/total",
			single.NewOrders, single.TotalTx, multi.NewOrders, multi.TotalTx)
	}
	if multi.TpmC < single.TpmC {
		t.Errorf("multi-writer tpmC %.0f below single-writer %.0f", multi.TpmC, single.TpmC)
	}
	if multi.GroupCommit.FanIn() <= 1 {
		t.Errorf("group commit did not batch: %+v", multi.GroupCommit)
	}
	if multi.GroupCommit.Forces >= single.GroupCommit.Forces {
		t.Errorf("2PL x4 performed %d log writes, single-writer %d: no batching win",
			multi.GroupCommit.Forces, single.GroupCommit.Forces)
	}
	t.Logf("single %.0f tpmC (%d forces) vs 2PL x4 %.0f tpmC (%d forces, fan-in %.2f, %d deadlock retries)",
		single.TpmC, single.GroupCommit.Forces, multi.TpmC,
		multi.GroupCommit.Forces, multi.GroupCommit.FanIn(), multi.DeadlockRetries)
}

// TestShardAblation asserts the acceptance shape of the hot-path sharding
// ablation: the striped pool must execute the identical deterministic
// workload as the single-mutex pool (same committed transactions), its
// simulated throughput must not regress at one terminal, and the per-shard
// accounting must add up.
func TestShardAblation(t *testing.T) {
	g := quickGolden(t)
	rows, err := g.AblationShards([]int{1, 4}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 2 shard counts x 2 terminal counts", len(rows))
	}
	byKey := map[[2]int]Result{}
	for _, r := range rows {
		byKey[[2]int{r.BufferShards, r.Terminals}] = r
		if r.WallClock <= 0 {
			t.Errorf("%s: wall clock not measured", r.Label)
		}
		if r.HitsPerSecWall <= 0 {
			t.Errorf("%s: no wall-clock hit throughput", r.Label)
		}
	}
	s1, s4 := byKey[[2]int{1, 1}], byKey[[2]int{4, 1}]
	if s1.BufferShards != 1 || s4.BufferShards != 4 {
		t.Fatalf("shard counts not echoed: %+v / %+v", s1.BufferShards, s4.BufferShards)
	}
	// The schedule is deterministic and, with the database fully buffered,
	// independent of the shard count: the committed workload must match.
	if s1.NewOrders != s4.NewOrders || s1.TotalTx != s4.TotalTx {
		t.Fatalf("workloads differ: shards=1 %d/%d shards=4 %d/%d new-orders/total",
			s1.NewOrders, s1.TotalTx, s4.NewOrders, s4.TotalTx)
	}
	// At one terminal nothing contends, so striping must not change the
	// modelled throughput (no regression at 1 terminal).
	if diff := s4.TpmC/s1.TpmC - 1; diff < -0.01 || diff > 0.01 {
		t.Errorf("simulated tpmC moved with shard count at 1 terminal: %.0f vs %.0f", s1.TpmC, s4.TpmC)
	}
	if s4.ShardImbalance < 1 {
		t.Errorf("shard imbalance %.2f below 1 (must be max/mean)", s4.ShardImbalance)
	}
	if !strings.Contains(FormatShardAblation(rows), "hits/s (wall)") {
		t.Error("FormatShardAblation missing wall-clock column")
	}
	for _, r := range rows {
		t.Logf("%-14s tpmC=%8.0f  hits/s(wall)=%9.0f  wall=%v  imbalance=%.2f",
			r.Label, r.TpmC, r.HitsPerSecWall, r.WallClock, r.ShardImbalance)
	}
}
