package bench

import (
	"fmt"
	"time"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/engine"
)

// --- Table 1 ---------------------------------------------------------------

// Table1Row is one device of Table 1 (price and performance
// characteristics).
type Table1Row struct {
	Name          string
	Media         string
	RandReadIOPS  float64
	RandWriteIOPS float64
	SeqReadMBps   float64
	SeqWriteMBps  float64
	CapacityGB    float64
	PriceUSD      float64
	PricePerGB    float64
}

// Table1DeviceCharacteristics reports the calibrated device profiles, i.e.
// the simulator's counterpart of the paper's Table 1.
func Table1DeviceCharacteristics() []Table1Row {
	var rows []Table1Row
	for _, p := range device.Table1Profiles() {
		rows = append(rows, Table1Row{
			Name:          p.Name,
			Media:         p.Media.String(),
			RandReadIOPS:  p.RandReadIOPS,
			RandWriteIOPS: p.RandWriteIOPS,
			SeqReadMBps:   p.SeqReadMBps,
			SeqWriteMBps:  p.SeqWriteMBps,
			CapacityGB:    p.CapacityGB,
			PriceUSD:      p.PriceUSD,
			PricePerGB:    p.PricePerGB(),
		})
	}
	return rows
}

// --- Tables 3 and 4 ----------------------------------------------------------

// SweepResult holds the cache-size sweep shared by Tables 3 and 4: every
// compared policy measured at every cache size.
type SweepResult struct {
	Fractions []float64
	Policies  []engine.CachePolicy
	// Results[policy][i] corresponds to Fractions[i].
	Results map[engine.CachePolicy][]Result
}

// CacheSweep runs every compared policy at every cache fraction.
func (g *Golden) CacheSweep(policies []engine.CachePolicy, fractions []float64) (SweepResult, error) {
	if len(policies) == 0 {
		policies = ComparedPolicies()
	}
	if len(fractions) == 0 {
		fractions = g.opts.CacheFractions
	}
	sweep := SweepResult{
		Fractions: fractions,
		Policies:  policies,
		Results:   make(map[engine.CachePolicy][]Result, len(policies)),
	}
	for _, p := range policies {
		for _, f := range fractions {
			res, err := g.Run(RunSpec{Policy: p, CacheFraction: f})
			if err != nil {
				return sweep, err
			}
			sweep.Results[p] = append(sweep.Results[p], res)
		}
	}
	return sweep, nil
}

// Table3HitAndWriteReduction reproduces Table 3: flash cache hit ratio and
// write reduction versus cache size for LC, FaCE, FaCE+GR and FaCE+GSC.
func (g *Golden) Table3HitAndWriteReduction() (SweepResult, error) {
	return g.CacheSweep(nil, g.opts.CacheFractions)
}

// Table4UtilizationAndIOPS reproduces Table 4 from the same sweep as
// Table 3 (the harness exposes both views of one SweepResult).
func (g *Golden) Table4UtilizationAndIOPS() (SweepResult, error) {
	return g.CacheSweep(nil, g.opts.CacheFractions)
}

// --- Figure 4 ----------------------------------------------------------------

// FigureSeries is one line of a figure: label plus (x, y) points.
type FigureSeries struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure4Result holds the throughput curves of Figure 4 for one SSD type.
type Figure4Result struct {
	SSDName string
	// Series holds one tpmC-vs-cache-fraction curve per cache policy.
	Series []FigureSeries
	// HDDOnly and SSDOnly are the flat reference lines of the figure.
	HDDOnly Result
	SSDOnly Result
}

// Figure4Throughput reproduces Figure 4: transaction throughput as a
// function of the flash cache size for every policy, plus the HDD-only and
// SSD-only reference configurations, on the given SSD model.
func (g *Golden) Figure4Throughput(ssd device.Profile) (Figure4Result, error) {
	out := Figure4Result{SSDName: ssd.Name}
	hdd, err := g.Run(RunSpec{Policy: engine.PolicyNone})
	if err != nil {
		return out, err
	}
	out.HDDOnly = hdd
	ssdOnly, err := g.Run(RunSpec{Policy: engine.PolicyNone, DataOnFlash: true, FlashProfile: ssd, Label: "SSD-only"})
	if err != nil {
		return out, err
	}
	out.SSDOnly = ssdOnly

	for _, p := range ComparedPolicies() {
		series := FigureSeries{Label: p.String()}
		for _, f := range g.opts.Figure4Fractions {
			res, err := g.Run(RunSpec{Policy: p, CacheFraction: f, FlashProfile: ssd})
			if err != nil {
				return out, err
			}
			series.X = append(series.X, f)
			series.Y = append(series.Y, res.TpmC)
		}
		out.Series = append(out.Series, series)
	}
	return out, nil
}

// --- Table 5 -----------------------------------------------------------------

// Table5Row is one increment step of the DRAM-vs-flash comparison.
type Table5Row struct {
	Step      int
	MoreDRAM  Result
	MoreFlash Result
}

// Table5DRAMvsFlash reproduces Table 5: equal monetary increments spent on
// DRAM (no flash cache, larger buffer pool) versus flash (FaCE+GSC cache
// ten times the DRAM increment, matching the ~10x price-per-GB gap).
func (g *Golden) Table5DRAMvsFlash(steps int) ([]Table5Row, error) {
	if steps <= 0 {
		steps = 5
	}
	baseBuffer := int(float64(g.dbPages) * g.opts.BufferFraction)
	if baseBuffer < g.opts.MinBufferPages {
		baseBuffer = g.opts.MinBufferPages
	}
	var rows []Table5Row
	for k := 1; k <= steps; k++ {
		dram, err := g.Run(RunSpec{
			Policy:      engine.PolicyNone,
			BufferPages: baseBuffer * (1 + k),
			Label:       fmt.Sprintf("DRAM x%d", k),
		})
		if err != nil {
			return rows, err
		}
		flashFraction := float64(baseBuffer*10*k) / float64(g.dbPages)
		flash, err := g.Run(RunSpec{
			Policy:        engine.PolicyFaCEGSC,
			BufferPages:   baseBuffer,
			CacheFraction: flashFraction,
			Label:         fmt.Sprintf("Flash x%d", k),
		})
		if err != nil {
			return rows, err
		}
		rows = append(rows, Table5Row{Step: k, MoreDRAM: dram, MoreFlash: flash})
	}
	return rows, nil
}

// --- Figure 5 -----------------------------------------------------------------

// Figure5Result holds throughput versus number of disks for FaCE+GSC, LC
// and HDD-only.
type Figure5Result struct {
	DiskCounts []int
	Series     []FigureSeries
}

// Figure5DiskScaling reproduces Figure 5: transaction throughput as the
// RAID-0 data volume grows from 4 to 16 disks, with the flash cache size
// fixed (the paper uses 6 GB ≈ 12 % of the database).
func (g *Golden) Figure5DiskScaling(cacheFraction float64) (Figure5Result, error) {
	if cacheFraction <= 0 {
		cacheFraction = 0.12
	}
	out := Figure5Result{DiskCounts: g.opts.DiskCounts}
	configs := []struct {
		label string
		spec  RunSpec
	}{
		{"FaCE+GSC", RunSpec{Policy: engine.PolicyFaCEGSC, CacheFraction: cacheFraction}},
		{"LC", RunSpec{Policy: engine.PolicyLC, CacheFraction: cacheFraction}},
		{"HDD-only", RunSpec{Policy: engine.PolicyNone}},
	}
	for _, c := range configs {
		series := FigureSeries{Label: c.label}
		for _, disks := range g.opts.DiskCounts {
			spec := c.spec
			spec.DiskCount = disks
			spec.Label = c.label
			res, err := g.Run(spec)
			if err != nil {
				return out, err
			}
			series.X = append(series.X, float64(disks))
			series.Y = append(series.Y, res.TpmC)
		}
		out.Series = append(out.Series, series)
	}
	return out, nil
}

// --- Table 6 and Figure 6 ------------------------------------------------------

// Table6Row compares restart time after a crash for one checkpoint
// interval.
type Table6Row struct {
	Interval time.Duration
	FaCE     RecoveryRun
	HDDOnly  RecoveryRun
}

// Table6RecoveryTime reproduces Table 6: time to restart the system after a
// crash in the middle of a checkpoint interval, with and without the flash
// cache.
func (g *Golden) Table6RecoveryTime(cacheFraction float64) ([]Table6Row, error) {
	if cacheFraction <= 0 {
		cacheFraction = g.opts.RecoveryCacheFraction
	}
	var rows []Table6Row
	for _, interval := range g.opts.CheckpointIntervals {
		face, err := g.RunRecovery(RunSpec{
			Policy:          engine.PolicyFaCEGSC,
			CacheFraction:   cacheFraction,
			BufferPages:     g.opts.RecoveryBufferPages,
			CheckpointEvery: interval,
			Label:           "FaCE+GSC",
		}, 0, 0)
		if err != nil {
			return rows, err
		}
		hdd, err := g.RunRecovery(RunSpec{
			Policy:          engine.PolicyNone,
			BufferPages:     g.opts.RecoveryBufferPages,
			CheckpointEvery: interval,
			Label:           "HDD-only",
		}, 0, 0)
		if err != nil {
			return rows, err
		}
		rows = append(rows, Table6Row{Interval: interval, FaCE: face, HDDOnly: hdd})
	}
	return rows, nil
}

// Figure6Result holds the post-restart throughput timelines.
type Figure6Result struct {
	BucketWidth time.Duration
	FaCE        RecoveryRun
	HDDOnly     RecoveryRun
}

// Figure6PostRestartThroughput reproduces Figure 6: transaction throughput
// as a function of time immediately after the system restarts from a
// failure.
func (g *Golden) Figure6PostRestartThroughput(cacheFraction float64) (Figure6Result, error) {
	if cacheFraction <= 0 {
		cacheFraction = g.opts.RecoveryCacheFraction
	}
	interval := g.opts.CheckpointIntervals[len(g.opts.CheckpointIntervals)-1]
	out := Figure6Result{BucketWidth: g.opts.Figure6BucketWidth}
	face, err := g.RunRecovery(RunSpec{
		Policy:          engine.PolicyFaCEGSC,
		CacheFraction:   cacheFraction,
		BufferPages:     g.opts.RecoveryBufferPages,
		CheckpointEvery: interval,
		Label:           "FaCE+GSC",
	}, g.opts.Figure6Buckets, g.opts.Figure6BucketWidth)
	if err != nil {
		return out, err
	}
	out.FaCE = face
	hdd, err := g.RunRecovery(RunSpec{
		Policy:          engine.PolicyNone,
		BufferPages:     g.opts.RecoveryBufferPages,
		CheckpointEvery: interval,
		Label:           "HDD-only",
	}, g.opts.Figure6Buckets, g.opts.Figure6BucketWidth)
	if err != nil {
		return out, err
	}
	out.HDDOnly = hdd
	return out, nil
}
