package bench

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReportSchema versions the facebench -json output format so downstream
// tooling tracking a BENCH_*.json perf trajectory can detect changes.
// v2 added the page-lock scheduler fields to Result (PageLocks, Terminals,
// DeadlockRetries, Locks, GroupCommit), the lock-manager ablation
// experiment, and the Terminals option.
// v3 adds the hot-path sharding fields (BufferShards, ShardImbalance,
// WallClock, HitsPerSecWall), the shards ablation experiment, and the
// Shards option.
// v4 adds the persistent file-backed device mode: the Dir/Wallclock/
// NoFsync options, the Backend field on RunSpec and Result, the wall-clock
// headline throughput (TpmCWall, Wallclock), and the striped cache
// directory diagnostics (CacheStripeImbalance).
// v5 adds served traffic: the ServeResult payload emitted by cmd/faceload
// (offered vs achieved QPS, latency percentiles, admission rejects) and
// the wall-clock restart fields on RecoveryRun (RestartWall, measured by
// really closing and reopening file-backed devices).
// v6 adds the WAL commit pipeline: the Wal stats block and WalSegments
// field on Result, the WalSegments knob on RunSpec/Options, and the wal
// ablation experiment (mutex-compat front end vs lock-free reservation).
// v7 adds the observability layer: commit-path phase summaries (Phases),
// wall-clock transaction latency percentiles overall (TxLatency) and per
// TPC-C kind (KindLatencies) on Result, the DisableObs knob and the
// ablation_observability experiment, and the server-side scrape fields
// on ServeResult (server_get/set p50/p99, server_shed) filled by
// faceload -metrics.
// v8 adds the request-scoped tracing layer: the DisableTracing knob and
// span-journal stats (Traces) on Result, the ablation_tracing
// experiment, the faceload -trace flag (client-minted trace IDs on the
// wire), and the pinned anomaly-trace count (server_pinned_traces)
// scraped into ServeResult from face_trace_pinned_total.
const ReportSchema = "facebench/v8"

// Report is the machine-readable form of a facebench run: the options the
// golden image was built with plus one entry per executed experiment.  The
// experiment payloads are the same structs the text formatters render
// (Result, SweepResult, RecoveryRun, ...), so every number in the tables —
// policy, throughput, hit ratios, device I/O counts, pipeline counters —
// is available to scripts.
type Report struct {
	Schema      string         `json:"schema"`
	Options     Options        `json:"options"`
	DBPages     int64          `json:"db_pages"`
	Experiments map[string]any `json:"experiments"`
}

// NewReport creates an empty report for a golden image.
func NewReport(g *Golden) *Report {
	r := NewStaticReport(g.Options())
	r.DBPages = g.DBPages()
	return r
}

// NewStaticReport creates an empty report for experiments that need no
// database (table1, the policy listing), so every -json invocation emits
// the same facebench/v1 envelope.
func NewStaticReport(opts Options) *Report {
	return &Report{
		Schema:      ReportSchema,
		Options:     opts,
		Experiments: map[string]any{},
	}
}

// Add records one experiment's results under its name.
func (r *Report) Add(name string, data any) { r.Experiments[name] = data }

// Write emits the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("bench: encoding JSON report: %w", err)
	}
	return nil
}
