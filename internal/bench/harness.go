package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/device/filedev"
	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/face"
	"github.com/reprolab/face/internal/metrics"
	"github.com/reprolab/face/internal/obs"
	"github.com/reprolab/face/internal/obs/trace"
	"github.com/reprolab/face/internal/tpcc"
)

// Golden is a freshly loaded, fully checkpointed TPC-C database image that
// experiment configurations clone from.
type Golden struct {
	opts    Options
	content [][]byte
	catalog *tpcc.Database
	dbPages int64
}

// BuildGolden loads the TPC-C database once at the option scale.
func BuildGolden(opts Options) (*Golden, error) {
	opts.normalize()
	cfg := tpcc.DefaultConfig(opts.Warehouses)
	cfg.Seed = opts.Seed

	// Generous capacity: the loader engine uses plain devices whose blocks
	// materialise lazily, so oversizing costs nothing.
	capacity := int64(opts.Warehouses)*6000 + 20000
	dataDev := device.New("golden-data", device.ProfileCheetah15K, capacity)
	logDev := device.New("golden-log", device.ProfileCheetah15K, 1<<18)

	eng, err := engine.Open(engine.Config{
		DataDev:     dataDev,
		LogDev:      logDev,
		BufferPages: 4096,
		Policy:      engine.PolicyNone,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: opening loader engine: %w", err)
	}
	catalog, err := tpcc.Load(eng, cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: loading golden database: %w", err)
	}
	if err := eng.Close(); err != nil {
		return nil, fmt.Errorf("bench: closing loader engine: %w", err)
	}
	g := &Golden{
		opts:    opts,
		content: dataDev.SnapshotContent(),
		catalog: catalog,
		dbPages: eng.NumPages(),
	}
	g.progress("golden database loaded: %d warehouses, %d pages (%.1f MB)",
		opts.Warehouses, g.dbPages, float64(g.dbPages)*4096/1e6)
	return g, nil
}

// Options returns the options the golden image was built with.
func (g *Golden) Options() Options { return g.opts }

// DBPages returns the number of pages in the loaded database.
func (g *Golden) DBPages() int64 { return g.dbPages }

func (g *Golden) progress(format string, args ...interface{}) {
	if g.opts.Progress != nil {
		fmt.Fprintf(g.opts.Progress, format+"\n", args...)
	}
}

// Device backends a configuration can run on.
const (
	// BackendMem is the simulated in-memory device stack with calibrated
	// latency profiles (the paper-faithful default).
	BackendMem = "mem"
	// BackendFile is the persistent file-backed device stack
	// (internal/device/filedev): real files, real fsync, wall-clock
	// latencies.
	BackendFile = "file"
)

// RunSpec describes one experiment configuration.
type RunSpec struct {
	// Label names the configuration in reports (defaults to the policy).
	Label string
	// Backend selects the device stack: BackendMem or BackendFile ("" =
	// BackendFile when Options.Dir is set, BackendMem otherwise).
	Backend string
	// Policy selects the cache scheme (PolicyNone for HDD-only/SSD-only).
	Policy engine.CachePolicy
	// CacheFraction sizes the flash cache as a fraction of the database.
	CacheFraction float64
	// FlashProfile is the flash cache device model (default MLCProfile).
	FlashProfile device.Profile
	// DiskCount is the RAID-0 size of the data volume (default
	// Options.DefaultDisks).
	DiskCount int
	// DataOnFlash stores the whole database on a flash SSD (the paper's
	// SSD-only configuration); no flash cache is used.
	DataOnFlash bool
	// BufferPages overrides the DRAM buffer size (0 = derive from
	// Options.BufferFraction).
	BufferPages int
	// CheckpointEvery enables periodic checkpoints.
	CheckpointEvery time.Duration
	// GroupSize overrides Options.GroupSize (0 = default).
	GroupSize int
	// SegmentEntries overrides Options.SegmentEntries (0 = default).
	SegmentEntries int
	// AsyncDepth enables the asynchronous I/O pipeline with the given
	// staging ring depth (0 = synchronous, negative = default depth).
	AsyncDepth int
	// IOWriters is the number of destager workers under async I/O.
	IOWriters int
	// BufferShards stripes the DRAM buffer pool over this many
	// independently locked shards and CacheStripes the flash cache
	// directory over this many stripes (0 = the option-level
	// Options.Shards, which itself defaults to 1: the single-mutex
	// structures).
	BufferShards int
	CacheStripes int
	// PageLocks runs the configuration under the page-granularity 2PL
	// transaction scheduler (with group commit) instead of the default
	// single-writer scheduler.
	PageLocks bool
	// Terminals issues the workload from this many concurrent terminal
	// goroutines via Driver.RunTerminals (deadlock victims retried).
	// Zero selects the classic single-stream driver; 1 runs the same
	// scheduled workload from one terminal, which is the fair baseline
	// for multi-terminal comparisons.
	Terminals int
	// WalSegments selects the WAL front end (engine.Config.WalSegments):
	// 0 = the lock-free reservation pipeline with default geometry, 1 =
	// the mutex-compat baseline, >1 = the pipeline with that many log
	// buffer segments.
	WalSegments int
	// DisableObs opens the engine with the observability layer compiled
	// out (engine.Config.DisableObs): no phase histograms, no registry.
	// The AblationObservability experiment uses it to price the layer.
	DisableObs bool
	// DisableTracing opens the engine with the request-scoped span
	// tracer off (engine.Config.DisableTracing) while keeping the rest
	// of the observability layer.  The AblationTracing experiment uses
	// it to price the tracer separately from the histograms.
	DisableTracing bool
	// WarmupTx/MeasureTx override the option values when non-zero.
	WarmupTx  int
	MeasureTx int
	// Seed offsets the workload random stream.
	Seed int64
}

func (s RunSpec) label() string {
	if s.Label != "" {
		return s.Label
	}
	switch {
	case s.DataOnFlash:
		return "SSD-only"
	case !s.Policy.UsesFlash():
		return "HDD-only"
	default:
		return s.Policy.String()
	}
}

// Result is the measurement of one configuration over its measurement
// window.
type Result struct {
	Label string
	// Backend echoes the device stack the configuration ran on
	// (BackendMem or BackendFile).
	Backend       string
	Policy        engine.CachePolicy
	CacheFraction float64
	CacheFrames   int
	BufferPages   int
	DiskCount     int

	Elapsed     time.Duration
	NewOrders   int64
	TotalTx     int64
	TpmC        float64
	TotalTpm    float64
	DRAMHitRate float64

	FlashHitRate     float64
	WriteReduction   float64
	FlashUtilization float64
	FlashIOPS        float64
	DataUtilization  float64

	FlashReads  int64
	FlashWrites int64
	DiskReads   int64
	DiskWrites  int64
	Checkpoints int64

	// AsyncDepth echoes the configured staging ring depth (0 = sync) and
	// Pipeline the background pipeline activity over the measurement
	// window.
	AsyncDepth int
	Pipeline   metrics.PipelineStats

	// PageLocks and Terminals echo the scheduler configuration; Locks,
	// GroupCommit and DeadlockRetries report its activity over the
	// measurement window.
	PageLocks       bool
	Terminals       int
	DeadlockRetries int64
	Locks           metrics.LockStats
	GroupCommit     metrics.GroupCommitStats

	// WalSegments echoes the WAL front-end configuration (0 = default
	// pipeline, 1 = mutex-compat baseline) and Wal the commit pipeline's
	// activity over the measurement window.
	WalSegments int
	Wal         metrics.WalStats

	// BufferShards echoes the buffer pool shard / cache stripe count and
	// ShardImbalance the busiest-to-mean access ratio across shards over
	// the whole run (1.0 = perfectly even).  CacheStripeImbalance is the
	// same ratio across the flash cache's directory stripes (0 without a
	// flash cache or without lookups; a single-stripe cache reports 1.0).
	BufferShards         int
	ShardImbalance       float64
	CacheStripeImbalance float64
	// WallClock is the host wall-clock time of the measurement phase and
	// HitsPerSecWall the DRAM buffer hits retired per wall-clock second —
	// the quantity the sharding actually improves.  Simulated-time figures
	// (TpmC and friends) model the paper's hardware and are unaffected by
	// host-side lock contention, so shard scaling shows up here instead.
	WallClock      time.Duration
	HitsPerSecWall float64
	// TpmCWall is the NewOrder throughput per wall-clock minute.  On the
	// file backend it is the headline figure: the devices have real
	// latency and real fsync, so simulated time no longer models the run.
	TpmCWall float64
	// WallclockMode marks a result whose text reports should lead with
	// the wall-clock columns (file backend, or Options.Wallclock).  The
	// name deliberately avoids a case-only collision with the WallClock
	// duration in the JSON schema.
	WallclockMode bool

	// DisableObs echoes RunSpec.DisableObs.  When observability ran,
	// Phases carries the commit-path phase breakdown over the measurement
	// window (admission wait, lock wait, buffer, WAL append, durable wait,
	// closure), TxLatency the wall-clock latency summary over all
	// committed transactions, and KindLatencies the same per TPC-C
	// transaction kind.  All latencies are host wall-clock time, so on the
	// simulated backend they price the host, not the modeled hardware.
	DisableObs    bool
	Phases        obs.TxPhaseSummaries
	TxLatency     obs.Summary
	KindLatencies map[string]obs.Summary

	// DisableTracing echoes RunSpec.DisableTracing.  When the tracer
	// ran, Traces counts its activity over the measurement window:
	// traces started and completed, anomalies pinned in the span
	// journal, and normal transactions tail-sampled into it.
	DisableTracing bool
	Traces         trace.Stats
}

// runEnv is a fully constructed experiment instance.
type runEnv struct {
	spec     RunSpec
	backend  string
	eng      *engine.DB
	driver   *tpcc.Driver
	dataDev  device.Dev
	logDev   device.Dev
	flashDev device.Dev
	// files is the file-backed device set under BackendFile (nil on
	// BackendMem); the harness owns it and closes it when the run ends.
	// fileCfg remembers how it was opened so a crash/restart experiment
	// can really close and reopen the same directory.
	files    *filedev.Set
	fileCfg  filedev.SetConfig
	frames   int
	bufPages int
	shards   int
}

// reopenFiles closes the file-backed device set and reopens it from the
// same directory — the true restart path, with fresh file descriptors
// and whatever the OS actually persisted.  No-op on the in-memory
// backend.
func (env *runEnv) reopenFiles() error {
	if env.files == nil {
		return nil
	}
	dir := env.files.Dir
	if err := env.files.Close(); err != nil {
		return fmt.Errorf("bench: closing %s for restart: %w", dir, err)
	}
	env.files = nil
	set, err := filedev.OpenSet(dir, env.fileCfg)
	if err != nil {
		return fmt.Errorf("bench: reopening %s: %w", dir, err)
	}
	if !set.Existed {
		set.Close()
		return fmt.Errorf("bench: reopening %s found no initialised data file", dir)
	}
	env.files = set
	env.dataDev = set.Data
	env.logDev = set.Log
	if set.Flash != nil {
		env.flashDev = set.Flash
	}
	return nil
}

// cleanup releases backend resources once the run (including any
// crash/restart cycle reusing the devices) is over.  The per-run clone
// directory is removed with its device files: it exists only to give the
// configuration a private copy of the golden image.
func (env *runEnv) cleanup() {
	if env.files != nil {
		dir := env.files.Dir
		env.files.Close()
		env.files = nil
		os.RemoveAll(dir)
	}
}

// build constructs devices, engine and driver for a spec, cloning the
// golden image.
func (g *Golden) build(spec RunSpec, recoverMode bool, reuse *runEnv) (*runEnv, error) {
	opts := g.opts
	if spec.Backend == "" {
		if opts.Dir != "" {
			spec.Backend = BackendFile
		} else {
			spec.Backend = BackendMem
		}
	}
	if spec.DiskCount <= 0 {
		spec.DiskCount = opts.DefaultDisks
	}
	if spec.FlashProfile.Name == "" {
		spec.FlashProfile = opts.MLCProfile
	}
	groupSize := spec.GroupSize
	if groupSize <= 0 {
		groupSize = opts.GroupSize
	}
	segEntries := spec.SegmentEntries
	if segEntries <= 0 {
		segEntries = opts.SegmentEntries
	}

	var env *runEnv
	if reuse != nil {
		// Reuse devices across a crash: contents must survive.  On the
		// file backend the same open files are reattached, which is
		// exactly the reopen-after-crash path recovery replays against.
		env = reuse
	} else {
		env = &runEnv{spec: spec, backend: spec.Backend}

		env.bufPages = spec.BufferPages
		if env.bufPages <= 0 {
			env.bufPages = int(float64(g.dbPages) * opts.BufferFraction)
		}
		if env.bufPages < opts.MinBufferPages {
			env.bufPages = opts.MinBufferPages
		}
		if spec.Policy.UsesFlash() {
			env.frames = int(float64(g.dbPages) * spec.CacheFraction)
			if env.frames < groupSize*2 {
				env.frames = groupSize * 2
			}
		}
		// The flash device holds the layout (superblock + metadata
		// segments + frames) plus the shared headroom.
		flashBlocks := face.FlashDeviceBlocks(env.frames, segEntries) + face.FlashDeviceSlack

		switch spec.Backend {
		case BackendFile:
			if opts.Dir == "" {
				return nil, fmt.Errorf("bench: %s requests the file backend but Options.Dir is empty", spec.label())
			}
			if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
				return nil, fmt.Errorf("bench: creating %s: %w", opts.Dir, err)
			}
			dir, err := os.MkdirTemp(opts.Dir, "face-run-*")
			if err != nil {
				return nil, fmt.Errorf("bench: creating run directory: %w", err)
			}
			// The worker pool stands in for the device class: one stream
			// for the single-SSD (DataOnFlash) configuration, one per
			// member disk for the striped-array configurations.
			workers := spec.DiskCount
			if spec.DataOnFlash {
				workers = 1
			}
			cfg := filedev.SetConfig{
				DataBlocks: int64(len(g.content)) + 8192,
				LogBlocks:  1 << 18,
				Workers:    workers,
				NoFsync:    opts.NoFsync,
			}
			if spec.Policy.UsesFlash() {
				cfg.FlashBlocks = flashBlocks
			}
			set, err := filedev.OpenSet(dir, cfg)
			if err != nil {
				os.RemoveAll(dir)
				return nil, fmt.Errorf("bench: opening file devices for %s: %w", spec.label(), err)
			}
			if err := set.Data.LoadLogical(g.content); err != nil {
				set.Close()
				os.RemoveAll(dir)
				return nil, fmt.Errorf("bench: loading golden image into %s: %w", dir, err)
			}
			env.files = set
			env.fileCfg = cfg
			env.dataDev = set.Data
			env.logDev = set.Log
			if set.Flash != nil {
				env.flashDev = set.Flash
			}
		default:
			// Data device: RAID-0 of disks, or a single SSD for SSD-only.
			if spec.DataOnFlash {
				d := device.New("data-ssd", spec.FlashProfile, int64(len(g.content))+8192)
				d.LoadLogical(g.content)
				env.dataDev = d
			} else {
				a := device.NewArray("data", device.ProfileCheetah15K, spec.DiskCount, int64(len(g.content))+8192)
				a.LoadLogical(g.content)
				env.dataDev = a
			}
			env.logDev = device.New("log", device.ProfileCheetah15K, 1<<18)
			if spec.Policy.UsesFlash() {
				env.flashDev = device.New("flash", spec.FlashProfile, flashBlocks)
			}
		}
	}

	shards := spec.BufferShards
	if shards <= 0 {
		shards = opts.Shards
	}
	if shards <= 0 {
		shards = 1
	}
	stripes := spec.CacheStripes
	if stripes <= 0 {
		stripes = opts.Shards
	}
	if stripes <= 0 {
		stripes = 1
	}
	cfg := engine.Config{
		DataDev:         env.dataDev,
		LogDev:          env.logDev,
		FlashDev:        env.flashDev,
		BufferPages:     env.bufPages,
		BufferShards:    shards,
		CacheStripes:    stripes,
		Policy:          spec.Policy,
		FlashFrames:     env.frames,
		GroupSize:       groupSize,
		SegmentEntries:  segEntries,
		CheckpointEvery: spec.CheckpointEvery,
		AsyncIODepth:    spec.AsyncDepth,
		IOWriters:       spec.IOWriters,
		PageLocks:       spec.PageLocks,
		WalSegments:     spec.WalSegments,
		DisableObs:      spec.DisableObs,
		DisableTracing:  spec.DisableTracing,
		Recover:         recoverMode,
	}
	if spec.PageLocks && spec.Terminals > 1 {
		// Bound admission to the terminal count; it doubles as the
		// group-commit fan-in hint.
		cfg.MaxWriters = spec.Terminals
	}
	if !spec.Policy.UsesFlash() {
		cfg.FlashDev = nil
		cfg.FlashFrames = 0
	}
	eng, err := engine.Open(cfg)
	if err != nil {
		// The caller never sees the env, so release its backend resources
		// here (no-op for in-memory devices, idempotent for a reused env
		// whose owner also cleans up).
		env.cleanup()
		return nil, fmt.Errorf("bench: opening %s: %w", spec.label(), err)
	}
	env.shards = shards
	if env.shards > env.bufPages {
		env.shards = env.bufPages
	}
	env.eng = eng
	env.driver = tpcc.NewDriver(eng, g.catalog.Clone(), opts.Seed+spec.Seed+7)
	return env, nil
}

// Run executes one configuration: clone, warm up, measure.  With
// spec.Terminals >= 1 (or the option-level Options.Terminals override) the
// workload is issued by concurrent terminal goroutines through the
// View/Update scheduler instead of the classic single-stream driver.
func (g *Golden) Run(spec RunSpec) (Result, error) {
	if g.opts.Terminals >= 1 && spec.Terminals == 0 && !spec.PageLocks {
		spec.Terminals = g.opts.Terminals
		spec.PageLocks = true
	}
	env, err := g.build(spec, false, nil)
	if err != nil {
		return Result{}, err
	}
	defer env.cleanup()
	warmup := spec.WarmupTx
	if warmup == 0 {
		warmup = g.opts.WarmupTx
	}
	measure := spec.MeasureTx
	if measure == 0 {
		measure = g.opts.MeasureTx
	}
	runPhase := func(n int) error {
		if spec.Terminals >= 1 {
			return env.driver.RunTerminals(context.Background(), spec.Terminals, n)
		}
		return env.driver.RunMany(n)
	}
	if err := runPhase(warmup); err != nil {
		// Stop the engine's background machinery before the deferred
		// cleanup closes the devices out from under it.
		env.eng.Crash()
		return Result{}, fmt.Errorf("bench: warm-up of %s: %w", spec.label(), err)
	}
	before := env.eng.Snapshot()
	beforeCounts := env.driver.Counts()
	beforeKinds := env.driver.KindLatencies()
	var traceBefore trace.Stats
	if tr := env.eng.Tracer(); tr != nil {
		traceBefore = tr.Stats()
	}
	wallStart := time.Now()
	if err := runPhase(measure); err != nil {
		env.eng.Crash()
		return Result{}, fmt.Errorf("bench: measurement of %s: %w", spec.label(), err)
	}
	wall := time.Since(wallStart)
	after := env.eng.Snapshot()
	afterCounts := env.driver.Counts()
	afterKinds := env.driver.KindLatencies()

	res := g.summarize(env, spec, before, after, beforeCounts, afterCounts)
	res.WallClock = wall
	res.DisableObs = spec.DisableObs
	res.DisableTracing = spec.DisableTracing
	if tr := env.eng.Tracer(); tr != nil {
		res.Traces = tr.Stats().Sub(traceBefore)
	}
	if !spec.DisableObs {
		res.Phases = after.Phases.Sub(before.Phases).Summaries()
	}
	// The per-kind wall-clock latency histograms live in the driver and
	// are recorded whether or not engine observability is on.
	var total obs.HistSnapshot
	res.KindLatencies = make(map[string]obs.Summary, len(afterKinds))
	for name, a := range afterKinds {
		w := a.Sub(beforeKinds[name])
		if w.Count == 0 {
			continue
		}
		res.KindLatencies[name] = w.Summary()
		total = total.Merge(w)
	}
	res.TxLatency = total.Summary()
	if hits := after.Pool.Hits - before.Pool.Hits; hits > 0 && wall > 0 {
		res.HitsPerSecWall = float64(hits) / wall.Seconds()
	}
	res.TpmCWall = metrics.PerMinute(res.NewOrders, wall)
	// Close the instance so background pipeline goroutines (async I/O) are
	// drained and stopped; the devices are discarded with the env.
	if err := env.eng.Close(); err != nil {
		return Result{}, fmt.Errorf("bench: closing %s: %w", spec.label(), err)
	}
	g.progress("%-12s cache=%4.0f%%  tpmC=%8.0f  flash-hit=%5.1f%%  wr-red=%5.1f%%  util=%5.1f%%",
		res.Label, res.CacheFraction*100, res.TpmC, res.FlashHitRate*100, res.WriteReduction*100, res.FlashUtilization*100)
	return res, nil
}

func (g *Golden) summarize(env *runEnv, spec RunSpec, before, after engine.Snapshot, bc, ac tpcc.Counts) Result {
	elapsed := after.Elapsed - before.Elapsed
	newOrders := ac.NewOrders() - bc.NewOrders()
	totalTx := ac.Total() - bc.Total()

	res := Result{
		Label:         spec.label(),
		Backend:       env.backend,
		WallclockMode: g.opts.Wallclock || env.backend == BackendFile,
		Policy:        spec.Policy,
		CacheFraction: spec.CacheFraction,
		CacheFrames:   env.frames,
		BufferPages:   env.bufPages,
		DiskCount:     spec.DiskCount,
		Elapsed:       elapsed,
		NewOrders:     newOrders,
		TotalTx:       totalTx,
		TpmC:          metrics.PerMinute(newOrders, elapsed),
		TotalTpm:      metrics.PerMinute(totalTx, elapsed),
		Checkpoints:   after.Checkpoints - before.Checkpoints,
	}
	poolDelta := after.Pool.Hits + after.Pool.Misses - before.Pool.Hits - before.Pool.Misses
	if poolDelta > 0 {
		res.DRAMHitRate = float64(after.Pool.Hits-before.Pool.Hits) / float64(poolDelta)
	}
	dataDelta := after.Data.Sub(before.Data)
	res.DiskReads = dataDelta.Reads()
	res.DiskWrites = dataDelta.Writes()
	res.DataUtilization = metrics.Utilization(dataDelta.Busy/time.Duration(env.dataDev.Parallelism()), elapsed)

	if spec.Policy.UsesFlash() {
		cacheDelta := cacheStatsDelta(before.Cache, after.Cache)
		res.FlashHitRate = cacheDelta.HitRate()
		res.WriteReduction = cacheDelta.WriteReduction()
		flashDelta := after.Flash.Sub(before.Flash)
		res.FlashReads = flashDelta.Reads()
		res.FlashWrites = flashDelta.Writes()
		res.FlashUtilization = metrics.Utilization(flashDelta.Busy, elapsed)
		res.FlashIOPS = metrics.IOPS(flashDelta.Ops(), elapsed)
	}
	res.AsyncDepth = spec.AsyncDepth
	res.Pipeline = after.Pipeline.Sub(before.Pipeline)
	res.PageLocks = spec.PageLocks
	res.Terminals = spec.Terminals
	res.DeadlockRetries = ac.DeadlockRetries - bc.DeadlockRetries
	res.Locks = after.Locks.Sub(before.Locks)
	res.GroupCommit = after.GroupCommit.Sub(before.GroupCommit)
	res.WalSegments = spec.WalSegments
	res.Wal = after.Wal.Sub(before.Wal)
	res.BufferShards = env.shards
	res.ShardImbalance = metrics.ShardImbalance(after.PoolShards)
	res.CacheStripeImbalance = metrics.StripeImbalance(after.CacheStripes)
	return res
}

func cacheStatsDelta(before, after face.Stats) face.Stats {
	return face.Stats{
		Lookups:         after.Lookups - before.Lookups,
		Hits:            after.Hits - before.Hits,
		StageIns:        after.StageIns - before.StageIns,
		DirtyStageIns:   after.DirtyStageIns - before.DirtyStageIns,
		CleanStageIns:   after.CleanStageIns - before.CleanStageIns,
		FlashPageWrites: after.FlashPageWrites - before.FlashPageWrites,
		FlashPageReads:  after.FlashPageReads - before.FlashPageReads,
		DiskPageWrites:  after.DiskPageWrites - before.DiskPageWrites,
		Invalidations:   after.Invalidations - before.Invalidations,
		SecondChances:   after.SecondChances - before.SecondChances,
		Pulled:          after.Pulled - before.Pulled,
		MetadataFlushes: after.MetadataFlushes - before.MetadataFlushes,
	}
}

// RecoveryRun measures restart after a crash for Table 6 and Figure 6.
type RecoveryRun struct {
	Label               string
	CheckpointInterval  time.Duration
	RestartTime         time.Duration
	MetadataRestoreTime time.Duration
	// RestartWall is the host wall-clock time of the restart.  On the
	// file backend the device files are really closed after the crash and
	// reopened from the directory, so it covers fresh descriptors, real
	// reads and the recovery passes — the downtime a served deployment
	// (faced) would observe.  On the in-memory backend it is just the
	// host-side cost of the recovery passes.
	RestartWall time.Duration
	FlashReads  int64
	DiskReads   int64
	RedoApplied int
	// RecordsReplayed is the number of log records restart scanned; it
	// measures how much lost work the crash left behind, which differs
	// between configurations because a faster system loses more work per
	// wall-clock checkpoint interval.
	RecordsReplayed int
	// Timeline is the post-restart throughput (transactions per minute per
	// bucket), used by Figure 6.  Timeline[i] covers simulated time
	// [i*BucketWidth, (i+1)*BucketWidth) measured from the crash.
	Timeline    []float64
	BucketWidth time.Duration
}

// RunRecovery runs the workload with periodic checkpoints, crashes the
// engine halfway through a checkpoint interval, restarts it and (when
// buckets > 0) keeps running to record the post-restart throughput
// timeline.
func (g *Golden) RunRecovery(spec RunSpec, buckets int, bucketWidth time.Duration) (RecoveryRun, error) {
	if spec.CheckpointEvery <= 0 {
		spec.CheckpointEvery = g.opts.CheckpointIntervals[0]
	}
	env, err := g.build(spec, false, nil)
	if err != nil {
		return RecoveryRun{}, err
	}
	// The crash/restart cycle below reuses the same devices, so the file
	// set (if any) is released only when the whole experiment is done.
	defer env.cleanup()
	warmup := spec.WarmupTx
	if warmup == 0 {
		warmup = g.opts.WarmupTx
	}
	if err := env.driver.RunMany(warmup); err != nil {
		env.eng.Crash()
		return RecoveryRun{}, fmt.Errorf("bench: recovery warm-up of %s: %w", spec.label(), err)
	}

	// Run until at least two checkpoints completed, then crash in the
	// middle of the next interval.
	var lastCkptAt time.Duration
	lastCkptCount := env.eng.Checkpoints()
	// Safety bound: if the configured interval is so long that two
	// checkpoints never complete, crash anyway after a generous number of
	// transactions.
	maxTx := 30000
	for i := 0; i < maxTx; i++ {
		if _, err := env.driver.RunOne(); err != nil {
			env.eng.Crash()
			return RecoveryRun{}, err
		}
		now := env.eng.Elapsed()
		if c := env.eng.Checkpoints(); c != lastCkptCount {
			lastCkptCount = c
			lastCkptAt = now
		}
		if lastCkptCount >= 2 && now-lastCkptAt >= spec.CheckpointEvery/2 {
			break
		}
	}
	env.eng.Crash()

	// Restart.  On the file backend the crash really closes the device
	// files and the restart reopens them from the directory, so the wall
	// clock below measures genuine downtime; in-memory devices are reused
	// as-is (their contents must survive the simulated crash).
	wallStart := time.Now()
	if err := env.reopenFiles(); err != nil {
		return RecoveryRun{}, err
	}
	env2, err := g.build(spec, true, env)
	if err != nil {
		return RecoveryRun{}, err
	}
	restartWall := time.Since(wallStart)
	rep := env2.eng.RecoveryReport()
	if rep == nil {
		env2.eng.Crash()
		return RecoveryRun{}, fmt.Errorf("bench: %s: restart produced no recovery report", spec.label())
	}
	run := RecoveryRun{
		Label:               spec.label(),
		CheckpointInterval:  spec.CheckpointEvery,
		RestartTime:         rep.TotalTime,
		RestartWall:         restartWall,
		MetadataRestoreTime: rep.MetadataRestoreTime,
		FlashReads:          rep.FlashReads,
		DiskReads:           rep.DiskReads,
		RedoApplied:         rep.RedoApplied,
		RecordsReplayed:     rep.RecordsScanned,
		BucketWidth:         bucketWidth,
	}

	if buckets > 0 {
		run.Timeline = make([]float64, buckets)
		counts := make([]int64, buckets)
		base := env2.eng.Snapshot()
		horizon := time.Duration(buckets) * bucketWidth
		prevNewOrders := env2.driver.Counts().NewOrders()
		for {
			if _, err := env2.driver.RunOne(); err != nil {
				env2.eng.Crash()
				return RecoveryRun{}, err
			}
			now := rep.TotalTime + (env2.eng.Snapshot().Elapsed - base.Elapsed)
			if now >= horizon {
				break
			}
			cur := env2.driver.Counts().NewOrders()
			bucket := int(now / bucketWidth)
			counts[bucket] += cur - prevNewOrders
			prevNewOrders = cur
		}
		for i := range counts {
			run.Timeline[i] = metrics.PerMinute(counts[i], bucketWidth)
		}
	}
	if err := env2.eng.Close(); err != nil {
		return RecoveryRun{}, fmt.Errorf("bench: closing restarted %s: %w", spec.label(), err)
	}
	g.progress("%-12s interval=%-6v restart=%v wall=%v (metadata %v, flash reads %d, disk reads %d)",
		run.Label, run.CheckpointInterval, run.RestartTime, run.RestartWall.Round(time.Millisecond),
		run.MetadataRestoreTime, run.FlashReads, run.DiskReads)
	return run, nil
}
