package bench

import (
	"fmt"
	"strings"
	"time"
)

// Text formatters: every experiment result can be rendered as the same kind
// of aligned text table the paper prints, so the facebench CLI and
// EXPERIMENTS.md share one source of truth.

func formatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func pct(v float64) string        { return fmt.Sprintf("%.1f", v*100) }
func fnum(v float64) string       { return fmt.Sprintf("%.0f", v) }
func fdur(d time.Duration) string { return d.Round(time.Millisecond).String() }

// flat renders a latency for table cells at microsecond resolution ("-"
// when the window recorded nothing).
func flat(d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return d.Round(time.Microsecond).String()
}

// wallclockMode reports whether the rows ask for the wall-clock headline
// columns (file backend, or the -wallclock flag).  Reports for the default
// in-memory simulated runs stay byte-identical.
func wallclockMode(rows []Result) bool {
	for _, r := range rows {
		if r.WallclockMode {
			return true
		}
	}
	return false
}

// FormatTable1 renders the device characteristics table.
func FormatTable1(rows []Table1Row) string {
	headers := []string{"Device", "Media", "RandRd IOPS", "RandWr IOPS", "SeqRd MB/s", "SeqWr MB/s", "GB", "$", "$/GB"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name, r.Media,
			fnum(r.RandReadIOPS), fnum(r.RandWriteIOPS),
			fmt.Sprintf("%.1f", r.SeqReadMBps), fmt.Sprintf("%.1f", r.SeqWriteMBps),
			fmt.Sprintf("%.1f", r.CapacityGB), fnum(r.PriceUSD), fmt.Sprintf("%.2f", r.PricePerGB),
		})
	}
	return "Table 1: device price and performance characteristics\n" + formatTable(headers, out)
}

func sweepHeader(s SweepResult) []string {
	headers := []string{"Policy"}
	for _, f := range s.Fractions {
		headers = append(headers, fmt.Sprintf("%.0f%%", f*100))
	}
	return headers
}

// FormatTable3 renders the hit-ratio and write-reduction tables.
func FormatTable3(s SweepResult) string {
	var b strings.Builder
	b.WriteString("Table 3(a): flash cache hit ratio (% of DRAM buffer misses), by cache size (% of DB)\n")
	var rows [][]string
	for _, p := range s.Policies {
		row := []string{p.String()}
		for _, r := range s.Results[p] {
			row = append(row, pct(r.FlashHitRate))
		}
		rows = append(rows, row)
	}
	b.WriteString(formatTable(sweepHeader(s), rows))
	b.WriteString("\nTable 3(b): disk write reduction (% of dirty evictions), by cache size (% of DB)\n")
	rows = nil
	for _, p := range s.Policies {
		row := []string{p.String()}
		for _, r := range s.Results[p] {
			row = append(row, pct(r.WriteReduction))
		}
		rows = append(rows, row)
	}
	b.WriteString(formatTable(sweepHeader(s), rows))
	return b.String()
}

// FormatTable4 renders the flash device utilization and I/O throughput
// tables.
func FormatTable4(s SweepResult) string {
	var b strings.Builder
	b.WriteString("Table 4(a): flash cache device utilization (%), by cache size (% of DB)\n")
	var rows [][]string
	for _, p := range s.Policies {
		row := []string{p.String()}
		for _, r := range s.Results[p] {
			row = append(row, pct(r.FlashUtilization))
		}
		rows = append(rows, row)
	}
	b.WriteString(formatTable(sweepHeader(s), rows))
	b.WriteString("\nTable 4(b): flash cache 4 KiB I/O throughput (IOPS), by cache size (% of DB)\n")
	rows = nil
	for _, p := range s.Policies {
		row := []string{p.String()}
		for _, r := range s.Results[p] {
			row = append(row, fnum(r.FlashIOPS))
		}
		rows = append(rows, row)
	}
	b.WriteString(formatTable(sweepHeader(s), rows))
	return b.String()
}

// FormatFigure4 renders the throughput-vs-cache-size curves.
func FormatFigure4(f Figure4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: transaction throughput (tpmC) vs cache size, %s\n", f.SSDName)
	headers := []string{"Series"}
	if len(f.Series) > 0 {
		for _, x := range f.Series[0].X {
			headers = append(headers, fmt.Sprintf("%.0f%%", x*100))
		}
	}
	var rows [][]string
	for _, s := range f.Series {
		row := []string{s.Label}
		for _, y := range s.Y {
			row = append(row, fnum(y))
		}
		rows = append(rows, row)
	}
	b.WriteString(formatTable(headers, rows))
	fmt.Fprintf(&b, "HDD-only reference: %s tpmC\n", fnum(f.HDDOnly.TpmC))
	fmt.Fprintf(&b, "SSD-only reference: %s tpmC\n", fnum(f.SSDOnly.TpmC))
	return b.String()
}

// FormatTable5 renders the DRAM-vs-flash cost effectiveness table.
func FormatTable5(rows []Table5Row) string {
	headers := []string{"Config"}
	for _, r := range rows {
		headers = append(headers, fmt.Sprintf("x%d", r.Step))
	}
	dram := []string{"More DRAM"}
	flash := []string{"More Flash"}
	for _, r := range rows {
		dram = append(dram, fnum(r.MoreDRAM.TpmC))
		flash = append(flash, fnum(r.MoreFlash.TpmC))
	}
	return "Table 5: equal-cost increments of DRAM vs flash (tpmC)\n" +
		formatTable(headers, [][]string{dram, flash})
}

// FormatFigure5 renders throughput vs number of disks.
func FormatFigure5(f Figure5Result) string {
	headers := []string{"Series"}
	for _, d := range f.DiskCounts {
		headers = append(headers, fmt.Sprintf("%d disks", d))
	}
	var rows [][]string
	for _, s := range f.Series {
		row := []string{s.Label}
		for _, y := range s.Y {
			row = append(row, fnum(y))
		}
		rows = append(rows, row)
	}
	return "Figure 5: transaction throughput (tpmC) vs number of RAID-0 disks\n" +
		formatTable(headers, rows)
}

// FormatTable6 renders restart times per checkpoint interval.  Because a
// faster system loses more work per wall-clock interval, the table also
// reports restart time normalised by the amount of lost work replayed
// (milliseconds per thousand log records), which isolates the per-page
// recovery cost that the paper's Table 6 demonstrates.
func FormatTable6(rows []Table6Row) string {
	headers := []string{"Checkpoint interval", "FaCE+GSC restart", "  metadata restore", "HDD-only restart", "Speed-up", "FaCE ms/krec", "HDD ms/krec", "Normalized", "FaCE wall", "HDD wall"}
	perKRec := func(r RecoveryRun) float64 {
		if r.RecordsReplayed == 0 {
			return 0
		}
		return float64(r.RestartTime.Milliseconds()) * 1000 / float64(r.RecordsReplayed)
	}
	var out [][]string
	for _, r := range rows {
		speedup := "-"
		if r.FaCE.RestartTime > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(r.HDDOnly.RestartTime)/float64(r.FaCE.RestartTime))
		}
		norm := "-"
		if f, h := perKRec(r.FaCE), perKRec(r.HDDOnly); f > 0 && h > 0 {
			norm = fmt.Sprintf("%.1fx", h/f)
		}
		out = append(out, []string{
			r.Interval.String(),
			fdur(r.FaCE.RestartTime),
			fdur(r.FaCE.MetadataRestoreTime),
			fdur(r.HDDOnly.RestartTime),
			speedup,
			fmt.Sprintf("%.0f", perKRec(r.FaCE)),
			fmt.Sprintf("%.0f", perKRec(r.HDDOnly)),
			norm,
			r.FaCE.RestartWall.Round(time.Millisecond).String(),
			r.HDDOnly.RestartWall.Round(time.Millisecond).String(),
		})
	}
	return "Table 6: time taken to restart the system after a crash\n" +
		formatTable(headers, out) +
		"(wall columns are host restart time; on -dir runs the device files are really closed and reopened)\n"
}

// FormatFigure6 renders the post-restart throughput timeline.
func FormatFigure6(f Figure6Result) string {
	headers := []string{"Time since crash"}
	n := len(f.FaCE.Timeline)
	if len(f.HDDOnly.Timeline) > n {
		n = len(f.HDDOnly.Timeline)
	}
	for i := 0; i < n; i++ {
		headers = append(headers, (time.Duration(i+1) * f.BucketWidth).String())
	}
	row := func(label string, r RecoveryRun) []string {
		cells := []string{label}
		for i := 0; i < n; i++ {
			if i < len(r.Timeline) {
				cells = append(cells, fnum(r.Timeline[i]))
			} else {
				cells = append(cells, "-")
			}
		}
		return cells
	}
	var b strings.Builder
	b.WriteString("Figure 6: transaction throughput (tpmC) after restart, per time bucket\n")
	b.WriteString(formatTable(headers, [][]string{
		row("FaCE+GSC", f.FaCE),
		row("HDD-only", f.HDDOnly),
	}))
	fmt.Fprintf(&b, "Restart time: FaCE+GSC %s, HDD-only %s\n", fdur(f.FaCE.RestartTime), fdur(f.HDDOnly.RestartTime))
	return b.String()
}

// FormatAsyncAblation renders the sync-vs-async I/O ablation with the
// pipeline counters that explain the difference.
func FormatAsyncAblation(rows []Result) string {
	wall := wallclockMode(rows)
	headers := []string{"Config", "tpmC", "flash hit %", "write red. %", "DRAM hit %",
		"group fill", "coalesced", "stalls", "stall", "destages"}
	if wall {
		headers = append(headers, "tpmC (wall)")
	}
	var out [][]string
	for _, r := range rows {
		fill, coalesced, stalls, stall, destages := "-", "-", "-", "-", "-"
		if r.AsyncDepth != 0 {
			fill = fmt.Sprintf("%.1f", r.Pipeline.GroupFill())
			coalesced = fmt.Sprintf("%d", r.Pipeline.Coalesced)
			stalls = fmt.Sprintf("%d", r.Pipeline.Stalls)
			stall = fdur(r.Pipeline.StallTime)
			destages = fmt.Sprintf("%d", r.Pipeline.Destages)
		}
		row := []string{
			r.Label, fnum(r.TpmC), pct(r.FlashHitRate), pct(r.WriteReduction), pct(r.DRAMHitRate),
			fill, coalesced, stalls, stall, destages,
		}
		if wall {
			row = append(row, fnum(r.TpmCWall))
		}
		out = append(out, row)
	}
	return "Ablation: synchronous vs asynchronous flash I/O pipeline\n" + formatTable(headers, out)
}

// FormatLockAblation renders the single-writer vs page-lock scheduler
// comparison: throughput alongside the scheduler's own vital signs (lock
// waits, deadlock retries, group-commit fan-in).
func FormatLockAblation(rows []Result) string {
	wall := wallclockMode(rows)
	headers := []string{"Scheduler", "terminals", "tpmC", "total tpm",
		"lock waits", "wait time", "deadlock retries", "upgrades", "log writes", "gc fan-in"}
	if wall {
		headers = append(headers, "tpmC (wall)")
	}
	var out [][]string
	for _, r := range rows {
		waits, wait, retries, upgrades, fanin := "-", "-", "-", "-", "-"
		if r.PageLocks {
			waits = fmt.Sprintf("%d", r.Locks.Waits)
			wait = fdur(r.Locks.WaitTime)
			retries = fmt.Sprintf("%d", r.DeadlockRetries)
			upgrades = fmt.Sprintf("%d", r.Locks.Upgrades)
			fanin = fmt.Sprintf("%.2f", r.GroupCommit.FanIn())
		}
		row := []string{
			r.Label, fmt.Sprintf("%d", r.Terminals), fnum(r.TpmC), fnum(r.TotalTpm),
			waits, wait, retries, upgrades, fmt.Sprintf("%d", r.GroupCommit.Forces), fanin,
		}
		if wall {
			row = append(row, fnum(r.TpmCWall))
		}
		out = append(out, row)
	}
	return "Ablation: single-writer vs page-level 2PL transaction scheduler\n" + formatTable(headers, out)
}

// FormatWalAblation renders the WAL front-end ablation: the mutex-compat
// log against the lock-free reservation pipeline.  The columns to read
// are "log writes" (Forces), which must grow sublinearly in terminals as
// the syncer coalesces parked commits, and the coalesce factor (force
// requests per device flush round); under wall-clock mode the tpmC (wall)
// column shows what removing the append convoy buys end to end.
func FormatWalAblation(rows []Result) string {
	wall := wallclockMode(rows)
	headers := []string{"Config", "terminals", "tpmC", "log writes",
		"coalesce", "parks", "reserve stalls", "copy wait", "sync time"}
	if wall {
		headers = append(headers, "tpmC (wall)")
	}
	var out [][]string
	for _, r := range rows {
		row := []string{
			r.Label, fmt.Sprintf("%d", r.Terminals), fnum(r.TpmC),
			fmt.Sprintf("%d", r.Wal.Forces), fmt.Sprintf("%.2f", r.Wal.CoalesceFactor()),
			fmt.Sprintf("%d", r.Wal.DurableWaits), fmt.Sprintf("%d", r.Wal.ReserveStalls),
			fdur(r.Wal.CopyWaitTime), fdur(r.Wal.SyncTime),
		}
		if wall {
			row = append(row, fnum(r.TpmCWall))
		}
		out = append(out, row)
	}
	return "Ablation: mutex-compat WAL vs lock-free reservation pipeline\n" + formatTable(headers, out)
}

// FormatShardAblation renders the hot-path sharding ablation.  The
// simulated tpmC column is expected to be flat across shard counts (the
// model charges the same work either way); the wall-clock hit throughput
// is the column the sharding moves.
func FormatShardAblation(rows []Result) string {
	wall := wallclockMode(rows)
	headers := []string{"Config", "shards", "terminals", "tpmC",
		"DRAM hit %", "hits/s (wall)", "wall clock", "imbalance"}
	if wall {
		headers = append(headers, "tpmC (wall)")
	}
	var out [][]string
	for _, r := range rows {
		row := []string{
			r.Label, fmt.Sprintf("%d", r.BufferShards), fmt.Sprintf("%d", r.Terminals),
			fnum(r.TpmC), pct(r.DRAMHitRate), fnum(r.HitsPerSecWall),
			fdur(r.WallClock), fmt.Sprintf("%.2f", r.ShardImbalance),
		}
		if wall {
			row = append(row, fnum(r.TpmCWall))
		}
		out = append(out, row)
	}
	return "Ablation: striped buffer pool / cache directory (hot-path sharding)\n" + formatTable(headers, out)
}

// FormatObsAblation renders the observability-cost ablation: identical
// configurations with the tracing layer on and off.  The simulated tpmC
// is observability-independent by construction (the model charges device
// and CPU time, not host-side bookkeeping), so the column the rows are
// compared on is the wall-clock throughput; the phase columns show what
// the enabled rows bought — the commit path split into its waits.
func FormatObsAblation(rows []Result) string {
	headers := []string{"Config", "terminals", "tpmC", "tpmC (wall)", "wall clock",
		"tx p50", "tx p99", "lock p99", "wal p99", "durable p99"}
	var out [][]string
	for _, r := range rows {
		lock, walp, durable := "-", "-", "-"
		if !r.DisableObs {
			lock = flat(r.Phases.LockWait.P99)
			walp = flat(r.Phases.WalAppend.P99)
			durable = flat(r.Phases.DurableWait.P99)
		}
		out = append(out, []string{
			r.Label, fmt.Sprintf("%d", r.Terminals), fnum(r.TpmC), fnum(r.TpmCWall),
			fdur(r.WallClock), flat(r.TxLatency.P50), flat(r.TxLatency.P99),
			lock, walp, durable,
		})
	}
	return "Ablation: observability layer cost (phase tracing + histograms on vs off)\n" +
		formatTable(headers, out) +
		"(simulated tpmC is observability-independent by design; compare the wall-clock columns)\n"
}

// FormatTraceAblation renders the span-tracer-cost ablation: identical
// configurations with the tracer on, the tracer off (histograms still
// on), and the whole observability layer off.  The simulated tpmC is
// tracing-independent by construction, so the rows are compared on the
// wall-clock throughput; the journal columns show what the enabled rows
// bought — how many traces were started and how many anomalies the
// tail-sampling retention pinned.
func FormatTraceAblation(rows []Result) string {
	headers := []string{"Config", "terminals", "tpmC", "tpmC (wall)", "wall clock",
		"tx p50", "tx p99", "traces", "pinned", "sampled"}
	var out [][]string
	for _, r := range rows {
		started, pinned, sampled := "-", "-", "-"
		if !r.DisableObs && !r.DisableTracing {
			started = fmt.Sprintf("%d", r.Traces.Started)
			pinned = fmt.Sprintf("%d", r.Traces.Pinned)
			sampled = fmt.Sprintf("%d", r.Traces.Sampled)
		}
		out = append(out, []string{
			r.Label, fmt.Sprintf("%d", r.Terminals), fnum(r.TpmC), fnum(r.TpmCWall),
			fdur(r.WallClock), flat(r.TxLatency.P50), flat(r.TxLatency.P99),
			started, pinned, sampled,
		})
	}
	return "Ablation: span tracer cost (request-scoped tracing on vs off vs observability off)\n" +
		formatTable(headers, out) +
		"(simulated tpmC is tracing-independent by design; compare the wall-clock columns)\n"
}

// FormatResults renders a flat list of results (used by the ablations).
// Under wall-clock mode (file backend or -wallclock) the wall-clock
// throughput leads the row: on real devices the simulated-time tpmC no
// longer models the run — and the row carries the committed-transaction
// wall-clock latency percentiles the observability layer records.
func FormatResults(title string, rows []Result) string {
	wall := wallclockMode(rows)
	headers := []string{"Config", "tpmC", "total tpm", "flash hit %", "write red. %", "flash util %", "flash IOPS", "DRAM hit %"}
	if wall {
		headers = []string{"Config", "tpmC (wall)", "wall clock", "tx p95", "tx p99", "tpmC (sim)", "flash hit %", "write red. %", "DRAM hit %"}
	}
	var out [][]string
	for _, r := range rows {
		if wall {
			out = append(out, []string{
				r.Label, fnum(r.TpmCWall), fdur(r.WallClock),
				flat(r.TxLatency.P95), flat(r.TxLatency.P99), fnum(r.TpmC),
				pct(r.FlashHitRate), pct(r.WriteReduction), pct(r.DRAMHitRate),
			})
			continue
		}
		out = append(out, []string{
			r.Label, fnum(r.TpmC), fnum(r.TotalTpm),
			pct(r.FlashHitRate), pct(r.WriteReduction), pct(r.FlashUtilization),
			fnum(r.FlashIOPS), pct(r.DRAMHitRate),
		})
	}
	return title + "\n" + formatTable(headers, out)
}
