// Package page defines the 4 KiB database page format shared by every
// layer of the system: the DRAM buffer pool, the flash cache, the disk
// store, the write-ahead log and the recovery manager.
//
// Layout (little endian):
//
//	offset  size  field
//	0       8     page id
//	8       8     page LSN (log sequence number of the last update)
//	16      4     checksum (CRC-32C of bytes [HeaderSize, Size))
//	20      2     page type
//	22      2     slot count (slotted pages only)
//	24      2     free-space lower bound (end of slot array)
//	26      2     free-space upper bound (start of cell area)
//	28      4     reserved
//	32      ...   payload / slotted area
//
// The header mirrors what the paper relies on for recovery: every page
// carries its own identity and pageLSN so the flash-cache metadata
// directory can be rebuilt by scanning page headers (Section 4.2).
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Size is the page size in bytes (4 KiB, as in the paper's PostgreSQL
// configuration).
const Size = 4096

// HeaderSize is the number of bytes reserved for the page header.
const HeaderSize = 32

// PayloadSize is the number of usable bytes after the header.
const PayloadSize = Size - HeaderSize

// ID identifies a page within the database.  Page IDs are block numbers on
// the data device.
type ID uint64

// InvalidID is the zero value of ID and never refers to a real data page;
// page 0 of the data device is reserved for the database superblock.
const InvalidID ID = 0

// LSN is a log sequence number: the byte offset of a record in the
// write-ahead log.
type LSN uint64

// Type classifies the content of a page.
type Type uint16

// Page types.
const (
	TypeFree Type = iota
	TypeSuperblock
	TypeHeap
	TypeBTreeLeaf
	TypeBTreeInternal
	TypeMeta
	TypeKVCatalog
	TypeKVMeta
)

// String returns a readable page type name.
func (t Type) String() string {
	switch t {
	case TypeFree:
		return "free"
	case TypeSuperblock:
		return "superblock"
	case TypeHeap:
		return "heap"
	case TypeBTreeLeaf:
		return "btree-leaf"
	case TypeBTreeInternal:
		return "btree-internal"
	case TypeMeta:
		return "meta"
	case TypeKVCatalog:
		return "kv-catalog"
	case TypeKVMeta:
		return "kv-meta"
	default:
		return fmt.Sprintf("type(%d)", uint16(t))
	}
}

// Header field offsets.
const (
	offID       = 0
	offLSN      = 8
	offChecksum = 16
	offType     = 20
	offSlots    = 22
	offLower    = 24
	offUpper    = 26
	offStamp    = 28
)

// Errors returned by page operations.
var (
	ErrBadSize     = errors.New("page: buffer is not a full page")
	ErrChecksum    = errors.New("page: checksum mismatch")
	ErrPageFull    = errors.New("page: not enough free space")
	ErrBadSlot     = errors.New("page: slot out of range")
	ErrSlotDeleted = errors.New("page: slot is deleted")
	ErrTooLarge    = errors.New("page: record larger than page payload")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Buf is a raw page image.  All accessors operate in place on the caller's
// buffer, which must be exactly Size bytes long.
type Buf []byte

// NewBuf allocates a zeroed page image.
func NewBuf() Buf { return make(Buf, Size) }

// Valid reports whether the buffer has the right length.
func (b Buf) Valid() bool { return len(b) == Size }

// ID returns the page id stored in the header.
func (b Buf) ID() ID { return ID(binary.LittleEndian.Uint64(b[offID:])) }

// SetID stores the page id in the header.
func (b Buf) SetID(id ID) { binary.LittleEndian.PutUint64(b[offID:], uint64(id)) }

// LSN returns the page LSN stored in the header.
func (b Buf) LSN() LSN { return LSN(binary.LittleEndian.Uint64(b[offLSN:])) }

// SetLSN stores the page LSN in the header.
func (b Buf) SetLSN(l LSN) { binary.LittleEndian.PutUint64(b[offLSN:], uint64(l)) }

// Type returns the page type.
func (b Buf) Type() Type { return Type(binary.LittleEndian.Uint16(b[offType:])) }

// SetType stores the page type.
func (b Buf) SetType(t Type) { binary.LittleEndian.PutUint16(b[offType:], uint16(t)) }

// CacheStamp returns the flash-cache enqueue stamp stored in the reserved
// header field.  The flash cache stamps every frame it writes with the low
// 32 bits of its global enqueue sequence number so that, after a crash,
// frames belonging to the current queue generation can be told apart from
// stale frames of earlier generations (Section 4.2 of the paper).  The
// stamp is not covered by the page checksum.
func (b Buf) CacheStamp() uint32 { return binary.LittleEndian.Uint32(b[offStamp:]) }

// SetCacheStamp stores the flash-cache enqueue stamp.
func (b Buf) SetCacheStamp(s uint32) { binary.LittleEndian.PutUint32(b[offStamp:], s) }

// Checksum returns the stored checksum.
func (b Buf) Checksum() uint32 { return binary.LittleEndian.Uint32(b[offChecksum:]) }

// UpdateChecksum recomputes and stores the checksum over the page body.
func (b Buf) UpdateChecksum() {
	binary.LittleEndian.PutUint32(b[offChecksum:], b.computeChecksum())
}

// VerifyChecksum reports whether the stored checksum matches the body.
// A page of all zeroes (never written) verifies successfully.
func (b Buf) VerifyChecksum() error {
	if !b.Valid() {
		return ErrBadSize
	}
	if b.Checksum() != b.computeChecksum() && !b.isZero() {
		return fmt.Errorf("%w: page %d", ErrChecksum, b.ID())
	}
	return nil
}

func (b Buf) computeChecksum() uint32 {
	return crc32.Checksum(b[HeaderSize:], castagnoli)
}

func (b Buf) isZero() bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Init formats the buffer as an empty page of the given type with the
// given id.  Slotted bookkeeping is initialised so heap and B-tree layers
// can use the page immediately.
func (b Buf) Init(id ID, t Type) {
	for i := range b {
		b[i] = 0
	}
	b.SetID(id)
	b.SetType(t)
	b.setSlotCount(0)
	b.setLower(HeaderSize)
	b.setUpper(Size)
}

// Payload returns the page body after the header.  Callers that use the
// slotted-page API must not write to the payload directly.
func (b Buf) Payload() []byte { return b[HeaderSize:] }

// Clone returns a deep copy of the page image.
func (b Buf) Clone() Buf {
	cp := NewBuf()
	copy(cp, b)
	return cp
}

// --- Slotted page layout -------------------------------------------------
//
// The slot array grows downward from HeaderSize; cells grow upward from the
// end of the page.  Each slot is 4 bytes: 2-byte cell offset, 2-byte cell
// length.  Offset 0 marks a deleted slot.

const slotSize = 4

// SlotCount returns the number of slots (including deleted ones).
func (b Buf) SlotCount() int { return int(binary.LittleEndian.Uint16(b[offSlots:])) }

func (b Buf) setSlotCount(n int) { binary.LittleEndian.PutUint16(b[offSlots:], uint16(n)) }

func (b Buf) lower() int { return int(binary.LittleEndian.Uint16(b[offLower:])) }

func (b Buf) setLower(v int) { binary.LittleEndian.PutUint16(b[offLower:], uint16(v)) }

func (b Buf) upper() int { return int(binary.LittleEndian.Uint16(b[offUpper:])) }

func (b Buf) setUpper(v int) { binary.LittleEndian.PutUint16(b[offUpper:], uint16(v)) }

func (b Buf) slotOffsets(slot int) (cellOff, cellLen int) {
	base := HeaderSize + slot*slotSize
	return int(binary.LittleEndian.Uint16(b[base:])), int(binary.LittleEndian.Uint16(b[base+2:]))
}

func (b Buf) setSlot(slot, cellOff, cellLen int) {
	base := HeaderSize + slot*slotSize
	binary.LittleEndian.PutUint16(b[base:], uint16(cellOff))
	binary.LittleEndian.PutUint16(b[base+2:], uint16(cellLen))
}

// FreeSpace returns the number of bytes available for one new record
// (including its slot).
func (b Buf) FreeSpace() int {
	free := b.upper() - b.lower() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Insert adds a record to the page and returns its slot number.
// It returns ErrPageFull when the record does not fit.
func (b Buf) Insert(rec []byte) (int, error) {
	if len(rec) > PayloadSize-slotSize {
		return 0, ErrTooLarge
	}
	if len(rec)+slotSize > b.upper()-b.lower() {
		return 0, ErrPageFull
	}
	slot := b.SlotCount()
	newUpper := b.upper() - len(rec)
	copy(b[newUpper:], rec)
	b.setUpper(newUpper)
	b.setSlot(slot, newUpper, len(rec))
	b.setSlotCount(slot + 1)
	b.setLower(b.lower() + slotSize)
	return slot, nil
}

// Record returns the record stored in the given slot.  The returned slice
// aliases the page buffer.
func (b Buf) Record(slot int) ([]byte, error) {
	if slot < 0 || slot >= b.SlotCount() {
		return nil, fmt.Errorf("%w: slot %d of %d on page %d", ErrBadSlot, slot, b.SlotCount(), b.ID())
	}
	off, length := b.slotOffsets(slot)
	if off == 0 {
		return nil, fmt.Errorf("%w: slot %d on page %d", ErrSlotDeleted, slot, b.ID())
	}
	return b[off : off+length], nil
}

// Update replaces the record in the given slot.  The new record must not be
// larger than the old one (fixed-size records in this system always
// satisfy this; variable-size updates go through delete+insert).
func (b Buf) Update(slot int, rec []byte) error {
	old, err := b.Record(slot)
	if err != nil {
		return err
	}
	if len(rec) > len(old) {
		return fmt.Errorf("%w: update of slot %d grows record from %d to %d bytes",
			ErrPageFull, slot, len(old), len(rec))
	}
	copy(old, rec)
	if len(rec) < len(old) {
		off, _ := b.slotOffsets(slot)
		b.setSlot(slot, off, len(rec))
	}
	return nil
}

// Delete marks the slot as deleted.  The cell space is not reclaimed; this
// matches the lazy-delete behaviour the TPC-C Delivery transaction needs.
func (b Buf) Delete(slot int) error {
	if slot < 0 || slot >= b.SlotCount() {
		return fmt.Errorf("%w: slot %d of %d on page %d", ErrBadSlot, slot, b.SlotCount(), b.ID())
	}
	b.setSlot(slot, 0, 0)
	return nil
}

// Deleted reports whether the slot has been deleted.
func (b Buf) Deleted(slot int) (bool, error) {
	if slot < 0 || slot >= b.SlotCount() {
		return false, fmt.Errorf("%w: slot %d of %d on page %d", ErrBadSlot, slot, b.SlotCount(), b.ID())
	}
	off, _ := b.slotOffsets(slot)
	return off == 0, nil
}

// RID is a record identifier: a (page, slot) pair.
type RID struct {
	Page ID
	Slot uint16
}

// String formats the RID.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// IsZero reports whether the RID is the zero value.
func (r RID) IsZero() bool { return r.Page == InvalidID && r.Slot == 0 }

// EncodeRID packs a RID into 10 bytes.
func EncodeRID(r RID) [10]byte {
	var out [10]byte
	binary.LittleEndian.PutUint64(out[0:], uint64(r.Page))
	binary.LittleEndian.PutUint16(out[8:], r.Slot)
	return out
}

// DecodeRID unpacks a RID encoded with EncodeRID.
func DecodeRID(b []byte) RID {
	return RID{
		Page: ID(binary.LittleEndian.Uint64(b[0:])),
		Slot: binary.LittleEndian.Uint16(b[8:]),
	}
}
