package page

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	b := NewBuf()
	b.Init(42, TypeHeap)
	b.SetLSN(777)
	if b.ID() != 42 || b.LSN() != 777 || b.Type() != TypeHeap {
		t.Fatalf("header round trip failed: id=%d lsn=%d type=%v", b.ID(), b.LSN(), b.Type())
	}
}

func TestChecksum(t *testing.T) {
	b := NewBuf()
	b.Init(7, TypeHeap)
	if _, err := b.Insert([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	b.UpdateChecksum()
	if err := b.VerifyChecksum(); err != nil {
		t.Fatalf("VerifyChecksum on clean page: %v", err)
	}
	// Corrupt the body.
	b[Size-1] ^= 0xFF
	if err := b.VerifyChecksum(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("VerifyChecksum on corrupted page: %v, want ErrChecksum", err)
	}
	// Zero page verifies (never written).
	z := NewBuf()
	if err := z.VerifyChecksum(); err != nil {
		t.Fatalf("zero page should verify: %v", err)
	}
	// Wrong size.
	short := Buf(make([]byte, 100))
	if err := short.VerifyChecksum(); !errors.Is(err, ErrBadSize) {
		t.Fatalf("short page: %v, want ErrBadSize", err)
	}
}

func TestInsertAndRecord(t *testing.T) {
	b := NewBuf()
	b.Init(1, TypeHeap)
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	var slots []int
	for _, r := range recs {
		s, err := b.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	if b.SlotCount() != 3 {
		t.Fatalf("SlotCount = %d, want 3", b.SlotCount())
	}
	for i, s := range slots {
		got, err := b.Record(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Fatalf("slot %d = %q, want %q", s, got, recs[i])
		}
	}
}

func TestInsertUntilFull(t *testing.T) {
	b := NewBuf()
	b.Init(1, TypeHeap)
	rec := make([]byte, 100)
	count := 0
	for {
		_, err := b.Insert(rec)
		if errors.Is(err, ErrPageFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
		if count > Size {
			t.Fatal("page never filled up")
		}
	}
	// 104 bytes per record (100 + 4-byte slot) in ~4064 payload bytes.
	if count < 35 || count > 40 {
		t.Fatalf("inserted %d 100-byte records, expected ~39", count)
	}
	if b.FreeSpace() >= 104 {
		t.Fatalf("FreeSpace = %d after filling, expected < 104", b.FreeSpace())
	}
}

func TestInsertTooLarge(t *testing.T) {
	b := NewBuf()
	b.Init(1, TypeHeap)
	if _, err := b.Insert(make([]byte, PayloadSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestUpdate(t *testing.T) {
	b := NewBuf()
	b.Init(1, TypeHeap)
	s, err := b.Insert([]byte("hello world"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Update(s, []byte("HELLO WORLD")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Record(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "HELLO WORLD" {
		t.Fatalf("updated record = %q", got)
	}
	// Shrinking update adjusts the visible length.
	if err := b.Update(s, []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, _ = b.Record(s)
	if string(got) != "short" {
		t.Fatalf("shrunk record = %q", got)
	}
	// Growing update is rejected.
	if err := b.Update(s, make([]byte, 200)); err == nil {
		t.Fatal("expected error growing a record in place")
	}
}

func TestDelete(t *testing.T) {
	b := NewBuf()
	b.Init(1, TypeHeap)
	s, _ := b.Insert([]byte("doomed"))
	del, err := b.Deleted(s)
	if err != nil || del {
		t.Fatalf("Deleted before delete = %v, %v", del, err)
	}
	if err := b.Delete(s); err != nil {
		t.Fatal(err)
	}
	del, err = b.Deleted(s)
	if err != nil || !del {
		t.Fatalf("Deleted after delete = %v, %v", del, err)
	}
	if _, err := b.Record(s); !errors.Is(err, ErrSlotDeleted) {
		t.Fatalf("Record on deleted slot: %v, want ErrSlotDeleted", err)
	}
	if err := b.Delete(99); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Delete bad slot: %v, want ErrBadSlot", err)
	}
	if _, err := b.Deleted(99); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Deleted bad slot: %v, want ErrBadSlot", err)
	}
}

func TestRecordBadSlot(t *testing.T) {
	b := NewBuf()
	b.Init(1, TypeHeap)
	if _, err := b.Record(0); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("got %v, want ErrBadSlot", err)
	}
	if _, err := b.Record(-1); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("got %v, want ErrBadSlot", err)
	}
}

func TestClone(t *testing.T) {
	b := NewBuf()
	b.Init(9, TypeBTreeLeaf)
	if _, err := b.Insert([]byte("original")); err != nil {
		t.Fatal(err)
	}
	c := b.Clone()
	if !bytes.Equal(b, c) {
		t.Fatal("clone differs from original")
	}
	c[HeaderSize] ^= 0xFF
	if bytes.Equal(b, c) {
		t.Fatal("clone shares storage with original")
	}
}

func TestInitClearsOldContent(t *testing.T) {
	b := NewBuf()
	b.Init(1, TypeHeap)
	if _, err := b.Insert([]byte("junk")); err != nil {
		t.Fatal(err)
	}
	b.Init(2, TypeBTreeLeaf)
	if b.SlotCount() != 0 || b.ID() != 2 || b.Type() != TypeBTreeLeaf {
		t.Fatalf("Init did not reset page: slots=%d id=%d type=%v", b.SlotCount(), b.ID(), b.Type())
	}
	if b.FreeSpace() < PayloadSize-2*slotSize {
		t.Fatalf("FreeSpace after Init = %d", b.FreeSpace())
	}
}

func TestTypeString(t *testing.T) {
	types := []Type{TypeFree, TypeSuperblock, TypeHeap, TypeBTreeLeaf, TypeBTreeInternal, TypeMeta, Type(99)}
	seen := map[string]bool{}
	for _, ty := range types {
		s := ty.String()
		if s == "" || seen[s] {
			t.Errorf("type %d string %q empty or duplicate", ty, s)
		}
		seen[s] = true
	}
}

func TestRIDEncodeDecode(t *testing.T) {
	r := RID{Page: 123456789, Slot: 321}
	enc := EncodeRID(r)
	if got := DecodeRID(enc[:]); got != r {
		t.Fatalf("DecodeRID(EncodeRID(%v)) = %v", r, got)
	}
	if r.String() == "" {
		t.Fatal("RID.String empty")
	}
	if !(RID{}).IsZero() || r.IsZero() {
		t.Fatal("IsZero misbehaves")
	}
}

func TestRIDRoundTripProperty(t *testing.T) {
	f := func(p uint64, s uint16) bool {
		r := RID{Page: ID(p), Slot: s}
		enc := EncodeRID(r)
		return DecodeRID(enc[:]) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSlottedPageProperty inserts random records and verifies they all read
// back intact, an invariant of the slotted layout.
func TestSlottedPageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		b := NewBuf()
		b.Init(ID(iter+1), TypeHeap)
		var inserted [][]byte
		var slots []int
		for {
			rec := make([]byte, 1+rng.Intn(200))
			rng.Read(rec)
			s, err := b.Insert(rec)
			if errors.Is(err, ErrPageFull) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			inserted = append(inserted, rec)
			slots = append(slots, s)
		}
		if len(inserted) == 0 {
			t.Fatal("no records inserted")
		}
		for i, s := range slots {
			got, err := b.Record(s)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, inserted[i]) {
				t.Fatalf("iteration %d slot %d mismatch", iter, s)
			}
		}
		b.UpdateChecksum()
		if err := b.VerifyChecksum(); err != nil {
			t.Fatal(err)
		}
	}
}
