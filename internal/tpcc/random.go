package tpcc

import "math/rand"

// nuRandC holds the per-field constants of the TPC-C non-uniform random
// function.  The values are fixed (rather than drawn per run) so that runs
// are reproducible; the skew they induce is what matters for caching.
type nuRandC struct {
	cLast, cID, olID int
}

var defaultC = nuRandC{cLast: 123, cID: 259, olID: 7911}

// nuRand implements the TPC-C NURand(A, x, y) function: a non-uniform
// random integer in [x, y] with heavy skew toward a subset of values.  It
// is what makes a minority of customers and items "hot" — the locality the
// flash cache exploits.
func nuRand(rng *rand.Rand, a, c, x, y int) int {
	return (((randInt(rng, 0, a) | randInt(rng, x, y)) + c) % (y - x + 1)) + x
}

// randInt returns a uniform random integer in [lo, hi].
func randInt(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// randCustomer picks a customer id in [1, n] with NURand(1023) skew,
// scaling the constant down for scaled-down databases.
func randCustomer(rng *rand.Rand, n int) int {
	a := 1023
	if n < 1024 {
		a = nextPow2(n/3) - 1
		if a < 15 {
			a = 15
		}
	}
	return nuRand(rng, a, defaultC.cID, 1, n)
}

// randItem picks an item id in [1, n] with NURand(8191) skew, scaled like
// randCustomer.
func randItem(rng *rand.Rand, n int) int {
	a := 8191
	if n < 8192 {
		a = nextPow2(n/3) - 1
		if a < 15 {
			a = 15
		}
	}
	return nuRand(rng, a, defaultC.olID, 1, n)
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
