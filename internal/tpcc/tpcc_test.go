package tpcc

import (
	"math/rand"
	"testing"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/engine"
)

// tinyConfig is small enough for fast unit tests while still exercising
// every table and transaction.
func tinyConfig() Config {
	return Config{
		Warehouses:               2,
		DistrictsPerWarehouse:    3,
		CustomersPerDistrict:     40,
		Items:                    100,
		InitialOrdersPerDistrict: 30,
		Seed:                     7,
	}
}

func newEngine(t *testing.T, policy engine.CachePolicy) *engine.DB {
	t.Helper()
	cfg := engine.Config{
		DataDev:     device.NewArray("data", device.ProfileCheetah15K, 4, 32768),
		LogDev:      device.New("log", device.ProfileCheetah15K, 1<<16),
		BufferPages: 64,
		Policy:      policy,
	}
	if policy.UsesFlash() {
		cfg.FlashDev = device.New("flash", device.ProfileSamsung470, 4096)
		cfg.FlashFrames = 1024
		cfg.GroupSize = 16
		cfg.SegmentEntries = 128
	}
	db, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestNURandDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 1000
	const draws = 20000
	counts := make(map[int]int)
	for i := 0; i < draws; i++ {
		v := randCustomer(rng, n)
		if v < 1 || v > n {
			t.Fatalf("randCustomer out of range: %d", v)
		}
		counts[v]++
	}
	// The skew must make some values far more popular than the uniform
	// expectation (draws/n = 20).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 3*draws/n {
		t.Fatalf("NURand produced no hot values: max frequency %d", max)
	}
	for i := 0; i < 1000; i++ {
		if v := randItem(rng, 50); v < 1 || v > 50 {
			t.Fatalf("randItem out of range: %d", v)
		}
		if v := randInt(rng, 5, 5); v != 5 {
			t.Fatalf("randInt degenerate range: %d", v)
		}
	}
}

func TestKeyEncodingsAreUnique(t *testing.T) {
	seen := map[uint64]string{}
	check := func(name string, k uint64) {
		if prev, ok := seen[k]; ok {
			t.Fatalf("key collision between %s and %s (key %d)", name, prev, k)
		}
		seen[k] = name
	}
	for w := 1; w <= 3; w++ {
		for d := 1; d <= 3; d++ {
			check("district", districtKey(w, d))
			for c := 1; c <= 5; c++ {
				check("customer", customerKey(w, d, c))
			}
			for o := 1; o <= 5; o++ {
				check("order", orderKey(w, d, o))
				for ol := 1; ol <= 3; ol++ {
					check("orderline", orderLineKey(w, d, o, ol))
				}
			}
		}
		for i := 1; i <= 5; i++ {
			check("stock", stockKey(w, i))
		}
	}
}

func TestRecordAccessors(t *testing.T) {
	w := newWarehouseRec(3)
	warehouseAddYTD(w, 500)
	if warehouseYTD(w) != 500 {
		t.Fatal("warehouse ytd")
	}
	d := newDistrictRec(2, 31)
	if districtNextOrder(d) != 31 {
		t.Fatal("district next order")
	}
	districtSetNextOrder(d, 32)
	districtAddYTD(d, 9)
	if districtNextOrder(d) != 32 || districtYTD(d) != 9 {
		t.Fatal("district accessors")
	}
	c := newCustomerRec(1)
	if customerBalance(c) != -10 {
		t.Fatalf("initial balance = %d", customerBalance(c))
	}
	customerAddBalance(c, -90)
	customerAddPayment(c, 90)
	customerAddDelivery(c)
	if customerBalance(c) != -100 {
		t.Fatalf("balance after payment = %d", customerBalance(c))
	}
	o := newOrderRec(7, 9, 123)
	if orderCustomer(o) != 7 || orderLineCount(o) != 9 || orderCarrier(o) != 0 {
		t.Fatal("order accessors")
	}
	orderSetCarrier(o, 4)
	if orderCarrier(o) != 4 {
		t.Fatal("order carrier")
	}
	ol := newOrderLineRec(55, 3, 200)
	if orderLineItem(ol) != 55 || orderLineAmount(ol) != 200 {
		t.Fatal("order line accessors")
	}
	orderLineSetDeliveryDate(ol, 9)
	s := newStockRec(5)
	q := stockQuantity(s)
	stockSetQuantity(s, q-1)
	stockAddOrder(s, 3, true)
	if stockQuantity(s) != q-1 {
		t.Fatal("stock quantity")
	}
	i := newItemRec(12)
	if itemPrice(i) == 0 {
		t.Fatal("item price")
	}
	if len(newHistoryRec(1, 2, 3, 4)) != historyRecSize || len(newNewOrderRec(1)) != newOrderRecSize {
		t.Fatal("record sizes")
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}
	c.normalize()
	if c.Warehouses != 1 || c.DistrictsPerWarehouse != 10 || c.Seed == 0 {
		t.Fatalf("normalize: %+v", c)
	}
	if err := (Config{Warehouses: 0}).Validate(); err == nil {
		t.Fatal("zero warehouses validated")
	}
	def := DefaultConfig(0)
	if def.Warehouses != 1 || def.Items <= 0 {
		t.Fatalf("DefaultConfig: %+v", def)
	}
}

func TestLoadAndRunMix(t *testing.T) {
	eng := newEngine(t, engine.PolicyFaCEGSC)
	db, err := Load(eng, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tables := db.Tables()
	for _, name := range []string{"warehouse", "district", "customer", "orders", "order_line", "item", "stock", "history", "new_order"} {
		if tables[name] < 1 {
			t.Fatalf("table %s has no pages: %v", name, tables)
		}
	}
	if db.Config().Warehouses != 2 {
		t.Fatal("config not retained")
	}

	dr := NewDriver(eng, db, 99)
	if err := dr.RunMany(300); err != nil {
		t.Fatal(err)
	}
	counts := dr.Counts()
	if counts.Total() < 290 {
		t.Fatalf("committed %d of 300 transactions", counts.Total())
	}
	if counts.NewOrders() == 0 || counts.Committed[KindPayment] == 0 {
		t.Fatalf("mix not exercised: %+v", counts)
	}
	// Each kind should have run at least once over 300 transactions.
	for k := KindNewOrder; k < numKinds; k++ {
		if counts.Committed[k] == 0 {
			t.Fatalf("kind %s never committed: %+v", k, counts)
		}
	}
	if eng.Committed() < counts.Total() {
		t.Fatal("engine commit counter lower than driver counter")
	}
	dr.ResetCounts()
	if dr.Counts().Total() != 0 {
		t.Fatal("ResetCounts failed")
	}
}

func TestEachTransactionKindExplicitly(t *testing.T) {
	eng := newEngine(t, engine.PolicyLC)
	db, err := Load(eng, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	dr := NewDriver(eng, db, 3)
	for k := KindNewOrder; k < numKinds; k++ {
		for i := 0; i < 10; i++ {
			if err := dr.Run(k); err != nil {
				t.Fatalf("%s run %d: %v", k, i, err)
			}
		}
	}
	if dr.Counts().Total() < 45 {
		t.Fatalf("committed %d of 50", dr.Counts().Total())
	}
}

func TestWorkloadSurvivesCrashRecovery(t *testing.T) {
	dataDev := device.NewArray("data", device.ProfileCheetah15K, 4, 32768)
	logDev := device.New("log", device.ProfileCheetah15K, 1<<16)
	flashDev := device.New("flash", device.ProfileSamsung470, 4096)
	cfg := engine.Config{
		DataDev:        dataDev,
		LogDev:         logDev,
		FlashDev:       flashDev,
		BufferPages:    64,
		Policy:         engine.PolicyFaCEGSC,
		FlashFrames:    1024,
		GroupSize:      16,
		SegmentEntries: 128,
	}
	eng, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Load(eng, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	dr := NewDriver(eng, db, 5)
	if err := dr.RunMany(200); err != nil {
		t.Fatal(err)
	}
	eng.Crash()

	cfg.Recover = true
	eng2, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if eng2.RecoveryReport() == nil {
		t.Fatal("no recovery report")
	}
	// The same Database catalog keeps working against the recovered engine.
	dr2 := NewDriver(eng2, db, 6)
	if err := dr2.RunMany(100); err != nil {
		t.Fatalf("workload after recovery: %v", err)
	}
	if dr2.Counts().Total() < 95 {
		t.Fatalf("committed %d of 100 after recovery", dr2.Counts().Total())
	}
}

func TestKindString(t *testing.T) {
	seen := map[string]bool{}
	for k := KindNewOrder; k <= Kind(numKinds); k++ {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("Kind(%d).String() = %q", k, s)
		}
		seen[s] = true
	}
	total := 0
	for _, pct := range Mix {
		total += pct
	}
	if total != 100 {
		t.Fatalf("mix percentages sum to %d", total)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	eng := newEngine(t, engine.PolicyNone)
	db, err := Load(eng, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	clone := db.Clone()
	if clone.order.NumPages() != db.order.NumPages() {
		t.Fatal("clone catalog differs")
	}
	// Growing a table in the original must not affect the clone.
	dr := NewDriver(eng, db, 11)
	if err := dr.RunMany(100); err != nil {
		t.Fatal(err)
	}
	if db.order.NumPages() < clone.order.NumPages() {
		t.Fatal("original should have at least as many pages as the clone")
	}
	if clone.Config().Warehouses != db.Config().Warehouses {
		t.Fatal("clone config mismatch")
	}
}
