package tpcc

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/reprolab/face/internal/btree"
	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/page"
)

// ErrRollback marks an expected transaction rollback (the 1 % of New-Order
// transactions the specification requires to abort on an unused item id).
var ErrRollback = errors.New("tpcc: expected rollback")

// errNotFound wraps lookups that should always succeed on a loaded
// database; hitting it indicates a corrupted database or index.
func errNotFound(what string, key uint64) error {
	return fmt.Errorf("tpcc: %s with key %d not found", what, key)
}

// NewOrder executes the TPC-C New-Order transaction against warehouse w.
func (d *Database) NewOrder(tx *engine.Tx, rng *rand.Rand, w int) error {
	cfg := d.cfg
	dist := randInt(rng, 1, cfg.DistrictsPerWarehouse)
	cust := randCustomer(rng, cfg.CustomersPerDistrict)
	lineCount := randInt(rng, 5, 15)
	rollback := rng.Intn(100) == 0

	// Warehouse tax (read-only).
	if err := d.warehouse.Get(tx, d.warehouseRID[w], func(rec []byte) error { return nil }); err != nil {
		return err
	}

	// District: read and increment the next order id.
	var orderID int
	dk := districtKey(w, dist)
	err := d.district.Update(tx, d.districtRID[dk], func(rec []byte) error {
		orderID = districtNextOrder(rec)
		districtSetNextOrder(rec, orderID+1)
		return nil
	})
	if err != nil {
		return err
	}

	// Customer (read-only: discount, credit).
	custRID, ok, err := d.customerIdx.Get(tx, customerKey(w, dist, cust))
	if err != nil {
		return err
	}
	if !ok {
		return errNotFound("customer", customerKey(w, dist, cust))
	}
	if err := d.customer.Get(tx, custRID, func(rec []byte) error { return nil }); err != nil {
		return err
	}

	// Order and NEW-ORDER rows.
	orid, err := d.order.Insert(tx, newOrderRec(cust, lineCount, orderID))
	if err != nil {
		return err
	}
	if err := d.orderIdx.Insert(tx, orderKey(w, dist, orderID), orid); err != nil {
		return err
	}
	if err := d.custOrderIdx.Insert(tx, customerOrderKey(w, dist, cust, orderID), orid); err != nil {
		return err
	}
	norid, err := d.newOrder.Insert(tx, newNewOrderRec(orderID))
	if err != nil {
		return err
	}
	if err := d.newOrderIdx.Insert(tx, orderKey(w, dist, orderID), norid); err != nil {
		return err
	}

	// Order lines.
	for ol := 1; ol <= lineCount; ol++ {
		if rollback && ol == lineCount {
			// Unused item id: the whole transaction rolls back.
			return ErrRollback
		}
		item := randItem(rng, cfg.Items)
		supplyW := w
		remote := false
		if cfg.Warehouses > 1 && rng.Intn(100) == 0 {
			supplyW = randInt(rng, 1, cfg.Warehouses)
			remote = supplyW != w
		}
		itemRID, ok, err := d.itemIdx.Get(tx, itemKey(item))
		if err != nil {
			return err
		}
		if !ok {
			return errNotFound("item", itemKey(item))
		}
		var price uint64
		if err := d.item.Get(tx, itemRID, func(rec []byte) error {
			price = itemPrice(rec)
			return nil
		}); err != nil {
			return err
		}

		quantity := randInt(rng, 1, 10)
		stockRID, ok, err := d.stockIdx.Get(tx, stockKey(supplyW, item))
		if err != nil {
			return err
		}
		if !ok {
			return errNotFound("stock", stockKey(supplyW, item))
		}
		if err := d.stock.Update(tx, stockRID, func(rec []byte) error {
			q := stockQuantity(rec)
			if q >= quantity+10 {
				q -= quantity
			} else {
				q = q - quantity + 91
			}
			stockSetQuantity(rec, q)
			stockAddOrder(rec, quantity, remote)
			return nil
		}); err != nil {
			return err
		}

		olrid, err := d.orderLine.Insert(tx, newOrderLineRec(item, quantity, price*uint64(quantity)))
		if err != nil {
			return err
		}
		if err := d.orderLineIdx.Insert(tx, orderLineKey(w, dist, orderID, ol), olrid); err != nil {
			return err
		}
	}
	return nil
}

// Payment executes the TPC-C Payment transaction against warehouse w.
func (d *Database) Payment(tx *engine.Tx, rng *rand.Rand, w int) error {
	cfg := d.cfg
	dist := randInt(rng, 1, cfg.DistrictsPerWarehouse)
	amount := uint64(randInt(rng, 100, 500000))

	// 15 % of payments are made through a remote warehouse/district.
	custW, custD := w, dist
	if cfg.Warehouses > 1 && rng.Intn(100) < 15 {
		for {
			custW = randInt(rng, 1, cfg.Warehouses)
			if custW != w || cfg.Warehouses == 1 {
				break
			}
		}
		custD = randInt(rng, 1, cfg.DistrictsPerWarehouse)
	}
	cust := randCustomer(rng, cfg.CustomersPerDistrict)

	if err := d.warehouse.Update(tx, d.warehouseRID[w], func(rec []byte) error {
		warehouseAddYTD(rec, amount)
		return nil
	}); err != nil {
		return err
	}
	if err := d.district.Update(tx, d.districtRID[districtKey(w, dist)], func(rec []byte) error {
		districtAddYTD(rec, amount)
		return nil
	}); err != nil {
		return err
	}

	custRID, ok, err := d.customerIdx.Get(tx, customerKey(custW, custD, cust))
	if err != nil {
		return err
	}
	if !ok {
		return errNotFound("customer", customerKey(custW, custD, cust))
	}
	if err := d.customer.Update(tx, custRID, func(rec []byte) error {
		customerAddBalance(rec, -int64(amount))
		customerAddPayment(rec, amount)
		return nil
	}); err != nil {
		return err
	}

	_, err = d.history.Insert(tx, newHistoryRec(custW, custD, cust, amount))
	return err
}

// OrderStatus executes the TPC-C Order-Status transaction (read-only).
func (d *Database) OrderStatus(tx *engine.Tx, rng *rand.Rand, w int) error {
	cfg := d.cfg
	dist := randInt(rng, 1, cfg.DistrictsPerWarehouse)
	cust := randCustomer(rng, cfg.CustomersPerDistrict)

	custRID, ok, err := d.customerIdx.Get(tx, customerKey(w, dist, cust))
	if err != nil {
		return err
	}
	if !ok {
		return errNotFound("customer", customerKey(w, dist, cust))
	}
	if err := d.customer.Get(tx, custRID, func(rec []byte) error { return nil }); err != nil {
		return err
	}

	// Most recent order of the customer.
	lo := customerOrderKey(w, dist, cust, 0)
	hi := customerOrderKey(w, dist, cust, orderSpan/100-1)
	var lastOrder uint64
	var lastRID page.RID
	found := false
	if err := d.custOrderIdx.Scan(tx, lo, hi, func(k uint64, rid page.RID) error {
		lastOrder = k
		lastRID = rid
		found = true
		return nil
	}); err != nil {
		return err
	}
	if !found {
		// A customer without orders is possible at small scales.
		return nil
	}
	orderID := int(lastOrder - lo)
	var lines int
	if err := d.order.Get(tx, lastRID, func(rec []byte) error {
		lines = orderLineCount(rec)
		return nil
	}); err != nil {
		return err
	}
	for ol := 1; ol <= lines; ol++ {
		olRID, ok, err := d.orderLineIdx.Get(tx, orderLineKey(w, dist, orderID, ol))
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := d.orderLine.Get(tx, olRID, func(rec []byte) error { return nil }); err != nil {
			return err
		}
	}
	return nil
}

// Delivery executes the TPC-C Delivery transaction: the oldest undelivered
// order of every district is delivered.
func (d *Database) Delivery(tx *engine.Tx, rng *rand.Rand, w int) error {
	cfg := d.cfg
	carrier := randInt(rng, 1, 10)
	for dist := 1; dist <= cfg.DistrictsPerWarehouse; dist++ {
		lo := orderKey(w, dist, 0)
		hi := orderKey(w, dist, orderSpan-1)
		var oldestKey uint64
		var oldestRID page.RID
		found := false
		err := d.newOrderIdx.Scan(tx, lo, hi, func(k uint64, rid page.RID) error {
			oldestKey = k
			oldestRID = rid
			found = true
			return btree.ErrStopScan
		})
		if err != nil {
			return err
		}
		if !found {
			continue
		}
		orderID := int(oldestKey - lo)

		// Remove the NEW-ORDER row and its index entry.
		if err := d.newOrder.Delete(tx, oldestRID); err != nil {
			return err
		}
		if err := d.newOrderIdx.Delete(tx, oldestKey); err != nil {
			return err
		}

		// Update the order with the carrier and collect its lines.
		ordRID, ok, err := d.orderIdx.Get(tx, orderKey(w, dist, orderID))
		if err != nil {
			return err
		}
		if !ok {
			return errNotFound("order", orderKey(w, dist, orderID))
		}
		var cust, lines int
		if err := d.order.Update(tx, ordRID, func(rec []byte) error {
			cust = orderCustomer(rec)
			lines = orderLineCount(rec)
			orderSetCarrier(rec, carrier)
			return nil
		}); err != nil {
			return err
		}

		var total uint64
		for ol := 1; ol <= lines; ol++ {
			olRID, ok, err := d.orderLineIdx.Get(tx, orderLineKey(w, dist, orderID, ol))
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if err := d.orderLine.Update(tx, olRID, func(rec []byte) error {
				total += orderLineAmount(rec)
				orderLineSetDeliveryDate(rec, orderID)
				return nil
			}); err != nil {
				return err
			}
		}

		custRID, ok, err := d.customerIdx.Get(tx, customerKey(w, dist, cust))
		if err != nil {
			return err
		}
		if !ok {
			return errNotFound("customer", customerKey(w, dist, cust))
		}
		if err := d.customer.Update(tx, custRID, func(rec []byte) error {
			customerAddBalance(rec, int64(total))
			customerAddDelivery(rec)
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// StockLevel executes the TPC-C Stock-Level transaction (read-only): count
// the items of the district's last 20 orders whose stock is below a random
// threshold.
func (d *Database) StockLevel(tx *engine.Tx, rng *rand.Rand, w int) error {
	cfg := d.cfg
	dist := randInt(rng, 1, cfg.DistrictsPerWarehouse)
	threshold := randInt(rng, 10, 20)

	var nextOrder int
	if err := d.district.Get(tx, d.districtRID[districtKey(w, dist)], func(rec []byte) error {
		nextOrder = districtNextOrder(rec)
		return nil
	}); err != nil {
		return err
	}
	first := nextOrder - 20
	if first < 1 {
		first = 1
	}
	seen := make(map[int]bool)
	low := 0
	for o := first; o < nextOrder; o++ {
		ordRID, ok, err := d.orderIdx.Get(tx, orderKey(w, dist, o))
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		lines := 0
		if err := d.order.Get(tx, ordRID, func(rec []byte) error {
			lines = orderLineCount(rec)
			return nil
		}); err != nil {
			return err
		}
		for ol := 1; ol <= lines; ol++ {
			olRID, ok, err := d.orderLineIdx.Get(tx, orderLineKey(w, dist, o, ol))
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			var item int
			if err := d.orderLine.Get(tx, olRID, func(rec []byte) error {
				item = orderLineItem(rec)
				return nil
			}); err != nil {
				return err
			}
			if seen[item] {
				continue
			}
			seen[item] = true
			stockRID, ok, err := d.stockIdx.Get(tx, stockKey(w, item))
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if err := d.stock.Get(tx, stockRID, func(rec []byte) error {
				if stockQuantity(rec) < threshold {
					low++
				}
				return nil
			}); err != nil {
				return err
			}
		}
	}
	_ = low
	return nil
}
