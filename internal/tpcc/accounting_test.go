package tpcc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/reprolab/face/internal/engine"
)

// TestClassifySlotErr pins the outcome classification runSlot's
// accounting branches on.  The load-bearing rows are the wrapped forms:
// the scheduler and engine annotate ErrDeadlock with %w on several
// paths, so matching by identity instead of errors.Is would silently
// turn retried deadlock victims into fatal errors — and a rollback whose
// abort lost a deadlock (errors.Join of both sentinels) must count as an
// aborted attempt, never as a clean rollback.
func TestClassifySlotErr(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want slotOutcome
	}{
		{"nil commits", nil, slotCommitted},
		{"bare deadlock", engine.ErrDeadlock, slotDeadlock},
		{"wrapped deadlock still retries", &wrapErr{msg: "engine: lock 12: victim", err: engine.ErrDeadlock}, slotDeadlock},
		{"deadlock joined onto rollback is an abort", errors.Join(ErrRollback, engine.ErrDeadlock), slotDeadlock},
		{"bare rollback is clean", ErrRollback, slotRollback},
		{"wrapped rollback means the abort failed", &wrapErr{msg: "abort failed", err: ErrRollback}, slotBrokenRollback},
		{"anything else is fatal", errors.New("unexpected"), slotFatal},
	}
	for _, tc := range cases {
		if got := classifySlotErr(tc.err); got != tc.want {
			t.Errorf("%s: classifySlotErr(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

// wrapErr is a minimal %w-style wrapper.
type wrapErr struct {
	msg string
	err error
}

func (e *wrapErr) Error() string { return e.msg + ": " + e.err.Error() }

func (e *wrapErr) Unwrap() error { return e.err }

// TestRunTerminalsForcedDeadlockAccounting is the deadlock-retry
// accounting regression test: every schedule slot must land in the
// counters exactly once — Committed[kind] or RolledBack — no matter how
// many times it was retried as a deadlock victim, and the database must
// reflect exactly the committed work.  A double-counted retry inflates
// tpmC precisely when terminal counts (and so deadlock rates) are high.
//
// Deadlocks are forced, not hoped for: while the terminals run, a
// saboteur transaction repeatedly locks a stock page and then a district
// page — the opposite of New-Order's district-early, stock-late order.  A
// New-Order holding its district and reaching for the saboteur's stock
// page closes an AB/BA cycle and is chosen as the victim, so the driver's
// retry path runs continuously.
func TestRunTerminalsForcedDeadlockAccounting(t *testing.T) {
	const (
		terminals = 8
		total     = 400
	)
	eng := newLockEngine(t, terminals+1) // +1 admission slot for the saboteur
	db, err := Load(eng, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	dr := NewDriver(eng, db, 42)

	stop := make(chan struct{})
	var saboteurWG sync.WaitGroup
	saboteurWG.Add(1)
	go func() {
		defer saboteurWG.Done()
		ctx := context.Background()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cfg := db.Config()
			dist := i%cfg.DistrictsPerWarehouse + 1
			item := i%cfg.Items + 1
			err := eng.Update(ctx, func(tx *engine.Tx) error {
				// Stock pages first, district second: the reverse of
				// New-Order.  The mutations are no-ops (nothing is
				// logged), but Modify still takes the exclusive page
				// locks and holds them to commit.  The sleep parks the
				// saboteur mid-transaction so terminal transactions get
				// the CPU and queue up against the held stock pages
				// (without it, transactions on a single-core runner barely
				// overlap and cycles never form).
				for j := 0; j < 8; j++ {
					it := (item + j*13) % db.Config().Items
					rid, ok, err := db.stockIdx.Get(tx, stockKey(1, it+1))
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
					if err := db.stock.Update(tx, rid, func([]byte) error { return nil }); err != nil {
						return err
					}
				}
				time.Sleep(200 * time.Microsecond)
				return db.district.Update(tx, db.districtRID[districtKey(1, dist)], func([]byte) error {
					return nil
				})
			})
			if err != nil && !errors.Is(err, engine.ErrDeadlock) {
				// The engine may already be closing when the run ends.
				if errors.Is(err, engine.ErrClosed) {
					return
				}
				t.Errorf("saboteur: %v", err)
				return
			}
		}
	}()

	if err := dr.RunTerminals(context.Background(), terminals, total); err != nil {
		t.Fatal(err)
	}
	close(stop)
	saboteurWG.Wait()

	c := dr.Counts()
	// Exactly one outcome per schedule slot.
	if got := c.Total() + c.RolledBack; got != total {
		t.Fatalf("%d outcomes recorded for %d slots (counts %+v) — deadlock retries double-counted",
			got, total, c)
	}
	if c.DeadlockRetries == 0 {
		t.Fatal("saboteur forced no driver-side deadlock retries; the retry path went unexercised")
	}
	snap := eng.Snapshot()
	if snap.Locks.Deadlocks == 0 {
		t.Fatal("lock manager reported no deadlocks")
	}
	// Every driver retry is a rolled-back attempt the engine aborted.
	if snap.Aborted < c.DeadlockRetries {
		t.Fatalf("%d deadlock retries but only %d engine aborts", c.DeadlockRetries, snap.Aborted)
	}

	// The database state must equal the committed work exactly: each
	// committed New-Order advanced one district order id; retried and
	// rolled-back attempts must have left no trace.
	cfg := db.Config()
	var advanced int64
	err = eng.View(context.Background(), func(tx *engine.Tx) error {
		for w := 1; w <= cfg.Warehouses; w++ {
			for dist := 1; dist <= cfg.DistrictsPerWarehouse; dist++ {
				rid := db.districtRID[districtKey(w, dist)]
				if err := db.district.Get(tx, rid, func(rec []byte) error {
					advanced += int64(districtNextOrder(rec) - (cfg.InitialOrdersPerDistrict + 1))
					return nil
				}); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if advanced != c.NewOrders() {
		t.Fatalf("district order ids advanced by %d, want %d committed New-Orders (%d deadlock retries left traces)",
			advanced, c.NewOrders(), c.DeadlockRetries)
	}
	t.Logf("%d committed, %d rolled back, %d driver deadlock retries, %d lock-manager deadlocks",
		c.Total(), c.RolledBack, c.DeadlockRetries, snap.Locks.Deadlocks)
}
