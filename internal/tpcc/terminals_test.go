package tpcc

import (
	"context"
	"testing"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/engine"
)

// newLockEngine opens an engine under the page-lock scheduler for
// multi-terminal tests.
func newLockEngine(t *testing.T, maxWriters int) *engine.DB {
	t.Helper()
	cfg := engine.Config{
		DataDev:     device.NewArray("data", device.ProfileCheetah15K, 4, 32768),
		LogDev:      device.New("log", device.ProfileCheetah15K, 1<<16),
		BufferPages: 128,
		Policy:      engine.PolicyNone,
		PageLocks:   true,
		MaxWriters:  maxWriters,
	}
	db, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestRunTerminalsConcurrent drives the full TPC-C mix from four
// terminals under the page-lock scheduler and checks the workload
// completed exactly, deadlock victims included.
func TestRunTerminalsConcurrent(t *testing.T) {
	eng := newLockEngine(t, 4)
	db, err := Load(eng, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	dr := NewDriver(eng, db, 42)
	const total = 200
	if err := dr.RunTerminals(context.Background(), 4, total); err != nil {
		t.Fatal(err)
	}
	c := dr.Counts()
	if got := c.Total() + c.RolledBack; got != total {
		t.Fatalf("completed %d transactions, want %d (counts %+v)", got, total, c)
	}
	if c.NewOrders() == 0 || c.Committed[KindPayment] == 0 {
		t.Fatalf("mix missing kinds: %+v", c)
	}
	snap := eng.Snapshot()
	if snap.Committed == 0 {
		t.Fatal("engine recorded no commits")
	}
	if c.DeadlockRetries > 0 && snap.Locks.Deadlocks == 0 {
		t.Fatalf("driver retried %d deadlocks the engine never reported", c.DeadlockRetries)
	}
	t.Logf("locks: %+v", snap.Locks)
	t.Logf("group commit: %+v (fan-in %.2f)", snap.GroupCommit, snap.GroupCommit.FanIn())
	t.Logf("deadlock retries: %d", c.DeadlockRetries)

	// The database must be consistent after concurrent execution: every
	// committed New-Order advanced exactly one district's next-order id,
	// and rolled-back ones were undone, so the total advance equals the
	// committed New-Order count.
	cfg := db.Config()
	var advanced int64
	err = eng.View(context.Background(), func(tx *engine.Tx) error {
		for w := 1; w <= cfg.Warehouses; w++ {
			for dist := 1; dist <= cfg.DistrictsPerWarehouse; dist++ {
				rid := db.districtRID[districtKey(w, dist)]
				if err := db.district.Get(tx, rid, func(rec []byte) error {
					advanced += int64(districtNextOrder(rec) - (cfg.InitialOrdersPerDistrict + 1))
					return nil
				}); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if advanced != c.NewOrders() {
		t.Fatalf("district order ids advanced by %d, want %d committed New-Orders (lost or phantom updates)",
			advanced, c.NewOrders())
	}
}

// TestRunTerminalsDeterministicWorkload: the transaction schedule depends
// only on the seed, not the terminal count — the committed mix of a
// 1-terminal and a 4-terminal run over the same seed must match.
func TestRunTerminalsDeterministicWorkload(t *testing.T) {
	run := func(terminals int) Counts {
		eng := newLockEngine(t, terminals)
		db, err := Load(eng, tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		dr := NewDriver(eng, db, 99)
		if err := dr.RunTerminals(context.Background(), terminals, 120); err != nil {
			t.Fatal(err)
		}
		return dr.Counts()
	}
	one := run(1)
	four := run(4)
	if one.Committed != four.Committed || one.RolledBack != four.RolledBack {
		t.Fatalf("workload depends on terminal count:\n 1 terminal: %+v\n 4 terminals: %+v", one, four)
	}
}

// TestRunTerminalsSingleWriterFallback: RunTerminals also works against
// the default single-writer scheduler (transactions simply serialize).
func TestRunTerminalsSingleWriterFallback(t *testing.T) {
	eng := newEngine(t, engine.PolicyNone)
	db, err := Load(eng, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	dr := NewDriver(eng, db, 7)
	if err := dr.RunTerminals(context.Background(), 3, 60); err != nil {
		t.Fatal(err)
	}
	c := dr.Counts()
	if got := c.Total() + c.RolledBack; got != 60 {
		t.Fatalf("completed %d transactions, want 60", got)
	}
	if c.DeadlockRetries != 0 {
		t.Fatalf("single-writer scheduler produced deadlocks: %+v", c)
	}
}
