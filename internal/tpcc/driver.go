package tpcc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/obs"
)

// Kind identifies a TPC-C transaction type.
type Kind int

// Transaction kinds.
const (
	KindNewOrder Kind = iota
	KindPayment
	KindOrderStatus
	KindDelivery
	KindStockLevel
	numKinds
)

// String names the transaction type.
func (k Kind) String() string {
	switch k {
	case KindNewOrder:
		return "NewOrder"
	case KindPayment:
		return "Payment"
	case KindOrderStatus:
		return "OrderStatus"
	case KindDelivery:
		return "Delivery"
	case KindStockLevel:
		return "StockLevel"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Mix is the standard TPC-C transaction mix in percent.
var Mix = map[Kind]int{
	KindNewOrder:    45,
	KindPayment:     43,
	KindOrderStatus: 4,
	KindDelivery:    4,
	KindStockLevel:  4,
}

// Counts tallies executed transactions by kind.
type Counts struct {
	Committed  [numKinds]int64
	RolledBack int64
	// DeadlockRetries counts transactions re-executed after being chosen
	// as a deadlock victim by the engine's page lock manager
	// (multi-terminal runs only).
	DeadlockRetries int64
}

// Total returns the number of committed transactions of all kinds.
func (c Counts) Total() int64 {
	var t int64
	for _, n := range c.Committed {
		t += n
	}
	return t
}

// NewOrders returns the number of committed New-Order transactions, the
// quantity tpmC is based on.
func (c Counts) NewOrders() int64 { return c.Committed[KindNewOrder] }

// Driver executes the TPC-C transaction mix against an engine.  A driver is
// bound to one engine instance; after a simulated crash, create a new
// driver over the reopened engine and the same Database.
//
// Two execution paths are provided: the classic single-stream path
// (RunOne/RunMany, unscheduled transactions, one at a time) and the
// multi-terminal path (RunTerminals), which issues the same mix from N
// goroutines through the engine's View/Update scheduler and retries
// transactions chosen as deadlock victims.
type Driver struct {
	eng  *engine.DB
	db   *Database
	rng  *rand.Rand
	seed int64

	// sched is the multi-terminal slot schedule stream.  It persists
	// across RunTerminals calls so a warm-up phase and a measurement
	// phase execute disjoint stretches of one stream (as RunMany does
	// with rng), while staying independent of the terminal count.
	sched *rand.Rand

	mu     sync.Mutex
	counts Counts

	// lat records the wall-clock latency of each committed transaction
	// by kind.  Multi-terminal slots are timed from slot start to commit,
	// so deadlock-retry and backoff time is included — the latency a
	// terminal actually experienced.
	lat [numKinds]*obs.Histogram
}

// NewDriver creates a driver with its own deterministic random stream.
func NewDriver(eng *engine.DB, db *Database, seed int64) *Driver {
	dr := &Driver{eng: eng, db: db, rng: rand.New(rand.NewSource(seed)), seed: seed}
	for k := range dr.lat {
		dr.lat[k] = obs.NewHistogram()
	}
	return dr
}

// KindLatencies returns the committed-transaction wall-clock latency
// histogram per kind, keyed by Kind.String().  Snapshots taken before and
// after a measurement window subtract (HistSnapshot.Sub) to isolate it.
func (dr *Driver) KindLatencies() map[string]obs.HistSnapshot {
	m := make(map[string]obs.HistSnapshot, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		m[k.String()] = dr.lat[k].Snapshot()
	}
	return m
}

// Counts returns the transactions executed so far.
func (dr *Driver) Counts() Counts {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	return dr.counts
}

// ResetCounts clears the transaction counters (after warm-up).
func (dr *Driver) ResetCounts() {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	dr.counts = Counts{}
}

// pickFrom chooses a transaction kind according to the standard mix using
// the given random stream.
func pickFrom(rng *rand.Rand) Kind {
	n := rng.Intn(100)
	acc := 0
	for _, k := range []Kind{KindNewOrder, KindPayment, KindOrderStatus, KindDelivery, KindStockLevel} {
		acc += Mix[k]
		if n < acc {
			return k
		}
	}
	return KindNewOrder
}

// pick chooses the next transaction kind according to the standard mix.
func (dr *Driver) pick() Kind { return pickFrom(dr.rng) }

// dispatch executes one transaction body of the given kind against
// warehouse w inside tx, drawing parameters from rng.
func (dr *Driver) dispatch(tx *engine.Tx, rng *rand.Rand, kind Kind, w int) error {
	switch kind {
	case KindNewOrder:
		return dr.db.NewOrder(tx, rng, w)
	case KindPayment:
		return dr.db.Payment(tx, rng, w)
	case KindOrderStatus:
		return dr.db.OrderStatus(tx, rng, w)
	case KindDelivery:
		return dr.db.Delivery(tx, rng, w)
	case KindStockLevel:
		return dr.db.StockLevel(tx, rng, w)
	default:
		return fmt.Errorf("tpcc: unknown transaction kind %d", kind)
	}
}

// RunOne executes one transaction of the standard mix and returns its kind.
// Expected New-Order rollbacks are aborted and counted, not reported as
// errors.  The engine clock is ticked afterwards so periodic checkpoints
// fire on schedule.
func (dr *Driver) RunOne() (Kind, error) {
	kind := dr.pick()
	if err := dr.Run(kind); err != nil {
		return kind, err
	}
	return kind, nil
}

// Run executes one transaction of the given kind.
func (dr *Driver) Run(kind Kind) error {
	start := time.Now()
	w := randInt(dr.rng, 1, dr.db.cfg.Warehouses)
	tx, err := dr.eng.Begin()
	if err != nil {
		return err
	}
	err = dr.dispatch(tx, dr.rng, kind, w)
	if errors.Is(err, ErrRollback) {
		dr.mu.Lock()
		dr.counts.RolledBack++
		dr.mu.Unlock()
		if err := tx.Abort(); err != nil {
			return err
		}
		return dr.eng.Tick()
	}
	if err != nil {
		tx.Abort()
		return fmt.Errorf("tpcc: %s: %w", kind, err)
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	dr.lat[kind].Observe(time.Since(start))
	dr.mu.Lock()
	dr.counts.Committed[kind]++
	dr.mu.Unlock()
	return dr.eng.Tick()
}

// RunMany executes n transactions of the standard mix.
func (dr *Driver) RunMany(n int) error {
	for i := 0; i < n; i++ {
		if _, err := dr.RunOne(); err != nil {
			return err
		}
	}
	return nil
}

// maxDeadlockRetries bounds how often a multi-terminal transaction is
// re-executed after losing a deadlock before the run gives up.
const maxDeadlockRetries = 1000

// RunTerminals executes total transactions of the standard mix from
// `terminals` concurrent goroutines, each transaction going through the
// engine's View (read-only kinds) or Update scheduler.  Transactions
// chosen as deadlock victims by the page lock manager are retried with a
// short backoff; expected New-Order rollbacks are counted, not errors.
//
// The workload is deterministic in the driver seed and independent of the
// terminal count: the kind and parameter stream of the i-th transaction
// are fixed up front, and terminals claim slots from that shared schedule.
// Only the interleaving changes with the terminal count, which is what
// makes single-writer and multi-writer runs comparable.
func (dr *Driver) RunTerminals(ctx context.Context, terminals, total int) error {
	if terminals < 1 {
		terminals = 1
	}
	if total <= 0 {
		return nil
	}
	if dr.sched == nil {
		dr.sched = rand.New(rand.NewSource(dr.seed + 0x7e21))
	}
	kinds := make([]Kind, total)
	seeds := make([]int64, total)
	for i := range kinds {
		kinds[i] = pickFrom(dr.sched)
		seeds[i] = dr.sched.Int63()
	}

	// Tell the WAL's group-commit leader how many committers to expect,
	// so the first commit force of a batch opens its collection window;
	// restore whatever hint the engine was opened with afterwards.
	prevHint := dr.eng.Log().CommittersHint()
	dr.eng.Log().SetCommitters(terminals)
	defer dr.eng.Log().SetCommitters(prevHint)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		errs = make(chan error, terminals)
	)
	for t := 0; t < terminals; t++ {
		wg.Add(1)
		go func(terminal int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total || ctx.Err() != nil {
					return
				}
				if err := dr.runSlot(ctx, kinds[i], seeds[i]); err != nil {
					errs <- fmt.Errorf("tpcc: terminal %d: %w", terminal, err)
					cancel()
					return
				}
				// One terminal advances the engine clock, so periodic
				// checkpoints keep firing without the other terminals
				// serializing behind the (exclusive) tick.
				if terminal == 0 {
					if err := dr.eng.Tick(); err != nil {
						errs <- fmt.Errorf("tpcc: terminal %d: %w", terminal, err)
						cancel()
						return
					}
				}
			}
		}(t)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// runSlot executes one scheduled transaction, retrying deadlock victims.
// The parameter stream is rebuilt from the slot seed on every attempt, so
// a retry re-executes the identical transaction.
//
// Exactly one outcome is recorded per schedule slot — Committed[kind] for
// the attempt that commits, RolledBack for the attempt that reaches its
// expected New-Order rollback — and never for an attempt aborted as a
// deadlock victim.  Those only tick DeadlockRetries, so tpmC counts each
// scheduled transaction at most once no matter how often it was retried.
func (dr *Driver) runSlot(ctx context.Context, kind Kind, seed int64) error {
	readonly := kind == KindOrderStatus || kind == KindStockLevel
	start := time.Now()
	for attempt := 0; ; attempt++ {
		rng := rand.New(rand.NewSource(seed))
		w := randInt(rng, 1, dr.db.cfg.Warehouses)
		body := func(tx *engine.Tx) error { return dr.dispatch(tx, rng, kind, w) }
		var err error
		if readonly {
			err = dr.eng.View(ctx, body)
		} else {
			err = dr.eng.Update(ctx, body)
		}
		switch classifySlotErr(err) {
		case slotCommitted:
			dr.lat[kind].Observe(time.Since(start))
			dr.mu.Lock()
			dr.counts.Committed[kind]++
			dr.mu.Unlock()
			return nil
		case slotDeadlock:
			if attempt >= maxDeadlockRetries {
				return fmt.Errorf("tpcc: %s deadlocked %d times: %w", kind, attempt, err)
			}
			dr.mu.Lock()
			dr.counts.DeadlockRetries++
			dr.mu.Unlock()
			// Back off so a transaction whose lock order opposes the
			// prevailing traffic is not re-victimized forever.
			backoff := time.Duration(attempt+1) * 20 * time.Microsecond
			if backoff > time.Millisecond {
				backoff = time.Millisecond
			}
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
		case slotRollback:
			dr.mu.Lock()
			dr.counts.RolledBack++
			dr.mu.Unlock()
			return nil
		case slotBrokenRollback:
			return fmt.Errorf("tpcc: %s rollback did not complete cleanly: %w", kind, err)
		default:
			return fmt.Errorf("tpcc: %s: %w", kind, err)
		}
	}
}

// slotOutcome is how one transaction attempt affects the accounting.
type slotOutcome int

const (
	slotCommitted      slotOutcome = iota // record Committed[kind]
	slotDeadlock                          // aborted as a victim: retry, tick DeadlockRetries
	slotRollback                          // clean expected New-Order rollback: record RolledBack
	slotBrokenRollback                    // ErrRollback with a failed abort joined on: fatal
	slotFatal                             // anything else ends the run
)

// classifySlotErr maps the error returned by one View/Update attempt to
// its accounting outcome.  Sentinels are matched with errors.Is, so a
// wrapped or joined ErrDeadlock still triggers retry accounting.
func classifySlotErr(err error) slotOutcome {
	switch {
	case err == nil:
		return slotCommitted
	case errors.Is(err, engine.ErrDeadlock):
		// Checked before ErrRollback: an error carrying both (a
		// rollback whose abort lost a deadlock) is an aborted attempt,
		// not a completed one, and must be retried — counting it as a
		// rollback would both miscount and silently drop the retry.
		return slotDeadlock
	case errors.Is(err, ErrRollback):
		// Expected New-Order rollback, already rolled back by Update.
		// The scheduler returns the closure's ErrRollback verbatim only
		// when the rollback itself succeeded; anything joined onto it
		// means the abort failed, and counting that as a clean rollback
		// would swallow a broken engine state.
		//lint:allow facevet/sentinelerr identity on purpose: a wrapped ErrRollback means the abort itself failed (see comment above)
		if err != ErrRollback {
			return slotBrokenRollback
		}
		return slotRollback
	default:
		return slotFatal
	}
}
