package tpcc

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/reprolab/face/internal/engine"
)

// Kind identifies a TPC-C transaction type.
type Kind int

// Transaction kinds.
const (
	KindNewOrder Kind = iota
	KindPayment
	KindOrderStatus
	KindDelivery
	KindStockLevel
	numKinds
)

// String names the transaction type.
func (k Kind) String() string {
	switch k {
	case KindNewOrder:
		return "NewOrder"
	case KindPayment:
		return "Payment"
	case KindOrderStatus:
		return "OrderStatus"
	case KindDelivery:
		return "Delivery"
	case KindStockLevel:
		return "StockLevel"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Mix is the standard TPC-C transaction mix in percent.
var Mix = map[Kind]int{
	KindNewOrder:    45,
	KindPayment:     43,
	KindOrderStatus: 4,
	KindDelivery:    4,
	KindStockLevel:  4,
}

// Counts tallies executed transactions by kind.
type Counts struct {
	Committed  [numKinds]int64
	RolledBack int64
}

// Total returns the number of committed transactions of all kinds.
func (c Counts) Total() int64 {
	var t int64
	for _, n := range c.Committed {
		t += n
	}
	return t
}

// NewOrders returns the number of committed New-Order transactions, the
// quantity tpmC is based on.
func (c Counts) NewOrders() int64 { return c.Committed[KindNewOrder] }

// Driver executes the TPC-C transaction mix against an engine.  A driver is
// bound to one engine instance; after a simulated crash, create a new
// driver over the reopened engine and the same Database.
type Driver struct {
	eng *engine.DB
	db  *Database
	rng *rand.Rand

	counts Counts
}

// NewDriver creates a driver with its own deterministic random stream.
func NewDriver(eng *engine.DB, db *Database, seed int64) *Driver {
	return &Driver{eng: eng, db: db, rng: rand.New(rand.NewSource(seed))}
}

// Counts returns the transactions executed so far.
func (dr *Driver) Counts() Counts { return dr.counts }

// ResetCounts clears the transaction counters (after warm-up).
func (dr *Driver) ResetCounts() { dr.counts = Counts{} }

// pick chooses the next transaction kind according to the standard mix.
func (dr *Driver) pick() Kind {
	n := dr.rng.Intn(100)
	acc := 0
	for _, k := range []Kind{KindNewOrder, KindPayment, KindOrderStatus, KindDelivery, KindStockLevel} {
		acc += Mix[k]
		if n < acc {
			return k
		}
	}
	return KindNewOrder
}

// RunOne executes one transaction of the standard mix and returns its kind.
// Expected New-Order rollbacks are aborted and counted, not reported as
// errors.  The engine clock is ticked afterwards so periodic checkpoints
// fire on schedule.
func (dr *Driver) RunOne() (Kind, error) {
	kind := dr.pick()
	if err := dr.Run(kind); err != nil {
		return kind, err
	}
	return kind, nil
}

// Run executes one transaction of the given kind.
func (dr *Driver) Run(kind Kind) error {
	w := randInt(dr.rng, 1, dr.db.cfg.Warehouses)
	tx, err := dr.eng.Begin()
	if err != nil {
		return err
	}
	switch kind {
	case KindNewOrder:
		err = dr.db.NewOrder(tx, dr.rng, w)
	case KindPayment:
		err = dr.db.Payment(tx, dr.rng, w)
	case KindOrderStatus:
		err = dr.db.OrderStatus(tx, dr.rng, w)
	case KindDelivery:
		err = dr.db.Delivery(tx, dr.rng, w)
	case KindStockLevel:
		err = dr.db.StockLevel(tx, dr.rng, w)
	default:
		err = fmt.Errorf("tpcc: unknown transaction kind %d", kind)
	}
	if errors.Is(err, ErrRollback) {
		dr.counts.RolledBack++
		if err := tx.Abort(); err != nil {
			return err
		}
		return dr.eng.Tick()
	}
	if err != nil {
		tx.Abort()
		return fmt.Errorf("tpcc: %s: %w", kind, err)
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	dr.counts.Committed[kind]++
	return dr.eng.Tick()
}

// RunMany executes n transactions of the standard mix.
func (dr *Driver) RunMany(n int) error {
	for i := 0; i < n; i++ {
		if _, err := dr.RunOne(); err != nil {
			return err
		}
	}
	return nil
}
