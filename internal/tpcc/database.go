package tpcc

import (
	"fmt"
	"math/rand"

	"github.com/reprolab/face/internal/btree"
	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/heap"
	"github.com/reprolab/face/internal/page"
)

// Database holds the TPC-C tables and indexes.  It does not hold a
// reference to the engine: every operation takes a transaction, so the same
// Database value can be reused after the engine is crashed and reopened (the
// catalog is the workload driver's in-memory state, as described in
// DESIGN.md).
type Database struct {
	cfg Config

	warehouse *heap.Table
	district  *heap.Table
	customer  *heap.Table
	history   *heap.Table
	order     *heap.Table
	newOrder  *heap.Table
	orderLine *heap.Table
	item      *heap.Table
	stock     *heap.Table

	// Direct RIDs for the tiny warehouse and district tables.
	warehouseRID map[int]page.RID
	districtRID  map[uint64]page.RID

	customerIdx  *btree.Tree
	itemIdx      *btree.Tree
	stockIdx     *btree.Tree
	orderIdx     *btree.Tree
	newOrderIdx  *btree.Tree
	orderLineIdx *btree.Tree
	custOrderIdx *btree.Tree

	// nextOrderHint mirrors the districts' next order ids so the loader
	// and driver can allocate order numbers without extra reads.
	nextOrderHint map[uint64]int
}

// Config returns the configuration the database was loaded with.
func (d *Database) Config() Config { return d.cfg }

// Load populates a freshly opened engine with the TPC-C schema and initial
// data.  It commits in chunks to bound transaction size, and finishes with
// a checkpoint so the loaded database is fully persistent.
func Load(eng *engine.DB, cfg Config) (*Database, error) {
	cfg.normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	db := &Database{
		cfg:           cfg,
		warehouseRID:  make(map[int]page.RID),
		districtRID:   make(map[uint64]page.RID),
		nextOrderHint: make(map[uint64]int),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	if err := db.createSchema(eng); err != nil {
		return nil, err
	}
	if err := db.loadItems(eng); err != nil {
		return nil, err
	}
	for w := 1; w <= cfg.Warehouses; w++ {
		if err := db.loadWarehouse(eng, rng, w); err != nil {
			return nil, err
		}
	}
	if err := eng.Checkpoint(); err != nil {
		return nil, err
	}
	return db, nil
}

func (d *Database) createSchema(eng *engine.DB) error {
	tx, err := eng.Begin()
	if err != nil {
		return err
	}
	create := func(name string) *heap.Table {
		if err != nil {
			return nil
		}
		var t *heap.Table
		t, err = heap.Create(tx, name)
		return t
	}
	index := func(name string) *btree.Tree {
		if err != nil {
			return nil
		}
		var t *btree.Tree
		t, err = btree.Create(tx, name)
		return t
	}
	d.warehouse = create("warehouse")
	d.district = create("district")
	d.customer = create("customer")
	d.history = create("history")
	d.order = create("orders")
	d.newOrder = create("new_order")
	d.orderLine = create("order_line")
	d.item = create("item")
	d.stock = create("stock")
	d.customerIdx = index("customer_pk")
	d.itemIdx = index("item_pk")
	d.stockIdx = index("stock_pk")
	d.orderIdx = index("orders_pk")
	d.newOrderIdx = index("new_order_pk")
	d.orderLineIdx = index("order_line_pk")
	d.custOrderIdx = index("orders_by_customer")
	if err != nil {
		return fmt.Errorf("tpcc: creating schema: %w", err)
	}
	return tx.Commit()
}

func (d *Database) loadItems(eng *engine.DB) error {
	tx, err := eng.Begin()
	if err != nil {
		return err
	}
	for i := 1; i <= d.cfg.Items; i++ {
		rid, err := d.item.Insert(tx, newItemRec(i))
		if err != nil {
			return fmt.Errorf("tpcc: loading item %d: %w", i, err)
		}
		if err := d.itemIdx.Insert(tx, itemKey(i), rid); err != nil {
			return err
		}
		if i%2000 == 0 {
			if err := tx.Commit(); err != nil {
				return err
			}
			if tx, err = eng.Begin(); err != nil {
				return err
			}
		}
	}
	return tx.Commit()
}

func (d *Database) loadWarehouse(eng *engine.DB, rng *rand.Rand, w int) error {
	tx, err := eng.Begin()
	if err != nil {
		return err
	}
	rid, err := d.warehouse.Insert(tx, newWarehouseRec(w))
	if err != nil {
		return err
	}
	d.warehouseRID[w] = rid

	// Stock: one row per item.
	for i := 1; i <= d.cfg.Items; i++ {
		rid, err := d.stock.Insert(tx, newStockRec(i))
		if err != nil {
			return fmt.Errorf("tpcc: loading stock (%d,%d): %w", w, i, err)
		}
		if err := d.stockIdx.Insert(tx, stockKey(w, i), rid); err != nil {
			return err
		}
		if i%2000 == 0 {
			if err := tx.Commit(); err != nil {
				return err
			}
			if tx, err = eng.Begin(); err != nil {
				return err
			}
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}

	for dI := 1; dI <= d.cfg.DistrictsPerWarehouse; dI++ {
		if err := d.loadDistrict(eng, rng, w, dI); err != nil {
			return err
		}
	}
	return nil
}

func (d *Database) loadDistrict(eng *engine.DB, rng *rand.Rand, w, dist int) error {
	cfg := d.cfg
	tx, err := eng.Begin()
	if err != nil {
		return err
	}
	firstFree := cfg.InitialOrdersPerDistrict + 1
	rid, err := d.district.Insert(tx, newDistrictRec(dist, firstFree))
	if err != nil {
		return err
	}
	dk := districtKey(w, dist)
	d.districtRID[dk] = rid
	d.nextOrderHint[dk] = firstFree

	// Customers.
	for c := 1; c <= cfg.CustomersPerDistrict; c++ {
		rid, err := d.customer.Insert(tx, newCustomerRec(c))
		if err != nil {
			return fmt.Errorf("tpcc: loading customer (%d,%d,%d): %w", w, dist, c, err)
		}
		if err := d.customerIdx.Insert(tx, customerKey(w, dist, c), rid); err != nil {
			return err
		}
		// History row for the initial payment.
		if _, err := d.history.Insert(tx, newHistoryRec(w, dist, c, 1000)); err != nil {
			return err
		}
		if c%500 == 0 {
			if err := tx.Commit(); err != nil {
				return err
			}
			if tx, err = eng.Begin(); err != nil {
				return err
			}
		}
	}

	// Initial orders: one per customer (permuted), the most recent third
	// still undelivered (rows in NEW-ORDER), as in the specification.
	perm := rng.Perm(cfg.CustomersPerDistrict)
	for o := 1; o <= cfg.InitialOrdersPerDistrict; o++ {
		c := perm[(o-1)%len(perm)] + 1
		lines := randInt(rng, 5, 15)
		orid, err := d.order.Insert(tx, newOrderRec(c, lines, o))
		if err != nil {
			return err
		}
		if err := d.orderIdx.Insert(tx, orderKey(w, dist, o), orid); err != nil {
			return err
		}
		if err := d.custOrderIdx.Insert(tx, customerOrderKey(w, dist, c, o), orid); err != nil {
			return err
		}
		for ol := 1; ol <= lines; ol++ {
			item := randItem(rng, cfg.Items)
			olrid, err := d.orderLine.Insert(tx, newOrderLineRec(item, randInt(rng, 1, 10), uint64(randInt(rng, 10, 9999))))
			if err != nil {
				return err
			}
			if err := d.orderLineIdx.Insert(tx, orderLineKey(w, dist, o, ol), olrid); err != nil {
				return err
			}
		}
		if o > cfg.InitialOrdersPerDistrict*2/3 {
			norid, err := d.newOrder.Insert(tx, newNewOrderRec(o))
			if err != nil {
				return err
			}
			if err := d.newOrderIdx.Insert(tx, orderKey(w, dist, o), norid); err != nil {
				return err
			}
		}
		if o%200 == 0 {
			if err := tx.Commit(); err != nil {
				return err
			}
			if tx, err = eng.Begin(); err != nil {
				return err
			}
		}
	}
	return tx.Commit()
}

// Tables returns the names and page counts of all tables (diagnostics).
func (d *Database) Tables() map[string]int {
	return map[string]int{
		"warehouse":  d.warehouse.NumPages(),
		"district":   d.district.NumPages(),
		"customer":   d.customer.NumPages(),
		"history":    d.history.NumPages(),
		"orders":     d.order.NumPages(),
		"new_order":  d.newOrder.NumPages(),
		"order_line": d.orderLine.NumPages(),
		"item":       d.item.NumPages(),
		"stock":      d.stock.NumPages(),
	}
}

// Clone returns an independent copy of the catalog (table page lists,
// index roots, direct RIDs).  The benchmark harness pairs a cloned catalog
// with a cloned device image so that every experiment configuration starts
// from the same freshly loaded database without reloading it.
func (d *Database) Clone() *Database {
	cp := &Database{
		cfg:           d.cfg,
		warehouse:     heap.Attach(d.warehouse.Name(), d.warehouse.Pages()),
		district:      heap.Attach(d.district.Name(), d.district.Pages()),
		customer:      heap.Attach(d.customer.Name(), d.customer.Pages()),
		history:       heap.Attach(d.history.Name(), d.history.Pages()),
		order:         heap.Attach(d.order.Name(), d.order.Pages()),
		newOrder:      heap.Attach(d.newOrder.Name(), d.newOrder.Pages()),
		orderLine:     heap.Attach(d.orderLine.Name(), d.orderLine.Pages()),
		item:          heap.Attach(d.item.Name(), d.item.Pages()),
		stock:         heap.Attach(d.stock.Name(), d.stock.Pages()),
		customerIdx:   btree.Attach(d.customerIdx.Name(), d.customerIdx.Root()),
		itemIdx:       btree.Attach(d.itemIdx.Name(), d.itemIdx.Root()),
		stockIdx:      btree.Attach(d.stockIdx.Name(), d.stockIdx.Root()),
		orderIdx:      btree.Attach(d.orderIdx.Name(), d.orderIdx.Root()),
		newOrderIdx:   btree.Attach(d.newOrderIdx.Name(), d.newOrderIdx.Root()),
		orderLineIdx:  btree.Attach(d.orderLineIdx.Name(), d.orderLineIdx.Root()),
		custOrderIdx:  btree.Attach(d.custOrderIdx.Name(), d.custOrderIdx.Root()),
		warehouseRID:  make(map[int]page.RID, len(d.warehouseRID)),
		districtRID:   make(map[uint64]page.RID, len(d.districtRID)),
		nextOrderHint: make(map[uint64]int, len(d.nextOrderHint)),
	}
	for k, v := range d.warehouseRID {
		cp.warehouseRID[k] = v
	}
	for k, v := range d.districtRID {
		cp.districtRID[k] = v
	}
	for k, v := range d.nextOrderHint {
		cp.nextOrderHint[k] = v
	}
	return cp
}
