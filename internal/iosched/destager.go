package iosched

import (
	"sync"

	"github.com/reprolab/face/internal/metrics"
	"github.com/reprolab/face/internal/page"
)

// DestageWriteFunc writes one dirty page back to the database on disk.  It
// is called from destager worker goroutines; the underlying device must be
// safe for concurrent use (the striped data array is).
type DestageWriteFunc func(id page.ID, data page.Buf) error

// destageReq is one dirty page evicted from the flash cache queue on its
// way to disk.
type destageReq struct {
	pos  uint64 // absolute mvFIFO queue position the page occupied
	id   page.ID
	lsn  page.LSN
	data page.Buf
	// skip marks a request superseded by a newer version of the same page
	// queued behind it; the worker releases it without writing.
	skip bool
}

// Destager drains cold dirty pages from the flash cache to disk with a
// pool of workers.  Until a page's disk write lands it remains visible
// through Lookup, so a cache miss can never fall through to a stale disk
// copy.  The destager also tracks the lowest queue position with an
// un-landed write: the flash cache must neither reuse such a position's
// frame slot nor persist a front pointer beyond it, which is what keeps
// the metadata directory crash-consistent under asynchronous destaging.
type Destager struct {
	write DestageWriteFunc

	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	landed   *sync.Cond

	queue []*destageReq // FIFO, ascending pos except superseded tombstones
	// pending maps queue positions to their request, for the watermark and
	// the slot-reuse barrier.
	pending map[uint64]*destageReq
	// newest maps page ids to the most recent pending request, for Lookup
	// and for superseding stale queued versions.
	newest map[page.ID]*destageReq
	// writing marks pages with an in-flight disk write.  A worker that
	// dequeues another version of the same page waits for the in-flight
	// write to land first, so parallel workers process versions of one
	// page strictly in queue order and the disk copy can never regress.
	writing map[page.ID]bool

	depth   int
	workers int
	stopped bool
	err     error
	wg      sync.WaitGroup

	destages      int64
	destageWrites int64
	maxDepth      int64
	reuseWaits    int64
	hits          int64
}

// NewDestager starts workers goroutines draining a queue of up to depth
// pages.
func NewDestager(depth, workers int, write DestageWriteFunc) *Destager {
	if depth < 1 {
		depth = 1
	}
	if workers < 1 {
		workers = 1
	}
	d := &Destager{
		write:   write,
		pending: make(map[uint64]*destageReq),
		newest:  make(map[page.ID]*destageReq),
		writing: make(map[page.ID]bool),
		depth:   depth,
		workers: workers,
	}
	d.notFull = sync.NewCond(&d.mu)
	d.notEmpty = sync.NewCond(&d.mu)
	d.landed = sync.NewCond(&d.mu)
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.run()
	}
	return d
}

// Enqueue hands a dirty page to the destager, blocking while the queue is
// full.  data must be a private copy.  A pending request for the same page
// with an older LSN is superseded in place: its disk write is skipped, so
// out-of-order completion by parallel workers can never regress the disk
// copy.
func (d *Destager) Enqueue(pos uint64, id page.ID, data page.Buf) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.queue) >= d.depth && !d.stopped {
		d.notFull.Wait()
	}
	if d.stopped {
		return d.failErr()
	}
	req := &destageReq{pos: pos, id: id, lsn: data.LSN(), data: data}
	if old, ok := d.newest[id]; ok && !old.skip && old.lsn <= req.lsn {
		old.skip = true
	}
	d.queue = append(d.queue, req)
	d.pending[pos] = req
	d.newest[id] = req
	d.destages++
	if n := int64(len(d.queue)); n > d.maxDepth {
		d.maxDepth = n
	}
	d.notEmpty.Signal()
	return nil
}

func (d *Destager) run() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && !d.stopped {
			d.notEmpty.Wait()
		}
		if len(d.queue) == 0 {
			d.mu.Unlock()
			return
		}
		req := d.queue[0]
		d.queue = d.queue[1:]
		// An older version of the same page may still be mid-write on
		// another worker; wait for it so versions land in queue order.
		// The in-flight worker clears the mark unconditionally, so this
		// cannot deadlock even across a stop.
		for d.writing[req.id] {
			d.landed.Wait()
		}
		d.writing[req.id] = true
		skip := req.skip
		d.mu.Unlock()

		var err error
		if !skip {
			err = d.write(req.id, req.data)
		}

		d.mu.Lock()
		delete(d.writing, req.id)
		if !skip && err == nil {
			d.destageWrites++
		}
		if err != nil && d.err == nil {
			d.err = err
			d.stopped = true
			d.notEmpty.Broadcast()
		}
		delete(d.pending, req.pos)
		if cur, ok := d.newest[req.id]; ok && cur == req {
			delete(d.newest, req.id)
		}
		d.notFull.Broadcast()
		d.landed.Broadcast()
		d.mu.Unlock()
	}
}

// Lookup serves a page from the in-flight destage buffer: the newest
// pending version, if any, is copied into buf.
func (d *Destager) Lookup(id page.ID, buf page.Buf) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	req, ok := d.newest[id]
	if !ok {
		return false
	}
	copy(buf, req.data)
	d.hits++
	return true
}

// Contains reports whether a pending version of the page exists.
func (d *Destager) Contains(id page.ID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.newest[id]
	return ok
}

// MinPending returns the lowest queue position with an un-landed destage.
func (d *Destager) MinPending() (uint64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.minPendingLocked()
}

func (d *Destager) minPendingLocked() (uint64, bool) {
	if len(d.pending) == 0 {
		return 0, false
	}
	var min uint64
	first := true
	for pos := range d.pending {
		if first || pos < min {
			min, first = pos, false
		}
	}
	return min, true
}

// WaitLanded blocks until every pending destage with position <= pos has
// landed (its disk write completed or was superseded).  The flash cache
// calls it before reusing a frame slot.
func (d *Destager) WaitLanded(pos uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	waited := false
	for {
		min, ok := d.minPendingLocked()
		if !ok || min > pos || d.stopped {
			return
		}
		if !waited {
			d.reuseWaits++
			waited = true
		}
		d.landed.Wait()
	}
}

// Drain blocks until the queue is empty and every write has landed.
func (d *Destager) Drain() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.pending) > 0 && d.err == nil {
		d.landed.Wait()
	}
	return d.err
}

// Close drains the queue and stops the workers.
func (d *Destager) Close() error {
	err := d.Drain()
	d.stop(false)
	d.wg.Wait()
	return err
}

// Abort stops the workers without draining; queued pages are discarded, as
// a crash would.  In-flight writes complete first so device access has
// quiesced when Abort returns.
func (d *Destager) Abort() {
	d.stop(true)
	d.wg.Wait()
}

func (d *Destager) stop(discard bool) {
	d.mu.Lock()
	d.stopped = true
	if discard {
		d.queue = nil
		d.pending = make(map[uint64]*destageReq)
		d.newest = make(map[page.ID]*destageReq)
	}
	d.notEmpty.Broadcast()
	d.notFull.Broadcast()
	d.landed.Broadcast()
	d.mu.Unlock()
}

func (d *Destager) failErr() error {
	if d.err != nil {
		return d.err
	}
	return ErrStopped
}

func (d *Destager) fillStats(s *metrics.PipelineStats) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s.Destages = d.destages
	s.DestageWrites = d.destageWrites
	s.DestageMaxDepth = d.maxDepth
	s.ReuseWaits = d.reuseWaits
	s.DestageHits = d.hits
}

func (d *Destager) resetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.destages, d.destageWrites, d.maxDepth, d.reuseWaits, d.hits = 0, 0, 0, 0, 0
}
