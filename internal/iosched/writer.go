package iosched

import (
	"sync"

	"github.com/reprolab/face/internal/metrics"
)

// FlushFunc turns one batch of staged items into a flash group write.  It
// is called from the group-writer goroutine only, in ring FIFO order.
type FlushFunc func(batch []Item) error

// GroupWriter is the single background goroutine that drains the staging
// ring and feeds batches to the flash cache core.  Batches are bounded by
// the replacement group size so that one flush maps onto one (or part of
// one) flash group write.
type GroupWriter struct {
	ring  *Ring
	batch int
	flush FlushFunc

	mu      sync.Mutex
	idle    *sync.Cond
	err     error
	stopped bool
	done    chan struct{}

	batches    int64
	batchPages int64
}

// NewGroupWriter starts the group-writer goroutine.  batch bounds the
// number of staged pages per flush.
func NewGroupWriter(ring *Ring, batch int, flush FlushFunc) *GroupWriter {
	if batch < 1 {
		batch = 1
	}
	w := &GroupWriter{
		ring:  ring,
		batch: batch,
		flush: flush,
		done:  make(chan struct{}),
	}
	w.idle = sync.NewCond(&w.mu)
	go w.run()
	return w
}

func (w *GroupWriter) run() {
	defer close(w.done)
	defer w.markStopped()
	for {
		items, err := w.ring.TakeBatch(w.batch)
		if err != nil {
			return
		}
		w.mu.Lock()
		w.batches++
		w.batchPages += int64(len(items))
		w.mu.Unlock()

		ferr := w.flush(items)
		// Acknowledge before waking drainers: the ring only reports Idle
		// once the batch it handed out has been fully processed.
		w.ring.Ack()

		w.mu.Lock()
		if ferr != nil && w.err == nil {
			w.err = ferr
		}
		stop := w.err != nil
		w.idle.Broadcast()
		w.mu.Unlock()
		if stop {
			// Fail the ring so blocked producers see the error instead of
			// waiting forever for a drain that will never come.
			w.ring.Stop(true, ferr)
			return
		}
	}
}

// Drain blocks until every item staged before the call has been flushed,
// and returns the sticky flush error if one occurred.
func (w *GroupWriter) Drain() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.err != nil {
			return w.err
		}
		if w.ring.Idle() {
			return nil
		}
		if w.stopped {
			return ErrStopped
		}
		// The writer goroutine signals idle after every flush; re-examine
		// the ring then.
		w.idle.Wait()
	}
}

// Close drains the pipeline and stops the goroutine.
func (w *GroupWriter) Close() error {
	err := w.Drain()
	w.markStopped()
	w.ring.Stop(false, nil)
	<-w.done
	return err
}

// Abort stops the goroutine without draining: staged items are discarded,
// modelling the loss of volatile state at a crash.  It waits for an
// in-flight flush to return so device access has quiesced when it returns.
func (w *GroupWriter) Abort() {
	w.markStopped()
	w.ring.Stop(true, nil)
	<-w.done
}

func (w *GroupWriter) markStopped() {
	w.mu.Lock()
	w.stopped = true
	w.idle.Broadcast()
	w.mu.Unlock()
}

// Err returns the sticky flush error, if any.
func (w *GroupWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *GroupWriter) fillStats(s *metrics.PipelineStats) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s.Batches = w.batches
	s.BatchPages = w.batchPages
}

func (w *GroupWriter) resetStats() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.batches, w.batchPages = 0, 0
}
