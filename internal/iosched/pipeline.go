package iosched

import "github.com/reprolab/face/internal/metrics"

// Pipeline bundles the three stages of the background I/O path: the
// staging ring, the group writer draining it, and (optionally) the
// destager pool.  internal/face assembles one around an mvFIFO core.
type Pipeline struct {
	Ring   *Ring
	Writer *GroupWriter
	Dest   *Destager // nil when the core destages synchronously
}

// Drain flushes everything in flight: the staging ring first (group
// writes may generate destages), then the destage queue.
func (p *Pipeline) Drain() error {
	if err := p.Writer.Drain(); err != nil {
		return err
	}
	if p.Dest != nil {
		return p.Dest.Drain()
	}
	return nil
}

// Close drains the pipeline and stops every goroutine.
func (p *Pipeline) Close() error {
	err := p.Writer.Close()
	if p.Dest != nil {
		if derr := p.Dest.Close(); err == nil {
			err = derr
		}
	}
	return err
}

// Abort stops every goroutine without draining, discarding staged and
// queued pages as a crash would.  Device access has quiesced on return.
func (p *Pipeline) Abort() {
	p.Writer.Abort()
	if p.Dest != nil {
		p.Dest.Abort()
	}
}

// Stats snapshots the pipeline counters.
func (p *Pipeline) Stats() metrics.PipelineStats {
	var s metrics.PipelineStats
	p.Ring.fillStats(&s)
	p.Writer.fillStats(&s)
	if p.Dest != nil {
		p.Dest.fillStats(&s)
	}
	return s
}

// ResetStats clears the pipeline counters (used after warm-up).
func (p *Pipeline) ResetStats() {
	p.Ring.resetStats()
	p.Writer.resetStats()
	if p.Dest != nil {
		p.Dest.resetStats()
	}
}
