package iosched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reprolab/face/internal/page"
)

func item(id page.ID, seq uint64, dirty bool) Item {
	b := page.NewBuf()
	b.Init(id, page.TypeHeap)
	return Item{ID: id, Data: b, Dirty: dirty, Seq: seq}
}

func TestRingFIFOOrder(t *testing.T) {
	r := NewRing(8)
	for i := 1; i <= 5; i++ {
		if _, _, err := r.Put(item(page.ID(i), uint64(i), false)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.TakeBatch(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 3 {
		t.Fatalf("batch = %v", got)
	}
	got, err = r.TakeBatch(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 4 || got[1].ID != 5 {
		t.Fatalf("second batch = %v", got)
	}
}

func TestRingCoalescesPendingVersions(t *testing.T) {
	r := NewRing(4)
	if _, _, err := r.Put(item(7, 1, true)); err != nil {
		t.Fatal(err)
	}
	newer := item(7, 2, false)
	newer.Data.SetLSN(42)
	old, superseded, err := r.Put(newer)
	if err != nil {
		t.Fatal(err)
	}
	if !superseded || old.Seq != 1 || !old.Dirty {
		t.Fatalf("superseded=%v old=%+v", superseded, old)
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d, want 1 (coalesced)", r.Len())
	}
	got, err := r.TakeBatch(4)
	if err != nil {
		t.Fatal(err)
	}
	// The merged item keeps the newer image and the union of dirty flags.
	if len(got) != 1 || got[0].Seq != 2 || !got[0].Dirty || got[0].Data.LSN() != 42 {
		t.Fatalf("merged item = %+v", got[0])
	}
	s := r.Stats()
	if s.Coalesced != 1 {
		t.Fatalf("coalesced = %d", s.Coalesced)
	}
}

// Stats is a test helper exposing ring counters.
func (r *Ring) Stats() (s struct {
	Coalesced int64
	Stalls    int64
}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Coalesced = r.coalesced
	s.Stalls = r.stalls
	return s
}

func TestRingBackpressureBlocksAndWakes(t *testing.T) {
	r := NewRing(2)
	for i := 1; i <= 2; i++ {
		if _, _, err := r.Put(item(page.ID(i), uint64(i), false)); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := r.Put(item(3, 3, false))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("Put on a full ring returned early (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := r.TakeBatch(1); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Put did not wake after TakeBatch freed a slot")
	}
}

func TestGroupWriterDrainAndBatching(t *testing.T) {
	r := NewRing(64)
	var mu sync.Mutex
	var flushed [][]page.ID
	w := NewGroupWriter(r, 8, func(batch []Item) error {
		mu.Lock()
		ids := make([]page.ID, len(batch))
		for i, it := range batch {
			ids[i] = it.ID
		}
		flushed = append(flushed, ids)
		mu.Unlock()
		return nil
	})
	for i := 1; i <= 30; i++ {
		if _, _, err := r.Put(item(page.ID(i), uint64(i), false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	var total, prev int
	for _, ids := range flushed {
		if len(ids) > 8 {
			t.Fatalf("batch of %d exceeds limit 8", len(ids))
		}
		for _, id := range ids {
			if int(id) != prev+1 {
				t.Fatalf("out-of-order flush: %d after %d", id, prev)
			}
			prev = int(id)
			total++
		}
	}
	mu.Unlock()
	if total != 30 {
		t.Fatalf("flushed %d items, want 30", total)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupWriterDrainIsABarrier hammers the put→drain cycle: when Drain
// returns, every item staged before it must have been flushed — including
// a batch the writer had taken from the ring but not yet processed.
func TestGroupWriterDrainIsABarrier(t *testing.T) {
	r := NewRing(8)
	var flushed atomic.Int64
	w := NewGroupWriter(r, 4, func(batch []Item) error {
		time.Sleep(50 * time.Microsecond) // widen the taken-but-unflushed window
		flushed.Add(int64(len(batch)))
		return nil
	})
	var staged int64
	for round := 0; round < 200; round++ {
		for i := 0; i < 3; i++ {
			staged++
			// Distinct ids so nothing coalesces away.
			if _, _, err := r.Put(item(page.ID(staged), uint64(staged), false)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Drain(); err != nil {
			t.Fatal(err)
		}
		if got := flushed.Load(); got != staged {
			t.Fatalf("round %d: Drain returned with %d/%d items flushed", round, got, staged)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDestagerInFlightVersionsLandInOrder pins the parallel-worker
// ordering guarantee: a newer destage of a page must not land before an
// older in-flight write of the same page, or the disk copy would regress.
func TestDestagerInFlightVersionsLandInOrder(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	var mu sync.Mutex
	var order []page.LSN
	d := NewDestager(16, 2, func(id page.ID, data page.Buf) error {
		if data.LSN() == 1 {
			started <- struct{}{}
			<-block // hold the old version's write in flight
		}
		mu.Lock()
		order = append(order, data.LSN())
		mu.Unlock()
		return nil
	})
	mk := func(lsn page.LSN) page.Buf {
		b := page.NewBuf()
		b.Init(5, page.TypeHeap)
		b.SetLSN(lsn)
		return b
	}
	if err := d.Enqueue(1, 5, mk(1)); err != nil {
		t.Fatal(err)
	}
	<-started // worker 1 is mid-write of LSN 1
	if err := d.Enqueue(2, 5, mk(2)); err != nil {
		t.Fatal(err)
	}
	// Give worker 2 every chance to (incorrectly) write LSN 2 first.
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	premature := len(order) > 0
	mu.Unlock()
	if premature {
		t.Fatalf("newer version landed while the older write was in flight: %v", order)
	}
	close(block)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) == 0 || order[len(order)-1] != 2 {
		t.Fatalf("write order %v, want last = LSN 2", order)
	}
}

func TestGroupWriterFlushErrorFailsProducers(t *testing.T) {
	r := NewRing(1)
	boom := errors.New("boom")
	w := NewGroupWriter(r, 4, func([]Item) error { return boom })
	// The first Put triggers a failing flush; eventually Put and Drain
	// surface the sticky error instead of hanging.
	deadline := time.After(5 * time.Second)
	for {
		_, _, err := r.Put(item(1, 1, false))
		if errors.Is(err, boom) {
			break
		}
		if err != nil {
			t.Fatalf("unexpected error %v", err)
		}
		select {
		case <-deadline:
			t.Fatal("producer never saw the flush error")
		case <-time.After(time.Millisecond):
		}
	}
	if err := w.Drain(); !errors.Is(err, boom) {
		t.Fatalf("Drain = %v, want boom", err)
	}
	w.Abort()
}

func TestDestagerWritesAndWatermark(t *testing.T) {
	var mu sync.Mutex
	written := map[page.ID]page.LSN{}
	d := NewDestager(16, 2, func(id page.ID, data page.Buf) error {
		mu.Lock()
		written[id] = data.LSN()
		mu.Unlock()
		return nil
	})
	for i := 1; i <= 8; i++ {
		b := page.NewBuf()
		b.Init(page.ID(i), page.TypeHeap)
		b.SetLSN(page.LSN(100 + i))
		if err := d.Enqueue(uint64(i), page.ID(i), b); err != nil {
			t.Fatal(err)
		}
	}
	d.WaitLanded(8)
	if min, ok := d.MinPending(); ok {
		t.Fatalf("pending position %d after WaitLanded(8)", min)
	}
	mu.Lock()
	n := len(written)
	mu.Unlock()
	if n != 8 {
		t.Fatalf("wrote %d pages, want 8", n)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDestagerSupersedesStaleVersion(t *testing.T) {
	release := make(chan struct{})
	var got []page.LSN
	var mu sync.Mutex
	d := NewDestager(16, 1, func(id page.ID, data page.Buf) error {
		<-release
		mu.Lock()
		got = append(got, data.LSN())
		mu.Unlock()
		return nil
	})
	mk := func(lsn page.LSN) page.Buf {
		b := page.NewBuf()
		b.Init(9, page.TypeHeap)
		b.SetLSN(lsn)
		return b
	}
	// Block the worker on a decoy so both versions of page 9 queue up.
	decoy := page.NewBuf()
	decoy.Init(1, page.TypeHeap)
	if err := d.Enqueue(1, 1, decoy); err != nil {
		t.Fatal(err)
	}
	if err := d.Enqueue(2, 9, mk(10)); err != nil {
		t.Fatal(err)
	}
	if err := d.Enqueue(3, 9, mk(20)); err != nil {
		t.Fatal(err)
	}
	// The newest version must be served by Lookup while pending.
	buf := page.NewBuf()
	if !d.Lookup(9, buf) || buf.LSN() != 20 {
		t.Fatalf("Lookup served LSN %d, want 20", buf.LSN())
	}
	close(release)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// The stale LSN 10 write was skipped; only the decoy and LSN 20 landed.
	for _, lsn := range got {
		if lsn == 10 {
			t.Fatal("stale version was written to disk")
		}
	}
	if got[len(got)-1] != 20 {
		t.Fatalf("final writes %v, want last = 20", got)
	}
}

func TestPipelineAbortDiscardsWithoutFlushing(t *testing.T) {
	r := NewRing(64)
	var flushes atomic.Int64
	gate := make(chan struct{})
	w := NewGroupWriter(r, 4, func(batch []Item) error {
		<-gate
		flushes.Add(int64(len(batch)))
		return nil
	})
	d := NewDestager(8, 1, func(page.ID, page.Buf) error { return nil })
	p := &Pipeline{Ring: r, Writer: w, Dest: d}
	for i := 1; i <= 20; i++ {
		if _, _, err := r.Put(item(page.ID(i), uint64(i), false)); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	p.Abort()
	if _, _, err := r.Put(item(99, 99, false)); err == nil {
		t.Fatal("Put succeeded after Abort")
	}
	if flushes.Load() >= 20 {
		t.Fatalf("abort flushed everything (%d items); staged pages should be lost", flushes.Load())
	}
}

func TestPipelineStatsCounters(t *testing.T) {
	r := NewRing(4)
	w := NewGroupWriter(r, 4, func([]Item) error { return nil })
	d := NewDestager(4, 1, func(page.ID, page.Buf) error { return nil })
	p := &Pipeline{Ring: r, Writer: w, Dest: d}
	for i := 1; i <= 10; i++ {
		if _, _, err := r.Put(item(page.ID(i), uint64(i), false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Staged != 10 || s.BatchPages != 10 || s.Batches < 3 {
		t.Fatalf("stats = %+v", s)
	}
	if fill := s.GroupFill(); fill <= 0 || fill > 4 {
		t.Fatalf("group fill = %v", fill)
	}
	p.ResetStats()
	if s := p.Stats(); s.Staged != 0 || s.Batches != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDestagerParallelWorkers(t *testing.T) {
	var inflight, peak atomic.Int64
	d := NewDestager(64, 4, func(id page.ID, data page.Buf) error {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inflight.Add(-1)
		return nil
	})
	for i := 1; i <= 32; i++ {
		b := page.NewBuf()
		b.Init(page.ID(i), page.TypeHeap)
		if err := d.Enqueue(uint64(i), page.ID(i), b); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Fatalf("peak concurrent destage writes = %d, want >= 2", peak.Load())
	}
}

func TestRingStopDiscardsOnFailure(t *testing.T) {
	r := NewRing(4)
	if _, _, err := r.Put(item(1, 1, false)); err != nil {
		t.Fatal(err)
	}
	failure := fmt.Errorf("device gone")
	r.Stop(true, failure)
	if _, err := r.TakeBatch(1); !errors.Is(err, failure) {
		t.Fatalf("TakeBatch = %v, want sticky failure", err)
	}
	if _, _, err := r.Put(item(2, 2, false)); !errors.Is(err, failure) {
		t.Fatalf("Put = %v, want sticky failure", err)
	}
}
