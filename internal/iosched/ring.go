// Package iosched implements the staged background I/O pipeline of the
// flash cache: a bounded staging ring that DRAM buffer evictions are
// dropped into, a group writer that drains the ring in batches and turns
// them into large sequential flash group writes, and a pool of destager
// workers that write cold dirty pages back to the database on disk.
//
// The package provides mechanism only.  Policy — what a "group write" or a
// "destage" actually does — is injected as callbacks by internal/face,
// which composes the pieces around an mvFIFO cache manager.  The pipeline
// preserves the paper's Group Replacement / Group Second Chance semantics
// because the mvFIFO core still makes every replacement decision; the
// pipeline only moves the I/O off the foot of the evicting transaction.
//
// Backpressure: Put blocks when the staging ring is full, so a foreground
// that outruns the flash device degrades gracefully to the synchronous
// behaviour instead of queueing unboundedly.
package iosched

import (
	"errors"
	"sync"
	"time"

	"github.com/reprolab/face/internal/metrics"
	"github.com/reprolab/face/internal/page"
)

// ErrStopped is returned by pipeline operations after Close or Abort.
var ErrStopped = errors.New("iosched: pipeline is stopped")

// Item is one page staged for background I/O.  Data is owned by the
// pipeline: producers must hand in a private copy.
type Item struct {
	ID     page.ID
	Data   page.Buf
	Dirty  bool // newer than the disk copy
	FDirty bool // newer than the flash copy
	Ref    bool // referenced while staged (counts as a cache hit)
	// Seq is a producer-assigned sequence number that disambiguates
	// successive versions of the same page.
	Seq uint64
}

// Ring is the bounded staging ring between the DRAM buffer and the group
// writer.  Put blocks when the ring is full; TakeBatch blocks when it is
// empty.  A newer version of a page already staged (and not yet taken)
// replaces the staged copy in place instead of occupying a second slot.
type Ring struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond

	buf   []Item
	head  int // next item to take
	count int
	// inFlight counts batches handed out by TakeBatch whose processing
	// has not been acknowledged with Ack yet.  It is set atomically with
	// the removal of the items, so Idle cannot observe an "empty" ring
	// whose contents are merely in the consumer's hands.
	inFlight int

	// pending maps page ids to their slot in buf for in-place coalescing.
	pending map[page.ID]int

	stopped bool
	err     error

	staged    int64
	stalls    int64
	stallTime time.Duration
	maxDepth  int64
	coalesced int64
}

// NewRing creates a staging ring holding up to depth pages.
func NewRing(depth int) *Ring {
	if depth < 1 {
		depth = 1
	}
	r := &Ring{
		buf:     make([]Item, depth),
		pending: make(map[page.ID]int),
	}
	r.notFull = sync.NewCond(&r.mu)
	r.notEmpty = sync.NewCond(&r.mu)
	return r
}

// Depth returns the ring capacity.
func (r *Ring) Depth() int { return len(r.buf) }

// Len returns the current occupancy.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Put stages an item, blocking while the ring is full.  When a version of
// the same page is already staged and not yet taken, the staged copy is
// superseded in place: the newer image replaces it and the dirty flags are
// merged, which coalesces repeated evictions of a hot page into one flash
// write.  The superseded version, if any, is returned so the caller can
// keep its statistics consistent (the old version never reaches the
// cache core).
func (r *Ring) Put(it Item) (superseded Item, ok bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.stopped {
			return Item{}, false, r.failErr()
		}
		if slot, ok := r.pending[it.ID]; ok {
			old := &r.buf[slot]
			prev := *old
			it.Dirty = it.Dirty || old.Dirty
			it.FDirty = it.FDirty || old.FDirty
			it.Ref = it.Ref || old.Ref
			*old = it
			r.staged++
			r.coalesced++
			return prev, true, nil
		}
		if r.count < len(r.buf) {
			break
		}
		// Full: wait, then re-run the checks — a concurrent Put of the
		// same page may have staged it while we slept, in which case the
		// copies must coalesce rather than occupy two slots.
		r.stalls++
		start := time.Now()
		for r.count == len(r.buf) && !r.stopped {
			r.notFull.Wait()
		}
		r.stallTime += time.Since(start)
	}
	slot := (r.head + r.count) % len(r.buf)
	r.buf[slot] = it
	r.pending[it.ID] = slot
	r.count++
	r.staged++
	if int64(r.count) > r.maxDepth {
		r.maxDepth = int64(r.count)
	}
	r.notEmpty.Signal()
	return Item{}, false, nil
}

// TakeBatch removes up to max items in FIFO order, blocking until at least
// one is available.  It returns ErrStopped (or the sticky failure error)
// once the ring is stopped and drained.
func (r *Ring) TakeBatch(max int) ([]Item, error) {
	if max < 1 {
		max = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.count == 0 && !r.stopped {
		r.notEmpty.Wait()
	}
	if r.count == 0 {
		return nil, r.failErr()
	}
	n := r.count
	if n > max {
		n = max
	}
	out := make([]Item, n)
	for i := 0; i < n; i++ {
		out[i] = r.buf[r.head]
		r.buf[r.head] = Item{}
		delete(r.pending, out[i].ID)
		r.head = (r.head + 1) % len(r.buf)
	}
	r.count -= n
	r.inFlight++
	r.notFull.Broadcast()
	return out, nil
}

// Ack acknowledges that a batch returned by TakeBatch has been fully
// processed.
func (r *Ring) Ack() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inFlight--
}

// Idle reports whether the ring is empty with no unacknowledged batch in
// flight.
func (r *Ring) Idle() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count == 0 && r.inFlight == 0
}

// Stop wakes every waiter and makes subsequent Put/TakeBatch fail.  Items
// already staged remain takeable until the ring drains (TakeBatch keeps
// returning them); with discard set they are dropped immediately, which
// models the loss of volatile state at a crash.
func (r *Ring) Stop(discard bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stopped = true
	if err != nil && r.err == nil {
		r.err = err
	}
	if discard {
		for i := range r.buf {
			r.buf[i] = Item{}
		}
		r.head, r.count = 0, 0
		r.pending = make(map[page.ID]int)
	}
	r.notFull.Broadcast()
	r.notEmpty.Broadcast()
}

func (r *Ring) failErr() error {
	if r.err != nil {
		return r.err
	}
	return ErrStopped
}

// fillStats copies the ring counters into s.
func (r *Ring) fillStats(s *metrics.PipelineStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Staged = r.staged
	s.Stalls = r.stalls
	s.StallTime = r.stallTime
	s.MaxDepth = r.maxDepth
	s.Coalesced = r.coalesced
}

// resetStats clears the ring counters (used after warm-up).
func (r *Ring) resetStats() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.staged, r.stalls, r.stallTime, r.maxDepth, r.coalesced = 0, 0, 0, 0, 0
}
