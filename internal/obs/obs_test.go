package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose range contains it, and the
	// bucket upper bound must never understate the value.
	vals := []int64{0, 1, 15, 16, 17, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxInt64 / 2}
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		up := bucketUpper(i)
		if up < v {
			t.Errorf("bucketUpper(%d)=%d understates value %d", i, up, v)
		}
		if v >= subBuckets {
			// Relative error bound: upper/value <= 1 + 2^-subBits.
			if float64(up) > float64(v)*(1+1.0/subBuckets)+1 {
				t.Errorf("bucket for %d too wide: upper %d", v, up)
			}
		}
		// Monotonicity across adjacent buckets.
		if i+1 < numBuckets && bucketUpper(i+1) <= up {
			t.Errorf("bucketUpper not monotone at %d", i)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	check := func(q float64, want time.Duration) {
		got := s.Quantile(q)
		// Quantile reports the bucket upper bound: never below the true
		// value, at most ~6.25% above.
		if got < want || float64(got) > float64(want)*1.07 {
			t.Errorf("Quantile(%g) = %v, want within [%v, %v]", q, got, want, time.Duration(float64(want)*1.07))
		}
	}
	check(0.50, 500*time.Microsecond)
	check(0.95, 950*time.Microsecond)
	check(0.99, 990*time.Microsecond)
	if s.Max != int64(1000*time.Microsecond) {
		t.Errorf("max = %v, want 1ms", time.Duration(s.Max))
	}
	sum := s.Summary()
	if sum.Mean < 500*time.Microsecond || sum.Mean > 501*time.Microsecond {
		t.Errorf("mean = %v, want ~500.5µs", sum.Mean)
	}
}

func TestHistNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.99) != 0 {
		t.Errorf("nil histogram snapshot not empty: %+v", s)
	}
	var c *Counter
	c.Add(1)
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}
	var g *Gauge
	g.Set(5)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge value != 0")
	}
	var r *Registry
	if r.Histogram("x") != nil || r.Counter("x") != nil || r.Gauge("x") != nil {
		t.Error("nil registry returned non-nil metric")
	}
	r.GaugeFunc("x", func() int64 { return 1 })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Error("nil registry rendered output")
	}
}

// TestHistStorm hammers one histogram from many writers while snapshots,
// merges and quantiles run concurrently; meant to run under -race.
func TestHistStorm(t *testing.T) {
	h := NewHistogram()
	const (
		writers = 8
		perW    = 20000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshotter folding merges while recording is live.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var acc HistSnapshot
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			acc = acc.Merge(s.Sub(acc)) // exercise Sub+Merge under load
			_ = s.Quantile(0.99)
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Writers finish first; then stop the snapshotter.
	for {
		s := h.Snapshot()
		if s.Count >= writers*perW {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	s := h.Snapshot()
	if s.Count != writers*perW {
		t.Fatalf("final count = %d, want %d", s.Count, writers*perW)
	}
	var n int64
	for _, b := range s.Buckets {
		n += b
	}
	if n != s.Count {
		t.Fatalf("bucket sum %d != count %d", n, s.Count)
	}
}

func TestHistSubMerge(t *testing.T) {
	h := NewHistogram()
	h.Observe(10 * time.Microsecond)
	h.Observe(20 * time.Microsecond)
	before := h.Snapshot()
	h.Observe(30 * time.Microsecond)
	h.Observe(40 * time.Microsecond)
	window := h.Snapshot().Sub(before)
	if window.Count != 2 {
		t.Fatalf("window count = %d, want 2", window.Count)
	}
	if got := window.Quantile(1.0); got < 40*time.Microsecond {
		t.Errorf("window p100 = %v, want >= 40µs", got)
	}
	merged := before.Merge(window)
	if merged.Count != 4 {
		t.Fatalf("merged count = %d, want 4", merged.Count)
	}
	if merged.Sum != before.Sum+window.Sum {
		t.Errorf("merged sum mismatch")
	}
}

// TestMetricsPrometheusFormat is the golden-format check for the text
// exposition renderer.
func TestMetricsPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("face_commits_total").Add(7)
	r.Gauge("face_server_inflight").Set(3)
	r.GaugeFunc("face_server_queue_depth", func() int64 { return 11 })
	h := r.Histogram(`face_server_op_seconds{op="get"}`)
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE face_commits_total counter\n",
		"face_commits_total 7\n",
		"# TYPE face_server_inflight gauge\n",
		"face_server_inflight 3\n",
		"# TYPE face_server_queue_depth gauge\n",
		"face_server_queue_depth 11\n",
		"# TYPE face_server_op_seconds summary\n",
		`face_server_op_seconds{op="get",quantile="0.5"} `,
		`face_server_op_seconds{op="get",quantile="0.99"} `,
		`face_server_op_seconds_count{op="get"} 100`,
		`face_server_op_seconds_sum{op="get"} 0.1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// Each # TYPE line must appear exactly once per base name.
	if strings.Count(out, "# TYPE face_server_op_seconds ") != 1 {
		t.Errorf("duplicate TYPE lines:\n%s", out)
	}
	// All lines must be either comments or "name value".
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed line %q", line)
		}
	}
}

func TestMetricsRegistryReuse(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("h")
	b := r.Histogram("h")
	if a != b {
		t.Error("Histogram not get-or-create")
	}
	if r.Counter("c") != r.Counter("c") {
		t.Error("Counter not get-or-create")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not get-or-create")
	}
}

func TestMetricsExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(5)
	r.Histogram("h").Observe(time.Millisecond)
	s := r.Expvar().String()
	if !strings.Contains(s, `"c":5`) {
		t.Errorf("expvar missing counter: %s", s)
	}
	if !strings.Contains(s, `"count":1`) {
		t.Errorf("expvar missing histogram summary: %s", s)
	}
}
