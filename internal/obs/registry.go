package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of histograms, counters, gauges and
// callback metrics.  Histogram/Counter/Gauge are get-or-create, so every
// layer of the stack registers its metrics independently into one shared
// registry.  A nil Registry returns nil metrics from every constructor,
// and nil metrics ignore recording — disabling observability therefore
// needs no conditional at the instrumentation sites.
//
// Names may embed a literal Prometheus label set, e.g.
// `face_server_op_seconds{op="get"}`; series sharing a base name are
// grouped under one # TYPE line when rendered.
type Registry struct {
	mu       sync.Mutex
	hists    map[string]*Histogram
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]funcMetric
}

// funcMetric is a callback metric sampled at render time, used for
// values another subsystem already maintains (queue depths, in-flight
// counts, admission totals).
type funcMetric struct {
	typ string // "counter" or "gauge"
	fn  func() int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:    make(map[string]*Histogram),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]funcMetric),
	}
}

// Histogram returns the named histogram, creating it on first use (nil
// on a nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Counter returns the named counter, creating it on first use (nil on a
// nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge sampled at render time.  No-op on
// a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.registerFunc(name, "gauge", fn)
}

// CounterFunc registers a callback counter sampled at render time, for
// monotonic totals another subsystem already maintains.  No-op on a nil
// registry.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.registerFunc(name, "counter", fn)
}

func (r *Registry) registerFunc(name, typ string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = funcMetric{typ: typ, fn: fn}
}

// splitName separates a metric name from its embedded label set:
// `x{op="get"}` -> ("x", `op="get"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// series renders base plus a merged label set.
func series(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	default:
		return base + "{" + labels + "," + extra + "}"
	}
}

// sortedKeys returns the map keys ordered so the rendered output is
// stable (and series of one base name stay adjacent).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format.  Histograms render as summaries: quantile series (seconds)
// plus _sum and _count, which is both scrape-friendly and trivially
// parseable by faceload's report folding.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]funcMetric, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.Unlock()

	typed := make(map[string]bool)
	writeType := func(base, typ string) {
		if !typed[base] {
			fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
			typed[base] = true
		}
	}

	for _, name := range sortedKeys(counters) {
		base, labels := splitName(name)
		writeType(base, "counter")
		fmt.Fprintf(w, "%s %d\n", series(base, labels, ""), counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		base, labels := splitName(name)
		writeType(base, "gauge")
		fmt.Fprintf(w, "%s %d\n", series(base, labels, ""), gauges[name].Value())
	}
	for _, name := range sortedKeys(funcs) {
		base, labels := splitName(name)
		fm := funcs[name]
		writeType(base, fm.typ)
		fmt.Fprintf(w, "%s %d\n", series(base, labels, ""), fm.fn())
	}
	for _, name := range sortedKeys(hists) {
		base, labels := splitName(name)
		writeType(base, "summary")
		s := hists[name].Snapshot()
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}, {"0.999", 0.999}} {
			fmt.Fprintf(w, "%s %.9f\n",
				series(base, labels, `quantile="`+q.label+`"`),
				s.Quantile(q.q).Seconds())
		}
		fmt.Fprintf(w, "%s %.9f\n", series(base+"_sum", labels, ""), float64(s.Sum)/1e9)
		fmt.Fprintf(w, "%s %d\n", series(base+"_count", labels, ""), s.Count)
		fmt.Fprintf(w, "%s %.9f\n", series(base+"_max", labels, ""), float64(s.Max)/1e9)
	}
}

// Expvar returns an expvar.Var rendering the registry as one JSON
// object: counters and gauges as numbers, histograms as their Summary.
// Publish it under a single name so repeated faced runs in one process
// can guard against expvar's duplicate-name panic with one Get.
func (r *Registry) Expvar() expvar.Var {
	return expvar.Func(func() any {
		if r == nil {
			return nil
		}
		r.mu.Lock()
		out := make(map[string]any, len(r.hists)+len(r.counters)+len(r.gauges)+len(r.funcs))
		hists := make(map[string]*Histogram, len(r.hists))
		for k, v := range r.hists {
			hists[k] = v
		}
		for k, v := range r.counters {
			out[k] = v.Value()
		}
		for k, v := range r.gauges {
			out[k] = v.Value()
		}
		funcs := make(map[string]funcMetric, len(r.funcs))
		for k, v := range r.funcs {
			funcs[k] = v
		}
		r.mu.Unlock()
		for k, v := range funcs {
			out[k] = v.fn()
		}
		for k, h := range hists {
			out[k] = h.Snapshot().Summary()
		}
		return out
	})
}
