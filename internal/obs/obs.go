// Package obs is the engine's observability substrate: a lock-free
// log-bucketed latency histogram, atomic counters and gauges, and a named
// registry that renders everything as Prometheus text and expvar JSON.
//
// # Design
//
// Recording must be cheap enough to sit on the commit path of every
// transaction and the execute path of every served request, so nothing in
// this package takes a lock on the hot path:
//
//   - Histogram buckets, counts, sums and the max watermark are plain
//     atomics.  Observe is a handful of atomic adds plus one CAS loop for
//     the max.
//   - Every recording method is nil-safe: calling Observe/Add/Set on a nil
//     receiver is a no-op, so a disabled observability layer (engine
//     Config.DisableObs, face.WithObservability(false)) reduces every
//     instrumentation site to a nil check.
//
// # Histogram semantics
//
// Histogram buckets are log-spaced with 16 sub-buckets per power of two
// (an HDR-histogram-style layout), so quantile estimates carry at most
// ~6.25% relative error at any magnitude from nanoseconds to hours.
// Snapshots are mergeable and subtractable: Sub(prior) isolates a
// measurement window the same way the engine's counter snapshots do, and
// Merge folds per-kind histograms into an aggregate.  Quantiles report
// the upper bound of the containing bucket, so they never understate a
// latency.
//
// # Naming
//
// Metric names follow Prometheus conventions and may carry a literal
// label set: Histogram(`face_server_op_seconds{op="get"}`) registers one
// labeled series; the renderer groups series sharing a base name under
// one # TYPE line.  Histograms render as Prometheus summaries (quantile
// series plus _sum and _count), which scrapers and the faceload
// /metrics parser consume without bucket math.
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter.  The zero value
// is ready to use; a nil Counter ignores Add and reads as 0.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.  No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value.  The zero value is ready to
// use; a nil Gauge ignores writes and reads as 0.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.  No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease).  No-op on a nil
// receiver.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
