package obs

// TxPhases is the commit-path phase breakdown as histogram snapshots:
// total Update latency plus the disjoint wall-time phases each committed
// write transaction records (see internal/engine).  It subtracts like any
// counter snapshot, so a measurement window is After.Sub(Before).
type TxPhases struct {
	Total       HistSnapshot
	Admission   HistSnapshot
	LockWait    HistSnapshot
	Buffer      HistSnapshot
	WalAppend   HistSnapshot
	DurableWait HistSnapshot
	Closure     HistSnapshot
}

// Sub returns the phase histograms of the window between prior and p.
func (p TxPhases) Sub(prior TxPhases) TxPhases {
	return TxPhases{
		Total:       p.Total.Sub(prior.Total),
		Admission:   p.Admission.Sub(prior.Admission),
		LockWait:    p.LockWait.Sub(prior.LockWait),
		Buffer:      p.Buffer.Sub(prior.Buffer),
		WalAppend:   p.WalAppend.Sub(prior.WalAppend),
		DurableWait: p.DurableWait.Sub(prior.DurableWait),
		Closure:     p.Closure.Sub(prior.Closure),
	}
}

// Summaries condenses every phase into the quantile form reports carry.
func (p TxPhases) Summaries() TxPhaseSummaries {
	return TxPhaseSummaries{
		Total:       p.Total.Summary(),
		Admission:   p.Admission.Summary(),
		LockWait:    p.LockWait.Summary(),
		Buffer:      p.Buffer.Summary(),
		WalAppend:   p.WalAppend.Summary(),
		DurableWait: p.DurableWait.Summary(),
		Closure:     p.Closure.Summary(),
	}
}

// TxPhaseSummaries is the JSON form of the commit-path phase breakdown.
type TxPhaseSummaries struct {
	Total       Summary `json:"total"`
	Admission   Summary `json:"admission"`
	LockWait    Summary `json:"lock_wait"`
	Buffer      Summary `json:"buffer"`
	WalAppend   Summary `json:"wal_append"`
	DurableWait Summary `json:"durable_wait"`
	Closure     Summary `json:"closure"`
}
