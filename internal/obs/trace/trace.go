// Package trace is the request-scoped companion to internal/obs: where
// the histograms say *that* the tail is slow, a trace says *which*
// request was slow and *why*.  It is zero-dependency and lock-free in
// the same sense as the histogram package — recording a span touches
// only the trace owned by the request's goroutine, and publishing a
// completed trace into the journal is a single atomic pointer store.
//
// Lifecycle: a Tracer mints (or adopts, when the client sent one over
// the wire) a trace ID per request, the server and engine attach spans
// as the request crosses them, and Finish applies tail-based retention:
// traces pinned for an anomaly (slow, deadlock victim, admission shed,
// WAL sync stall) land in the pinned ring; ordinary traces are sampled
// 1-in-N into a second ring.  Both rings are fixed-size and overwrite
// oldest-first, so the journal's memory is bounded no matter the
// request rate.
//
// Every method on Tracer and Trace is a no-op on a nil receiver, which
// is what lets disabled tracing reduce hot paths to nil checks (the
// obsguard analyzer enforces the guards lexically).
package trace

import (
	"fmt"
	"sync/atomic"
	"time"
)

// ID identifies one request-scoped trace.  Zero means "no trace".  IDs
// travel over the wire (client-minted) or are minted server-side, so
// they are only required to be unique enough for forensics, not
// cryptographic.
type ID uint64

// String renders the ID the way /debug/traces and log lines print it.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// Span is one timed section of a trace.  Start is the offset from the
// trace's begin time, so spans order and nest without absolute clocks.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
	// Page annotates engine spans with the page the phase touched
	// (lock-wait, buffer fetch, allocation); zero when not applicable.
	Page uint64 `json:"page,omitempty"`
	// Note carries a short free-form annotation (lock mode, stall
	// detail).
	Note string `json:"note,omitempty"`
}

// PinKind classifies why a trace was retained unconditionally.
type PinKind string

// Pin kinds.  Deadlock and shed pins also feed the anomaly-burst
// window that can trigger a flight-recorder dump.
const (
	PinSlow     PinKind = "slow_tx"
	PinDeadlock PinKind = "deadlock"
	PinShed     PinKind = "shed"
	PinStall    PinKind = "wal_sync_stall"
)

// PinReason is one recorded pin with its forensic detail (for a
// deadlock, the wait-for cycle; for a stall, the wait duration).
type PinReason struct {
	Kind   PinKind `json:"kind"`
	Detail string  `json:"detail,omitempty"`
}

// maxSpans bounds a single trace: a batch commit touching hundreds of
// pages must not turn one journal slot into megabytes.  Overflow is
// counted, not silently dropped.
const maxSpans = 64

// Trace accumulates the spans of one request.  A trace is owned by the
// goroutine executing the request until Finish publishes it; after
// publication it is immutable.  Methods are no-ops on a nil receiver.
type Trace struct {
	id        ID
	kind      string
	start     time.Time
	total     time.Duration
	spans     []Span
	truncated int
	pins      []PinReason
}

// ID returns the trace's identity (0 on nil).
func (t *Trace) ID() ID {
	if t == nil {
		return 0
	}
	return t.id
}

// Kind returns the operation label the trace was started with.
func (t *Trace) Kind() string {
	if t == nil {
		return ""
	}
	return t.kind
}

// Start returns the trace's begin time.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Total returns the end-to-end duration; zero until Finish.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	return t.total
}

// Spans returns the recorded spans (shared slice; treat as read-only).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Pins returns the recorded pin reasons (shared slice; read-only).
func (t *Trace) Pins() []PinReason {
	if t == nil {
		return nil
	}
	return t.pins
}

// Span records one completed section.  start is the section's absolute
// begin time, d its duration; page and note are optional annotations.
// Past maxSpans the span is counted as truncated instead of stored.
func (t *Trace) Span(name string, start time.Time, d time.Duration, page uint64, note string) {
	if t == nil {
		return
	}
	if len(t.spans) >= maxSpans {
		t.truncated++
		return
	}
	off := start.Sub(t.start)
	if off < 0 {
		off = 0
	}
	t.spans = append(t.spans, Span{Name: name, Start: off, Dur: d, Page: page, Note: note})
}

// Pin marks the trace for unconditional retention.  One pin per kind:
// a batch that deadlocks twice is still one deadlock victim.
func (t *Trace) Pin(kind PinKind, detail string) {
	if t == nil {
		return
	}
	for i := range t.pins {
		if t.pins[i].Kind == kind {
			return
		}
	}
	t.pins = append(t.pins, PinReason{Kind: kind, Detail: detail})
}

// anomalous reports whether any pin should feed the burst window:
// slowness is a tail property, but deadlocks and sheds are events an
// operator wants correlated in time.
func (t *Trace) anomalous() bool {
	for i := range t.pins {
		if t.pins[i].Kind == PinDeadlock || t.pins[i].Kind == PinShed {
			return true
		}
	}
	return false
}

// Config sizes a Tracer.  Zero values take the defaults below; a
// negative SampleEvery or SyncStall disables that feature outright.
type Config struct {
	// Capacity is the slot count of each journal ring (pinned and
	// sampled).
	Capacity int
	// SampleEvery keeps one in every N unpinned traces.
	SampleEvery int
	// SlowTx pins any trace whose total reaches the threshold; zero
	// disables slow pinning (mirroring WithSlowTxThreshold).
	SlowTx time.Duration
	// SyncStall is the durable-wait duration past which the engine pins
	// a WAL sync stall.
	SyncStall time.Duration
	// BurstCount anomalies (deadlocks + sheds) within BurstWindow
	// invoke the burst handler once per window.
	BurstWindow time.Duration
	BurstCount  int
	// Events is the flight-recorder ring capacity.
	Events int
}

// Defaults applied by New for zero Config fields.
const (
	DefaultCapacity    = 256
	DefaultSampleEvery = 16
	DefaultSyncStall   = 50 * time.Millisecond
	DefaultBurstCount  = 32
	DefaultBurstWindow = 10 * time.Second
	DefaultEvents      = 128
)

// Stats are the tracer's monotonic counters.
type Stats struct {
	Started   int64 `json:"started"`
	Completed int64 `json:"completed"`
	Pinned    int64 `json:"pinned"`
	Sampled   int64 `json:"sampled"`
	Bursts    int64 `json:"bursts"`
}

// Sub returns the window between prior and s.
func (s Stats) Sub(prior Stats) Stats {
	return Stats{
		Started:   s.Started - prior.Started,
		Completed: s.Completed - prior.Completed,
		Pinned:    s.Pinned - prior.Pinned,
		Sampled:   s.Sampled - prior.Sampled,
		Bursts:    s.Bursts - prior.Bursts,
	}
}

// Tracer mints trace IDs, applies the tail-retention policy, and owns
// the journal rings plus the flight recorder.  All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Tracer struct {
	cfg    Config
	idBase uint64
	idSeq  atomic.Uint64

	sampleSeq atomic.Uint64

	started   atomic.Int64
	completed atomic.Int64
	pinnedN   atomic.Int64
	sampledN  atomic.Int64
	burstsN   atomic.Int64

	pinned  ring[Trace]
	sampled ring[Trace]
	flight  ring[Event]

	winStart atomic.Int64 // unix nanos of the current burst window
	winCount atomic.Int64
	onBurst  atomic.Pointer[func(n int64)]
}

// New builds a Tracer, applying defaults for zero Config fields.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.SyncStall == 0 {
		cfg.SyncStall = DefaultSyncStall
	}
	if cfg.BurstCount <= 0 {
		cfg.BurstCount = DefaultBurstCount
	}
	if cfg.BurstWindow <= 0 {
		cfg.BurstWindow = DefaultBurstWindow
	}
	if cfg.Events <= 0 {
		cfg.Events = DefaultEvents
	}
	t := &Tracer{cfg: cfg, idBase: mix(uint64(time.Now().UnixNano()))}
	t.pinned.init(cfg.Capacity)
	t.sampled.init(cfg.Capacity)
	t.flight.init(cfg.Events)
	return t
}

// mix is splitmix64's finalizer: spreads a counter into an ID that does
// not collide trivially across processes started the same nanosecond.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MintID returns a fresh nonzero trace ID.
func (t *Tracer) MintID() ID {
	if t == nil {
		return 0
	}
	id := ID(mix(t.idBase + t.idSeq.Add(1)))
	if id == 0 {
		id = 1
	}
	return id
}

// Start begins a trace.  A zero id means the caller (an untraced or
// pre-tracing client) sent none, so one is minted here.  Nil tracer →
// nil trace, and every Trace method tolerates that.
func (t *Tracer) Start(id ID, kind string) *Trace {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	if id == 0 {
		id = t.MintID()
	}
	return &Trace{id: id, kind: kind, start: time.Now()}
}

// Finish seals the trace and applies tail-based retention: pin if slow,
// keep pinned traces unconditionally, sample the rest 1-in-N.  After
// Finish the trace is immutable and may be read by journal snapshots.
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.total = time.Since(tr.start)
	if t.cfg.SlowTx > 0 && tr.total >= t.cfg.SlowTx {
		tr.Pin(PinSlow, "total "+tr.total.String())
	}
	t.completed.Add(1)
	if len(tr.pins) > 0 {
		t.pinnedN.Add(1)
		t.pinned.append(tr)
		if tr.anomalous() {
			t.burstTick()
		}
		return
	}
	if n := t.cfg.SampleEvery; n > 0 && t.sampleSeq.Add(1)%uint64(n) == 0 {
		t.sampledN.Add(1)
		t.sampled.append(tr)
	}
}

// SlowTx returns the slow-pin threshold (0 when disabled or nil).
func (t *Tracer) SlowTx() time.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.SlowTx
}

// SyncStall returns the WAL sync-stall pin threshold (0 when disabled
// or nil).
func (t *Tracer) SyncStall() time.Duration {
	if t == nil || t.cfg.SyncStall < 0 {
		return 0
	}
	return t.cfg.SyncStall
}

// Stats returns the tracer's counters (zero on nil).
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Started:   t.started.Load(),
		Completed: t.completed.Load(),
		Pinned:    t.pinnedN.Load(),
		Sampled:   t.sampledN.Load(),
		Bursts:    t.burstsN.Load(),
	}
}

// OnBurst installs the anomaly-burst handler, invoked (on its own
// goroutine) at most once per window when BurstCount deadlocks/sheds
// accumulate within BurstWindow.  faced uses it to dump the flight
// recorder without waiting for an operator's SIGQUIT.
func (t *Tracer) OnBurst(fn func(n int64)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.onBurst.Store(nil)
		return
	}
	// Store a dedicated copy: h's only use is the atomic pointer, so the
	// parameter itself is never mixed between plain and atomic access.
	h := fn
	t.onBurst.Store(&h)
}

func (t *Tracer) burstTick() {
	now := time.Now().UnixNano()
	ws := t.winStart.Load()
	if now-ws > int64(t.cfg.BurstWindow) {
		if t.winStart.CompareAndSwap(ws, now) {
			t.winCount.Store(0)
		}
	}
	// Exactly one ticker observes the threshold crossing, so the
	// handler fires once per window even under concurrent anomalies.
	if int(t.winCount.Add(1)) == t.cfg.BurstCount {
		t.burstsN.Add(1)
		if h := t.onBurst.Load(); h != nil {
			go (*h)(int64(t.cfg.BurstCount))
		}
	}
}
