package trace

import (
	"sync/atomic"
	"time"
)

// ring is a fixed-size overwrite-oldest journal.  Appending claims a
// slot with one atomic add and publishes with one atomic pointer store;
// snapshots load each slot atomically.  A reader racing a writer may
// see the slot's previous occupant — every occupant is an immutable,
// fully-published value, so snapshots are always coherent, merely not
// instantaneous.
type ring[T any] struct {
	slots []atomic.Pointer[T]
	next  atomic.Uint64
}

func (r *ring[T]) init(n int) {
	r.slots = make([]atomic.Pointer[T], n)
}

func (r *ring[T]) append(v *T) {
	if len(r.slots) == 0 {
		return
	}
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(v)
}

// snapshot returns the current occupants oldest-first.
func (r *ring[T]) snapshot() []*T {
	if len(r.slots) == 0 {
		return nil
	}
	n := r.next.Load()
	size := uint64(len(r.slots))
	start := uint64(0)
	count := n
	if n > size {
		start = n % size
		count = size
	}
	out := make([]*T, 0, count)
	for k := uint64(0); k < count; k++ {
		if v := r.slots[(start+k)%size].Load(); v != nil {
			out = append(out, v)
		}
	}
	return out
}

// Event is one flight-recorder entry: lifecycle and recovery-timeline
// moments (open, WAL replay phases, checkpoint, close) that give an
// anomaly dump its "what was the engine doing" context.
type Event struct {
	Time time.Time `json:"time"`
	Msg  string    `json:"msg"`
}

// Event records a flight-recorder entry.  No-op on a nil receiver.
func (t *Tracer) Event(msg string) {
	if t == nil {
		return
	}
	t.flight.append(&Event{Time: time.Now(), Msg: msg})
}

// Events returns the flight-recorder contents oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	ptrs := t.flight.snapshot()
	out := make([]Event, len(ptrs))
	for i, p := range ptrs {
		out[i] = *p
	}
	return out
}

// TraceJSON is the serialized form of one completed trace, as served by
// /debug/traces and the flight-recorder dump.
type TraceJSON struct {
	ID             string        `json:"id"`
	Kind           string        `json:"kind"`
	Start          time.Time     `json:"start"`
	Total          time.Duration `json:"total_ns"`
	Pins           []PinReason   `json:"pins,omitempty"`
	Spans          []Span        `json:"spans,omitempty"`
	TruncatedSpans int           `json:"truncated_spans,omitempty"`
}

// JSON converts a completed trace for serialization.
func (t *Trace) JSON() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	return TraceJSON{
		ID:             t.id.String(),
		Kind:           t.kind,
		Start:          t.start,
		Total:          t.total,
		Pins:           t.pins,
		Spans:          t.spans,
		TruncatedSpans: t.truncated,
	}
}

// Dump is the full journal in serializable form: counters, both
// retention rings, and the flight-recorder timeline.
type Dump struct {
	Stats   Stats       `json:"stats"`
	Pinned  []TraceJSON `json:"pinned"`
	Sampled []TraceJSON `json:"sampled"`
	Events  []Event     `json:"events"`
}

// Pinned returns the pinned ring's traces oldest-first.
func (t *Tracer) Pinned() []*Trace {
	if t == nil {
		return nil
	}
	return t.pinned.snapshot()
}

// Sampled returns the sampled ring's traces oldest-first.
func (t *Tracer) Sampled() []*Trace {
	if t == nil {
		return nil
	}
	return t.sampled.snapshot()
}

// Dump snapshots the whole journal.  Nil tracer → zero Dump, so a
// disabled endpoint can still serve a well-formed document.
func (t *Tracer) Dump() Dump {
	d := Dump{Pinned: []TraceJSON{}, Sampled: []TraceJSON{}, Events: []Event{}}
	if t == nil {
		return d
	}
	d.Stats = t.Stats()
	for _, tr := range t.pinned.snapshot() {
		d.Pinned = append(d.Pinned, tr.JSON())
	}
	for _, tr := range t.sampled.snapshot() {
		d.Sampled = append(d.Sampled, tr.JSON())
	}
	if ev := t.Events(); len(ev) > 0 {
		d.Events = ev
	}
	return d
}
