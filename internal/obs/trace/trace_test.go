package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceNilSafety(t *testing.T) {
	var tr *Tracer
	if got := tr.Start(7, "get"); got != nil {
		t.Fatalf("nil tracer Start = %v, want nil", got)
	}
	if id := tr.MintID(); id != 0 {
		t.Fatalf("nil tracer MintID = %v, want 0", id)
	}
	tr.Finish(nil)
	tr.Event("ignored")
	tr.OnBurst(func(int64) {})
	if s := tr.Stats(); s != (Stats{}) {
		t.Fatalf("nil tracer Stats = %+v, want zero", s)
	}
	if d := tr.Dump(); len(d.Pinned) != 0 || len(d.Sampled) != 0 {
		t.Fatalf("nil tracer Dump = %+v, want empty", d)
	}
	if tr.SlowTx() != 0 || tr.SyncStall() != 0 {
		t.Fatal("nil tracer thresholds should be zero")
	}

	var trace *Trace
	trace.Span("x", time.Now(), time.Millisecond, 0, "")
	trace.Pin(PinSlow, "")
	if trace.ID() != 0 || trace.Kind() != "" || trace.Total() != 0 {
		t.Fatal("nil trace accessors should be zero")
	}
	if trace.Spans() != nil || trace.Pins() != nil {
		t.Fatal("nil trace slices should be nil")
	}
	if j := trace.JSON(); j.ID != "" {
		t.Fatalf("nil trace JSON = %+v, want zero", j)
	}
}

func TestTraceSpansRecordOffsets(t *testing.T) {
	tc := New(Config{})
	tr := tc.Start(0, "set")
	if tr.ID() == 0 {
		t.Fatal("Start with id 0 should mint an ID")
	}
	t0 := tr.Start().Add(2 * time.Millisecond)
	tr.Span("lock_wait", t0, time.Millisecond, 42, "X")
	tr.Span("wal_append", t0.Add(time.Millisecond), 3*time.Millisecond, 0, "")
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "lock_wait" || spans[0].Page != 42 || spans[0].Note != "X" {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[0].Start != 2*time.Millisecond || spans[0].Dur != time.Millisecond {
		t.Fatalf("span 0 timing = %+v", spans[0])
	}
	if spans[1].Start != 3*time.Millisecond {
		t.Fatalf("span 1 offset = %v, want 3ms", spans[1].Start)
	}
	// Offsets before the trace start clamp to zero rather than going
	// negative in the JSON.
	tr.Span("early", tr.Start().Add(-time.Second), time.Microsecond, 0, "")
	if got := tr.Spans()[2].Start; got != 0 {
		t.Fatalf("pre-start span offset = %v, want 0", got)
	}
}

func TestTraceSpanTruncation(t *testing.T) {
	tc := New(Config{})
	tr := tc.Start(0, "batch")
	for i := 0; i < maxSpans+10; i++ {
		tr.Span("buffer", tr.Start(), time.Microsecond, uint64(i), "")
	}
	if len(tr.Spans()) != maxSpans {
		t.Fatalf("got %d spans, want cap %d", len(tr.Spans()), maxSpans)
	}
	if tr.JSON().TruncatedSpans != 10 {
		t.Fatalf("truncated = %d, want 10", tr.JSON().TruncatedSpans)
	}
}

func TestTracePinOncePerKind(t *testing.T) {
	tc := New(Config{})
	tr := tc.Start(0, "commit")
	tr.Pin(PinDeadlock, "cycle A")
	tr.Pin(PinDeadlock, "cycle B")
	tr.Pin(PinStall, "durable wait 80ms")
	if got := len(tr.Pins()); got != 2 {
		t.Fatalf("got %d pins, want 2 (one per kind)", got)
	}
	if tr.Pins()[0].Detail != "cycle A" {
		t.Fatalf("first pin detail = %q, want the original", tr.Pins()[0].Detail)
	}
}

func TestTraceTailRetention(t *testing.T) {
	tc := New(Config{SampleEvery: 4, SlowTx: time.Hour})
	// 8 unpinned fast traces: exactly 2 sampled (1-in-4), none pinned.
	for i := 0; i < 8; i++ {
		tc.Finish(tc.Start(0, "get"))
	}
	st := tc.Stats()
	if st.Completed != 8 || st.Pinned != 0 || st.Sampled != 2 {
		t.Fatalf("stats after fast traces = %+v", st)
	}
	// A pinned trace bypasses sampling.
	tr := tc.Start(0, "set")
	tr.Pin(PinShed, "admission queue full")
	tc.Finish(tr)
	st = tc.Stats()
	if st.Pinned != 1 {
		t.Fatalf("pinned = %d, want 1", st.Pinned)
	}
	pinned := tc.Pinned()
	if len(pinned) != 1 || pinned[0].Pins()[0].Kind != PinShed {
		t.Fatalf("pinned ring = %+v", pinned)
	}
	if pinned[0].Total() <= 0 {
		t.Fatal("Finish should seal a positive total")
	}
}

func TestTraceSlowPinThreshold(t *testing.T) {
	tc := New(Config{SlowTx: time.Nanosecond})
	tr := tc.Start(0, "set")
	time.Sleep(100 * time.Microsecond)
	tc.Finish(tr)
	pinned := tc.Pinned()
	if len(pinned) != 1 {
		t.Fatalf("slow trace not pinned: %+v", tc.Stats())
	}
	if pinned[0].Pins()[0].Kind != PinSlow {
		t.Fatalf("pin kind = %v, want slow_tx", pinned[0].Pins()[0].Kind)
	}
	// SlowTx 0 disables slow pinning entirely.
	off := New(Config{SlowTx: 0, SampleEvery: -1})
	tr = off.Start(0, "set")
	time.Sleep(100 * time.Microsecond)
	off.Finish(tr)
	if got := off.Stats().Pinned; got != 0 {
		t.Fatalf("pinned with SlowTx=0: %d", got)
	}
}

func TestTraceMintIDsUnique(t *testing.T) {
	tc := New(Config{})
	seen := make(map[ID]bool)
	for i := 0; i < 10000; i++ {
		id := tc.MintID()
		if id == 0 {
			t.Fatal("minted zero ID")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %v after %d mints", id, i)
		}
		seen[id] = true
	}
}

func TestTraceAdoptsWireID(t *testing.T) {
	tc := New(Config{})
	tr := tc.Start(0xfeed, "get")
	if tr.ID() != 0xfeed {
		t.Fatalf("trace ID = %v, want the wire-supplied 0xfeed", tr.ID())
	}
	if got := tr.ID().String(); got != "000000000000feed" {
		t.Fatalf("ID string = %q", got)
	}
}

func TestJournalRingOverwritesOldest(t *testing.T) {
	tc := New(Config{Capacity: 4, SampleEvery: -1})
	for i := 0; i < 10; i++ {
		tr := tc.Start(ID(i+1), "op")
		tr.Pin(PinSlow, fmt.Sprint(i))
		tc.Finish(tr)
	}
	pinned := tc.Pinned()
	if len(pinned) != 4 {
		t.Fatalf("ring holds %d, want 4", len(pinned))
	}
	// Oldest-first: traces 7,8,9,10 survive.
	for i, tr := range pinned {
		if want := ID(i + 7); tr.ID() != want {
			t.Fatalf("slot %d = trace %v, want %v", i, tr.ID(), want)
		}
	}
}

func TestJournalConcurrentAppendSnapshot(t *testing.T) {
	tc := New(Config{Capacity: 32, SampleEvery: 2})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr := tc.Start(0, "op")
				tr.Span("lock_wait", tr.Start(), time.Microsecond, uint64(i), "S")
				if i%3 == 0 {
					tr.Pin(PinDeadlock, "cycle")
				}
				tc.Finish(tr)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for {
		d := tc.Dump()
		for _, j := range d.Pinned {
			if j.ID == "" || j.Total <= 0 {
				t.Errorf("incoherent pinned trace in snapshot: %+v", j)
			}
		}
		select {
		case <-done:
			goto settled
		default:
		}
	}
settled:
	st := tc.Stats()
	if st.Completed != st.Started {
		t.Fatalf("completed %d != started %d", st.Completed, st.Started)
	}
	if st.Pinned == 0 || st.Sampled == 0 {
		t.Fatalf("expected both retention paths exercised: %+v", st)
	}
}

func TestJournalDumpJSONRoundTrip(t *testing.T) {
	tc := New(Config{Capacity: 8})
	tr := tc.Start(0xabc, "set")
	tr.Span("durable_wait", tr.Start(), 80*time.Millisecond, 0, "")
	tr.Pin(PinStall, "durable wait 80ms")
	tc.Finish(tr)
	tc.Event("open: complete")

	raw, err := json.Marshal(tc.Dump())
	if err != nil {
		t.Fatal(err)
	}
	var back Dump
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Pinned) != 1 || back.Pinned[0].ID != "0000000000000abc" {
		t.Fatalf("round-tripped dump = %+v", back)
	}
	if back.Pinned[0].Pins[0].Kind != PinStall {
		t.Fatalf("pin kind lost: %+v", back.Pinned[0].Pins)
	}
	if len(back.Events) != 1 || !strings.Contains(back.Events[0].Msg, "open") {
		t.Fatalf("events lost: %+v", back.Events)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	tc := New(Config{Events: 4})
	for i := 0; i < 9; i++ {
		tc.Event(fmt.Sprintf("event %d", i))
	}
	ev := tc.Events()
	if len(ev) != 4 {
		t.Fatalf("flight ring holds %d, want 4", len(ev))
	}
	for i, e := range ev {
		if want := fmt.Sprintf("event %d", i+5); e.Msg != want {
			t.Fatalf("event %d = %q, want %q", i, e.Msg, want)
		}
		if e.Time.IsZero() {
			t.Fatal("event missing timestamp")
		}
	}
}

func TestFlightRecorderBurstTrigger(t *testing.T) {
	tc := New(Config{BurstCount: 3, BurstWindow: time.Minute, SampleEvery: -1})
	fired := make(chan int64, 4)
	tc.OnBurst(func(n int64) { fired <- n })
	for i := 0; i < 5; i++ {
		tr := tc.Start(0, "set")
		tr.Pin(PinShed, "queue full")
		tc.Finish(tr)
	}
	select {
	case n := <-fired:
		if n != 3 {
			t.Fatalf("burst handler got n=%d, want 3", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("burst handler never fired")
	}
	// Exactly once within the window, even past the threshold.
	select {
	case <-fired:
		t.Fatal("burst handler fired twice in one window")
	case <-time.After(50 * time.Millisecond):
	}
	if got := tc.Stats().Bursts; got != 1 {
		t.Fatalf("bursts = %d, want 1", got)
	}
	// Slow pins do not feed the burst window — only deadlocks/sheds.
	tc2 := New(Config{BurstCount: 1, BurstWindow: time.Minute, SlowTx: time.Nanosecond})
	tc2.OnBurst(func(n int64) { fired <- n })
	tr := tc2.Start(0, "set")
	time.Sleep(10 * time.Microsecond)
	tc2.Finish(tr)
	select {
	case <-fired:
		t.Fatal("slow pin should not trigger the anomaly burst handler")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestFlightRecConcurrentEvents(t *testing.T) {
	tc := New(Config{Events: 16})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tc.Event(fmt.Sprintf("w%d e%d", w, i))
				if i%10 == 0 {
					tc.Events()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(tc.Events()); got != 16 {
		t.Fatalf("flight ring holds %d, want 16", got)
	}
}
