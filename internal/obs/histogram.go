package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout: values below 2^subBits nanoseconds get one bucket each;
// above that, each power of two is split into 2^subBits sub-buckets, so
// the relative quantization error is bounded by 2^-subBits (~6.25%).
const (
	subBits    = 4
	subBuckets = 1 << subBits // 16
	// maxExp is the largest power of two a positive int64 duration can
	// reach (bit 62; ~292 years of nanoseconds).
	maxExp = 62
	// numBuckets covers [0, 2^subBits) linearly plus subBuckets per
	// exponent in [subBits, maxExp].
	numBuckets = subBuckets + (maxExp-subBits+1)*subBuckets
)

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // >= subBits
	sub := int((v >> (uint(exp) - subBits)) & (subBuckets - 1))
	return subBuckets + (exp-subBits)*subBuckets + sub
}

// bucketUpper returns the inclusive upper bound (ns) of a bucket, the
// value quantiles report so they never understate a latency.
func bucketUpper(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := uint(subBits + (i-subBuckets)/subBuckets)
	sub := int64((i - subBuckets) % subBuckets)
	lower := int64(1)<<exp + sub<<(exp-subBits)
	return lower + int64(1)<<(exp-subBits) - 1
}

// Histogram is a lock-free log-bucketed latency histogram: atomic
// per-bucket counters with an atomic count/sum/max, safe for any number
// of concurrent writers and snapshotters.  A nil Histogram ignores
// Observe and yields an empty Snapshot, which is what makes disabled
// observability a nil-check fast path.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
	// exemplars holds, per bucket, the trace ID of the last observation
	// recorded through ObserveExemplar, so a latency bucket links to a
	// concrete trace in the journal.  Allocated lazily on the first
	// exemplar so plain histograms stay at their PR 8 size.
	exemplars atomic.Pointer[[numBuckets]atomic.Uint64]
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration.  Negative durations clamp to zero.
// No-op on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.observe(int64(d))
}

// ObserveExemplar records one duration and remembers trace as the
// observed bucket's exemplar, so the bucket a slow request lands in
// points back at that request's trace in the journal.  A zero trace ID
// records no exemplar.  No-op on a nil receiver.
func (h *Histogram) ObserveExemplar(d time.Duration, trace uint64) {
	if h == nil {
		return
	}
	i := h.observe(int64(d))
	if trace == 0 {
		return
	}
	ex := h.exemplars.Load()
	if ex == nil {
		ex = new([numBuckets]atomic.Uint64)
		if !h.exemplars.CompareAndSwap(nil, ex) {
			ex = h.exemplars.Load()
		}
	}
	ex[i].Store(trace)
}

func (h *Histogram) observe(v int64) int {
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return i
		}
	}
}

// Snapshot returns a point-in-time copy of the histogram.  Concurrent
// Observes may land between the bucket reads — each bucket is itself
// coherent, and Count is recomputed from the buckets so the snapshot's
// own invariants hold.  A nil receiver yields an empty snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Max = h.max.Load()
	s.Sum = h.sum.Load()
	s.Buckets = make([]int64, numBuckets)
	var count int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		count += n
	}
	s.Count = count
	if ex := h.exemplars.Load(); ex != nil {
		s.Exemplars = make([]uint64, numBuckets)
		for i := range ex {
			s.Exemplars[i] = ex[i].Load()
		}
	}
	return s
}

// HistSnapshot is a mergeable, subtractable copy of a Histogram.  The
// zero value is an empty snapshot.
type HistSnapshot struct {
	Count int64
	// Sum and Max are nanoseconds.
	Sum     int64
	Max     int64
	Buckets []int64
	// Exemplars is the per-bucket last trace ID (0 = none), present only
	// when the histogram recorded any through ObserveExemplar.
	Exemplars []uint64
}

// Sub returns the histogram of the window between prior and s (counter
// subtraction, the engine's standard measurement idiom).  Max cannot be
// windowed, so the later snapshot's max is kept.
func (s HistSnapshot) Sub(prior HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count: s.Count - prior.Count,
		Sum:   s.Sum - prior.Sum,
		Max:   s.Max,
	}
	if len(s.Buckets) == 0 {
		return out
	}
	out.Buckets = make([]int64, len(s.Buckets))
	copy(out.Buckets, s.Buckets)
	for i := range prior.Buckets {
		if i < len(out.Buckets) {
			out.Buckets[i] -= prior.Buckets[i]
		}
	}
	// Exemplars are point samples, not counters: the later snapshot's
	// are the window's.
	out.Exemplars = s.Exemplars
	return out
}

// Merge returns the union of two snapshots (for folding per-kind
// histograms into an aggregate).
func (s HistSnapshot) Merge(other HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count: s.Count + other.Count,
		Sum:   s.Sum + other.Sum,
		Max:   s.Max,
	}
	if other.Max > out.Max {
		out.Max = other.Max
	}
	n := len(s.Buckets)
	if len(other.Buckets) > n {
		n = len(other.Buckets)
	}
	if n == 0 {
		return out
	}
	out.Buckets = make([]int64, n)
	copy(out.Buckets, s.Buckets)
	for i := range other.Buckets {
		out.Buckets[i] += other.Buckets[i]
	}
	// Keep s's exemplars, filling gaps from other: "a" trace per bucket
	// matters more than which fold contributed it.
	if len(s.Exemplars) > 0 || len(other.Exemplars) > 0 {
		out.Exemplars = make([]uint64, n)
		copy(out.Exemplars, s.Exemplars)
		for i := range other.Exemplars {
			if i < n && out.Exemplars[i] == 0 {
				out.Exemplars[i] = other.Exemplars[i]
			}
		}
	}
	return out
}

// Quantile returns the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket containing it; 0 on an empty snapshot.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count <= 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return time.Duration(s.Max)
}

// Summary condenses the snapshot into the quantiles reports carry.
func (s HistSnapshot) Summary() Summary {
	sum := Summary{
		Count: s.Count,
		Max:   time.Duration(s.Max),
	}
	if s.Count > 0 {
		sum.Mean = time.Duration(s.Sum / s.Count)
		sum.P50 = s.Quantile(0.50)
		sum.P95 = s.Quantile(0.95)
		sum.P99 = s.Quantile(0.99)
		sum.P999 = s.Quantile(0.999)
	}
	return sum
}

// ExemplarFor returns the trace ID remembered by the bucket a duration
// of d would land in (0 when the snapshot has no exemplars or the
// bucket recorded none).  This is the /debug/traces lookup: "the p99 is
// X — which request was that?".
func (s HistSnapshot) ExemplarFor(d time.Duration) uint64 {
	if len(s.Exemplars) == 0 {
		return 0
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	if i >= len(s.Exemplars) {
		return 0
	}
	return s.Exemplars[i]
}

// Exemplar pairs one non-empty latency bucket with the last trace that
// landed in it.
type Exemplar struct {
	// UpperNS is the bucket's inclusive upper bound in nanoseconds.
	UpperNS int64 `json:"upper_ns"`
	// Count is the bucket's observation count at snapshot time.
	Count int64 `json:"count"`
	// TraceID is the last trace recorded into the bucket, rendered the
	// way trace IDs print everywhere else.
	TraceID string `json:"trace_id"`
}

// ExemplarList returns the buckets that both saw traffic and remember a
// trace, slowest-last — the serialized form /debug/traces serves.
func (s HistSnapshot) ExemplarList() []Exemplar {
	var out []Exemplar
	for i, ex := range s.Exemplars {
		if ex == 0 || i >= len(s.Buckets) || s.Buckets[i] == 0 {
			continue
		}
		out = append(out, Exemplar{
			UpperNS: bucketUpper(i),
			Count:   s.Buckets[i],
			TraceID: fmt.Sprintf("%016x", ex),
		})
	}
	return out
}

// Summary is the condensed form of a histogram window: count, mean and
// the latency quantiles every report in this repository uses.  All
// durations are wall-clock nanoseconds in JSON.
type Summary struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
}
