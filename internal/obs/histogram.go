package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout: values below 2^subBits nanoseconds get one bucket each;
// above that, each power of two is split into 2^subBits sub-buckets, so
// the relative quantization error is bounded by 2^-subBits (~6.25%).
const (
	subBits    = 4
	subBuckets = 1 << subBits // 16
	// maxExp is the largest power of two a positive int64 duration can
	// reach (bit 62; ~292 years of nanoseconds).
	maxExp = 62
	// numBuckets covers [0, 2^subBits) linearly plus subBuckets per
	// exponent in [subBits, maxExp].
	numBuckets = subBuckets + (maxExp-subBits+1)*subBuckets
)

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // >= subBits
	sub := int((v >> (uint(exp) - subBits)) & (subBuckets - 1))
	return subBuckets + (exp-subBits)*subBuckets + sub
}

// bucketUpper returns the inclusive upper bound (ns) of a bucket, the
// value quantiles report so they never understate a latency.
func bucketUpper(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := uint(subBits + (i-subBuckets)/subBuckets)
	sub := int64((i - subBuckets) % subBuckets)
	lower := int64(1)<<exp + sub<<(exp-subBits)
	return lower + int64(1)<<(exp-subBits) - 1
}

// Histogram is a lock-free log-bucketed latency histogram: atomic
// per-bucket counters with an atomic count/sum/max, safe for any number
// of concurrent writers and snapshotters.  A nil Histogram ignores
// Observe and yields an empty Snapshot, which is what makes disabled
// observability a nil-check fast path.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration.  Negative durations clamp to zero.
// No-op on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy of the histogram.  Concurrent
// Observes may land between the bucket reads — each bucket is itself
// coherent, and Count is recomputed from the buckets so the snapshot's
// own invariants hold.  A nil receiver yields an empty snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Max = h.max.Load()
	s.Sum = h.sum.Load()
	s.Buckets = make([]int64, numBuckets)
	var count int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		count += n
	}
	s.Count = count
	return s
}

// HistSnapshot is a mergeable, subtractable copy of a Histogram.  The
// zero value is an empty snapshot.
type HistSnapshot struct {
	Count int64
	// Sum and Max are nanoseconds.
	Sum     int64
	Max     int64
	Buckets []int64
}

// Sub returns the histogram of the window between prior and s (counter
// subtraction, the engine's standard measurement idiom).  Max cannot be
// windowed, so the later snapshot's max is kept.
func (s HistSnapshot) Sub(prior HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count: s.Count - prior.Count,
		Sum:   s.Sum - prior.Sum,
		Max:   s.Max,
	}
	if len(s.Buckets) == 0 {
		return out
	}
	out.Buckets = make([]int64, len(s.Buckets))
	copy(out.Buckets, s.Buckets)
	for i := range prior.Buckets {
		if i < len(out.Buckets) {
			out.Buckets[i] -= prior.Buckets[i]
		}
	}
	return out
}

// Merge returns the union of two snapshots (for folding per-kind
// histograms into an aggregate).
func (s HistSnapshot) Merge(other HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count: s.Count + other.Count,
		Sum:   s.Sum + other.Sum,
		Max:   s.Max,
	}
	if other.Max > out.Max {
		out.Max = other.Max
	}
	n := len(s.Buckets)
	if len(other.Buckets) > n {
		n = len(other.Buckets)
	}
	if n == 0 {
		return out
	}
	out.Buckets = make([]int64, n)
	copy(out.Buckets, s.Buckets)
	for i := range other.Buckets {
		out.Buckets[i] += other.Buckets[i]
	}
	return out
}

// Quantile returns the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket containing it; 0 on an empty snapshot.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count <= 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return time.Duration(s.Max)
}

// Summary condenses the snapshot into the quantiles reports carry.
func (s HistSnapshot) Summary() Summary {
	sum := Summary{
		Count: s.Count,
		Max:   time.Duration(s.Max),
	}
	if s.Count > 0 {
		sum.Mean = time.Duration(s.Sum / s.Count)
		sum.P50 = s.Quantile(0.50)
		sum.P95 = s.Quantile(0.95)
		sum.P99 = s.Quantile(0.99)
		sum.P999 = s.Quantile(0.999)
	}
	return sum
}

// Summary is the condensed form of a histogram window: count, mean and
// the latency quantiles every report in this repository uses.  All
// durations are wall-clock nanoseconds in JSON.
type Summary struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
}
