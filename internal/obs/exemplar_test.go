package obs

import (
	"sync"
	"testing"
	"time"
)

func TestExemplarLinksBucketToTrace(t *testing.T) {
	h := NewHistogram()
	h.ObserveExemplar(3*time.Millisecond, 0xdead)
	h.ObserveExemplar(90*time.Millisecond, 0xbeef)
	s := h.Snapshot()
	if got := s.ExemplarFor(3 * time.Millisecond); got != 0xdead {
		t.Fatalf("3ms bucket exemplar = %x, want dead", got)
	}
	if got := s.ExemplarFor(90 * time.Millisecond); got != 0xbeef {
		t.Fatalf("90ms bucket exemplar = %x, want beef", got)
	}
	// The last observation into a bucket wins.
	h.ObserveExemplar(3*time.Millisecond, 0xcafe)
	if got := h.Snapshot().ExemplarFor(3 * time.Millisecond); got != 0xcafe {
		t.Fatalf("exemplar not overwritten: %x", got)
	}
}

func TestExemplarZeroTraceRecordsNothing(t *testing.T) {
	h := NewHistogram()
	h.ObserveExemplar(time.Millisecond, 0)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1 (observation still lands)", s.Count)
	}
	if s.Exemplars != nil {
		t.Fatal("zero trace ID should not allocate the exemplar array")
	}
	if s.ExemplarFor(time.Millisecond) != 0 {
		t.Fatal("expected no exemplar")
	}
	if got := s.ExemplarList(); len(got) != 0 {
		t.Fatalf("ExemplarList = %+v, want empty", got)
	}
}

func TestExemplarPlainObserveUnchanged(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	if s := h.Snapshot(); s.Exemplars != nil {
		t.Fatal("plain Observe must not allocate exemplars")
	}
	var nilH *Histogram
	nilH.ObserveExemplar(time.Millisecond, 1) // must not panic
}

func TestExemplarList(t *testing.T) {
	h := NewHistogram()
	h.ObserveExemplar(time.Microsecond, 0x1)
	h.ObserveExemplar(time.Second, 0x2)
	h.Observe(time.Minute) // counted but no exemplar
	list := h.Snapshot().ExemplarList()
	if len(list) != 2 {
		t.Fatalf("got %d exemplars, want 2: %+v", len(list), list)
	}
	if list[0].TraceID != "0000000000000001" || list[1].TraceID != "0000000000000002" {
		t.Fatalf("exemplar IDs = %+v", list)
	}
	if list[0].UpperNS >= list[1].UpperNS {
		t.Fatal("exemplars should come slowest-last")
	}
	if list[0].Count != 1 || list[1].Count != 1 {
		t.Fatalf("bucket counts = %+v", list)
	}
}

func TestExemplarWindowAndMerge(t *testing.T) {
	h := NewHistogram()
	before := h.Snapshot()
	h.ObserveExemplar(time.Millisecond, 0x7)
	window := h.Snapshot().Sub(before)
	if got := window.ExemplarFor(time.Millisecond); got != 0x7 {
		t.Fatalf("windowed exemplar = %x, want 7", got)
	}
	other := NewHistogram()
	other.ObserveExemplar(time.Second, 0x8)
	merged := window.Merge(other.Snapshot())
	if merged.ExemplarFor(time.Millisecond) != 0x7 || merged.ExemplarFor(time.Second) != 0x8 {
		t.Fatalf("merged exemplars lost: %+v", merged.ExemplarList())
	}
}

func TestExemplarConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.ObserveExemplar(time.Duration(i)*time.Microsecond, uint64(w*1000+i+1))
				if i%20 == 0 {
					h.Snapshot().ExemplarList()
				}
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 1600 {
		t.Fatalf("count = %d, want 1600", s.Count)
	}
	if len(s.ExemplarList()) == 0 {
		t.Fatal("expected exemplars after concurrent recording")
	}
}
