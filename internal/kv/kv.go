// Package kv implements persistent key-value namespaces on top of the
// engine — the data model the network server (internal/server) exposes.
//
// Unlike the TPC-C heap catalog (internal/heap), whose page lists live
// only in process memory, every structure here is page-resident and
// rebuilt from pages on reopen, so a served database survives
// kill-and-reopen with no side files:
//
//   - Page 1 is the catalog: a magic number plus one fixed-size entry per
//     namespace (name, B-tree root, meta-chain head).
//   - Each namespace keeps its records in slotted heap pages and indexes
//     them with a B-tree (uint64 key → RID).
//   - The ids of a namespace's heap pages are recorded in a chain of
//     kv-meta pages, so reopen can rediscover the insertion frontier.
//
// All record access happens inside engine transactions supplied by the
// caller (one server request or batch = one View/Update), so namespaces
// inherit the engine's locking, WAL logging and crash recovery as-is.
//
// Overwrites of a key with a value of the same or smaller size update the
// record in place.  This matters under sustained traffic: slotted pages
// never reclaim tombstoned cell space, so the delete+reinsert path grows
// the database while in-place updates keep it stable.
package kv

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/reprolab/face/internal/btree"
	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/page"
)

// catalogMagic identifies an initialised KV catalog page.
const catalogMagic = 0xFACE4B56 // "KV"

// Layout constants.
const (
	// MaxNameLen bounds namespace names so a catalog entry stays fixed
	// size.
	MaxNameLen = 31

	// MaxValueSize bounds record values.  A record is recHeader bytes of
	// key and value length plus the value, and must fit a fresh slotted
	// page together with its slot.
	MaxValueSize = page.PayloadSize - slotOverhead - recHeader

	// recHeader is the stored record prefix: key u64, value length u32.
	// The explicit length lets an overwrite shrink and regrow a value
	// within the cell's allocated size without ever reinserting.
	recHeader = 8 + 4

	// slotOverhead is the slotted-page cost of one record beyond its
	// bytes (the slot itself).
	slotOverhead = 4

	// Catalog page payload: magic u32, count u16, then fixed entries.
	catalogHeader = 4 + 2
	// Catalog entry: namelen u8, name [MaxNameLen]byte, tree root u64,
	// meta head u64.
	catalogEntrySize = 1 + MaxNameLen + 8 + 8
	maxNamespaces    = (page.PayloadSize - catalogHeader) / catalogEntrySize

	// Meta page payload: count u16, next u64, then count page ids (u64).
	metaHeader  = 2 + 8
	metaEntries = (page.PayloadSize - metaHeader) / 8
)

// Errors returned by the KV layer.
var (
	ErrTooLarge     = errors.New("kv: value too large")
	ErrBadName      = errors.New("kv: bad namespace name")
	ErrNoNamespace  = errors.New("kv: unknown namespace")
	ErrCatalogFull  = errors.New("kv: catalog full")
	ErrNotKV        = errors.New("kv: page 1 is not a kv catalog")
	ErrKeyNotFound  = errors.New("kv: key not found")
	ErrCorruptIndex = errors.New("kv: index entry points at a record with a different key")
)

// Store is the set of namespaces of one database.  It is safe for
// concurrent use; per-record operations run inside caller-supplied
// transactions and per-namespace in-memory state is only advanced after
// those transactions commit (see Pending).
type Store struct {
	db *engine.DB

	// createMu serializes namespace creation (each create rewrites the
	// shared catalog page).
	createMu sync.Mutex

	mu     sync.RWMutex
	spaces map[string]*Namespace
}

// Open attaches to the database's KV catalog, initialising it on a fresh
// database.  A non-empty database whose page 1 is not a KV catalog is
// refused with ErrNotKV.
func Open(ctx context.Context, db *engine.DB) (*Store, error) {
	s := &Store{db: db, spaces: make(map[string]*Namespace)}
	if db.NumPages() == 0 {
		err := db.Update(ctx, func(tx *engine.Tx) error {
			id, err := tx.Alloc(page.TypeKVCatalog)
			if err != nil {
				return err
			}
			if id != 1 {
				return fmt.Errorf("kv: catalog allocated as page %d, want 1", id)
			}
			return tx.Modify(id, func(buf page.Buf) error {
				p := buf.Payload()
				binary.LittleEndian.PutUint32(p[0:], catalogMagic)
				binary.LittleEndian.PutUint16(p[4:], 0)
				return nil
			})
		})
		if err != nil {
			return nil, fmt.Errorf("kv: initialising catalog: %w", err)
		}
		return s, nil
	}
	err := db.View(ctx, func(tx *engine.Tx) error {
		var entries []catalogEntry
		err := tx.Read(1, func(buf page.Buf) error {
			if buf.Type() != page.TypeKVCatalog {
				return fmt.Errorf("%w: page type %s", ErrNotKV, buf.Type())
			}
			p := buf.Payload()
			if binary.LittleEndian.Uint32(p[0:]) != catalogMagic {
				return fmt.Errorf("%w: bad magic", ErrNotKV)
			}
			n := int(binary.LittleEndian.Uint16(p[4:]))
			for i := 0; i < n; i++ {
				entries = append(entries, readCatalogEntry(p, i))
			}
			return nil
		})
		if err != nil {
			return err
		}
		for _, e := range entries {
			ns := &Namespace{store: s, name: e.name, metaHead: e.metaHead}
			ns.tree = btree.Attach(e.name, e.root)
			if err := ns.loadMeta(tx); err != nil {
				return fmt.Errorf("kv: loading namespace %q: %w", e.name, err)
			}
			s.spaces[e.name] = ns
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

type catalogEntry struct {
	name     string
	root     page.ID
	metaHead page.ID
}

func readCatalogEntry(p []byte, i int) catalogEntry {
	off := catalogHeader + i*catalogEntrySize
	nameLen := int(p[off])
	return catalogEntry{
		name:     string(p[off+1 : off+1+nameLen]),
		root:     page.ID(binary.LittleEndian.Uint64(p[off+1+MaxNameLen:])),
		metaHead: page.ID(binary.LittleEndian.Uint64(p[off+1+MaxNameLen+8:])),
	}
}

func writeCatalogEntry(p []byte, i int, e catalogEntry) {
	off := catalogHeader + i*catalogEntrySize
	p[off] = byte(len(e.name))
	copy(p[off+1:off+1+MaxNameLen], e.name)
	binary.LittleEndian.PutUint64(p[off+1+MaxNameLen:], uint64(e.root))
	binary.LittleEndian.PutUint64(p[off+1+MaxNameLen+8:], uint64(e.metaHead))
}

// Namespace returns the named namespace, or ErrNoNamespace.
func (s *Store) Namespace(name string) (*Namespace, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ns, ok := s.spaces[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoNamespace, name)
	}
	return ns, nil
}

// Names returns the namespace names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.spaces))
	for name := range s.spaces {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Create ensures the named namespace exists, allocating its index root,
// meta-chain head and first data page in one transaction.  Creating a
// namespace that already exists succeeds and changes nothing.
func (s *Store) Create(ctx context.Context, name string) (*Namespace, error) {
	if name == "" || len(name) > MaxNameLen {
		return nil, fmt.Errorf("%w: %q (1..%d bytes)", ErrBadName, name, MaxNameLen)
	}
	s.createMu.Lock()
	defer s.createMu.Unlock()
	if ns, err := s.Namespace(name); err == nil {
		return ns, nil
	}
	var (
		tree     *btree.Tree
		metaHead page.ID
		dataPage page.ID
	)
	err := s.db.Update(ctx, func(tx *engine.Tx) error {
		// Check capacity first so a full catalog fails before allocating.
		var count int
		err := tx.Read(1, func(buf page.Buf) error {
			count = int(binary.LittleEndian.Uint16(buf.Payload()[4:]))
			return nil
		})
		if err != nil {
			return err
		}
		if count >= maxNamespaces {
			return fmt.Errorf("%w: %d namespaces", ErrCatalogFull, count)
		}
		if tree, err = btree.Create(tx, name); err != nil {
			return err
		}
		if metaHead, err = tx.Alloc(page.TypeKVMeta); err != nil {
			return err
		}
		if dataPage, err = tx.Alloc(page.TypeHeap); err != nil {
			return err
		}
		err = tx.Modify(metaHead, func(buf page.Buf) error {
			p := buf.Payload()
			binary.LittleEndian.PutUint16(p[0:], 1)
			binary.LittleEndian.PutUint64(p[2:], 0)
			binary.LittleEndian.PutUint64(p[metaHeader:], uint64(dataPage))
			return nil
		})
		if err != nil {
			return err
		}
		return tx.Modify(1, func(buf page.Buf) error {
			p := buf.Payload()
			writeCatalogEntry(p, count, catalogEntry{name: name, root: tree.Root(), metaHead: metaHead})
			binary.LittleEndian.PutUint16(p[4:], uint16(count+1))
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	ns := &Namespace{
		store:     s,
		name:      name,
		tree:      tree,
		metaHead:  metaHead,
		dataPages: []page.ID{dataPage},
		metaPages: []page.ID{metaHead},
	}
	s.mu.Lock()
	s.spaces[name] = ns
	s.mu.Unlock()
	return ns, nil
}

// Namespace is one key space: a B-tree index over records stored in
// slotted heap pages.  All record methods run inside the caller's
// transaction; write methods additionally take a Pending that the caller
// must Apply after the transaction commits (and discard if it aborts).
type Namespace struct {
	store    *Store
	name     string
	tree     *btree.Tree
	metaHead page.ID

	// mu guards the committed page lists below.  They are a cache of the
	// meta chain: dataPages is where inserts go (the tail is the open
	// insertion frontier), metaPages locates the chain tail for appends.
	mu        sync.Mutex
	dataPages []page.ID
	metaPages []page.ID
}

// Name returns the namespace name.
func (n *Namespace) Name() string { return n.name }

// loadMeta rebuilds the page lists by walking the meta chain.
func (n *Namespace) loadMeta(tx *engine.Tx) error {
	id := n.metaHead
	for id != 0 {
		var next page.ID
		err := tx.Read(id, func(buf page.Buf) error {
			if buf.Type() != page.TypeKVMeta {
				return fmt.Errorf("kv: page %d in meta chain has type %s", id, buf.Type())
			}
			p := buf.Payload()
			count := int(binary.LittleEndian.Uint16(p[0:]))
			next = page.ID(binary.LittleEndian.Uint64(p[2:]))
			for i := 0; i < count; i++ {
				n.dataPages = append(n.dataPages,
					page.ID(binary.LittleEndian.Uint64(p[metaHeader+i*8:])))
			}
			return nil
		})
		if err != nil {
			return err
		}
		n.metaPages = append(n.metaPages, id)
		id = next
	}
	return nil
}

// Pending accumulates the page-list growth of one write transaction.  The
// new pages are linked into the persistent meta chain inside the
// transaction (so an abort rolls them back), but the in-memory lists are
// only advanced by Apply, which the caller invokes after Update returns
// nil.  A Pending of an aborted transaction is simply dropped; the
// allocated pages leak as unreferenced free space, which is rare and
// harmless.
type Pending struct {
	grown map[*Namespace]*growth
}

type growth struct {
	dataPages []page.ID
	metaPages []page.ID
}

// NewPending creates an empty growth set for one transaction.
func NewPending() *Pending { return &Pending{} }

func (p *Pending) growthFor(n *Namespace) *growth {
	if p.grown == nil {
		p.grown = make(map[*Namespace]*growth)
	}
	g := p.grown[n]
	if g == nil {
		g = &growth{}
		p.grown[n] = g
	}
	return g
}

// Apply publishes the committed growth into the namespaces' page lists.
// Call it exactly once, and only after the transaction committed.
func (p *Pending) Apply() {
	for n, g := range p.grown {
		n.mu.Lock()
		n.dataPages = append(n.dataPages, g.dataPages...)
		n.metaPages = append(n.metaPages, g.metaPages...)
		n.mu.Unlock()
	}
	p.grown = nil
}

// record builds the stored form of a pair: key u64, value length u32,
// value bytes.
func record(key uint64, val []byte) []byte {
	rec := make([]byte, recHeader+len(val))
	binary.LittleEndian.PutUint64(rec, key)
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(val)))
	copy(rec[recHeader:], val)
	return rec
}

// recordValue extracts the value bytes of a stored record, verifying the
// key the index promised.  The returned slice aliases rec.
func recordValue(rec []byte, key uint64, rid page.RID) ([]byte, error) {
	if len(rec) < recHeader {
		return nil, fmt.Errorf("%w: truncated record at %v", ErrCorruptIndex, rid)
	}
	if binary.LittleEndian.Uint64(rec) != key {
		return nil, fmt.Errorf("%w: key %d at %v", ErrCorruptIndex, key, rid)
	}
	vlen := int(binary.LittleEndian.Uint32(rec[8:]))
	if recHeader+vlen > len(rec) {
		return nil, fmt.Errorf("%w: value length %d exceeds cell at %v", ErrCorruptIndex, vlen, rid)
	}
	return rec[recHeader : recHeader+vlen], nil
}

// Get reads the value of key into a fresh slice.  The boolean reports
// whether the key exists.
func (n *Namespace) Get(tx *engine.Tx, key uint64) ([]byte, bool, error) {
	rid, found, err := n.tree.Get(tx, key)
	if err != nil || !found {
		return nil, false, err
	}
	var val []byte
	err = tx.Read(rid.Page, func(buf page.Buf) error {
		rec, err := buf.Record(int(rid.Slot))
		if err != nil {
			return err
		}
		v, err := recordValue(rec, key, rid)
		if err != nil {
			return err
		}
		val = append([]byte(nil), v...)
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return val, true, nil
}

// Set writes the pair, overwriting an existing value.  Same-or-smaller
// overwrites happen in place; growing ones tombstone the old record and
// reinsert.
func (n *Namespace) Set(tx *engine.Tx, p *Pending, key uint64, val []byte) error {
	if len(val) > MaxValueSize {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrTooLarge, len(val), MaxValueSize)
	}
	rec := record(key, val)
	rid, found, err := n.tree.Get(tx, key)
	if err != nil {
		return err
	}
	if found {
		var inPlace bool
		err := tx.Modify(rid.Page, func(buf page.Buf) error {
			old, err := buf.Record(int(rid.Slot))
			if err != nil {
				return err
			}
			if len(rec) > len(old) {
				return nil
			}
			inPlace = true
			// Keep the cell at its allocated size: copy the new record
			// over the old bytes and leave the slack in place, so a later
			// overwrite may grow back into it without reinserting.
			full := append([]byte(nil), old...)
			copy(full, rec)
			return buf.Update(int(rid.Slot), full)
		})
		if err != nil {
			return err
		}
		if inPlace {
			return nil
		}
		err = tx.Modify(rid.Page, func(buf page.Buf) error {
			return buf.Delete(int(rid.Slot))
		})
		if err != nil {
			return err
		}
		if err := n.tree.Delete(tx, key); err != nil {
			return err
		}
	}
	newRID, err := n.insert(tx, p, rec)
	if err != nil {
		return err
	}
	return n.tree.Insert(tx, key, newRID)
}

// Delete removes the key, reporting whether it existed.
func (n *Namespace) Delete(tx *engine.Tx, key uint64) (bool, error) {
	rid, found, err := n.tree.Get(tx, key)
	if err != nil || !found {
		return false, err
	}
	err = tx.Modify(rid.Page, func(buf page.Buf) error {
		return buf.Delete(int(rid.Slot))
	})
	if err != nil {
		return false, err
	}
	if err := n.tree.Delete(tx, key); err != nil {
		return false, err
	}
	return true, nil
}

// Scan visits the pairs with lo <= key <= hi in key order, at most limit
// of them (0 = unlimited).  The value slice passed to fn aliases the page
// buffer and is only valid during the call.
func (n *Namespace) Scan(tx *engine.Tx, lo, hi uint64, limit int, fn func(key uint64, val []byte) error) error {
	count := 0
	return n.tree.Scan(tx, lo, hi, func(key uint64, rid page.RID) error {
		if limit > 0 && count >= limit {
			return btree.ErrStopScan
		}
		count++
		return tx.Read(rid.Page, func(buf page.Buf) error {
			rec, err := buf.Record(int(rid.Slot))
			if err != nil {
				return err
			}
			v, err := recordValue(rec, key, rid)
			if err != nil {
				return err
			}
			return fn(key, v)
		})
	})
}

// insert places the record on the namespace's open tail page, allocating
// a fresh page (and linking it into the meta chain) when the tail is
// full.
func (n *Namespace) insert(tx *engine.Tx, p *Pending, rec []byte) (page.RID, error) {
	g := p.growthFor(n)
	tail := n.tailData(g)
	slot, err := insertInto(tx, tail, rec)
	if err == nil {
		return page.RID{Page: tail, Slot: uint16(slot)}, nil
	}
	if !errors.Is(err, page.ErrPageFull) {
		return page.RID{}, err
	}
	id, err := tx.Alloc(page.TypeHeap)
	if err != nil {
		return page.RID{}, err
	}
	if err := n.appendMeta(tx, g, id); err != nil {
		return page.RID{}, err
	}
	g.dataPages = append(g.dataPages, id)
	slot, err = insertInto(tx, id, rec)
	if err != nil {
		return page.RID{}, err
	}
	return page.RID{Page: id, Slot: uint16(slot)}, nil
}

// tailData returns the open insertion page: the last page grown by this
// transaction, or the committed tail.
func (n *Namespace) tailData(g *growth) page.ID {
	if len(g.dataPages) > 0 {
		return g.dataPages[len(g.dataPages)-1]
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dataPages[len(n.dataPages)-1]
}

// tailMeta mirrors tailData for the meta chain.
func (n *Namespace) tailMeta(g *growth) page.ID {
	if len(g.metaPages) > 0 {
		return g.metaPages[len(g.metaPages)-1]
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.metaPages[len(n.metaPages)-1]
}

// appendMeta records a new data page id in the persistent meta chain,
// extending the chain with a fresh meta page when the tail is full.
// Concurrent appends to the same namespace serialize on the exclusive
// page lock of the chain tail.
func (n *Namespace) appendMeta(tx *engine.Tx, g *growth, id page.ID) error {
	tail := n.tailMeta(g)
	var full bool
	err := tx.Modify(tail, func(buf page.Buf) error {
		p := buf.Payload()
		count := int(binary.LittleEndian.Uint16(p[0:]))
		if count >= metaEntries {
			full = true
			return nil
		}
		binary.LittleEndian.PutUint64(p[metaHeader+count*8:], uint64(id))
		binary.LittleEndian.PutUint16(p[0:], uint16(count+1))
		return nil
	})
	if err != nil || !full {
		return err
	}
	next, err := tx.Alloc(page.TypeKVMeta)
	if err != nil {
		return err
	}
	err = tx.Modify(next, func(buf page.Buf) error {
		p := buf.Payload()
		binary.LittleEndian.PutUint16(p[0:], 1)
		binary.LittleEndian.PutUint64(p[2:], 0)
		binary.LittleEndian.PutUint64(p[metaHeader:], uint64(id))
		return nil
	})
	if err != nil {
		return err
	}
	err = tx.Modify(tail, func(buf page.Buf) error {
		binary.LittleEndian.PutUint64(buf.Payload()[2:], uint64(next))
		return nil
	})
	if err != nil {
		return err
	}
	g.metaPages = append(g.metaPages, next)
	return nil
}

// insertInto adds the record to one page, returning the slot.
func insertInto(tx *engine.Tx, id page.ID, rec []byte) (int, error) {
	var slot int
	err := tx.Modify(id, func(buf page.Buf) error {
		var err error
		slot, err = buf.Insert(rec)
		return err
	})
	return slot, err
}
