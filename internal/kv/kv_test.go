package kv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/page"
)

func openMem(t *testing.T, pageLocks bool) *engine.DB {
	t.Helper()
	cfg := engine.Config{
		DataDev:     device.New("kv-data", device.ProfileCheetah15K, 1<<16),
		LogDev:      device.New("kv-log", device.ProfileCheetah15K, 1<<17),
		BufferPages: 256,
		Policy:      engine.PolicyNone,
		PageLocks:   pageLocks,
	}
	db, err := engine.Open(cfg)
	if err != nil {
		t.Fatalf("engine.Open: %v", err)
	}
	return db
}

func mustStore(t *testing.T, db *engine.DB) *Store {
	t.Helper()
	s, err := Open(context.Background(), db)
	if err != nil {
		t.Fatalf("kv.Open: %v", err)
	}
	return s
}

func set(t *testing.T, db *engine.DB, ns *Namespace, key uint64, val []byte) {
	t.Helper()
	p := NewPending()
	err := db.Update(context.Background(), func(tx *engine.Tx) error {
		return ns.Set(tx, p, key, val)
	})
	if err != nil {
		t.Fatalf("Set(%d): %v", key, err)
	}
	p.Apply()
}

func get(t *testing.T, db *engine.DB, ns *Namespace, key uint64) ([]byte, bool) {
	t.Helper()
	var val []byte
	var found bool
	err := db.View(context.Background(), func(tx *engine.Tx) error {
		var err error
		val, found, err = ns.Get(tx, key)
		return err
	})
	if err != nil {
		t.Fatalf("Get(%d): %v", key, err)
	}
	return val, found
}

func TestKVCreateSetGetDelete(t *testing.T) {
	db := openMem(t, false)
	defer db.Close()
	s := mustStore(t, db)

	ns, err := s.Create(context.Background(), "main")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Create is ensure-style: a second call returns the same namespace.
	again, err := s.Create(context.Background(), "main")
	if err != nil || again != ns {
		t.Fatalf("second Create: ns=%p again=%p err=%v", ns, again, err)
	}

	if _, err := s.Namespace("missing"); !errors.Is(err, ErrNoNamespace) {
		t.Fatalf("Namespace(missing) = %v, want ErrNoNamespace", err)
	}

	set(t, db, ns, 7, []byte("seven"))
	set(t, db, ns, 9, []byte("nine"))

	if val, ok := get(t, db, ns, 7); !ok || string(val) != "seven" {
		t.Fatalf("Get(7) = %q, %v", val, ok)
	}
	if _, ok := get(t, db, ns, 8); ok {
		t.Fatal("Get(8) found a value that was never set")
	}

	err = db.Update(context.Background(), func(tx *engine.Tx) error {
		existed, err := ns.Delete(tx, 7)
		if err != nil {
			return err
		}
		if !existed {
			return errors.New("Delete(7) reported missing")
		}
		existed, err = ns.Delete(tx, 7)
		if err != nil {
			return err
		}
		if existed {
			return errors.New("second Delete(7) reported existing")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := get(t, db, ns, 7); ok {
		t.Fatal("Get(7) found a deleted key")
	}
	if val, ok := get(t, db, ns, 9); !ok || string(val) != "nine" {
		t.Fatalf("Get(9) after delete of 7 = %q, %v", val, ok)
	}
}

func TestKVInPlaceOverwriteDoesNotGrow(t *testing.T) {
	db := openMem(t, false)
	defer db.Close()
	s := mustStore(t, db)
	ns, err := s.Create(context.Background(), "hot")
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 64)
	for k := uint64(0); k < 16; k++ {
		set(t, db, ns, k, val)
	}
	before := db.NumPages()
	// Same-size and shrinking overwrites must reuse the cell in place:
	// slotted pages never reclaim tombstones, so the delete+reinsert path
	// would grow the database forever under sustained overwrite.
	for i := 0; i < 500; i++ {
		val[0] = byte(i)
		set(t, db, ns, uint64(i%16), val)
		set(t, db, ns, uint64(i%16), val[:32])
		set(t, db, ns, uint64(i%16), val)
	}
	if after := db.NumPages(); after != before {
		t.Fatalf("in-place overwrites grew the database from %d to %d pages", before, after)
	}
	// A growing overwrite still works (via delete+reinsert).
	big := make([]byte, 128)
	big[0] = 0xAB
	set(t, db, ns, 3, big)
	if got, ok := get(t, db, ns, 3); !ok || !bytes.Equal(got, big) {
		t.Fatalf("Get(3) after growing overwrite = %d bytes, %v", len(got), ok)
	}
}

func TestKVValueTooLarge(t *testing.T) {
	db := openMem(t, false)
	defer db.Close()
	s := mustStore(t, db)
	ns, err := s.Create(context.Background(), "big")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPending()
	err = db.Update(context.Background(), func(tx *engine.Tx) error {
		return ns.Set(tx, p, 1, make([]byte, MaxValueSize+1))
	})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized Set = %v, want ErrTooLarge", err)
	}
	// The maximum size fits exactly.
	set(t, db, ns, 1, make([]byte, MaxValueSize))
	if val, ok := get(t, db, ns, 1); !ok || len(val) != MaxValueSize {
		t.Fatalf("Get after max-size Set = %d bytes, %v", len(val), ok)
	}
}

func TestKVGrowthAndScan(t *testing.T) {
	db := openMem(t, true)
	defer db.Close()
	s := mustStore(t, db)
	ns, err := s.Create(context.Background(), "scan")
	if err != nil {
		t.Fatal(err)
	}
	// ~400-byte records: about ten per page, so 200 keys span many pages
	// and exercise the meta-chain growth path.
	const keys = 200
	for k := uint64(0); k < keys; k++ {
		val := make([]byte, 400)
		val[0] = byte(k)
		set(t, db, ns, k*2, val) // even keys only
	}
	var visited []uint64
	err = db.View(context.Background(), func(tx *engine.Tx) error {
		return ns.Scan(tx, 10, 50, 0, func(key uint64, val []byte) error {
			if val[0] != byte(key/2) {
				return fmt.Errorf("key %d carries value tag %d", key, val[0])
			}
			visited = append(visited, key)
			return nil
		})
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	want := []uint64{10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 34, 36, 38, 40, 42, 44, 46, 48, 50}
	if len(visited) != len(want) {
		t.Fatalf("Scan visited %d keys, want %d: %v", len(visited), len(want), visited)
	}
	for i, k := range want {
		if visited[i] != k {
			t.Fatalf("Scan order: visited[%d] = %d, want %d", i, visited[i], k)
		}
	}
	// Limit cuts the scan short.
	visited = nil
	err = db.View(context.Background(), func(tx *engine.Tx) error {
		return ns.Scan(tx, 0, ^uint64(0), 5, func(key uint64, val []byte) error {
			visited = append(visited, key)
			return nil
		})
	})
	if err != nil {
		t.Fatalf("limited Scan: %v", err)
	}
	if len(visited) != 5 || visited[0] != 0 || visited[4] != 8 {
		t.Fatalf("limited Scan = %v", visited)
	}
}

func TestKVAbortedGrowthNotPublished(t *testing.T) {
	db := openMem(t, false)
	defer db.Close()
	s := mustStore(t, db)
	ns, err := s.Create(context.Background(), "abort")
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	p := NewPending()
	err = db.Update(context.Background(), func(tx *engine.Tx) error {
		// Fill past the first page so the transaction grows the list,
		// then abort.
		for k := uint64(0); k < 40; k++ {
			if err := ns.Set(tx, p, k, make([]byte, 400)); err != nil {
				return err
			}
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Update = %v, want boom", err)
	}
	// The Pending is dropped, not applied; the committed tail is intact
	// and the namespace still works.
	ns.mu.Lock()
	pages := len(ns.dataPages)
	ns.mu.Unlock()
	if pages != 1 {
		t.Fatalf("aborted growth published %d data pages, want 1", pages)
	}
	set(t, db, ns, 1, []byte("alive"))
	if val, ok := get(t, db, ns, 1); !ok || string(val) != "alive" {
		t.Fatalf("Get after aborted growth = %q, %v", val, ok)
	}
}

func TestKVReopenPersistence(t *testing.T) {
	dir := t.TempDir()
	open := func() *engine.DB {
		db, err := engine.Open(engine.Config{
			Dir:         dir,
			BufferPages: 256,
			Policy:      engine.PolicyNone,
			PageLocks:   true,
			NoFsync:     true,
		})
		if err != nil {
			t.Fatalf("engine.Open(%s): %v", dir, err)
		}
		return db
	}

	db := open()
	s := mustStore(t, db)
	ns, err := s.Create(context.Background(), "users")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(context.Background(), "orders"); err != nil {
		t.Fatal(err)
	}
	const keys = 120
	for k := uint64(0); k < keys; k++ {
		val := make([]byte, 300)
		val[0] = byte(k)
		set(t, db, ns, k, val)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen is recovery: the catalog, both namespaces and every record
	// must come back from the pages alone.
	db2 := open()
	defer db2.Close()
	s2 := mustStore(t, db2)
	names := s2.Names()
	if len(names) != 2 || names[0] != "orders" || names[1] != "users" {
		t.Fatalf("Names after reopen = %v", names)
	}
	ns2, err := s2.Namespace("users")
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < keys; k++ {
		val, ok := get(t, db2, ns2, k)
		if !ok || len(val) != 300 || val[0] != byte(k) {
			t.Fatalf("Get(%d) after reopen = %d bytes (ok=%v, tag=%d)", k, len(val), ok, val[0])
		}
	}
	// The insertion frontier was rediscovered from the meta chain: new
	// writes land and read back.
	set(t, db2, ns2, 1000, []byte("fresh"))
	if val, ok := get(t, db2, ns2, 1000); !ok || string(val) != "fresh" {
		t.Fatalf("Get(1000) after reopen = %q, %v", val, ok)
	}
}

func TestKVRefusesForeignDatabase(t *testing.T) {
	db := openMem(t, false)
	defer db.Close()
	// Allocate page 1 as something other than a catalog.
	err := db.Update(context.Background(), func(tx *engine.Tx) error {
		_, err := tx.Alloc(page.TypeHeap)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(context.Background(), db); !errors.Is(err, ErrNotKV) {
		t.Fatalf("Open on a non-KV database = %v, want ErrNotKV", err)
	}
}
