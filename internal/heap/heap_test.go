package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/page"
)

func testDB(t *testing.T) *engine.DB {
	t.Helper()
	cfg := engine.Config{
		DataDev:     device.New("data", device.ProfileCheetah15K, 8192),
		LogDev:      device.New("log", device.ProfileCheetah15K, 8192),
		BufferPages: 64,
		Policy:      engine.PolicyNone,
	}
	db, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func rec(v uint64, size int) []byte {
	b := make([]byte, size)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestInsertGetUpdateDelete(t *testing.T) {
	db := testDB(t)
	tx, _ := db.Begin()
	tbl, err := Create(tx, "customer")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name() != "customer" || tbl.NumPages() != 1 {
		t.Fatalf("new table: %s, %d pages", tbl.Name(), tbl.NumPages())
	}

	rid, err := tbl.Insert(tx, rec(42, 64))
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	if err := tbl.Get(tx, rid, func(r []byte) error {
		got = binary.LittleEndian.Uint64(r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("Get = %d", got)
	}

	if err := tbl.Update(tx, rid, func(r []byte) error {
		binary.LittleEndian.PutUint64(r, 77)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tbl.Get(tx, rid, func(r []byte) error {
		got = binary.LittleEndian.Uint64(r)
		return nil
	})
	if got != 77 {
		t.Fatalf("after Update = %d", got)
	}

	if err := tbl.Delete(tx, rid); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Get(tx, rid, func([]byte) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete: %v", err)
	}
	if err := tbl.Delete(tx, rid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Delete: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGrowsTable(t *testing.T) {
	db := testDB(t)
	tx, _ := db.Begin()
	tbl, _ := Create(tx, "stock")
	const n = 500
	rids := make([]page.RID, n)
	for i := 0; i < n; i++ {
		rid, err := tbl.Insert(tx, rec(uint64(i), 200))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if tbl.NumPages() < 20 {
		t.Fatalf("table should have grown, has %d pages", tbl.NumPages())
	}
	for i, rid := range rids {
		var got uint64
		if err := tbl.Get(tx, rid, func(r []byte) error {
			got = binary.LittleEndian.Uint64(r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != uint64(i) {
			t.Fatalf("record %d = %d", i, got)
		}
	}
	tx.Commit()
}

func TestScan(t *testing.T) {
	db := testDB(t)
	tx, _ := db.Begin()
	tbl, _ := Create(tx, "orders")
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := tbl.Insert(tx, rec(uint64(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete every third record.
	deleted := 0
	if err := tbl.Scan(tx, func(rid page.RID, r []byte) error {
		if binary.LittleEndian.Uint64(r)%3 == 0 {
			deleted++
			return tbl.Delete(tx, rid)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Count the survivors.
	count := 0
	if err := tbl.Scan(tx, func(rid page.RID, r []byte) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != n-deleted {
		t.Fatalf("scan found %d records, want %d", count, n-deleted)
	}
	// Early stop.
	seen := 0
	if err := tbl.Scan(tx, func(page.RID, []byte) error {
		seen++
		if seen == 5 {
			return ErrStopScan
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Fatalf("early stop visited %d records", seen)
	}
	// Propagated error.
	boom := fmt.Errorf("boom")
	if err := tbl.Scan(tx, func(page.RID, []byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("scan error: %v", err)
	}
	tx.Commit()
}

func TestInsertTooLarge(t *testing.T) {
	db := testDB(t)
	tx, _ := db.Begin()
	tbl, _ := Create(tx, "big")
	if _, err := tbl.Insert(tx, make([]byte, page.PayloadSize)); !errors.Is(err, page.ErrTooLarge) {
		t.Fatalf("oversized insert: %v", err)
	}
	tx.Commit()
}

func TestAttach(t *testing.T) {
	db := testDB(t)
	tx, _ := db.Begin()
	tbl, _ := Create(tx, "district")
	rid, _ := tbl.Insert(tx, rec(9, 32))
	tx.Commit()

	re := Attach("district", tbl.Pages())
	tx2, _ := db.Begin()
	var got uint64
	if err := re.Get(tx2, rid, func(r []byte) error {
		got = binary.LittleEndian.Uint64(r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("Attach Get = %d", got)
	}
	tx2.Commit()
	// Pages() returns a copy.
	pages := tbl.Pages()
	pages[0] = 9999
	if tbl.Pages()[0] == 9999 {
		t.Fatal("Pages leaked internal slice")
	}
}
