// Package heap implements heap tables: unordered collections of records
// stored in slotted pages and addressed by record id (RID).
//
// The TPC-C tables of the benchmark live in heap files; their primary keys
// are indexed by B+trees from the btree package.  All page access goes
// through engine transactions, so every modification is logged and every
// read benefits from the DRAM buffer and the flash cache.
package heap

import (
	"errors"
	"fmt"
	"sync"

	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/page"
)

// Errors returned by heap tables.
var (
	ErrNotFound = errors.New("heap: record not found")
)

// Table is a heap file.  The page list is an in-memory catalog owned by the
// workload driver; it is rebuilt by the loader, not persisted, because the
// benchmark keeps its catalog across simulated crashes.
//
// The catalog is safe for concurrent transactions (multi-terminal drivers
// under the engine's page-lock scheduler): the page list is guarded by a
// mutex, while the page contents themselves are protected by the
// transactions' page locks.  A page appended by a transaction that later
// aborts stays in the catalog; it rolls back to an empty formatted page,
// which inserts simply fill later.
type Table struct {
	mu    sync.Mutex
	name  string
	pages []page.ID
}

// Create allocates the first page of a new heap table.
func Create(tx *engine.Tx, name string) (*Table, error) {
	id, err := tx.Alloc(page.TypeHeap)
	if err != nil {
		return nil, fmt.Errorf("heap: creating table %s: %w", name, err)
	}
	return &Table{name: name, pages: []page.ID{id}}, nil
}

// Attach reconstructs a Table handle from an existing page list (used when
// a driver re-attaches to a database it loaded earlier).
func Attach(name string, pages []page.ID) *Table {
	cp := append([]page.ID(nil), pages...)
	return &Table{name: name, pages: cp}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Pages returns the ids of all pages of the table.
func (t *Table) Pages() []page.ID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]page.ID(nil), t.pages...)
}

// NumPages returns the number of pages in the table.
func (t *Table) NumPages() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pages)
}

// lastPage returns the current tail page of the table.
func (t *Table) lastPage() page.ID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pages[len(t.pages)-1]
}

// appendPage links a freshly allocated page into the catalog.
func (t *Table) appendPage(id page.ID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pages = append(t.pages, id)
}

// Insert appends a record to the table and returns its RID.  The last page
// is tried first; a new page is allocated when it is full.  Concurrent
// transactions may race to grow the table; each that finds the tail full
// appends its own page, so records never collide (the transactions hold
// exclusive page locks), at worst leaving a page partially filled.
func (t *Table) Insert(tx *engine.Tx, rec []byte) (page.RID, error) {
	if len(rec) > page.PayloadSize-8 {
		return page.RID{}, page.ErrTooLarge
	}
	rid, err := t.insertInto(tx, t.lastPage(), rec)
	if err == nil {
		return rid, nil
	}
	if !errors.Is(err, page.ErrPageFull) {
		return page.RID{}, err
	}
	id, err := tx.Alloc(page.TypeHeap)
	if err != nil {
		return page.RID{}, fmt.Errorf("heap: growing table %s: %w", t.name, err)
	}
	t.appendPage(id)
	return t.insertInto(tx, id, rec)
}

func (t *Table) insertInto(tx *engine.Tx, id page.ID, rec []byte) (page.RID, error) {
	var rid page.RID
	err := tx.Modify(id, func(buf page.Buf) error {
		slot, err := buf.Insert(rec)
		if err != nil {
			return err
		}
		rid = page.RID{Page: id, Slot: uint16(slot)}
		return nil
	})
	return rid, err
}

// Get passes the record at rid to fn.  The record slice is only valid
// during the callback.
func (t *Table) Get(tx *engine.Tx, rid page.RID, fn func(rec []byte) error) error {
	return tx.Read(rid.Page, func(buf page.Buf) error {
		rec, err := buf.Record(int(rid.Slot))
		if err != nil {
			return fmt.Errorf("%w: %v (%v)", ErrNotFound, rid, err)
		}
		return fn(rec)
	})
}

// Update lets fn modify the record at rid in place.  The record size must
// not grow.
func (t *Table) Update(tx *engine.Tx, rid page.RID, fn func(rec []byte) error) error {
	return tx.Modify(rid.Page, func(buf page.Buf) error {
		rec, err := buf.Record(int(rid.Slot))
		if err != nil {
			return fmt.Errorf("%w: %v (%v)", ErrNotFound, rid, err)
		}
		return fn(rec)
	})
}

// Delete removes the record at rid (lazy delete: the slot is tombstoned).
func (t *Table) Delete(tx *engine.Tx, rid page.RID) error {
	return tx.Modify(rid.Page, func(buf page.Buf) error {
		deleted, err := buf.Deleted(int(rid.Slot))
		if err != nil {
			return fmt.Errorf("%w: %v (%v)", ErrNotFound, rid, err)
		}
		if deleted {
			return fmt.Errorf("%w: %v already deleted", ErrNotFound, rid)
		}
		return buf.Delete(int(rid.Slot))
	})
}

// Scan visits every live record in the table in physical order.  Returning
// a non-nil error from fn stops the scan; the sentinel ErrStopScan stops it
// without reporting an error.
func (t *Table) Scan(tx *engine.Tx, fn func(rid page.RID, rec []byte) error) error {
	for _, id := range t.Pages() {
		err := tx.Read(id, func(buf page.Buf) error {
			for slot := 0; slot < buf.SlotCount(); slot++ {
				deleted, err := buf.Deleted(slot)
				if err != nil {
					return err
				}
				if deleted {
					continue
				}
				rec, err := buf.Record(slot)
				if err != nil {
					return err
				}
				if err := fn(page.RID{Page: id, Slot: uint16(slot)}, rec); err != nil {
					return err
				}
			}
			return nil
		})
		if errors.Is(err, ErrStopScan) {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ErrStopScan stops a Scan early without reporting an error.
var ErrStopScan = errors.New("heap: stop scan")
