package face

// The I/O machinery of the mvFIFO cache manager: group writes, group
// replacement, destaging, checkpointing and recovery.  Everything here
// runs on the writer path (under wrMu); the metadata lock mu is taken only
// for the short windows that mutate queue state, never across device I/O,
// and the striped directory locks are taken nested inside mu (or alone),
// so Lookup and Contains proceed while a group write is in flight.

import (
	"fmt"
	"sync/atomic"

	"github.com/reprolab/face/internal/page"
)

// enqueue appends the items to the rear of the queue, making room first if
// necessary.  Items are written to flash as one sequential run.  The
// caller holds wrMu.
func (m *MVFIFO) enqueue(items []stageItem) error {
	if len(items) == 0 {
		return nil
	}
	capacity := uint64(m.cfg.Frames)
	// Make room.  Group replacement frees GroupSize frames at a time and
	// may append survivors and pulled DRAM victims to the write group.
	for {
		m.mu.Lock()
		need := m.seq-m.front+uint64(len(items)) > capacity
		m.mu.Unlock()
		if !need {
			break
		}
		extra, err := m.makeRoom(len(items))
		if err != nil {
			return err
		}
		items = append(items, extra...)
	}

	// Reserve consecutive positions.  The reservation is published to seq
	// up front so Len reflects in-flight writes; directory entries are
	// published only after the device write completes, so lookups never
	// see a frame whose data is not on flash yet.
	m.mu.Lock()
	start := m.seq
	m.seq = start + uint64(len(items))
	front := m.front
	m.mu.Unlock()

	images := make([]page.Buf, len(items))
	for i, it := range items {
		pos := start + uint64(i)
		img := it.data.Clone()
		img.SetCacheStamp(uint32(pos))
		images[i] = img
	}
	// Under asynchronous destaging a frame slot must not be rewritten
	// until the dirty page that last occupied it has landed on disk.
	if m.waitReuse != nil && start+uint64(len(items)) > capacity {
		m.waitReuse(start + uint64(len(items)) - 1 - capacity)
	}
	if err := m.writeFrames(start, images); err != nil {
		return err
	}

	m.mu.Lock()
	m.stats.FlashPageWrites += int64(len(items))
	for i, it := range items {
		pos := start + uint64(i)
		slot := pos % capacity
		// Decide whether this item becomes the valid copy of the page.  A
		// write group may contain two versions of the same page — e.g. a
		// second-chance survivor re-enqueued after a newer incoming
		// version — so the page LSN decides which copy stays valid.  The
		// directory entry mirrors the valid copy's LSN, so the decision
		// and the publication happen together under the stripe lock.
		st := m.stripe(it.id)
		st.mu.Lock()
		newest := true
		if old, ok := st.dir[it.id]; ok {
			oldSlot := old.pos % capacity
			if m.meta[oldSlot].valid && m.meta[oldSlot].id == it.id {
				if m.meta[oldSlot].lsn > it.lsn {
					newest = false
				} else if old.pos >= m.front && old.pos < pos {
					m.meta[oldSlot].valid = false
					m.stats.Invalidations++
				}
			}
		}
		m.meta[slot] = frameMeta{id: it.id, lsn: it.lsn, valid: newest, dirty: it.dirty, used: true}
		m.refs[slot].Store(it.ref)
		if newest {
			st.dir[it.id] = dirEntry{pos: pos, lsn: it.lsn, dirty: it.dirty}
		} else {
			m.stats.Invalidations++
		}
		// The page is reachable through the directory again.
		delete(st.transit, it.id)
		st.mu.Unlock()
	}
	m.mu.Unlock()

	// Persist the metadata entries.  The metadata directory is writer-path
	// state (wrMu), so segment flushes happen without blocking lookups.
	flushes := 0
	for i, it := range items {
		pos := start + uint64(i)
		n, err := m.metadir.appendEntry(metaEntry{id: it.id, lsn: it.lsn, dirty: it.dirty}, pos, m.clampFront(front))
		flushes += n
		if err != nil {
			return err
		}
	}
	if flushes > 0 {
		m.mu.Lock()
		m.stats.MetadataFlushes += int64(flushes)
		m.mu.Unlock()
	}
	return nil
}

// clampFront bounds the front pointer recorded in the persistent
// superblock: under asynchronous destaging it must not advance past the
// oldest un-landed destage, or a crash could lose the only copy of a dirty
// page.  Recovery then conservatively replays the extra positions as
// cached dirty pages.
func (m *MVFIFO) clampFront(front uint64) uint64 {
	if m.persistFront != nil {
		return m.persistFront(front)
	}
	return front
}

// makeRoom frees at least GroupSize frames (or one frame when grouping is
// disabled) from the front of the queue.  With second chance enabled it
// returns referenced frames and pulled DRAM victims to be appended to the
// caller's write group; reserve tells it how many slots the caller already
// needs so the group is not overfilled.  The caller holds wrMu.
//
// Dirty pages leaving the queue are destaged (inline or to the destager)
// BEFORE their directory entries are removed, so a concurrent lookup never
// misses into a stale disk copy.
func (m *MVFIFO) makeRoom(reserve int) ([]stageItem, error) {
	capacity := uint64(m.cfg.Frames)

	m.mu.Lock()
	group := m.cfg.GroupSize
	if count := int(m.seq - m.front); group > count {
		group = count
	}
	if group < 1 {
		m.mu.Unlock()
		return nil, fmt.Errorf("face: internal error: empty queue in makeRoom")
	}
	front := m.front
	// Snapshot the group's metadata and reference bits.  Only writers
	// mutate the metadata and they are serialized by wrMu; concurrent
	// lookups may still set reference bits, but a reference arriving after
	// this point no longer saves the frame (the same race exists on a real
	// system between the replacement decision and the I/O it issues).
	metas := make([]frameMeta, group)
	refs := make([]bool, group)
	needData := false
	for i := 0; i < group; i++ {
		slot := (front + uint64(i)) % capacity
		metas[i] = m.meta[slot]
		refs[i] = m.refs[slot].Load()
		if metas[i].valid && (metas[i].dirty || (m.cfg.SecondChance && refs[i])) {
			needData = true
		}
	}
	m.mu.Unlock()

	var frames []page.Buf
	if needData {
		var err error
		frames, err = m.readFrames(front, group)
		if err != nil {
			return nil, err
		}
		m.mu.Lock()
		m.stats.FlashPageReads += int64(group)
		m.mu.Unlock()
	}

	// Issue the stage-outs.  readFrames returns private buffers, so the
	// images can be handed to the (possibly asynchronous) destager as-is.
	var survivors []stageItem
	for i := 0; i < group; i++ {
		pos := front + uint64(i)
		fm := metas[i]
		if !fm.valid {
			continue
		}
		switch {
		case m.cfg.SecondChance && refs[i]:
			// Second chance: re-enqueue regardless of dirtiness.
			survivors = append(survivors, stageItem{id: fm.id, data: frames[i], dirty: fm.dirty, lsn: fm.lsn, pos: pos})
		case fm.dirty:
			if err := m.destageOut(pos, fm.id, frames[i]); err != nil {
				return nil, err
			}
		}
	}

	// Publish: clear the group's metadata, remove the directory entries
	// pointing into the recycled window, and advance the front.  From here
	// on the freed slots may be rewritten; a lookup racing a rewrite fails
	// revalidation because its directory entry was removed (or repointed)
	// under the stripe lock first.  Survivors stay reachable through the
	// transit map until the caller's re-enqueue publishes their new frames.
	m.mu.Lock()
	for _, s := range survivors {
		st := m.stripe(s.id)
		st.mu.Lock()
		st.transit[s.id] = s
		st.mu.Unlock()
	}
	for i := 0; i < group; i++ {
		pos := front + uint64(i)
		slot := pos % capacity
		fm := &m.meta[slot]
		if fm.valid {
			if m.cfg.SecondChance && refs[i] {
				m.stats.SecondChances++
			}
			// Drop the directory entry for the recycled position whether
			// the frame is staged out or re-enqueued: survivors are served
			// from the transit map until their new position is published.
			st := m.stripe(fm.id)
			st.mu.Lock()
			if cur, ok := st.dir[fm.id]; ok && cur.pos == pos {
				delete(st.dir, fm.id)
			}
			st.mu.Unlock()
		}
		*fm = frameMeta{}
		m.refs[slot].Store(false)
	}
	m.front = front + uint64(group)
	m.mu.Unlock()

	// If every frame survived, force the oldest one out to guarantee
	// progress (paper: "the page at the very front end will be discarded
	// or flushed to disk").
	maxKeep := group - reserve
	if maxKeep < 0 {
		maxKeep = 0
	}
	for len(survivors) > maxKeep {
		victim := survivors[0]
		survivors = survivors[1:]
		if victim.dirty {
			if err := m.destageOut(victim.pos, victim.id, victim.data); err != nil {
				return nil, err
			}
		}
		// A dirty victim stays visible through the destager until its disk
		// write lands; a clean one is current on disk.
		st := m.stripe(victim.id)
		st.mu.Lock()
		delete(st.transit, victim.id)
		st.mu.Unlock()
	}
	// Survivors will be re-enqueued by the caller, which publishes their
	// new directory entries.

	// Top up the write group with victims pulled from the DRAM buffer.
	if m.cfg.SecondChance && m.cfg.Pull != nil {
		want := group - reserve - len(survivors)
		if want > 0 {
			pulled := m.cfg.Pull(want)
			m.mu.Lock()
			for _, p := range pulled {
				m.stats.Pulled++
				m.stats.StageIns++
				if p.Dirty {
					m.stats.DirtyStageIns++
				} else {
					m.stats.CleanStageIns++
				}
				st := m.stripe(p.ID)
				st.mu.Lock()
				if !p.FDirty {
					_, cached := st.dir[p.ID]
					if !cached {
						_, cached = st.transit[p.ID]
					}
					if cached {
						st.mu.Unlock()
						continue
					}
				}
				it := stageItem{id: p.ID, data: p.Data, dirty: p.Dirty, lsn: p.Data.LSN()}
				survivors = append(survivors, it)
				// The pulled victim has already left the DRAM buffer; keep
				// it reachable until its new frame is published.
				st.transit[p.ID] = it
				st.mu.Unlock()
			}
			m.mu.Unlock()
		}
	}
	return survivors, nil
}

// destageOut moves a dirty page leaving the queue towards its disk home:
// through the asynchronous destager when one is attached, inline through
// the DiskWrite callback otherwise.
func (m *MVFIFO) destageOut(pos uint64, id page.ID, data page.Buf) error {
	if m.destage != nil {
		if err := m.destage(pos, id, data); err != nil {
			return fmt.Errorf("face: destaging page %d: %w", id, err)
		}
		return nil
	}
	if err := m.cfg.DiskWrite(id, data); err != nil {
		return fmt.Errorf("face: staging out page %d: %w", id, err)
	}
	m.mu.Lock()
	m.stats.DiskPageWrites++
	m.mu.Unlock()
	return nil
}

// writeFrames writes consecutive queue positions starting at start,
// splitting the run where the circular queue wraps around.
func (m *MVFIFO) writeFrames(start uint64, images []page.Buf) error {
	capacity := uint64(m.cfg.Frames)
	i := 0
	for i < len(images) {
		slot := (start + uint64(i)) % capacity
		run := int(capacity - slot)
		if run > len(images)-i {
			run = len(images) - i
		}
		pages := make([][]byte, run)
		for j := 0; j < run; j++ {
			pages[j] = images[i+j]
		}
		if run == 1 {
			if err := m.cfg.Dev.WriteAt(m.layout.frameBlock(slot), pages[0]); err != nil {
				return fmt.Errorf("face: writing frame %d: %w", slot, err)
			}
		} else {
			if err := m.cfg.Dev.WriteRun(m.layout.frameBlock(slot), pages); err != nil {
				return fmt.Errorf("face: writing frames at %d: %w", slot, err)
			}
		}
		i += run
	}
	return nil
}

// readFrames reads n consecutive queue positions starting at start,
// splitting the run at the wrap point.  The returned buffers are private.
func (m *MVFIFO) readFrames(start uint64, n int) ([]page.Buf, error) {
	capacity := uint64(m.cfg.Frames)
	out := make([]page.Buf, n)
	i := 0
	for i < n {
		slot := (start + uint64(i)) % capacity
		run := int(capacity - slot)
		if run > n-i {
			run = n - i
		}
		base := i
		if run == 1 {
			buf := page.NewBuf()
			if err := m.cfg.Dev.ReadAt(m.layout.frameBlock(slot), buf); err != nil {
				return nil, fmt.Errorf("face: reading frame %d: %w", slot, err)
			}
			out[base] = buf
		} else {
			err := m.cfg.Dev.ReadRun(m.layout.frameBlock(slot), run, func(j int, p []byte) error {
				buf := page.NewBuf()
				copy(buf, p)
				out[base+j] = buf
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("face: reading frames at %d: %w", slot, err)
			}
		}
		i += run
	}
	return out, nil
}

// Checkpoint flushes the current metadata segment and queue pointers to
// flash.  Data pages in the cache are not written anywhere: they are
// already part of the persistent database (Section 4.1).
func (m *MVFIFO) Checkpoint() error {
	m.wrMu.Lock()
	defer m.wrMu.Unlock()
	if m.closed.Load() {
		return ErrClosed
	}
	m.mu.Lock()
	seq, front := m.seq, m.front
	m.mu.Unlock()
	//lint:allow facevet/nolockio checkpoint fence: wrMu excludes writers so the metadata flush sees a stable queue; m.mu is released first
	flushes, err := m.metadir.flush(seq, m.clampFront(front))
	if flushes > 0 {
		m.mu.Lock()
		m.stats.MetadataFlushes += int64(flushes)
		m.mu.Unlock()
	}
	return err
}

// Recover rebuilds the in-memory directory after a crash: the persistent
// metadata segments are read back and the frames written after the last
// metadata flush are rediscovered by scanning their headers and enqueue
// stamps (Section 4.2).  It runs before the cache is shared, so it holds
// the writer and metadata locks for its duration (the stripe locks are
// taken per entry).
func (m *MVFIFO) Recover() error {
	m.wrMu.Lock()
	defer m.wrMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	//lint:allow facevet/nolockio recovery runs before the cache is shared (see doc comment); holding both locks for its duration is the point
	front, persisted, entries, err := m.metadir.load()
	if err != nil {
		return err
	}
	capacity := uint64(m.cfg.Frames)
	m.front = front
	m.meta = make([]frameMeta, m.cfg.Frames)
	m.refs = make([]atomic.Bool, m.cfg.Frames)
	m.stripes = newStripes(m.cfg.Stripes, m.cfg.Frames)

	apply := func(pos uint64, id page.ID, lsn page.LSN, dirty bool) {
		slot := pos % capacity
		newest := true
		// The recovered window can be wider than the frame array when the
		// persisted front lags the pre-crash front, so two replayed
		// positions may share a physical slot.  The slot's bytes belong to
		// the later position; a directory entry still pointing at the
		// earlier one would serve them as the wrong page (or the wrong
		// version), and unlike the live path nothing removed it before the
		// slot was reused.  Drop it here — and when the overwritten
		// occupant was a newer version of this same page, remember that the
		// current copy now lives on disk (it was staged out when the old
		// position left the window), not in this slot.
		if prev := m.meta[slot]; prev.used && prev.valid {
			pst := m.stripe(prev.id)
			pst.mu.Lock()
			if cur, ok := pst.dir[prev.id]; ok && cur.pos != pos && cur.pos%capacity == slot {
				if prev.id == id && prev.lsn > lsn {
					newest = false
				}
				delete(pst.dir, prev.id)
			}
			pst.mu.Unlock()
		}
		st := m.stripe(id)
		st.mu.Lock()
		if old, ok := st.dir[id]; ok && old.pos >= m.front {
			oldSlot := old.pos % capacity
			if m.meta[oldSlot].id == id && m.meta[oldSlot].valid {
				if m.meta[oldSlot].lsn > lsn {
					newest = false
				} else {
					m.meta[oldSlot].valid = false
				}
			}
		}
		m.meta[slot] = frameMeta{id: id, lsn: lsn, valid: newest, dirty: dirty, used: true}
		if newest {
			st.dir[id] = dirEntry{pos: pos, lsn: lsn, dirty: dirty}
		}
		st.mu.Unlock()
	}

	// Replay persisted entries for positions still inside the queue window.
	for pos := front; pos < persisted; pos++ {
		e, ok := entries[pos]
		if !ok {
			continue
		}
		apply(pos, e.id, e.lsn, e.dirty)
	}

	// Rescan frames written after the last metadata flush.  The enqueue
	// stamp distinguishes current-generation frames from stale ones.
	limit := persisted + 2*uint64(m.cfg.SegmentEntries)
	if limit > persisted+capacity {
		limit = persisted + capacity
	}
	m.seq = persisted
	buf := page.NewBuf()
	for pos := persisted; pos < limit; pos++ {
		slot := pos % capacity
		//lint:allow facevet/nolockio recovery scan: runs before the cache is shared, single-threaded by construction
		if err := m.cfg.Dev.ReadAt(m.layout.frameBlock(slot), buf); err != nil {
			return fmt.Errorf("face: recovery scan at frame %d: %w", slot, err)
		}
		m.stats.FlashPageReads++
		if buf.CacheStamp() != uint32(pos) || buf.ID() == page.InvalidID {
			break
		}
		// Conservatively treat rediscovered frames as dirty: at worst this
		// causes one redundant disk write when the frame is staged out.
		apply(pos, buf.ID(), buf.LSN(), true)
		m.metadir.restoreEntry(pos, metaEntry{id: buf.ID(), lsn: buf.LSN(), dirty: true})
		m.seq = pos + 1
	}
	if m.seq < m.front {
		m.seq = m.front
	}

	// Clamp the recovered window to the frame array.  The persisted front
	// can lag the pre-crash front (it is recorded at metadata flushes and,
	// under asynchronous destaging, clamped to un-landed destages), so
	// seq-front may exceed the number of physical slots.  Positions below
	// seq-capacity are below the pre-crash front, which only ever advanced
	// past landed destages — their disk copies are current — and their
	// slots alias newer positions, so keeping them would let the live
	// replacement path recycle a slot out from under a still-published
	// directory entry.  Drop them and start the queue from a window that
	// fits.
	if m.seq > m.front+capacity {
		newFront := m.seq - capacity
		for _, st := range m.stripes {
			st.mu.Lock()
			for id, e := range st.dir {
				if e.pos >= newFront {
					continue
				}
				slot := e.pos % capacity
				if m.meta[slot].id == id && m.meta[slot].valid {
					m.meta[slot] = frameMeta{}
				}
				delete(st.dir, id)
			}
			st.mu.Unlock()
		}
		m.front = newFront
	}
	return nil
}

// FlushAll writes every valid dirty frame to disk and marks it clean.  It
// is used for clean shutdown.
func (m *MVFIFO) FlushAll() error {
	m.wrMu.Lock()
	defer m.wrMu.Unlock()
	capacity := uint64(m.cfg.Frames)

	type target struct {
		pos uint64
		id  page.ID
	}
	m.mu.Lock()
	var targets []target
	for pos := m.front; pos < m.seq; pos++ {
		fm := &m.meta[pos%capacity]
		if fm.valid && fm.dirty {
			targets = append(targets, target{pos: pos, id: fm.id})
		}
	}
	m.mu.Unlock()

	for _, t := range targets {
		slot := t.pos % capacity
		buf := page.NewBuf()
		//lint:allow facevet/nolockio FlushAll is a shutdown/benchmark fence: wrMu excludes writers for its duration on purpose; m.mu is only taken for stats
		if err := m.cfg.Dev.ReadAt(m.layout.frameBlock(slot), buf); err != nil {
			return fmt.Errorf("face: flush read frame %d: %w", slot, err)
		}
		m.mu.Lock()
		m.stats.FlashPageReads++
		m.mu.Unlock()
		if err := m.destageOut(t.pos, t.id, buf); err != nil {
			return fmt.Errorf("face: flush write page %d: %w", t.id, err)
		}
		m.mu.Lock()
		m.meta[slot].dirty = false
		st := m.stripe(t.id)
		st.mu.Lock()
		if cur, ok := st.dir[t.id]; ok && cur.pos == t.pos {
			cur.dirty = false
			st.dir[t.id] = cur
		}
		st.mu.Unlock()
		m.mu.Unlock()
	}
	// The flush exists to leave the disk self-contained; make it durable.
	// Under asynchronous destaging the writes above went to the destager
	// and have not landed yet — the Async wrapper syncs after draining
	// them, so a barrier here would cover nothing.
	if m.cfg.DiskSync != nil && m.destage == nil {
		if err := m.cfg.DiskSync(); err != nil {
			return fmt.Errorf("face: syncing disk after flush: %w", err)
		}
	}
	return nil
}
