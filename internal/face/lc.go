package face

import (
	"container/list"
	"fmt"
	"sync"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
)

// LCConfig configures the Lazy Cleaning baseline (Do et al., SIGMOD 2011),
// the closest competitor evaluated in the paper: pages are cached on exit
// from the DRAM buffer, managed by LRU replacement with in-place frame
// overwrites (random flash writes), and handled with a write-back policy.
// A lazy cleaner flushes dirty frames to disk once their fraction exceeds a
// threshold.
//
// Setting WriteThrough builds the TAC-style write-through variant instead:
// dirty pages are written to both the flash cache and disk on eviction, so
// the cache never holds a dirty frame.  The paper uses this policy as the
// design alternative rejected in Section 3.2.
type LCConfig struct {
	// Dev is the flash device dedicated to the cache.
	Dev device.Dev
	// Frames is the number of 4 KiB frames in the cache.
	Frames int
	// DiskWrite writes a dirty page back to the database on disk.
	DiskWrite DiskWriteFunc
	// CleanThreshold is the dirty-frame fraction that triggers the lazy
	// cleaner (default 0.75).  Ignored with WriteThrough.
	CleanThreshold float64
	// CleanBatch is the number of dirty frames flushed per cleaning pass
	// (default 32).
	CleanBatch int
	// WriteThrough selects the write-through policy.
	WriteThrough bool
	// Label overrides the derived policy name.
	Label string
}

func (c *LCConfig) applyDefaults() {
	if c.CleanThreshold <= 0 || c.CleanThreshold > 1 {
		c.CleanThreshold = 0.75
	}
	if c.CleanBatch <= 0 {
		c.CleanBatch = 32
	}
}

func (c *LCConfig) name() string {
	if c.Label != "" {
		return c.Label
	}
	if c.WriteThrough {
		return "WT"
	}
	return "LC"
}

// The two baselines the paper compares against register themselves with
// the policy registry alongside the FaCE variants.
func init() {
	RegisterPolicy("lc", func(p PolicyParams) (Extension, error) {
		return NewLC(LCConfig{
			Dev: p.Dev, Frames: p.Frames, DiskWrite: p.DiskWrite,
			CleanThreshold: p.CleanThreshold,
		})
	})
	RegisterPolicy("wt", func(p PolicyParams) (Extension, error) {
		return NewLC(LCConfig{
			Dev: p.Dev, Frames: p.Frames, DiskWrite: p.DiskWrite,
			WriteThrough: true,
		})
	})
}

type lcFrame struct {
	id    page.ID
	slot  int64
	dirty bool
	elem  *list.Element
}

// LC is the LRU flash cache baseline.
type LC struct {
	mu  sync.Mutex
	cfg LCConfig

	frames map[page.ID]*lcFrame
	lru    *list.List // front = MRU
	free   []int64    // unused frame slots

	dirtyCount int
	stats      Stats
}

// NewLC creates an LC (or write-through) cache on the given flash device.
func NewLC(cfg LCConfig) (*LC, error) {
	cfg.applyDefaults()
	if cfg.Dev == nil {
		return nil, fmt.Errorf("face: nil flash device")
	}
	if cfg.DiskWrite == nil {
		return nil, fmt.Errorf("face: nil DiskWrite callback")
	}
	if cfg.Frames < 1 {
		return nil, fmt.Errorf("%w: %d frames", ErrTooSmall, cfg.Frames)
	}
	if int64(cfg.Frames) > cfg.Dev.NumBlocks() {
		return nil, fmt.Errorf("face: device has %d blocks, need %d", cfg.Dev.NumBlocks(), cfg.Frames)
	}
	c := &LC{
		cfg:    cfg,
		frames: make(map[page.ID]*lcFrame, cfg.Frames),
		lru:    list.New(),
		free:   make([]int64, 0, cfg.Frames),
	}
	for slot := int64(cfg.Frames) - 1; slot >= 0; slot-- {
		c.free = append(c.free, slot)
	}
	return c, nil
}

// Name returns the policy name.
func (c *LC) Name() string { return c.cfg.name() }

// Capacity returns the number of frames.
func (c *LC) Capacity() int { return c.cfg.Frames }

// Len returns the number of cached pages.
func (c *LC) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

// Stats returns a snapshot of the statistics.
func (c *LC) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats clears the statistics.
func (c *LC) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}

// Contains reports whether the page is cached.
func (c *LC) Contains(id page.ID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.frames[id]
	return ok
}

// Lookup searches the cache for the page.
func (c *LC) Lookup(id page.ID, buf page.Buf) (bool, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Lookups++
	f, ok := c.frames[id]
	if !ok {
		return false, false, nil
	}
	//lint:allow facevet/nolockio the single-lock LC baseline (Do et al.) serializes I/O under the cache mutex by design; FaCE's two-lock protocol is the improvement under test
	if err := c.cfg.Dev.ReadAt(f.slot, buf); err != nil {
		return false, false, fmt.Errorf("face: reading LC frame %d: %w", f.slot, err)
	}
	c.stats.FlashPageReads++
	c.stats.Hits++
	c.lru.MoveToFront(f.elem)
	return true, f.dirty, nil
}

// StageIn caches a page evicted from the DRAM buffer.
func (c *LC) StageIn(id page.ID, data page.Buf, dirty, fdirty bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.StageIns++
	if dirty {
		c.stats.DirtyStageIns++
	} else {
		c.stats.CleanStageIns++
	}

	if c.cfg.WriteThrough && dirty {
		// Write-through: the disk copy is updated immediately, so the
		// cached copy is clean.
		if err := c.cfg.DiskWrite(id, data); err != nil {
			return fmt.Errorf("face: write-through to disk for page %d: %w", id, err)
		}
		c.stats.DiskPageWrites++
		dirty = false
	}

	if f, ok := c.frames[id]; ok {
		// In-place overwrite of the existing frame (a random flash
		// write).  Skip the write when the cached copy is identical.
		if fdirty {
			//lint:allow facevet/nolockio single-lock LC baseline: in-place frame overwrite under the cache mutex is the design being measured
			if err := c.cfg.Dev.WriteAt(f.slot, data); err != nil {
				return fmt.Errorf("face: overwriting LC frame %d: %w", f.slot, err)
			}
			c.stats.FlashPageWrites++
			c.stats.Invalidations++
			if dirty && !f.dirty {
				c.dirtyCount++
			}
			f.dirty = f.dirty || dirty
		}
		c.lru.MoveToFront(f.elem)
		//lint:allow facevet/nolockio single-lock LC baseline: lazy cleaning runs under the cache mutex by design
		return c.lazyCleanLocked()
	}

	//lint:allow facevet/nolockio single-lock LC baseline: eviction write-back happens under the cache mutex by design
	slot, err := c.allocSlotLocked()
	if err != nil {
		return err
	}
	//lint:allow facevet/nolockio single-lock LC baseline: the staging write happens under the cache mutex by design
	if err := c.cfg.Dev.WriteAt(slot, data); err != nil {
		return fmt.Errorf("face: writing LC frame %d: %w", slot, err)
	}
	c.stats.FlashPageWrites++
	f := &lcFrame{id: id, slot: slot, dirty: dirty}
	f.elem = c.lru.PushFront(f)
	c.frames[id] = f
	if dirty {
		c.dirtyCount++
	}
	//lint:allow facevet/nolockio single-lock LC baseline: lazy cleaning runs under the cache mutex by design
	return c.lazyCleanLocked()
}

// allocSlotLocked returns a free frame slot, evicting the LRU frame if the
// cache is full.
func (c *LC) allocSlotLocked() (int64, error) {
	if n := len(c.free); n > 0 {
		slot := c.free[n-1]
		c.free = c.free[:n-1]
		return slot, nil
	}
	e := c.lru.Back()
	if e == nil {
		return 0, fmt.Errorf("face: LC cache has no evictable frame")
	}
	f := e.Value.(*lcFrame)
	if f.dirty {
		buf := page.NewBuf()
		if err := c.cfg.Dev.ReadAt(f.slot, buf); err != nil {
			return 0, fmt.Errorf("face: reading LC victim frame %d: %w", f.slot, err)
		}
		c.stats.FlashPageReads++
		if err := c.cfg.DiskWrite(f.id, buf); err != nil {
			return 0, fmt.Errorf("face: staging out page %d: %w", f.id, err)
		}
		c.stats.DiskPageWrites++
		c.dirtyCount--
	}
	c.lru.Remove(e)
	delete(c.frames, f.id)
	return f.slot, nil
}

// lazyCleanLocked flushes dirty frames from the LRU end to disk when the
// dirty fraction exceeds the configured threshold.
func (c *LC) lazyCleanLocked() error {
	if c.cfg.WriteThrough {
		return nil
	}
	threshold := int(c.cfg.CleanThreshold * float64(c.cfg.Frames))
	if c.dirtyCount <= threshold {
		return nil
	}
	cleaned := 0
	buf := page.NewBuf()
	for e := c.lru.Back(); e != nil && cleaned < c.cfg.CleanBatch && c.dirtyCount > 0; e = e.Prev() {
		f := e.Value.(*lcFrame)
		if !f.dirty {
			continue
		}
		if err := c.cfg.Dev.ReadAt(f.slot, buf); err != nil {
			return fmt.Errorf("face: lazy cleaner reading frame %d: %w", f.slot, err)
		}
		c.stats.FlashPageReads++
		if err := c.cfg.DiskWrite(f.id, buf); err != nil {
			return fmt.Errorf("face: lazy cleaner writing page %d: %w", f.id, err)
		}
		c.stats.DiskPageWrites++
		f.dirty = false
		c.dirtyCount--
		cleaned++
	}
	return nil
}

// Checkpoint writes every dirty cached frame to disk.  Unlike FaCE, the LC
// scheme does not extend the persistent database to the flash cache, so
// its dirty flash-resident pages remain subject to database checkpointing
// (Section 2.3 of the paper).
func (c *LC) Checkpoint() error {
	return c.FlushAll()
}

// Recover restarts the cache cold: LC keeps no persistent metadata, so the
// cached pages are unusable after a crash.
func (c *LC) Recover() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames = make(map[page.ID]*lcFrame, c.cfg.Frames)
	c.lru.Init()
	c.free = c.free[:0]
	for slot := int64(c.cfg.Frames) - 1; slot >= 0; slot-- {
		c.free = append(c.free, slot)
	}
	c.dirtyCount = 0
	return nil
}

// FlushAll writes every dirty frame to disk and marks it clean.
func (c *LC) FlushAll() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf := page.NewBuf()
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*lcFrame)
		if !f.dirty {
			continue
		}
		//lint:allow facevet/nolockio single-lock LC baseline: FlushAll is a shutdown/benchmark fence, no readers run concurrently
		if err := c.cfg.Dev.ReadAt(f.slot, buf); err != nil {
			return fmt.Errorf("face: flush reading frame %d: %w", f.slot, err)
		}
		c.stats.FlashPageReads++
		if err := c.cfg.DiskWrite(f.id, buf); err != nil {
			return fmt.Errorf("face: flush writing page %d: %w", f.id, err)
		}
		c.stats.DiskPageWrites++
		f.dirty = false
		c.dirtyCount--
	}
	return nil
}

// DirtyFrames returns the number of dirty frames (diagnostics).
func (c *LC) DirtyFrames() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dirtyCount
}

// compile-time interface checks
var (
	_ Extension = (*MVFIFO)(nil)
	_ Extension = (*LC)(nil)
)
