package face

// The asynchronous flash I/O pipeline: an Extension decorator that
// decouples DRAM buffer evictions from flash and disk I/O.
//
//	StageIn ──► staging ring ──► group writer ──► mvFIFO core ──► destager ──► disk
//	 (foreground)   (bounded,       (batches into    (GR/GSC        (worker pool,
//	                backpressure)   group writes)    unchanged)     write-behind)
//
// A page is always reachable while it moves through the pipeline: the
// staging ring serves lookups for pages not yet on flash, the core serves
// pages in the queue, and the destager's write-behind buffer serves dirty
// pages whose disk write has not landed.  Crash consistency follows from
// two invariants the core enforces with the destager's position watermark:
// a frame slot is never rewritten before its previous occupant's destage
// has landed, and the persistent front pointer never advances past an
// un-landed destage.  Pages lost from the volatile ring at a crash are
// redone from the write-ahead log, exactly like pages lost from the DRAM
// buffer (the engine forces the log before staging).

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/reprolab/face/internal/iosched"
	"github.com/reprolab/face/internal/metrics"
	"github.com/reprolab/face/internal/page"
)

// DefaultAsyncDepth is the staging ring capacity WithAsyncIO uses when the
// caller passes a negative depth.
const DefaultAsyncDepth = 256

// Shutdowner is implemented by cache managers with background machinery
// the engine must stop: Shutdown drains and stops (clean close), Abort
// stops without draining (crash simulation).
type Shutdowner interface {
	Shutdown() error
	Abort()
}

// PipelineReporter exposes the background pipeline counters.
type PipelineReporter interface {
	PipelineStats() metrics.PipelineStats
}

// AsyncConfig configures the asynchronous I/O pipeline.
type AsyncConfig struct {
	// Depth is the staging ring capacity in pages (<= 0: DefaultAsyncDepth).
	Depth int
	// Writers is the number of destager workers draining dirty pages to
	// disk (<= 0: 1).  More workers exploit the parallelism of a striped
	// data array.
	Writers int
	// Batch bounds the pages per group-writer flush (<= 0: the core's
	// replacement group size), so one flush maps onto one group write.
	Batch int
}

// stagedPage is the wrapper-side record of a page in the staging ring (or
// in a batch being flushed): the newest staged version, served to lookups
// until the core publishes it.
type stagedPage struct {
	seq   uint64
	data  page.Buf
	dirty bool
	ref   bool
}

// asyncStripe is one independently locked slice of the staging map, keyed
// by the same Fibonacci hash as the core's directory stripes so a page
// lands on the same stripe index in both structures.  StageIn and Lookup
// for different pages never share a mutex, which keeps the async wrapper
// scaling the same way the striped sync path does.
type asyncStripe struct {
	mu     sync.Mutex
	staged map[page.ID]*stagedPage
	// ringHits counts lookups this stripe served from the staging map,
	// folded into Stats and StripeStats on demand.
	ringHits int64
}

// Async decorates an mvFIFO cache manager with the background pipeline.
type Async struct {
	core *MVFIFO
	pipe *iosched.Pipeline

	// stripes is the striped staging map; see asyncStripe.
	stripes []*asyncStripe
	// seq orders staged versions of a page across stripes and ring slots.
	seq    atomic.Uint64
	closed atomic.Bool
	// Stage-in counters for versions coalesced away in the ring: they
	// never reach the core, but counting them keeps the write-reduction
	// denominator comparable with the synchronous path.
	coalescedStageIns      atomic.Int64
	coalescedDirtyStageIns atomic.Int64
	coalescedCleanStageIns atomic.Int64
}

var (
	_ Extension        = (*Async)(nil)
	_ Shutdowner       = (*Async)(nil)
	_ PipelineReporter = (*Async)(nil)
	_ StripeReporter   = (*Async)(nil)
)

// NewAsync wraps an mvFIFO cache manager in the asynchronous group-write
// and destage pipeline.  Only mvFIFO cores are supported: the multi-version
// queue is what makes deferred group writes safe (the newest version wins
// by LSN regardless of arrival order).
func NewAsync(ext Extension, cfg AsyncConfig) (*Async, error) {
	core, ok := ext.(*MVFIFO)
	if !ok {
		return nil, fmt.Errorf("face: async I/O requires an mvFIFO policy (face, face+gr, face+gsc), got %T", ext)
	}
	if cfg.Depth <= 0 {
		cfg.Depth = DefaultAsyncDepth
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 1
	}
	if cfg.Batch <= 0 {
		cfg.Batch = core.GroupSize()
	}

	// Under async I/O, write groups are topped up by the staging ring
	// batches instead of by pulling victims from the DRAM buffer.  A pull
	// would hand pages to the core behind the wrapper's back: a newer
	// pulled version could be shadowed by an older copy still sitting in
	// the staging ring, serving stale data.  Group Second Chance keeps its
	// survivor re-enqueue semantics; only the pull path is disabled.
	core.cfg.Pull = nil

	stripes := make([]*asyncStripe, core.Stripes())
	for i := range stripes {
		stripes[i] = &asyncStripe{staged: make(map[page.ID]*stagedPage)}
	}
	a := &Async{
		core:    core,
		stripes: stripes,
	}

	dest := iosched.NewDestager(cfg.Depth, cfg.Writers, func(id page.ID, data page.Buf) error {
		if err := core.cfg.DiskWrite(id, data); err != nil {
			return err
		}
		core.noteDiskWrite()
		return nil
	})
	// Install the destage hooks before the pipeline starts; see the MVFIFO
	// field docs for what each one guarantees.
	core.destage = func(pos uint64, id page.ID, data page.Buf) error {
		return dest.Enqueue(pos, id, data)
	}
	core.waitReuse = dest.WaitLanded
	core.persistFront = func(front uint64) uint64 {
		if min, ok := dest.MinPending(); ok && min < front {
			return min
		}
		return front
	}

	ring := iosched.NewRing(cfg.Depth)
	writer := iosched.NewGroupWriter(ring, cfg.Batch, a.flushBatch)
	a.pipe = &iosched.Pipeline{Ring: ring, Writer: writer, Dest: dest}
	return a, nil
}

// stripe returns the staging stripe holding the given page id.
func (a *Async) stripe(id page.ID) *asyncStripe {
	return a.stripes[stripeIndex(id, len(a.stripes))]
}

// flushBatch runs on the group-writer goroutine: it publishes one ring
// batch into the core as a single group write, then retires the staged
// versions it covered.
func (a *Async) flushBatch(items []iosched.Item) error {
	batch := make([]StageItem, len(items))
	for i, it := range items {
		// Merge reference bits earned while the page sat in the ring so
		// Group Second Chance sees ring hits like frame hits.
		st := a.stripe(it.ID)
		st.mu.Lock()
		if cur, ok := st.staged[it.ID]; ok && cur.seq == it.Seq {
			it.Ref = it.Ref || cur.ref
		}
		st.mu.Unlock()
		batch[i] = StageItem{ID: it.ID, Data: it.Data, Dirty: it.Dirty, FDirty: it.FDirty, Ref: it.Ref}
	}

	if err := a.core.StageBatch(batch); err != nil {
		return err
	}

	for _, it := range items {
		st := a.stripe(it.ID)
		st.mu.Lock()
		if cur, ok := st.staged[it.ID]; ok && cur.seq == it.Seq {
			delete(st.staged, it.ID)
		}
		st.mu.Unlock()
	}
	return nil
}

// Name returns the core policy name.
func (a *Async) Name() string { return a.core.Name() }

// Capacity returns the core frame count.
func (a *Async) Capacity() int { return a.core.Capacity() }

// Len returns the number of occupied core frames.
func (a *Async) Len() int { return a.core.Len() }

// StageIn stages an evicted page into the ring and returns without waiting
// for flash I/O; it blocks only when the ring is full (backpressure).
func (a *Async) StageIn(id page.ID, data page.Buf, dirty, fdirty bool) error {
	if a.closed.Load() {
		return ErrClosed
	}
	img := data.Clone()
	seq := a.seq.Add(1)
	st := a.stripe(id)
	st.mu.Lock()
	st.staged[id] = &stagedPage{seq: seq, data: img, dirty: dirty}
	st.mu.Unlock()

	old, superseded, err := a.pipe.Ring.Put(iosched.Item{ID: id, Data: img, Dirty: dirty, FDirty: fdirty, Seq: seq})
	if err != nil {
		st.mu.Lock()
		if cur, ok := st.staged[id]; ok && cur.seq == seq {
			delete(st.staged, id)
		}
		st.mu.Unlock()
		return err
	}
	if superseded {
		a.coalescedStageIns.Add(1)
		if old.Dirty {
			a.coalescedDirtyStageIns.Add(1)
		} else {
			a.coalescedCleanStageIns.Add(1)
		}
	}
	return nil
}

// Lookup serves the page from the newest place it exists: the staging
// ring, the mvFIFO queue, or the destager's write-behind buffer.
func (a *Async) Lookup(id page.ID, buf page.Buf) (bool, bool, error) {
	if a.closed.Load() {
		return false, false, ErrClosed
	}
	st := a.stripe(id)
	st.mu.Lock()
	if s, ok := st.staged[id]; ok {
		copy(buf, s.data)
		s.ref = true
		st.ringHits++
		dirty := s.dirty
		st.mu.Unlock()
		return true, dirty, nil
	}
	st.mu.Unlock()

	found, dirty, err := a.core.Lookup(id, buf)
	if err != nil || found {
		return found, dirty, err
	}
	if a.pipe.Dest.Lookup(id, buf) {
		// The destage has not landed yet, so the buffered copy is newer
		// than (or equal to) the disk copy.
		return true, true, nil
	}
	return false, false, nil
}

// Contains reports whether any stage of the pipeline holds the page.
func (a *Async) Contains(id page.ID) bool {
	st := a.stripe(id)
	st.mu.Lock()
	_, ok := st.staged[id]
	st.mu.Unlock()
	return ok || a.core.Contains(id) || a.pipe.Dest.Contains(id)
}

// Checkpoint drains the staging ring into the core so every page offered
// to the cache is durable in flash, then checkpoints the core's metadata
// directory.
func (a *Async) Checkpoint() error {
	if err := a.pipe.Writer.Drain(); err != nil {
		return err
	}
	return a.core.Checkpoint()
}

// Recover rebuilds the core directory; the pipeline of a freshly opened
// cache is empty.
func (a *Async) Recover() error {
	if err := a.pipe.Writer.Drain(); err != nil {
		return err
	}
	return a.core.Recover()
}

// FlushAll drains the pipeline end to end and writes every dirty cached
// page to disk: ring to flash, flash to destager, destager to disk.
func (a *Async) FlushAll() error {
	if err := a.pipe.Writer.Drain(); err != nil {
		return err
	}
	if err := a.core.FlushAll(); err != nil {
		return err
	}
	if err := a.pipe.Dest.Drain(); err != nil {
		return err
	}
	// The destager's disk writes landed after the core flush's barrier;
	// cover them too so the wrapper honours FlushAll's durability claim.
	if a.core.cfg.DiskSync != nil {
		return a.core.cfg.DiskSync()
	}
	return nil
}

// ringHitTotal sums the per-stripe ring hit counters.
func (a *Async) ringHitTotal() int64 {
	var total int64
	for _, st := range a.stripes {
		st.mu.Lock()
		total += st.ringHits
		st.mu.Unlock()
	}
	return total
}

// Stats folds the pipeline's lookup activity into the core statistics so
// hit ratios count pages served from the ring and the write-behind buffer.
func (a *Async) Stats() Stats {
	s := a.core.Stats()
	ringHits := a.ringHitTotal()
	s.Lookups += ringHits
	s.Hits += ringHits
	s.StageIns += a.coalescedStageIns.Load()
	s.DirtyStageIns += a.coalescedDirtyStageIns.Load()
	s.CleanStageIns += a.coalescedCleanStageIns.Load()
	s.Hits += a.pipe.Stats().DestageHits
	return s
}

// StripeStats returns the per-stripe lookup counters: the core directory
// stripes with this wrapper's ring hits folded into the matching stripe
// (the staging map is striped by the same hash, so indexes align).
func (a *Async) StripeStats() []metrics.CacheStripeStats {
	out := a.core.StripeStats()
	for i, st := range a.stripes {
		if i >= len(out) {
			break
		}
		st.mu.Lock()
		out[i].Lookups += st.ringHits
		out[i].Hits += st.ringHits
		st.mu.Unlock()
	}
	return out
}

// ResetStats clears the core and pipeline statistics.
func (a *Async) ResetStats() {
	a.core.ResetStats()
	a.pipe.ResetStats()
	for _, st := range a.stripes {
		st.mu.Lock()
		st.ringHits = 0
		st.mu.Unlock()
	}
	a.coalescedStageIns.Store(0)
	a.coalescedDirtyStageIns.Store(0)
	a.coalescedCleanStageIns.Store(0)
}

// PipelineStats returns the background pipeline counters.
func (a *Async) PipelineStats() metrics.PipelineStats {
	s := a.pipe.Stats()
	s.RingHits = a.ringHitTotal()
	return s
}

// Shutdown drains the pipeline and stops its goroutines (clean close).
func (a *Async) Shutdown() error {
	if a.closed.Swap(true) {
		return nil
	}
	return a.pipe.Close()
}

// Abort stops the pipeline without draining: staged pages and queued
// destages are discarded, as a crash would lose them.  Device access has
// quiesced when Abort returns.
func (a *Async) Abort() {
	if a.closed.Swap(true) {
		return
	}
	a.pipe.Abort()
}
