package face

import (
	"fmt"
	"sort"
	"sync"

	"github.com/reprolab/face/internal/device"
)

// PolicyParams carries the engine-supplied wiring and sizing a cache
// policy constructor may use.  Constructors are free to ignore fields that
// do not apply to their scheme (mvFIFO ignores CleanThreshold, LC ignores
// GroupSize, and so on).
type PolicyParams struct {
	// Dev is the flash device dedicated to the cache.
	Dev device.Dev
	// Frames is the cache capacity in 4 KiB page frames.
	Frames int
	// GroupSize is the replacement batch size for the group optimizations
	// (0 = DefaultGroupSize where grouping applies).
	GroupSize int
	// SegmentEntries sizes the persistent metadata segments (0 = default).
	SegmentEntries int
	// Stripes is the number of directory stripes the lookup structures
	// are split over (0 = 1, the historical single-mutex path).  Policies
	// without striped structures ignore it.
	Stripes int
	// CleanThreshold is the lazy-cleaner dirty fraction (0 = default).
	CleanThreshold float64
	// DiskWrite writes a dirty page back to the database on disk.
	DiskWrite DiskWriteFunc
	// DiskSync, when non-nil, is the data device's durability barrier
	// (fsync on file-backed devices, a no-op on simulated ones).  Policies
	// that persist metadata assuming completed disk writes call it first.
	DiskSync func() error
	// Pull, when non-nil, lets Group Second Chance top up a write group
	// with victims pulled from the DRAM buffer's LRU tail.
	Pull PullFunc
}

// PolicyConstructor builds a cache manager from the engine wiring.  A
// policy registered with a nil constructor runs without a flash cache
// (the "none" policy).
type PolicyConstructor func(PolicyParams) (Extension, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]PolicyConstructor{}
)

// RegisterPolicy makes a cache policy selectable by name.  The built-in
// schemes (face, face+gr, face+gsc, lc, wt, none) register themselves at
// init time; external packages may add their own policies the same way.
// Registering an empty name or the same name twice panics, mirroring
// database/sql.Register.
func RegisterPolicy(name string, ctor PolicyConstructor) {
	if name == "" {
		panic("face: RegisterPolicy with an empty policy name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("face: RegisterPolicy called twice for policy %q", name))
	}
	registry[name] = ctor
}

// PolicyRegistered reports whether name names a registered policy.
func PolicyRegistered(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// PolicyUsesFlash reports whether the named policy needs a flash device.
// Unknown names report false; use PolicyRegistered to distinguish them.
func PolicyUsesFlash(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return registry[name] != nil
}

// Policies returns the registered policy names in sorted order.
func Policies() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewPolicy constructs the named policy's cache manager.  Policies
// registered with a nil constructor (such as "none") yield a nil Extension
// and nil error: the engine runs without a flash cache.
func NewPolicy(name string, p PolicyParams) (Extension, error) {
	registryMu.RLock()
	ctor, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("face: unknown cache policy %q (registered: %v)", name, Policies())
	}
	if ctor == nil {
		return nil, nil
	}
	return ctor(p)
}

func groupOrDefault(n int) int {
	if n <= 0 {
		return DefaultGroupSize
	}
	return n
}

func init() {
	RegisterPolicy("none", nil)
}
