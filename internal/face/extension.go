// Package face implements the paper's contribution: flash memory used as
// an extension of the DRAM buffer ("Flash as Cache Extension").
//
// The package provides several cache managers behind one Extension
// interface:
//
//   - mvFIFO: the FaCE multi-version FIFO replacement (Section 3.2/3.3),
//     optionally with Group Replacement (GR) and Group Second Chance (GSC).
//   - LC: the Lazy Cleaning baseline (LRU, write-back, random in-place
//     flash writes) the paper compares against.
//   - Write-through: a TAC-style baseline that writes dirty evictions to
//     both flash and disk.
//
// All managers cache pages on *exit* from the DRAM buffer and serve
// lookups on DRAM misses.  The FaCE manager additionally keeps its
// metadata directory persistent in flash (Section 4.1) so that cached
// pages extend the persistent database and survive crashes.
package face

import (
	"errors"

	"github.com/reprolab/face/internal/metrics"
	"github.com/reprolab/face/internal/page"
)

// Errors returned by cache managers.
var (
	ErrTooSmall = errors.New("face: flash cache must hold at least one group of frames")
	ErrClosed   = errors.New("face: cache is closed")
)

// Extension is the interface between the database engine and a flash
// cache manager.
type Extension interface {
	// Name identifies the policy, e.g. "FaCE+GSC" or "LC".
	Name() string

	// Lookup searches the flash cache for a page.  On a hit the page
	// image is copied into buf and dirty reports whether the cached copy
	// is newer than the disk copy.
	Lookup(id page.ID, buf page.Buf) (found bool, dirty bool, err error)

	// Contains reports whether a valid copy of the page is cached,
	// without counting as a reference.
	Contains(id page.ID) bool

	// StageIn offers a page evicted from the DRAM buffer to the cache.
	// dirty means the page is newer than its disk copy; fdirty means it
	// is newer than its flash copy (Algorithm 1 in the paper).
	StageIn(id page.ID, data page.Buf, dirty, fdirty bool) error

	// Checkpoint participates in a database checkpoint.  For FaCE this
	// forces the metadata directory segment to flash (cheap); for LC it
	// writes all dirty cached pages to disk (expensive), mirroring the
	// behaviour the paper attributes to each scheme.
	Checkpoint() error

	// Recover rebuilds the in-memory cache metadata after a crash.  For
	// FaCE the persistent metadata directory and a bounded scan of
	// recently written frames restore the cache; for the baselines the
	// cache restarts cold.
	Recover() error

	// FlushAll writes every valid dirty cached page to disk.  It is used
	// for clean shutdown and by tests to verify durability invariants.
	FlushAll() error

	// Capacity returns the number of page frames in the cache.
	Capacity() int

	// Len returns the number of occupied frames (including invalid
	// multi-version duplicates for mvFIFO).
	Len() int

	// Stats returns a snapshot of cache statistics.
	Stats() Stats

	// ResetStats clears the statistics (used after warm-up).
	ResetStats()
}

// StripeReporter is implemented by cache managers with striped lookup
// structures; it exposes the per-stripe counter breakdown so directory hot
// spots are visible in engine snapshots, mirroring the buffer pool's
// per-shard statistics.
type StripeReporter interface {
	StripeStats() []metrics.CacheStripeStats
}

// Stats captures flash cache activity.  The hit rate and write reduction
// derived from these counters reproduce Table 3 of the paper.
type Stats struct {
	// Lookups is the number of flash cache probes (= DRAM buffer misses).
	Lookups int64
	// Hits is the number of probes served from the flash cache.
	Hits int64

	// StageIns counts pages offered to the cache on DRAM eviction.
	StageIns      int64
	DirtyStageIns int64
	CleanStageIns int64

	// FlashPageWrites counts 4 KiB pages written to the flash device.
	FlashPageWrites int64
	// FlashPageReads counts 4 KiB pages read from the flash device.
	FlashPageReads int64
	// DiskPageWrites counts dirty pages the cache wrote back to disk.
	DiskPageWrites int64

	// Invalidations counts older versions invalidated by new enqueues
	// (mvFIFO) or overwritten in place (LC).
	Invalidations int64
	// SecondChances counts frames re-enqueued by Group Second Chance.
	SecondChances int64
	// Pulled counts DRAM victims pulled from the buffer's LRU tail to
	// fill a write group (GSC).
	Pulled int64
	// MetadataFlushes counts persistent metadata segment writes.
	MetadataFlushes int64
	// Duplicates is a point-in-time gauge of extra (invalid) versions
	// resident in the cache, sampled at stage-in time.
	Duplicates int64
}

// HitRate returns the ratio of flash cache hits to all DRAM misses
// (Table 3a of the paper).
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// WriteReduction returns the fraction of dirty DRAM evictions whose disk
// write was eliminated by the cache (Table 3b of the paper).
func (s Stats) WriteReduction() float64 {
	if s.DirtyStageIns == 0 {
		return 0
	}
	r := 1 - float64(s.DiskPageWrites)/float64(s.DirtyStageIns)
	if r < 0 {
		return 0
	}
	return r
}

// DiskWriteFunc writes a dirty page back to the database on disk.  The
// engine supplies it so cache managers do not depend on the disk store.
type DiskWriteFunc func(id page.ID, data page.Buf) error

// PulledPage is a DRAM buffer victim pulled by Group Second Chance to top
// up a write group (Section 3.3).
type PulledPage struct {
	ID     page.ID
	Data   page.Buf
	Dirty  bool
	FDirty bool
}

// PullFunc removes up to n victims from the DRAM buffer's LRU tail.
type PullFunc func(n int) []PulledPage
