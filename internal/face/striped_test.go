package face

import (
	"sync"
	"testing"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
)

// newStripedMVFIFO builds an mvFIFO manager with the given stripe count
// over an in-memory flash device, recording disk writes in disk.
func newStripedMVFIFO(t *testing.T, stripes, frames, group int, disk map[page.ID]page.LSN, mu *sync.Mutex) *MVFIFO {
	t.Helper()
	dev := device.New("flash", device.ProfileSamsung470, int64(frames)+256)
	m, err := NewMVFIFO(MVFIFOConfig{
		Dev:            dev,
		Frames:         frames,
		GroupSize:      group,
		SecondChance:   true,
		SegmentEntries: 64,
		Stripes:        stripes,
		DiskWrite: func(id page.ID, data page.Buf) error {
			mu.Lock()
			defer mu.Unlock()
			disk[id] = data.LSN()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// stamp builds a page image whose payload is derived from id and lsn, so
// a lookup can verify it got the right version of the right page.
func stamp(id page.ID, lsn page.LSN) page.Buf {
	buf := page.NewBuf()
	buf.Init(id, page.TypeHeap)
	buf.SetLSN(lsn)
	buf[page.HeaderSize] = byte(id)
	buf[page.HeaderSize+1] = byte(lsn)
	return buf
}

// TestStripedLookupEquivalence runs one deterministic stage-in/lookup
// sequence at 1 and at 8 stripes: the hits, misses and returned images
// must be identical — striping is a locking change, not a policy change.
func TestStripedLookupEquivalence(t *testing.T) {
	run := func(stripes int) (Stats, map[page.ID]byte) {
		var mu sync.Mutex
		disk := map[page.ID]page.LSN{}
		m := newStripedMVFIFO(t, stripes, 64, 8, disk, &mu)
		if m.Stripes() != stripes {
			t.Fatalf("Stripes = %d, want %d", m.Stripes(), stripes)
		}
		// Stage three generations of 96 pages through a 64-frame cache so
		// replacement, invalidation and second chance all fire.
		for gen := 1; gen <= 3; gen++ {
			for i := 1; i <= 96; i++ {
				id := page.ID(i)
				if err := m.StageIn(id, stamp(id, page.LSN(gen*100+i)), gen%2 == 0, true); err != nil {
					t.Fatal(err)
				}
			}
		}
		seen := map[page.ID]byte{}
		buf := page.NewBuf()
		for i := 1; i <= 96; i++ {
			id := page.ID(i)
			found, _, err := m.Lookup(id, buf)
			if err != nil {
				t.Fatal(err)
			}
			if found {
				if buf.ID() != id {
					t.Fatalf("stripes=%d: Lookup(%d) returned page %d", stripes, id, buf.ID())
				}
				seen[id] = buf[page.HeaderSize+1]
			}
		}
		return m.Stats(), seen
	}
	s1, seen1 := run(1)
	s8, seen8 := run(8)
	if s1.Hits != s8.Hits || s1.Lookups != s8.Lookups || s1.StageIns != s8.StageIns ||
		s1.FlashPageWrites != s8.FlashPageWrites || s1.DiskPageWrites != s8.DiskPageWrites {
		t.Fatalf("striping changed behaviour:\n 1 stripe: %+v\n 8 stripes: %+v", s1, s8)
	}
	if len(seen1) != len(seen8) {
		t.Fatalf("cache contents differ: %d vs %d pages", len(seen1), len(seen8))
	}
	for id, v := range seen1 {
		if seen8[id] != v {
			t.Fatalf("page %d version differs: %d vs %d", id, v, seen8[id])
		}
	}
}

// TestStripedConcurrentLookups hammers Lookup and Contains from many
// goroutines while a writer keeps staging new versions.  Under -race this
// verifies the striped directory: no torn frame ever escapes (the payload
// must match the page id, and the LSN must be one of the versions actually
// staged for that page).
func TestStripedConcurrentLookups(t *testing.T) {
	var mu sync.Mutex
	disk := map[page.ID]page.LSN{}
	m := newStripedMVFIFO(t, 8, 128, 16, disk, &mu)

	const pages = 192
	for i := 1; i <= pages; i++ {
		id := page.ID(i)
		if err := m.StageIn(id, stamp(id, page.LSN(i)), true, true); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	var wg sync.WaitGroup
	// Writer: keeps rotating new versions through the queue.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for gen := 2; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			for i := 1; i <= pages; i++ {
				id := page.ID(i)
				if err := m.StageIn(id, stamp(id, page.LSN(gen*1000+i)), true, true); err != nil {
					t.Errorf("StageIn: %v", err)
					return
				}
			}
		}
	}()
	// Readers: every hit must be internally consistent.
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := page.NewBuf()
			for i := 0; i < 400; i++ {
				id := page.ID((g*31+i)%pages + 1)
				found, _, err := m.Lookup(id, buf)
				if err != nil {
					t.Errorf("Lookup(%d): %v", id, err)
					return
				}
				if found {
					if buf.ID() != id {
						t.Errorf("Lookup(%d) returned page %d", id, buf.ID())
						return
					}
					if buf[page.HeaderSize] != byte(id) {
						t.Errorf("page %d: torn payload", id)
						return
					}
				}
				m.Contains(id)
			}
		}()
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()

	s := m.Stats()
	if s.Lookups == 0 || s.Hits == 0 {
		t.Fatalf("workload did not exercise lookups: %+v", s)
	}
}

// TestStripedStatsCoherent: Stats and ResetStats race lookups and stage-ins
// without tearing (negative counters, rates outside [0, 1]).
func TestStripedStatsCoherent(t *testing.T) {
	var dmu sync.Mutex
	disk := map[page.ID]page.LSN{}
	m := newStripedMVFIFO(t, 8, 64, 8, disk, &dmu)
	for i := 1; i <= 64; i++ {
		id := page.ID(i)
		if err := m.StageIn(id, stamp(id, page.LSN(i)), false, true); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := page.NewBuf()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := m.Lookup(page.ID((g*17+i)%64+1), buf); err != nil {
					t.Errorf("Lookup: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		s := m.Stats()
		if s.Lookups < 0 || s.Hits < 0 || s.Hits > s.Lookups+s.StageIns {
			t.Fatalf("stats tore: %+v", s)
		}
		if hr := s.HitRate(); hr < 0 || hr > 1 {
			t.Fatalf("hit rate %v outside [0, 1]", hr)
		}
		if i%10 == 0 {
			m.ResetStats()
		}
	}
	close(stop)
	wg.Wait()
}
