package face

import (
	"strings"
	"testing"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
)

func registryParams() PolicyParams {
	return PolicyParams{
		Dev:       device.New("flash", device.ProfileSamsung470, 2048),
		Frames:    256,
		GroupSize: 16,
		DiskWrite: func(id page.ID, data page.Buf) error { return nil },
	}
}

func TestBuiltinPoliciesRegistered(t *testing.T) {
	for _, name := range []string{"none", "face", "face+gr", "face+gsc", "lc", "wt"} {
		if !PolicyRegistered(name) {
			t.Fatalf("built-in policy %q not registered", name)
		}
	}
	if PolicyRegistered("bogus") {
		t.Fatal("unregistered policy reported as registered")
	}
	if PolicyUsesFlash("none") {
		t.Fatal("policy none should not use flash")
	}
	for _, name := range []string{"face", "face+gr", "face+gsc", "lc", "wt"} {
		if !PolicyUsesFlash(name) {
			t.Fatalf("policy %q should use flash", name)
		}
	}
}

func TestNewPolicyConstructsEveryScheme(t *testing.T) {
	wantNames := map[string]string{
		"face": "FaCE", "face+gr": "FaCE+GR", "face+gsc": "FaCE+GSC",
		"lc": "LC", "wt": "WT",
	}
	for name, display := range wantNames {
		ext, err := NewPolicy(name, registryParams())
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if ext == nil {
			t.Fatalf("NewPolicy(%q) returned a nil extension", name)
		}
		if ext.Name() != display {
			t.Fatalf("NewPolicy(%q).Name() = %q, want %q", name, ext.Name(), display)
		}
	}
	if ext, err := NewPolicy("none", registryParams()); err != nil || ext != nil {
		t.Fatalf("NewPolicy(none) = %v, %v; want nil, nil", ext, err)
	}
	if _, err := NewPolicy("bogus", registryParams()); err == nil ||
		!strings.Contains(err.Error(), "unknown cache policy") {
		t.Fatalf("NewPolicy(bogus) error = %v", err)
	}
}

func TestPoliciesSortedAndComplete(t *testing.T) {
	names := Policies()
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"none", "face", "face+gr", "face+gsc", "lc", "wt"} {
		if !seen[want] {
			t.Fatalf("Policies() = %v is missing %q", names, want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Policies() not sorted: %v", names)
		}
	}
}

func TestRegisterPolicyGuards(t *testing.T) {
	mustPanic := func(what string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", what)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { RegisterPolicy("", nil) })
	mustPanic("duplicate name", func() { RegisterPolicy("face", nil) })
}

func TestRegisterCustomPolicy(t *testing.T) {
	called := false
	RegisterPolicy("test-custom", func(p PolicyParams) (Extension, error) {
		called = true
		return NewPolicy("lc", p)
	})
	ext, err := NewPolicy("test-custom", registryParams())
	if err != nil {
		t.Fatal(err)
	}
	if !called || ext == nil || ext.Name() != "LC" {
		t.Fatalf("custom constructor not used: called=%v ext=%v", called, ext)
	}
}
