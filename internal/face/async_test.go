package face

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
)

// gateDev wraps a device and blocks page-frame writes until released, so
// tests can hold a group write in flight deterministically.
type gateDev struct {
	device.Dev
	mu     sync.Mutex
	gated  bool
	gate   chan struct{}
	writes atomic.Int64
}

func newGateDev(inner device.Dev) *gateDev {
	return &gateDev{Dev: inner, gate: make(chan struct{})}
}

func (g *gateDev) closeGate() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.gated {
		g.gated = true
		g.gate = make(chan struct{})
	}
}

func (g *gateDev) openGate() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.gated {
		g.gated = false
		close(g.gate)
	}
}

func (g *gateDev) wait() {
	g.mu.Lock()
	ch := g.gate
	gated := g.gated
	g.mu.Unlock()
	if gated {
		<-ch
	}
}

func (g *gateDev) WriteAt(blk int64, p []byte) error {
	g.wait()
	g.writes.Add(1)
	return g.Dev.WriteAt(blk, p)
}

func (g *gateDev) WriteRun(blk int64, pages [][]byte) error {
	g.wait()
	g.writes.Add(int64(len(pages)))
	return g.Dev.WriteRun(blk, pages)
}

// tornDev silently drops all writes after the first n page writes,
// simulating power loss in the middle of a group write: a prefix of the
// group reaches the medium, the rest never does.
type tornDev struct {
	device.Dev
	mu     sync.Mutex
	budget int
}

func (d *tornDev) WriteAt(blk int64, p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.budget <= 0 {
		return nil
	}
	d.budget--
	//lint:allow facevet/nolockio test double: the torn-write budget must be apportioned atomically with the write it gates
	return d.Dev.WriteAt(blk, p)
}

func (d *tornDev) WriteRun(blk int64, pages [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, p := range pages {
		if d.budget <= 0 {
			return nil
		}
		d.budget--
		//lint:allow facevet/nolockio test double: the torn-write budget must be apportioned atomically with the writes it gates
		if err := d.Dev.WriteAt(blk+int64(i), p); err != nil {
			return err
		}
	}
	return nil
}

func newAsyncGSC(t *testing.T, frames int, disk *fakeDisk, cfg AsyncConfig, opts ...func(*MVFIFOConfig)) *Async {
	t.Helper()
	core := newFaCE(t, frames, disk, append([]func(*MVFIFOConfig){func(c *MVFIFOConfig) {
		c.GroupSize = 4
		c.SecondChance = true
	}}, opts...)...)
	a, err := NewAsync(core, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Abort() })
	return a
}

func TestAsyncRequiresMVFIFO(t *testing.T) {
	disk := newFakeDisk()
	lc, err := NewLC(LCConfig{Dev: flashDev(64), Frames: 8, DiskWrite: disk.write})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAsync(lc, AsyncConfig{}); err == nil {
		t.Fatal("NewAsync accepted a non-mvFIFO core")
	}
}

func TestAsyncStageLookupDrain(t *testing.T) {
	disk := newFakeDisk()
	a := newAsyncGSC(t, 16, disk, AsyncConfig{Depth: 8})

	for i := 1; i <= 6; i++ {
		p := makePage(page.ID(i), page.LSN(i), byte(i))
		if err := a.StageIn(page.ID(i), p, true, true); err != nil {
			t.Fatal(err)
		}
	}
	// Every staged page is immediately visible, wherever it currently is.
	buf := page.NewBuf()
	for i := 1; i <= 6; i++ {
		found, dirty, err := a.Lookup(page.ID(i), buf)
		if err != nil || !found || !dirty {
			t.Fatalf("page %d: found=%v dirty=%v err=%v", i, found, dirty, err)
		}
		if buf.ID() != page.ID(i) || buf.Payload()[0] != byte(i) {
			t.Fatalf("page %d: wrong image (id=%d marker=%d)", i, buf.ID(), buf.Payload()[0])
		}
	}
	if err := a.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// After a full drain the dirty pages are durable on disk.
	for i := 1; i <= 6; i++ {
		if _, ok := disk.pages[page.ID(i)]; !ok {
			t.Fatalf("page %d not on disk after FlushAll", i)
		}
	}
	if err := a.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := a.StageIn(7, makePage(7, 7, 7), false, false); err == nil {
		t.Fatal("StageIn accepted after Shutdown")
	}
}

// TestAsyncStageInDoesNotBlockOnFlash is the core decoupling property: a
// DRAM eviction returns while the flash group write is still in flight.
func TestAsyncStageInDoesNotBlockOnFlash(t *testing.T) {
	disk := newFakeDisk()
	gate := newGateDev(flashDev(128))
	core, err := NewMVFIFO(MVFIFOConfig{
		Dev: gate, Frames: 32, GroupSize: 4, SecondChance: true,
		SegmentEntries: 16, DiskWrite: disk.write,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAsync(core, AsyncConfig{Depth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Abort()

	gate.closeGate()
	done := make(chan error, 8)
	for i := 1; i <= 8; i++ {
		p := makePage(page.ID(i), page.LSN(i), byte(i))
		go func(id page.ID, p page.Buf) {
			done <- a.StageIn(id, p, true, true)
		}(page.ID(i), p)
	}
	for i := 0; i < 8; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("StageIn blocked on the gated flash device")
		}
	}
	// Lookups are served from the staging ring while the group write hangs.
	buf := page.NewBuf()
	found, _, err := a.Lookup(3, buf)
	if err != nil || !found || buf.Payload()[0] != 3 {
		t.Fatalf("ring lookup: found=%v err=%v marker=%d", found, err, buf.Payload()[0])
	}
	gate.openGate()
	if err := a.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := a.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if gate.writes.Load() == 0 {
		t.Fatal("no flash writes observed")
	}
}

// TestAsyncConcurrentStress hammers Lookup/StageIn/Checkpoint from many
// goroutines under -race and then verifies that the newest version of
// every dirty page survived somewhere durable.
func TestAsyncConcurrentStress(t *testing.T) {
	disk := newFakeDisk()
	a := newAsyncGSC(t, 64, disk, AsyncConfig{Depth: 32, Writers: 2})

	const (
		workers = 4
		pages   = 40
		rounds  = 150
	)
	var latest [pages + 1]atomic.Int64 // page id -> newest staged LSN
	var wg sync.WaitGroup
	errs := make(chan error, workers*2+1)

	var lsnSource atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				id := page.ID(rng.Intn(pages) + 1)
				lsn := lsnSource.Add(1)
				p := makePage(id, page.LSN(lsn), byte(id))
				// Track the newest LSN before staging so the checker never
				// expects more than what was offered.
				for {
					cur := latest[id].Load()
					if cur >= lsn || latest[id].CompareAndSwap(cur, lsn) {
						break
					}
				}
				if err := a.StageIn(id, p, true, true); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			buf := page.NewBuf()
			for r := 0; r < rounds; r++ {
				id := page.ID(rng.Intn(pages) + 1)
				found, _, err := a.Lookup(id, buf)
				if err != nil {
					errs <- err
					return
				}
				if found && buf.ID() != id {
					errs <- errLookupMismatch(id)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 10; r++ {
			if err := a.Checkpoint(); err != nil {
				errs <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	if err := a.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Every page's newest version must now be readable from the cache or
	// from disk, at its newest LSN.
	buf := page.NewBuf()
	for id := page.ID(1); id <= pages; id++ {
		want := page.LSN(latest[id].Load())
		if want == 0 {
			continue
		}
		found, _, err := a.Lookup(id, buf)
		if err != nil {
			t.Fatal(err)
		}
		got := page.LSN(0)
		if found {
			got = buf.LSN()
		}
		if d, ok := disk.pages[id]; ok && d.LSN() > got {
			got = d.LSN()
		}
		if got < want {
			t.Fatalf("page %d: newest surviving LSN %d < staged %d", id, got, want)
		}
	}
}

type errLookupMismatch page.ID

func (e errLookupMismatch) Error() string { return "lookup returned wrong page" }

// TestAsyncCrashRecoverSeesNoTornGroups aborts the pipeline while a group
// write is being torn by simulated power loss, then recovers a fresh
// manager on the same device: the recovered directory must contain only
// whole, correctly stamped frames, and every recovered page must be
// internally consistent.
func TestAsyncCrashRecoverSeesNoTornGroups(t *testing.T) {
	disk := newFakeDisk()
	inner := flashDev(256)
	core, err := NewMVFIFO(MVFIFOConfig{
		Dev: inner, Frames: 64, GroupSize: 8,
		SegmentEntries: 16, DiskWrite: disk.write,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAsync(core, AsyncConfig{Depth: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Stage a first wave and checkpoint it so the metadata directory holds
	// persistent state worth recovering.
	for i := 1; i <= 24; i++ {
		p := makePage(page.ID(i), page.LSN(i), byte(i))
		p.UpdateChecksum()
		if err := a.StageIn(page.ID(i), p, true, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	a.Abort()

	// Second incarnation on a torn device: half of the next group write is
	// lost mid-run.
	torn := &tornDev{Dev: inner, budget: 5}
	core2, err := NewMVFIFO(MVFIFOConfig{
		Dev: torn, Frames: 64, GroupSize: 8,
		SegmentEntries: 16, DiskWrite: disk.write,
	})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAsync(core2, AsyncConfig{Depth: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := 25; i <= 40; i++ {
		p := makePage(page.ID(i), page.LSN(i), byte(i))
		p.UpdateChecksum()
		if err := a2.StageIn(page.ID(i), p, true, true); err != nil {
			t.Fatal(err)
		}
	}
	// Crash while the torn writes are (not) landing.
	a2.Abort()

	// Third incarnation recovers from whatever reached the medium.
	core3, err := NewMVFIFO(MVFIFOConfig{
		Dev: inner, Frames: 64, GroupSize: 8,
		SegmentEntries: 16, DiskWrite: disk.write,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := core3.Recover(); err != nil {
		t.Fatal(err)
	}
	// Every page the recovered directory serves must be whole: right
	// header, valid checksum, plausible content.  Pages from the torn tail
	// may be missing — that is the crash contract — but nothing torn may
	// be served.
	buf := page.NewBuf()
	for id := page.ID(1); id <= 40; id++ {
		found, _, err := core3.Lookup(id, buf)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			continue
		}
		if buf.ID() != id {
			t.Fatalf("page %d: recovered frame has id %d (torn group leaked)", id, buf.ID())
		}
		if err := buf.VerifyChecksum(); err != nil {
			t.Fatalf("page %d: recovered frame fails checksum: %v", id, err)
		}
		if buf.Payload()[0] != byte(id) {
			t.Fatalf("page %d: recovered frame has marker %d", id, buf.Payload()[0])
		}
	}
	// The checkpointed first wave must have survived in full (flash or
	// disk).
	for id := page.ID(1); id <= 24; id++ {
		found, _, err := core3.Lookup(id, buf)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			if _, ok := disk.pages[id]; !ok {
				t.Fatalf("checkpointed page %d lost after crash", id)
			}
		}
	}
}

// TestMVFIFOConcurrentLookupDuringGroupWrite exercises the split-lock
// protocol of the synchronous core: lookups proceed and stay consistent
// while group writes and replacements run on another goroutine.
func TestMVFIFOConcurrentLookupDuringGroupWrite(t *testing.T) {
	disk := newFakeDisk()
	m := newFaCE(t, 32, disk, func(c *MVFIFOConfig) {
		c.GroupSize = 8
		c.SecondChance = true
	})
	const pages = 24
	stop := make(chan struct{})
	var readErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			buf := page.NewBuf()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := page.ID(rng.Intn(pages) + 1)
				found, _, err := m.Lookup(id, buf)
				if err != nil {
					readErr.Store(err)
					return
				}
				if found && (buf.ID() != id || buf.Payload()[0] != byte(id)) {
					readErr.Store(errLookupMismatch(id))
					return
				}
			}
		}(w)
	}
	for r := 0; r < 400; r++ {
		id := page.ID(r%pages + 1)
		p := makePage(id, page.LSN(r+1), byte(id))
		if err := m.StageIn(id, p, r%2 == 0, true); err != nil {
			t.Fatal(err)
		}
		if r%100 == 99 {
			if err := m.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := readErr.Load(); err != nil {
		t.Fatal(err)
	}
}
