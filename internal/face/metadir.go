package face

import (
	"encoding/binary"
	"fmt"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
)

// metaEntrySize is the on-flash size of one metadata entry: page id (8),
// pageLSN (8), flags (1), padding (7) — 24 bytes, as in the paper.
const metaEntrySize = 24

// superMagic identifies an initialised FaCE superblock.
const superMagic = 0xFACE5B10

// layout describes how the flash device is partitioned between the
// superblock, the persistent metadata region and the data frames.
//
//	block 0:                      superblock
//	blocks [1, 1+metaBlocks):     metadata segment slots
//	blocks [1+metaBlocks, ...):   data frames
type layout struct {
	frames       int64
	metaBlocks   int64
	segSlots     int
	blocksPerSeg int64
}

func computeLayout(frames, segEntries int) layout {
	blocksPerSeg := int64((segEntries*metaEntrySize + device.BlockSize - 1) / device.BlockSize)
	segSlots := (frames+segEntries-1)/segEntries + 2
	return layout{
		frames:       int64(frames),
		metaBlocks:   int64(segSlots) * blocksPerSeg,
		segSlots:     segSlots,
		blocksPerSeg: blocksPerSeg,
	}
}

func (l layout) totalBlocks() int64 { return 1 + l.metaBlocks + l.frames }

// frameBlock returns the device block of data frame slot.
func (l layout) frameBlock(slot uint64) int64 { return 1 + l.metaBlocks + int64(slot) }

// segBlock returns the first device block of metadata segment slot idx.
func (l layout) segBlock(idx int) int64 { return 1 + int64(idx)*l.blocksPerSeg }

// metaEntry is one persistent metadata directory entry (Section 4.1).
type metaEntry struct {
	id    page.ID
	lsn   page.LSN
	dirty bool
}

// metaDirectory manages the persistent metadata directory: entries are
// collected in memory per segment and written to flash sequentially, in
// the same chronological order as the data pages they describe.
type metaDirectory struct {
	dev        device.Dev
	layout     layout
	segEntries int

	// cur holds the entries of segments that are not yet complete, keyed
	// by absolute queue position.
	cur map[uint64]metaEntry
	// persisted is the position up to which entries are durable on flash.
	persisted uint64
	// preSync, when non-nil, is the data device's durability barrier,
	// called before a flush persists an advanced front pointer: the front
	// must never become durable past a destaged page whose disk write is
	// still volatile, or a crash would lose the page's only current copy.
	// syncedFront is the largest front already persisted under that
	// barrier; flushes that do not advance it skip the sync.
	preSync     func() error
	syncedFront uint64
}

func newMetaDirectory(dev device.Dev, lay layout, segEntries int) *metaDirectory {
	return &metaDirectory{
		dev:        dev,
		layout:     lay,
		segEntries: segEntries,
		cur:        make(map[uint64]metaEntry, segEntries),
	}
}

// appendEntry records the metadata of the page enqueued at position pos.
// When the entry completes a segment, the segment is flushed to flash.  It
// returns the number of segment flushes performed.
func (d *metaDirectory) appendEntry(e metaEntry, pos, front uint64) (int, error) {
	d.cur[pos] = e
	if (pos+1)%uint64(d.segEntries) == 0 {
		return d.flush(pos+1, front)
	}
	return 0, nil
}

// flush writes all entries in [persisted, seq) to their segment slots,
// then persists the queue pointers in the superblock.  A partially filled
// segment may be written (e.g. at a database checkpoint); its remaining
// entries are rewritten when the segment completes.  It returns the number
// of segment flushes performed.
func (d *metaDirectory) flush(seq, front uint64) (int, error) {
	// Destaged disk writes become durable before the front that assumes
	// them does (no-op on simulated devices).  A flush that does not
	// advance the persistent front vouches for no new destages, so the
	// cache-filling phase pays no data-file fsync per group write.
	if d.preSync != nil && front > d.syncedFront {
		if err := d.preSync(); err != nil {
			return 0, fmt.Errorf("face: syncing disk before metadata flush: %w", err)
		}
		d.syncedFront = front
	}
	if seq <= d.persisted {
		// Nothing new; still persist the pointers so front advances are
		// not lost across a crash.
		return 0, d.writeSuperblock(front, d.persisted)
	}
	flushes := 0
	segEntries := uint64(d.segEntries)
	firstSeg := d.persisted / segEntries
	lastSeg := (seq - 1) / segEntries
	for seg := firstSeg; seg <= lastSeg; seg++ {
		segStart := seg * segEntries
		segEnd := segStart + segEntries
		if segEnd > seq {
			segEnd = seq
		}
		img := make([]byte, d.layout.blocksPerSeg*device.BlockSize)
		for pos := segStart; pos < segEnd; pos++ {
			e, ok := d.cur[pos]
			if !ok {
				continue
			}
			off := int(pos-segStart) * metaEntrySize
			binary.LittleEndian.PutUint64(img[off:], uint64(e.id))
			binary.LittleEndian.PutUint64(img[off+8:], uint64(e.lsn))
			if e.dirty {
				img[off+16] = 1
			}
		}
		slot := int(seg % uint64(d.layout.segSlots))
		blocks := make([][]byte, d.layout.blocksPerSeg)
		for i := range blocks {
			blocks[i] = img[i*device.BlockSize : (i+1)*device.BlockSize]
		}
		if err := d.dev.WriteRun(d.layout.segBlock(slot), blocks); err != nil {
			return flushes, fmt.Errorf("face: writing metadata segment %d: %w", seg, err)
		}
		flushes++
		// Entries of completed segments are no longer needed in memory.
		if segEnd == segStart+segEntries {
			for pos := segStart; pos < segEnd; pos++ {
				delete(d.cur, pos)
			}
		}
	}
	// The segments become durable before the superblock that vouches for
	// them: a single barrier after both writes could not order them (the
	// OS may write back block 0 first), and a durable superblock pointing
	// at unwritten segment slots would make recovery decode the slots'
	// previous-generation entries as current page mappings.
	if flushes > 0 {
		if err := device.Sync(d.dev); err != nil {
			return flushes, fmt.Errorf("face: syncing metadata segments: %w", err)
		}
	}
	d.persisted = seq
	return flushes, d.writeSuperblock(front, seq)
}

// writeSuperblock persists the queue pointers and cache geometry.
func (d *metaDirectory) writeSuperblock(front, persisted uint64) error {
	blk := make([]byte, device.BlockSize)
	binary.LittleEndian.PutUint32(blk[0:], superMagic)
	binary.LittleEndian.PutUint64(blk[4:], uint64(d.layout.frames))
	binary.LittleEndian.PutUint32(blk[12:], uint32(d.segEntries))
	binary.LittleEndian.PutUint64(blk[16:], front)
	binary.LittleEndian.PutUint64(blk[24:], persisted)
	if err := d.dev.WriteAt(0, blk); err != nil {
		return fmt.Errorf("face: writing superblock: %w", err)
	}
	// The pointers themselves must be durable too; the segments they
	// reference were synced before this write (see flush).
	if err := device.Sync(d.dev); err != nil {
		return fmt.Errorf("face: syncing metadata superblock: %w", err)
	}
	return nil
}

// load reads the superblock and every persisted metadata entry that still
// falls inside the queue window.  It returns the persistent front pointer,
// the persisted position and the decoded entries keyed by position.
func (d *metaDirectory) load() (front, persisted uint64, entries map[uint64]metaEntry, err error) {
	blk := make([]byte, device.BlockSize)
	if err := d.dev.ReadAt(0, blk); err != nil {
		return 0, 0, nil, fmt.Errorf("face: reading superblock: %w", err)
	}
	if binary.LittleEndian.Uint32(blk[0:]) != superMagic {
		// No superblock: the cache crashed before any metadata flush.
		// Recovery proceeds with an empty directory and relies on the
		// enqueue-stamp scan to rediscover recently written frames.
		d.persisted = 0
		d.cur = make(map[uint64]metaEntry, d.segEntries)
		return 0, 0, map[uint64]metaEntry{}, nil
	}
	frames := int64(binary.LittleEndian.Uint64(blk[4:]))
	segEntries := int(binary.LittleEndian.Uint32(blk[12:]))
	if frames != d.layout.frames || segEntries != d.segEntries {
		return 0, 0, nil, fmt.Errorf("face: superblock geometry mismatch: device has %d frames / %d entries per segment, cache configured with %d / %d",
			frames, segEntries, d.layout.frames, d.segEntries)
	}
	front = binary.LittleEndian.Uint64(blk[16:])
	persisted = binary.LittleEndian.Uint64(blk[24:])
	d.persisted = persisted
	// The recovered front was durable, so the disk writes below it were
	// synced by whoever persisted it.
	d.syncedFront = front
	d.cur = make(map[uint64]metaEntry, d.segEntries)

	entries = make(map[uint64]metaEntry)
	if persisted == 0 || persisted <= front {
		return front, persisted, entries, nil
	}
	// Read the whole metadata region sequentially and decode the entries
	// belonging to [front, persisted).
	region := make([]byte, d.layout.metaBlocks*device.BlockSize)
	if err := d.dev.ReadRun(1, int(d.layout.metaBlocks), func(i int, p []byte) error {
		copy(region[i*device.BlockSize:], p)
		return nil
	}); err != nil {
		return 0, 0, nil, fmt.Errorf("face: reading metadata region: %w", err)
	}
	segEntries64 := uint64(d.segEntries)
	for pos := front; pos < persisted; pos++ {
		seg := pos / segEntries64
		slot := int(seg % uint64(d.layout.segSlots))
		off := int64(slot)*d.layout.blocksPerSeg*device.BlockSize + int64(pos%segEntries64)*metaEntrySize
		id := page.ID(binary.LittleEndian.Uint64(region[off:]))
		if id == page.InvalidID {
			continue
		}
		e := metaEntry{
			id:    id,
			lsn:   page.LSN(binary.LittleEndian.Uint64(region[off+8:])),
			dirty: region[off+16] == 1,
		}
		entries[pos] = e
		// Entries of the current (incomplete) segment must stay in memory:
		// when that segment is eventually flushed it is rewritten in full
		// from the in-memory copy.
		if pos >= (persisted/segEntries64)*segEntries64 {
			d.cur[pos] = e
		}
	}
	return front, persisted, entries, nil
}

// restoreEntry re-registers an entry rediscovered by the recovery scan so
// it is included in the next metadata flush.
func (d *metaDirectory) restoreEntry(pos uint64, e metaEntry) {
	d.cur[pos] = e
}
