package face

import (
	"errors"
	"fmt"
	"testing"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
)

// fakeDisk records dirty pages written back by the cache managers.
type fakeDisk struct {
	pages  map[page.ID]page.Buf
	writes int
	err    error
}

func newFakeDisk() *fakeDisk { return &fakeDisk{pages: make(map[page.ID]page.Buf)} }

func (d *fakeDisk) write(id page.ID, data page.Buf) error {
	if d.err != nil {
		return d.err
	}
	d.writes++
	d.pages[id] = data.Clone()
	return nil
}

func flashDev(blocks int64) *device.Device {
	return device.New("flash", device.ProfileSamsung470, blocks)
}

// makePage builds a page image with the given id, lsn and a marker byte.
func makePage(id page.ID, lsn page.LSN, marker byte) page.Buf {
	b := page.NewBuf()
	b.Init(id, page.TypeHeap)
	b.SetLSN(lsn)
	b.Payload()[0] = marker
	return b
}

func newFaCE(t *testing.T, frames int, disk *fakeDisk, opts ...func(*MVFIFOConfig)) *MVFIFO {
	t.Helper()
	cfg := MVFIFOConfig{
		Dev:            flashDev(int64(frames) + 64),
		Frames:         frames,
		SegmentEntries: 16,
		DiskWrite:      disk.write,
	}
	for _, o := range opts {
		o(&cfg)
	}
	m, err := NewMVFIFO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMVFIFONames(t *testing.T) {
	disk := newFakeDisk()
	base := newFaCE(t, 8, disk)
	gr := newFaCE(t, 8, disk, func(c *MVFIFOConfig) { c.GroupSize = 4 })
	gsc := newFaCE(t, 8, disk, func(c *MVFIFOConfig) { c.GroupSize = 4; c.SecondChance = true })
	named := newFaCE(t, 8, disk, func(c *MVFIFOConfig) { c.Label = "custom" })
	if base.Name() != "FaCE" || gr.Name() != "FaCE+GR" || gsc.Name() != "FaCE+GSC" || named.Name() != "custom" {
		t.Fatalf("names: %q %q %q %q", base.Name(), gr.Name(), gsc.Name(), named.Name())
	}
}

func TestNewMVFIFOValidation(t *testing.T) {
	disk := newFakeDisk()
	if _, err := NewMVFIFO(MVFIFOConfig{Frames: 8, DiskWrite: disk.write}); err == nil {
		t.Fatal("nil device accepted")
	}
	if _, err := NewMVFIFO(MVFIFOConfig{Dev: flashDev(100), Frames: 8}); err == nil {
		t.Fatal("nil DiskWrite accepted")
	}
	if _, err := NewMVFIFO(MVFIFOConfig{Dev: flashDev(100), Frames: 2, GroupSize: 4, DiskWrite: disk.write}); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("got %v, want ErrTooSmall", err)
	}
	if _, err := NewMVFIFO(MVFIFOConfig{Dev: flashDev(4), Frames: 1000, DiskWrite: disk.write}); err == nil {
		t.Fatal("oversized frame count accepted")
	}
}

func TestMVFIFOBasicHit(t *testing.T) {
	disk := newFakeDisk()
	m := newFaCE(t, 8, disk)
	p := makePage(42, 7, 0xAA)
	if err := m.StageIn(42, p, true, true); err != nil {
		t.Fatal(err)
	}
	if !m.Contains(42) {
		t.Fatal("page 42 should be cached")
	}
	buf := page.NewBuf()
	found, dirty, err := m.Lookup(42, buf)
	if err != nil || !found || !dirty {
		t.Fatalf("Lookup = %v,%v,%v", found, dirty, err)
	}
	if buf.ID() != 42 || buf.Payload()[0] != 0xAA {
		t.Fatal("lookup returned wrong content")
	}
	if found, _, _ := m.Lookup(99, buf); found {
		t.Fatal("phantom hit")
	}
	s := m.Stats()
	if s.Hits != 1 || s.Lookups != 2 || s.HitRate() != 0.5 {
		t.Fatalf("stats %+v", s)
	}
}

func TestMVFIFOConditionalEnqueue(t *testing.T) {
	disk := newFakeDisk()
	m := newFaCE(t, 8, disk)
	p := makePage(1, 1, 1)
	// Clean page, not cached: enqueued.
	if err := m.StageIn(1, p, false, false); err != nil {
		t.Fatal(err)
	}
	writes := m.Stats().FlashPageWrites
	// Same clean page again: identical copy exists, no flash write.
	if err := m.StageIn(1, p, false, false); err != nil {
		t.Fatal(err)
	}
	if m.Stats().FlashPageWrites != writes {
		t.Fatal("conditional enqueue should skip identical copies")
	}
	// fdirty version: unconditional enqueue, invalidating the old one.
	p2 := makePage(1, 5, 2)
	if err := m.StageIn(1, p2, true, true); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.FlashPageWrites != writes+1 || s.Invalidations != 1 {
		t.Fatalf("stats %+v", s)
	}
	// The valid copy is the new version.
	buf := page.NewBuf()
	found, dirty, _ := m.Lookup(1, buf)
	if !found || !dirty || buf.Payload()[0] != 2 {
		t.Fatal("lookup did not return the latest version")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (one valid + one invalid duplicate)", m.Len())
	}
	if m.Stats().Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", m.Stats().Duplicates)
	}
}

func TestMVFIFOStageOutWritesDirtyToDisk(t *testing.T) {
	disk := newFakeDisk()
	m := newFaCE(t, 4, disk)
	// Fill the cache with dirty pages 1..4, then add page 5: page 1 must
	// be staged out to disk.
	for id := page.ID(1); id <= 5; id++ {
		p := makePage(id, page.LSN(id), byte(id))
		if err := m.StageIn(id, p, true, true); err != nil {
			t.Fatal(err)
		}
	}
	if disk.writes != 1 {
		t.Fatalf("disk writes = %d, want 1", disk.writes)
	}
	if got, ok := disk.pages[1]; !ok || got.Payload()[0] != 1 {
		t.Fatal("page 1 content not written to disk")
	}
	if m.Contains(1) {
		t.Fatal("staged-out page still reported as cached")
	}
	s := m.Stats()
	if s.DiskPageWrites != 1 || s.WriteReduction() <= 0.7 {
		t.Fatalf("stats %+v, write reduction %.2f", s, s.WriteReduction())
	}
}

func TestMVFIFODiscardCleanAndInvalid(t *testing.T) {
	disk := newFakeDisk()
	m := newFaCE(t, 4, disk)
	// Two versions of page 1 (one invalid), then clean pages.
	m.StageIn(1, makePage(1, 1, 1), true, true)
	m.StageIn(1, makePage(1, 2, 2), true, true)
	m.StageIn(2, makePage(2, 1, 1), false, false)
	m.StageIn(3, makePage(3, 1, 1), false, false)
	// Cache full (4 frames).  Adding page 4 dequeues the invalid old
	// version of page 1: no disk write.
	m.StageIn(4, makePage(4, 1, 1), false, false)
	if disk.writes != 0 {
		t.Fatalf("disk writes = %d, want 0 (invalid version discarded)", disk.writes)
	}
	// Adding page 5 dequeues the valid dirty version of page 1: 1 write.
	m.StageIn(5, makePage(5, 1, 1), false, false)
	if disk.writes != 1 {
		t.Fatalf("disk writes = %d, want 1", disk.writes)
	}
	// Adding page 6 dequeues clean page 2: discarded, no write.
	m.StageIn(6, makePage(6, 1, 1), false, false)
	if disk.writes != 1 {
		t.Fatalf("disk writes = %d, want 1 after clean discard", disk.writes)
	}
	if m.Contains(2) {
		t.Fatal("discarded page still cached")
	}
}

func TestMVFIFOSequentialWritePattern(t *testing.T) {
	disk := newFakeDisk()
	dev := flashDev(600)
	m, err := NewMVFIFO(MVFIFOConfig{Dev: dev, Frames: 256, SegmentEntries: 64, DiskWrite: disk.write})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		id := page.ID(i%500 + 1)
		if err := m.StageIn(id, makePage(id, page.LSN(i), byte(i)), true, true); err != nil {
			t.Fatal(err)
		}
	}
	s := dev.Stats()
	if s.RandWrites > s.SeqWrites/10 {
		t.Fatalf("FaCE writes should be overwhelmingly sequential: %v", s)
	}
}

func TestLCRandomWritePattern(t *testing.T) {
	disk := newFakeDisk()
	dev := flashDev(256)
	c, err := NewLC(LCConfig{Dev: dev, Frames: 256, DiskWrite: disk.write})
	if err != nil {
		t.Fatal(err)
	}
	// Evictions arrive in an effectively random page order, as they do
	// from a real buffer pool, so LC's in-place LRU replacement scatters
	// writes across the flash device.
	seed := uint64(1)
	for i := 0; i < 2000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		id := page.ID(seed%500 + 1)
		if err := c.StageIn(id, makePage(id, page.LSN(i), byte(i)), true, true); err != nil {
			t.Fatal(err)
		}
	}
	s := dev.Stats()
	if s.RandWrites < s.SeqWrites {
		t.Fatalf("LC writes should be mostly random at steady state: %v", s)
	}
}

func TestGroupReplacementBatchesIO(t *testing.T) {
	disk := newFakeDisk()
	devSingle := flashDev(200)
	devGroup := flashDev(200)
	single, err := NewMVFIFO(MVFIFOConfig{Dev: devSingle, Frames: 64, SegmentEntries: 32, DiskWrite: disk.write})
	if err != nil {
		t.Fatal(err)
	}
	group, err := NewMVFIFO(MVFIFOConfig{Dev: devGroup, Frames: 64, GroupSize: 16, SegmentEntries: 32, DiskWrite: disk.write})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		id := page.ID(i%300 + 1)
		p := makePage(id, page.LSN(i), byte(i))
		if err := single.StageIn(id, p, true, true); err != nil {
			t.Fatal(err)
		}
		if err := group.StageIn(id, p, true, true); err != nil {
			t.Fatal(err)
		}
	}
	if devGroup.BusyTime() >= devSingle.BusyTime() {
		t.Fatalf("group replacement should reduce flash busy time: group=%v single=%v",
			devGroup.BusyTime(), devSingle.BusyTime())
	}
}

func TestGroupSecondChanceKeepsHotPages(t *testing.T) {
	disk := newFakeDisk()
	m := newFaCE(t, 16, disk, func(c *MVFIFOConfig) { c.GroupSize = 4; c.SecondChance = true })
	// Page 1 is hot: cached and referenced.
	m.StageIn(1, makePage(1, 1, 1), true, true)
	buf := page.NewBuf()
	m.Lookup(1, buf)
	// Fill the cache so replacement reaches page 1.
	for id := page.ID(2); id <= 20; id++ {
		if err := m.StageIn(id, makePage(id, 1, byte(id)), true, true); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Contains(1) {
		t.Fatal("referenced page 1 should have been kept by second chance")
	}
	if m.Stats().SecondChances == 0 {
		t.Fatal("second chances not counted")
	}
}

func TestGSCPullsVictimsFromDRAM(t *testing.T) {
	disk := newFakeDisk()
	nextPull := page.ID(1000)
	pull := func(n int) []PulledPage {
		var out []PulledPage
		for i := 0; i < n; i++ {
			id := nextPull
			nextPull++
			out = append(out, PulledPage{ID: id, Data: makePage(id, 1, 9), Dirty: true, FDirty: true})
		}
		return out
	}
	m := newFaCE(t, 16, disk, func(c *MVFIFOConfig) {
		c.GroupSize = 8
		c.SecondChance = true
		c.Pull = pull
	})
	for id := page.ID(1); id <= 40; id++ {
		if err := m.StageIn(id, makePage(id, 1, byte(id)), true, true); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Stats()
	if s.Pulled == 0 {
		t.Fatal("GSC never pulled DRAM victims")
	}
	// Every pulled page was dirty, so it must either still be cached or
	// have been staged out to disk — it can never simply vanish.
	for id := page.ID(1000); id < nextPull; id++ {
		if _, onDisk := disk.pages[id]; !onDisk && !m.Contains(id) {
			t.Fatalf("pulled page %d neither cached nor written to disk", id)
		}
	}
}

func TestMVFIFOCheckpointAndRecover(t *testing.T) {
	disk := newFakeDisk()
	dev := flashDev(300)
	cfg := MVFIFOConfig{Dev: dev, Frames: 64, SegmentEntries: 8, DiskWrite: disk.write}
	m, err := NewMVFIFO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stage in 40 dirty pages; with 8-entry segments most metadata is
	// persisted automatically, the tail only in RAM.
	for id := page.ID(1); id <= 40; id++ {
		if err := m.StageIn(id, makePage(id, page.LSN(100+id), byte(id)), true, true); err != nil {
			t.Fatal(err)
		}
	}
	// Crash without a checkpoint: build a fresh manager on the same device
	// and recover.
	m2, err := NewMVFIFO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	// Every page staged in must be discoverable after recovery: the
	// persisted segments cover the old ones and the stamp scan the rest.
	missing := 0
	for id := page.ID(1); id <= 40; id++ {
		if !m2.Contains(id) {
			missing++
		}
	}
	if missing != 0 {
		t.Fatalf("%d of 40 pages lost after recovery", missing)
	}
	buf := page.NewBuf()
	found, dirty, err := m2.Lookup(17, buf)
	if err != nil || !found || !dirty {
		t.Fatalf("Lookup(17) after recovery = %v,%v,%v", found, dirty, err)
	}
	if buf.Payload()[0] != 17 || buf.LSN() != page.LSN(117) {
		t.Fatal("recovered page content mismatch")
	}
}

func TestMVFIFORecoverAfterCheckpointAndWraparound(t *testing.T) {
	disk := newFakeDisk()
	dev := flashDev(200)
	cfg := MVFIFOConfig{Dev: dev, Frames: 32, SegmentEntries: 8, DiskWrite: disk.write}
	m, err := NewMVFIFO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Push several times the capacity through the cache so the queue and
	// the metadata segment slots wrap around, with a checkpoint midway.
	for i := 0; i < 150; i++ {
		id := page.ID(i%60 + 1)
		if err := m.StageIn(id, makePage(id, page.LSN(i+1), byte(i)), true, true); err != nil {
			t.Fatal(err)
		}
		if i == 75 {
			if err := m.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	cachedBefore := map[page.ID]bool{}
	for id := page.ID(1); id <= 60; id++ {
		if m.Contains(id) {
			cachedBefore[id] = true
		}
	}
	m2, err := NewMVFIFO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	for id := range cachedBefore {
		if !m2.Contains(id) {
			t.Fatalf("page %d cached before crash but lost after recovery", id)
		}
	}
	// Recovered lookups must return the newest version (highest LSN seen).
	buf := page.NewBuf()
	for id := range cachedBefore {
		found, _, err := m2.Lookup(id, buf)
		if err != nil || !found {
			t.Fatalf("Lookup(%d) after recovery failed: %v %v", id, found, err)
		}
		if buf.ID() != id {
			t.Fatalf("Lookup(%d) returned page %d", id, buf.ID())
		}
	}
}

func TestMVFIFOFlushAll(t *testing.T) {
	disk := newFakeDisk()
	m := newFaCE(t, 8, disk)
	for id := page.ID(1); id <= 5; id++ {
		m.StageIn(id, makePage(id, 1, byte(id)), id%2 == 1, true)
	}
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Pages 1, 3, 5 were dirty.
	if disk.writes != 3 {
		t.Fatalf("FlushAll wrote %d pages, want 3", disk.writes)
	}
	if m.DirtyFrames() != 0 {
		t.Fatalf("DirtyFrames after FlushAll = %d", m.DirtyFrames())
	}
	// A second FlushAll writes nothing.
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if disk.writes != 3 {
		t.Fatal("second FlushAll performed writes")
	}
}

func TestMVFIFODiskWriteErrorPropagates(t *testing.T) {
	disk := newFakeDisk()
	m := newFaCE(t, 2, disk)
	m.StageIn(1, makePage(1, 1, 1), true, true)
	m.StageIn(2, makePage(2, 1, 2), true, true)
	disk.err = fmt.Errorf("disk gone")
	if err := m.StageIn(3, makePage(3, 1, 3), true, true); err == nil {
		t.Fatal("expected propagated disk write error")
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	s := Stats{Lookups: 100, Hits: 80, DirtyStageIns: 50, DiskPageWrites: 20}
	if s.HitRate() != 0.8 {
		t.Fatalf("HitRate = %v", s.HitRate())
	}
	if s.WriteReduction() != 0.6 {
		t.Fatalf("WriteReduction = %v", s.WriteReduction())
	}
	var zero Stats
	if zero.HitRate() != 0 || zero.WriteReduction() != 0 {
		t.Fatal("zero stats should yield zero rates")
	}
	neg := Stats{DirtyStageIns: 10, DiskPageWrites: 20}
	if neg.WriteReduction() != 0 {
		t.Fatal("write reduction must not go negative")
	}
}

func TestLCBasics(t *testing.T) {
	disk := newFakeDisk()
	c, err := NewLC(LCConfig{Dev: flashDev(16), Frames: 4, DiskWrite: disk.write})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "LC" || c.Capacity() != 4 {
		t.Fatalf("Name/Capacity = %q/%d", c.Name(), c.Capacity())
	}
	p := makePage(7, 3, 0x77)
	if err := c.StageIn(7, p, true, true); err != nil {
		t.Fatal(err)
	}
	buf := page.NewBuf()
	found, dirty, err := c.Lookup(7, buf)
	if err != nil || !found || !dirty || buf.Payload()[0] != 0x77 {
		t.Fatalf("Lookup = %v,%v,%v", found, dirty, err)
	}
	if found, _, _ := c.Lookup(8, buf); found {
		t.Fatal("phantom hit")
	}
	if !c.Contains(7) || c.Contains(8) || c.Len() != 1 {
		t.Fatal("Contains/Len wrong")
	}
}

func TestLCEvictionWritesDirtyVictim(t *testing.T) {
	disk := newFakeDisk()
	c, err := NewLC(LCConfig{Dev: flashDev(16), Frames: 2, DiskWrite: disk.write})
	if err != nil {
		t.Fatal(err)
	}
	c.StageIn(1, makePage(1, 1, 1), true, true)
	c.StageIn(2, makePage(2, 1, 2), false, false)
	// Page 3 evicts LRU page 1 (dirty): disk write.
	c.StageIn(3, makePage(3, 1, 3), false, false)
	if disk.writes != 1 || disk.pages[1] == nil {
		t.Fatalf("disk writes = %d", disk.writes)
	}
	// Page 4 evicts page 2 (clean): no write.
	c.StageIn(4, makePage(4, 1, 4), false, false)
	if disk.writes != 1 {
		t.Fatalf("clean eviction caused a disk write")
	}
}

func TestLCInPlaceOverwrite(t *testing.T) {
	disk := newFakeDisk()
	dev := flashDev(16)
	c, _ := NewLC(LCConfig{Dev: dev, Frames: 4, DiskWrite: disk.write})
	c.StageIn(1, makePage(1, 1, 1), true, true)
	before := c.Stats().FlashPageWrites
	// New version: in-place overwrite (one more flash write, no new frame).
	c.StageIn(1, makePage(1, 2, 2), true, true)
	if c.Stats().FlashPageWrites != before+1 || c.Len() != 1 {
		t.Fatalf("in-place overwrite stats: writes=%d len=%d", c.Stats().FlashPageWrites, c.Len())
	}
	// Identical copy (fdirty=false): no write.
	c.StageIn(1, makePage(1, 2, 2), true, false)
	if c.Stats().FlashPageWrites != before+1 {
		t.Fatal("identical copy should not be rewritten")
	}
	buf := page.NewBuf()
	found, _, _ := c.Lookup(1, buf)
	if !found || buf.Payload()[0] != 2 {
		t.Fatal("lookup did not return newest version")
	}
}

func TestLCLazyCleaner(t *testing.T) {
	disk := newFakeDisk()
	c, _ := NewLC(LCConfig{Dev: flashDev(64), Frames: 10, CleanThreshold: 0.5, CleanBatch: 4, DiskWrite: disk.write})
	for id := page.ID(1); id <= 8; id++ {
		c.StageIn(id, makePage(id, 1, byte(id)), true, true)
	}
	if c.DirtyFrames() > 6 {
		t.Fatalf("lazy cleaner did not run: %d dirty frames", c.DirtyFrames())
	}
	if disk.writes == 0 {
		t.Fatal("lazy cleaner wrote nothing to disk")
	}
	// Cleaned pages remain cached.
	if c.Len() != 8 {
		t.Fatalf("Len = %d, want 8", c.Len())
	}
}

func TestLCCheckpointFlushesDirtyFrames(t *testing.T) {
	disk := newFakeDisk()
	c, _ := NewLC(LCConfig{Dev: flashDev(64), Frames: 10, DiskWrite: disk.write})
	for id := page.ID(1); id <= 5; id++ {
		c.StageIn(id, makePage(id, 1, byte(id)), true, true)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if disk.writes != 5 {
		t.Fatalf("checkpoint wrote %d pages, want 5", disk.writes)
	}
	if c.DirtyFrames() != 0 {
		t.Fatal("dirty frames remain after checkpoint")
	}
}

func TestLCRecoverStartsCold(t *testing.T) {
	disk := newFakeDisk()
	c, _ := NewLC(LCConfig{Dev: flashDev(64), Frames: 10, DiskWrite: disk.write})
	for id := page.ID(1); id <= 5; id++ {
		c.StageIn(id, makePage(id, 1, byte(id)), true, true)
	}
	if err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.DirtyFrames() != 0 {
		t.Fatal("LC cache should restart cold")
	}
	buf := page.NewBuf()
	if found, _, _ := c.Lookup(1, buf); found {
		t.Fatal("cold cache returned a hit")
	}
	// The cache is usable again after recovery.
	if err := c.StageIn(9, makePage(9, 1, 9), true, true); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(9) {
		t.Fatal("cache unusable after Recover")
	}
}

func TestWriteThroughPolicy(t *testing.T) {
	disk := newFakeDisk()
	c, err := NewLC(LCConfig{Dev: flashDev(64), Frames: 10, WriteThrough: true, DiskWrite: disk.write})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "WT" {
		t.Fatalf("Name = %q", c.Name())
	}
	c.StageIn(1, makePage(1, 1, 1), true, true)
	// Dirty eviction goes straight to disk as well as flash.
	if disk.writes != 1 {
		t.Fatalf("write-through disk writes = %d, want 1", disk.writes)
	}
	if c.DirtyFrames() != 0 {
		t.Fatal("write-through cache should never hold dirty frames")
	}
	// Checkpoint has nothing to do.
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if disk.writes != 1 {
		t.Fatal("write-through checkpoint should not write")
	}
	// Reads still hit.
	buf := page.NewBuf()
	if found, dirty, _ := c.Lookup(1, buf); !found || dirty {
		t.Fatalf("Lookup = %v,%v, want hit on clean copy", found, dirty)
	}
}

func TestNewLCValidation(t *testing.T) {
	disk := newFakeDisk()
	if _, err := NewLC(LCConfig{Frames: 4, DiskWrite: disk.write}); err == nil {
		t.Fatal("nil device accepted")
	}
	if _, err := NewLC(LCConfig{Dev: flashDev(16), Frames: 4}); err == nil {
		t.Fatal("nil DiskWrite accepted")
	}
	if _, err := NewLC(LCConfig{Dev: flashDev(16), Frames: 0, DiskWrite: disk.write}); !errors.Is(err, ErrTooSmall) {
		t.Fatal("zero frames accepted")
	}
	if _, err := NewLC(LCConfig{Dev: flashDev(2), Frames: 100, DiskWrite: disk.write}); err == nil {
		t.Fatal("oversized frame count accepted")
	}
}

func TestResetStats(t *testing.T) {
	disk := newFakeDisk()
	m := newFaCE(t, 8, disk)
	m.StageIn(1, makePage(1, 1, 1), true, true)
	m.ResetStats()
	if m.Stats().StageIns != 0 {
		t.Fatal("MVFIFO ResetStats failed")
	}
	c, _ := NewLC(LCConfig{Dev: flashDev(16), Frames: 4, DiskWrite: disk.write})
	c.StageIn(1, makePage(1, 1, 1), true, true)
	c.ResetStats()
	if c.Stats().StageIns != 0 {
		t.Fatal("LC ResetStats failed")
	}
}
