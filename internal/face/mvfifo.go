package face

import (
	"fmt"
	"sync"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
)

// DefaultGroupSize is the default batch size for Group Replacement and
// Group Second Chance.  The paper suggests the number of pages in a flash
// memory block, typically 64 or 128.
const DefaultGroupSize = 64

// DefaultSegmentEntries is the default number of metadata entries per
// persistent segment.  The paper uses 64 000 entries (1.5 MB); the default
// here is smaller so that scaled-down experiments exercise segment
// recycling, and it is configurable.
const DefaultSegmentEntries = 4096

// MVFIFOConfig configures a FaCE mvFIFO cache manager.
type MVFIFOConfig struct {
	// Dev is the flash device dedicated to the cache.
	Dev device.Dev
	// Frames is the number of 4 KiB data frames in the cache.
	Frames int
	// GroupSize is the replacement batch size.  1 disables grouping
	// (plain FaCE); larger values enable Group Replacement.
	GroupSize int
	// SecondChance enables Group Second Chance: referenced frames are
	// re-enqueued instead of being staged out.
	SecondChance bool
	// SegmentEntries is the number of metadata entries per persistent
	// segment (Section 4.1).
	SegmentEntries int
	// DiskWrite writes a dirty page back to the database on disk.
	DiskWrite DiskWriteFunc
	// Pull, when non-nil, lets Group Second Chance top up a write group
	// with victims pulled from the DRAM buffer's LRU tail.
	Pull PullFunc
	// Label overrides the derived policy name.
	Label string
}

func (c *MVFIFOConfig) applyDefaults() {
	if c.GroupSize <= 0 {
		c.GroupSize = 1
	}
	if c.SegmentEntries <= 0 {
		c.SegmentEntries = DefaultSegmentEntries
	}
}

// name derives a display name matching the paper's terminology.
func (c *MVFIFOConfig) name() string {
	if c.Label != "" {
		return c.Label
	}
	switch {
	case c.GroupSize > 1 && c.SecondChance:
		return "FaCE+GSC"
	case c.GroupSize > 1:
		return "FaCE+GR"
	default:
		return "FaCE"
	}
}

// The three FaCE variants compared in the paper register themselves with
// the policy registry so the engine and CLI can select them by name.
func init() {
	RegisterPolicy("face", func(p PolicyParams) (Extension, error) {
		return NewMVFIFO(MVFIFOConfig{
			Dev: p.Dev, Frames: p.Frames, GroupSize: 1,
			SegmentEntries: p.SegmentEntries, DiskWrite: p.DiskWrite,
		})
	})
	RegisterPolicy("face+gr", func(p PolicyParams) (Extension, error) {
		return NewMVFIFO(MVFIFOConfig{
			Dev: p.Dev, Frames: p.Frames, GroupSize: groupOrDefault(p.GroupSize),
			SegmentEntries: p.SegmentEntries, DiskWrite: p.DiskWrite,
		})
	})
	RegisterPolicy("face+gsc", func(p PolicyParams) (Extension, error) {
		return NewMVFIFO(MVFIFOConfig{
			Dev: p.Dev, Frames: p.Frames, GroupSize: groupOrDefault(p.GroupSize), SecondChance: true,
			SegmentEntries: p.SegmentEntries, DiskWrite: p.DiskWrite, Pull: p.Pull,
		})
	})
}

// frameMeta is the in-memory metadata of one flash frame.
type frameMeta struct {
	id    page.ID
	lsn   page.LSN
	valid bool
	dirty bool
	ref   bool
	used  bool
}

// MVFIFO is the FaCE cache manager: a multi-version FIFO queue of page
// frames on flash with optional group replacement and group second chance,
// plus a persistent metadata directory for recovery.
//
// Concurrency is split between two locks so that lookups never wait on
// group writes:
//
//   - mu guards the queue metadata (front, seq, meta, dir, stats) and is
//     never held across device I/O.  Lookup resolves a frame under mu,
//     reads the frame with mu released, and revalidates under mu — a frame
//     recycled mid-read fails revalidation and the lookup retries.
//   - wrMu serializes the writer path (StageIn/StageBatch, Checkpoint,
//     Recover, FlushAll) and protects the metadata directory; the device
//     I/O of a group write happens under wrMu alone, so concurrent
//     Lookup/Contains proceed while a group write is in flight.
//
// Torn reads cannot escape: a writer only reuses a frame slot after
// makeRoom cleared that slot's metadata under mu, so a reader racing the
// rewrite always fails revalidation.
type MVFIFO struct {
	cfg    MVFIFOConfig
	layout layout

	// wrMu serializes the writer path; see the type comment.
	wrMu sync.Mutex

	// mu guards the fields below and is never held across device I/O
	// (except during Recover, which runs before any concurrency).
	mu sync.Mutex

	// Queue state.  front and seq are absolute (monotonically increasing)
	// positions; the frame slot of position p is p % capacity.
	front uint64
	seq   uint64

	meta []frameMeta
	dir  map[page.ID]uint64 // page id -> absolute position of the valid copy

	// transit holds pages that are momentarily in neither the queue nor
	// the DRAM buffer: second-chance survivors between makeRoom clearing
	// their old frame and the re-enqueue publishing the new one, and DRAM
	// victims pulled into a write group.  Lookups are served from it so a
	// dirty page can never miss into a stale disk copy mid-group-write.
	transit map[page.ID]stageItem

	stats  Stats
	closed bool

	// metadir is writer-path state, protected by wrMu.
	metadir *metaDirectory

	// Asynchronous destage hooks, nil in synchronous mode.  enableAsync
	// installs them before the manager is shared, so they are read without
	// synchronization afterwards.
	//
	// destage hands a dirty page leaving the queue to the destager instead
	// of writing it to disk inline; waitReuse blocks until the destage for
	// the given position has landed (the frame slot may then be rewritten);
	// persistFront clamps the front pointer recorded in the persistent
	// superblock so it never advances past an un-landed destage.
	destage      func(pos uint64, id page.ID, data page.Buf) error
	waitReuse    func(pos uint64)
	persistFront func(front uint64) uint64
}

// NewMVFIFO creates a FaCE cache manager on the given flash device.  The
// device must be large enough to hold the requested number of frames plus
// the superblock and metadata region.
func NewMVFIFO(cfg MVFIFOConfig) (*MVFIFO, error) {
	cfg.applyDefaults()
	if cfg.Dev == nil {
		return nil, fmt.Errorf("face: nil flash device")
	}
	if cfg.DiskWrite == nil {
		return nil, fmt.Errorf("face: nil DiskWrite callback")
	}
	if cfg.Frames < cfg.GroupSize || cfg.Frames < 1 {
		return nil, fmt.Errorf("%w: %d frames, group size %d", ErrTooSmall, cfg.Frames, cfg.GroupSize)
	}
	lay := computeLayout(cfg.Frames, cfg.SegmentEntries)
	if lay.totalBlocks() > cfg.Dev.NumBlocks() {
		return nil, fmt.Errorf("face: device has %d blocks, need %d (frames=%d, metadata=%d)",
			cfg.Dev.NumBlocks(), lay.totalBlocks(), cfg.Frames, lay.metaBlocks)
	}
	m := &MVFIFO{
		cfg:     cfg,
		layout:  lay,
		meta:    make([]frameMeta, cfg.Frames),
		dir:     make(map[page.ID]uint64, cfg.Frames),
		transit: make(map[page.ID]stageItem),
	}
	// The persistent superblock is written lazily (on the first metadata
	// flush or checkpoint) so that constructing a manager over a device
	// that already holds a FaCE cache — the crash-recovery path — does not
	// clobber the recoverable state.
	m.metadir = newMetaDirectory(cfg.Dev, lay, cfg.SegmentEntries)
	return m, nil
}

// Name returns the policy name.
func (m *MVFIFO) Name() string { return m.cfg.name() }

// Capacity returns the number of data frames.
func (m *MVFIFO) Capacity() int { return m.cfg.Frames }

// GroupSize returns the replacement batch size.
func (m *MVFIFO) GroupSize() int { return m.cfg.GroupSize }

// Len returns the number of occupied frames, including invalid duplicates.
func (m *MVFIFO) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int(m.seq - m.front)
}

// Stats returns a snapshot of the statistics.
func (m *MVFIFO) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Duplicates = int64(m.seq-m.front) - int64(len(m.dir))
	return s
}

// ResetStats clears the statistics.
func (m *MVFIFO) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}

// noteDiskWrite records a completed asynchronous destage disk write.
func (m *MVFIFO) noteDiskWrite() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.DiskPageWrites++
}

// Contains reports whether a valid copy of the page is cached.
func (m *MVFIFO) Contains(id page.ID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.dir[id]; ok {
		return true
	}
	_, ok := m.transit[id]
	return ok
}

// Lookup searches the cache for the page and, on a hit, copies the frame
// into buf and sets the frame's reference bit (used by second chance).
//
// The frame is read from the device without holding the metadata lock, so
// lookups proceed while a group write is in flight.  If the frame is
// recycled during the read (directory entry moved, slot reused) the stale
// image is discarded and the lookup retries from the directory.
func (m *MVFIFO) Lookup(id page.ID, buf page.Buf) (bool, bool, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return false, false, ErrClosed
	}
	m.stats.Lookups++
	for {
		pos, ok := m.dir[id]
		if !ok {
			found, dirty := m.transitLookupLocked(id, buf)
			m.mu.Unlock()
			return found, dirty, nil
		}
		slot := pos % uint64(m.cfg.Frames)
		fm := m.meta[slot]
		if !fm.valid || fm.id != id {
			// A stale directory entry should never survive invalidation.
			delete(m.dir, id)
			found, dirty := m.transitLookupLocked(id, buf)
			m.mu.Unlock()
			return found, dirty, nil
		}
		m.mu.Unlock()
		if err := m.cfg.Dev.ReadAt(m.layout.frameBlock(slot), buf); err != nil {
			return false, false, fmt.Errorf("face: reading frame %d: %w", slot, err)
		}
		m.mu.Lock()
		m.stats.FlashPageReads++
		if cur, ok := m.dir[id]; ok && cur == pos && m.meta[slot].valid && m.meta[slot].id == id {
			m.stats.Hits++
			m.meta[slot].ref = true
			dirty := m.meta[slot].dirty
			m.mu.Unlock()
			return true, dirty, nil
		}
		// The frame was replaced while we read it; resolve again.
	}
}

// transitLookupLocked serves a page from the in-transit map.  The caller
// holds mu.
func (m *MVFIFO) transitLookupLocked(id page.ID, buf page.Buf) (bool, bool) {
	t, ok := m.transit[id]
	if !ok {
		return false, false
	}
	copy(buf, t.data)
	m.stats.Hits++
	return true, t.dirty
}

// StageItem is a page offered to the cache, as StageBatch consumes them.
// Data must be a private copy the cache may retain.
type StageItem struct {
	ID     page.ID
	Data   page.Buf
	Dirty  bool // newer than the disk copy
	FDirty bool // newer than the flash copy
	Ref    bool // referenced while staged (async ring hit)
}

// StageIn offers a page evicted from the DRAM buffer to the cache,
// implementing Algorithm 1 of the paper: unconditional enqueue when fdirty,
// conditional enqueue (skip when an identical copy is cached) otherwise.
func (m *MVFIFO) StageIn(id page.ID, data page.Buf, dirty, fdirty bool) error {
	return m.StageBatch([]StageItem{{ID: id, Data: data, Dirty: dirty, FDirty: fdirty}})
}

// StageBatch offers several evicted pages at once.  The async group writer
// drains its staging ring in batches so that one sequential flash group
// write covers all of them; each item still gets the per-page treatment of
// Algorithm 1.
func (m *MVFIFO) StageBatch(in []StageItem) error {
	m.wrMu.Lock()
	defer m.wrMu.Unlock()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	items := make([]stageItem, 0, len(in))
	for _, it := range in {
		m.stats.StageIns++
		if it.Dirty {
			m.stats.DirtyStageIns++
		} else {
			m.stats.CleanStageIns++
		}
		if !it.FDirty {
			if _, cached := m.dir[it.ID]; cached {
				// An identical copy is already in the flash cache.
				continue
			}
			// Not cached: enqueue.  A dirty page whose flash copy was
			// staged out must be re-enqueued so the persistent database
			// keeps the newest version; a clean page is enqueued as clean.
		}
		items = append(items, stageItem{
			id: it.ID, data: it.Data, dirty: it.Dirty, lsn: it.Data.LSN(), ref: it.Ref,
		})
	}
	m.mu.Unlock()
	return m.enqueue(items)
}

// stageItem is a page about to be enqueued.
type stageItem struct {
	id    page.ID
	data  page.Buf
	dirty bool
	lsn   page.LSN
	ref   bool
	// pos is the queue position a second-chance survivor came from; it is
	// only used to order asynchronous destages of forced-out survivors.
	pos uint64
}

// DirtyFrames returns the number of valid dirty frames (diagnostics).
func (m *MVFIFO) DirtyFrames() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for pos := m.front; pos < m.seq; pos++ {
		fm := &m.meta[pos%uint64(m.cfg.Frames)]
		if fm.valid && fm.dirty {
			n++
		}
	}
	return n
}
