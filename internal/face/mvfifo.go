package face

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/metrics"
	"github.com/reprolab/face/internal/page"
)

// DefaultGroupSize is the default batch size for Group Replacement and
// Group Second Chance.  The paper suggests the number of pages in a flash
// memory block, typically 64 or 128.
const DefaultGroupSize = 64

// DefaultSegmentEntries is the default number of metadata entries per
// persistent segment.  The paper uses 64 000 entries (1.5 MB); the default
// here is smaller so that scaled-down experiments exercise segment
// recycling, and it is configurable.
const DefaultSegmentEntries = 4096

// MVFIFOConfig configures a FaCE mvFIFO cache manager.
type MVFIFOConfig struct {
	// Dev is the flash device dedicated to the cache.
	Dev device.Dev
	// Frames is the number of 4 KiB data frames in the cache.
	Frames int
	// GroupSize is the replacement batch size.  1 disables grouping
	// (plain FaCE); larger values enable Group Replacement.
	GroupSize int
	// SecondChance enables Group Second Chance: referenced frames are
	// re-enqueued instead of being staged out.
	SecondChance bool
	// SegmentEntries is the number of metadata entries per persistent
	// segment (Section 4.1).
	SegmentEntries int
	// Stripes is the number of independently locked directory stripes the
	// lookup structures (page directory, in-transit map) are split over,
	// so Lookup/Contains on different pages never contend.  Values below
	// 1 select a single stripe, which reproduces the historical
	// single-mutex lookup path.
	Stripes int
	// DiskWrite writes a dirty page back to the database on disk.
	DiskWrite DiskWriteFunc
	// DiskSync, when non-nil, is the data device's durability barrier.  It
	// is called before the persistent metadata directory records an
	// advanced front pointer, so a crash can never find the front past a
	// destaged page whose disk write is still in the OS page cache (the
	// destage-before-front-advance invariant on real media).
	DiskSync func() error
	// Pull, when non-nil, lets Group Second Chance top up a write group
	// with victims pulled from the DRAM buffer's LRU tail.
	Pull PullFunc
	// Label overrides the derived policy name.
	Label string
}

func (c *MVFIFOConfig) applyDefaults() {
	if c.GroupSize <= 0 {
		c.GroupSize = 1
	}
	if c.SegmentEntries <= 0 {
		c.SegmentEntries = DefaultSegmentEntries
	}
	if c.Stripes <= 0 {
		c.Stripes = 1
	}
}

// name derives a display name matching the paper's terminology.
func (c *MVFIFOConfig) name() string {
	if c.Label != "" {
		return c.Label
	}
	switch {
	case c.GroupSize > 1 && c.SecondChance:
		return "FaCE+GSC"
	case c.GroupSize > 1:
		return "FaCE+GR"
	default:
		return "FaCE"
	}
}

// The three FaCE variants compared in the paper register themselves with
// the policy registry so the engine and CLI can select them by name.
func init() {
	RegisterPolicy("face", func(p PolicyParams) (Extension, error) {
		return NewMVFIFO(MVFIFOConfig{
			Dev: p.Dev, Frames: p.Frames, GroupSize: 1,
			SegmentEntries: p.SegmentEntries, Stripes: p.Stripes,
			DiskWrite: p.DiskWrite, DiskSync: p.DiskSync,
		})
	})
	RegisterPolicy("face+gr", func(p PolicyParams) (Extension, error) {
		return NewMVFIFO(MVFIFOConfig{
			Dev: p.Dev, Frames: p.Frames, GroupSize: groupOrDefault(p.GroupSize),
			SegmentEntries: p.SegmentEntries, Stripes: p.Stripes,
			DiskWrite: p.DiskWrite, DiskSync: p.DiskSync,
		})
	})
	RegisterPolicy("face+gsc", func(p PolicyParams) (Extension, error) {
		return NewMVFIFO(MVFIFOConfig{
			Dev: p.Dev, Frames: p.Frames, GroupSize: groupOrDefault(p.GroupSize), SecondChance: true,
			SegmentEntries: p.SegmentEntries, Stripes: p.Stripes,
			DiskWrite: p.DiskWrite, DiskSync: p.DiskSync, Pull: p.Pull,
		})
	})
}

// frameMeta is the in-memory metadata of one flash frame (writer-path
// state, guarded by mu).  The reference bit lives in MVFIFO.refs so the
// lock-free lookup path can set it without touching mu.
type frameMeta struct {
	id    page.ID
	lsn   page.LSN
	valid bool
	dirty bool
	used  bool
}

// dirEntry is one page's entry in the striped lookup directory: the
// absolute queue position of its valid copy plus the copy's LSN and dirty
// flag, denormalized from the frame metadata so a lookup never needs the
// queue metadata lock.  Writers keep the entry in sync with meta under the
// owning stripe's lock.
type dirEntry struct {
	pos   uint64
	lsn   page.LSN
	dirty bool
}

// dirStripe is one independently locked slice of the lookup structures.
// Lookups for a page take only its stripe's lock; the writer path takes
// stripe locks nested inside mu (never the other way around), so lookups
// on different pages proceed concurrently with each other and with group
// writes.
type dirStripe struct {
	mu  sync.Mutex
	dir map[page.ID]dirEntry // page id -> valid copy
	// transit holds pages that are momentarily in neither the queue nor
	// the DRAM buffer: second-chance survivors between makeRoom clearing
	// their old frame and the re-enqueue publishing the new one, and DRAM
	// victims pulled into a write group.  Lookups are served from it so a
	// dirty page can never miss into a stale disk copy mid-group-write.
	transit map[page.ID]stageItem

	// Lookup-path counters, folded into Stats on demand.
	lookups    int64
	hits       int64
	flashReads int64
}

// MVFIFO is the FaCE cache manager: a multi-version FIFO queue of page
// frames on flash with optional group replacement and group second chance,
// plus a persistent metadata directory for recovery.
//
// Concurrency is split between three layers so that lookups never wait on
// group writes or on each other:
//
//   - stripes: the page directory and in-transit map are striped by page
//     id, each stripe under its own mutex.  Lookup and Contains touch only
//     the target page's stripe; a group write publishing other pages never
//     blocks them.  Directory entries carry the position, LSN and dirty
//     flag of the valid copy, so the lookup path resolves, reads the
//     device, and revalidates entirely under the stripe lock.
//   - mu guards the queue metadata (front, seq, meta, writer-side stats)
//     and is never held across device I/O.  The writer path may take a
//     stripe lock while holding mu; the reverse order never occurs.
//   - wrMu serializes the writer path (StageIn/StageBatch, Checkpoint,
//     Recover, FlushAll) and protects the metadata directory; the device
//     I/O of a group write happens under wrMu alone.
//
// Torn reads cannot escape: queue positions are absolute and never reused,
// and a frame slot is only rewritten after makeRoom removed (under the
// stripe locks) every directory entry pointing into the recycled window.
// A lookup that resolved position p before the removal revalidates
// dir[id].pos == p after its device read and retries when the entry moved.
type MVFIFO struct {
	cfg    MVFIFOConfig
	layout layout

	// wrMu serializes the writer path; see the type comment.
	wrMu sync.Mutex

	// mu guards the fields below and is never held across device I/O
	// (except during Recover, which runs before any concurrency).
	mu sync.Mutex

	// Queue state.  front and seq are absolute (monotonically increasing)
	// positions; the frame slot of position p is p % capacity.
	front uint64
	seq   uint64

	meta []frameMeta

	// stats holds the writer-path counters; the lookup-path counters live
	// in the stripes and are folded in by Stats.
	stats Stats

	// stripes is the striped lookup directory; see dirStripe.
	stripes []*dirStripe

	// refs holds the per-slot reference bits consulted by Group Second
	// Chance.  They are atomic so the lookup path can set them without
	// taking mu.
	refs []atomic.Bool

	closed atomic.Bool

	// metadir is writer-path state, protected by wrMu.
	metadir *metaDirectory

	// Asynchronous destage hooks, nil in synchronous mode.  enableAsync
	// installs them before the manager is shared, so they are read without
	// synchronization afterwards.
	//
	// destage hands a dirty page leaving the queue to the destager instead
	// of writing it to disk inline; waitReuse blocks until the destage for
	// the given position has landed (the frame slot may then be rewritten);
	// persistFront clamps the front pointer recorded in the persistent
	// superblock so it never advances past an un-landed destage.
	destage      func(pos uint64, id page.ID, data page.Buf) error
	waitReuse    func(pos uint64)
	persistFront func(front uint64) uint64
}

// NewMVFIFO creates a FaCE cache manager on the given flash device.  The
// device must be large enough to hold the requested number of frames plus
// the superblock and metadata region.
func NewMVFIFO(cfg MVFIFOConfig) (*MVFIFO, error) {
	cfg.applyDefaults()
	if cfg.Dev == nil {
		return nil, fmt.Errorf("face: nil flash device")
	}
	if cfg.DiskWrite == nil {
		return nil, fmt.Errorf("face: nil DiskWrite callback")
	}
	if cfg.Frames < cfg.GroupSize || cfg.Frames < 1 {
		return nil, fmt.Errorf("%w: %d frames, group size %d", ErrTooSmall, cfg.Frames, cfg.GroupSize)
	}
	lay := computeLayout(cfg.Frames, cfg.SegmentEntries)
	if lay.totalBlocks() > cfg.Dev.NumBlocks() {
		return nil, fmt.Errorf("face: device has %d blocks, need %d (frames=%d, metadata=%d)",
			cfg.Dev.NumBlocks(), lay.totalBlocks(), cfg.Frames, lay.metaBlocks)
	}
	m := &MVFIFO{
		cfg:     cfg,
		layout:  lay,
		meta:    make([]frameMeta, cfg.Frames),
		refs:    make([]atomic.Bool, cfg.Frames),
		stripes: newStripes(cfg.Stripes, cfg.Frames),
	}
	// The persistent superblock is written lazily (on the first metadata
	// flush or checkpoint) so that constructing a manager over a device
	// that already holds a FaCE cache — the crash-recovery path — does not
	// clobber the recoverable state.
	m.metadir = newMetaDirectory(cfg.Dev, lay, cfg.SegmentEntries)
	m.metadir.preSync = cfg.DiskSync
	return m, nil
}

// FlashDeviceBlocks returns the minimum flash-device capacity in blocks
// for a cache of frames data frames with the given metadata segment size
// (0 = DefaultSegmentEntries): superblock + metadata region + frames.
// The engine and the benchmark harness use it (plus FlashDeviceSlack) to
// size flash devices.
func FlashDeviceBlocks(frames, segEntries int) int64 {
	if segEntries <= 0 {
		segEntries = DefaultSegmentEntries
	}
	return computeLayout(frames, segEntries).totalBlocks()
}

// FlashDeviceSlack is the headroom added on top of FlashDeviceBlocks when
// sizing a flash device, absorbing future layout growth without resizing.
const FlashDeviceSlack = 64

// stripeIndex maps a page id to one of n stripes with the same Fibonacci
// multiplicative hash the buffer pool shards use; every striped structure
// keyed by page id (directory stripes, the async staging map) shares it so
// a page always lands on the same stripe index everywhere.
func stripeIndex(id page.ID, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int(h % uint64(n))
}

// newStripes allocates n directory stripes sized for the given frame count.
func newStripes(n, frames int) []*dirStripe {
	if n < 1 {
		n = 1
	}
	per := frames/n + 1
	out := make([]*dirStripe, n)
	for i := range out {
		out[i] = &dirStripe{
			dir:     make(map[page.ID]dirEntry, per),
			transit: make(map[page.ID]stageItem),
		}
	}
	return out
}

// stripe returns the directory stripe holding the given page id, using the
// same Fibonacci hash as the buffer pool shards.
func (m *MVFIFO) stripe(id page.ID) *dirStripe {
	return m.stripes[stripeIndex(id, len(m.stripes))]
}

// Name returns the policy name.
func (m *MVFIFO) Name() string { return m.cfg.name() }

// Capacity returns the number of data frames.
func (m *MVFIFO) Capacity() int { return m.cfg.Frames }

// GroupSize returns the replacement batch size.
func (m *MVFIFO) GroupSize() int { return m.cfg.GroupSize }

// Stripes returns the number of directory stripes.
func (m *MVFIFO) Stripes() int { return len(m.stripes) }

// Len returns the number of occupied frames, including invalid duplicates.
func (m *MVFIFO) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int(m.seq - m.front)
}

// Stats returns a snapshot of the statistics: the writer-path counters
// under mu plus the lookup-path counters of every stripe, each read under
// its own lock.  mu is held across the stripe sweep (the writer-path
// nesting order) so the queue window and the directory sizes come from
// one moment — Duplicates can never go negative against a concurrent
// stage-in.
func (m *MVFIFO) Stats() Stats {
	m.mu.Lock()
	s := m.stats
	window := int64(m.seq - m.front)
	dirLen := int64(0)
	for _, st := range m.stripes {
		st.mu.Lock()
		s.Lookups += st.lookups
		s.Hits += st.hits
		s.FlashPageReads += st.flashReads
		dirLen += int64(len(st.dir))
		st.mu.Unlock()
	}
	m.mu.Unlock()
	s.Duplicates = window - dirLen
	return s
}

// StripeStats returns the per-stripe breakdown of the lookup-path
// counters, one coherent snapshot per directory stripe in stripe order.
// Comparing stripes diagnoses directory hot spots (a hot page id range
// funnelling every probe into one stripe mutex), mirroring what
// Pool.ShardStats exposes for the buffer pool.
func (m *MVFIFO) StripeStats() []metrics.CacheStripeStats {
	out := make([]metrics.CacheStripeStats, len(m.stripes))
	for i, st := range m.stripes {
		st.mu.Lock()
		out[i] = metrics.CacheStripeStats{
			Stripe: i, Lookups: st.lookups, Hits: st.hits, FlashReads: st.flashReads,
		}
		st.mu.Unlock()
	}
	return out
}

// ResetStats clears the statistics.
func (m *MVFIFO) ResetStats() {
	m.mu.Lock()
	m.stats = Stats{}
	m.mu.Unlock()
	for _, st := range m.stripes {
		st.mu.Lock()
		st.lookups, st.hits, st.flashReads = 0, 0, 0
		st.mu.Unlock()
	}
}

// noteDiskWrite records a completed asynchronous destage disk write.
func (m *MVFIFO) noteDiskWrite() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.DiskPageWrites++
}

// Contains reports whether a valid copy of the page is cached.  It takes
// only the page's stripe lock, so probes for different pages never contend
// with each other or with an in-flight group write.
func (m *MVFIFO) Contains(id page.ID) bool {
	st := m.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.dir[id]; ok {
		return true
	}
	_, ok := st.transit[id]
	return ok
}

// Lookup searches the cache for the page and, on a hit, copies the frame
// into buf and sets the frame's reference bit (used by second chance).
//
// The lookup runs entirely against the page's directory stripe: resolve
// the position, read the frame from the device with the stripe lock
// released, and revalidate that the directory still points at the same
// absolute position.  Positions are never reused, and a writer recycling
// the slot removes or repoints the entry first (under this stripe's lock),
// so a stale image always fails revalidation and the lookup retries.
func (m *MVFIFO) Lookup(id page.ID, buf page.Buf) (bool, bool, error) {
	if m.closed.Load() {
		return false, false, ErrClosed
	}
	capacity := uint64(m.cfg.Frames)
	st := m.stripe(id)
	st.mu.Lock()
	st.lookups++
	for {
		e, ok := st.dir[id]
		if !ok {
			found, dirty := st.transitLookupLocked(id, buf)
			st.mu.Unlock()
			return found, dirty, nil
		}
		slot := e.pos % capacity
		st.mu.Unlock()
		if err := m.cfg.Dev.ReadAt(m.layout.frameBlock(slot), buf); err != nil {
			return false, false, fmt.Errorf("face: reading frame %d: %w", slot, err)
		}
		st.mu.Lock()
		st.flashReads++
		if cur, ok := st.dir[id]; ok && cur.pos == e.pos {
			st.hits++
			dirty := cur.dirty
			// Set the reference bit before releasing the stripe lock: a
			// writer recycling this slot removes the directory entry under
			// this lock first, so a bit set here can never land on a slot
			// already republished as a different page.  (A ref arriving
			// just as the replacement decision is being made may still be
			// lost, as on a real system.)
			m.refs[slot].Store(true)
			st.mu.Unlock()
			return true, dirty, nil
		}
		// The frame was replaced while we read it; resolve again.
	}
}

// transitLookupLocked serves a page from the in-transit map.  The caller
// holds the stripe lock.
func (st *dirStripe) transitLookupLocked(id page.ID, buf page.Buf) (bool, bool) {
	t, ok := st.transit[id]
	if !ok {
		return false, false
	}
	copy(buf, t.data)
	st.hits++
	return true, t.dirty
}

// StageItem is a page offered to the cache, as StageBatch consumes them.
// Data must be a private copy the cache may retain.
type StageItem struct {
	ID     page.ID
	Data   page.Buf
	Dirty  bool // newer than the disk copy
	FDirty bool // newer than the flash copy
	Ref    bool // referenced while staged (async ring hit)
}

// StageIn offers a page evicted from the DRAM buffer to the cache,
// implementing Algorithm 1 of the paper: unconditional enqueue when fdirty,
// conditional enqueue (skip when an identical copy is cached) otherwise.
func (m *MVFIFO) StageIn(id page.ID, data page.Buf, dirty, fdirty bool) error {
	return m.StageBatch([]StageItem{{ID: id, Data: data, Dirty: dirty, FDirty: fdirty}})
}

// StageBatch offers several evicted pages at once.  The async group writer
// drains its staging ring in batches so that one sequential flash group
// write covers all of them; each item still gets the per-page treatment of
// Algorithm 1.
func (m *MVFIFO) StageBatch(in []StageItem) error {
	m.wrMu.Lock()
	defer m.wrMu.Unlock()

	if m.closed.Load() {
		return ErrClosed
	}
	m.mu.Lock()
	items := make([]stageItem, 0, len(in))
	for _, it := range in {
		m.stats.StageIns++
		if it.Dirty {
			m.stats.DirtyStageIns++
		} else {
			m.stats.CleanStageIns++
		}
		if !it.FDirty {
			st := m.stripe(it.ID)
			st.mu.Lock()
			_, cached := st.dir[it.ID]
			if !cached {
				// A second-chance survivor between its frame being
				// recycled and its re-enqueue counts as cached too: it is
				// about to be republished.
				_, cached = st.transit[it.ID]
			}
			st.mu.Unlock()
			if cached {
				// An identical copy is already in the flash cache.
				continue
			}
			// Not cached: enqueue.  A dirty page whose flash copy was
			// staged out must be re-enqueued so the persistent database
			// keeps the newest version; a clean page is enqueued as clean.
		}
		items = append(items, stageItem{
			id: it.ID, data: it.Data, dirty: it.Dirty, lsn: it.Data.LSN(), ref: it.Ref,
		})
	}
	m.mu.Unlock()
	//lint:allow facevet/nolockio wrMu is the single-writer serialization lock and is held across destage by design; the shared-state lock m.mu is released first
	return m.enqueue(items)
}

// stageItem is a page about to be enqueued.
type stageItem struct {
	id    page.ID
	data  page.Buf
	dirty bool
	lsn   page.LSN
	ref   bool
	// pos is the queue position a second-chance survivor came from; it is
	// only used to order asynchronous destages of forced-out survivors.
	pos uint64
}

// DirtyFrames returns the number of valid dirty frames (diagnostics).
func (m *MVFIFO) DirtyFrames() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for pos := m.front; pos < m.seq; pos++ {
		fm := &m.meta[pos%uint64(m.cfg.Frames)]
		if fm.valid && fm.dirty {
			n++
		}
	}
	return n
}
