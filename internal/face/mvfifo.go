package face

import (
	"fmt"
	"sync"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
)

// DefaultGroupSize is the default batch size for Group Replacement and
// Group Second Chance.  The paper suggests the number of pages in a flash
// memory block, typically 64 or 128.
const DefaultGroupSize = 64

// DefaultSegmentEntries is the default number of metadata entries per
// persistent segment.  The paper uses 64 000 entries (1.5 MB); the default
// here is smaller so that scaled-down experiments exercise segment
// recycling, and it is configurable.
const DefaultSegmentEntries = 4096

// MVFIFOConfig configures a FaCE mvFIFO cache manager.
type MVFIFOConfig struct {
	// Dev is the flash device dedicated to the cache.
	Dev device.Dev
	// Frames is the number of 4 KiB data frames in the cache.
	Frames int
	// GroupSize is the replacement batch size.  1 disables grouping
	// (plain FaCE); larger values enable Group Replacement.
	GroupSize int
	// SecondChance enables Group Second Chance: referenced frames are
	// re-enqueued instead of being staged out.
	SecondChance bool
	// SegmentEntries is the number of metadata entries per persistent
	// segment (Section 4.1).
	SegmentEntries int
	// DiskWrite writes a dirty page back to the database on disk.
	DiskWrite DiskWriteFunc
	// Pull, when non-nil, lets Group Second Chance top up a write group
	// with victims pulled from the DRAM buffer's LRU tail.
	Pull PullFunc
	// Label overrides the derived policy name.
	Label string
}

func (c *MVFIFOConfig) applyDefaults() {
	if c.GroupSize <= 0 {
		c.GroupSize = 1
	}
	if c.SegmentEntries <= 0 {
		c.SegmentEntries = DefaultSegmentEntries
	}
}

// name derives a display name matching the paper's terminology.
func (c *MVFIFOConfig) name() string {
	if c.Label != "" {
		return c.Label
	}
	switch {
	case c.GroupSize > 1 && c.SecondChance:
		return "FaCE+GSC"
	case c.GroupSize > 1:
		return "FaCE+GR"
	default:
		return "FaCE"
	}
}

// The three FaCE variants compared in the paper register themselves with
// the policy registry so the engine and CLI can select them by name.
func init() {
	RegisterPolicy("face", func(p PolicyParams) (Extension, error) {
		return NewMVFIFO(MVFIFOConfig{
			Dev: p.Dev, Frames: p.Frames, GroupSize: 1,
			SegmentEntries: p.SegmentEntries, DiskWrite: p.DiskWrite,
		})
	})
	RegisterPolicy("face+gr", func(p PolicyParams) (Extension, error) {
		return NewMVFIFO(MVFIFOConfig{
			Dev: p.Dev, Frames: p.Frames, GroupSize: groupOrDefault(p.GroupSize),
			SegmentEntries: p.SegmentEntries, DiskWrite: p.DiskWrite,
		})
	})
	RegisterPolicy("face+gsc", func(p PolicyParams) (Extension, error) {
		return NewMVFIFO(MVFIFOConfig{
			Dev: p.Dev, Frames: p.Frames, GroupSize: groupOrDefault(p.GroupSize), SecondChance: true,
			SegmentEntries: p.SegmentEntries, DiskWrite: p.DiskWrite, Pull: p.Pull,
		})
	})
}

// frameMeta is the in-memory metadata of one flash frame.
type frameMeta struct {
	id    page.ID
	lsn   page.LSN
	valid bool
	dirty bool
	ref   bool
	used  bool
}

// MVFIFO is the FaCE cache manager: a multi-version FIFO queue of page
// frames on flash with optional group replacement and group second chance,
// plus a persistent metadata directory for recovery.
type MVFIFO struct {
	mu  sync.Mutex
	cfg MVFIFOConfig

	layout layout

	// Queue state.  front and seq are absolute (monotonically increasing)
	// positions; the frame slot of position p is p % capacity.
	front uint64
	seq   uint64

	meta []frameMeta
	dir  map[page.ID]uint64 // page id -> absolute position of the valid copy

	metadir *metaDirectory

	stats  Stats
	closed bool
}

// NewMVFIFO creates a FaCE cache manager on the given flash device.  The
// device must be large enough to hold the requested number of frames plus
// the superblock and metadata region.
func NewMVFIFO(cfg MVFIFOConfig) (*MVFIFO, error) {
	cfg.applyDefaults()
	if cfg.Dev == nil {
		return nil, fmt.Errorf("face: nil flash device")
	}
	if cfg.DiskWrite == nil {
		return nil, fmt.Errorf("face: nil DiskWrite callback")
	}
	if cfg.Frames < cfg.GroupSize || cfg.Frames < 1 {
		return nil, fmt.Errorf("%w: %d frames, group size %d", ErrTooSmall, cfg.Frames, cfg.GroupSize)
	}
	lay := computeLayout(cfg.Frames, cfg.SegmentEntries)
	if lay.totalBlocks() > cfg.Dev.NumBlocks() {
		return nil, fmt.Errorf("face: device has %d blocks, need %d (frames=%d, metadata=%d)",
			cfg.Dev.NumBlocks(), lay.totalBlocks(), cfg.Frames, lay.metaBlocks)
	}
	m := &MVFIFO{
		cfg:    cfg,
		layout: lay,
		meta:   make([]frameMeta, cfg.Frames),
		dir:    make(map[page.ID]uint64, cfg.Frames),
	}
	// The persistent superblock is written lazily (on the first metadata
	// flush or checkpoint) so that constructing a manager over a device
	// that already holds a FaCE cache — the crash-recovery path — does not
	// clobber the recoverable state.
	m.metadir = newMetaDirectory(cfg.Dev, lay, cfg.SegmentEntries)
	return m, nil
}

// Name returns the policy name.
func (m *MVFIFO) Name() string { return m.cfg.name() }

// Capacity returns the number of data frames.
func (m *MVFIFO) Capacity() int { return m.cfg.Frames }

// Len returns the number of occupied frames, including invalid duplicates.
func (m *MVFIFO) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int(m.seq - m.front)
}

// Stats returns a snapshot of the statistics.
func (m *MVFIFO) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Duplicates = int64(m.seq-m.front) - int64(len(m.dir))
	return s
}

// ResetStats clears the statistics.
func (m *MVFIFO) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}

// Contains reports whether a valid copy of the page is cached.
func (m *MVFIFO) Contains(id page.ID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.dir[id]
	return ok
}

// Lookup searches the cache for the page and, on a hit, copies the frame
// into buf and sets the frame's reference bit (used by second chance).
func (m *MVFIFO) Lookup(id page.ID, buf page.Buf) (bool, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, false, ErrClosed
	}
	m.stats.Lookups++
	pos, ok := m.dir[id]
	if !ok {
		return false, false, nil
	}
	slot := pos % uint64(m.cfg.Frames)
	fm := &m.meta[slot]
	if !fm.valid || fm.id != id {
		// A stale directory entry should never survive invalidation.
		delete(m.dir, id)
		return false, false, nil
	}
	if err := m.cfg.Dev.ReadAt(m.layout.frameBlock(slot), buf); err != nil {
		return false, false, fmt.Errorf("face: reading frame %d: %w", slot, err)
	}
	m.stats.FlashPageReads++
	m.stats.Hits++
	fm.ref = true
	return true, fm.dirty, nil
}

// StageIn offers a page evicted from the DRAM buffer to the cache,
// implementing Algorithm 1 of the paper: unconditional enqueue when fdirty,
// conditional enqueue (skip when an identical copy is cached) otherwise.
func (m *MVFIFO) StageIn(id page.ID, data page.Buf, dirty, fdirty bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.stats.StageIns++
	if dirty {
		m.stats.DirtyStageIns++
	} else {
		m.stats.CleanStageIns++
	}
	if !fdirty {
		if _, cached := m.dir[id]; cached {
			// An identical copy is already in the flash cache.
			return nil
		}
		if dirty && !fdirty {
			// The page is newer than disk but identical to a flash copy
			// that no longer exists (it was staged out).  Enqueue it so
			// the persistent database keeps the newest version.
			return m.enqueue([]stageItem{{id: id, data: data, dirty: true, lsn: data.LSN()}})
		}
		// Clean page, not cached: enqueue as clean.
		return m.enqueue([]stageItem{{id: id, data: data, dirty: false, lsn: data.LSN()}})
	}
	// fdirty: unconditional enqueue of the newest version.
	return m.enqueue([]stageItem{{id: id, data: data, dirty: dirty, lsn: data.LSN()}})
}

// stageItem is a page about to be enqueued.
type stageItem struct {
	id    page.ID
	data  page.Buf
	dirty bool
	lsn   page.LSN
}

// enqueue appends the items to the rear of the queue, making room first if
// necessary.  Items are written to flash as one sequential run.
func (m *MVFIFO) enqueue(items []stageItem) error {
	if len(items) == 0 {
		return nil
	}
	capacity := uint64(m.cfg.Frames)
	// Make room.  Group replacement frees GroupSize frames at a time and
	// may append survivors and pulled DRAM victims to the write group.
	for m.seq-m.front+uint64(len(items)) > capacity {
		extra, err := m.makeRoom(len(items))
		if err != nil {
			return err
		}
		items = append(items, extra...)
	}
	// Assign consecutive positions and write the run (split at wrap).
	start := m.seq
	images := make([]page.Buf, len(items))
	for i, it := range items {
		pos := start + uint64(i)
		img := it.data.Clone()
		img.SetCacheStamp(uint32(pos))
		images[i] = img
	}
	if err := m.writeFrames(start, images); err != nil {
		return err
	}
	m.stats.FlashPageWrites += int64(len(items))
	for i, it := range items {
		pos := start + uint64(i)
		slot := pos % capacity
		// Decide whether this item becomes the valid copy of the page.  A
		// write group may contain two versions of the same page — e.g. a
		// second-chance survivor re-enqueued after a newer incoming
		// version — so the page LSN decides which copy stays valid.
		newest := true
		if old, ok := m.dir[it.id]; ok {
			oldSlot := old % capacity
			if m.meta[oldSlot].valid && m.meta[oldSlot].id == it.id {
				if m.meta[oldSlot].lsn > it.lsn {
					newest = false
				} else if old >= m.front && old < pos {
					m.meta[oldSlot].valid = false
					m.stats.Invalidations++
				}
			}
		}
		m.meta[slot] = frameMeta{id: it.id, lsn: it.lsn, valid: newest, dirty: it.dirty, used: true}
		if newest {
			m.dir[it.id] = pos
		} else {
			m.stats.Invalidations++
		}
		m.seq = pos + 1
		if err := m.metadir.appendEntry(metaEntry{id: it.id, lsn: it.lsn, dirty: it.dirty}, pos, m.front, &m.stats); err != nil {
			return err
		}
	}
	return nil
}

// writeFrames writes consecutive queue positions starting at start,
// splitting the run where the circular queue wraps around.
func (m *MVFIFO) writeFrames(start uint64, images []page.Buf) error {
	capacity := uint64(m.cfg.Frames)
	i := 0
	for i < len(images) {
		slot := (start + uint64(i)) % capacity
		run := int(capacity - slot)
		if run > len(images)-i {
			run = len(images) - i
		}
		pages := make([][]byte, run)
		for j := 0; j < run; j++ {
			pages[j] = images[i+j]
		}
		if run == 1 {
			if err := m.cfg.Dev.WriteAt(m.layout.frameBlock(slot), pages[0]); err != nil {
				return fmt.Errorf("face: writing frame %d: %w", slot, err)
			}
		} else {
			if err := m.cfg.Dev.WriteRun(m.layout.frameBlock(slot), pages); err != nil {
				return fmt.Errorf("face: writing frames at %d: %w", slot, err)
			}
		}
		i += run
	}
	return nil
}

// makeRoom frees at least GroupSize frames (or one frame when grouping is
// disabled) from the front of the queue.  With second chance enabled it
// returns referenced frames and pulled DRAM victims to be appended to the
// caller's write group; reserve tells it how many slots the caller already
// needs so the group is not overfilled.
func (m *MVFIFO) makeRoom(reserve int) ([]stageItem, error) {
	group := m.cfg.GroupSize
	count := int(m.seq - m.front)
	if group > count {
		group = count
	}
	if group < 1 {
		return nil, fmt.Errorf("face: internal error: empty queue in makeRoom")
	}
	capacity := uint64(m.cfg.Frames)

	// Determine which frames in the group need their data read: valid
	// dirty frames (for the disk write) and, with second chance,
	// referenced valid frames (for re-enqueueing).
	needData := false
	for i := 0; i < group; i++ {
		fm := &m.meta[(m.front+uint64(i))%capacity]
		if fm.valid && (fm.dirty || (m.cfg.SecondChance && fm.ref)) {
			needData = true
			break
		}
	}
	var frames []page.Buf
	if needData {
		var err error
		frames, err = m.readFrames(m.front, group)
		if err != nil {
			return nil, err
		}
		m.stats.FlashPageReads += int64(group)
	}

	var survivors []stageItem
	for i := 0; i < group; i++ {
		pos := m.front + uint64(i)
		slot := pos % capacity
		fm := &m.meta[slot]
		if !fm.valid {
			*fm = frameMeta{}
			continue
		}
		switch {
		case m.cfg.SecondChance && fm.ref:
			// Second chance: re-enqueue regardless of dirtiness.
			m.stats.SecondChances++
			survivors = append(survivors, stageItem{id: fm.id, data: frames[i].Clone(), dirty: fm.dirty, lsn: fm.lsn})
		case fm.dirty:
			if err := m.cfg.DiskWrite(fm.id, frames[i]); err != nil {
				return nil, fmt.Errorf("face: staging out page %d: %w", fm.id, err)
			}
			m.stats.DiskPageWrites++
			delete(m.dir, fm.id)
		default:
			// Clean and unreferenced: discard.
			delete(m.dir, fm.id)
		}
		*fm = frameMeta{}
	}
	m.front += uint64(group)

	// If every frame survived, force the oldest one out to guarantee
	// progress (paper: "the page at the very front end will be discarded
	// or flushed to disk").
	maxKeep := group - reserve
	if maxKeep < 0 {
		maxKeep = 0
	}
	for len(survivors) > maxKeep {
		victim := survivors[0]
		survivors = survivors[1:]
		if victim.dirty {
			if err := m.cfg.DiskWrite(victim.id, victim.data); err != nil {
				return nil, fmt.Errorf("face: staging out page %d: %w", victim.id, err)
			}
			m.stats.DiskPageWrites++
		}
		delete(m.dir, victim.id)
	}
	// Survivors will be re-enqueued by the caller; their directory entries
	// still point at positions now outside the window, which enqueue will
	// overwrite.

	// Top up the write group with victims pulled from the DRAM buffer.
	if m.cfg.SecondChance && m.cfg.Pull != nil {
		want := group - reserve - len(survivors)
		if want > 0 {
			for _, p := range m.cfg.Pull(want) {
				m.stats.Pulled++
				m.stats.StageIns++
				if p.Dirty {
					m.stats.DirtyStageIns++
				} else {
					m.stats.CleanStageIns++
				}
				if !p.FDirty {
					if _, cached := m.dir[p.ID]; cached {
						continue
					}
				}
				survivors = append(survivors, stageItem{id: p.ID, data: p.Data, dirty: p.Dirty, lsn: p.Data.LSN()})
			}
		}
	}
	return survivors, nil
}

// readFrames reads n consecutive queue positions starting at start,
// splitting the run at the wrap point.
func (m *MVFIFO) readFrames(start uint64, n int) ([]page.Buf, error) {
	capacity := uint64(m.cfg.Frames)
	out := make([]page.Buf, n)
	i := 0
	for i < n {
		slot := (start + uint64(i)) % capacity
		run := int(capacity - slot)
		if run > n-i {
			run = n - i
		}
		base := i
		if run == 1 {
			buf := page.NewBuf()
			if err := m.cfg.Dev.ReadAt(m.layout.frameBlock(slot), buf); err != nil {
				return nil, fmt.Errorf("face: reading frame %d: %w", slot, err)
			}
			out[base] = buf
		} else {
			err := m.cfg.Dev.ReadRun(m.layout.frameBlock(slot), run, func(j int, p []byte) error {
				buf := page.NewBuf()
				copy(buf, p)
				out[base+j] = buf
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("face: reading frames at %d: %w", slot, err)
			}
		}
		i += run
	}
	return out, nil
}

// Checkpoint flushes the current metadata segment and queue pointers to
// flash.  Data pages in the cache are not written anywhere: they are
// already part of the persistent database (Section 4.1).
func (m *MVFIFO) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	return m.metadir.flush(m.seq, m.front, &m.stats)
}

// Recover rebuilds the in-memory directory after a crash: the persistent
// metadata segments are read back and the frames written after the last
// metadata flush are rediscovered by scanning their headers and enqueue
// stamps (Section 4.2).
func (m *MVFIFO) Recover() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	front, persisted, entries, err := m.metadir.load()
	if err != nil {
		return err
	}
	capacity := uint64(m.cfg.Frames)
	m.front = front
	m.meta = make([]frameMeta, m.cfg.Frames)
	m.dir = make(map[page.ID]uint64, m.cfg.Frames)

	apply := func(pos uint64, id page.ID, lsn page.LSN, dirty bool) {
		slot := pos % capacity
		newest := true
		if old, ok := m.dir[id]; ok && old >= m.front {
			oldSlot := old % capacity
			if m.meta[oldSlot].id == id && m.meta[oldSlot].valid {
				if m.meta[oldSlot].lsn > lsn {
					newest = false
				} else {
					m.meta[oldSlot].valid = false
				}
			}
		}
		m.meta[slot] = frameMeta{id: id, lsn: lsn, valid: newest, dirty: dirty, used: true}
		if newest {
			m.dir[id] = pos
		}
	}

	// Replay persisted entries for positions still inside the queue window.
	for pos := front; pos < persisted; pos++ {
		e, ok := entries[pos]
		if !ok {
			continue
		}
		apply(pos, e.id, e.lsn, e.dirty)
	}

	// Rescan frames written after the last metadata flush.  The enqueue
	// stamp distinguishes current-generation frames from stale ones.
	limit := persisted + 2*uint64(m.cfg.SegmentEntries)
	if limit > persisted+capacity {
		limit = persisted + capacity
	}
	m.seq = persisted
	buf := page.NewBuf()
	for pos := persisted; pos < limit; pos++ {
		slot := pos % capacity
		if err := m.cfg.Dev.ReadAt(m.layout.frameBlock(slot), buf); err != nil {
			return fmt.Errorf("face: recovery scan at frame %d: %w", slot, err)
		}
		m.stats.FlashPageReads++
		if buf.CacheStamp() != uint32(pos) || buf.ID() == page.InvalidID {
			break
		}
		// Conservatively treat rediscovered frames as dirty: at worst this
		// causes one redundant disk write when the frame is staged out.
		apply(pos, buf.ID(), buf.LSN(), true)
		m.metadir.restoreEntry(pos, metaEntry{id: buf.ID(), lsn: buf.LSN(), dirty: true})
		m.seq = pos + 1
	}
	if m.seq < m.front {
		m.seq = m.front
	}
	return nil
}

// FlushAll writes every valid dirty frame to disk and marks it clean.  It
// is used for clean shutdown.
func (m *MVFIFO) FlushAll() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	capacity := uint64(m.cfg.Frames)
	for pos := m.front; pos < m.seq; pos++ {
		slot := pos % capacity
		fm := &m.meta[slot]
		if !fm.valid || !fm.dirty {
			continue
		}
		buf := page.NewBuf()
		if err := m.cfg.Dev.ReadAt(m.layout.frameBlock(slot), buf); err != nil {
			return fmt.Errorf("face: flush read frame %d: %w", slot, err)
		}
		m.stats.FlashPageReads++
		if err := m.cfg.DiskWrite(fm.id, buf); err != nil {
			return fmt.Errorf("face: flush write page %d: %w", fm.id, err)
		}
		m.stats.DiskPageWrites++
		fm.dirty = false
	}
	return nil
}

// DirtyFrames returns the number of valid dirty frames (diagnostics).
func (m *MVFIFO) DirtyFrames() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for pos := m.front; pos < m.seq; pos++ {
		fm := &m.meta[pos%uint64(m.cfg.Frames)]
		if fm.valid && fm.dirty {
			n++
		}
	}
	return n
}
