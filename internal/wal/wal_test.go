package wal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
)

func newLogDevice() *device.Device {
	return device.New("log", device.ProfileCheetah15K, 4096)
}

func TestRecordTypeString(t *testing.T) {
	types := []RecordType{TypeUpdate, TypeFullPage, TypeCommit, TypeAbort, TypeCheckpointBegin, TypeCheckpointEnd, RecordType(200)}
	seen := map[string]bool{}
	for _, ty := range types {
		s := ty.String()
		if s == "" || seen[s] {
			t.Errorf("type %d string %q", ty, s)
		}
		seen[s] = true
	}
}

func TestRecordEncodeDecode(t *testing.T) {
	r := &Record{
		Type:   TypeUpdate,
		TxID:   17,
		PageID: 99,
		Offset: 1234,
		Before: []byte("old value"),
		After:  []byte("new value!"),
	}
	enc := r.encode(nil)
	got, n, err := decodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if got.Type != r.Type || got.TxID != r.TxID || got.PageID != r.PageID || got.Offset != r.Offset {
		t.Fatalf("decoded header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Before, r.Before) || !bytes.Equal(got.After, r.After) {
		t.Fatal("decoded images mismatch")
	}
}

func TestRecordDecodeCorruption(t *testing.T) {
	r := &Record{Type: TypeCommit, TxID: 5}
	enc := r.encode(nil)
	// Flip a body byte: CRC must catch it.
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 0xFF
	if _, _, err := decodeRecord(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted record: %v, want ErrCorrupt", err)
	}
	// Truncated buffer.
	if _, _, err := decodeRecord(enc[:5]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated record: %v, want ErrTruncated", err)
	}
	// Zero-filled tail means end of log.
	if _, _, err := decodeRecord(make([]byte, 64)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("zero tail: %v, want ErrTruncated", err)
	}
}

func TestRecordEncodeDecodeProperty(t *testing.T) {
	f := func(txid uint64, pid uint64, off uint16, before, after []byte) bool {
		if len(before) > 2000 {
			before = before[:2000]
		}
		if len(after) > 2000 {
			after = after[:2000]
		}
		r := &Record{Type: TypeUpdate, TxID: TxID(txid), PageID: page.ID(pid), Offset: off, Before: before, After: after}
		enc := r.encode(nil)
		got, n, err := decodeRecord(enc)
		if err != nil || n != len(enc) {
			return false
		}
		return got.TxID == r.TxID && got.PageID == r.PageID && got.Offset == r.Offset &&
			bytes.Equal(got.Before, before) && bytes.Equal(got.After, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLSNPayload(t *testing.T) {
	enc := EncodeLSN(123456)
	got, err := DecodeLSN(enc)
	if err != nil || got != 123456 {
		t.Fatalf("DecodeLSN = %d, %v", got, err)
	}
	if _, err := DecodeLSN([]byte{1, 2}); err == nil {
		t.Fatal("short LSN payload should fail")
	}
}

func TestAppendForceIterate(t *testing.T) {
	dev := newLogDevice()
	m, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	var lsns []page.LSN
	for i := 0; i < 10; i++ {
		lsn, err := m.Append(&Record{Type: TypeUpdate, TxID: TxID(i + 1), PageID: page.ID(i + 100), Offset: 4, Before: []byte{1}, After: []byte{2}})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if m.Durable() != 0 {
		t.Fatalf("Durable before force = %d, want 0", m.Durable())
	}
	if err := m.ForceAll(); err != nil {
		t.Fatal(err)
	}
	if m.Durable() != m.Next() {
		t.Fatalf("Durable %d != Next %d after ForceAll", m.Durable(), m.Next())
	}
	var seen []page.LSN
	err = m.Iterate(0, func(r *Record) error {
		seen = append(seen, r.LSN)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 {
		t.Fatalf("iterated %d records, want 10", len(seen))
	}
	for i := range seen {
		if seen[i] != lsns[i] {
			t.Fatalf("record %d LSN = %d, want %d", i, seen[i], lsns[i])
		}
	}
}

func TestForceIsIdempotent(t *testing.T) {
	dev := newLogDevice()
	m, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	lsn, _ := m.Append(&Record{Type: TypeCommit, TxID: 1})
	if err := m.Force(lsn + 1); err != nil {
		t.Fatal(err)
	}
	forces := m.Forces()
	if err := m.Force(lsn); err != nil {
		t.Fatal(err)
	}
	if m.Forces() != forces {
		t.Fatal("redundant Force performed I/O")
	}
}

func TestIterateFromMiddle(t *testing.T) {
	dev := newLogDevice()
	m, _ := Open(dev)
	var mid page.LSN
	for i := 0; i < 20; i++ {
		lsn, _ := m.Append(&Record{Type: TypeUpdate, TxID: 1, PageID: page.ID(i), Offset: 0, Before: []byte{0}, After: []byte{byte(i)}})
		if i == 10 {
			mid = lsn
		}
	}
	if err := m.ForceAll(); err != nil {
		t.Fatal(err)
	}
	var ids []page.ID
	if err := m.Iterate(mid, func(r *Record) error {
		ids = append(ids, r.PageID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 || ids[0] != 10 {
		t.Fatalf("Iterate(mid) returned %v", ids)
	}
}

func TestCrashLosesUnforcedRecords(t *testing.T) {
	dev := newLogDevice()
	m, _ := Open(dev)
	m.Append(&Record{Type: TypeCommit, TxID: 1})
	if err := m.ForceAll(); err != nil {
		t.Fatal(err)
	}
	m.Append(&Record{Type: TypeCommit, TxID: 2})
	// Not forced: lost at crash.
	m.Crash()

	m2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	var commits []TxID
	if err := m2.Iterate(0, func(r *Record) error {
		if r.Type == TypeCommit {
			commits = append(commits, r.TxID)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(commits) != 1 || commits[0] != 1 {
		t.Fatalf("recovered commits = %v, want [1]", commits)
	}
}

func TestReopenAppendsAfterDurableEnd(t *testing.T) {
	dev := newLogDevice()
	m, _ := Open(dev)
	m.Append(&Record{Type: TypeUpdate, TxID: 1, PageID: 5, Before: []byte("aaa"), After: []byte("bbb")})
	if err := m.ForceAll(); err != nil {
		t.Fatal(err)
	}
	durable := m.Durable()

	m2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Durable() != durable || m2.Next() != durable {
		t.Fatalf("reopened manager durable=%d next=%d, want both %d", m2.Durable(), m2.Next(), durable)
	}
	m2.Append(&Record{Type: TypeCommit, TxID: 1})
	if err := m2.ForceAll(); err != nil {
		t.Fatal(err)
	}
	var count int
	if err := m2.Iterate(0, func(r *Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("records after reopen = %d, want 2", count)
	}
}

func TestCheckpointRecords(t *testing.T) {
	dev := newLogDevice()
	m, _ := Open(dev)
	begin, err := m.LogCheckpointBegin()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LogCheckpointEnd(begin); err != nil {
		t.Fatal(err)
	}
	if m.LastCheckpoint() != begin {
		t.Fatalf("LastCheckpoint = %d, want %d", m.LastCheckpoint(), begin)
	}
	// The checkpoint LSN must survive a crash + reopen.
	m.Crash()
	m2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if m2.LastCheckpoint() != begin {
		t.Fatalf("LastCheckpoint after reopen = %d, want %d", m2.LastCheckpoint(), begin)
	}
	// The end record payload decodes back to the begin LSN.
	var endPayload page.LSN
	if err := m2.Iterate(0, func(r *Record) error {
		if r.Type == TypeCheckpointEnd {
			var derr error
			endPayload, derr = DecodeLSN(r.After)
			return derr
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if endPayload != begin {
		t.Fatalf("checkpoint-end payload = %d, want %d", endPayload, begin)
	}
}

func TestManyRecordsSpanBlocks(t *testing.T) {
	dev := newLogDevice()
	m, _ := Open(dev)
	const n = 500
	payload := make([]byte, 100)
	for i := 0; i < n; i++ {
		payload[0] = byte(i)
		if _, err := m.Append(&Record{Type: TypeUpdate, TxID: TxID(i), PageID: page.ID(i), Before: payload, After: payload}); err != nil {
			t.Fatal(err)
		}
		if i%37 == 0 {
			if err := m.ForceAll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.ForceAll(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := m.Iterate(0, func(r *Record) error {
		if r.TxID != TxID(count) {
			t.Fatalf("record %d has TxID %d", count, r.TxID)
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("iterated %d records, want %d", count, n)
	}
	// Log writes must be overwhelmingly sequential.
	s := dev.Stats()
	if s.SeqWrites < s.RandWrites {
		t.Fatalf("log writes should be mostly sequential: %v", s)
	}
}

func TestLogDeviceFull(t *testing.T) {
	dev := device.New("tiny-log", device.ProfileCheetah15K, 2)
	m, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 3*device.BlockSize)
	m.Append(&Record{Type: TypeFullPage, TxID: 1, PageID: 1, After: big})
	if err := m.ForceAll(); err == nil {
		t.Fatal("expected log-full error")
	}
}
