package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/metrics"
	"github.com/reprolab/face/internal/page"
)

// controlBlocks is the number of device blocks reserved at the start of the
// log device for the control block (last checkpoint LSN, durable log end).
const controlBlocks = 1

// controlMagic identifies an initialised control block.
const controlMagic = 0xFACE10C0

// Default commit-pipeline geometry: the in-memory log buffer is a ring of
// DefaultSegments segments of DefaultSegmentBytes each that committers
// reserve space in with one CAS and fill without holding any lock.
const (
	DefaultSegments     = 8
	DefaultSegmentBytes = 64 << 10
)

// Config tunes the log manager.  The zero value selects the lock-free
// commit pipeline with the default buffer geometry.
type Config struct {
	// Segments selects the log front end: 0 means DefaultSegments
	// (the lock-free reservation pipeline), 1 selects the mutex-compat
	// path (every Append serializes on one lock and Force writes inline —
	// the pre-pipeline behaviour, kept as the ablation baseline), and
	// values above 1 run the pipeline with that many buffer segments.
	Segments int
	// SegmentBytes is the size of one ring segment (0 = the default).
	SegmentBytes int
}

// Manager is the write-ahead log manager.
//
// Records are appended to an in-memory log buffer and become durable when
// Force is called (commit, page eviction, checkpoint).  Log writes are
// strictly sequential; the log device is typically a dedicated disk, as in
// the paper's experimental setup.
//
// The default front end is a three-stage pipeline in the Aether /
// scalable-ARIES-logging style: Append performs an atomic LSN/space
// reservation on a ring of buffer segments (one CAS, no lock), copies the
// record bytes into the reserved slot in parallel with other appenders, and
// publishes completion; a high-water mark — the largest LSN below which
// every copy has landed — replaces the mutex-guarded tail (reserve.go).
// Force parks the caller on a durable-LSN waitlist serviced by a dedicated
// syncer goroutine that coalesces concurrent requests into one device
// write + fsync round (syncer.go).  On devices with a real durability
// barrier the partial tail block is staged through a double-write slot at
// the end of the device before being rewritten in place, so a torn 4 KiB
// write cannot clip previously durable records (tornslot.go).
//
// Config{Segments: 1} selects the historical mutex path instead
// (compat.go); the on-device format is identical in both modes.
type Manager struct {
	dev device.Dev

	// base is the LSN assigned to the first byte of the log data region.
	// A freshly initialised log normally starts at 0; SetStart raises the
	// base so LSNs stay monotonic when a new log is attached to a
	// database whose pages already carry LSNs from an earlier log (e.g. a
	// database image cloned by the benchmark harness).  Immutable once
	// records exist.
	base page.LSN

	// protect is set when the device has a durability barrier
	// (device.Syncer) and room for the torn-tail double-write slot; the
	// partial tail block is then staged through the slot before every
	// in-place rewrite.  dataBlocks is the device capacity available to
	// log data (the slot blocks at the device end are excluded).
	protect    bool
	dataBlocks int64

	// Hot read-only state is atomic so stats sampling (engine.Snapshot)
	// never contends with the commit path.
	durableA       atomic.Uint64 // LSN up to which the log is on the device
	nextA          atomic.Uint64 // next LSN (maintained by the compat path; the pipeline derives it from its position word)
	forcesA        atomic.Int64  // flush rounds that performed device I/O for a Force
	lastCheckpoint atomic.Uint64

	gcRequests    atomic.Int64
	gcPiggybacked atomic.Int64

	appends        atomic.Int64
	reserveStalls  atomic.Int64
	copyWaits      atomic.Int64
	copyWaitNS     atomic.Int64
	syncCount      atomic.Int64
	syncNS         atomic.Int64
	durableWaits   atomic.Int64
	tornSlotWrites atomic.Int64

	// Group-commit pacing hints, shared by both front ends.  gcWindowNS is
	// the leader/syncer collection window; committers the dynamic count of
	// registered committers (AddCommitter); committersHint a static
	// expectation (SetCommitters) that takes precedence when set.  The
	// hint matters on machines where concurrent commits never overlap by
	// chance (few cores): it tells the first force of a batch to open a
	// collection window so the other committers get scheduled into it.
	gcWindowNS     atomic.Int64
	committers     atomic.Int64
	committersHint atomic.Int64

	closed atomic.Bool

	// pipe is the lock-free front end (nil under Config{Segments: 1}).
	pipe *pipeline

	// Mutex-compat state (compat.go); unused when pipe != nil.
	mu sync.Mutex
	// pending holds encoded records in [durable, next).
	pending []byte
	// partial holds the bytes of the last durable block that precede
	// offset durable (so the block can be rewritten when more data is
	// appended to it).  The pipeline moves it into its own state at Open.
	partial []byte
	batch   *forceBatch
	// gcSolo counts consecutive forces that found no companion while a
	// committer hint was active; see shouldCollect.
	gcSolo int
}

// Adaptive solo-leader thresholds: after soloStreakLimit companion-less
// batches the collection window is skipped; every soloProbeEvery solo
// forces one window is paid as a probe so real concurrency is re-detected
// within a bounded number of commits.
const (
	soloStreakLimit = 3
	soloProbeEvery  = 16
)

// Open creates a manager with the default configuration on the given log
// device.  If the device contains an initialised control block, the
// existing log is preserved and the manager resumes appending after its
// durable end; otherwise a fresh log is initialised.
func Open(dev device.Dev) (*Manager, error) { return OpenConfig(dev, Config{}) }

// OpenConfig is Open with an explicit front-end configuration.
func OpenConfig(dev device.Dev, cfg Config) (*Manager, error) {
	m := &Manager{dev: dev, dataBlocks: dev.NumBlocks()}
	if _, ok := dev.(device.Syncer); ok && dev.NumBlocks() >= controlBlocks+tornSlotBlocks+1 {
		m.protect = true
		m.dataBlocks -= tornSlotBlocks
	}
	ctrl := make([]byte, device.BlockSize)
	if err := dev.ReadAt(0, ctrl); err != nil {
		return nil, fmt.Errorf("wal: reading control block: %w", err)
	}
	if binary.LittleEndian.Uint32(ctrl[0:]) == controlMagic {
		m.lastCheckpoint.Store(binary.LittleEndian.Uint64(ctrl[4:]))
		m.base = page.LSN(binary.LittleEndian.Uint64(ctrl[20:]))
		// Repair a torn tail block from the double-write slot before
		// trusting anything the end-of-log scan reads.
		if m.protect {
			if err := m.repairTornTail(); err != nil {
				return nil, err
			}
		}
		// The control block is only rewritten at checkpoints (real systems
		// do not touch their control file on every commit), so the durable
		// end of the log is found by scanning forward from the last known
		// record boundary until the records stop decoding.
		scanFrom := m.LastCheckpoint()
		if scanFrom < m.base {
			scanFrom = m.base
		}
		end, err := m.scanDurableEnd(scanFrom)
		if err != nil {
			return nil, err
		}
		m.durableA.Store(uint64(end))
		m.nextA.Store(uint64(end))
		if err := m.loadPartial(); err != nil {
			return nil, err
		}
		return m, m.start(cfg)
	}
	// Fresh log.
	if err := m.writeControl(); err != nil {
		return nil, err
	}
	// A slot left behind by an earlier log incarnation on the same device
	// must not repair a block of the new log.
	if m.protect {
		if err := m.invalidateTornSlot(); err != nil {
			return nil, err
		}
	}
	return m, m.start(cfg)
}

// start brings up the configured front end once the shared on-device state
// has been recovered.
func (m *Manager) start(cfg Config) error {
	segs := cfg.Segments
	if segs == 0 {
		segs = DefaultSegments
	}
	if segs < 1 {
		return fmt.Errorf("wal: Segments must be at least 1 (got %d)", cfg.Segments)
	}
	if segs == 1 {
		return nil // mutex-compat front end
	}
	segBytes := cfg.SegmentBytes
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	p, err := newPipeline(m, segs, segBytes)
	if err != nil {
		return err
	}
	m.pipe = p
	go p.syncerLoop()
	return nil
}

// Close stops the syncer goroutine of the pipeline front end.  It does not
// force the log: callers that need the tail durable force it first (the
// engine checkpoints on Close).  Idempotent.
func (m *Manager) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	if m.pipe != nil {
		m.pipe.stop()
	}
	return nil
}

// scanDurableEnd walks the log from a known record boundary and returns the
// LSN just past the last intact record.
func (m *Manager) scanDurableEnd(from page.LSN) (page.LSN, error) {
	end := from
	startBlk := int64(m.off(from)/device.BlockSize) + controlBlocks
	nextBlk := startBlk
	skip := int(m.off(from) % device.BlockSize)
	var stream []byte
	buf := make([]byte, device.BlockSize)

	readMore := func() (bool, error) {
		if nextBlk >= m.dataBlocks {
			return false, nil
		}
		if err := m.dev.ReadAt(nextBlk, buf); err != nil {
			return false, fmt.Errorf("wal: scanning for log end: %w", err)
		}
		stream = append(stream, buf...)
		nextBlk++
		return true, nil
	}

	for {
		// A record needs at least its 4-byte length field; the length field
		// being zero marks the zero-filled tail of the log.
		for len(stream)-skip < 4 {
			ok, err := readMore()
			if err != nil {
				return 0, err
			}
			if !ok {
				return end, nil
			}
		}
		length := binary.LittleEndian.Uint32(stream[skip:])
		if length == 0 {
			return end, nil
		}
		total := 4 + int(length)
		for len(stream)-skip < total {
			ok, err := readMore()
			if err != nil {
				return 0, err
			}
			if !ok {
				// The record claims more bytes than the device holds: it was
				// never completely written.
				return end, nil
			}
		}
		if _, consumed, err := decodeRecord(stream[skip:]); err == nil {
			skip += consumed
			end += page.LSN(consumed)
			continue
		}
		// Corrupt record (torn write at the crash): the log ends before it.
		return end, nil
	}
}

// off converts an LSN into a byte offset within the log data region.
func (m *Manager) off(lsn page.LSN) uint64 { return uint64(lsn - m.base) }

// SetStart raises the LSN of the first log byte of a freshly initialised,
// still empty log.  It is used when the database pages already carry LSNs
// from a previous log incarnation: starting above their high-water mark
// keeps LSN comparisons (redo checks, flash-cache version checks)
// meaningful.  It fails once anything has been appended.
func (m *Manager) SetStart(lsn page.LSN) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.Next() != m.base || m.Durable() != m.base || len(m.pending) > 0 ||
		(m.pipe != nil && !m.pipe.empty()) {
		return fmt.Errorf("wal: SetStart on a non-empty log (next %d, base %d)", m.Next(), m.base)
	}
	if lsn < m.base {
		return nil
	}
	m.base = lsn
	m.nextA.Store(uint64(lsn))
	m.durableA.Store(uint64(lsn))
	//lint:allow facevet/nolockio cold initialization: SetStart requires an empty log, so no appender can contend for the mutex
	return m.writeControl()
}

// loadPartial reads the partially filled last durable block so appends can
// rewrite it.
func (m *Manager) loadPartial() error {
	rem := int(m.off(m.Durable()) % device.BlockSize)
	m.partial = nil
	if rem == 0 {
		return nil
	}
	blk := int64(m.off(m.Durable())/device.BlockSize) + controlBlocks
	buf := make([]byte, device.BlockSize)
	if err := m.dev.ReadAt(blk, buf); err != nil {
		return fmt.Errorf("wal: reading partial tail block: %w", err)
	}
	m.partial = buf[:rem]
	return nil
}

func (m *Manager) writeControl() error {
	ctrl := make([]byte, device.BlockSize)
	binary.LittleEndian.PutUint32(ctrl[0:], controlMagic)
	binary.LittleEndian.PutUint64(ctrl[4:], m.lastCheckpoint.Load())
	binary.LittleEndian.PutUint64(ctrl[12:], uint64(m.Durable()))
	binary.LittleEndian.PutUint64(ctrl[20:], uint64(m.base))
	if err := m.dev.WriteAt(0, ctrl); err != nil {
		return err
	}
	return device.Sync(m.dev)
}

// writeBlocks writes a run of log blocks, staging the first block through
// the torn-tail double-write slot when it extends a previously durable
// partial block on a device without atomic block writes.  Both front ends
// funnel their device writes through here.
func (m *Manager) writeBlocks(startBlk int64, pages [][]byte, firstPartial bool) error {
	if startBlk+int64(len(pages)) > m.dataBlocks {
		return fmt.Errorf("wal: log device full (%d blocks)", m.dataBlocks)
	}
	if m.protect && firstPartial && len(pages) > 0 {
		if err := m.writeTornSlot(startBlk, pages[0]); err != nil {
			return err
		}
	}
	if err := m.dev.WriteRun(startBlk, pages); err != nil {
		return fmt.Errorf("wal: flushing log: %w", err)
	}
	return nil
}

// syncDevice issues the durability barrier and accounts for it.
func (m *Manager) syncDevice() error {
	start := time.Now()
	err := device.Sync(m.dev)
	m.syncCount.Add(1)
	m.syncNS.Add(int64(time.Since(start)))
	return err
}

// Append adds a record to the log tail and returns its LSN.  The record is
// not durable until Force is called with an LSN past it.  Under the
// pipeline front end Append acquires no mutex: it reserves log space with
// one CAS and copies the record bytes concurrently with other appenders.
func (m *Manager) Append(r *Record) (page.LSN, error) {
	if m.pipe != nil {
		return m.pipe.append(r)
	}
	return m.appendCompat(r)
}

// Force makes the log durable at least up to lsn.  It is a no-op when the
// log is already durable past lsn.  Concurrent callers are coalesced: under
// the pipeline front end they park on the syncer's durable-LSN waitlist and
// one flush round covers the maximum requested LSN; under the compat front
// end the historical leader/follower protocol batches them.
func (m *Manager) Force(lsn page.LSN) error {
	if m.pipe != nil {
		return m.pipe.force(lsn)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	//lint:allow facevet/nolockio compat front end: the leader/follower protocol batches forces under the append mutex by documented design
	return m.forceLocked(lsn)
}

// ForceAll makes the entire log tail durable.
func (m *Manager) ForceAll() error {
	if m.pipe != nil {
		return m.pipe.force(m.Next())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	//lint:allow facevet/nolockio compat front end: the leader/follower protocol batches forces under the append mutex by documented design
	return m.forceLocked(m.Next())
}

// Next returns the LSN that will be assigned to the next appended record.
func (m *Manager) Next() page.LSN {
	if m.pipe != nil {
		return m.pipe.next()
	}
	return page.LSN(m.nextA.Load())
}

// Durable returns the LSN up to which the log is persistent.
func (m *Manager) Durable() page.LSN { return page.LSN(m.durableA.Load()) }

// Forces returns the number of Force flush rounds that performed device
// I/O.
func (m *Manager) Forces() int64 { return m.forcesA.Load() }

// Pipelined reports whether the lock-free front end is active.
func (m *Manager) Pipelined() bool { return m.pipe != nil }

// SetGroupCommitWindow sets the collection window for coalescing commit
// forces.  Zero (the default) disables batching: every Force that finds
// the log short of its LSN triggers an immediate flush round.  The engine
// enables a small window under the multi-writer scheduler, where
// concurrent committers can actually fill a batch.
func (m *Manager) SetGroupCommitWindow(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.gcWindowNS.Store(int64(d))
}

// AddCommitter adjusts the number of registered committers (transactions
// currently able to request a commit force).  A collecting flush round
// completes early once every registered committer has joined, so
// single-writer phases pay no window latency.
func (m *Manager) AddCommitter(delta int) {
	m.committers.Add(int64(delta))
	if m.pipe != nil {
		m.pipe.kick()
		return
	}
	m.mu.Lock()
	m.checkBatchFullLocked()
	m.mu.Unlock()
}

// SetCommitters sets a static expected-committer count that overrides the
// dynamic AddCommitter tally while non-zero.  Multi-terminal drivers set
// it to their terminal count for the duration of a run: the first commit
// force then opens a collection window even before a second committer has
// physically arrived, which is what makes batches fill on machines where
// goroutines rarely overlap (GOMAXPROCS=1).  Set it back to zero when the
// run ends.
func (m *Manager) SetCommitters(n int) {
	if n < 0 {
		n = 0
	}
	m.committersHint.Store(int64(n))
	if m.pipe != nil {
		// A fresh expectation invalidates any stale-solo verdict.
		m.pipe.resetSolo()
		m.pipe.kick()
		return
	}
	m.mu.Lock()
	m.gcSolo = 0
	m.checkBatchFullLocked()
	m.mu.Unlock()
}

// CommittersHint returns the static expected-committer count (zero when
// unset).  Callers that set a temporary hint restore the previous value.
func (m *Manager) CommittersHint() int { return int(m.committersHint.Load()) }

// dynCommitters returns the dynamic committer tally, floored at zero.
func (m *Manager) dynCommitters() int {
	n := m.committers.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// effectiveCommitters returns the committer count batching decisions use:
// the static hint when set, the dynamic tally otherwise.
func (m *Manager) effectiveCommitters() int {
	if h := m.committersHint.Load(); h > 0 {
		return int(h)
	}
	return m.dynCommitters()
}

// GroupCommitStats returns the batching counters of the commit-force
// coalescing protocol.
func (m *Manager) GroupCommitStats() metrics.GroupCommitStats {
	return metrics.GroupCommitStats{
		Requests:    m.gcRequests.Load(),
		Forces:      m.forcesA.Load(),
		Piggybacked: m.gcPiggybacked.Load(),
	}
}

// Stats returns the commit-pipeline counters.  All sources are atomics, so
// sampling never contends with appenders or the syncer.
func (m *Manager) Stats() metrics.WalStats {
	return metrics.WalStats{
		Appends:        m.appends.Load(),
		ReserveStalls:  m.reserveStalls.Load(),
		CopyWaits:      m.copyWaits.Load(),
		CopyWaitTime:   time.Duration(m.copyWaitNS.Load()),
		ForceRequests:  m.gcRequests.Load(),
		Forces:         m.forcesA.Load(),
		Piggybacked:    m.gcPiggybacked.Load(),
		Syncs:          m.syncCount.Load(),
		SyncTime:       time.Duration(m.syncNS.Load()),
		DurableWaits:   m.durableWaits.Load(),
		TornSlotWrites: m.tornSlotWrites.Load(),
	}
}

// LogCheckpointBegin appends a checkpoint-begin record and returns its LSN.
func (m *Manager) LogCheckpointBegin() (page.LSN, error) {
	return m.Append(&Record{Type: TypeCheckpointBegin})
}

// LogCheckpointEnd appends a checkpoint-end record referring to beginLSN,
// forces the log, and durably records beginLSN as the most recent completed
// checkpoint in the control block.
func (m *Manager) LogCheckpointEnd(beginLSN page.LSN) error {
	if _, err := m.Append(&Record{Type: TypeCheckpointEnd, After: EncodeLSN(beginLSN)}); err != nil {
		return err
	}
	if err := m.ForceAll(); err != nil {
		return err
	}
	m.lastCheckpoint.Store(uint64(beginLSN))
	return m.writeControl()
}

// LastCheckpoint returns the LSN of the begin record of the most recent
// completed checkpoint, or 0 when no checkpoint has completed.
func (m *Manager) LastCheckpoint() page.LSN {
	return page.LSN(m.lastCheckpoint.Load())
}

// Crash simulates a process failure: all non-durable log records are lost.
// The manager must not be used afterwards; reopen the log with Open.
func (m *Manager) Crash() {
	m.Close()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pending = nil
	m.partial = nil
	m.nextA.Store(m.durableA.Load())
}

// Iterate replays durable log records with LSN >= from, in order.  The
// callback receives each decoded record; iteration stops at the durable end
// of the log or when the callback returns an error.
func (m *Manager) Iterate(from page.LSN, fn func(*Record) error) error {
	durable := m.Durable()
	if from < m.base {
		from = m.base
	}
	if from >= durable {
		return nil
	}

	startBlk := int64(m.off(from)/device.BlockSize) + controlBlocks
	endBlk := int64((m.off(durable)+device.BlockSize-1)/device.BlockSize) + controlBlocks
	// Read the durable region sequentially in one run (recovery reads the
	// log front to back, as a real system would).
	var stream []byte
	n := int(endBlk - startBlk)
	err := m.dev.ReadRun(startBlk, n, func(i int, p []byte) error {
		stream = append(stream, p...)
		return nil
	})
	if err != nil {
		return fmt.Errorf("wal: reading log: %w", err)
	}
	// Clip to the durable byte range.
	skip := int(m.off(from) % device.BlockSize)
	limit := int(durable - from)
	if skip >= len(stream) {
		return nil
	}
	stream = stream[skip:]
	if limit < len(stream) {
		stream = stream[:limit]
	}

	offset := from
	for len(stream) > 0 {
		rec, consumed, err := decodeRecord(stream)
		if errors.Is(err, ErrTruncated) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("wal: at LSN %d: %w", offset, err)
		}
		rec.LSN = offset
		if err := fn(rec); err != nil {
			return err
		}
		stream = stream[consumed:]
		offset += page.LSN(consumed)
	}
	return nil
}
