package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/metrics"
	"github.com/reprolab/face/internal/page"
)

// controlBlocks is the number of device blocks reserved at the start of the
// log device for the control block (last checkpoint LSN, durable log end).
const controlBlocks = 1

// controlMagic identifies an initialised control block.
const controlMagic = 0xFACE10C0

// Manager is the write-ahead log manager.
//
// Records are appended to an in-memory tail and become durable when Force
// is called (commit, page eviction, checkpoint).  Log writes are strictly
// sequential; the log device is typically a dedicated disk, as in the
// paper's experimental setup.
type Manager struct {
	mu sync.Mutex

	dev device.Dev

	// base is the LSN assigned to the first byte of the log data region.
	// A freshly initialised log normally starts at 0; SetStart raises the
	// base so LSNs stay monotonic when a new log is attached to a
	// database whose pages already carry LSNs from an earlier log (e.g. a
	// database image cloned by the benchmark harness).
	base page.LSN
	// next is the LSN that will be assigned to the next record.
	next page.LSN
	// durable is the LSN up to which the log is on the device.
	durable page.LSN
	// pending holds encoded records in [durable, next).
	pending []byte
	// partial holds the bytes of the last durable block that precede
	// offset durable (so the block can be rewritten when more data is
	// appended to it).
	partial []byte

	// lastCheckpoint is the LSN of the begin record of the most recent
	// completed checkpoint.
	lastCheckpoint page.LSN

	forces int64

	// Group commit (leader/follower).  With a non-zero collection window
	// and more than one registered committer, the first Force caller that
	// finds the log short of its LSN becomes the leader: it opens a batch,
	// waits up to gcWindow for concurrent committers to append their
	// records and join, then performs one device write covering the
	// maximum requested LSN.  Followers block on the batch and return once
	// durable has passed their LSN, without touching the device.
	gcWindow time.Duration
	// committers is the dynamic count of registered committers
	// (AddCommitter); committersHint is a static expectation
	// (SetCommitters) that takes precedence when set.  The hint matters on
	// machines where concurrent commits never overlap by chance (few
	// cores): it tells the first Force to open a collection window so the
	// other committers get scheduled into it.
	committers     int
	committersHint int
	batch          *forceBatch
	// gcSolo counts consecutive forces that found no companion while a
	// committer hint was active.  After a short streak the leaders stop
	// paying the collection window (the hint is evidently stale — e.g. a
	// lone writer on a pool opened with MaxWriters > 1), probing with a
	// window again every soloProbeEvery forces so real concurrency is
	// re-detected within a bounded number of commits.
	gcSolo int

	gcRequests    int64
	gcPiggybacked int64
}

// Adaptive solo-leader thresholds: after soloStreakLimit companion-less
// batches the window is skipped; every soloProbeEvery solo forces one
// window is paid as a probe.
const (
	soloStreakLimit = 3
	soloProbeEvery  = 16
)

// forceBatch is one group-commit round: the leader's collection state and
// the channel its followers wait on.
type forceBatch struct {
	// requests counts the callers riding this batch, the leader included.
	requests int
	// full is closed (once) when every registered committer has joined,
	// letting the leader cut its collection window short.
	full       chan struct{}
	fullClosed bool
	// done is closed after the leader's device write; err carries its
	// outcome to the followers.
	done chan struct{}
	err  error
}

// Open creates a manager on the given log device.  If the device contains
// an initialised control block, the existing log is preserved and the
// manager resumes appending after its durable end; otherwise a fresh log is
// initialised.
func Open(dev device.Dev) (*Manager, error) {
	m := &Manager{dev: dev}
	ctrl := make([]byte, device.BlockSize)
	if err := dev.ReadAt(0, ctrl); err != nil {
		return nil, fmt.Errorf("wal: reading control block: %w", err)
	}
	if binary.LittleEndian.Uint32(ctrl[0:]) == controlMagic {
		m.lastCheckpoint = page.LSN(binary.LittleEndian.Uint64(ctrl[4:]))
		m.base = page.LSN(binary.LittleEndian.Uint64(ctrl[20:]))
		// The control block is only rewritten at checkpoints (real systems
		// do not touch their control file on every commit), so the durable
		// end of the log is found by scanning forward from the last known
		// record boundary until the records stop decoding.
		scanFrom := m.lastCheckpoint
		if scanFrom < m.base {
			scanFrom = m.base
		}
		m.durable = page.LSN(binary.LittleEndian.Uint64(ctrl[12:]))
		if m.durable < scanFrom {
			m.durable = scanFrom
		}
		end, err := m.scanDurableEnd(scanFrom)
		if err != nil {
			return nil, err
		}
		m.durable = end
		m.next = end
		if err := m.loadPartial(); err != nil {
			return nil, err
		}
		return m, nil
	}
	// Fresh log.
	if err := m.writeControl(); err != nil {
		return nil, err
	}
	return m, nil
}

// scanDurableEnd walks the log from a known record boundary and returns the
// LSN just past the last intact record.
func (m *Manager) scanDurableEnd(from page.LSN) (page.LSN, error) {
	end := from
	startBlk := int64(m.off(from)/device.BlockSize) + controlBlocks
	nextBlk := startBlk
	skip := int(m.off(from) % device.BlockSize)
	var stream []byte
	buf := make([]byte, device.BlockSize)

	readMore := func() (bool, error) {
		if nextBlk >= m.dev.NumBlocks() {
			return false, nil
		}
		if err := m.dev.ReadAt(nextBlk, buf); err != nil {
			return false, fmt.Errorf("wal: scanning for log end: %w", err)
		}
		stream = append(stream, buf...)
		nextBlk++
		return true, nil
	}

	for {
		// A record needs at least its 4-byte length field; the length field
		// being zero marks the zero-filled tail of the log.
		for len(stream)-skip < 4 {
			ok, err := readMore()
			if err != nil {
				return 0, err
			}
			if !ok {
				return end, nil
			}
		}
		length := binary.LittleEndian.Uint32(stream[skip:])
		if length == 0 {
			return end, nil
		}
		total := 4 + int(length)
		for len(stream)-skip < total {
			ok, err := readMore()
			if err != nil {
				return 0, err
			}
			if !ok {
				// The record claims more bytes than the device holds: it was
				// never completely written.
				return end, nil
			}
		}
		if _, consumed, err := decodeRecord(stream[skip:]); err == nil {
			skip += consumed
			end += page.LSN(consumed)
			continue
		}
		// Corrupt record (torn write at the crash): the log ends before it.
		return end, nil
	}
}

// off converts an LSN into a byte offset within the log data region.
func (m *Manager) off(lsn page.LSN) uint64 { return uint64(lsn - m.base) }

// SetStart raises the LSN of the first log byte of a freshly initialised,
// still empty log.  It is used when the database pages already carry LSNs
// from a previous log incarnation: starting above their high-water mark
// keeps LSN comparisons (redo checks, flash-cache version checks)
// meaningful.  It fails once anything has been appended.
func (m *Manager) SetStart(lsn page.LSN) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.next != m.base || m.durable != m.base || len(m.pending) > 0 {
		return fmt.Errorf("wal: SetStart on a non-empty log (next %d, base %d)", m.next, m.base)
	}
	if lsn < m.base {
		return nil
	}
	m.base = lsn
	m.next = lsn
	m.durable = lsn
	return m.writeControl()
}

// loadPartial reads the partially filled last durable block so appends can
// rewrite it.
func (m *Manager) loadPartial() error {
	rem := int(m.off(m.durable) % device.BlockSize)
	m.partial = nil
	if rem == 0 {
		return nil
	}
	blk := int64(m.off(m.durable)/device.BlockSize) + controlBlocks
	buf := make([]byte, device.BlockSize)
	if err := m.dev.ReadAt(blk, buf); err != nil {
		return fmt.Errorf("wal: reading partial tail block: %w", err)
	}
	m.partial = buf[:rem]
	return nil
}

func (m *Manager) writeControl() error {
	ctrl := make([]byte, device.BlockSize)
	binary.LittleEndian.PutUint32(ctrl[0:], controlMagic)
	binary.LittleEndian.PutUint64(ctrl[4:], uint64(m.lastCheckpoint))
	binary.LittleEndian.PutUint64(ctrl[12:], uint64(m.durable))
	binary.LittleEndian.PutUint64(ctrl[20:], uint64(m.base))
	if err := m.dev.WriteAt(0, ctrl); err != nil {
		return err
	}
	return device.Sync(m.dev)
}

// Append adds a record to the log tail and returns its LSN.  The record is
// not durable until Force is called with an LSN past it.
func (m *Manager) Append(r *Record) (page.LSN, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r.LSN = m.next
	m.pending = r.encode(m.pending)
	m.next += page.LSN(r.encodedSize())
	return r.LSN, nil
}

// Next returns the LSN that will be assigned to the next appended record.
func (m *Manager) Next() page.LSN {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.next
}

// Durable returns the LSN up to which the log is persistent.
func (m *Manager) Durable() page.LSN {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.durable
}

// Forces returns the number of Force calls that performed device I/O.
func (m *Manager) Forces() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.forces
}

// SetGroupCommitWindow sets the leader's collection window for group
// commit.  Zero (the default) disables batching: every Force that finds
// the log short of its LSN writes immediately.  The engine enables a small
// window under the multi-writer scheduler, where concurrent committers can
// actually fill a batch.
func (m *Manager) SetGroupCommitWindow(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d < 0 {
		d = 0
	}
	m.gcWindow = d
}

// AddCommitter adjusts the number of registered committers (transactions
// currently able to request a commit force).  The leader of a group-commit
// batch stops collecting early once every registered committer has joined,
// so single-writer phases pay no window latency.
func (m *Manager) AddCommitter(delta int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.committers += delta
	if m.committers < 0 {
		m.committers = 0
	}
	m.checkBatchFullLocked()
}

// SetCommitters sets a static expected-committer count that overrides the
// dynamic AddCommitter tally while non-zero.  Multi-terminal drivers set
// it to their terminal count for the duration of a run: the first commit
// force then opens a collection window even before a second committer has
// physically arrived, which is what makes batches fill on machines where
// goroutines rarely overlap (GOMAXPROCS=1).  Set it back to zero when the
// run ends.
func (m *Manager) SetCommitters(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 0 {
		n = 0
	}
	m.committersHint = n
	// A fresh expectation invalidates any stale-solo verdict.
	m.gcSolo = 0
	m.checkBatchFullLocked()
}

// CommittersHint returns the static expected-committer count (zero when
// unset).  Callers that set a temporary hint restore the previous value.
func (m *Manager) CommittersHint() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.committersHint
}

// effectiveCommittersLocked returns the committer count batching decisions
// use: the static hint when set, the dynamic tally otherwise.
func (m *Manager) effectiveCommittersLocked() int {
	if m.committersHint > 0 {
		return m.committersHint
	}
	return m.committers
}

// checkBatchFullLocked completes the collecting batch early when every
// expected committer has joined it.
func (m *Manager) checkBatchFullLocked() {
	n := m.effectiveCommittersLocked()
	if b := m.batch; b != nil && !b.fullClosed && n > 0 && b.requests >= n {
		b.fullClosed = true
		close(b.full)
	}
}

// GroupCommitStats returns the batching counters of the group-commit
// protocol.
func (m *Manager) GroupCommitStats() metrics.GroupCommitStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return metrics.GroupCommitStats{
		Requests:    m.gcRequests,
		Forces:      m.forces,
		Piggybacked: m.gcPiggybacked,
	}
}

// Force makes the log durable at least up to lsn.  It is a no-op when the
// log is already durable past lsn.  Concurrent callers are batched by a
// leader/follower protocol: one caller performs a device write covering
// the maximum requested LSN, the others return once the log is durable
// past their own LSN.
func (m *Manager) Force(lsn page.LSN) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.forceLocked(lsn)
}

// ForceAll makes the entire log tail durable.
func (m *Manager) ForceAll() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.forceLocked(m.next)
}

// forceLocked implements Force.  m.mu is held on entry and return; it is
// released while the caller sleeps on a batch and while a leader sits in
// its collection window (appends proceed in that gap — that is what fills
// the batch), but never during the device write itself.
func (m *Manager) forceLocked(lsn page.LSN) error {
	if lsn > m.next {
		lsn = m.next
	}
	if lsn <= m.durable {
		return nil
	}
	m.gcRequests++
	for {
		if lsn <= m.durable {
			// Another caller's write covered this request.
			m.gcPiggybacked++
			return nil
		}
		if b := m.batch; b != nil {
			// A leader is collecting: join its batch and wait.
			b.requests++
			m.checkBatchFullLocked()
			m.mu.Unlock()
			<-b.done
			m.mu.Lock()
			if b.err != nil {
				return b.err
			}
			continue
		}
		if m.gcWindow > 0 && m.effectiveCommittersLocked() > 1 && m.shouldCollectLocked() {
			// Become the leader: collect followers for up to gcWindow,
			// or until every registered committer has joined.
			b := &forceBatch{requests: 1, full: make(chan struct{}), done: make(chan struct{})}
			m.batch = b
			timer := time.NewTimer(m.gcWindow)
			m.mu.Unlock()
			select {
			case <-b.full:
			case <-timer.C:
			}
			timer.Stop()
			m.mu.Lock()
			err := m.writeTailLocked()
			m.batch = nil
			if b.requests > 1 {
				m.gcSolo = 0
			} else {
				m.gcSolo++
			}
			b.err = err
			close(b.done)
			if err != nil {
				return err
			}
			// writeTailLocked forced everything appended so far, which
			// includes lsn (it was <= next on entry).
			return nil
		}
		// No batching possible (no window, no concurrent committers, or
		// a solo streak proved the hint stale): write immediately.  Only
		// forces that could actually have collected — at least one
		// committer registered — advance the solo streak; lifecycle
		// forces (checkpoint, close) run with transactions fenced out
		// and say nothing about the hint's staleness.
		if m.gcWindow > 0 && m.committers >= 1 && m.effectiveCommittersLocked() > 1 {
			m.gcSolo++
		}
		return m.writeTailLocked()
	}
}

// shouldCollectLocked decides whether a would-be leader pays the
// collection window: never when no committer is even registered (the
// force comes from a lifecycle path — checkpoint, close — that runs with
// transactions fenced out, so nobody can join); always while companions
// have been showing up; and periodically as a probe once a solo streak
// suggests the committer hint is stale.  Genuine concurrency (dynamic
// tally above one) always collects.
func (m *Manager) shouldCollectLocked() bool {
	if m.committers == 0 {
		return false
	}
	if m.committers > 1 {
		return true
	}
	if m.gcSolo < soloStreakLimit {
		return true
	}
	return m.gcSolo%soloProbeEvery == soloProbeEvery-1
}

// writeTailLocked writes the whole pending tail to the device, advancing
// durable to the pre-write value of next.  m.mu is held throughout.
func (m *Manager) writeTailLocked() error {
	if len(m.pending) == 0 {
		return nil
	}
	// Flush the whole pending tail: records are appended as units, so
	// flushing to m.next always lands on a record boundary, and a larger
	// sequential write costs essentially the same as a partial one.
	n := len(m.pending)
	data := append(append([]byte(nil), m.partial...), m.pending[:n]...)
	startBlk := int64(m.off(m.durable-page.LSN(len(m.partial)))/device.BlockSize) + controlBlocks
	nBlocks := (len(data) + device.BlockSize - 1) / device.BlockSize
	pages := make([][]byte, nBlocks)
	for i := 0; i < nBlocks; i++ {
		blkData := make([]byte, device.BlockSize)
		end := (i + 1) * device.BlockSize
		if end > len(data) {
			end = len(data)
		}
		copy(blkData, data[i*device.BlockSize:end])
		pages[i] = blkData
	}
	if startBlk+int64(nBlocks) > m.dev.NumBlocks() {
		return fmt.Errorf("wal: log device full (%d blocks)", m.dev.NumBlocks())
	}
	if err := m.dev.WriteRun(startBlk, pages); err != nil {
		return fmt.Errorf("wal: flushing log: %w", err)
	}
	// The durability barrier comes before durable advances: on file-backed
	// devices Force must not return (and commits must not be acknowledged)
	// until the log bytes are fsynced.  Simulated devices make this a
	// no-op.
	if err := device.Sync(m.dev); err != nil {
		return fmt.Errorf("wal: syncing log: %w", err)
	}
	m.durable += page.LSN(n)
	m.pending = append([]byte(nil), m.pending[n:]...)
	rem := int(m.off(m.durable) % device.BlockSize)
	if rem == 0 {
		m.partial = nil
	} else {
		last := pages[nBlocks-1]
		m.partial = append([]byte(nil), last[:rem]...)
	}
	m.forces++
	return nil
}

// LogCheckpointBegin appends a checkpoint-begin record and returns its LSN.
func (m *Manager) LogCheckpointBegin() (page.LSN, error) {
	return m.Append(&Record{Type: TypeCheckpointBegin})
}

// LogCheckpointEnd appends a checkpoint-end record referring to beginLSN,
// forces the log, and durably records beginLSN as the most recent completed
// checkpoint in the control block.
func (m *Manager) LogCheckpointEnd(beginLSN page.LSN) error {
	if _, err := m.Append(&Record{Type: TypeCheckpointEnd, After: EncodeLSN(beginLSN)}); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.forceLocked(m.next); err != nil {
		return err
	}
	m.lastCheckpoint = beginLSN
	return m.writeControl()
}

// LastCheckpoint returns the LSN of the begin record of the most recent
// completed checkpoint, or 0 when no checkpoint has completed.
func (m *Manager) LastCheckpoint() page.LSN {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastCheckpoint
}

// Crash simulates a process failure: all non-durable log records are lost.
// The manager must not be used afterwards; reopen the log with Open.
func (m *Manager) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pending = nil
	m.partial = nil
	m.next = m.durable
}

// Iterate replays durable log records with LSN >= from, in order.  The
// callback receives each decoded record; iteration stops at the durable end
// of the log or when the callback returns an error.
func (m *Manager) Iterate(from page.LSN, fn func(*Record) error) error {
	m.mu.Lock()
	durable := m.durable
	m.mu.Unlock()
	if from < m.base {
		from = m.base
	}
	if from >= durable {
		return nil
	}

	startBlk := int64(m.off(from)/device.BlockSize) + controlBlocks
	endBlk := int64((m.off(durable)+device.BlockSize-1)/device.BlockSize) + controlBlocks
	// Read the durable region sequentially in one run (recovery reads the
	// log front to back, as a real system would).
	var stream []byte
	n := int(endBlk - startBlk)
	err := m.dev.ReadRun(startBlk, n, func(i int, p []byte) error {
		stream = append(stream, p...)
		return nil
	})
	if err != nil {
		return fmt.Errorf("wal: reading log: %w", err)
	}
	// Clip to the durable byte range.
	skip := int(m.off(from) % device.BlockSize)
	limit := int(durable - from)
	if skip >= len(stream) {
		return nil
	}
	stream = stream[skip:]
	if limit < len(stream) {
		stream = stream[:limit]
	}

	offset := from
	for len(stream) > 0 {
		rec, consumed, err := decodeRecord(stream)
		if errors.Is(err, ErrTruncated) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("wal: at LSN %d: %w", offset, err)
		}
		rec.LSN = offset
		if err := fn(rec); err != nil {
			return err
		}
		stream = stream[consumed:]
		offset += page.LSN(consumed)
	}
	return nil
}
