package wal

import (
	"runtime"
	"time"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
)

// The syncer (pipeline stage 2): a dedicated goroutine that owns all log
// device I/O.  Force callers park on a durable-LSN waitlist; the syncer
// coalesces the parked requests — applying the group-commit collection
// window and the stale-hint solo heuristic exactly as the compat front end
// does — then performs one block write covering the high-water mark and
// one durability barrier, and wakes every waiter at or below the new
// durable LSN.  fsync therefore never runs under any append-path lock.

// force implements Force/ForceAll for the pipeline front end.
func (p *pipeline) force(lsn page.LSN) error {
	m := p.m
	if n := p.next(); lsn > n {
		lsn = n
	}
	if lsn <= m.Durable() {
		return nil
	}
	if p.stopped.Load() {
		return errClosed
	}
	m.gcRequests.Add(1)
	w := waiter{lsn: lsn, ch: make(chan error, 1)}
	p.sy.Lock()
	p.sy.waiters = append(p.sy.waiters, w)
	p.sy.Unlock()
	m.durableWaits.Add(1)
	p.kick()
	return <-w.ch
}

// takeWaiters drains the waitlist.
func (p *pipeline) takeWaiters() []waiter {
	p.sy.Lock()
	ws := p.sy.waiters
	p.sy.waiters = nil
	p.sy.Unlock()
	return ws
}

// stop shuts the syncer down and fails anything still parked.
func (p *pipeline) stop() {
	p.stopped.Store(true)
	close(p.quitCh)
	<-p.doneCh
	// A force that raced stop() may have enqueued after the syncer's
	// final drain.
	p.failWaiters(p.takeWaiters(), errClosed)
}

func (p *pipeline) failWaiters(ws []waiter, err error) {
	for _, w := range ws {
		w.ch <- err
	}
}

func (p *pipeline) syncerLoop() {
	defer close(p.doneCh)
	for {
		select {
		case <-p.quitCh:
			p.failWaiters(p.takeWaiters(), errClosed)
			return
		case <-p.kickCh:
		}
		for {
			ws := p.takeWaiters()
			wanted := p.flushWanted.Swap(false)
			if len(ws) == 0 && !wanted {
				break
			}
			if len(ws) > 0 {
				ws = p.collect(ws)
			}
			p.runRound(ws)
		}
	}
}

// collect applies the group-commit collection window: with a window set
// and more than one expected committer, the round waits — up to the
// window — for the remaining committers to park, so one barrier covers
// them all.  The solo-streak heuristic from the compat front end decides
// when a stale hint should stop the waiting.
func (p *pipeline) collect(ws []waiter) []waiter {
	m := p.m
	window := time.Duration(m.gcWindowNS.Load())
	eff := m.effectiveCommitters()
	if window <= 0 || eff <= 1 || !m.shouldCollectSolo(int(p.gcSolo.Load())) {
		return ws
	}
	timer := time.NewTimer(window)
	defer timer.Stop()
	for len(ws) < eff {
		select {
		case <-timer.C:
			return ws
		case <-p.quitCh:
			return ws
		case <-p.kickCh:
			ws = append(ws, p.takeWaiters()...)
			// AddCommitter/SetCommitters kick too: re-read the target.
			if eff = m.effectiveCommitters(); eff <= 1 {
				return ws
			}
		}
	}
	return ws
}

// runRound performs one flush round: wait for the copies below the target
// to land, write the ring delta to the device, issue the barrier, wake the
// waiters.  Write errors latch flushErr (the ring can no longer drain);
// barrier errors are returned to this round's waiters and leave durable
// unmoved, so a later round can retry.
func (p *pipeline) runRound(ws []waiter) {
	m := p.m

	// Requests already covered by a previous round ride for free.
	durable := m.Durable()
	remaining := ws[:0]
	for _, w := range ws {
		if w.lsn <= durable {
			w.ch <- nil
			m.gcPiggybacked.Add(1)
		} else {
			remaining = append(remaining, w)
		}
	}

	// Stage 2a: wait for the copies this round must cover.  The target is
	// the maximum requested LSN; the flush itself extends to the current
	// high-water mark (covering it costs nothing extra).
	p.advanceHWM()
	if len(remaining) > 0 {
		target := remaining[0].lsn
		for _, w := range remaining[1:] {
			if w.lsn > target {
				target = w.lsn
			}
		}
		if targetOff := m.off(target); p.hwmOff < targetOff {
			m.copyWaits.Add(1)
			start := time.Now()
			for p.hwmOff < targetOff {
				runtime.Gosched()
				p.advanceHWM()
			}
			m.copyWaitNS.Add(int64(time.Since(start)))
		}
	}

	// Stage 2b: write the ring delta [flushed, hwm).
	didIO := false
	hwm := p.hwmOff
	if flushed := p.flushedOff.Load(); hwm > flushed {
		if err := p.flushTo(flushed, hwm); err != nil {
			p.flushErr.CompareAndSwap(nil, &errBox{err: err})
			p.failWaiters(remaining, err)
			return
		}
		didIO = true
	}
	if len(remaining) == 0 {
		return // ring-drain round: no barrier needed, nothing waits
	}

	// Stage 2c: the durability barrier, never under any lock.
	if flushed := p.flushedOff.Load(); uint64(m.Durable()-m.base) < flushed {
		if err := m.syncDevice(); err != nil {
			// Durable stays put; the flushed-but-unsynced bytes are
			// retried by the next round's barrier.
			p.failWaiters(remaining, err)
			return
		}
		m.durableA.Store(uint64(m.base) + flushed)
		didIO = true
	}
	if didIO {
		m.forcesA.Add(1)
		m.gcPiggybacked.Add(int64(len(remaining) - 1))
	}
	for _, w := range remaining {
		w.ch <- nil
	}

	// Solo-streak accounting, mirroring the compat front end: a round
	// that batched resets the streak; a lone committer that could have
	// batched extends it.
	window := time.Duration(m.gcWindowNS.Load())
	if len(remaining) > 1 {
		p.gcSolo.Store(0)
	} else if window > 0 && m.dynCommitters() >= 1 && m.effectiveCommitters() > 1 {
		p.gcSolo.Add(1)
	}
}

// flushTo writes ring bytes [flushed, hwm) to the device as whole blocks,
// rewriting the partial tail block (staged through the torn-tail slot on
// devices with a durability barrier) and carrying the new partial tail
// forward.  Syncer-only.
func (p *pipeline) flushTo(flushed, hwm uint64) error {
	m := p.m
	data := make([]byte, 0, len(p.partial)+int(hwm-flushed))
	data = append(data, p.partial...)
	lo := flushed & p.ringMask
	hi := hwm & p.ringMask
	if n := hwm - flushed; lo+n <= p.ringBytes {
		data = append(data, p.ring[lo:lo+n]...)
	} else {
		data = append(data, p.ring[lo:]...)
		data = append(data, p.ring[:hi]...)
	}

	startBlk := int64(flushed/device.BlockSize) + controlBlocks
	nBlocks := (len(data) + device.BlockSize - 1) / device.BlockSize
	pages := make([][]byte, nBlocks)
	for i := 0; i < nBlocks; i++ {
		blk := make([]byte, device.BlockSize)
		end := (i + 1) * device.BlockSize
		if end > len(data) {
			end = len(data)
		}
		copy(blk, data[i*device.BlockSize:end])
		pages[i] = blk
	}
	if err := m.writeBlocks(startBlk, pages, len(p.partial) > 0); err != nil {
		return err
	}
	if rem := int(hwm % device.BlockSize); rem == 0 {
		p.partial = nil
	} else {
		p.partial = append(p.partial[:0], pages[nBlocks-1][:rem]...)
	}
	// Publishing the new flushed offset releases the ring space to
	// appenders (their admission load pairs with this store).
	p.flushedOff.Store(hwm)
	return nil
}
