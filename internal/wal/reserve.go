package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/face/internal/page"
)

// Lock-free log-space reservation (pipeline stage 1).
//
// The log buffer is a contiguous ring.  A single packed position word holds
// {reservation index : 24 bits | byte offset : 40 bits}; Append reserves
// space with one CAS that bumps both fields, copies the encoded record into
// the ring with no lock held, then publishes completion into a slot ring
// tagged with the reservation's generation.  The syncer consumes slots in
// reservation order to advance the high-water mark — the byte offset below
// which every copy has landed — which replaces the mutex-guarded tail.

const (
	// The position word gives 40 bits to the byte offset (1 TiB of log
	// appended through one manager instance) and 24 bits to the
	// reservation index (used modulo 2^24 to tag publication slots).
	posOffBits = 40
	posOffMask = (uint64(1) << posOffBits) - 1
	posIdxMask = (uint64(1) << 24) - 1
)

// errClosed is returned by operations on a closed or crashed manager.
var errClosed = errors.New("wal: manager closed")

// waiter is one parked Force call: the caller blocks on ch until the log
// is durable past lsn (nil) or the flush fails (the error).
type waiter struct {
	lsn page.LSN
	ch  chan error
}

// errBox wraps an error for atomic.Pointer publication.
type errBox struct{ err error }

// pipeline is the lock-free front end: reservation ring + publication
// slots + the syncer goroutine's state.
type pipeline struct {
	m *Manager

	ring      []byte
	ringBytes uint64 // power of two
	ringMask  uint64

	// pos is the packed reservation word (index | offset).
	pos atomic.Uint64

	// slots publish copy completion: slot[F % nSlots] is set to
	// gen(F)<<40 | endOffset when reservation F's bytes have landed,
	// where gen(F) = (F / nSlots) + 1 truncated to 24 bits.  nSlots
	// strictly exceeds the maximum number of in-flight reservations
	// (ringBytes / minimum record size), so a generation tag can never
	// be reused while its slot is unconsumed.
	slots    []atomic.Uint64
	slotMask uint64
	slotLog2 uint

	// consumed mirrors the syncer's consumed-reservation count so
	// appenders can recover their full reservation index from its low
	// 24 bits (the in-flight window is far smaller than 2^24).
	consumed atomic.Uint64

	// flushedOff is the unwrapped byte offset written to the device.
	// The syncer stores it after a successful write; appenders load it
	// to bound ring reuse (a reservation must keep [flushedOff, end)
	// within ringBytes).
	flushedOff atomic.Uint64

	// flushErr latches the first device-write failure (e.g. log full).
	// Appends stalled on a ring that can no longer drain fail with it.
	flushErr atomic.Pointer[errBox]

	// flushWanted asks the syncer for a write-only round (ring full).
	flushWanted atomic.Bool

	// gcSolo is the solo-force streak for the stale-hint heuristic
	// (atomic: SetCommitters resets it from client goroutines).
	gcSolo atomic.Int32

	stopped atomic.Bool

	// sy guards the durable-LSN waitlist — the only lock on the force
	// path, held just to enqueue (never across I/O or appends).
	sy struct {
		sync.Mutex
		waiters []waiter
	}
	kickCh chan struct{}
	quitCh chan struct{}
	doneCh chan struct{}

	// Syncer-owned (single goroutine, no locking): the next reservation
	// index to consume, the published high-water mark, and the bytes of
	// the last flushed block preceding flushedOff.
	consumedIdx uint64
	hwmOff      uint64
	partial     []byte
}

// encPool recycles record-encoding scratch buffers.
var encPool = sync.Pool{New: func() any { return new([]byte) }}

func nextPow2(v uint64) uint64 {
	n := uint64(1)
	for n < v {
		n <<= 1
	}
	return n
}

func newPipeline(m *Manager, segments, segmentBytes int) (*pipeline, error) {
	ringBytes := nextPow2(uint64(segments) * uint64(segmentBytes))
	if ringBytes < 4096 {
		ringBytes = 4096
	}
	// One slot per 32 ring bytes strictly exceeds the in-flight bound
	// (minimum record size is recordHeaderSize+4 bytes).
	nSlots := nextPow2(ringBytes / 32)
	if nSlots < 64 {
		nSlots = 64
	}
	if nSlots > posIdxMask/2 {
		return nil, fmt.Errorf("wal: ring of %d bytes too large", ringBytes)
	}
	p := &pipeline{
		m:         m,
		ring:      make([]byte, ringBytes),
		ringBytes: ringBytes,
		ringMask:  ringBytes - 1,
		slots:     make([]atomic.Uint64, nSlots),
		slotMask:  nSlots - 1,
		kickCh:    make(chan struct{}, 1),
		quitCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
	}
	for nSlots > 1 {
		nSlots >>= 1
		p.slotLog2++
	}
	// The manager recovered the durable tail before the pipeline starts:
	// adopt it as the flushed position and take over the partial block.
	off := m.off(m.Durable())
	p.pos.Store(off & posOffMask)
	p.flushedOff.Store(off)
	p.hwmOff = off
	p.partial = m.partial
	m.partial = nil
	return p, nil
}

// empty reports whether anything has ever been reserved.
func (p *pipeline) empty() bool { return p.pos.Load()&posOffMask == p.m.off(p.m.Durable()) }

// next returns the next LSN to be assigned.
func (p *pipeline) next() page.LSN {
	return p.m.base + page.LSN(p.pos.Load()&posOffMask)
}

// append reserves log space, copies the record into the ring, and
// publishes completion.  No mutex is acquired anywhere on this path.
func (p *pipeline) append(r *Record) (page.LSN, error) {
	m := p.m
	size := uint64(r.encodedSize())
	if size > p.ringBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte log buffer", size, p.ringBytes)
	}

	// Stage 1a: reserve [off, end) and reservation index idx with one CAS.
	var off, end, idx24 uint64
	stalled := false
	for {
		cur := p.pos.Load()
		off = cur & posOffMask
		end = off + size
		if end > posOffMask {
			return 0, fmt.Errorf("wal: log address space exhausted")
		}
		// Admission: a successful reservation must fit in the ring
		// alongside everything not yet flushed, so every admitted copy
		// can complete without waiting on another appender.
		if end-p.flushedOff.Load() > p.ringBytes {
			if b := p.flushErr.Load(); b != nil {
				return 0, b.err
			}
			if p.stopped.Load() {
				return 0, errClosed
			}
			if !stalled {
				stalled = true
				m.reserveStalls.Add(1)
			}
			p.kickFlush()
			time.Sleep(20 * time.Microsecond)
			continue
		}
		// Bump index (bits 40+) and offset (low bits) together; offsets
		// cannot carry into the index field (end <= posOffMask).
		if p.pos.CompareAndSwap(cur, cur+(uint64(1)<<posOffBits)+size) {
			idx24 = cur >> posOffBits
			break
		}
	}

	// Stage 1b: encode and copy into the ring — in parallel with other
	// appenders, no lock held.
	bufp := encPool.Get().(*[]byte)
	enc := r.encode((*bufp)[:0])
	pos := off & p.ringMask
	n := copy(p.ring[pos:], enc)
	if n < len(enc) {
		copy(p.ring, enc[n:])
	}
	*bufp = enc[:0]
	encPool.Put(bufp)

	// Stage 1c: publish completion.  Recover the full reservation index
	// from its 24-bit tag and the syncer's consumed count (always at most
	// 2^24 behind), then tag the slot with this index's generation.
	c := p.consumed.Load()
	full := c + ((idx24 - c) & posIdxMask)
	gen := ((full >> p.slotLog2) + 1) & posIdxMask
	p.slots[full&p.slotMask].Store(gen<<posOffBits | end&posOffMask)

	r.LSN = m.base + page.LSN(off)
	m.appends.Add(1)
	return r.LSN, nil
}

// advanceHWM consumes publication slots in reservation order, advancing
// the high-water mark.  Syncer-only.
func (p *pipeline) advanceHWM() {
	for {
		i := p.consumedIdx
		want := ((i >> p.slotLog2) + 1) & posIdxMask
		v := p.slots[i&p.slotMask].Load()
		if v>>posOffBits != want {
			return
		}
		p.hwmOff = v & posOffMask
		p.consumedIdx = i + 1
		p.consumed.Store(i + 1)
	}
}

// kick nudges the syncer; a buffered token makes wakeups lossless without
// blocking the committer.
func (p *pipeline) kick() {
	select {
	case p.kickCh <- struct{}{}:
	default:
	}
}

// kickFlush asks for a write-only round to recycle ring space.
func (p *pipeline) kickFlush() {
	p.flushWanted.Store(true)
	p.kick()
}

func (p *pipeline) resetSolo() { p.gcSolo.Store(0) }
