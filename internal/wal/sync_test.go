package wal

// Sync-ordering tests: on a device with a durability barrier (file-backed
// devices), Force must not return before the barrier, and a failed barrier
// must not let durable advance.  The tests drive the manager over a
// recording wrapper so they run against the simulated device yet assert
// the exact write/sync interleaving a file-backed device would see.

import (
	"errors"
	"sync"
	"testing"

	"github.com/reprolab/face/internal/device"
)

// syncRecorder wraps a device, records the order of write and sync events,
// and implements device.Syncer with optional fault injection.
type syncRecorder struct {
	device.Dev

	mu      sync.Mutex
	events  []string
	syncErr error
}

func (r *syncRecorder) record(ev string) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func (r *syncRecorder) WriteAt(blk int64, p []byte) error {
	if err := r.Dev.WriteAt(blk, p); err != nil {
		return err
	}
	r.record("write")
	return nil
}

func (r *syncRecorder) WriteRun(blk int64, pages [][]byte) error {
	if err := r.Dev.WriteRun(blk, pages); err != nil {
		return err
	}
	r.record("write")
	return nil
}

func (r *syncRecorder) Sync() error {
	r.mu.Lock()
	err := r.syncErr
	r.mu.Unlock()
	if err != nil {
		return err
	}
	r.record("sync")
	return nil
}

func (r *syncRecorder) reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

func (r *syncRecorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

func TestForceSyncsAfterWrite(t *testing.T) {
	rec := &syncRecorder{Dev: device.New("log", device.ProfileCheetah15K, 1<<12)}
	m, err := Open(rec)
	if err != nil {
		t.Fatal(err)
	}
	rec.reset()

	lsn, err := m.Append(&Record{Type: TypeCommit, TxID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.snapshot(); len(got) != 0 {
		t.Fatalf("Append touched the device: %v", got)
	}
	if err := m.Force(lsn + 1); err != nil {
		t.Fatal(err)
	}
	events := rec.snapshot()
	if len(events) == 0 {
		t.Fatal("Force performed no device I/O")
	}
	// Every write must be followed by a sync before Force returns: the
	// last event is the barrier, and no write may trail it.
	if events[len(events)-1] != "sync" {
		t.Fatalf("Force returned with trailing events %v; the last must be sync", events)
	}
	sawWrite := false
	for _, ev := range events {
		if ev == "write" {
			sawWrite = true
		}
	}
	if !sawWrite {
		t.Fatalf("no write recorded before the sync: %v", events)
	}
	// Already durable: no further I/O.
	rec.reset()
	if err := m.Force(lsn); err != nil {
		t.Fatal(err)
	}
	if got := rec.snapshot(); len(got) != 0 {
		t.Fatalf("redundant Force touched the device: %v", got)
	}
}

func TestForceFailedSyncDoesNotAdvanceDurable(t *testing.T) {
	rec := &syncRecorder{Dev: device.New("log", device.ProfileCheetah15K, 1<<12)}
	m, err := Open(rec)
	if err != nil {
		t.Fatal(err)
	}

	wantErr := errors.New("injected fsync failure")
	rec.mu.Lock()
	rec.syncErr = wantErr
	rec.mu.Unlock()

	durableBefore := m.Durable()
	lsn, err := m.Append(&Record{Type: TypeCommit, TxID: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Force(lsn + 1); !errors.Is(err, wantErr) {
		t.Fatalf("Force with failing sync: %v, want injected error", err)
	}
	if got := m.Durable(); got != durableBefore {
		t.Fatalf("durable advanced to %d despite failed sync (was %d)", got, durableBefore)
	}

	// Once the barrier works again the same records become durable.
	rec.mu.Lock()
	rec.syncErr = nil
	rec.mu.Unlock()
	if err := m.Force(lsn + 1); err != nil {
		t.Fatal(err)
	}
	if got := m.Durable(); got <= durableBefore {
		t.Fatalf("durable did not advance after successful retry: %d", got)
	}
}
