package wal

import (
	"time"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
)

// Mutex-compat front end (Config{Segments: 1}).
//
// This is the pre-pipeline log path, kept as the ablation baseline and as
// the simplest-possible reference implementation: one mutex serializes
// Append and Force, and the leader/follower group-commit protocol batches
// concurrent forces.  It shares the on-device format, the torn-tail
// double-write slot, and the stats counters with the pipeline front end.

// forceBatch is one group-commit round: the leader's collection state and
// the channel its followers wait on.
type forceBatch struct {
	// requests counts the callers riding this batch, the leader included.
	requests int
	// full is closed (once) when every registered committer has joined,
	// letting the leader cut its collection window short.
	full       chan struct{}
	fullClosed bool
	// done is closed after the leader's device write; err carries its
	// outcome to the followers.
	done chan struct{}
	err  error
}

// checkBatchFullLocked completes the collecting batch early when every
// expected committer has joined it.
func (m *Manager) checkBatchFullLocked() {
	n := m.effectiveCommitters()
	if b := m.batch; b != nil && !b.fullClosed && n > 0 && b.requests >= n {
		b.fullClosed = true
		close(b.full)
	}
}

// appendCompat implements Append under the mutex front end.
func (m *Manager) appendCompat(r *Record) (page.LSN, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r.LSN = m.Next()
	m.pending = r.encode(m.pending)
	m.nextA.Store(uint64(r.LSN) + uint64(r.encodedSize()))
	m.appends.Add(1)
	return r.LSN, nil
}

// forceLocked implements Force.  m.mu is held on entry and return; it is
// released while the caller sleeps on a batch and while a leader sits in
// its collection window (appends proceed in that gap — that is what fills
// the batch), but never during the device write itself.
func (m *Manager) forceLocked(lsn page.LSN) error {
	if lsn > m.Next() {
		lsn = m.Next()
	}
	if lsn <= m.Durable() {
		return nil
	}
	m.gcRequests.Add(1)
	gcWindow := time.Duration(m.gcWindowNS.Load())
	for {
		if lsn <= m.Durable() {
			// Another caller's write covered this request.
			m.gcPiggybacked.Add(1)
			return nil
		}
		if b := m.batch; b != nil {
			// A leader is collecting: join its batch and wait.
			b.requests++
			m.checkBatchFullLocked()
			m.mu.Unlock()
			<-b.done
			m.mu.Lock()
			if b.err != nil {
				return b.err
			}
			continue
		}
		if gcWindow > 0 && m.effectiveCommitters() > 1 && m.shouldCollectSolo(m.gcSolo) {
			// Become the leader: collect followers for up to gcWindow,
			// or until every registered committer has joined.
			b := &forceBatch{requests: 1, full: make(chan struct{}), done: make(chan struct{})}
			m.batch = b
			timer := time.NewTimer(gcWindow)
			m.mu.Unlock()
			select {
			case <-b.full:
			case <-timer.C:
			}
			timer.Stop()
			m.mu.Lock()
			//lint:allow facevet/nolockio compat-mode group commit: the elected leader writes the batched tail under the append mutex by documented design
			err := m.writeTailLocked()
			m.batch = nil
			if b.requests > 1 {
				m.gcSolo = 0
			} else {
				m.gcSolo++
			}
			b.err = err
			close(b.done)
			if err != nil {
				return err
			}
			// writeTailLocked forced everything appended so far, which
			// includes lsn (it was <= next on entry).
			return nil
		}
		// No batching possible (no window, no concurrent committers, or
		// a solo streak proved the hint stale): write immediately.  Only
		// forces that could actually have collected — at least one
		// committer registered — advance the solo streak; lifecycle
		// forces (checkpoint, close) run with transactions fenced out
		// and say nothing about the hint's staleness.
		if gcWindow > 0 && m.dynCommitters() >= 1 && m.effectiveCommitters() > 1 {
			m.gcSolo++
		}
		return m.writeTailLocked()
	}
}

// shouldCollectSolo decides whether a would-be leader (or the syncer)
// pays the collection window given the current solo streak: never when no
// committer is even registered (the force comes from a lifecycle path —
// checkpoint, close — that runs with transactions fenced out, so nobody
// can join); always while companions have been showing up; and
// periodically as a probe once a solo streak suggests the committer hint
// is stale.  Genuine concurrency (dynamic tally above one) always
// collects.
func (m *Manager) shouldCollectSolo(solo int) bool {
	dyn := m.dynCommitters()
	if dyn == 0 {
		return false
	}
	if dyn > 1 {
		return true
	}
	if solo < soloStreakLimit {
		return true
	}
	return solo%soloProbeEvery == soloProbeEvery-1
}

// writeTailLocked writes the whole pending tail to the device, advancing
// durable to the pre-write value of next.  m.mu is held throughout.
func (m *Manager) writeTailLocked() error {
	if len(m.pending) == 0 {
		return nil
	}
	// Flush the whole pending tail: records are appended as units, so
	// flushing to m.next always lands on a record boundary, and a larger
	// sequential write costs essentially the same as a partial one.
	n := len(m.pending)
	data := append(append([]byte(nil), m.partial...), m.pending[:n]...)
	startBlk := int64(m.off(m.Durable()-page.LSN(len(m.partial)))/device.BlockSize) + controlBlocks
	nBlocks := (len(data) + device.BlockSize - 1) / device.BlockSize
	pages := make([][]byte, nBlocks)
	for i := 0; i < nBlocks; i++ {
		blkData := make([]byte, device.BlockSize)
		end := (i + 1) * device.BlockSize
		if end > len(data) {
			end = len(data)
		}
		copy(blkData, data[i*device.BlockSize:end])
		pages[i] = blkData
	}
	if err := m.writeBlocks(startBlk, pages, len(m.partial) > 0); err != nil {
		return err
	}
	// The durability barrier comes before durable advances: on file-backed
	// devices Force must not return (and commits must not be acknowledged)
	// until the log bytes are fsynced.  Simulated devices make this a
	// no-op.
	if err := m.syncDevice(); err != nil {
		return err
	}
	m.durableA.Add(uint64(n))
	m.pending = append([]byte(nil), m.pending[n:]...)
	rem := int(m.off(m.Durable()) % device.BlockSize)
	if rem == 0 {
		m.partial = nil
	} else {
		last := pages[nBlocks-1]
		m.partial = append([]byte(nil), last[:rem]...)
	}
	m.forcesA.Add(1)
	return nil
}
