package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/reprolab/face/internal/device"
)

// Torn-tail protection (pipeline stage 3).
//
// The log rewrites its partial tail block in place as records are appended
// to it.  On a device without atomic 4 KiB writes, a host crash during
// that rewrite can tear the block and clip records that were already
// acknowledged as durable.  The fix is a full-page-write-style double-write
// slot in the two blocks at the end of the log device: before the in-place
// rewrite, the new block image is written to the slot and synced; Open
// consults the slot before scanning for the log end and restores the image
// if the in-place copy was torn.  Either the slot write or the in-place
// write is intact at any crash point, and both contain every acknowledged
// byte, so the durable prefix always survives.
//
// The slot lives at the device end — not in the control region — so the
// LSN-to-block mapping of existing logs is unchanged.  It is only active
// (`Manager.protect`) on devices with a real durability barrier
// (device.Syncer); simulated devices model atomic block writes and skip
// the extra staging I/O.

// tornSlotBlocks is the slot size: one metadata block, one data block.
const tornSlotBlocks = 2

// tornMagic identifies a valid slot metadata block.
const tornMagic = 0xFACE7012

// Slot metadata layout (little-endian):
//
//	[0:4)   tornMagic
//	[4:12)  target block number
//	[12:16) CRC32-C of the staged block image
//	[16:20) CRC32-C of bytes [0:16) — a torn slot write invalidates itself
const tornMetaLen = 20

// slotMetaBlk/slotDataBlk locate the slot; valid only when m.protect.
func (m *Manager) slotMetaBlk() int64 { return m.dataBlocks }
func (m *Manager) slotDataBlk() int64 { return m.dataBlocks + 1 }

// writeTornSlot stages the new image of targetBlk in the double-write slot
// and syncs it, so the subsequent in-place rewrite can tear without losing
// acknowledged bytes.
func (m *Manager) writeTornSlot(targetBlk int64, image []byte) error {
	meta := make([]byte, device.BlockSize)
	binary.LittleEndian.PutUint32(meta[0:], tornMagic)
	binary.LittleEndian.PutUint64(meta[4:], uint64(targetBlk))
	binary.LittleEndian.PutUint32(meta[12:], crc32.Checksum(image, crcTable))
	binary.LittleEndian.PutUint32(meta[16:], crc32.Checksum(meta[0:16], crcTable))
	if err := m.dev.WriteRun(m.slotMetaBlk(), [][]byte{meta, image}); err != nil {
		return fmt.Errorf("wal: writing torn-tail slot: %w", err)
	}
	if err := m.syncDevice(); err != nil {
		return fmt.Errorf("wal: syncing torn-tail slot: %w", err)
	}
	m.tornSlotWrites.Add(1)
	return nil
}

// invalidateTornSlot clears the slot so a stale image from a previous log
// incarnation on the same device can never repair a block of this log.
func (m *Manager) invalidateTornSlot() error {
	if err := m.dev.WriteAt(m.slotMetaBlk(), make([]byte, device.BlockSize)); err != nil {
		return fmt.Errorf("wal: clearing torn-tail slot: %w", err)
	}
	return device.Sync(m.dev)
}

// repairTornTail restores the staged tail-block image if the slot holds a
// valid one that differs from the device's current content.  Called at
// Open before the end-of-log scan.  Idempotent: the slot always holds the
// image written by the most recent staged flush of its target block, which
// is at least as new as the last acknowledged durable state of that block,
// so rewriting it is always safe.
func (m *Manager) repairTornTail() error {
	meta := make([]byte, device.BlockSize)
	if err := m.dev.ReadAt(m.slotMetaBlk(), meta); err != nil {
		return fmt.Errorf("wal: reading torn-tail slot: %w", err)
	}
	if binary.LittleEndian.Uint32(meta[0:]) != tornMagic {
		return nil
	}
	if crc32.Checksum(meta[0:16], crcTable) != binary.LittleEndian.Uint32(meta[16:]) {
		return nil // the slot write itself was torn: the in-place copy is intact
	}
	targetBlk := int64(binary.LittleEndian.Uint64(meta[4:]))
	if targetBlk < controlBlocks || targetBlk >= m.dataBlocks {
		return nil
	}
	image := make([]byte, device.BlockSize)
	if err := m.dev.ReadAt(m.slotDataBlk(), image); err != nil {
		return fmt.Errorf("wal: reading torn-tail slot image: %w", err)
	}
	if crc32.Checksum(image, crcTable) != binary.LittleEndian.Uint32(meta[12:]) {
		return nil
	}
	current := make([]byte, device.BlockSize)
	if err := m.dev.ReadAt(targetBlk, current); err != nil {
		return fmt.Errorf("wal: reading torn tail block: %w", err)
	}
	if bytes.Equal(current, image) {
		return nil
	}
	if err := m.dev.WriteAt(targetBlk, image); err != nil {
		return fmt.Errorf("wal: repairing torn tail block: %w", err)
	}
	return device.Sync(m.dev)
}
