// Package wal implements the write-ahead log used by the engine for
// transaction atomicity and durability.
//
// The two recovery principles the paper relies on (Section 4) are enforced
// here: write-ahead logging (a page may only be evicted after its log
// records are durable) and commit-time force-write of the log tail.  The
// log lives on its own device and is written strictly sequentially; the
// log sequence number (LSN) of a record is its byte offset in the log.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/reprolab/face/internal/page"
)

// TxID identifies a transaction.  TxID 0 is reserved for system activity
// (checkpoints, loading) that is not subject to undo.
type TxID uint64

// RecordType enumerates log record kinds.
type RecordType uint8

// Log record types.
const (
	// TypeUpdate records a byte-range change to a page: offset, before
	// image and after image.  It supports both redo and undo.
	TypeUpdate RecordType = iota + 1
	// TypeFullPage records a complete page image (used for page
	// formatting and B-tree structure changes).  Redo-only.
	TypeFullPage
	// TypeCommit marks a transaction as committed.
	TypeCommit
	// TypeAbort marks a transaction as rolled back.
	TypeAbort
	// TypeCheckpointBegin marks the start of a fuzzy checkpoint.
	TypeCheckpointBegin
	// TypeCheckpointEnd marks the end of a checkpoint; its payload is the
	// LSN of the matching TypeCheckpointBegin record.
	TypeCheckpointEnd
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case TypeUpdate:
		return "update"
	case TypeFullPage:
		return "full-page"
	case TypeCommit:
		return "commit"
	case TypeAbort:
		return "abort"
	case TypeCheckpointBegin:
		return "checkpoint-begin"
	case TypeCheckpointEnd:
		return "checkpoint-end"
	default:
		return fmt.Sprintf("record(%d)", uint8(t))
	}
}

// Record is a single log record.  Not every field is meaningful for every
// type; see the type constants.
type Record struct {
	// LSN is assigned by the log manager when the record is appended.
	LSN page.LSN
	// Type is the record kind.
	Type RecordType
	// TxID is the owning transaction (0 for system records).
	TxID TxID
	// PageID is the affected page for update and full-page records.
	PageID page.ID
	// Offset is the byte offset of the change within the page.
	Offset uint16
	// Before and After are the byte-range images for update records.
	// For full-page records, After holds the page image and Before is
	// empty.  For checkpoint-end records, After holds the encoded LSN of
	// the checkpoint-begin record.
	Before []byte
	After  []byte
}

// Errors returned by record encoding and decoding.
var (
	ErrCorrupt   = errors.New("wal: corrupt log record")
	ErrTruncated = errors.New("wal: truncated log")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// record wire format:
//
//	u32 length of everything after this field
//	u32 crc of everything after the crc field
//	u8  type
//	u64 txid
//	u64 pageid
//	u16 offset
//	u32 before length
//	u32 after length
//	... before bytes
//	... after bytes
const recordHeaderSize = 4 + 4 + 1 + 8 + 8 + 2 + 4 + 4

// encodedSize returns the full on-log size of the record in bytes.
func (r *Record) encodedSize() int {
	return recordHeaderSize + len(r.Before) + len(r.After)
}

// encode appends the wire form of r to dst and returns the result.
func (r *Record) encode(dst []byte) []byte {
	body := make([]byte, recordHeaderSize-8+len(r.Before)+len(r.After))
	body[0] = byte(r.Type)
	binary.LittleEndian.PutUint64(body[1:], uint64(r.TxID))
	binary.LittleEndian.PutUint64(body[9:], uint64(r.PageID))
	binary.LittleEndian.PutUint16(body[17:], r.Offset)
	binary.LittleEndian.PutUint32(body[19:], uint32(len(r.Before)))
	binary.LittleEndian.PutUint32(body[23:], uint32(len(r.After)))
	copy(body[27:], r.Before)
	copy(body[27+len(r.Before):], r.After)

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)+4))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, crcTable))
	dst = append(dst, hdr[:]...)
	dst = append(dst, body...)
	return dst
}

// decodeRecord parses one record from buf.  It returns the record and the
// number of bytes consumed.  A zero length field signals the end of the
// log (zero-filled tail); ErrTruncated is returned in that case.
func decodeRecord(buf []byte) (*Record, int, error) {
	if len(buf) < 8 {
		return nil, 0, ErrTruncated
	}
	length := binary.LittleEndian.Uint32(buf[0:])
	if length == 0 {
		return nil, 0, ErrTruncated
	}
	total := 4 + int(length)
	if total > len(buf) {
		return nil, 0, ErrTruncated
	}
	crc := binary.LittleEndian.Uint32(buf[4:])
	body := buf[8:total]
	if crc32.Checksum(body, crcTable) != crc {
		return nil, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	if len(body) < recordHeaderSize-8 {
		return nil, 0, fmt.Errorf("%w: short body", ErrCorrupt)
	}
	r := &Record{
		Type:   RecordType(body[0]),
		TxID:   TxID(binary.LittleEndian.Uint64(body[1:])),
		PageID: page.ID(binary.LittleEndian.Uint64(body[9:])),
		Offset: binary.LittleEndian.Uint16(body[17:]),
	}
	beforeLen := int(binary.LittleEndian.Uint32(body[19:]))
	afterLen := int(binary.LittleEndian.Uint32(body[23:]))
	if recordHeaderSize-8+beforeLen+afterLen != len(body) {
		return nil, 0, fmt.Errorf("%w: length mismatch", ErrCorrupt)
	}
	if beforeLen > 0 {
		r.Before = append([]byte(nil), body[27:27+beforeLen]...)
	}
	if afterLen > 0 {
		r.After = append([]byte(nil), body[27+beforeLen:27+beforeLen+afterLen]...)
	}
	return r, total, nil
}

// EncodeLSN encodes an LSN as the payload of a checkpoint-end record.
func EncodeLSN(l page.LSN) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(l))
	return b[:]
}

// DecodeLSN decodes an LSN encoded with EncodeLSN.
func DecodeLSN(b []byte) (page.LSN, error) {
	if len(b) < 8 {
		return 0, fmt.Errorf("%w: short LSN payload", ErrCorrupt)
	}
	return page.LSN(binary.LittleEndian.Uint64(b)), nil
}
