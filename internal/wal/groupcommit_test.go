package wal

import (
	"sync"
	"testing"
	"time"

	"github.com/reprolab/face/internal/page"
)

// commitOne appends a commit record for tx and forces the log past it, the
// way the engine's commit path does.
func commitOne(t *testing.T, m *Manager, tx TxID) {
	t.Helper()
	lsn, err := m.Append(&Record{Type: TypeCommit, TxID: tx})
	if err != nil {
		t.Error(err)
		return
	}
	if err := m.Force(lsn + 1); err != nil {
		t.Error(err)
	}
}

// TestGroupCommitBatchesConcurrentForces: N committers that have all
// appended their commit records before any Force starts must share one
// device write.
func TestGroupCommitBatchesConcurrentForces(t *testing.T) {
	m, err := Open(newLogDevice())
	if err != nil {
		t.Fatal(err)
	}
	const committers = 8
	m.SetGroupCommitWindow(5 * time.Millisecond)
	m.AddCommitter(committers)
	defer m.AddCommitter(-committers)

	lsns := make([]page.LSN, committers)
	for i := range lsns {
		lsn, err := m.Append(&Record{Type: TypeCommit, TxID: TxID(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		lsns[i] = lsn
	}
	before := m.Forces()

	var wg sync.WaitGroup
	for _, lsn := range lsns {
		wg.Add(1)
		go func(lsn page.LSN) {
			defer wg.Done()
			if err := m.Force(lsn + 1); err != nil {
				t.Error(err)
			}
		}(lsn)
	}
	wg.Wait()

	writes := m.Forces() - before
	if writes < 1 || writes > 2 {
		t.Fatalf("%d committers performed %d device writes, want 1 (2 tolerated)", committers, writes)
	}
	gc := m.GroupCommitStats()
	if gc.Requests != committers {
		t.Fatalf("Requests = %d, want %d", gc.Requests, committers)
	}
	if gc.Piggybacked < committers-int64(writes) {
		t.Fatalf("Piggybacked = %d with %d writes, want >= %d", gc.Piggybacked, writes, committers-int64(writes))
	}
	if m.Durable() < lsns[committers-1]+1 {
		t.Fatal("group commit left the last committer non-durable")
	}
}

// TestGroupCommitForcesGrowSublinearly runs the same committer count
// sequentially (fan-in 1) and concurrently (leader/follower), and requires
// the concurrent run to need strictly fewer device writes per committer.
func TestGroupCommitForcesGrowSublinearly(t *testing.T) {
	const committers = 8
	const rounds = 4

	run := func(concurrent bool) int64 {
		m, err := Open(newLogDevice())
		if err != nil {
			t.Fatal(err)
		}
		m.SetGroupCommitWindow(5 * time.Millisecond)
		m.AddCommitter(committers)
		defer m.AddCommitter(-committers)
		before := m.Forces()
		for r := 0; r < rounds; r++ {
			if concurrent {
				var wg sync.WaitGroup
				for c := 0; c < committers; c++ {
					wg.Add(1)
					go func(tx TxID) {
						defer wg.Done()
						commitOne(t, m, tx)
					}(TxID(r*committers + c + 1))
				}
				wg.Wait()
			} else {
				for c := 0; c < committers; c++ {
					commitOne(t, m, TxID(r*committers+c+1))
				}
			}
		}
		return m.Forces() - before
	}

	sequential := run(false)
	concurrent := run(true)
	total := int64(committers * rounds)
	if sequential != total {
		t.Fatalf("sequential committers should force once each: forces=%d commits=%d", sequential, total)
	}
	// Every concurrent round must batch at least somewhat; on average the
	// fan-in should comfortably exceed 2.
	if concurrent > total/2 {
		t.Fatalf("concurrent forces=%d for %d commits: fan-in %.2f, want >= 2",
			concurrent, total, float64(total)/float64(concurrent))
	}
}

// TestGroupCommitDisabledByDefault: without a window, Force behaves as
// before — each short-of-durable call writes.
func TestGroupCommitDisabledByDefault(t *testing.T) {
	m, err := Open(newLogDevice())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		commitOne(t, m, TxID(i+1))
	}
	if got := m.Forces(); got != 4 {
		t.Fatalf("Forces = %d, want 4", got)
	}
	gc := m.GroupCommitStats()
	if gc.Requests != 4 || gc.Piggybacked != 0 {
		t.Fatalf("stats = %+v, want 4 unbatched requests", gc)
	}
}

// TestGroupCommitSoloCommitterSkipsWindow: with one registered committer
// the leader must not sit in the collection window.
func TestGroupCommitSoloCommitterSkipsWindow(t *testing.T) {
	m, err := Open(newLogDevice())
	if err != nil {
		t.Fatal(err)
	}
	m.SetGroupCommitWindow(time.Second)
	m.AddCommitter(1)
	defer m.AddCommitter(-1)
	start := time.Now()
	commitOne(t, m, 1)
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("solo commit took %v: leader waited in the window", d)
	}
	if got := m.Forces(); got != 1 {
		t.Fatalf("Forces = %d, want 1", got)
	}
}

// TestGroupCommitEarlyClose: a full batch completes well before the
// window expires.
func TestGroupCommitEarlyClose(t *testing.T) {
	m, err := Open(newLogDevice())
	if err != nil {
		t.Fatal(err)
	}
	const committers = 4
	m.SetGroupCommitWindow(10 * time.Second) // far beyond the test timeout
	m.AddCommitter(committers)
	defer m.AddCommitter(-committers)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(tx TxID) {
			defer wg.Done()
			commitOne(t, m, tx)
		}(TxID(c + 1))
	}
	wg.Wait()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("full batch still waited %v", d)
	}
	if m.Durable() != m.Next() {
		t.Fatal("commits not durable")
	}
}

// TestGroupCommitStaleHintStopsStalling: a lone committer on a manager
// whose hint promises more (e.g. MaxWriters set but one goroutine
// running) must stop paying the collection window after a short solo
// streak, instead of stalling every commit for the full window.
func TestGroupCommitStaleHintStopsStalling(t *testing.T) {
	m, err := Open(newLogDevice())
	if err != nil {
		t.Fatal(err)
	}
	const window = 50 * time.Millisecond
	m.SetGroupCommitWindow(window)
	m.SetCommitters(4) // stale: nobody else will ever join
	defer m.SetCommitters(0)

	const commits = 20
	start := time.Now()
	for i := 0; i < commits; i++ {
		commitOne(t, m, TxID(i+1))
	}
	elapsed := time.Since(start)
	// Only the initial streak and the periodic probes may pay the
	// window: well under half the commits, nowhere near all of them.
	if elapsed > time.Duration(commits)*window/2 {
		t.Fatalf("%d solo commits took %v: stale hint still stalls every commit", commits, elapsed)
	}
	if got := m.Forces(); got != commits {
		t.Fatalf("Forces = %d, want %d", got, commits)
	}
}
