package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
)

// TestWalParallelAppendStormMatchesSerial: N committers appending and
// forcing concurrently (under -race) must produce a log that replays
// record-for-record like a serial run — same records, same LSNs, contiguous
// LSN space, nothing lost or duplicated.
func TestWalParallelAppendStormMatchesSerial(t *testing.T) {
	m, err := Open(newLogDevice())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 200

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tx := TxID(w*perWriter + i + 1)
				payload := []byte(fmt.Sprintf("writer %d record %d", w, i))
				lsn, err := m.Append(&Record{Type: TypeUpdate, TxID: tx, PageID: page.ID(w), Offset: uint16(i), Before: payload, After: payload})
				if err != nil {
					t.Error(err)
					return
				}
				if i%17 == 0 {
					if err := m.Force(lsn + 1); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := m.ForceAll(); err != nil {
		t.Fatal(err)
	}
	if m.Durable() != m.Next() {
		t.Fatalf("Durable %d != Next %d after ForceAll", m.Durable(), m.Next())
	}

	var recs []*Record
	if err := m.Iterate(0, func(r *Record) error {
		cp := *r
		cp.Before = append([]byte(nil), r.Before...)
		cp.After = append([]byte(nil), r.After...)
		recs = append(recs, &cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*perWriter)
	}
	seen := make(map[TxID]bool, len(recs))
	for _, r := range recs {
		if seen[r.TxID] {
			t.Fatalf("record for tx %d replayed twice", r.TxID)
		}
		seen[r.TxID] = true
	}

	// Re-append the replayed stream to a fresh manager serially: the LSN
	// assignment and the replayed bytes must match exactly.
	serial, err := Open(newLogDevice())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		lsn, err := serial.Append(&Record{Type: r.Type, TxID: r.TxID, PageID: r.PageID, Offset: r.Offset, Before: r.Before, After: r.After})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != r.LSN {
			t.Fatalf("record %d: serial LSN %d != concurrent LSN %d", i, lsn, r.LSN)
		}
	}
	if err := serial.ForceAll(); err != nil {
		t.Fatal(err)
	}
	i := 0
	err = serial.Iterate(0, func(r *Record) error {
		want := recs[i]
		if r.LSN != want.LSN || r.Type != want.Type || r.TxID != want.TxID ||
			r.PageID != want.PageID || r.Offset != want.Offset ||
			!bytes.Equal(r.Before, want.Before) || !bytes.Equal(r.After, want.After) {
			t.Fatalf("record %d differs between serial and concurrent logs", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(recs) {
		t.Fatalf("serial log replayed %d records, want %d", i, len(recs))
	}
}

// TestReserveRingWrapStallsAndRecovers drives far more bytes than the ring
// holds through concurrent appenders with no explicit forces: appenders
// must stall on the full ring, the syncer must drain it on demand, and the
// final log must hold every record.
func TestReserveRingWrapStallsAndRecovers(t *testing.T) {
	dev := device.New("log", device.ProfileCheetah15K, 4096)
	m, err := OpenConfig(dev, Config{Segments: 2, SegmentBytes: 2048}) // 4 KiB ring
	if err != nil {
		t.Fatal(err)
	}
	if !m.Pipelined() {
		t.Fatal("expected the pipeline front end")
	}
	const writers = 4
	const perWriter = 100
	payload := make([]byte, 150)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := m.Append(&Record{Type: TypeUpdate, TxID: TxID(w*perWriter + i + 1), After: payload}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := m.ForceAll(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := m.Iterate(0, func(r *Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", count, writers*perWriter)
	}
	if s := m.Stats(); s.ReserveStalls == 0 {
		t.Fatalf("no reservation stalls despite a %d-byte ring and %d bytes appended", 4096, writers*perWriter*len(payload))
	}
}

// TestWalCompatModeSingleSegment: Config{Segments: 1} selects the mutex
// front end; its log must be readable by a default (pipeline) manager.
func TestWalCompatModeSingleSegment(t *testing.T) {
	dev := newLogDevice()
	m, err := OpenConfig(dev, Config{Segments: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Pipelined() {
		t.Fatal("Segments: 1 must select the compat front end")
	}
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := m.Append(&Record{Type: TypeCommit, TxID: TxID(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.ForceAll(); err != nil {
		t.Fatal(err)
	}
	m.Crash()

	m2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Pipelined() {
		t.Fatal("default Open must select the pipeline front end")
	}
	count := 0
	if err := m2.Iterate(0, func(r *Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("pipeline manager replayed %d compat records, want %d", count, n)
	}
}

// TestWalTornTailRepairedBySlot simulates a torn in-place rewrite of the
// partial tail block: on a device with a durability barrier the
// double-write slot must restore the staged image at Open, so every
// acknowledged record survives.
func TestWalTornTailRepairedBySlot(t *testing.T) {
	inner := device.New("log", device.ProfileCheetah15K, 1<<12)
	rec := &syncRecorder{Dev: inner}
	m, err := Open(rec)
	if err != nil {
		t.Fatal(err)
	}
	// First force: the tail block is fresh (no staging needed).  Second
	// force rewrites the now-partial tail block in place and must stage it
	// through the slot first.
	if _, err := m.Append(&Record{Type: TypeCommit, TxID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.ForceAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(&Record{Type: TypeCommit, TxID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.ForceAll(); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.TornSlotWrites == 0 {
		t.Fatal("rewriting a partial tail block did not stage through the torn-tail slot")
	}
	durable := m.Durable()
	if m.off(durable)%device.BlockSize == 0 {
		t.Fatal("test setup: tail block is not partial")
	}
	m.Crash()

	// Tear the in-place rewrite: garbage the whole tail block, as a
	// host crash mid-write would.
	tailBlk := int64(m.off(durable)/device.BlockSize) + controlBlocks
	if err := inner.WriteAt(tailBlk, bytes.Repeat([]byte{0xFF}, device.BlockSize)); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(rec)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Durable() != durable {
		t.Fatalf("recovered durable %d, want %d: torn tail not repaired", m2.Durable(), durable)
	}
	var commits []TxID
	if err := m2.Iterate(0, func(r *Record) error {
		commits = append(commits, r.TxID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(commits) != 2 || commits[0] != 1 || commits[1] != 2 {
		t.Fatalf("recovered commits %v, want [1 2]", commits)
	}
}

// TestWalTornTailUnprotectedLoses is the control for the repair test: on a
// simulated device (no durability barrier, atomic block writes assumed)
// the slot is inactive and no staging I/O is paid.
func TestWalTornTailUnprotectedLoses(t *testing.T) {
	m, err := Open(newLogDevice())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(&Record{Type: TypeCommit, TxID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.ForceAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(&Record{Type: TypeCommit, TxID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.ForceAll(); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.TornSlotWrites != 0 {
		t.Fatalf("simulated device paid %d torn-slot staging writes", s.TornSlotWrites)
	}
}

// TestWalSyncerFsyncFailureUnparksWaiters: an injected fsync failure must
// leave durable unmoved and unpark every parked Force caller with the
// error; once the barrier works again the same records become durable.
func TestWalSyncerFsyncFailureUnparksWaiters(t *testing.T) {
	rec := &syncRecorder{Dev: device.New("log", device.ProfileCheetah15K, 1<<12)}
	m, err := Open(rec)
	if err != nil {
		t.Fatal(err)
	}
	const committers = 4
	lsns := make([]page.LSN, committers)
	for i := range lsns {
		lsn, err := m.Append(&Record{Type: TypeCommit, TxID: TxID(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		lsns[i] = lsn
	}

	wantErr := errors.New("injected fsync failure")
	rec.mu.Lock()
	rec.syncErr = wantErr
	rec.mu.Unlock()

	durableBefore := m.Durable()
	errs := make(chan error, committers)
	var wg sync.WaitGroup
	for _, lsn := range lsns {
		wg.Add(1)
		go func(lsn page.LSN) {
			defer wg.Done()
			errs <- m.Force(lsn + 1)
		}(lsn)
	}
	wg.Wait()
	close(errs)
	got := 0
	for err := range errs {
		got++
		if !errors.Is(err, wantErr) {
			t.Fatalf("parked Force returned %v, want the injected fsync error", err)
		}
	}
	if got != committers {
		t.Fatalf("%d of %d parked forces unparked", got, committers)
	}
	if m.Durable() != durableBefore {
		t.Fatalf("durable advanced to %d despite failed fsync (was %d)", m.Durable(), durableBefore)
	}
	if s := m.Stats(); s.DurableWaits < committers {
		t.Fatalf("DurableWaits = %d, want >= %d", s.DurableWaits, committers)
	}

	rec.mu.Lock()
	rec.syncErr = nil
	rec.mu.Unlock()
	if err := m.ForceAll(); err != nil {
		t.Fatal(err)
	}
	if m.Durable() != m.Next() {
		t.Fatal("records did not become durable after the barrier recovered")
	}
}
