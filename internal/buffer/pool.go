// Package buffer implements the DRAM buffer pool.
//
// The pool mirrors the behaviour the FaCE paper assumes of PostgreSQL's
// buffer manager: LRU replacement, pin counts, and per-frame dirty flags.
// Following Section 3.3 of the paper, each frame carries two flags:
//
//   - dirty:  the DRAM copy is newer than the disk copy.
//   - fdirty: the DRAM copy is newer than the flash-cache copy ("flash
//     dirty").
//
// The pool itself knows nothing about flash or disk.  It is wired to the
// rest of the system through two callbacks: a FetchFunc that loads a page
// on a miss (the engine consults the flash cache first, then disk) and an
// EvictFunc that receives pages leaving DRAM (the engine stages them into
// the flash cache or writes them to disk).
//
// To keep many concurrent transactions off one mutex, the pool is split
// into independent shards, each with its own lock, LRU list, busy-latch
// map, pin-wait condition and statistics.  Pages are striped over the
// shards by a hash of their id, so hits on different pages touch different
// locks.  A single-shard pool (New, or NewSharded with shards = 1) behaves
// exactly like the historical global-LRU pool; with more shards each shard
// runs its own LRU over its slice of the capacity.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/reprolab/face/internal/page"
)

// Errors returned by the pool.
var (
	ErrAllPinned   = errors.New("buffer: all frames are pinned")
	ErrNotResident = errors.New("buffer: page is not resident")
	ErrBadCapacity = errors.New("buffer: capacity must be at least 1")
	ErrClosed      = errors.New("buffer: pool is closed")
)

// Victim describes a page leaving the DRAM buffer.
type Victim struct {
	ID page.ID
	// Data is the page image.  The slice is only valid for the duration
	// of the eviction callback; retainers must copy it.
	Data page.Buf
	// Dirty reports whether the page is newer than its disk copy.
	Dirty bool
	// FDirty reports whether the page is newer than its flash-cache copy.
	FDirty bool
}

// FetchFunc loads the page with the given id into buf on a DRAM miss.  It
// reports whether the loaded copy is newer than the disk copy (true when it
// was served from a write-back flash cache holding a dirty version).
type FetchFunc func(id page.ID, buf page.Buf) (dirty bool, err error)

// EvictFunc consumes a page evicted from the DRAM buffer.
type EvictFunc func(v Victim) error

// Stats reports buffer pool activity.
type Stats struct {
	Hits           int64
	Misses         int64
	Evictions      int64
	DirtyEvictions int64
	// PinWaits counts frame allocations that had to wait for a pinned
	// frame to be released (only under SetPinWait; otherwise an
	// all-pinned pool fails fast with ErrAllPinned).
	PinWaits int64
}

// HitRate returns the fraction of Get calls served from DRAM.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Add accumulates another snapshot into s (per-shard snapshots sum to the
// pool-wide view).
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.DirtyEvictions += o.DirtyEvictions
	s.PinWaits += o.PinWaits
}

type frame struct {
	id     page.ID
	data   page.Buf
	dirty  bool
	fdirty bool
	pins   int
	elem   *list.Element
}

// shard is one independently locked slice of the pool: its own LRU,
// busy-latch map, pin-wait condition and statistics.
type shard struct {
	pool     *Pool
	mu       sync.Mutex
	capacity int
	frames   map[page.ID]*frame
	lru      *list.List // front = most recently used
	// busy latches pages with in-flight fetch or eviction I/O: the channel
	// is closed when the I/O completes and the page may be (re)examined.
	busy  map[page.ID]chan struct{}
	stats Stats
}

// Pool is an LRU buffer pool of fixed capacity, striped over independent
// shards.  It is safe for concurrent use: frames are latched while their
// fetch or eviction I/O is in flight, so concurrent Get calls for the same
// page wait for a single load instead of racing it, and a page being
// evicted cannot be re-fetched from the backing store until its eviction
// (and therefore its write-back) has completed.
type Pool struct {
	capacity int
	shards   []*shard
	fetch    FetchFunc
	evict    EvictFunc

	// pinWait makes an all-pinned shard wait on unpinned (signalled by
	// Unpin and frame removal) instead of failing with ErrAllPinned.
	pinWait atomic.Bool
	// closed fails new Gets and wakes pin-waiters with ErrClosed.
	closed atomic.Bool
	// resident tracks the pool-wide frame count so an all-pinned shard
	// can tell global headroom (allocate past the local split) from a
	// genuinely full pool (evict a sibling's victim first).
	resident atomic.Int64

	// Pin-release notification.  A frame allocation that found every
	// frame of every shard pinned waits for ANY pin release — in any
	// shard, since borrowing can satisfy it remotely — so the signal is
	// pool-wide: pinGen counts releases (Unpin to zero, frame removal,
	// close) and pinCond broadcasts them.  pinMu is a leaf lock, taken
	// with or without a shard lock held but never the other way around.
	pinMu   sync.Mutex
	pinGen  uint64
	pinCond *sync.Cond
}

// pinGeneration samples the release counter; a waiter takes it BEFORE
// scanning for victims so a release during the scan re-runs the scan
// instead of being missed.
func (p *Pool) pinGeneration() uint64 {
	p.pinMu.Lock()
	g := p.pinGen
	p.pinMu.Unlock()
	return g
}

// pinReleased records a pin release (or frame removal, or close) and
// wakes every waiter.
func (p *Pool) pinReleased() {
	p.pinMu.Lock()
	p.pinGen++
	p.pinCond.Broadcast()
	p.pinMu.Unlock()
}

// waitPinReleased blocks until a release happened after gen was sampled.
// The caller holds no shard lock.
func (p *Pool) waitPinReleased(gen uint64) {
	p.pinMu.Lock()
	for p.pinGen == gen && !p.closed.Load() {
		p.pinCond.Wait()
	}
	p.pinMu.Unlock()
}

// New creates a pool holding up to capacity pages in a single shard — the
// historical global-LRU behaviour.
func New(capacity int, fetch FetchFunc, evict EvictFunc) (*Pool, error) {
	return NewSharded(capacity, 1, fetch, evict)
}

// NewSharded creates a pool holding up to capacity pages striped over the
// given number of shards.  Shard counts below 1 select 1; a count above
// the capacity is clamped so every shard holds at least one page.
func NewSharded(capacity, shards int, fetch FetchFunc, evict EvictFunc) (*Pool, error) {
	if capacity < 1 {
		return nil, ErrBadCapacity
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	p := &Pool{
		capacity: capacity,
		shards:   make([]*shard, shards),
		fetch:    fetch,
		evict:    evict,
	}
	p.pinCond = sync.NewCond(&p.pinMu)
	// Split the capacity as evenly as possible; the first capacity%shards
	// shards hold one extra page.
	base, rem := capacity/shards, capacity%shards
	for i := range p.shards {
		c := base
		if i < rem {
			c++
		}
		p.shards[i] = &shard{
			pool:     p,
			capacity: c,
			frames:   make(map[page.ID]*frame, c),
			lru:      list.New(),
			busy:     make(map[page.ID]chan struct{}),
		}
	}
	return p, nil
}

// shardFor returns the shard holding the given page id.  The Fibonacci
// multiplier scatters the mostly-sequential page ids of a fresh database
// across the shards.
func (p *Pool) shardFor(id page.ID) *shard {
	if len(p.shards) == 1 {
		return p.shards[0]
	}
	h := uint64(id) * 0x9E3779B97F4A7C15
	return p.shards[h%uint64(len(p.shards))]
}

// SetPinWait selects how an all-pinned shard treats a frame allocation:
// waiting for a pin to be released (true) or failing fast with
// ErrAllPinned (false, the default).  The engine enables waiting under the
// page-lock scheduler, where many concurrent transactions legitimately
// pin pages at once but every pin is short-held — never across a lock
// wait, a commit, or a blocking closure — so the wait is bounded.
func (p *Pool) SetPinWait(wait bool) { p.pinWait.Store(wait) }

// Close marks the pool closed: subsequent Gets fail with ErrClosed and
// every goroutine parked on a pin-wait is woken and fails the same way.
// Resident frames stay readable through Flags/Contains for diagnostics;
// callers flush dirty pages with FlushDirty before closing.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.pinReleased()
}

// Capacity returns the pool capacity in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Shards returns the number of shards the capacity is striped over.
func (p *Pool) Shards() int { return len(p.shards) }

// Len returns the number of resident pages.
func (p *Pool) Len() int {
	n := 0
	for _, s := range p.shards {
		s.mu.Lock()
		n += len(s.frames)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the pool statistics: the sum of one coherent
// snapshot per shard.  Each shard's counters are read under its lock, so
// Hits+Misses can never tear against a concurrent Get on the same shard;
// across shards the snapshot is only as old as the first shard read.
func (p *Pool) Stats() Stats {
	var out Stats
	for _, s := range p.shards {
		s.mu.Lock()
		out.Add(s.stats)
		s.mu.Unlock()
	}
	return out
}

// ShardStats returns one coherent statistics snapshot per shard, in shard
// order.  The engine aggregates them into its Snapshot and exposes the
// per-shard breakdown for diagnosing stripe imbalance.
func (p *Pool) ShardStats() []Stats {
	out := make([]Stats, len(p.shards))
	for i, s := range p.shards {
		s.mu.Lock()
		out[i] = s.stats
		s.mu.Unlock()
	}
	return out
}

// ResetStats clears the pool statistics.
func (p *Pool) ResetStats() {
	for _, s := range p.shards {
		s.mu.Lock()
		s.stats = Stats{}
		s.mu.Unlock()
	}
}

// Contains reports whether the page is resident without affecting LRU
// order or statistics.  It is busy-aware: while the page's fetch or
// eviction I/O is in flight it waits for the latch, so it never reports a
// half-loaded frame as resident or a page whose eviction write-back is
// still in the air as gone.
func (p *Pool) Contains(id page.ID) bool {
	s := p.shardFor(id)
	s.mu.Lock()
	s.waitBusyLocked(id)
	_, ok := s.frames[id]
	s.mu.Unlock()
	return ok
}

// waitBusyLocked blocks until no fetch or eviction I/O is in flight for
// the page.  The caller holds s.mu on entry and on return.
func (s *shard) waitBusyLocked(id page.ID) {
	for {
		ch, ok := s.busy[id]
		if !ok {
			return
		}
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
}

// Get pins the page with the given id and returns its frame buffer.  The
// buffer aliases pool memory and remains valid until Unpin.  On a miss the
// page is loaded through the fetch callback, evicting the least recently
// used unpinned page of the shard if it is full.
//
// The fetch and evict callbacks are invoked without holding any pool lock,
// so they may call back into the pool (Group Second Chance pulls extra
// victims with EvictBatch from inside the eviction path).  While a fetch or
// eviction is in flight the page stays latched: concurrent Gets for it wait
// on the latch rather than observing a half-loaded frame or re-reading a
// page whose write-back has not yet reached the backing store.
func (p *Pool) Get(id page.ID) (page.Buf, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	s := p.shardFor(id)
	s.mu.Lock()
	for {
		if ch, ok := s.busy[id]; ok {
			s.mu.Unlock()
			<-ch
			s.mu.Lock()
			continue
		}
		f, ok := s.frames[id]
		if !ok {
			break
		}
		f.pins++
		s.lru.MoveToFront(f.elem)
		s.stats.Hits++
		s.mu.Unlock()
		return f.data, nil
	}
	s.stats.Misses++
	ch := make(chan struct{})
	s.busy[id] = ch
	f, err := s.allocateFrame(id)
	if err != nil {
		delete(s.busy, id)
		close(ch)
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Unlock()

	dirty, err := p.fetch(id, f.data)
	s.mu.Lock()
	delete(s.busy, id)
	close(ch)
	if err != nil {
		s.removeLocked(f)
		s.mu.Unlock()
		return nil, fmt.Errorf("buffer: fetching page %d: %w", id, err)
	}
	f.dirty = dirty
	f.fdirty = false
	s.mu.Unlock()
	return f.data, nil
}

// Put inserts a brand-new page image into the pool without consulting the
// fetch callback (used when allocating fresh pages).  The page is pinned.
func (p *Pool) Put(id page.ID, init func(buf page.Buf)) (page.Buf, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	s := p.shardFor(id)
	s.mu.Lock()
	for {
		if ch, ok := s.busy[id]; ok {
			s.mu.Unlock()
			<-ch
			s.mu.Lock()
			continue
		}
		f, ok := s.frames[id]
		if !ok {
			break
		}
		f.pins++
		s.lru.MoveToFront(f.elem)
		if init != nil {
			init(f.data)
		}
		f.dirty = true
		f.fdirty = true
		s.mu.Unlock()
		return f.data, nil
	}
	// Latch the id across allocateFrame: the lock is released around
	// eviction callbacks, and a concurrent Get or Put for the same id must
	// not allocate a second frame in that window.
	ch := make(chan struct{})
	s.busy[id] = ch
	f, err := s.allocateFrame(id)
	delete(s.busy, id)
	close(ch)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if init != nil {
		init(f.data)
	}
	f.dirty = true
	f.fdirty = true
	s.mu.Unlock()
	return f.data, nil
}

// allocateFrame finds or creates a free frame for id, evicting if
// necessary.  The caller holds s.mu on entry and on return; the lock is
// released around the eviction callback, during which the victim page is
// latched in s.busy so a concurrent Get cannot re-fetch it from the
// backing store before its write-back lands.  The returned frame is
// pinned.
func (s *shard) allocateFrame(id page.ID) (*frame, error) {
	p := s.pool
	waited := false
	reserved := false
	for len(s.frames) >= s.capacity {
		if victim := s.pickVictimLocked(); victim != nil {
			if err := s.evictFrameLocked(victim); err != nil {
				return nil, err
			}
			continue
		}
		if p.closed.Load() {
			return nil, ErrClosed
		}
		// Every local frame is pinned, but the rest of the pool may have
		// room.  Sample the release generation BEFORE scanning, so a pin
		// released mid-scan re-runs the scan instead of being missed.
		gen := p.pinGeneration()
		// Reserve global headroom atomically (a plain load-then-allocate
		// would let concurrent borrowers overshoot the capacity), and
		// allocate past the local split on success.
		if p.resident.Add(1) <= int64(p.capacity) {
			reserved = true
			break
		}
		p.resident.Add(-1)
		// No headroom: fund the borrow by evicting a sibling's victim.
		s.mu.Unlock()
		ok, err := p.evictElsewhere(s)
		s.mu.Lock()
		if err != nil {
			return nil, err
		}
		if ok {
			break
		}
		// Every frame of every shard is pinned — ErrAllPinned keeps its
		// global-pool meaning rather than becoming reachable per-shard.
		if !p.pinWait.Load() {
			return nil, ErrAllPinned
		}
		// Pins are short-held; wait for any release (in any shard — a
		// remote one frees borrowable room) and look again.  Count the
		// allocation as waiting once, not once per wakeup.
		if !waited {
			waited = true
			s.stats.PinWaits++
		}
		s.mu.Unlock()
		p.waitPinReleased(gen)
		s.mu.Lock()
	}
	f := &frame{id: id, data: page.NewBuf(), pins: 1}
	f.elem = s.lru.PushFront(f)
	s.frames[id] = f
	if !reserved {
		p.resident.Add(1)
	}
	return f, nil
}

// evictFrameLocked removes the victim from the shard and runs the
// eviction callback with the shard lock released and the page
// busy-latched.  The caller holds s.mu on entry and on return.
func (s *shard) evictFrameLocked(victim *frame) error {
	s.stats.Evictions++
	if victim.dirty {
		s.stats.DirtyEvictions++
	}
	s.removeLocked(victim)
	if s.pool.evict == nil {
		return nil
	}
	ch := make(chan struct{})
	s.busy[victim.id] = ch
	v := Victim{ID: victim.id, Data: victim.data, Dirty: victim.dirty, FDirty: victim.fdirty}
	s.mu.Unlock()
	err := s.pool.evict(v)
	s.mu.Lock()
	delete(s.busy, victim.id)
	close(ch)
	if err != nil {
		return fmt.Errorf("buffer: evicting page %d: %w", victim.id, err)
	}
	return nil
}

// evictElsewhere frees one unpinned frame from any shard other than
// exclude, reporting whether one was found.  The caller holds no shard
// lock (at most one shard lock is ever held at a time).
func (p *Pool) evictElsewhere(exclude *shard) (bool, error) {
	for _, s := range p.shards {
		if s == exclude {
			continue
		}
		s.mu.Lock()
		victim := s.pickVictimLocked()
		if victim == nil {
			s.mu.Unlock()
			continue
		}
		err := s.evictFrameLocked(victim)
		s.mu.Unlock()
		if err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// pickVictimLocked returns the least recently used unpinned frame, or nil.
func (s *shard) pickVictimLocked() *frame {
	for e := s.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*frame)
		if f.pins == 0 {
			return f
		}
	}
	return nil
}

func (s *shard) removeLocked(f *frame) {
	s.lru.Remove(f.elem)
	delete(s.frames, f.id)
	s.pool.resident.Add(-1)
	// A removed frame frees capacity: wake pin-waiters.
	s.pool.pinReleased()
}

// MarkDirty flags the page as updated: both dirty and fdirty are set, as in
// Algorithm 1 of the paper ("on update of page p in the DRAM buffer").
func (p *Pool) MarkDirty(id page.ID) error {
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frames[id]
	if !ok {
		return fmt.Errorf("%w: page %d", ErrNotResident, id)
	}
	f.dirty = true
	f.fdirty = true
	return nil
}

// Flags returns the dirty and fdirty flags of a resident page.  Like
// Contains it is busy-aware: while the page's fetch is in flight the flags
// are not yet decided (a fetch served by a write-back flash cache sets
// dirty afterwards), so Flags waits for the latch instead of reporting the
// frame's provisional clean state.
func (p *Pool) Flags(id page.ID) (dirty, fdirty bool, err error) {
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waitBusyLocked(id)
	f, ok := s.frames[id]
	if !ok {
		return false, false, fmt.Errorf("%w: page %d", ErrNotResident, id)
	}
	return f.dirty, f.fdirty, nil
}

// Unpin releases one pin on the page.
func (p *Pool) Unpin(id page.ID) error {
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frames[id]
	if !ok {
		return fmt.Errorf("%w: page %d", ErrNotResident, id)
	}
	if f.pins == 0 {
		return fmt.Errorf("buffer: page %d is not pinned", id)
	}
	f.pins--
	if f.pins == 0 {
		p.pinReleased()
	}
	return nil
}

// FlushDirty passes every dirty resident page to fn (typically the
// checkpoint path).  Pages remain resident.  The fdirty flag is always
// cleared; the dirty flag is cleared only when syncedToDisk is true (i.e.
// the flush went all the way to the disk copy rather than into a
// write-back flash cache).
//
// fn is invoked without holding any pool lock, for the same reason as the
// eviction callback in Get.
func (p *Pool) FlushDirty(fn func(v Victim) error, syncedToDisk bool) error {
	var victims []Victim
	for _, s := range p.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			if !f.dirty && !f.fdirty {
				continue
			}
			victims = append(victims, Victim{ID: f.id, Data: f.data.Clone(), Dirty: f.dirty, FDirty: f.fdirty})
		}
		s.mu.Unlock()
	}

	for _, v := range victims {
		if err := fn(v); err != nil {
			return fmt.Errorf("buffer: flushing page %d: %w", v.ID, err)
		}
		s := p.shardFor(v.ID)
		s.mu.Lock()
		if f, ok := s.frames[v.ID]; ok {
			f.fdirty = false
			if syncedToDisk {
				f.dirty = false
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// EvictBatch removes up to n unpinned pages from the LRU tails and returns
// them WITHOUT invoking the eviction callback.  It implements the "pull
// more pages from the LRU tail of the DRAM buffer" step of the paper's
// Group Second Chance replacement (Section 3.3): the flash cache tops up a
// partially empty write group with additional DRAM victims.  With several
// shards the pull visits the shard tails round-robin, one victim per shard
// per round, approximating the global LRU order.
func (p *Pool) EvictBatch(n int) []Victim {
	var out []Victim
	if len(p.shards) == 1 {
		return p.shards[0].evictTail(n)
	}
	for len(out) < n {
		took := false
		for _, s := range p.shards {
			if len(out) >= n {
				break
			}
			got := s.evictTail(1)
			if len(got) > 0 {
				out = append(out, got...)
				took = true
			}
		}
		if !took {
			break
		}
	}
	return out
}

// evictTail removes up to n unpinned pages from this shard's LRU tail.
func (s *shard) evictTail(n int) []Victim {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Victim
	e := s.lru.Back()
	for e != nil && len(out) < n {
		prev := e.Prev()
		f := e.Value.(*frame)
		if f.pins == 0 {
			s.stats.Evictions++
			if f.dirty {
				s.stats.DirtyEvictions++
			}
			data := f.data.Clone()
			out = append(out, Victim{ID: f.id, Data: data, Dirty: f.dirty, FDirty: f.fdirty})
			s.removeLocked(f)
		}
		e = prev
	}
	return out
}

// DropAll discards every resident page without writing anything.  It
// simulates the loss of volatile state at a crash.
func (p *Pool) DropAll() {
	for _, s := range p.shards {
		s.mu.Lock()
		p.resident.Add(-int64(len(s.frames)))
		s.frames = make(map[page.ID]*frame, s.capacity)
		s.lru.Init()
		s.mu.Unlock()
	}
	p.pinReleased()
}

// ResidentIDs returns the ids of all resident pages (for tests and
// diagnostics).
func (p *Pool) ResidentIDs() []page.ID {
	var out []page.ID
	for _, s := range p.shards {
		s.mu.Lock()
		for id := range s.frames {
			out = append(out, id)
		}
		s.mu.Unlock()
	}
	return out
}
