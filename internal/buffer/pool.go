// Package buffer implements the DRAM buffer pool.
//
// The pool mirrors the behaviour the FaCE paper assumes of PostgreSQL's
// buffer manager: LRU replacement, pin counts, and per-frame dirty flags.
// Following Section 3.3 of the paper, each frame carries two flags:
//
//   - dirty:  the DRAM copy is newer than the disk copy.
//   - fdirty: the DRAM copy is newer than the flash-cache copy ("flash
//     dirty").
//
// The pool itself knows nothing about flash or disk.  It is wired to the
// rest of the system through two callbacks: a FetchFunc that loads a page
// on a miss (the engine consults the flash cache first, then disk) and an
// EvictFunc that receives pages leaving DRAM (the engine stages them into
// the flash cache or writes them to disk).
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"github.com/reprolab/face/internal/page"
)

// Errors returned by the pool.
var (
	ErrAllPinned   = errors.New("buffer: all frames are pinned")
	ErrNotResident = errors.New("buffer: page is not resident")
	ErrBadCapacity = errors.New("buffer: capacity must be at least 1")
)

// Victim describes a page leaving the DRAM buffer.
type Victim struct {
	ID page.ID
	// Data is the page image.  The slice is only valid for the duration
	// of the eviction callback; retainers must copy it.
	Data page.Buf
	// Dirty reports whether the page is newer than its disk copy.
	Dirty bool
	// FDirty reports whether the page is newer than its flash-cache copy.
	FDirty bool
}

// FetchFunc loads the page with the given id into buf on a DRAM miss.  It
// reports whether the loaded copy is newer than the disk copy (true when it
// was served from a write-back flash cache holding a dirty version).
type FetchFunc func(id page.ID, buf page.Buf) (dirty bool, err error)

// EvictFunc consumes a page evicted from the DRAM buffer.
type EvictFunc func(v Victim) error

// Stats reports buffer pool activity.
type Stats struct {
	Hits           int64
	Misses         int64
	Evictions      int64
	DirtyEvictions int64
	// PinWaits counts frame allocations that had to wait for a pinned
	// frame to be released (only under SetPinWait; otherwise an
	// all-pinned pool fails fast with ErrAllPinned).
	PinWaits int64
}

// HitRate returns the fraction of Get calls served from DRAM.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type frame struct {
	id     page.ID
	data   page.Buf
	dirty  bool
	fdirty bool
	pins   int
	elem   *list.Element
}

// Pool is an LRU buffer pool of fixed capacity.  It is safe for concurrent
// use: frames are latched while their fetch or eviction I/O is in flight,
// so concurrent Get calls for the same page wait for a single load instead
// of racing it, and a page being evicted cannot be re-fetched from the
// backing store until its eviction (and therefore its write-back) has
// completed.
type Pool struct {
	mu       sync.Mutex
	capacity int
	frames   map[page.ID]*frame
	lru      *list.List // front = most recently used
	// busy latches pages with in-flight fetch or eviction I/O: the channel
	// is closed when the I/O completes and the page may be (re)examined.
	busy  map[page.ID]chan struct{}
	fetch FetchFunc
	evict EvictFunc
	stats Stats

	// pinWait makes an all-pinned pool wait on unpinned (signalled by
	// Unpin and frame removal) instead of failing with ErrAllPinned.
	pinWait  bool
	unpinned *sync.Cond
}

// New creates a pool holding up to capacity pages.
func New(capacity int, fetch FetchFunc, evict EvictFunc) (*Pool, error) {
	if capacity < 1 {
		return nil, ErrBadCapacity
	}
	p := &Pool{
		capacity: capacity,
		frames:   make(map[page.ID]*frame, capacity),
		lru:      list.New(),
		busy:     make(map[page.ID]chan struct{}),
		fetch:    fetch,
		evict:    evict,
	}
	p.unpinned = sync.NewCond(&p.mu)
	return p, nil
}

// SetPinWait selects how an all-pinned pool treats a frame allocation:
// waiting for a pin to be released (true) or failing fast with
// ErrAllPinned (false, the default).  The engine enables waiting under the
// page-lock scheduler, where many concurrent transactions legitimately
// pin pages at once but every pin is short-held — never across a lock
// wait, a commit, or a blocking closure — so the wait is bounded.
func (p *Pool) SetPinWait(wait bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pinWait = wait
}

// Capacity returns the pool capacity in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Len returns the number of resident pages.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Stats returns a snapshot of the pool statistics.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats clears the pool statistics.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Contains reports whether the page is resident without affecting LRU
// order or statistics.
func (p *Pool) Contains(id page.ID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.frames[id]
	return ok
}

// Get pins the page with the given id and returns its frame buffer.  The
// buffer aliases pool memory and remains valid until Unpin.  On a miss the
// page is loaded through the fetch callback, evicting the least recently
// used unpinned page if the pool is full.
//
// The fetch and evict callbacks are invoked without holding the pool lock,
// so they may call back into the pool (Group Second Chance pulls extra
// victims with EvictBatch from inside the eviction path).  While a fetch or
// eviction is in flight the page stays latched: concurrent Gets for it wait
// on the latch rather than observing a half-loaded frame or re-reading a
// page whose write-back has not yet reached the backing store.
func (p *Pool) Get(id page.ID) (page.Buf, error) {
	p.mu.Lock()
	for {
		if ch, ok := p.busy[id]; ok {
			p.mu.Unlock()
			<-ch
			p.mu.Lock()
			continue
		}
		f, ok := p.frames[id]
		if !ok {
			break
		}
		f.pins++
		p.lru.MoveToFront(f.elem)
		p.stats.Hits++
		p.mu.Unlock()
		return f.data, nil
	}
	p.stats.Misses++
	ch := make(chan struct{})
	p.busy[id] = ch
	f, err := p.allocateFrame(id)
	if err != nil {
		delete(p.busy, id)
		close(ch)
		p.mu.Unlock()
		return nil, err
	}
	p.mu.Unlock()

	dirty, err := p.fetch(id, f.data)
	p.mu.Lock()
	delete(p.busy, id)
	close(ch)
	if err != nil {
		p.removeLocked(f)
		p.mu.Unlock()
		return nil, fmt.Errorf("buffer: fetching page %d: %w", id, err)
	}
	f.dirty = dirty
	f.fdirty = false
	p.mu.Unlock()
	return f.data, nil
}

// Put inserts a brand-new page image into the pool without consulting the
// fetch callback (used when allocating fresh pages).  The page is pinned.
func (p *Pool) Put(id page.ID, init func(buf page.Buf)) (page.Buf, error) {
	p.mu.Lock()
	for {
		if ch, ok := p.busy[id]; ok {
			p.mu.Unlock()
			<-ch
			p.mu.Lock()
			continue
		}
		f, ok := p.frames[id]
		if !ok {
			break
		}
		f.pins++
		p.lru.MoveToFront(f.elem)
		if init != nil {
			init(f.data)
		}
		f.dirty = true
		f.fdirty = true
		p.mu.Unlock()
		return f.data, nil
	}
	// Latch the id across allocateFrame: the lock is released around
	// eviction callbacks, and a concurrent Get or Put for the same id must
	// not allocate a second frame in that window.
	ch := make(chan struct{})
	p.busy[id] = ch
	f, err := p.allocateFrame(id)
	delete(p.busy, id)
	close(ch)
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	if init != nil {
		init(f.data)
	}
	f.dirty = true
	f.fdirty = true
	p.mu.Unlock()
	return f.data, nil
}

// allocateFrame finds or creates a free frame for id, evicting if
// necessary.  The caller holds p.mu on entry and on return; the lock is
// released around the eviction callback, during which the victim page is
// latched in p.busy so a concurrent Get cannot re-fetch it from the
// backing store before its write-back lands.  The returned frame is
// pinned.
func (p *Pool) allocateFrame(id page.ID) (*frame, error) {
	waited := false
	for len(p.frames) >= p.capacity {
		victim := p.pickVictimLocked()
		if victim == nil {
			if !p.pinWait {
				return nil, ErrAllPinned
			}
			// Every frame is pinned by a concurrent transaction; pins are
			// short-held, so wait for one to be released and look again.
			// Count the allocation as waiting once, not once per wakeup.
			if !waited {
				waited = true
				p.stats.PinWaits++
			}
			p.unpinned.Wait()
			continue
		}
		p.stats.Evictions++
		if victim.dirty {
			p.stats.DirtyEvictions++
		}
		p.removeLocked(victim)
		if p.evict != nil {
			ch := make(chan struct{})
			p.busy[victim.id] = ch
			v := Victim{ID: victim.id, Data: victim.data, Dirty: victim.dirty, FDirty: victim.fdirty}
			p.mu.Unlock()
			err := p.evict(v)
			p.mu.Lock()
			delete(p.busy, victim.id)
			close(ch)
			if err != nil {
				return nil, fmt.Errorf("buffer: evicting page %d: %w", victim.id, err)
			}
		}
	}
	f := &frame{id: id, data: page.NewBuf(), pins: 1}
	f.elem = p.lru.PushFront(f)
	p.frames[id] = f
	return f, nil
}

// pickVictimLocked returns the least recently used unpinned frame, or nil.
func (p *Pool) pickVictimLocked() *frame {
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*frame)
		if f.pins == 0 {
			return f
		}
	}
	return nil
}

func (p *Pool) removeLocked(f *frame) {
	p.lru.Remove(f.elem)
	delete(p.frames, f.id)
	// A removed frame frees capacity: wake pin-waiters.
	p.unpinned.Broadcast()
}

// MarkDirty flags the page as updated: both dirty and fdirty are set, as in
// Algorithm 1 of the paper ("on update of page p in the DRAM buffer").
func (p *Pool) MarkDirty(id page.ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("%w: page %d", ErrNotResident, id)
	}
	f.dirty = true
	f.fdirty = true
	return nil
}

// Flags returns the dirty and fdirty flags of a resident page.
func (p *Pool) Flags(id page.ID) (dirty, fdirty bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return false, false, fmt.Errorf("%w: page %d", ErrNotResident, id)
	}
	return f.dirty, f.fdirty, nil
}

// Unpin releases one pin on the page.
func (p *Pool) Unpin(id page.ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("%w: page %d", ErrNotResident, id)
	}
	if f.pins == 0 {
		return fmt.Errorf("buffer: page %d is not pinned", id)
	}
	f.pins--
	if f.pins == 0 {
		p.unpinned.Broadcast()
	}
	return nil
}

// FlushDirty passes every dirty resident page to fn (typically the
// checkpoint path).  Pages remain resident.  The fdirty flag is always
// cleared; the dirty flag is cleared only when syncedToDisk is true (i.e.
// the flush went all the way to the disk copy rather than into a
// write-back flash cache).
//
// fn is invoked without holding the pool lock, for the same reason as the
// eviction callback in Get.
func (p *Pool) FlushDirty(fn func(v Victim) error, syncedToDisk bool) error {
	p.mu.Lock()
	var victims []Victim
	for _, f := range p.frames {
		if !f.dirty && !f.fdirty {
			continue
		}
		victims = append(victims, Victim{ID: f.id, Data: f.data.Clone(), Dirty: f.dirty, FDirty: f.fdirty})
	}
	p.mu.Unlock()

	for _, v := range victims {
		if err := fn(v); err != nil {
			return fmt.Errorf("buffer: flushing page %d: %w", v.ID, err)
		}
		p.mu.Lock()
		if f, ok := p.frames[v.ID]; ok {
			f.fdirty = false
			if syncedToDisk {
				f.dirty = false
			}
		}
		p.mu.Unlock()
	}
	return nil
}

// EvictBatch removes up to n unpinned pages from the LRU tail and returns
// them WITHOUT invoking the eviction callback.  It implements the "pull
// more pages from the LRU tail of the DRAM buffer" step of the paper's
// Group Second Chance replacement (Section 3.3): the flash cache tops up a
// partially empty write group with additional DRAM victims.
func (p *Pool) EvictBatch(n int) []Victim {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Victim
	e := p.lru.Back()
	for e != nil && len(out) < n {
		prev := e.Prev()
		f := e.Value.(*frame)
		if f.pins == 0 {
			p.stats.Evictions++
			if f.dirty {
				p.stats.DirtyEvictions++
			}
			data := f.data.Clone()
			out = append(out, Victim{ID: f.id, Data: data, Dirty: f.dirty, FDirty: f.fdirty})
			p.removeLocked(f)
		}
		e = prev
	}
	return out
}

// DropAll discards every resident page without writing anything.  It
// simulates the loss of volatile state at a crash.
func (p *Pool) DropAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames = make(map[page.ID]*frame, p.capacity)
	p.lru.Init()
	p.unpinned.Broadcast()
}

// ResidentIDs returns the ids of all resident pages (for tests and
// diagnostics).
func (p *Pool) ResidentIDs() []page.ID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]page.ID, 0, len(p.frames))
	for id := range p.frames {
		out = append(out, id)
	}
	return out
}
