package buffer

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reprolab/face/internal/page"
)

// TestShardedPoolBasics: capacity splits across shards, pages route by
// hash, and the aggregate statistics equal the per-shard sums.
func TestShardedPoolBasics(t *testing.T) {
	b := newTestBacking()
	p, err := NewSharded(10, 4, b.fetch, b.evict)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", p.Shards())
	}
	if p.Capacity() != 10 {
		t.Fatalf("Capacity = %d, want 10", p.Capacity())
	}
	total := 0
	for _, s := range p.shards {
		if s.capacity < 2 || s.capacity > 3 {
			t.Fatalf("shard capacity %d, want 2 or 3", s.capacity)
		}
		total += s.capacity
	}
	if total != 10 {
		t.Fatalf("shard capacities sum to %d, want 10", total)
	}

	for id := page.ID(1); id <= 8; id++ {
		if _, err := p.Get(id); err != nil {
			t.Fatal(err)
		}
		if err := p.Unpin(id); err != nil {
			t.Fatal(err)
		}
	}
	// Re-read: every page must be found again (routing is stable).
	for id := page.ID(1); id <= 8; id++ {
		if !p.Contains(id) {
			t.Fatalf("page %d not resident after load", id)
		}
	}
	agg := p.Stats()
	var sum Stats
	for _, ss := range p.ShardStats() {
		sum.Add(ss)
	}
	if agg != sum {
		t.Fatalf("aggregate %+v != per-shard sum %+v", agg, sum)
	}
	if agg.Misses != 8 {
		t.Fatalf("misses = %d, want 8", agg.Misses)
	}
	if got := len(p.ResidentIDs()); got != 8 {
		t.Fatalf("ResidentIDs = %d, want 8", got)
	}
}

// TestShardedClampsToCapacity: more shards than pages clamps so every
// shard holds at least one page.
func TestShardedClampsToCapacity(t *testing.T) {
	b := newTestBacking()
	p, err := NewSharded(3, 16, b.fetch, b.evict)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 3 {
		t.Fatalf("Shards = %d, want clamp to 3", p.Shards())
	}
	if _, err := NewSharded(0, 4, b.fetch, b.evict); !errors.Is(err, ErrBadCapacity) {
		t.Fatalf("got %v, want ErrBadCapacity", err)
	}
}

// TestShardedConcurrentGetUnpin hammers a sharded pool the way the latch
// test hammers the single-shard one: under -race no goroutine may observe
// a torn frame and pin accounting must stay balanced across shards.
func TestShardedConcurrentGetUnpin(t *testing.T) {
	const (
		pages      = 64
		capacity   = 12
		shardCount = 4
		goroutines = 16
		iterations = 300
	)
	b := &lockedBacking{pages: make(map[page.ID]byte)}
	for i := 1; i <= pages; i++ {
		b.pages[page.ID(i)] = byte(i)
	}
	p, err := NewSharded(capacity, shardCount, b.fetch, b.evict)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				id := page.ID((g*7+i)%pages + 1)
				buf, err := p.Get(id)
				if err != nil {
					t.Errorf("Get(%d): %v", id, err)
					return
				}
				want := buf[page.HeaderSize]
				for j := page.HeaderSize; j < len(buf); j += 512 {
					if buf[j] != want {
						t.Errorf("page %d: torn read at offset %d", id, j)
						break
					}
				}
				if buf.ID() != id {
					t.Errorf("Get(%d) returned page %d", id, buf.ID())
				}
				if err := p.Unpin(id); err != nil {
					t.Errorf("Unpin(%d): %v", id, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s := p.Stats()
	if s.Misses == 0 || s.Evictions == 0 {
		t.Fatalf("workload did not exercise misses/evictions: %+v", s)
	}
}

// TestShardedAllPinnedBorrowsFromSiblings: ErrAllPinned keeps its
// global-pool meaning under sharding.  A shard whose every frame is
// pinned must borrow capacity by evicting a sibling's unpinned victim
// instead of failing while the rest of the pool sits idle; the error
// fires only when every frame of every shard is pinned.
func TestShardedAllPinnedBorrowsFromSiblings(t *testing.T) {
	b := newTestBacking()
	p, err := NewSharded(4, 4, b.fetch, b.evict)
	if err != nil {
		t.Fatal(err)
	}
	// Find two ids routed to the same (one-frame) shard.
	target := p.shardFor(1)
	second := page.ID(0)
	for id := page.ID(2); id < 200; id++ {
		if p.shardFor(id) == target {
			second = id
			break
		}
	}
	if second == 0 {
		t.Fatal("no second id hashed to the target shard")
	}
	// Pin the shard's only frame, fill one sibling with an unpinned page.
	if _, err := p.Get(1); err != nil {
		t.Fatal(err)
	}
	var sibling page.ID
	for id := page.ID(2); id < 200; id++ {
		if p.shardFor(id) != target {
			sibling = id
			break
		}
	}
	if _, err := p.Get(sibling); err != nil {
		t.Fatal(err)
	}
	p.Unpin(sibling)

	// The target shard is all-pinned, but the pool has headroom: the
	// allocation must succeed past the local split, not fail — and with
	// free capacity elsewhere it must not evict anyone either.
	if _, err := p.Get(second); err != nil {
		t.Fatalf("Get on an all-pinned shard failed despite free siblings: %v", err)
	}
	if !p.Contains(sibling) {
		t.Fatal("sibling evicted although the pool had free capacity")
	}
	if got := p.Len(); got > p.Capacity() {
		t.Fatalf("borrowing exceeded pool capacity: %d resident of %d", got, p.Capacity())
	}
	// While the pool has global headroom, an all-pinned shard allocates
	// past its split without failing; once four frames are resident and
	// pinned, the global semantics apply.
	var pinned []page.ID
	for id := page.ID(200); len(pinned) < 2; id++ {
		if p.shardFor(id) == target {
			if _, err := p.Get(id); err != nil {
				t.Fatalf("Get with global headroom failed: %v", err)
			}
			pinned = append(pinned, id)
		}
	}
	if got := p.Len(); got != p.Capacity() {
		t.Fatalf("resident = %d, want full pool %d", got, p.Capacity())
	}
	var fifth page.ID
	for id := page.ID(400); fifth == 0; id++ {
		if p.shardFor(id) == target {
			fifth = id
		}
	}
	if _, err := p.Get(fifth); !errors.Is(err, ErrAllPinned) {
		t.Fatalf("got %v, want ErrAllPinned with every frame pinned", err)
	}
}

// TestShardedStatsCoherent is the stats-tearing regression test: Stats and
// ResetStats race a storm of Gets, and every snapshot must be internally
// consistent — non-negative counters and a hit rate inside [0, 1].  Before
// the per-shard coherent snapshots, an aggregate reading counters without
// the shard locks could observe a Get half-applied (Misses ticked, Hits
// not) and produce rates outside the range; under -race it was also a
// straight data race.
func TestShardedStatsCoherent(t *testing.T) {
	b := &lockedBacking{pages: make(map[page.ID]byte)}
	for i := 1; i <= 32; i++ {
		b.pages[page.ID(i)] = byte(i)
	}
	p, err := NewSharded(8, 4, b.fetch, b.evict)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := page.ID((g*11+i)%32 + 1)
				if _, err := p.Get(id); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				p.Unpin(id)
			}
		}()
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		s := p.Stats()
		if s.Hits < 0 || s.Misses < 0 || s.Evictions < 0 {
			t.Fatalf("negative counters: %+v", s)
		}
		if hr := s.HitRate(); hr < 0 || hr > 1 {
			t.Fatalf("hit rate %v outside [0, 1] (stats %+v)", hr, s)
		}
		for _, ss := range p.ShardStats() {
			if ss.Hits < 0 || ss.Misses < 0 {
				t.Fatalf("negative per-shard counters: %+v", ss)
			}
		}
		p.ResetStats()
	}
	close(stop)
	wg.Wait()
}

// TestShardBusyLatchFlags is the busy-visibility regression test for
// Flags: while a fetch is in flight the frame exists but its dirty flag is
// undecided (a fetch served by a write-back flash cache sets it only when
// the I/O returns).  Flags must wait for the latch and report the settled
// flags; the old frame-map-only answer reported the page clean.
func TestShardBusyLatchFlags(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	fetch := func(id page.ID, buf page.Buf) (bool, error) {
		started <- struct{}{}
		<-gate // the "device" holds the read until the test releases it
		buf.Init(id, page.TypeHeap)
		return true, nil // flash cache held a newer-than-disk copy
	}
	p, err := New(2, fetch, nil)
	if err != nil {
		t.Fatal(err)
	}
	go p.Get(7)
	<-started

	type answer struct {
		dirty, fdirty bool
		err           error
	}
	got := make(chan answer, 1)
	go func() {
		d, fd, err := p.Flags(7)
		got <- answer{d, fd, err}
	}()
	select {
	case a := <-got:
		t.Fatalf("Flags answered %+v while the fetch was still in flight", a)
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	select {
	case a := <-got:
		if a.err != nil {
			t.Fatal(a.err)
		}
		if !a.dirty || a.fdirty {
			t.Fatalf("flags after flash fetch: dirty=%v fdirty=%v, want true/false", a.dirty, a.fdirty)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Flags never answered after the fetch completed")
	}
}

// TestShardBusyLatchContains: a page mid-eviction (write-back still in
// flight on a gated device) must not be reported by Contains until the
// write-back lands — the caller would otherwise conclude the page is gone
// from DRAM and its backing copy current while the only current copy is
// still in the air.
func TestShardBusyLatchContains(t *testing.T) {
	gate := make(chan struct{})
	evicting := make(chan struct{}, 1)
	var landed atomic.Bool
	fetch := func(id page.ID, buf page.Buf) (bool, error) {
		buf.Init(id, page.TypeHeap)
		return false, nil
	}
	evict := func(v Victim) error {
		evicting <- struct{}{}
		<-gate
		landed.Store(true)
		return nil
	}
	p, err := New(1, fetch, evict)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(1); err != nil {
		t.Fatal(err)
	}
	p.MarkDirty(1)
	p.Unpin(1)
	// Loading page 2 evicts page 1; the eviction blocks on the gate.
	go p.Get(2)
	<-evicting

	got := make(chan bool, 1)
	go func() { got <- p.Contains(1) }()
	select {
	case ok := <-got:
		t.Fatalf("Contains(1) answered %v while the write-back was in flight", ok)
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	select {
	case ok := <-got:
		if !landed.Load() {
			t.Fatal("Contains answered before the write-back landed")
		}
		if ok {
			t.Fatal("evicted page still reported resident")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Contains never answered after the write-back landed")
	}
}

// TestPoolClosePinWaitWakeup is the shutdown-hang regression test: a Get
// parked on the all-pinned condition is woken by Close and fails with
// ErrClosed instead of hanging forever (no Unpin or DropAll ever arrives
// on a close path that flushes and stops).
func TestPoolClosePinWaitWakeup(t *testing.T) {
	b := &lockedBacking{pages: map[page.ID]byte{}}
	p, err := New(2, b.fetch, b.evict)
	if err != nil {
		t.Fatal(err)
	}
	p.SetPinWait(true)
	if _, err := p.Get(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(2); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := p.Get(3)
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("Get on an all-pinned pool returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	p.Close()
	select {
	case err := <-got:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("woken pin-waiter got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pin-waiter not woken by Close")
	}
	// New work on a closed pool fails fast.
	if _, err := p.Get(4); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close: got %v, want ErrClosed", err)
	}
	if _, err := p.Put(5, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: got %v, want ErrClosed", err)
	}
	// Close is idempotent.
	p.Close()
}
