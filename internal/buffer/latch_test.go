package buffer

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/reprolab/face/internal/page"
)

// lockedBacking is a thread-safe backing store whose pages carry a
// deterministic fill pattern, so torn fetches are detectable.
type lockedBacking struct {
	mu    sync.Mutex
	pages map[page.ID]byte
}

func (b *lockedBacking) fetch(id page.ID, buf page.Buf) (bool, error) {
	b.mu.Lock()
	v := b.pages[id]
	b.mu.Unlock()
	buf.Init(id, page.TypeHeap)
	for i := page.HeaderSize; i < len(buf); i++ {
		buf[i] = v
	}
	return false, nil
}

func (b *lockedBacking) evict(v Victim) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if v.Dirty {
		b.pages[v.ID] = v.Data[page.HeaderSize]
	}
	return nil
}

// TestConcurrentGetUnpin hammers a small pool from many goroutines so that
// concurrent misses, evictions and re-fetches of the same pages overlap.
// Run under -race it verifies the frame latching: no goroutine may observe
// a half-loaded frame (the fill pattern would be torn) and pin accounting
// must stay balanced.
func TestConcurrentGetUnpin(t *testing.T) {
	const (
		pages      = 64
		capacity   = 8
		goroutines = 16
		iterations = 400
	)
	b := &lockedBacking{pages: make(map[page.ID]byte)}
	for i := 1; i <= pages; i++ {
		b.pages[page.ID(i)] = byte(i)
	}
	p, err := New(capacity, b.fetch, b.evict)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				id := page.ID((g*7+i)%pages + 1)
				buf, err := p.Get(id)
				if err != nil {
					t.Errorf("Get(%d): %v", id, err)
					return
				}
				want := buf[page.HeaderSize]
				for j := page.HeaderSize; j < len(buf); j += 512 {
					if buf[j] != want {
						t.Errorf("page %d: torn read at offset %d: %d != %d", id, j, buf[j], want)
						break
					}
				}
				if buf.ID() != id {
					t.Errorf("Get(%d) returned page %d", id, buf.ID())
				}
				if err := p.Unpin(id); err != nil {
					t.Errorf("Unpin(%d): %v", id, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// All pins released: every resident page must be evictable again.
	for _, id := range p.ResidentIDs() {
		if _, err := p.Get(id); err != nil {
			t.Fatalf("Get(%d) after drain: %v", id, err)
		}
		if err := p.Unpin(id); err != nil {
			t.Fatalf("Unpin(%d) after drain: %v", id, err)
		}
	}
	s := p.Stats()
	if s.Misses == 0 || s.Evictions == 0 {
		t.Fatalf("workload did not exercise misses/evictions: %+v", s)
	}
}

// TestConcurrentSameMissLoadsOnce checks that concurrent Gets for the same
// absent page coalesce on one fetch rather than racing the frame.
func TestConcurrentSameMissLoadsOnce(t *testing.T) {
	var mu sync.Mutex
	fetches := 0
	fetch := func(id page.ID, buf page.Buf) (bool, error) {
		mu.Lock()
		fetches++
		mu.Unlock()
		buf.Init(id, page.TypeHeap)
		return false, nil
	}
	p, err := New(4, fetch, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Get(7); err != nil {
				t.Error(err)
				return
			}
			p.Unpin(7)
		}()
	}
	wg.Wait()
	if fetches != 1 {
		t.Fatalf("page 7 fetched %d times, want 1", fetches)
	}
}

// TestPinWaitBlocksInsteadOfFailing: with SetPinWait(true) an all-pinned
// pool parks the allocating goroutine until a pin is released, instead of
// returning ErrAllPinned.
func TestPinWaitBlocksInsteadOfFailing(t *testing.T) {
	b := &lockedBacking{pages: map[page.ID]byte{}}
	p, err := New(2, b.fetch, b.evict)
	if err != nil {
		t.Fatal(err)
	}
	p.SetPinWait(true)

	if _, err := p.Get(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(2); err != nil {
		t.Fatal(err)
	}

	got := make(chan error, 1)
	go func() {
		_, err := p.Get(3)
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("Get on an all-pinned pool returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	if err := p.Unpin(2); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("Get after unpin: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pin-waiter not woken by Unpin")
	}
	if s := p.Stats(); s.PinWaits == 0 {
		t.Fatalf("PinWaits = 0, want waits recorded: %+v", s)
	}
	// Fail-fast behaviour is untouched by default (see
	// TestPinPreventsEviction) and restorable at runtime.
	p.SetPinWait(false)
	if _, err := p.Get(4); !errors.Is(err, ErrAllPinned) {
		t.Fatalf("got %v, want ErrAllPinned after SetPinWait(false)", err)
	}
}

// TestPinWaitManyWaiters: several goroutines wait on a saturated pool and
// all complete as pins drain.
func TestPinWaitManyWaiters(t *testing.T) {
	b := &lockedBacking{pages: map[page.ID]byte{}}
	p, err := New(4, b.fetch, b.evict)
	if err != nil {
		t.Fatal(err)
	}
	p.SetPinWait(true)
	for id := page.ID(1); id <= 4; id++ {
		if _, err := p.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id page.ID) {
			defer wg.Done()
			if _, err := p.Get(id); err != nil {
				errs <- err
				return
			}
			errs <- p.Unpin(id)
		}(page.ID(10 + i))
	}
	// Release the saturating pins one by one; every waiter must finish.
	for id := page.ID(1); id <= 4; id++ {
		time.Sleep(time.Millisecond)
		if err := p.Unpin(id); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
