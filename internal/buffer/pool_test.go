package buffer

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"github.com/reprolab/face/internal/page"
)

// testBacking simulates a backing store keyed by page id.
type testBacking struct {
	pages    map[page.ID]byte
	fetches  int
	evicted  []Victim
	fetchErr error
	evictErr error
}

func newTestBacking() *testBacking {
	return &testBacking{pages: make(map[page.ID]byte)}
}

func (b *testBacking) fetch(id page.ID, buf page.Buf) (bool, error) {
	if b.fetchErr != nil {
		return false, b.fetchErr
	}
	b.fetches++
	buf.Init(id, page.TypeHeap)
	buf[page.HeaderSize] = b.pages[id]
	return false, nil
}

func (b *testBacking) evict(v Victim) error {
	if b.evictErr != nil {
		return b.evictErr
	}
	cp := v
	cp.Data = v.Data.Clone()
	b.evicted = append(b.evicted, cp)
	if v.Dirty {
		b.pages[v.ID] = v.Data[page.HeaderSize]
	}
	return nil
}

func newPool(t *testing.T, capacity int, b *testBacking) *Pool {
	t.Helper()
	p, err := New(capacity, b.fetch, b.evict)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewBadCapacity(t *testing.T) {
	if _, err := New(0, nil, nil); !errors.Is(err, ErrBadCapacity) {
		t.Fatalf("got %v, want ErrBadCapacity", err)
	}
}

func TestGetHitAndMiss(t *testing.T) {
	b := newTestBacking()
	b.pages[7] = 42
	p := newPool(t, 4, b)

	buf, err := p.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if buf[page.HeaderSize] != 42 {
		t.Fatalf("fetched content = %d, want 42", buf[page.HeaderSize])
	}
	if err := p.Unpin(7); err != nil {
		t.Fatal(err)
	}
	// Second access is a hit; no further fetch.
	if _, err := p.Get(7); err != nil {
		t.Fatal(err)
	}
	p.Unpin(7)
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 || b.fetches != 1 {
		t.Fatalf("stats = %+v, fetches = %d", s, b.fetches)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", s.HitRate())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	b := newTestBacking()
	p := newPool(t, 3, b)
	for id := page.ID(1); id <= 3; id++ {
		if _, err := p.Get(id); err != nil {
			t.Fatal(err)
		}
		p.Unpin(id)
	}
	// Touch page 1 so page 2 becomes LRU.
	p.Get(1)
	p.Unpin(1)
	// Insert page 4: page 2 must be evicted.
	if _, err := p.Get(4); err != nil {
		t.Fatal(err)
	}
	p.Unpin(4)
	if len(b.evicted) != 1 || b.evicted[0].ID != 2 {
		t.Fatalf("evicted %v, want page 2", b.evicted)
	}
	if p.Contains(2) {
		t.Fatal("page 2 still resident after eviction")
	}
}

func TestDirtyFlagsOnEviction(t *testing.T) {
	b := newTestBacking()
	p := newPool(t, 2, b)
	buf, _ := p.Get(1)
	buf[page.HeaderSize] = 99
	p.MarkDirty(1)
	p.Unpin(1)
	p.Get(2)
	p.Unpin(2)
	// Evict page 1 by loading a third page.
	p.Get(3)
	p.Unpin(3)
	if len(b.evicted) != 1 {
		t.Fatalf("evicted %d pages, want 1", len(b.evicted))
	}
	v := b.evicted[0]
	if v.ID != 1 || !v.Dirty || !v.FDirty {
		t.Fatalf("victim = %+v, want dirty page 1", v)
	}
	if b.pages[1] != 99 {
		t.Fatal("dirty content not propagated to backing store")
	}
	s := p.Stats()
	if s.DirtyEvictions != 1 || s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPinPreventsEviction(t *testing.T) {
	b := newTestBacking()
	p := newPool(t, 2, b)
	p.Get(1) // stays pinned
	p.Get(2) // stays pinned
	if _, err := p.Get(3); !errors.Is(err, ErrAllPinned) {
		t.Fatalf("got %v, want ErrAllPinned", err)
	}
	p.Unpin(2)
	if _, err := p.Get(3); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
	if p.Contains(2) {
		t.Fatal("page 2 should have been evicted")
	}
	if !p.Contains(1) {
		t.Fatal("pinned page 1 must remain resident")
	}
}

func TestUnpinErrors(t *testing.T) {
	b := newTestBacking()
	p := newPool(t, 2, b)
	if err := p.Unpin(9); !errors.Is(err, ErrNotResident) {
		t.Fatalf("got %v, want ErrNotResident", err)
	}
	p.Get(1)
	p.Unpin(1)
	if err := p.Unpin(1); err == nil {
		t.Fatal("double unpin should fail")
	}
	if err := p.MarkDirty(9); !errors.Is(err, ErrNotResident) {
		t.Fatalf("MarkDirty: got %v, want ErrNotResident", err)
	}
	if _, _, err := p.Flags(9); !errors.Is(err, ErrNotResident) {
		t.Fatalf("Flags: got %v, want ErrNotResident", err)
	}
}

func TestFetchFromFlashSetsDirtyOnly(t *testing.T) {
	// A fetch that reports dirty=true (flash cache holding a newer-than-
	// disk copy) must leave dirty set and fdirty clear, per Algorithm 1.
	fetch := func(id page.ID, buf page.Buf) (bool, error) {
		buf.Init(id, page.TypeHeap)
		return true, nil
	}
	p, err := New(2, fetch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(5); err != nil {
		t.Fatal(err)
	}
	dirty, fdirty, err := p.Flags(5)
	if err != nil {
		t.Fatal(err)
	}
	if !dirty || fdirty {
		t.Fatalf("flags after flash fetch: dirty=%v fdirty=%v, want true/false", dirty, fdirty)
	}
}

func TestPutNewPage(t *testing.T) {
	b := newTestBacking()
	p := newPool(t, 2, b)
	buf, err := p.Put(10, func(buf page.Buf) { buf.Init(10, page.TypeHeap) })
	if err != nil {
		t.Fatal(err)
	}
	if buf.ID() != 10 {
		t.Fatalf("Put page id = %d", buf.ID())
	}
	dirty, fdirty, _ := p.Flags(10)
	if !dirty || !fdirty {
		t.Fatal("new page must be dirty and fdirty")
	}
	if b.fetches != 0 {
		t.Fatal("Put must not call fetch")
	}
	p.Unpin(10)
	// Put on a resident page re-pins it.
	if _, err := p.Put(10, nil); err != nil {
		t.Fatal(err)
	}
	p.Unpin(10)
}

func TestFetchErrorPropagates(t *testing.T) {
	b := newTestBacking()
	b.fetchErr = fmt.Errorf("boom")
	p := newPool(t, 2, b)
	if _, err := p.Get(1); err == nil {
		t.Fatal("expected fetch error")
	}
	if p.Len() != 0 {
		t.Fatal("failed fetch left a frame behind")
	}
}

func TestEvictErrorPropagates(t *testing.T) {
	b := newTestBacking()
	p := newPool(t, 1, b)
	p.Get(1)
	p.Unpin(1)
	b.evictErr = fmt.Errorf("evict boom")
	if _, err := p.Get(2); err == nil {
		t.Fatal("expected eviction error")
	}
}

func TestFlushDirty(t *testing.T) {
	b := newTestBacking()
	p := newPool(t, 4, b)
	for id := page.ID(1); id <= 3; id++ {
		buf, _ := p.Get(id)
		buf[page.HeaderSize] = byte(id)
		p.MarkDirty(id)
		p.Unpin(id)
	}
	var flushed []page.ID
	err := p.FlushDirty(func(v Victim) error {
		flushed = append(flushed, v.ID)
		return nil
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(flushed, func(i, j int) bool { return flushed[i] < flushed[j] })
	if len(flushed) != 3 {
		t.Fatalf("flushed %v, want 3 pages", flushed)
	}
	// With syncedToDisk=false the dirty flag survives, fdirty is cleared.
	dirty, fdirty, _ := p.Flags(1)
	if !dirty || fdirty {
		t.Fatalf("flags after flash flush: dirty=%v fdirty=%v", dirty, fdirty)
	}
	// A second flush with syncedToDisk=true clears dirty too.
	if err := p.FlushDirty(func(v Victim) error { return nil }, true); err != nil {
		t.Fatal(err)
	}
	dirty, fdirty, _ = p.Flags(1)
	if dirty || fdirty {
		t.Fatalf("flags after disk flush: dirty=%v fdirty=%v", dirty, fdirty)
	}
	// Nothing dirty now: callback must not run.
	if err := p.FlushDirty(func(v Victim) error { t.Fatal("unexpected flush"); return nil }, true); err != nil {
		t.Fatal(err)
	}
	// Flush errors propagate.
	p.MarkDirty(1)
	if err := p.FlushDirty(func(v Victim) error { return fmt.Errorf("nope") }, true); err == nil {
		t.Fatal("expected flush error")
	}
}

func TestEvictBatch(t *testing.T) {
	b := newTestBacking()
	p := newPool(t, 5, b)
	for id := page.ID(1); id <= 5; id++ {
		buf, _ := p.Get(id)
		buf[page.HeaderSize] = byte(id)
		if id%2 == 0 {
			p.MarkDirty(id)
		}
		p.Unpin(id)
	}
	// Keep page 1 pinned: it must not be pulled.
	p.Get(1)
	victims := p.EvictBatch(3)
	if len(victims) != 3 {
		t.Fatalf("EvictBatch returned %d victims, want 3", len(victims))
	}
	for _, v := range victims {
		if v.ID == 1 {
			t.Fatal("pinned page pulled by EvictBatch")
		}
		if (v.ID%2 == 0) != v.Dirty {
			t.Fatalf("victim %d dirty flag = %v", v.ID, v.Dirty)
		}
		if v.Data[page.HeaderSize] != byte(v.ID) {
			t.Fatalf("victim %d content mismatch", v.ID)
		}
	}
	if len(b.evicted) != 0 {
		t.Fatal("EvictBatch must not invoke the eviction callback")
	}
	if p.Len() != 2 {
		t.Fatalf("resident pages = %d, want 2", p.Len())
	}
	// LRU order: the oldest unpinned pages (2, 3, 4) are pulled first.
	ids := []page.ID{victims[0].ID, victims[1].ID, victims[2].ID}
	if ids[0] != 2 || ids[1] != 3 || ids[2] != 4 {
		t.Fatalf("EvictBatch order = %v, want [2 3 4]", ids)
	}
}

func TestDropAll(t *testing.T) {
	b := newTestBacking()
	p := newPool(t, 4, b)
	for id := page.ID(1); id <= 4; id++ {
		p.Get(id)
		p.MarkDirty(id)
		p.Unpin(id)
	}
	p.DropAll()
	if p.Len() != 0 {
		t.Fatalf("Len after DropAll = %d", p.Len())
	}
	if len(b.evicted) != 0 {
		t.Fatal("DropAll must not write anything")
	}
	if len(p.ResidentIDs()) != 0 {
		t.Fatal("ResidentIDs non-empty after DropAll")
	}
}

func TestResetStats(t *testing.T) {
	b := newTestBacking()
	p := newPool(t, 2, b)
	p.Get(1)
	p.Unpin(1)
	p.ResetStats()
	if s := p.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty stats hit rate should be 0")
	}
}

func TestCapacityAccessor(t *testing.T) {
	b := newTestBacking()
	p := newPool(t, 7, b)
	if p.Capacity() != 7 {
		t.Fatalf("Capacity = %d", p.Capacity())
	}
}
