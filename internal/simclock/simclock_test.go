package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestZeroValueStartsAtZero(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	c.Advance(5 * time.Millisecond)
	c.Advance(7 * time.Millisecond)
	if got, want := c.Now(), 12*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceIgnoresNegative(t *testing.T) {
	c := New()
	c.Advance(3 * time.Second)
	c.Advance(-time.Second)
	if got, want := c.Now(), 3*time.Second; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceToIsMonotonic(t *testing.T) {
	c := New()
	c.AdvanceTo(10 * time.Second)
	c.AdvanceTo(4 * time.Second) // stale estimate, ignored
	if got, want := c.Now(), 10*time.Second; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	c.AdvanceTo(11 * time.Second)
	if got, want := c.Now(), 11*time.Second; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Advance(time.Hour)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() after Reset = %v, want 0", got)
	}
}

func TestConcurrentAdvance(t *testing.T) {
	c := New()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Now(), workers*perWorker*time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestString(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	if got := c.String(); got == "" {
		t.Fatal("String() returned empty")
	}
}
