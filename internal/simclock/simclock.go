// Package simclock provides a virtual clock measured in simulated
// nanoseconds.  All performance experiments in this repository run against
// simulated storage devices; the clock lets the engine and the benchmark
// harness reason about elapsed simulated time (checkpoint intervals,
// throughput, restart latency) deterministically and independently of wall
// clock time.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Duration is a span of simulated time.  It has the same resolution as
// time.Duration (nanoseconds) so the two convert trivially.
type Duration = time.Duration

// Clock is a monotonic simulated clock.  The zero value is a clock at time
// zero, ready to use.  Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now Duration
}

// New returns a clock starting at simulated time zero.
func New() *Clock { return &Clock{} }

// Now reports the current simulated time since the clock's origin.
func (c *Clock) Now() Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.  Negative d is ignored so the clock
// stays monotonic.
func (c *Clock) Advance(d Duration) Duration {
	if d <= 0 {
		return c.Now()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to t if t is later than the current
// simulated time.  It reports the resulting time.  Moving backwards is a
// no-op: the clock is monotonic by construction so repeated calls with
// stale estimates are harmless.
func (c *Clock) AdvanceTo(t Duration) Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset sets the clock back to simulated time zero.  It is intended for
// reuse between independent experiment runs, not for rewinding during one.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}

// String formats the current simulated time.
func (c *Clock) String() string {
	return fmt.Sprintf("simclock(%v)", c.Now())
}
