package metrics

import (
	"testing"
	"time"

	"github.com/reprolab/face/internal/device"
)

func TestElapsedBottleneck(t *testing.T) {
	m := Model{CPUPerPageAccess: 10 * time.Microsecond, CPUParallelism: 2}
	// CPU: 1000 accesses * 10µs / 2 = 5ms.  Disk: 20ms/4 = 5ms.  Flash: 8ms.
	elapsed := m.Elapsed(1000,
		Resource{Name: "disk", Busy: 20 * time.Millisecond, Parallelism: 4},
		Resource{Name: "flash", Busy: 8 * time.Millisecond, Parallelism: 1},
	)
	if elapsed != 8*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 8ms (flash bottleneck)", elapsed)
	}
	// Remove the flash: disk and CPU tie at 5ms.
	elapsed = m.Elapsed(1000, Resource{Name: "disk", Busy: 20 * time.Millisecond, Parallelism: 4})
	if elapsed != 5*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 5ms", elapsed)
	}
}

func TestElapsedDefaultsAndClamps(t *testing.T) {
	var m Model // zero: defaults apply
	elapsed := m.Elapsed(0, Resource{Busy: time.Second, Parallelism: 0})
	if elapsed != time.Second {
		t.Fatalf("parallelism 0 should be treated as 1, got %v", elapsed)
	}
	d := DefaultModel()
	if d.CPUPerPageAccess != DefaultCPUPerPageAccess || d.CPUParallelism != DefaultCPUParallelism {
		t.Fatal("DefaultModel mismatch")
	}
}

func TestDeviceResource(t *testing.T) {
	dev := device.New("flash", device.ProfileSamsung470, 8)
	buf := make([]byte, device.BlockSize)
	if err := dev.WriteAt(3, buf); err != nil {
		t.Fatal(err)
	}
	r := DeviceResource(dev)
	if r.Name != "flash" || r.Busy != dev.BusyTime() || r.Parallelism != 1 {
		t.Fatalf("DeviceResource = %+v", r)
	}
	arr := device.NewArray("raid", device.ProfileCheetah15K, 4, 100)
	if DeviceResource(arr).Parallelism != 4 {
		t.Fatal("array parallelism not propagated")
	}
	if DeviceResource(nil).Busy != 0 {
		t.Fatal("nil device should produce a zero resource")
	}
}

func TestUtilization(t *testing.T) {
	if u := Utilization(500*time.Millisecond, time.Second); u != 0.5 {
		t.Fatalf("Utilization = %v", u)
	}
	if u := Utilization(2*time.Second, time.Second); u != 1 {
		t.Fatalf("Utilization should clamp to 1, got %v", u)
	}
	if u := Utilization(time.Second, 0); u != 0 {
		t.Fatalf("Utilization with zero elapsed = %v", u)
	}
	if u := Utilization(-time.Second, time.Second); u != 0 {
		t.Fatalf("negative busy should clamp to 0, got %v", u)
	}
}

func TestIOPSAndPerMinute(t *testing.T) {
	if got := IOPS(1000, time.Second); got != 1000 {
		t.Fatalf("IOPS = %v", got)
	}
	if got := IOPS(1000, 0); got != 0 {
		t.Fatalf("IOPS with zero elapsed = %v", got)
	}
	if got := PerMinute(100, time.Minute); got != 100 {
		t.Fatalf("PerMinute = %v", got)
	}
	if got := PerMinute(100, 0); got != 0 {
		t.Fatalf("PerMinute with zero elapsed = %v", got)
	}
	if got := PerMinute(50, 30*time.Second); got != 100 {
		t.Fatalf("PerMinute = %v, want 100", got)
	}
}
