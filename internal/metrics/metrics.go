// Package metrics turns raw device statistics into the performance figures
// reported by the paper: elapsed simulated time, transactions per minute,
// device utilization and 4 KiB I/O throughput.
//
// The paper's experiments run 50 concurrent clients against PostgreSQL, so
// the storage devices operate as a closed system with their queues kept
// full.  Under that regime the elapsed wall-clock time of a workload is
// governed by its bottleneck resource.  The model here captures exactly
// that: each resource (CPU, flash device, each member of the disk array)
// accumulates busy time, and
//
//	elapsed = max over resources of (busy time / parallelism)
//
// Device utilization and I/O throughput follow directly from the same
// quantities.
package metrics

import (
	"time"

	"github.com/reprolab/face/internal/device"
)

// DefaultCPUPerPageAccess is the modelled CPU cost of one buffer-pool page
// access (latching, tuple manipulation, logging).  It bounds throughput
// when all I/O is absorbed by caches.
const DefaultCPUPerPageAccess = 5 * time.Microsecond

// DefaultCPUParallelism models the four cores of the paper's Core i7-860
// test machine.
const DefaultCPUParallelism = 4

// Model describes the non-storage resources of the system.
type Model struct {
	// CPUPerPageAccess is the CPU time charged per buffer-pool access.
	CPUPerPageAccess time.Duration
	// CPUParallelism is the number of cores available to overlap CPU work.
	CPUParallelism int
}

// DefaultModel returns the model used throughout the benchmarks.
func DefaultModel() Model {
	return Model{CPUPerPageAccess: DefaultCPUPerPageAccess, CPUParallelism: DefaultCPUParallelism}
}

func (m Model) normalized() Model {
	if m.CPUPerPageAccess <= 0 {
		m.CPUPerPageAccess = DefaultCPUPerPageAccess
	}
	if m.CPUParallelism <= 0 {
		m.CPUParallelism = DefaultCPUParallelism
	}
	return m
}

// Resource is one contributor to elapsed time.
type Resource struct {
	Name string
	// Busy is the total service time accumulated by the resource.
	Busy time.Duration
	// Parallelism is the number of requests the resource serves
	// concurrently (e.g. the number of member disks in a RAID-0 array).
	Parallelism int
}

// Elapsed returns the modelled elapsed time for a workload that performed
// pageAccesses buffer-pool accesses and kept the given resources busy.
func (m Model) Elapsed(pageAccesses int64, resources ...Resource) time.Duration {
	m = m.normalized()
	cpu := time.Duration(pageAccesses) * m.CPUPerPageAccess / time.Duration(m.CPUParallelism)
	elapsed := cpu
	for _, r := range resources {
		par := r.Parallelism
		if par < 1 {
			par = 1
		}
		if t := r.Busy / time.Duration(par); t > elapsed {
			elapsed = t
		}
	}
	return elapsed
}

// DeviceResource builds a Resource from a device.
func DeviceResource(d device.Dev) Resource {
	if d == nil {
		return Resource{}
	}
	return Resource{Name: d.Name(), Busy: d.BusyTime(), Parallelism: d.Parallelism()}
}

// Utilization returns busy/elapsed clamped to [0, 1].
func Utilization(busy, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	if u < 0 {
		u = 0
	}
	return u
}

// IOPS returns operations per second of elapsed time.
func IOPS(ops int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// PerMinute returns events per minute of elapsed time (the tpmC analog).
func PerMinute(events int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(events) / elapsed.Minutes()
}
