// Package metrics turns raw device statistics into the performance figures
// reported by the paper: elapsed simulated time, transactions per minute,
// device utilization and 4 KiB I/O throughput.
//
// The paper's experiments run 50 concurrent clients against PostgreSQL, so
// the storage devices operate as a closed system with their queues kept
// full.  Under that regime the elapsed wall-clock time of a workload is
// governed by its bottleneck resource.  The model here captures exactly
// that: each resource (CPU, flash device, each member of the disk array)
// accumulates busy time, and
//
//	elapsed = max over resources of (busy time / parallelism)
//
// Device utilization and I/O throughput follow directly from the same
// quantities.
package metrics

import (
	"time"

	"github.com/reprolab/face/internal/device"
)

// DefaultCPUPerPageAccess is the modelled CPU cost of one buffer-pool page
// access (latching, tuple manipulation, logging).  It bounds throughput
// when all I/O is absorbed by caches.
const DefaultCPUPerPageAccess = 5 * time.Microsecond

// DefaultCPUParallelism models the four cores of the paper's Core i7-860
// test machine.
const DefaultCPUParallelism = 4

// Model describes the non-storage resources of the system.
type Model struct {
	// CPUPerPageAccess is the CPU time charged per buffer-pool access.
	CPUPerPageAccess time.Duration
	// CPUParallelism is the number of cores available to overlap CPU work.
	CPUParallelism int
}

// DefaultModel returns the model used throughout the benchmarks.
func DefaultModel() Model {
	return Model{CPUPerPageAccess: DefaultCPUPerPageAccess, CPUParallelism: DefaultCPUParallelism}
}

func (m Model) normalized() Model {
	if m.CPUPerPageAccess <= 0 {
		m.CPUPerPageAccess = DefaultCPUPerPageAccess
	}
	if m.CPUParallelism <= 0 {
		m.CPUParallelism = DefaultCPUParallelism
	}
	return m
}

// Resource is one contributor to elapsed time.
type Resource struct {
	Name string
	// Busy is the total service time accumulated by the resource.
	Busy time.Duration
	// Parallelism is the number of requests the resource serves
	// concurrently (e.g. the number of member disks in a RAID-0 array).
	Parallelism int
}

// Elapsed returns the modelled elapsed time for a workload that performed
// pageAccesses buffer-pool accesses and kept the given resources busy.
func (m Model) Elapsed(pageAccesses int64, resources ...Resource) time.Duration {
	m = m.normalized()
	cpu := time.Duration(pageAccesses) * m.CPUPerPageAccess / time.Duration(m.CPUParallelism)
	elapsed := cpu
	for _, r := range resources {
		par := r.Parallelism
		if par < 1 {
			par = 1
		}
		if t := r.Busy / time.Duration(par); t > elapsed {
			elapsed = t
		}
	}
	return elapsed
}

// DeviceResource builds a Resource from a device.
func DeviceResource(d device.Dev) Resource {
	if d == nil {
		return Resource{}
	}
	return Resource{Name: d.Name(), Busy: d.BusyTime(), Parallelism: d.Parallelism()}
}

// PipelineStats captures the activity of the asynchronous flash I/O
// pipeline (internal/iosched): the staging ring the DRAM buffer evicts
// into, the group writer that batches staged pages into sequential flash
// writes, and the destager workers that drain cold dirty pages to disk.
//
// All fields are cumulative counters so two snapshots can be subtracted to
// measure a window of work, except the *Max* fields, which are high-water
// marks.
type PipelineStats struct {
	// Staged is the number of pages accepted into the staging ring.
	Staged int64
	// Stalls counts Put calls that blocked on a full ring (backpressure).
	Stalls int64
	// StallTime is the total wall-clock time producers spent blocked on a
	// full staging ring.
	StallTime time.Duration
	// MaxDepth is the staging ring occupancy high-water mark.
	MaxDepth int64
	// Coalesced counts staged pages that were superseded in place by a
	// newer version of the same page before reaching flash (write
	// coalescing in the ring).
	Coalesced int64

	// Batches is the number of group-writer flushes and BatchPages the
	// total pages they carried; BatchPages/Batches is the mean group fill.
	Batches    int64
	BatchPages int64

	// Destages is the number of dirty pages handed to the destager and
	// DestageWrites the number actually written to disk (stale versions
	// superseded in the queue are skipped).
	Destages      int64
	DestageWrites int64
	// DestageMaxDepth is the destage queue occupancy high-water mark.
	DestageMaxDepth int64
	// ReuseWaits counts group writes that had to wait for a destage to
	// land before a flash frame slot could be reused.
	ReuseWaits int64

	// RingHits and DestageHits count cache lookups served from the staging
	// ring and from the in-flight destage buffer respectively.
	RingHits    int64
	DestageHits int64
}

// GroupFill returns the mean number of pages per group-writer flush.
func (p PipelineStats) GroupFill() float64 {
	if p.Batches == 0 {
		return 0
	}
	return float64(p.BatchPages) / float64(p.Batches)
}

// Sub returns the counter difference p - prior; high-water marks are taken
// from p unchanged.
func (p PipelineStats) Sub(prior PipelineStats) PipelineStats {
	return PipelineStats{
		Staged:          p.Staged - prior.Staged,
		Stalls:          p.Stalls - prior.Stalls,
		StallTime:       p.StallTime - prior.StallTime,
		MaxDepth:        p.MaxDepth,
		Coalesced:       p.Coalesced - prior.Coalesced,
		Batches:         p.Batches - prior.Batches,
		BatchPages:      p.BatchPages - prior.BatchPages,
		Destages:        p.Destages - prior.Destages,
		DestageWrites:   p.DestageWrites - prior.DestageWrites,
		DestageMaxDepth: p.DestageMaxDepth,
		ReuseWaits:      p.ReuseWaits - prior.ReuseWaits,
		RingHits:        p.RingHits - prior.RingHits,
		DestageHits:     p.DestageHits - prior.DestageHits,
	}
}

// ShardStats is the per-shard breakdown of buffer pool activity under the
// striped pool: one coherent counter snapshot per shard.  Comparing shards
// diagnoses stripe imbalance (a hot page id range funnelling into one
// shard's mutex).
type ShardStats struct {
	// Shard is the shard index, in pool order.
	Shard int
	// Hits/Misses/Evictions/DirtyEvictions/PinWaits mirror the pool-wide
	// counters, restricted to this shard.
	Hits           int64
	Misses         int64
	Evictions      int64
	DirtyEvictions int64
	PinWaits       int64
}

// Accesses returns the shard's buffer access count.
func (s ShardStats) Accesses() int64 { return s.Hits + s.Misses }

// ShardImbalance returns the ratio of the busiest shard's access count to
// the mean across shards (1.0 = perfectly even, N = everything on one of N
// shards).  It returns 0 when there are no shards or no accesses.
func ShardImbalance(shards []ShardStats) float64 {
	counts := make([]int64, len(shards))
	for i, s := range shards {
		counts[i] = s.Accesses()
	}
	return imbalanceRatio(counts)
}

// imbalanceRatio returns busiest/mean over the given per-slot counts, or 0
// for no slots / all-zero counts.  It is the shared core of ShardImbalance
// and StripeImbalance.
func imbalanceRatio(counts []int64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var total, max int64
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(counts))
	return float64(max) / mean
}

// CacheStripeStats is the per-stripe breakdown of flash cache lookup
// activity under the striped directory: one coherent counter snapshot per
// stripe, in stripe order.  Comparing stripes diagnoses directory hot
// spots the same way ShardStats does for the buffer pool.
type CacheStripeStats struct {
	// Stripe is the stripe index, in directory order.
	Stripe int
	// Lookups/Hits/FlashReads mirror the cache-wide lookup counters,
	// restricted to this stripe.
	Lookups    int64
	Hits       int64
	FlashReads int64
}

// StripeImbalance returns the ratio of the busiest stripe's lookup count
// to the mean across stripes (1.0 = perfectly even, N = every probe on one
// of N stripes).  It returns 0 when there are no stripes or no lookups.
func StripeImbalance(stripes []CacheStripeStats) float64 {
	counts := make([]int64, len(stripes))
	for i, s := range stripes {
		counts[i] = s.Lookups
	}
	return imbalanceRatio(counts)
}

// LockStats captures the activity of the page-level lock manager
// (internal/lock) behind the multi-writer transaction scheduler.  All
// fields are cumulative counters; two snapshots subtract to measure a
// window of work.
type LockStats struct {
	// SharedGrants and ExclusiveGrants count granted lock requests by
	// mode (re-entrant requests on an already-held lock are not counted).
	SharedGrants    int64
	ExclusiveGrants int64
	// Upgrades counts S→X upgrades granted on a lock the transaction
	// already held shared.
	Upgrades int64
	// Waits counts requests that blocked, and WaitTime the total
	// wall-clock time they spent blocked.
	Waits    int64
	WaitTime time.Duration
	// Deadlocks counts requests refused with ErrDeadlock.
	Deadlocks int64
	// Cancels counts waits abandoned because the caller's context ended.
	Cancels int64
}

// Grants returns the total number of granted lock requests.
func (l LockStats) Grants() int64 { return l.SharedGrants + l.ExclusiveGrants + l.Upgrades }

// Sub returns the counter difference l - prior.
func (l LockStats) Sub(prior LockStats) LockStats {
	return LockStats{
		SharedGrants:    l.SharedGrants - prior.SharedGrants,
		ExclusiveGrants: l.ExclusiveGrants - prior.ExclusiveGrants,
		Upgrades:        l.Upgrades - prior.Upgrades,
		Waits:           l.Waits - prior.Waits,
		WaitTime:        l.WaitTime - prior.WaitTime,
		Deadlocks:       l.Deadlocks - prior.Deadlocks,
		Cancels:         l.Cancels - prior.Cancels,
	}
}

// GroupCommitStats captures the batching behaviour of the write-ahead
// log's leader/follower group-commit protocol: how many Force calls needed
// log I/O, how many device writes actually happened, and how many callers
// rode along on another caller's write.
type GroupCommitStats struct {
	// Requests counts Force calls that found the log not yet durable at
	// their LSN (calls satisfied without I/O by an earlier force are not
	// counted).
	Requests int64
	// Forces counts device writes performed (the same quantity as
	// wal.Manager.Forces).
	Forces int64
	// Piggybacked counts requests satisfied by another caller's device
	// write: the group-commit fan-in is Requests / Forces.
	Piggybacked int64
}

// FanIn returns the mean number of force requests satisfied per device
// write (1.0 = no batching).
func (g GroupCommitStats) FanIn() float64 {
	if g.Forces == 0 {
		return 0
	}
	return float64(g.Requests) / float64(g.Forces)
}

// Sub returns the counter difference g - prior.
func (g GroupCommitStats) Sub(prior GroupCommitStats) GroupCommitStats {
	return GroupCommitStats{
		Requests:    g.Requests - prior.Requests,
		Forces:      g.Forces - prior.Forces,
		Piggybacked: g.Piggybacked - prior.Piggybacked,
	}
}

// WalStats captures the activity of the write-ahead log's commit pipeline:
// the lock-free reservation ring the appenders copy into, the dedicated
// syncer goroutine that coalesces Force requests into device writes, and
// the fsync barrier.  All fields are cumulative counters; two snapshots
// subtract to measure a window of work.
type WalStats struct {
	// Appends counts records appended to the log.
	Appends int64
	// ReserveStalls counts Append reservations that found the log buffer
	// ring full and had to wait for the syncer to drain it.
	ReserveStalls int64
	// CopyWaits counts syncer flush rounds that had to wait for an
	// in-flight record copy to publish before the high-water mark covered
	// the requested LSN, and CopyWaitTime the total wall-clock time spent
	// in those waits.
	CopyWaits    int64
	CopyWaitTime time.Duration
	// ForceRequests counts Force calls that found the log not yet durable
	// at their LSN, Forces the flush rounds that performed device I/O for
	// them, and Piggybacked the requests satisfied by another request's
	// round: ForceRequests / Forces is the syncer's coalesce factor.
	ForceRequests int64
	Forces        int64
	Piggybacked   int64
	// Syncs counts durability barriers issued (fsync on file-backed
	// devices, free on simulated ones) and SyncTime their total wall-clock
	// latency.
	Syncs    int64
	SyncTime time.Duration
	// DurableWaits counts committers parked on the durable-LSN waitlist.
	DurableWaits int64
	// TornSlotWrites counts partial tail blocks staged through the
	// double-write slot before being rewritten in place.
	TornSlotWrites int64
}

// CoalesceFactor returns the mean number of force requests satisfied per
// device-write round (1.0 = no coalescing).
func (w WalStats) CoalesceFactor() float64 {
	if w.Forces == 0 {
		return 0
	}
	return float64(w.ForceRequests) / float64(w.Forces)
}

// Sub returns the counter difference w - prior.
func (w WalStats) Sub(prior WalStats) WalStats {
	return WalStats{
		Appends:        w.Appends - prior.Appends,
		ReserveStalls:  w.ReserveStalls - prior.ReserveStalls,
		CopyWaits:      w.CopyWaits - prior.CopyWaits,
		CopyWaitTime:   w.CopyWaitTime - prior.CopyWaitTime,
		ForceRequests:  w.ForceRequests - prior.ForceRequests,
		Forces:         w.Forces - prior.Forces,
		Piggybacked:    w.Piggybacked - prior.Piggybacked,
		Syncs:          w.Syncs - prior.Syncs,
		SyncTime:       w.SyncTime - prior.SyncTime,
		DurableWaits:   w.DurableWaits - prior.DurableWaits,
		TornSlotWrites: w.TornSlotWrites - prior.TornSlotWrites,
	}
}

// Utilization returns busy/elapsed clamped to [0, 1].
func Utilization(busy, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	if u < 0 {
		u = 0
	}
	return u
}

// IOPS returns operations per second of elapsed time.
func IOPS(ops int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// PerMinute returns events per minute of elapsed time (the tpmC analog).
func PerMinute(events int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(events) / elapsed.Minutes()
}
