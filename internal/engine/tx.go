package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/reprolab/face/internal/lock"
	"github.com/reprolab/face/internal/obs/trace"
	"github.com/reprolab/face/internal/page"
	"github.com/reprolab/face/internal/wal"
)

// Tx is a transaction.  Transactions started with Begin are unscheduled:
// the caller is responsible for running one at a time, as the benchmark
// harness does.  Transactions started with View and Update go through the
// transaction scheduler (see sched.go) and may run concurrently: any
// number of View transactions in parallel, and — under Config.PageLocks —
// Update transactions in parallel too, isolated by page-granularity
// strict two-phase locking.
type Tx struct {
	db   *DB
	id   wal.TxID
	done bool
	// readonly rejects Modify and Alloc with ErrConflict (View).
	readonly bool
	// managed rejects manual Commit/Abort: the scheduler that created the
	// transaction finishes it (View/Update closures).
	managed bool

	// locks is the page lock manager for scheduled transactions under
	// Config.PageLocks: Read takes a shared lock, Modify and Alloc an
	// exclusive one, all held until commit or abort (strict 2PL).  It is
	// nil for unscheduled transactions and under the single-writer
	// scheduler.
	locks *lock.Manager
	// ctx bounds lock waits; a cancelled context unblocks a queued
	// request and the transaction rolls back.
	ctx context.Context

	// undo keeps the before images of this transaction's changes so Abort
	// can roll them back without reading the log backwards.
	undo []undoRecord

	// tr accumulates the commit-path phase trace for write transactions
	// (nil when observability is disabled — every hook below starts with
	// that nil check).
	tr *txTrace
}

type undoRecord struct {
	pageID page.ID
	offset uint16
	before []byte
}

// Begin starts a new unscheduled read-write transaction.  Most callers
// should prefer View or Update, which schedule concurrent transactions and
// finish them automatically.  Unscheduled transactions bypass the page
// lock manager, so they must not run concurrently with anything else.
func (db *DB) Begin() (*Tx, error) {
	tx, err := db.beginTx(nil, false)
	if err != nil {
		return nil, err
	}
	if db.obs != nil {
		tx.tr = &txTrace{start: time.Now()}
	}
	return tx, nil
}

// beginTx starts a transaction.  A nil ctx marks it unscheduled (no page
// locks); scheduled transactions inherit the lock manager when the
// database runs under Config.PageLocks.
func (db *DB) beginTx(ctx context.Context, readonly bool) (*Tx, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.crashed {
		return nil, ErrCrashed
	}
	if db.closed {
		return nil, ErrClosed
	}
	if err := db.loadIOErr(); err != nil {
		return nil, err
	}
	tx := &Tx{db: db, id: db.nextTx, readonly: readonly}
	if ctx != nil {
		tx.ctx = ctx
		tx.locks = db.locks
	}
	db.nextTx++
	return tx, nil
}

// ctxErr reports whether the transaction's context has ended.  Every
// page operation checks it, so a request whose deadline expired or whose
// client went away stops at the next operation instead of running its
// closure to completion — the scheduler then rolls the transaction back.
// Unscheduled transactions (nil ctx) are never cancelled this way, and
// the abort path never consults it: rollback must always finish.
func (tx *Tx) ctxErr() error {
	if tx.ctx == nil {
		return nil
	}
	return tx.ctx.Err()
}

// lockPage acquires the page lock in the given mode for scheduled
// transactions under the page-lock scheduler; elsewhere it is a no-op.
func (tx *Tx) lockPage(id page.ID, mode lock.Mode) error {
	if tx.locks == nil {
		return nil
	}
	if tx.tr == nil {
		return tx.locks.Acquire(tx.ctx, uint64(tx.id), id, mode)
	}
	t0 := time.Now()
	err := tx.locks.Acquire(tx.ctx, uint64(tx.id), id, mode)
	tx.tr.charge(phaseLockWait, t0, time.Since(t0), uint64(id), mode.String())
	if err != nil && tx.tr.span != nil {
		// A deadlock victim's trace is pinned with the wait-for cycle
		// the lock manager detected, so the journal answers "deadlocked
		// on what, holding what" directly.
		var derr *lock.DeadlockError
		if errors.As(err, &derr) {
			tx.tr.span.Pin(trace.PinDeadlock,
				fmt.Sprintf("cycle: %s; held: %v", derr.CycleString(), derr.Held))
		}
	}
	return err
}

// poolGet pins a page, charging the wait (DRAM hit or miss, eviction
// stall, pin wait) to the buffer phase of a traced transaction.
func (tx *Tx) poolGet(id page.ID) (page.Buf, error) {
	if tx.tr == nil {
		return tx.db.pool.Get(id)
	}
	t0 := time.Now()
	buf, err := tx.db.pool.Get(id)
	tx.tr.charge(phaseBuffer, t0, time.Since(t0), uint64(id), "")
	return buf, err
}

// logAppend appends a record, charging the reservation and copy to the
// wal_append phase of a traced transaction.
func (tx *Tx) logAppend(rec *wal.Record) (page.LSN, error) {
	if tx.tr == nil {
		return tx.db.log.Append(rec)
	}
	t0 := time.Now()
	lsn, err := tx.db.log.Append(rec)
	tx.tr.charge(phaseWalAppend, t0, time.Since(t0), uint64(rec.PageID), "")
	return lsn, err
}

// releaseLocks drops every page lock the transaction holds, once: commit
// releases early (after the commit-record append) and its deferred call
// must not touch the contended lock-manager mutex again, so the reference
// is cleared on first use.
func (tx *Tx) releaseLocks() {
	if tx.locks != nil {
		tx.locks.ReleaseAll(uint64(tx.id))
		tx.locks = nil
	}
}

// ReadOnly reports whether the transaction rejects writes.
func (tx *Tx) ReadOnly() bool { return tx.readonly }

// ID returns the transaction id.
func (tx *Tx) ID() uint64 { return uint64(tx.id) }

// Read pins the page, passes it to fn for read-only use, and unpins it.
// Under the page-lock scheduler it first takes a shared lock on the page,
// which may block behind a writer or fail with ErrDeadlock.
func (tx *Tx) Read(id page.ID, fn func(buf page.Buf) error) error {
	if tx.done {
		return ErrTxDone
	}
	if err := tx.ctxErr(); err != nil {
		return err
	}
	if err := tx.lockPage(id, lock.Shared); err != nil {
		return err
	}
	buf, err := tx.poolGet(id)
	if err != nil {
		return err
	}
	defer tx.db.pool.Unpin(id)
	return fn(buf)
}

// Modify pins the page, lets fn change it in place, logs the change as a
// byte-range update record (before and after images), stamps the page LSN
// and marks the page dirty.  If fn returns an error or changes nothing, no
// log record is written.
func (tx *Tx) Modify(id page.ID, fn func(buf page.Buf) error) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.readonly {
		return fmt.Errorf("%w: Modify of page %d", ErrConflict, id)
	}
	if err := tx.ctxErr(); err != nil {
		return err
	}
	if err := tx.lockPage(id, lock.Exclusive); err != nil {
		return err
	}
	buf, err := tx.poolGet(id)
	if err != nil {
		return err
	}
	defer tx.db.pool.Unpin(id)

	before := buf.Clone()
	if err := fn(buf); err != nil {
		// Restore the pristine image so a failed modification leaves no
		// unlogged change behind.
		copy(buf, before)
		return err
	}
	lo, hi := diffRange(before, buf)
	if lo >= hi {
		return nil
	}
	rec := &wal.Record{
		Type:   wal.TypeUpdate,
		TxID:   tx.id,
		PageID: id,
		Offset: uint16(lo),
		Before: append([]byte(nil), before[lo:hi]...),
		After:  append([]byte(nil), buf[lo:hi]...),
	}
	lsn, err := tx.logAppend(rec)
	if err != nil {
		copy(buf, before)
		return err
	}
	buf.SetLSN(lsn)
	if err := tx.db.pool.MarkDirty(id); err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRecord{pageID: id, offset: uint16(lo), before: rec.Before})
	return nil
}

// Alloc allocates and formats a new page of the given type.  The formatted
// image is logged as a full-page record so recovery can recreate it.
func (tx *Tx) Alloc(t page.Type) (page.ID, error) {
	if tx.done {
		return page.InvalidID, ErrTxDone
	}
	if tx.readonly {
		return page.InvalidID, fmt.Errorf("%w: Alloc", ErrConflict)
	}
	if err := tx.ctxErr(); err != nil {
		return page.InvalidID, err
	}
	db := tx.db
	db.mu.Lock()
	id := db.nextPage
	if int64(id) >= db.dataDev.NumBlocks() {
		db.mu.Unlock()
		return page.InvalidID, fmt.Errorf("engine: data device full (%d pages)", db.dataDev.NumBlocks())
	}
	db.nextPage++
	db.mu.Unlock()

	// The id is fresh, so the exclusive lock is granted immediately; it
	// keeps the new page invisible to concurrent readers until commit.
	if err := tx.lockPage(id, lock.Exclusive); err != nil {
		return page.InvalidID, err
	}
	var t0 time.Time
	if tx.tr != nil {
		t0 = time.Now()
	}
	buf, err := db.pool.Put(id, func(buf page.Buf) { buf.Init(id, t) })
	if tx.tr != nil {
		tx.tr.charge(phaseBuffer, t0, time.Since(t0), uint64(id), "alloc")
	}
	if err != nil {
		return page.InvalidID, err
	}
	defer db.pool.Unpin(id)

	rec := &wal.Record{Type: wal.TypeFullPage, TxID: tx.id, PageID: id, After: buf.Clone()}
	lsn, err := tx.logAppend(rec)
	if err != nil {
		return page.InvalidID, err
	}
	buf.SetLSN(lsn)
	if err := db.pool.MarkDirty(id); err != nil {
		return page.InvalidID, err
	}
	return id, nil
}

// Commit makes the transaction durable: a commit record is appended and the
// log is forced (commit-time force-write, Section 4 of the paper).
// Read-only transactions commit without touching the log.  Transactions
// managed by View/Update are committed by their scheduler and reject a
// manual Commit with ErrTxManaged.
func (tx *Tx) Commit() error {
	if tx.managed {
		return ErrTxManaged
	}
	return tx.commit()
}

func (tx *Tx) commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	defer tx.releaseLocks()
	db := tx.db
	if !tx.readonly {
		rec := &wal.Record{Type: wal.TypeCommit, TxID: tx.id}
		lsn, err := tx.logAppend(rec)
		if err != nil {
			return err
		}
		// Early lock release: with the commit record appended, any
		// transaction that reads our writes appends its own commit after
		// ours, so a log force that makes it durable makes us durable
		// first — the classic pairing with group commit.  Releasing
		// before the force lets the successor reach its own commit inside
		// our force's collection window instead of after it, which is
		// what makes batches fill on hot-page workloads.
		tx.releaseLocks()
		var t0 time.Time
		if tx.tr != nil {
			t0 = time.Now()
		}
		err = db.log.Force(lsn + 1)
		if tx.tr != nil {
			d := time.Since(t0)
			tx.tr.charge(phaseDurable, t0, d, 0, "")
			if st := db.obs.tracer.SyncStall(); st > 0 && d >= st && tx.tr.span != nil {
				// The force stalled long past a healthy fsync: pin the
				// trace as WAL sync-stall evidence.
				tx.tr.span.Pin(trace.PinStall, "durable wait "+d.String())
			}
		}
		if err != nil {
			return err
		}
	}
	// A poisoned instance must not report success: a read served in the
	// narrow window between the pull path dropping a victim and the
	// poison landing could have observed a stale disk copy.  (Writers are
	// additionally stopped by their commit force hitting the same sticky
	// device error.)
	if err := db.loadIOErr(); err != nil {
		return err
	}
	db.mu.Lock()
	db.committed++
	db.mu.Unlock()
	db.obs.recordCommit(tx.id, tx.tr)
	return nil
}

// Abort rolls the transaction back by restoring the before images of its
// changes in reverse order.  The compensating changes are logged as system
// records (TxID 0) so redo replays them and the transaction needs no undo
// after a crash.  Transactions managed by View/Update reject a manual
// Abort with ErrTxManaged.
func (tx *Tx) Abort() error {
	if tx.managed {
		return ErrTxManaged
	}
	return tx.abort()
}

func (tx *Tx) abort() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	defer tx.releaseLocks()
	db := tx.db
	if tx.readonly {
		db.mu.Lock()
		db.aborted++
		db.mu.Unlock()
		return nil
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		buf, err := db.pool.Get(u.pageID)
		if err != nil {
			return err
		}
		after := append([]byte(nil), buf[int(u.offset):int(u.offset)+len(u.before)]...)
		copy(buf[u.offset:], u.before)
		rec := &wal.Record{
			Type:   wal.TypeUpdate,
			TxID:   0,
			PageID: u.pageID,
			Offset: u.offset,
			Before: after,
			After:  append([]byte(nil), u.before...),
		}
		lsn, err := db.log.Append(rec)
		if err != nil {
			db.pool.Unpin(u.pageID)
			return err
		}
		buf.SetLSN(lsn)
		if err := db.pool.MarkDirty(u.pageID); err != nil {
			db.pool.Unpin(u.pageID)
			return err
		}
		db.pool.Unpin(u.pageID)
	}
	rec := &wal.Record{Type: wal.TypeAbort, TxID: tx.id}
	if _, err := db.log.Append(rec); err != nil {
		return err
	}
	db.mu.Lock()
	db.aborted++
	db.mu.Unlock()
	return nil
}

// diffRange returns the smallest [lo, hi) byte range in which a and b
// differ, ignoring the page LSN field (it is updated by Modify itself).
func diffRange(a, b page.Buf) (int, int) {
	lo := 0
	for lo < page.Size && a[lo] == b[lo] {
		lo++
	}
	if lo == page.Size {
		return 0, 0
	}
	hi := page.Size
	for hi > lo && a[hi-1] == b[hi-1] {
		hi--
	}
	return lo, hi
}
