package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/reprolab/face/internal/page"
)

// These tests pin down per-request cancellation end to end: a cancelled
// or deadline-expired context must abort a transaction whether it is
// waiting in a lock queue, between page operations, or about to commit —
// releasing its locks and leaving the group-commit protocol healthy.

// TestCancelWaiterReleasesLocks cancels a writer queued behind a held
// exclusive lock and checks that (a) it returns the context error, (b)
// the locks it did acquire are released, and (c) the holder and a fresh
// writer proceed unharmed.
func TestCancelWaiterReleasesLocks(t *testing.T) {
	db, ids := schedDB2PL(t, 2, 4)

	hold := make(chan struct{})
	holding := make(chan struct{})
	holderDone := make(chan error, 1)
	go func() {
		holderDone <- db.Update(context.Background(), func(tx *Tx) error {
			if err := tx.Modify(ids[0], func(buf page.Buf) error {
				buf.Payload()[0] = 1
				return nil
			}); err != nil {
				return err
			}
			close(holding)
			<-hold
			return nil
		})
	}()
	<-holding

	// The victim takes ids[1] exclusively, then queues on ids[0].
	ctx, cancel := context.WithCancel(context.Background())
	victimDone := make(chan error, 1)
	go func() {
		victimDone <- db.Update(ctx, func(tx *Tx) error {
			if err := tx.Modify(ids[1], func(buf page.Buf) error {
				buf.Payload()[0] = 2
				return nil
			}); err != nil {
				return err
			}
			return tx.Modify(ids[0], func(buf page.Buf) error {
				buf.Payload()[0] = 3
				return nil
			})
		})
	}()

	// Wait until the victim is actually parked in the lock queue.
	deadline := time.Now().Add(5 * time.Second)
	for db.locks.Stats().Waits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim never queued on the held lock")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-victimDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}

	// ids[1] must be free again: a writer with a fresh context takes it
	// without waiting on the dead victim.
	thirdDone := make(chan error, 1)
	go func() {
		thirdDone <- db.Update(context.Background(), func(tx *Tx) error {
			return tx.Modify(ids[1], func(buf page.Buf) error {
				buf.Payload()[0] = 4
				return nil
			})
		})
	}()
	select {
	case err := <-thirdDone:
		if err != nil {
			t.Fatalf("writer after cancelled victim: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled victim did not release its locks")
	}

	close(hold)
	if err := <-holderDone; err != nil {
		t.Fatalf("holder: %v", err)
	}
	if got := db.locks.Stats().Cancels; got == 0 {
		t.Fatal("lock manager recorded no cancelled waits")
	}
	// The victim's buffered write on ids[1] was rolled back.
	err := db.View(context.Background(), func(tx *Tx) error {
		return tx.Read(ids[1], func(buf page.Buf) error {
			if buf.Payload()[0] != 4 {
				t.Fatalf("ids[1] payload = %d, want the post-cancel writer's 4", buf.Payload()[0])
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCancelDoesNotWedgeGroupCommit mixes committing writers with
// writers cancelled mid-wait.  The group-commit leader election counts
// registered committers; a cancelled transaction that exited without
// deregistering would leave the leader collecting forever.
func TestCancelDoesNotWedgeGroupCommit(t *testing.T) {
	db, ids := schedDB2PL(t, 4, 8)

	const rounds = 20
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		// Half the writers get a context that dies almost immediately.
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ctx := context.Background()
				if w%2 == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(w)*100*time.Microsecond)
					defer cancel()
				}
				_, err := retryUpdate(ctx, db, func(tx *Tx) error {
					return tx.Modify(ids[w%len(ids)], func(buf page.Buf) error {
						buf.Payload()[w%64]++
						return nil
					})
				})
				if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
					t.Errorf("writer %d: %v", w, err)
				}
			}(w)
		}
		wg.Wait()
	}

	// The log's commit path must still complete promptly.
	done := make(chan error, 1)
	go func() {
		done <- db.Update(context.Background(), func(tx *Tx) error {
			return tx.Modify(ids[0], func(buf page.Buf) error {
				buf.Payload()[70] = 1
				return nil
			})
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("commit after cancellation storm: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("group commit wedged after cancelled writers")
	}
}

// TestCancelDeadlineStopsClosure runs a long closure under a short
// deadline: the per-operation context check must stop it at the next
// page operation, and the whole transaction must roll back.
func TestCancelDeadlineStopsClosure(t *testing.T) {
	db, ids := schedDB2PL(t, 1, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	ops := 0
	err := db.Update(ctx, func(tx *Tx) error {
		for {
			if err := tx.Modify(ids[0], func(buf page.Buf) error {
				buf.Payload()[0]++
				return nil
			}); err != nil {
				return err
			}
			ops++
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline-bound closure = %v, want context.DeadlineExceeded", err)
	}
	if ops == 0 {
		t.Fatal("closure never ran before the deadline")
	}
	// Everything it modified was rolled back.
	err = db.View(context.Background(), func(tx *Tx) error {
		return tx.Read(ids[0], func(buf page.Buf) error {
			if buf.Payload()[0] != 0 {
				t.Fatalf("payload = %d after rollback, want 0", buf.Payload()[0])
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCancelViewStopsReads: the same per-operation check applies to
// read-only transactions, whose Reads otherwise hold shared locks for as
// long as the closure keeps running.
func TestCancelViewStopsReads(t *testing.T) {
	db, ids := schedDB2PL(t, 1, 2)

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	done := make(chan error, 1)
	go func() {
		done <- db.View(ctx, func(tx *Tx) error {
			for {
				if err := tx.Read(ids[0], func(page.Buf) error { return nil }); err != nil {
					return err
				}
				once.Do(func() { close(started) })
			}
		})
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled View = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled View kept reading")
	}

	// Its shared lock is gone: an exclusive writer gets through.
	werr := db.Update(context.Background(), func(tx *Tx) error {
		return tx.Modify(ids[0], func(buf page.Buf) error {
			buf.Payload()[0] = 9
			return nil
		})
	})
	if werr != nil {
		t.Fatalf("writer after cancelled View: %v", werr)
	}
}
