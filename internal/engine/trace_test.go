package engine

import (
	"context"
	"encoding/binary"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/reprolab/face/internal/obs/trace"
	"github.com/reprolab/face/internal/page"
)

// traceDB opens a database with tracing on and every committed write
// pinned as slow, so the journal fills deterministically.
func traceDB(t *testing.T) *DB {
	t.Helper()
	r := newRig(t, PolicyNone)
	r.cfg.SlowTxThreshold = time.Nanosecond
	r.cfg.Logf = func(string, ...any) {}
	db := r.open(t, false)
	t.Cleanup(func() { db.Close() })
	return db
}

// TestTraceEngineSelfStartedSpans: an Update whose context carries no
// request trace starts (and finishes) its own, so embedded deployments
// feed the journal; its spans are the commit-path phases.
func TestTraceEngineSelfStartedSpans(t *testing.T) {
	db := traceDB(t)
	ctx := context.Background()
	if err := db.Update(ctx, func(tx *Tx) error {
		id, err := tx.Alloc(page.TypeHeap)
		if err != nil {
			return err
		}
		writeValue(t, tx, id, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	dump := db.Tracer().Dump()
	if len(dump.Pinned) == 0 {
		t.Fatalf("journal empty after a slow commit: %+v", dump)
	}
	tr := dump.Pinned[0]
	if tr.Kind != "update" {
		t.Fatalf("kind = %q, want update", tr.Kind)
	}
	if len(tr.Pins) == 0 || tr.Pins[0].Kind != trace.PinSlow {
		t.Fatalf("pins = %+v, want slow_tx", tr.Pins)
	}
	names := make(map[string]bool)
	var allocSpan bool
	for _, sp := range tr.Spans {
		names[sp.Name] = true
		if sp.Note == "alloc" && sp.Page != 0 {
			allocSpan = true
		}
	}
	for _, want := range []string{"admission", "buffer", "wal_append", "durable_wait"} {
		if !names[want] {
			t.Errorf("span %q missing from %+v", want, tr.Spans)
		}
	}
	if !allocSpan {
		t.Errorf("no buffer span annotated with the allocated page: %+v", tr.Spans)
	}
}

// TestTraceEngineAdoptsContextTrace: a request trace arriving through
// WithTrace collects the engine's phase spans and is NOT finished by the
// engine — its owner (the server) seals it.
func TestTraceEngineAdoptsContextTrace(t *testing.T) {
	db := traceDB(t)
	tracer := db.Tracer()
	tr := tracer.Start(trace.ID(0xabc), "commit")
	ctx := WithTrace(context.Background(), tr)
	if err := db.Update(ctx, func(tx *Tx) error {
		id, err := tx.Alloc(page.TypeHeap)
		if err != nil {
			return err
		}
		writeValue(t, tx, id, 2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The engine attached spans but did not finish the trace.
	if got := tracer.Stats().Completed; got != 0 {
		t.Fatalf("engine finished a request-owned trace (completed=%d)", got)
	}
	found := false
	for _, sp := range tr.Spans() {
		if sp.Name == "durable_wait" {
			found = true
		}
	}
	if !found {
		t.Fatalf("request trace missing engine spans: %+v", tr.Spans())
	}
	tracer.Finish(tr)
	dump := tracer.Dump()
	if len(dump.Pinned) != 1 || dump.Pinned[0].ID != "0000000000000abc" {
		t.Fatalf("pinned = %+v, want the request trace under its own ID", dump.Pinned)
	}
}

// TestTraceExemplarLinksJournal: the total-latency histogram's bucket
// exemplar is a trace ID retrievable from the journal.
func TestTraceExemplarLinksJournal(t *testing.T) {
	db := traceDB(t)
	if err := db.Update(context.Background(), func(tx *Tx) error {
		_, err := tx.Alloc(page.TypeHeap)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	exemplars := db.Metrics().Histogram("face_tx_total_seconds").Snapshot().ExemplarList()
	if len(exemplars) == 0 {
		t.Fatal("face_tx_total_seconds has no exemplars")
	}
	ids := make(map[string]bool)
	dump := db.Tracer().Dump()
	for _, tr := range dump.Pinned {
		ids[tr.ID] = true
	}
	for _, tr := range dump.Sampled {
		ids[tr.ID] = true
	}
	for _, ex := range exemplars {
		if !ids[ex.TraceID] {
			t.Errorf("exemplar %s not in the journal %v", ex.TraceID, ids)
		}
	}
}

// TestTraceEngineDeadlockPin forces the AB/BA cycle and checks the
// victim's self-started trace is pinned with the wait-for cycle.
func TestTraceEngineDeadlockPin(t *testing.T) {
	r := newRig(t, PolicyNone)
	r.cfg.PageLocks = true
	r.cfg.Logf = func(string, ...any) {}
	db := r.open(t, false)
	t.Cleanup(func() { db.Close() })

	var a, b page.ID
	if err := db.Update(context.Background(), func(tx *Tx) error {
		var err error
		if a, err = tx.Alloc(page.TypeHeap); err != nil {
			return err
		}
		b, err = tx.Alloc(page.TypeHeap)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	set := func(tx *Tx, id page.ID, v uint64) error {
		return tx.Modify(id, func(buf page.Buf) error {
			binary.LittleEndian.PutUint64(buf.Payload(), v)
			return nil
		})
	}
	haveA := make(chan struct{})
	haveB := make(chan struct{})
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs <- db.Update(context.Background(), func(tx *Tx) error {
			if err := set(tx, a, 11); err != nil {
				return err
			}
			close(haveA)
			<-haveB
			return set(tx, b, 12)
		})
	}()
	go func() {
		defer wg.Done()
		errs <- db.Update(context.Background(), func(tx *Tx) error {
			if err := set(tx, b, 21); err != nil {
				return err
			}
			close(haveB)
			<-haveA
			return set(tx, a, 22)
		})
	}()
	wg.Wait()
	close(errs)
	deadlocks := 0
	for err := range errs {
		if errors.Is(err, ErrDeadlock) {
			deadlocks++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if deadlocks != 1 {
		t.Fatalf("deadlocks = %d, want 1", deadlocks)
	}
	var victim *trace.TraceJSON
	dump := db.Tracer().Dump()
	for i := range dump.Pinned {
		for _, p := range dump.Pinned[i].Pins {
			if p.Kind == trace.PinDeadlock {
				victim = &dump.Pinned[i]
			}
		}
	}
	if victim == nil {
		t.Fatalf("no deadlock-pinned trace in journal: %+v", dump.Pinned)
	}
	detail := victim.Pins[0].Detail
	if !strings.Contains(detail, "cycle:") || !strings.Contains(detail, "held:") {
		t.Errorf("deadlock pin detail = %q, want cycle and held pages", detail)
	}
}

// TestTraceEngineDisabled: WithObservability(false) or DisableTracing
// yields a nil tracer, zero exemplars, and working transactions.
func TestTraceEngineDisabled(t *testing.T) {
	for _, mode := range []string{"obs-off", "trace-off"} {
		t.Run(mode, func(t *testing.T) {
			r := newRig(t, PolicyNone)
			if mode == "obs-off" {
				r.cfg.DisableObs = true
			} else {
				r.cfg.DisableTracing = true
			}
			r.cfg.SlowTxThreshold = time.Nanosecond
			r.cfg.Logf = func(string, ...any) {}
			db := r.open(t, false)
			t.Cleanup(func() { db.Close() })
			if db.Tracer() != nil {
				t.Fatal("Tracer() non-nil with tracing disabled")
			}
			if err := db.Update(context.Background(), func(tx *Tx) error {
				_, err := tx.Alloc(page.TypeHeap)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if mode == "trace-off" {
				// Obs is still on: the histogram records, but carries no
				// exemplars because no trace IDs exist.
				snap := db.Metrics().Histogram("face_tx_total_seconds").Snapshot()
				if snap.Count != 1 {
					t.Fatalf("count = %d, want 1", snap.Count)
				}
				if got := snap.ExemplarList(); len(got) != 0 {
					t.Fatalf("exemplars = %+v with tracing disabled", got)
				}
			}
		})
	}
}

// TestTraceFlightRecorderLifecycle: Open, checkpoint, crash and recovery
// all leave flight-recorder events; a reopened database shows its
// recovery timeline.
func TestTraceFlightRecorderLifecycle(t *testing.T) {
	r := newRig(t, PolicyNone)
	r.cfg.Logf = func(string, ...any) {}
	db := r.open(t, false)
	var id page.ID
	if err := db.Update(context.Background(), func(tx *Tx) error {
		var err error
		id, err = tx.Alloc(page.TypeHeap)
		if err != nil {
			return err
		}
		writeValue(t, tx, id, 7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	events := func(db *DB) string {
		var sb strings.Builder
		for _, ev := range db.Tracer().Events() {
			sb.WriteString(ev.Msg)
			sb.WriteString("\n")
		}
		return sb.String()
	}
	got := events(db)
	for _, want := range []string{"open: wal ready", "open: complete"} {
		if !strings.Contains(got, want) {
			t.Errorf("events missing %q:\n%s", want, got)
		}
	}
	db.Crash()
	db2 := r.open(t, true)
	t.Cleanup(func() { db2.Close() })
	got = events(db2)
	for _, want := range []string{
		"recover: begin",
		"recover: redo/undo complete",
		"checkpoint: complete",
		"recover: complete",
		"open: complete",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("recovery events missing %q:\n%s", want, got)
		}
	}
}
