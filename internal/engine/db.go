package engine

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/face/internal/buffer"
	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/face"
	"github.com/reprolab/face/internal/lock"
	"github.com/reprolab/face/internal/metrics"
	"github.com/reprolab/face/internal/obs"
	"github.com/reprolab/face/internal/page"
	"github.com/reprolab/face/internal/recovery"
	"github.com/reprolab/face/internal/simclock"
	"github.com/reprolab/face/internal/wal"
)

// superblockMagic identifies an initialised database superblock (page 0 of
// the data device).
const superblockMagic = 0xFACEDB01

// DB is a transactional page store with an optional flash cache extension.
// It is safe for concurrent use: View transactions run in parallel with
// each other, and Update transactions are scheduled by either the default
// single-writer scheduler or, with Config.PageLocks, the page-granularity
// two-phase lock manager that lets them run in parallel too (sched.go).
// Unscheduled transactions from Begin remain single-threaded, as the
// benchmark harness drives them.
type DB struct {
	// txMu is the transaction scheduler lock.  View transactions hold the
	// read side; Update transactions hold the write side under the
	// single-writer scheduler and the read side under the page-lock
	// scheduler (page locks provide their mutual exclusion).  Lifecycle
	// operations (Checkpoint, Close, Crash, Tick) hold the write side and
	// must therefore not be called from inside a View/Update closure.
	txMu sync.RWMutex

	// locks is the page lock manager (nil under the single-writer
	// scheduler).
	locks *lock.Manager
	// writerSem, when non-nil, admits at most Config.MaxWriters Update
	// transactions at a time under the page-lock scheduler.
	writerSem chan struct{}

	// mu guards the counters and lifecycle flags below.
	mu sync.Mutex

	cfg   Config
	model metrics.Model

	dataDev  device.Dev
	logDev   device.Dev
	flashDev device.Dev

	pool  *buffer.Pool
	cache face.Extension
	log   *wal.Manager
	clock *simclock.Clock

	// obs is the observability layer: commit-path phase histograms and
	// the metric registry (nil with Config.DisableObs; see obs.go).
	obs *dbObs

	// files holds the file-backed device set when the database was opened
	// with Config.Dir; the engine owns it and closes it on Close/Crash.
	files io.Closer

	nextPage page.ID
	nextTx   wal.TxID
	// maxLSNSeen is the page-LSN high-water mark recorded in the
	// superblock at the last checkpoint; it lets a fresh log continue the
	// LSN sequence of a database image created under an earlier log.
	maxLSNSeen page.LSN

	committed int64
	aborted   int64

	lastCheckpoint time.Duration
	checkpoints    int64

	recoveryReport *RecoveryReport

	// ioErr poisons the instance after an I/O failure on a path that
	// cannot surface its error to any caller (the GSC pull path): new
	// transactions fail with it instead of silently reading stale data.
	// Restart recovery is the only way forward, exactly as for a crash.
	// It is an atomic (not a field under mu) for two reasons: the pull
	// path can run with mu already held, and the check sits on the buffer
	// miss path, which must not gain a process-wide mutex.
	ioErr atomic.Pointer[error]

	crashed bool
	closed  bool
}

// setIOErr records the first unreportable I/O failure; later transactions
// fail with it.
func (db *DB) setIOErr(err error) {
	db.ioErr.CompareAndSwap(nil, &err)
}

// loadIOErr returns the poisoning error, or nil.
func (db *DB) loadIOErr() error {
	if p := db.ioErr.Load(); p != nil {
		return *p
	}
	return nil
}

// RecoveryReport describes a completed restart, including the timing split
// the paper reports in Section 5.5.
type RecoveryReport struct {
	recovery.Report
	// MetadataRestoreTime is the simulated time spent rebuilding the flash
	// cache metadata directory.
	MetadataRestoreTime time.Duration
	// RedoUndoTime is the simulated time spent in the log passes.
	RedoUndoTime time.Duration
	// TotalTime is the total simulated restart time.
	TotalTime time.Duration
	// FlashReads and DiskReads are the page reads performed during
	// recovery, split by device.
	FlashReads int64
	DiskReads  int64
}

// Open creates or reopens a database on the given devices.  With
// cfg.Recover set, crash recovery runs before Open returns and its report
// is available from RecoveryReport.
func Open(cfg Config) (*DB, error) {
	var files io.Closer
	if cfg.Dir != "" {
		set, err := cfg.openFileDevices()
		if err != nil {
			return nil, err
		}
		files = set
		// A directory with an initialised data file is a reopen: the
		// previous incarnation may have crashed, so restart recovery runs
		// whether or not the caller asked for it.
		if set.Existed {
			cfg.Recover = true
		}
	}
	closeFiles := func() {
		if files != nil {
			files.Close()
		}
	}
	if err := cfg.validate(); err != nil {
		closeFiles()
		return nil, err
	}
	cfg.resolveStriping()
	db := &DB{
		cfg:      cfg,
		model:    cfg.Model,
		dataDev:  cfg.DataDev,
		logDev:   cfg.LogDev,
		flashDev: cfg.FlashDev,
		files:    files,
		clock:    simclock.New(),
		nextPage: 1,
		nextTx:   1,
	}

	if cfg.PageLocks {
		db.locks = lock.New()
		if cfg.MaxWriters > 0 {
			db.writerSem = make(chan struct{}, cfg.MaxWriters)
		}
	}
	if !cfg.DisableObs {
		db.obs = newDBObs(&db.cfg)
	}

	var err error
	db.log, err = wal.OpenConfig(cfg.LogDev, wal.Config{Segments: cfg.WalSegments})
	if err != nil {
		closeFiles()
		return nil, err
	}
	// From here on a failed Open must also stop the WAL's syncer
	// goroutine.
	abortLog := func() {
		db.log.Close()
		closeFiles()
	}
	if cfg.PageLocks {
		// Concurrent committers batch their commit-time forces through
		// the WAL's leader/follower protocol.
		window := cfg.GroupCommitWindow
		if window == 0 {
			window = DefaultGroupCommitWindow
		}
		if window > 0 {
			db.log.SetGroupCommitWindow(window)
		}
		// A writer cap doubles as the expected group-commit fan-in: the
		// first committer of a batch opens its collection window without
		// waiting to observe a second one.
		if cfg.MaxWriters > 1 {
			db.log.SetCommitters(cfg.MaxWriters)
		}
	}

	if err := db.readSuperblock(); err != nil {
		abortLog()
		return nil, err
	}
	// If the database pages carry LSNs from an earlier log incarnation
	// (e.g. a cloned database image attached to a fresh log device), start
	// the new log above their high-water mark so that LSN comparisons in
	// redo and in the flash cache stay meaningful.
	if db.maxLSNSeen > db.log.Next() && db.log.Durable() == db.log.Next() && db.log.LastCheckpoint() == 0 {
		if err := db.log.SetStart(db.maxLSNSeen); err != nil {
			abortLog()
			return nil, err
		}
	}

	db.cache, err = cfg.buildCache(db.diskWritePage, db.pullVictims)
	if err != nil {
		abortLog()
		return nil, err
	}

	// From here on a failed Open must stop the cache's background
	// pipeline, or its goroutines would outlive the aborted instance.
	abortCache := func() {
		if s, ok := db.cache.(face.Shutdowner); ok {
			s.Abort()
		}
		abortLog()
	}

	db.pool, err = buffer.NewSharded(cfg.BufferPages, cfg.BufferShards, db.fetchPage, db.evictPage)
	if err != nil {
		abortCache()
		return nil, err
	}
	if cfg.PageLocks {
		// Concurrent transactions pin pages in parallel; a transiently
		// all-pinned pool should wait for an unpin (pins are short-held
		// and never span a lock wait) rather than fail the transaction.
		db.pool.SetPinWait(true)
	}

	db.obs.event("open: wal ready next=%d durable=%d", db.log.Next(), db.log.Durable())
	if cfg.Recover {
		if err := db.recover(); err != nil {
			abortCache()
			return nil, err
		}
	}
	db.lastCheckpoint = db.Elapsed()
	db.registerMetrics()
	db.obs.event("open: complete pages=%d recover=%v", int64(db.nextPage)-1, cfg.Recover)
	return db, nil
}

// --- device wiring -------------------------------------------------------

// fetchPage loads a page on a DRAM buffer miss: the flash cache first, the
// data device otherwise.
func (db *DB) fetchPage(id page.ID, buf page.Buf) (bool, error) {
	// A poisoned instance must not serve misses: pages dropped by the
	// failed pull would read back as stale disk copies.  In-flight
	// transactions hit this on their next miss; new ones fail at begin.
	if err := db.loadIOErr(); err != nil {
		return false, err
	}
	if db.cache != nil {
		found, dirty, err := db.cache.Lookup(id, buf)
		if err != nil {
			return false, err
		}
		if found {
			return dirty, nil
		}
	}
	if err := db.dataDev.ReadAt(int64(id), buf); err != nil {
		return false, err
	}
	return false, nil
}

// evictPage handles a page leaving the DRAM buffer: write-ahead rule first,
// then stage into the flash cache (or straight to disk without one).
func (db *DB) evictPage(v buffer.Victim) error {
	if v.Dirty || v.FDirty {
		if err := db.log.Force(v.Data.LSN() + 1); err != nil {
			return err
		}
	}
	if db.cache != nil {
		return db.cache.StageIn(v.ID, v.Data, v.Dirty, v.FDirty)
	}
	if v.Dirty {
		return db.dataDev.WriteAt(int64(v.ID), v.Data)
	}
	return nil
}

// diskWritePage is handed to the flash cache so it can stage dirty pages
// out to the database on disk.
func (db *DB) diskWritePage(id page.ID, data page.Buf) error {
	return db.dataDev.WriteAt(int64(id), data)
}

// pullVictims lets Group Second Chance top up a write group with victims
// pulled from the DRAM buffer's LRU tail.  The write-ahead rule is honoured
// before the pages are handed to the cache.
func (db *DB) pullVictims(n int) []face.PulledPage {
	victims := db.pool.EvictBatch(n)
	if len(victims) == 0 {
		return nil
	}
	var maxLSN page.LSN
	for _, v := range victims {
		if (v.Dirty || v.FDirty) && v.Data.LSN() > maxLSN {
			maxLSN = v.Data.LSN()
		}
	}
	if maxLSN > 0 {
		// The pull path has no error return, but a failed force cannot be
		// swallowed either: the victims have already left the DRAM pool,
		// so dropping them here would let a live reader miss into a stale
		// disk copy with no surfaced error (reachable on file-backed
		// devices, where fsync can fail).  Poison the instance — new
		// transactions fail with the error and restart recovery replays
		// the WAL — and hand nothing to the cache.
		if err := db.log.Force(maxLSN + 1); err != nil {
			db.setIOErr(fmt.Errorf("engine: log force on the cache pull path failed, instance poisoned (restart to recover): %w", err))
			return nil
		}
	}
	out := make([]face.PulledPage, 0, len(victims))
	for _, v := range victims {
		out = append(out, face.PulledPage{ID: v.ID, Data: v.Data, Dirty: v.Dirty, FDirty: v.FDirty})
	}
	return out
}

// --- superblock ----------------------------------------------------------

func (db *DB) readSuperblock() error {
	buf := make([]byte, device.BlockSize)
	if err := db.dataDev.ReadAt(0, buf); err != nil {
		return fmt.Errorf("engine: reading superblock: %w", err)
	}
	if binary.LittleEndian.Uint32(buf[page.HeaderSize:]) == superblockMagic {
		db.nextPage = page.ID(binary.LittleEndian.Uint64(buf[page.HeaderSize+4:]))
		if db.nextPage < 1 {
			db.nextPage = 1
		}
		db.maxLSNSeen = page.LSN(binary.LittleEndian.Uint64(buf[page.HeaderSize+12:]))
	}
	return nil
}

func (db *DB) writeSuperblock() error {
	buf := page.NewBuf()
	buf.Init(0, page.TypeSuperblock)
	binary.LittleEndian.PutUint32(buf[page.HeaderSize:], superblockMagic)
	binary.LittleEndian.PutUint64(buf[page.HeaderSize+4:], uint64(db.nextPage))
	binary.LittleEndian.PutUint64(buf[page.HeaderSize+12:], uint64(db.log.Next()))
	buf.UpdateChecksum()
	if err := db.dataDev.WriteAt(0, buf); err != nil {
		return fmt.Errorf("engine: writing superblock: %w", err)
	}
	return nil
}

// --- lifecycle -----------------------------------------------------------

// Close checkpoints the database and flushes all cached dirty pages to
// disk, leaving the data device self-contained.  It waits for in-flight
// View/Update transactions to finish first.
func (db *DB) Close() error {
	db.txMu.Lock()
	defer db.txMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.obs.event("close: begin committed=%d aborted=%d", db.committed, db.aborted)
	if db.crashed {
		db.closed = true
		return db.closeFilesLocked()
	}
	//lint:allow facevet/nolockio shutdown fence: txMu excludes every transaction, holding both locks across the final flush is the point
	if err := db.closeFlushLocked(); err != nil {
		// The caller is abandoning the instance: stop the cache's
		// background pipeline even on a failed close so its goroutines do
		// not leak and keep touching the devices, and close the pool so a
		// goroutine parked on a pin-wait fails instead of hanging.  The
		// instance counts as closed — its devices are gone, so admitting
		// another transaction would only fail deeper in the I/O stack.
		if s, ok := db.cache.(face.Shutdowner); ok {
			s.Abort()
		}
		db.pool.Close()
		db.log.Close()
		db.closeFilesLocked()
		db.closed = true
		return err
	}
	// Closing the pool wakes any goroutine still parked on the all-pinned
	// condition (for example a transaction begun outside the scheduler)
	// with ErrClosed instead of leaving it blocked forever.
	db.pool.Close()
	// The final checkpoint forced the log tail, so stopping the WAL's
	// syncer strands nothing.
	db.log.Close()
	db.closed = true
	return db.closeFilesLocked()
}

// closeFilesLocked closes the file-backed device set of a Dir-opened
// database (a no-op otherwise).  It is idempotent.
func (db *DB) closeFilesLocked() error {
	if db.files == nil {
		return nil
	}
	f := db.files
	db.files = nil
	return f.Close()
}

// closeFlushLocked performs the flush side of Close: checkpoint, drain
// the cache to disk, write back dirty DRAM pages, and stop the cache's
// background pipeline (everything in flight was drained by FlushAll).
func (db *DB) closeFlushLocked() error {
	if err := db.checkpointLocked(); err != nil {
		return err
	}
	if db.cache != nil {
		if err := db.cache.FlushAll(); err != nil {
			return err
		}
	}
	if err := db.pool.FlushDirty(func(v buffer.Victim) error {
		if !v.Dirty {
			return nil
		}
		return db.dataDev.WriteAt(int64(v.ID), v.Data)
	}, true); err != nil {
		return err
	}
	if s, ok := db.cache.(face.Shutdowner); ok {
		if err := s.Shutdown(); err != nil {
			return err
		}
	}
	// Leave the data device durably self-contained (no-op on simulated
	// devices; the flash metadata was synced by the checkpoint above).
	if err := device.Sync(db.dataDev); err != nil {
		return fmt.Errorf("engine: syncing data device at close: %w", err)
	}
	return nil
}

// Crash simulates a process failure: every volatile structure (DRAM buffer
// pool, unforced log tail, in-memory cache metadata) is lost; device
// contents survive.  Reopen the same devices with Config.Recover set to
// restart.  In-flight View/Update transactions complete before the crash
// takes effect.
func (db *DB) Crash() {
	db.txMu.Lock()
	defer db.txMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	db.obs.event("crash: simulated failure committed=%d aborted=%d", db.committed, db.aborted)
	db.pool.DropAll()
	db.pool.Close()
	db.log.Crash()
	// The cache's background pipeline is volatile: abort it without
	// draining, losing staged pages exactly as a crash would.  Whatever
	// already reached the devices stays.
	if s, ok := db.cache.(face.Shutdowner); ok {
		s.Abort()
	}
	// On file-backed devices the handles are released without any final
	// sync: whatever the OS already holds survives, exactly like a process
	// kill.  Reopening the same directory runs recovery.
	db.closeFilesLocked()
	db.crashed = true
	db.closed = true
}

// recover runs restart recovery: the flash cache metadata directory is
// restored first, then the log is replayed.
func (db *DB) recover() error {
	rep := &RecoveryReport{}
	db.obs.event("recover: begin")

	dataBefore := db.dataDev.Stats()
	flashBefore := device.Stats{}
	if db.flashDev != nil {
		flashBefore = db.flashDev.Stats()
	}
	logBefore := db.logDev.Stats()

	// Phase 1: restore the flash cache metadata directory.
	if db.cache != nil {
		if err := db.cache.Recover(); err != nil {
			return err
		}
	}
	var flashAfterMeta device.Stats
	if db.flashDev != nil {
		flashAfterMeta = db.flashDev.Stats()
		rep.MetadataRestoreTime = flashAfterMeta.Sub(flashBefore).Busy
	}
	db.obs.event("recover: cache metadata restored in %v", rep.MetadataRestoreTime)

	// Phase 2: redo and undo from the last completed checkpoint.
	r, err := recovery.Run(db.log, dbPager{db})
	if err != nil {
		return err
	}
	rep.Report = r
	if r.MaxPageID >= db.nextPage {
		db.nextPage = r.MaxPageID + 1
	}
	db.obs.event("recover: redo/undo complete records=%d redo=%d undo=%d losers=%d", r.RecordsScanned, r.RedoApplied, r.UndoApplied, r.LoserTxns)

	// Recovery runs single-threaded, so its simulated duration is the sum
	// of the service demand it placed on every device.
	dataDelta := db.dataDev.Stats().Sub(dataBefore)
	logDelta := db.logDev.Stats().Sub(logBefore)
	var flashDelta device.Stats
	if db.flashDev != nil {
		flashDelta = db.flashDev.Stats().Sub(flashBefore)
	}
	cpu := time.Duration(r.RecordsScanned) * db.model.CPUPerPageAccess
	rep.RedoUndoTime = dataDelta.Busy + logDelta.Busy + flashDelta.Busy + cpu - rep.MetadataRestoreTime
	if rep.RedoUndoTime < 0 {
		rep.RedoUndoTime = 0
	}
	rep.TotalTime = rep.MetadataRestoreTime + rep.RedoUndoTime
	rep.DiskReads = dataDelta.Reads()
	rep.FlashReads = flashDelta.Reads()

	// Take a checkpoint so the next crash does not have to replay this
	// work again, as real systems do at the end of restart.
	if err := db.checkpointLocked(); err != nil {
		return err
	}
	db.recoveryReport = rep
	db.obs.event("recover: complete total=%v (metadata=%v redo/undo=%v)", rep.TotalTime, rep.MetadataRestoreTime, rep.RedoUndoTime)
	return nil
}

// RecoveryReport returns the report of the restart performed by Open, or
// nil when the database was opened without recovery.
func (db *DB) RecoveryReport() *RecoveryReport { return db.recoveryReport }

// dbPager adapts the DB to the recovery.Pager interface.
type dbPager struct{ db *DB }

func (p dbPager) Get(id page.ID) (page.Buf, error) { return p.db.pool.Get(id) }
func (p dbPager) Unpin(id page.ID) error           { return p.db.pool.Unpin(id) }
func (p dbPager) MarkDirty(id page.ID) error       { return p.db.pool.MarkDirty(id) }

// --- checkpointing -------------------------------------------------------

// Checkpoint performs a database checkpoint: dirty DRAM pages are flushed
// into the persistent database (the flash cache under FaCE and LC, disk
// otherwise) and the flash cache checkpoints its own metadata.  It is
// exclusive with in-flight View/Update transactions and must not be called
// from inside their closures.
func (db *DB) Checkpoint() error {
	db.txMu.Lock()
	defer db.txMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	//lint:allow facevet/nolockio checkpoint fence: txMu excludes every transaction so the flush sees a quiescent engine by design
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	beginLSN, err := db.log.LogCheckpointBegin()
	if err != nil {
		return err
	}
	if db.cache != nil {
		// Dirty DRAM pages are checked in to the flash cache instead of
		// disk.  Under write-through the cache forwards them to disk, so
		// the DRAM copies become clean with respect to disk as well.
		syncedToDisk := db.cfg.Policy == PolicyWriteThrough
		err = db.pool.FlushDirty(func(v buffer.Victim) error {
			if err := db.log.Force(v.Data.LSN() + 1); err != nil {
				return err
			}
			return db.cache.StageIn(v.ID, v.Data, v.Dirty, v.FDirty)
		}, syncedToDisk)
		if err != nil {
			return err
		}
		if err := db.cache.Checkpoint(); err != nil {
			return err
		}
	} else {
		err = db.pool.FlushDirty(func(v buffer.Victim) error {
			if !v.Dirty {
				return nil
			}
			if err := db.log.Force(v.Data.LSN() + 1); err != nil {
				return err
			}
			return db.dataDev.WriteAt(int64(v.ID), v.Data)
		}, true)
		if err != nil {
			return err
		}
	}
	if err := db.writeSuperblock(); err != nil {
		return err
	}
	// Durability barriers before the checkpoint-end record: the record
	// must never become durable while the page writes it vouches for are
	// still in a volatile OS cache.  No-ops on simulated devices.
	if err := device.Sync(db.dataDev); err != nil {
		return fmt.Errorf("engine: syncing data device at checkpoint: %w", err)
	}
	if db.flashDev != nil {
		if err := device.Sync(db.flashDev); err != nil {
			return fmt.Errorf("engine: syncing flash device at checkpoint: %w", err)
		}
	}
	if err := db.log.LogCheckpointEnd(beginLSN); err != nil {
		return err
	}
	db.checkpoints++
	db.lastCheckpoint = db.Elapsed()
	db.obs.event("checkpoint: complete n=%d begin_lsn=%d", db.checkpoints, beginLSN)
	return nil
}

// Tick advances the simulated clock to the modelled elapsed time and runs a
// periodic checkpoint when the configured interval has passed.  The
// benchmark harness calls it between transactions.  Like Checkpoint it is
// exclusive with in-flight View/Update transactions and must not be called
// from inside their closures.
func (db *DB) Tick() error {
	db.txMu.Lock()
	defer db.txMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	now := db.Elapsed()
	db.clock.AdvanceTo(now)
	if db.cfg.CheckpointEvery > 0 && now-db.lastCheckpoint >= db.cfg.CheckpointEvery {
		//lint:allow facevet/nolockio checkpoint fence: txMu excludes every transaction so the flush sees a quiescent engine by design
		return db.checkpointLocked()
	}
	return nil
}

// Checkpoints returns the number of checkpoints taken.
func (db *DB) Checkpoints() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpoints
}

// --- measurement ---------------------------------------------------------

// Elapsed returns the modelled elapsed simulated time of all work performed
// so far: the bottleneck of CPU, flash device and data device, with the log
// device overlapping the same way.
func (db *DB) Elapsed() time.Duration {
	ps := db.pool.Stats()
	return db.elapsedFor(ps.Hits + ps.Misses)
}

// elapsedFor computes the modelled elapsed time for a given buffer-access
// count.  Snapshot passes the access count of the one pool snapshot it
// already took, so its Elapsed and PageAccesses fields derive from the same
// counters instead of two reads racing concurrent transactions.
func (db *DB) elapsedFor(accesses int64) time.Duration {
	resources := []metrics.Resource{
		metrics.DeviceResource(db.dataDev),
		metrics.DeviceResource(db.logDev),
	}
	if db.flashDev != nil {
		resources = append(resources, metrics.DeviceResource(db.flashDev))
	}
	return db.model.Elapsed(accesses, resources...)
}

// Snapshot captures every counter needed to measure a window of work by
// subtracting two snapshots.
type Snapshot struct {
	Elapsed      time.Duration
	Committed    int64
	Aborted      int64
	PageAccesses int64
	Checkpoints  int64
	Pool         buffer.Stats
	// PoolShards is the per-shard breakdown of Pool: one coherent
	// snapshot per buffer pool shard, in shard order.  A single-shard
	// pool yields one entry equal to Pool.
	PoolShards []metrics.ShardStats
	Cache      face.Stats
	// CacheStripes is the per-stripe breakdown of the flash cache's lookup
	// counters, mirroring PoolShards; metrics.StripeImbalance summarises
	// it.  Nil without a stripe-reporting flash cache; a single-stripe
	// cache yields one entry equal to the cache-wide lookup counters.
	CacheStripes []metrics.CacheStripeStats
	Pipeline     metrics.PipelineStats
	// Locks reports page lock manager activity (zero without PageLocks)
	// and GroupCommit the WAL's commit-force batching.
	Locks       metrics.LockStats
	GroupCommit metrics.GroupCommitStats
	// Wal reports the WAL commit pipeline: reservation stalls, copy
	// waits, syncer coalescing, barrier count/latency, parked forces.
	// Sampling it reads only atomics — never the WAL's locks.
	Wal   metrics.WalStats
	Data  device.Stats
	Log   device.Stats
	Flash device.Stats
	// Phases is the commit-path phase breakdown as histogram snapshots
	// (empty with Config.DisableObs).  Like every other field it
	// subtracts: After.Phases.Sub(Before.Phases) isolates a window,
	// and .Summaries() condenses it to quantiles.
	Phases obs.TxPhases
}

// Snapshot returns the current counters.  The buffer pool is sampled once
// — one coherent snapshot per shard, aggregated — so PageAccesses, Pool and
// the Elapsed model all derive from the same counters even while workers
// keep mutating them.
func (db *DB) Snapshot() Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	perShard := db.pool.ShardStats()
	var ps buffer.Stats
	shards := make([]metrics.ShardStats, len(perShard))
	for i, ss := range perShard {
		ps.Add(ss)
		shards[i] = metrics.ShardStats{
			Shard: i, Hits: ss.Hits, Misses: ss.Misses,
			Evictions: ss.Evictions, DirtyEvictions: ss.DirtyEvictions,
			PinWaits: ss.PinWaits,
		}
	}
	s := Snapshot{
		Elapsed:      db.elapsedFor(ps.Hits + ps.Misses),
		Committed:    db.committed,
		Aborted:      db.aborted,
		PageAccesses: ps.Hits + ps.Misses,
		Checkpoints:  db.checkpoints,
		Pool:         ps,
		PoolShards:   shards,
		GroupCommit:  db.log.GroupCommitStats(),
		Wal:          db.log.Stats(),
		Data:         db.dataDev.Stats(),
		Log:          db.logDev.Stats(),
		Phases:       db.obs.phasesSnapshot(),
	}
	if db.locks != nil {
		s.Locks = db.locks.Stats()
	}
	if db.cache != nil {
		s.Cache = db.cache.Stats()
	}
	if sr, ok := db.cache.(face.StripeReporter); ok {
		s.CacheStripes = sr.StripeStats()
	}
	if p, ok := db.cache.(face.PipelineReporter); ok {
		s.Pipeline = p.PipelineStats()
	}
	if db.flashDev != nil {
		s.Flash = db.flashDev.Stats()
	}
	return s
}

// Committed returns the number of committed transactions.
func (db *DB) Committed() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.committed
}

// Cache exposes the flash cache manager (nil without one).
func (db *DB) Cache() face.Extension { return db.cache }

// Pool exposes the DRAM buffer pool.
func (db *DB) Pool() *buffer.Pool { return db.pool }

// Log exposes the write-ahead log manager.
func (db *DB) Log() *wal.Manager { return db.log }

// Locks exposes the page lock manager (nil under the single-writer
// scheduler).
func (db *DB) Locks() *lock.Manager { return db.locks }

// Clock returns the simulated clock.
func (db *DB) Clock() *simclock.Clock { return db.clock }

// NumPages returns the number of allocated pages (excluding the superblock).
func (db *DB) NumPages() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return int64(db.nextPage) - 1
}
