package engine

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/reprolab/face/internal/page"
)

// schedDB opens a small FaCE+GSC database pre-loaded with n value pages.
func schedDB(t *testing.T, n int) (*DB, []page.ID) {
	t.Helper()
	r := newRig(t, PolicyFaCEGSC)
	db := r.open(t, false)
	t.Cleanup(func() { db.Close() })
	var ids []page.ID
	err := db.Update(context.Background(), func(tx *Tx) error {
		for i := 0; i < n; i++ {
			id, err := tx.Alloc(page.TypeHeap)
			if err != nil {
				return err
			}
			if err := tx.Modify(id, func(buf page.Buf) error {
				binary.LittleEndian.PutUint64(buf.Payload(), uint64(i))
				return nil
			}); err != nil {
				return err
			}
			ids = append(ids, id)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, ids
}

func TestViewRejectsWrites(t *testing.T) {
	db, ids := schedDB(t, 4)
	err := db.View(context.Background(), func(tx *Tx) error {
		if !tx.ReadOnly() {
			t.Fatal("View transaction is not read-only")
		}
		if err := tx.Modify(ids[0], func(page.Buf) error { return nil }); !errors.Is(err, ErrConflict) {
			t.Fatalf("Modify in View: %v, want ErrConflict", err)
		}
		if _, err := tx.Alloc(page.TypeHeap); !errors.Is(err, ErrConflict) {
			t.Fatalf("Alloc in View: %v, want ErrConflict", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManagedTxRejectsManualFinish(t *testing.T) {
	db, _ := schedDB(t, 1)
	err := db.Update(context.Background(), func(tx *Tx) error {
		if err := tx.Commit(); !errors.Is(err, ErrTxManaged) {
			t.Fatalf("Commit in Update closure: %v, want ErrTxManaged", err)
		}
		if err := tx.Abort(); !errors.Is(err, ErrTxManaged) {
			t.Fatalf("Abort in Update closure: %v, want ErrTxManaged", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUpdateRollsBackOnError(t *testing.T) {
	db, ids := schedDB(t, 1)
	boom := fmt.Errorf("boom")
	err := db.Update(context.Background(), func(tx *Tx) error {
		if err := tx.Modify(ids[0], func(buf page.Buf) error {
			binary.LittleEndian.PutUint64(buf.Payload(), 999)
			return nil
		}); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Update error = %v, want boom", err)
	}
	err = db.View(context.Background(), func(tx *Tx) error {
		return tx.Read(ids[0], func(buf page.Buf) error {
			if got := binary.LittleEndian.Uint64(buf.Payload()); got != 0 {
				t.Fatalf("value after failed Update = %d, want 0", got)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContextCancellation(t *testing.T) {
	db, ids := schedDB(t, 1)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := db.View(cancelled, func(*Tx) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("View with cancelled context: %v", err)
	}
	if err := db.Update(cancelled, func(*Tx) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Update with cancelled context: %v", err)
	}

	// Cancellation during the closure rolls the transaction back at the
	// commit boundary.
	ctx, cancelMid := context.WithCancel(context.Background())
	err := db.Update(ctx, func(tx *Tx) error {
		if err := tx.Modify(ids[0], func(buf page.Buf) error {
			binary.LittleEndian.PutUint64(buf.Payload(), 4242)
			return nil
		}); err != nil {
			return err
		}
		cancelMid()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Update cancelled mid-closure: %v", err)
	}
	err = db.View(context.Background(), func(tx *Tx) error {
		return tx.Read(ids[0], func(buf page.Buf) error {
			if got := binary.LittleEndian.Uint64(buf.Payload()); got != 0 {
				t.Fatalf("value after cancelled Update = %d, want 0", got)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUpdatePanicRollsBack(t *testing.T) {
	db, ids := schedDB(t, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate out of Update")
			}
		}()
		db.Update(context.Background(), func(tx *Tx) error {
			tx.Modify(ids[0], func(buf page.Buf) error {
				binary.LittleEndian.PutUint64(buf.Payload(), 31337)
				return nil
			})
			panic("kaboom")
		})
	}()
	// The scheduler lock must have been released and the change undone.
	err := db.Update(context.Background(), func(tx *Tx) error {
		return tx.Read(ids[0], func(buf page.Buf) error {
			if got := binary.LittleEndian.Uint64(buf.Payload()); got != 0 {
				t.Fatalf("value after panicked Update = %d, want 0", got)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWritersMutuallyExclusive lets racing Updates mutate a plain variable
// that is protected only by the transaction scheduler; the race detector
// fails the test if Update transactions ever overlap.
func TestWritersMutuallyExclusive(t *testing.T) {
	db, ids := schedDB(t, 1)
	var unguarded int
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				err := db.Update(context.Background(), func(tx *Tx) error {
					unguarded++
					return tx.Modify(ids[0], func(buf page.Buf) error {
						binary.LittleEndian.PutUint64(buf.Payload(), uint64(unguarded))
						return nil
					})
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if unguarded != 8*20 {
		t.Fatalf("unguarded counter = %d, want %d", unguarded, 8*20)
	}
}

func TestViewAfterCloseAndCrash(t *testing.T) {
	r := newRig(t, PolicyNone)
	db := r.open(t, false)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.View(context.Background(), func(*Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("View after Close: %v", err)
	}

	db2 := r.open(t, false)
	db2.Crash()
	if err := db2.Update(context.Background(), func(*Tx) error { return nil }); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Update after Crash: %v", err)
	}
}
