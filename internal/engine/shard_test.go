package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/reprolab/face/internal/buffer"
	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
)

// newShardedEngine opens a flash-cached engine with explicit shard/stripe
// counts.
func newShardedEngine(t *testing.T, shards int) *DB {
	t.Helper()
	cfg := Config{
		DataDev:      device.NewArray("data", device.ProfileCheetah15K, 4, 32768),
		LogDev:       device.New("log", device.ProfileCheetah15K, 1<<16),
		FlashDev:     device.New("flash", device.ProfileSamsung470, 4096),
		BufferPages:  64,
		BufferShards: shards,
		CacheStripes: shards,
		Policy:       PolicyFaCEGSC,
		FlashFrames:  512,
		GroupSize:    16,
		PageLocks:    true,
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestShardedEngineConcurrentWorkload drives concurrent Update/View
// transactions through the sharded pool and striped cache directory and
// verifies (under -race) that the data survives: every page carries the
// value of its last committed write.
func TestShardedEngineConcurrentWorkload(t *testing.T) {
	db := newShardedEngine(t, 4)
	ctx := context.Background()

	const pages = 96 // spills the 64-page buffer so the flash path runs
	ids := make([]page.ID, pages)
	err := db.Update(ctx, func(tx *Tx) error {
		for i := range ids {
			id, err := tx.Alloc(page.TypeHeap)
			if err != nil {
				return err
			}
			ids[i] = id
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	workers := 8
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := ids[(w*13+i)%pages]
				err := db.Update(ctx, func(tx *Tx) error {
					return tx.Modify(id, func(buf page.Buf) error {
						buf[page.HeaderSize]++
						return nil
					})
				})
				if err != nil && !errors.Is(err, ErrDeadlock) {
					t.Errorf("update: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Every page's counter must equal the number of committed increments;
	// verify by re-reading under a View and summing: the commits that did
	// not deadlock all applied exactly once, so the total must equal the
	// engine's committed-update count minus the setup transaction.  The
	// snapshot is taken before the View, whose own read-only commit would
	// tick the counter.
	snap := db.Snapshot()
	var total int64
	err = db.View(ctx, func(tx *Tx) error {
		for _, id := range ids {
			if err := tx.Read(id, func(buf page.Buf) error {
				total += int64(buf[page.HeaderSize])
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	committedIncrements := snap.Committed - 1 // minus the setup transaction
	if total != committedIncrements {
		t.Fatalf("page counters sum to %d, want %d committed increments (lost or duplicated writes)",
			total, committedIncrements)
	}
	if len(snap.PoolShards) != 4 {
		t.Fatalf("PoolShards has %d entries, want 4", len(snap.PoolShards))
	}
}

// TestSnapshotStatsCoherent is the stats-tearing regression test at the
// engine level: Snapshot must derive PageAccesses, Pool and PoolShards
// from one coherent per-shard sampling while transactions keep mutating
// the counters.  Before the fix, PageAccesses and the elapsed-time model
// were computed from two separate pool reads and could disagree.
func TestSnapshotStatsCoherent(t *testing.T) {
	db := newShardedEngine(t, 4)
	ctx := context.Background()
	var ids []page.ID
	err := db.Update(ctx, func(tx *Tx) error {
		for i := 0; i < 16; i++ {
			id, err := tx.Alloc(page.TypeHeap)
			if err != nil {
				return err
			}
			ids = append(ids, id)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[(w*5+i)%len(ids)]
				err := db.View(ctx, func(tx *Tx) error {
					return tx.Read(id, func(page.Buf) error { return nil })
				})
				if err != nil && !errors.Is(err, ErrDeadlock) {
					t.Errorf("view: %v", err)
					return
				}
			}
		}()
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		s := db.Snapshot()
		if s.PageAccesses != s.Pool.Hits+s.Pool.Misses {
			t.Fatalf("snapshot tore: PageAccesses %d != Hits+Misses %d",
				s.PageAccesses, s.Pool.Hits+s.Pool.Misses)
		}
		var hits, misses int64
		for _, ss := range s.PoolShards {
			hits += ss.Hits
			misses += ss.Misses
		}
		if hits != s.Pool.Hits || misses != s.Pool.Misses {
			t.Fatalf("per-shard sums %d/%d disagree with aggregate %d/%d",
				hits, misses, s.Pool.Hits, s.Pool.Misses)
		}
		if hr := s.Pool.HitRate(); hr < 0 || hr > 1 {
			t.Fatalf("hit rate %v outside [0, 1]", hr)
		}
	}
	close(stop)
	wg.Wait()
}

// TestEngineClosePinWaitHang is the shutdown-hang regression test at the
// engine level: a frame allocation parked on the all-pinned condition
// (pins held by transactions begun outside the scheduler, which do not
// hold the lifecycle lock) must be woken by Close and fail with the
// pool's ErrClosed instead of hanging forever.
func TestEngineClosePinWaitHang(t *testing.T) {
	cfg := Config{
		DataDev:      device.NewArray("data", device.ProfileCheetah15K, 4, 32768),
		LogDev:       device.New("log", device.ProfileCheetah15K, 1<<16),
		BufferPages:  2,
		BufferShards: 1,
		Policy:       PolicyNone,
		PageLocks:    true, // enables pin-wait on the pool
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var a, b page.ID
	err = db.Update(ctx, func(tx *Tx) error {
		var err error
		if a, err = tx.Alloc(page.TypeHeap); err != nil {
			return err
		}
		b, err = tx.Alloc(page.TypeHeap)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pin both frames directly (as an unscheduled harness transaction
	// would), then park a third allocation on the pin-wait.
	pool := db.Pool()
	if _, err := pool.Get(a); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Get(b); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := pool.Get(a + 100)
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("Get on an all-pinned pool returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	closed := make(chan error, 1)
	go func() { closed <- db.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung under pinned load")
	}
	select {
	case err := <-got:
		if !errors.Is(err, buffer.ErrClosed) {
			t.Fatalf("woken pin-waiter got %v, want buffer.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pin-waiter not woken by engine Close")
	}
}
