package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
)

// testRig bundles the devices of one database instance so it can be
// crashed and reopened.
type testRig struct {
	data  *device.Array
	log   *device.Device
	flash *device.Device
	cfg   Config
}

func newRig(t *testing.T, policy CachePolicy) *testRig {
	t.Helper()
	r := &testRig{
		data:  device.NewArray("data", device.ProfileCheetah15K, 4, 4096),
		log:   device.New("log", device.ProfileCheetah15K, 8192),
		flash: device.New("flash", device.ProfileSamsung470, 2048),
	}
	r.cfg = Config{
		DataDev:        r.data,
		LogDev:         r.log,
		FlashDev:       r.flash,
		BufferPages:    32,
		Policy:         policy,
		FlashFrames:    256,
		GroupSize:      16,
		SegmentEntries: 64,
	}
	if !policy.UsesFlash() {
		r.cfg.FlashDev = nil
		r.cfg.FlashFrames = 0
	}
	return r
}

func (r *testRig) open(t *testing.T, recover bool) *DB {
	t.Helper()
	cfg := r.cfg
	cfg.Recover = recover
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// writeValue stores a uint64 value in the payload of the page.
func writeValue(t *testing.T, tx *Tx, id page.ID, v uint64) {
	t.Helper()
	if err := tx.Modify(id, func(buf page.Buf) error {
		binary.LittleEndian.PutUint64(buf.Payload(), v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// readValue reads the uint64 value from the payload of the page.
func readValue(t *testing.T, tx *Tx, id page.ID) uint64 {
	t.Helper()
	var v uint64
	if err := tx.Read(id, func(buf page.Buf) error {
		v = binary.LittleEndian.Uint64(buf.Payload())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return v
}

func allPolicies() []CachePolicy {
	return []CachePolicy{PolicyNone, PolicyFaCE, PolicyFaCEGR, PolicyFaCEGSC, PolicyLC, PolicyWriteThrough}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range allPolicies() {
		got, err := ParsePolicy(string(p))
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p, got, err)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != PolicyNone {
		t.Fatalf("ParsePolicy(\"\") = %v, %v", p, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if PolicyNone.UsesFlash() || !PolicyFaCE.UsesFlash() {
		t.Fatal("UsesFlash misbehaves")
	}
	if PolicyFaCE.String() != "face" || CachePolicy("").String() != "none" {
		t.Fatal("String misbehaves")
	}
}

func TestConfigValidation(t *testing.T) {
	r := newRig(t, PolicyFaCE)
	bad := r.cfg
	bad.DataDev = nil
	if _, err := Open(bad); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("missing data device: %v", err)
	}
	bad = r.cfg
	bad.LogDev = nil
	if _, err := Open(bad); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("missing log device: %v", err)
	}
	bad = r.cfg
	bad.FlashDev = nil
	if _, err := Open(bad); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("missing flash device: %v", err)
	}
	bad = r.cfg
	bad.BufferPages = 0
	if _, err := Open(bad); err == nil {
		t.Fatal("zero buffer pages accepted")
	}
	bad = r.cfg
	bad.FlashFrames = 0
	if _, err := Open(bad); err == nil {
		t.Fatal("zero flash frames accepted with a flash policy")
	}
	bad = r.cfg
	bad.Policy = "bogus"
	if _, err := Open(bad); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestBasicTransactionsAcrossPolicies(t *testing.T) {
	for _, policy := range allPolicies() {
		policy := policy
		t.Run(string(policy), func(t *testing.T) {
			r := newRig(t, policy)
			db := r.open(t, false)
			defer db.Close()

			// Allocate pages and write values.
			tx, err := db.Begin()
			if err != nil {
				t.Fatal(err)
			}
			var ids []page.ID
			for i := 0; i < 100; i++ {
				id, err := tx.Alloc(page.TypeHeap)
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
				writeValue(t, tx, id, uint64(i))
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			// Read them back through a workload large enough to overflow
			// the 32-page DRAM buffer, exercising the cache/disk paths.
			tx2, _ := db.Begin()
			for round := 0; round < 3; round++ {
				for i, id := range ids {
					if got := readValue(t, tx2, id); got != uint64(i) {
						t.Fatalf("page %d value = %d, want %d", id, got, i)
					}
				}
			}
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
			if db.Committed() != 2 {
				t.Fatalf("Committed = %d, want 2", db.Committed())
			}
			if db.NumPages() != 100 {
				t.Fatalf("NumPages = %d, want 100", db.NumPages())
			}
			if policy.UsesFlash() {
				if db.Cache() == nil || db.Cache().Stats().StageIns == 0 {
					t.Fatal("flash cache saw no traffic")
				}
			} else if db.Cache() != nil {
				t.Fatal("cache present for PolicyNone")
			}
			if db.Elapsed() <= 0 {
				t.Fatal("Elapsed not positive")
			}
		})
	}
}

func TestAbortRollsBack(t *testing.T) {
	r := newRig(t, PolicyFaCE)
	db := r.open(t, false)
	defer db.Close()

	tx, _ := db.Begin()
	id, err := tx.Alloc(page.TypeHeap)
	if err != nil {
		t.Fatal(err)
	}
	writeValue(t, tx, id, 111)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, _ := db.Begin()
	writeValue(t, tx2, id, 222)
	if got := readValue(t, tx2, id); got != 222 {
		t.Fatalf("uncommitted read = %d", got)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}

	tx3, _ := db.Begin()
	if got := readValue(t, tx3, id); got != 111 {
		t.Fatalf("value after abort = %d, want 111", got)
	}
	tx3.Commit()

	// Operations on finished transactions fail.
	if err := tx2.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Commit after Abort: %v", err)
	}
	if err := tx2.Abort(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double Abort: %v", err)
	}
	if err := tx2.Modify(id, func(page.Buf) error { return nil }); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Modify after Abort: %v", err)
	}
	if err := tx2.Read(id, func(page.Buf) error { return nil }); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Read after Abort: %v", err)
	}
	if _, err := tx2.Alloc(page.TypeHeap); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Alloc after Abort: %v", err)
	}
}

func TestModifyErrorLeavesPageUntouched(t *testing.T) {
	r := newRig(t, PolicyNone)
	db := r.open(t, false)
	defer db.Close()
	tx, _ := db.Begin()
	id, _ := tx.Alloc(page.TypeHeap)
	writeValue(t, tx, id, 5)
	boom := fmt.Errorf("boom")
	err := tx.Modify(id, func(buf page.Buf) error {
		binary.LittleEndian.PutUint64(buf.Payload(), 999)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Modify error = %v", err)
	}
	if got := readValue(t, tx, id); got != 5 {
		t.Fatalf("value after failed Modify = %d, want 5", got)
	}
	tx.Commit()
}

func TestModifyNoChangeWritesNoLog(t *testing.T) {
	r := newRig(t, PolicyNone)
	db := r.open(t, false)
	defer db.Close()
	tx, _ := db.Begin()
	id, _ := tx.Alloc(page.TypeHeap)
	before := db.Log().Next()
	if err := tx.Modify(id, func(buf page.Buf) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if db.Log().Next() != before {
		t.Fatal("no-op Modify appended a log record")
	}
	tx.Commit()
}

func crashRecoverScenario(t *testing.T, policy CachePolicy) {
	r := newRig(t, policy)
	db := r.open(t, false)

	// Committed state before the crash.
	tx, _ := db.Begin()
	var ids []page.ID
	for i := 0; i < 200; i++ {
		id, err := tx.Alloc(page.TypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		writeValue(t, tx, id, uint64(i))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// More committed updates after the checkpoint.
	tx2, _ := db.Begin()
	for i := 0; i < 100; i++ {
		writeValue(t, tx2, ids[i], uint64(i)+1000)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	// An uncommitted (loser) transaction.
	tx3, _ := db.Begin()
	for i := 100; i < 150; i++ {
		writeValue(t, tx3, ids[i], 7777)
	}
	// Force the loser's pages out of DRAM so some reach the persistent
	// database before the crash.
	tx4, _ := db.Begin()
	for i := 150; i < 200; i++ {
		_ = readValue(t, tx4, ids[i])
	}
	tx4.Commit()

	db.Crash()

	// A crashed database refuses new work.
	if _, err := db.Begin(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Begin after crash: %v", err)
	}

	db2 := r.open(t, true)
	defer db2.Close()
	rep := db2.RecoveryReport()
	if rep == nil {
		t.Fatal("no recovery report after recovering open")
	}
	if rep.TotalTime <= 0 {
		t.Fatal("recovery took no simulated time")
	}

	tx5, _ := db2.Begin()
	for i := 0; i < 100; i++ {
		if got := readValue(t, tx5, ids[i]); got != uint64(i)+1000 {
			t.Fatalf("policy %s: committed update lost: page %d = %d, want %d", policy, ids[i], got, i+1000)
		}
	}
	for i := 100; i < 150; i++ {
		if got := readValue(t, tx5, ids[i]); got == 7777 {
			t.Fatalf("policy %s: loser transaction survived on page %d", policy, ids[i])
		}
	}
	for i := 150; i < 200; i++ {
		if got := readValue(t, tx5, ids[i]); got != uint64(i) {
			t.Fatalf("policy %s: baseline value lost: page %d = %d, want %d", policy, ids[i], got, i)
		}
	}
	tx5.Commit()
}

func TestCrashRecoveryAllPolicies(t *testing.T) {
	for _, policy := range allPolicies() {
		policy := policy
		t.Run(string(policy), func(t *testing.T) { crashRecoverScenario(t, policy) })
	}
}

func TestFaCERecoveryReadsMostlyFromFlash(t *testing.T) {
	r := newRig(t, PolicyFaCEGSC)
	db := r.open(t, false)
	tx, _ := db.Begin()
	var ids []page.ID
	for i := 0; i < 150; i++ {
		id, _ := tx.Alloc(page.TypeHeap)
		ids = append(ids, id)
		writeValue(t, tx, id, uint64(i))
	}
	tx.Commit()
	db.Checkpoint()
	tx2, _ := db.Begin()
	for i := 0; i < 150; i++ {
		writeValue(t, tx2, ids[i], uint64(i)*3)
	}
	tx2.Commit()
	db.Crash()

	db2 := r.open(t, true)
	defer db2.Close()
	rep := db2.RecoveryReport()
	if rep.FlashReads == 0 {
		t.Fatal("FaCE recovery read nothing from flash")
	}
	if rep.FlashReads < rep.DiskReads {
		t.Fatalf("FaCE recovery should be served mostly by flash: flash=%d disk=%d",
			rep.FlashReads, rep.DiskReads)
	}
}

func TestHDDOnlyRecoverySlowerThanFaCE(t *testing.T) {
	run := func(policy CachePolicy) time.Duration {
		r := newRig(t, policy)
		db := r.open(t, false)
		tx, _ := db.Begin()
		var ids []page.ID
		for i := 0; i < 200; i++ {
			id, _ := tx.Alloc(page.TypeHeap)
			ids = append(ids, id)
			writeValue(t, tx, id, uint64(i))
		}
		tx.Commit()
		db.Checkpoint()
		tx2, _ := db.Begin()
		for i := 0; i < 200; i++ {
			writeValue(t, tx2, ids[i], uint64(i)+5)
		}
		tx2.Commit()
		db.Crash()
		db2 := r.open(t, true)
		defer db2.Close()
		return db2.RecoveryReport().TotalTime
	}
	faceTime := run(PolicyFaCEGSC)
	hddTime := run(PolicyNone)
	if faceTime >= hddTime {
		t.Fatalf("FaCE restart (%v) should be faster than HDD-only restart (%v)", faceTime, hddTime)
	}
}

func TestPeriodicCheckpointViaTick(t *testing.T) {
	r := newRig(t, PolicyFaCE)
	r.cfg.CheckpointEvery = 50 * time.Millisecond
	db := r.open(t, false)
	defer db.Close()

	tx, _ := db.Begin()
	var ids []page.ID
	for i := 0; i < 50; i++ {
		id, _ := tx.Alloc(page.TypeHeap)
		ids = append(ids, id)
	}
	tx.Commit()

	for round := 0; round < 60; round++ {
		tx, _ := db.Begin()
		for _, id := range ids {
			writeValue(t, tx, id, uint64(round))
		}
		tx.Commit()
		if err := db.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if db.Checkpoints() == 0 {
		t.Fatal("periodic checkpoints never fired")
	}
	if db.Clock().Now() == 0 {
		t.Fatal("Tick did not advance the simulated clock")
	}
}

func TestSnapshotDeltas(t *testing.T) {
	r := newRig(t, PolicyFaCE)
	db := r.open(t, false)
	defer db.Close()
	tx, _ := db.Begin()
	id, _ := tx.Alloc(page.TypeHeap)
	writeValue(t, tx, id, 1)
	tx.Commit()

	before := db.Snapshot()
	tx2, _ := db.Begin()
	for i := 0; i < 10; i++ {
		writeValue(t, tx2, id, uint64(i))
	}
	tx2.Commit()
	after := db.Snapshot()

	if after.Committed-before.Committed != 1 {
		t.Fatalf("committed delta = %d", after.Committed-before.Committed)
	}
	if after.PageAccesses <= before.PageAccesses {
		t.Fatal("page accesses did not grow")
	}
	if after.Elapsed < before.Elapsed {
		t.Fatal("elapsed went backwards")
	}
}

func TestCloseMakesDataDeviceSelfContained(t *testing.T) {
	r := newRig(t, PolicyFaCEGSC)
	db := r.open(t, false)
	tx, _ := db.Begin()
	var ids []page.ID
	for i := 0; i < 300; i++ {
		id, _ := tx.Alloc(page.TypeHeap)
		ids = append(ids, id)
		writeValue(t, tx, id, uint64(i)*7)
	}
	tx.Commit()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Begin after close fails.
	if _, err := db.Begin(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Begin after Close: %v", err)
	}
	// Closing twice is fine.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen without the flash cache: every committed value must be
	// readable straight from disk.
	cfg := r.cfg
	cfg.Policy = PolicyNone
	cfg.FlashDev = nil
	cfg.FlashFrames = 0
	db2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tx2, _ := db2.Begin()
	for i, id := range ids {
		if got := readValue(t, tx2, id); got != uint64(i)*7 {
			t.Fatalf("page %d = %d after Close, want %d", id, got, uint64(i)*7)
		}
	}
	tx2.Commit()
}

func TestAllocExhaustsDevice(t *testing.T) {
	r := &testRig{
		data: device.NewArray("data", device.ProfileCheetah15K, 1, 4),
		log:  device.New("log", device.ProfileCheetah15K, 256),
	}
	r.cfg = Config{DataDev: r.data, LogDev: r.log, BufferPages: 4, Policy: PolicyNone}
	db := r.open(t, false)
	defer db.Close()
	tx, _ := db.Begin()
	for {
		_, err := tx.Alloc(page.TypeHeap)
		if err != nil {
			return // expected: device full
		}
		if db.NumPages() > 10 {
			t.Fatal("allocation never hit the device capacity")
		}
	}
}
