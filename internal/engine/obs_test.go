package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/reprolab/face/internal/obs"
	"github.com/reprolab/face/internal/page"
)

// TestObsPhaseSumInvariant checks the defining property of the commit
// trace: the phases are disjoint wall-time windows inside one
// transaction, so their sum never exceeds the total latency — and for a
// transaction dominated by a slow closure, the closure phase captures
// most of it.
func TestObsPhaseSumInvariant(t *testing.T) {
	r := newRig(t, PolicyNone)
	db := r.open(t, false)
	defer db.Close()

	ctx := context.Background()
	var id page.ID
	if err := db.Update(ctx, func(tx *Tx) error {
		var err error
		id, err = tx.Alloc(page.TypeHeap)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	before := db.Snapshot().Phases
	if err := db.Update(ctx, func(tx *Tx) error {
		time.Sleep(5 * time.Millisecond)
		writeValue(t, tx, id, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	p := db.Snapshot().Phases.Sub(before)
	if p.Total.Count != 1 {
		t.Fatalf("total count = %d, want 1", p.Total.Count)
	}
	total := time.Duration(p.Total.Sum)
	phaseSum := time.Duration(p.Admission.Sum + p.LockWait.Sum + p.Buffer.Sum +
		p.WalAppend.Sum + p.DurableWait.Sum + p.Closure.Sum)
	if phaseSum > total {
		t.Fatalf("phase sum %v exceeds total %v", phaseSum, total)
	}
	// The 5ms sleep dominates; the untraced remainder (scheduler entry,
	// commit bookkeeping) must be small, so phaseSum ≈ total.
	if phaseSum < total/2 {
		t.Fatalf("phase sum %v accounts for under half of total %v", phaseSum, total)
	}
	if c := time.Duration(p.Closure.Sum); c < 5*time.Millisecond {
		t.Fatalf("closure phase %v did not absorb the 5ms sleep", c)
	}
}

// TestObsSlowTxLogsOnce checks that the slow-transaction log fires
// exactly once per outlier and not at all for fast transactions.
func TestObsSlowTxLogsOnce(t *testing.T) {
	r := newRig(t, PolicyNone)
	var mu sync.Mutex
	var lines []string
	r.cfg.SlowTxThreshold = 2 * time.Millisecond
	r.cfg.Logf = func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	db := r.open(t, false)
	defer db.Close()

	ctx := context.Background()
	var id page.ID
	if err := db.Update(ctx, func(tx *Tx) error {
		var err error
		id, err = tx.Alloc(page.TypeHeap)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Fast transactions: below threshold, no log lines.
	for i := 0; i < 5; i++ {
		if err := db.Update(ctx, func(tx *Tx) error {
			writeValue(t, tx, id, uint64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	fast := len(lines)
	mu.Unlock()
	if fast != 0 {
		t.Fatalf("fast transactions emitted %d slow-tx lines: %q", fast, lines)
	}
	// One outlier: exactly one line.
	if err := db.Update(ctx, func(tx *Tx) error {
		time.Sleep(5 * time.Millisecond)
		writeValue(t, tx, id, 99)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("outlier emitted %d slow-tx lines, want 1: %q", len(lines), lines)
	}
	for _, field := range []string{"slow tx", "total=", "admission=", "lock=", "buffer=", "wal=", "durable=", "closure="} {
		if !strings.Contains(lines[0], field) {
			t.Errorf("slow-tx line missing %q: %s", field, lines[0])
		}
	}
	if got := db.Metrics().Counter("face_slow_tx_total").Value(); got != 1 {
		t.Errorf("face_slow_tx_total = %d, want 1", got)
	}
}

// TestObsDisabled checks the opt-out: no registry, empty phase
// snapshots, and transactions that still work.
func TestObsDisabled(t *testing.T) {
	r := newRig(t, PolicyNone)
	r.cfg.DisableObs = true
	r.cfg.SlowTxThreshold = time.Nanosecond // must be inert when disabled
	db := r.open(t, false)
	defer db.Close()

	if db.Metrics() != nil {
		t.Fatal("Metrics() non-nil with DisableObs")
	}
	ctx := context.Background()
	if err := db.Update(ctx, func(tx *Tx) error {
		id, err := tx.Alloc(page.TypeHeap)
		if err != nil {
			return err
		}
		writeValue(t, tx, id, 7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(ctx, func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	p := db.Snapshot().Phases
	if p.Total.Count != 0 || len(p.Total.Buckets) != 0 {
		t.Fatalf("disabled obs produced phase data: %+v", p.Total)
	}
}

// TestObsMetricsRegistered checks that a live database registers the
// per-layer metrics on its registry and that traced work lands in them,
// including under the page-lock scheduler.
func TestObsMetricsRegistered(t *testing.T) {
	r := newRig(t, PolicyFaCE)
	r.cfg.PageLocks = true
	r.cfg.MaxWriters = 2
	db := r.open(t, false)
	defer db.Close()

	ctx := context.Background()
	var id page.ID
	if err := db.Update(ctx, func(tx *Tx) error {
		var err error
		id, err = tx.Alloc(page.TypeHeap)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Update(ctx, func(tx *Tx) error {
			writeValue(t, tx, id, uint64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	db.Metrics().WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"face_tx_total_seconds_count 11",
		`face_tx_phase_seconds_count{phase="durable_wait"} 11`,
		"face_committed_total 11",
		"face_wal_appends_total",
		"face_pool_hits_total",
		"face_lock_waits_total",
		"face_cache_lookups_total",
		"face_slow_tx_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics output", want)
		}
	}
	// Shared-registry path: snapshot phases line up with the histograms.
	if p := db.Snapshot().Phases; p.Total.Count != 11 {
		t.Errorf("snapshot total count = %d, want 11", p.Total.Count)
	}
}

// TestObsSharedRegistry checks that a caller-supplied registry receives
// the engine's metrics (the faced wiring).
func TestObsSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	r := newRig(t, PolicyNone)
	r.cfg.Obs = reg
	db := r.open(t, false)
	defer db.Close()
	if db.Metrics() != reg {
		t.Fatal("engine did not adopt the supplied registry")
	}
	if err := db.Update(context.Background(), func(tx *Tx) error {
		_, err := tx.Alloc(page.TypeHeap)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "face_tx_total_seconds_count 1") {
		t.Error("supplied registry missing engine histograms")
	}
}
