package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
)

// gatedFlash wraps the flash device and blocks writes while the gate is
// closed, holding a background group write in flight deterministically.
type gatedFlash struct {
	device.Dev
	mu     sync.Mutex
	gated  bool
	gate   chan struct{}
	writes atomic.Int64
}

func newGatedFlash(inner device.Dev) *gatedFlash {
	return &gatedFlash{Dev: inner, gate: make(chan struct{})}
}

func (g *gatedFlash) closeGate() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.gated {
		g.gated = true
		g.gate = make(chan struct{})
	}
}

func (g *gatedFlash) openGate() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.gated {
		g.gated = false
		close(g.gate)
	}
}

func (g *gatedFlash) wait() {
	g.mu.Lock()
	ch := g.gate
	gated := g.gated
	g.mu.Unlock()
	if gated {
		<-ch
	}
}

func (g *gatedFlash) WriteAt(blk int64, p []byte) error {
	g.wait()
	g.writes.Add(1)
	return g.Dev.WriteAt(blk, p)
}

func (g *gatedFlash) WriteRun(blk int64, pages [][]byte) error {
	g.wait()
	g.writes.Add(int64(len(pages)))
	return g.Dev.WriteRun(blk, pages)
}

// TestAsyncPoolGetReturnsWhileGroupWriteInFlight is the acceptance proof
// of the pipeline: with async I/O enabled, DRAM eviction — and therefore
// Pool.Get and the transactions driving it — completes while the flash
// group write it triggered is still blocked inside the device.
func TestAsyncPoolGetReturnsWhileGroupWriteInFlight(t *testing.T) {
	r := newRig(t, PolicyFaCEGR)
	gate := newGatedFlash(r.flash)
	r.cfg.FlashDev = gate
	r.cfg.BufferPages = 8
	r.cfg.AsyncIODepth = 64
	db := r.open(t, false)
	ctx := context.Background()

	// Allocate working pages first, with the gate open.
	var ids []page.ID
	if err := db.Update(ctx, func(tx *Tx) error {
		for i := 0; i < 24; i++ {
			id, err := tx.Alloc(page.TypeHeap)
			if err != nil {
				return err
			}
			writeValue(t, tx, id, uint64(i))
			ids = append(ids, id)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Close the gate: every flash frame write now hangs.  Touching three
	// times the buffer capacity forces a stream of evictions; with the
	// synchronous path this would deadlock against the gate, with the
	// pipeline it must finish while the group write is still in flight.
	gate.closeGate()
	done := make(chan error, 1)
	go func() {
		done <- db.Update(ctx, func(tx *Tx) error {
			for round := 0; round < 1; round++ {
				for i, id := range ids {
					writeValue(t, tx, id, uint64(1000+i))
				}
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("transactions blocked on the gated flash device: eviction waited on a group write")
	}

	gate.openGate()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if gate.writes.Load() == 0 {
		t.Fatal("no flash writes happened; the cache was not exercised")
	}

	// The data device is self-contained after Close.
	db2 := r.open(t, false)
	defer db2.Close()
	if err := db2.View(ctx, func(tx *Tx) error {
		for i, id := range ids {
			if got := readValue(t, tx, id); got != uint64(1000+i) {
				t.Fatalf("page %d = %d, want %d", id, got, 1000+i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncCrashRecoversAllCommits crashes the engine with the staging
// ring mid-flight and verifies that recovery reproduces every committed
// update: pages lost from the volatile pipeline are redone from the log,
// and no dirty page is lost across Crash/Recover.
func TestAsyncCrashRecoversAllCommits(t *testing.T) {
	for _, policy := range []CachePolicy{PolicyFaCE, PolicyFaCEGR, PolicyFaCEGSC} {
		t.Run(policy.String(), func(t *testing.T) {
			r := newRig(t, policy)
			r.cfg.AsyncIODepth = 32
			r.cfg.IOWriters = 2
			r.cfg.BufferPages = 8
			db := r.open(t, false)
			ctx := context.Background()

			var ids []page.ID
			if err := db.Update(ctx, func(tx *Tx) error {
				for i := 0; i < 48; i++ {
					id, err := tx.Alloc(page.TypeHeap)
					if err != nil {
						return err
					}
					ids = append(ids, id)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			// Many small committed transactions keep the pipeline busy so
			// the crash catches staged pages in flight.
			for round := 0; round < 6; round++ {
				for i, id := range ids {
					if err := db.Update(ctx, func(tx *Tx) error {
						writeValue(t, tx, id, uint64(round*1000+i))
						return nil
					}); err != nil {
						t.Fatal(err)
					}
				}
			}
			db.Crash()

			db2 := r.open(t, true)
			defer db2.Close()
			if err := db2.View(ctx, func(tx *Tx) error {
				for i, id := range ids {
					if got := readValue(t, tx, id); got != uint64(5000+i) {
						t.Fatalf("page %d = %d, want %d", id, got, 5000+i)
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAsyncCloseDrainsEverything closes an async database and verifies the
// data device alone reproduces every committed value (the close-side of
// the "no lost dirty pages" guarantee).
func TestAsyncCloseDrainsEverything(t *testing.T) {
	r := newRig(t, PolicyFaCEGSC)
	r.cfg.AsyncIODepth = 16
	r.cfg.IOWriters = 2
	r.cfg.BufferPages = 8
	db := r.open(t, false)
	ctx := context.Background()

	var ids []page.ID
	if err := db.Update(ctx, func(tx *Tx) error {
		for i := 0; i < 40; i++ {
			id, err := tx.Alloc(page.TypeHeap)
			if err != nil {
				return err
			}
			writeValue(t, tx, id, uint64(7000+i))
			ids = append(ids, id)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen WITHOUT the flash device: only the data device contents count.
	cfg := r.cfg
	cfg.Policy = PolicyNone
	cfg.FlashDev = nil
	cfg.FlashFrames = 0
	cfg.AsyncIODepth = 0
	db2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.View(ctx, func(tx *Tx) error {
		for i, id := range ids {
			if got := readValue(t, tx, id); got != uint64(7000+i) {
				t.Fatalf("page %d = %d, want %d (dirty page lost across Close)", id, got, 7000+i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncSnapshotExposesPipelineStats checks the pipeline counters
// surface through the engine snapshot.
func TestAsyncSnapshotExposesPipelineStats(t *testing.T) {
	r := newRig(t, PolicyFaCEGR)
	r.cfg.AsyncIODepth = 16
	r.cfg.BufferPages = 8
	db := r.open(t, false)
	defer db.Close()
	ctx := context.Background()
	if err := db.Update(ctx, func(tx *Tx) error {
		for i := 0; i < 32; i++ {
			id, err := tx.Alloc(page.TypeHeap)
			if err != nil {
				return err
			}
			writeValue(t, tx, id, uint64(i))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s := db.Snapshot()
	if s.Pipeline.Staged == 0 || s.Pipeline.Batches == 0 {
		t.Fatalf("pipeline stats not surfaced: %+v", s.Pipeline)
	}
}

// TestSyncConfigStillSynchronous pins the default: without WithAsyncIO the
// cache manager has no background machinery.
func TestSyncConfigStillSynchronous(t *testing.T) {
	r := newRig(t, PolicyFaCEGR)
	db := r.open(t, false)
	defer db.Close()
	if _, ok := db.Cache().(interface{ PipelineStats() any }); ok {
		t.Fatal("sync config produced an async cache")
	}
	if s := db.Snapshot(); s.Pipeline.Staged != 0 {
		t.Fatalf("sync config reports pipeline activity: %+v", s.Pipeline)
	}
}
