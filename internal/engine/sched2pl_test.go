package engine

import (
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reprolab/face/internal/page"
)

// schedDB2PL opens a database under the page-lock scheduler, pre-loaded
// with n value pages.
func schedDB2PL(t *testing.T, n int, maxWriters int) (*DB, []page.ID) {
	t.Helper()
	r := newRig(t, PolicyFaCEGSC)
	r.cfg.PageLocks = true
	r.cfg.MaxWriters = maxWriters
	db := r.open(t, false)
	t.Cleanup(func() { db.Close() })
	var ids []page.ID
	err := db.Update(context.Background(), func(tx *Tx) error {
		for i := 0; i < n; i++ {
			id, err := tx.Alloc(page.TypeHeap)
			if err != nil {
				return err
			}
			ids = append(ids, id)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, ids
}

// retryUpdate runs an Update, retrying while it is refused with
// ErrDeadlock, and returns the number of deadlock retries.  Retries back
// off briefly so a transaction whose lock order opposes the prevailing
// traffic is not re-victimized forever by a continuous stream of
// conflicting peers.
func retryUpdate(ctx context.Context, db *DB, fn func(*Tx) error) (int, error) {
	retries := 0
	for {
		err := db.Update(ctx, fn)
		if !errors.Is(err, ErrDeadlock) {
			return retries, err
		}
		retries++
		backoff := time.Duration(retries) * 50 * time.Microsecond
		if backoff > 2*time.Millisecond {
			backoff = 2 * time.Millisecond
		}
		time.Sleep(backoff)
	}
}

// TestPageLocksWritersOverlap proves Update transactions really run
// concurrently under the page-lock scheduler: two writers on disjoint
// pages must both be inside their closures at the same time, which the
// single-writer scheduler makes impossible.
func TestPageLocksWritersOverlap(t *testing.T) {
	db, ids := schedDB2PL(t, 2, 0)
	var (
		here  = make(chan struct{})
		there = make(chan struct{})
		wg    sync.WaitGroup
		errs  = make(chan error, 2)
	)
	meet := func(own page.ID, arrive, wait chan struct{}) {
		defer wg.Done()
		errs <- db.Update(context.Background(), func(tx *Tx) error {
			if err := tx.Modify(own, func(buf page.Buf) error {
				binary.LittleEndian.PutUint64(buf.Payload(), 1)
				return nil
			}); err != nil {
				return err
			}
			close(arrive)
			select {
			case <-wait:
				return nil
			case <-time.After(10 * time.Second):
				return errors.New("peer never entered its closure: writers are serialized")
			}
		})
	}
	wg.Add(2)
	go meet(ids[0], here, there)
	go meet(ids[1], there, here)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPageLocksDeadlockExactlyOneVictim forces the classic AB/BA cycle
// through real transactions: exactly one Update must be refused with
// ErrDeadlock (and roll back), the other must commit, and the victim must
// succeed on retry.
func TestPageLocksDeadlockExactlyOneVictim(t *testing.T) {
	db, ids := schedDB2PL(t, 2, 0)
	a, b := ids[0], ids[1]
	set := func(tx *Tx, id page.ID, v uint64) error {
		return tx.Modify(id, func(buf page.Buf) error {
			binary.LittleEndian.PutUint64(buf.Payload(), v)
			return nil
		})
	}

	haveA := make(chan struct{})
	haveB := make(chan struct{})
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs <- db.Update(context.Background(), func(tx *Tx) error {
			if err := set(tx, a, 11); err != nil {
				return err
			}
			close(haveA)
			<-haveB
			return set(tx, b, 12)
		})
	}()
	go func() {
		defer wg.Done()
		errs <- db.Update(context.Background(), func(tx *Tx) error {
			if err := set(tx, b, 21); err != nil {
				return err
			}
			close(haveB)
			<-haveA
			return set(tx, a, 22)
		})
	}()
	wg.Wait()
	close(errs)

	var deadlocks, committed int
	for err := range errs {
		switch {
		case err == nil:
			committed++
		case errors.Is(err, ErrDeadlock):
			deadlocks++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if deadlocks != 1 || committed != 1 {
		t.Fatalf("deadlocks=%d committed=%d, want exactly one of each", deadlocks, committed)
	}
	snap := db.Snapshot()
	if snap.Locks.Deadlocks != 1 {
		t.Fatalf("Snapshot.Locks.Deadlocks = %d, want 1", snap.Locks.Deadlocks)
	}
	if snap.Locks.Waits == 0 {
		t.Fatal("Snapshot.Locks.Waits = 0, want a blocked waiter")
	}

	// The victim rolled back cleanly: both pages carry the winner's
	// values, not a mix, and a retry of the losing pattern commits.
	if err := db.View(context.Background(), func(tx *Tx) error {
		var va, vb uint64
		if err := tx.Read(a, func(buf page.Buf) error { va = binary.LittleEndian.Uint64(buf.Payload()); return nil }); err != nil {
			return err
		}
		if err := tx.Read(b, func(buf page.Buf) error { vb = binary.LittleEndian.Uint64(buf.Payload()); return nil }); err != nil {
			return err
		}
		ok := (va == 11 && vb == 12) || (va == 22 && vb == 21)
		if !ok {
			t.Fatalf("post-deadlock state mixes transactions: a=%d b=%d", va, vb)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := retryUpdate(context.Background(), db, func(tx *Tx) error {
		if err := set(tx, a, 31); err != nil {
			return err
		}
		return set(tx, b, 32)
	}); err != nil {
		t.Fatalf("retry after deadlock: %v", err)
	}
}

// TestPageLocksUpgradeStorm: every writer reads the counter page (shared
// lock) and then increments it (upgrade to exclusive).  Deadlock victims
// retry; no increment may be lost.
func TestPageLocksUpgradeStorm(t *testing.T) {
	db, ids := schedDB2PL(t, 1, 0)
	ctr := ids[0]
	const writers = 8
	const perWriter = 10

	var wg sync.WaitGroup
	var deadlockRetries atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				retries, err := retryUpdate(context.Background(), db, func(tx *Tx) error {
					var cur uint64
					if err := tx.Read(ctr, func(buf page.Buf) error {
						cur = binary.LittleEndian.Uint64(buf.Payload())
						return nil
					}); err != nil {
						return err
					}
					return tx.Modify(ctr, func(buf page.Buf) error {
						binary.LittleEndian.PutUint64(buf.Payload(), cur+1)
						return nil
					})
				})
				if err != nil {
					t.Error(err)
					return
				}
				deadlockRetries.Add(int64(retries))
			}
		}()
	}
	wg.Wait()

	if err := db.View(context.Background(), func(tx *Tx) error {
		return tx.Read(ctr, func(buf page.Buf) error {
			if got := binary.LittleEndian.Uint64(buf.Payload()); got != writers*perWriter {
				t.Fatalf("counter = %d, want %d (lost updates)", got, writers*perWriter)
			}
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	if snap.Locks.Upgrades == 0 {
		t.Fatalf("no upgrades recorded: %+v", snap.Locks)
	}
	if snap.Committed < writers*perWriter {
		t.Fatalf("committed %d < %d", snap.Committed, writers*perWriter)
	}
}

// TestPageLocksCancellationUnblocksQueuedWriter: a writer queued on a page
// lock must unblock promptly when its context is cancelled, and the lock
// holder must be unaffected.
func TestPageLocksCancellationUnblocksQueuedWriter(t *testing.T) {
	db, ids := schedDB2PL(t, 1, 0)
	id := ids[0]

	holding := make(chan struct{})
	release := make(chan struct{})
	holder := make(chan error, 1)
	go func() {
		holder <- db.Update(context.Background(), func(tx *Tx) error {
			if err := tx.Modify(id, func(buf page.Buf) error {
				binary.LittleEndian.PutUint64(buf.Payload(), 7)
				return nil
			}); err != nil {
				return err
			}
			close(holding)
			<-release
			return nil
		})
	}()
	<-holding

	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan error, 1)
	go func() {
		blocked <- db.Update(ctx, func(tx *Tx) error {
			return tx.Modify(id, func(buf page.Buf) error {
				binary.LittleEndian.PutUint64(buf.Payload(), 8)
				return nil
			})
		})
	}()
	// Give the second writer time to queue on the page lock, then cancel.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-blocked:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled writer returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled writer stayed blocked on the page lock")
	}

	close(release)
	if err := <-holder; err != nil {
		t.Fatalf("holder: %v", err)
	}
	snap := db.Snapshot()
	if snap.Locks.Cancels == 0 {
		t.Fatalf("no cancelled waits recorded: %+v", snap.Locks)
	}
	// The holder's value survived; the cancelled writer left nothing.
	if err := db.View(context.Background(), func(tx *Tx) error {
		return tx.Read(id, func(buf page.Buf) error {
			if got := binary.LittleEndian.Uint64(buf.Payload()); got != 7 {
				t.Fatalf("value = %d, want the holder's 7", got)
			}
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPageLocksSerializableTransfers moves value between two pages from
// many writers while Views verify the invariant (the sum is constant) —
// shared page locks give readers a consistent multi-page snapshot.
func TestPageLocksSerializableTransfers(t *testing.T) {
	db, ids := schedDB2PL(t, 2, 0)
	a, b := ids[0], ids[1]
	const total = 1000

	if _, err := retryUpdate(context.Background(), db, func(tx *Tx) error {
		return tx.Modify(a, func(buf page.Buf) error {
			binary.LittleEndian.PutUint64(buf.Payload(), total)
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}

	var writers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 25; i++ {
				// Random lock order provokes deadlocks on purpose.
				src, dst := a, b
				if rng.Intn(2) == 0 {
					src, dst = b, a
				}
				amount := uint64(rng.Intn(5))
				_, err := retryUpdate(context.Background(), db, func(tx *Tx) error {
					var have uint64
					if err := tx.Read(src, func(buf page.Buf) error {
						have = binary.LittleEndian.Uint64(buf.Payload())
						return nil
					}); err != nil {
						return err
					}
					move := amount
					if move > have {
						move = have
					}
					if err := tx.Modify(src, func(buf page.Buf) error {
						binary.LittleEndian.PutUint64(buf.Payload(), have-move)
						return nil
					}); err != nil {
						return err
					}
					return tx.Modify(dst, func(buf page.Buf) error {
						v := binary.LittleEndian.Uint64(buf.Payload())
						binary.LittleEndian.PutUint64(buf.Payload(), v+move)
						return nil
					})
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w + 1))
	}

	viewErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				viewErr <- nil
				return
			case <-time.After(200 * time.Microsecond):
				// Pace the verifier: a reader re-acquiring the pages in a
				// tight loop would keep re-victimizing writers whose lock
				// order opposes it.
			}
			err := db.View(context.Background(), func(tx *Tx) error {
				var va, vb uint64
				if err := tx.Read(a, func(buf page.Buf) error { va = binary.LittleEndian.Uint64(buf.Payload()); return nil }); err != nil {
					return err
				}
				if err := tx.Read(b, func(buf page.Buf) error { vb = binary.LittleEndian.Uint64(buf.Payload()); return nil }); err != nil {
					return err
				}
				if va+vb != total {
					t.Errorf("invariant broken: %d + %d != %d", va, vb, total)
				}
				return nil
			})
			if err != nil && !errors.Is(err, ErrDeadlock) {
				viewErr <- err
				return
			}
		}
	}()

	// Wait for the writers, then stop the verifying reader.
	writers.Wait()
	close(stop)
	if err := <-viewErr; err != nil {
		t.Fatal(err)
	}
}

// TestPageLocksMaxWriters bounds writer admission: with MaxWriters=1 two
// Update closures must never overlap even though the page-lock scheduler
// would otherwise admit them together.
func TestPageLocksMaxWriters(t *testing.T) {
	db, ids := schedDB2PL(t, 2, 1)
	var inside, maxInside atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(own page.ID) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				err := db.Update(context.Background(), func(tx *Tx) error {
					now := inside.Add(1)
					defer inside.Add(-1)
					for {
						seen := maxInside.Load()
						if now <= seen || maxInside.CompareAndSwap(seen, now) {
							break
						}
					}
					return tx.Modify(own, func(buf page.Buf) error {
						binary.LittleEndian.PutUint64(buf.Payload(), uint64(i))
						return nil
					})
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(ids[w%2])
	}
	wg.Wait()
	if maxInside.Load() != 1 {
		t.Fatalf("max concurrent writers = %d, want 1", maxInside.Load())
	}
}

// TestPageLocksGroupCommitBatching: concurrent writers on disjoint pages
// commit in parallel; their log forces must batch (piggybacked > 0,
// strictly fewer device writes than force requests).
func TestPageLocksGroupCommitBatching(t *testing.T) {
	// MaxWriters doubles as the expected fan-in hint, which lets the
	// group-commit leader collect a batch even on GOMAXPROCS=1 where
	// commits never overlap by accident.
	db, ids := schedDB2PL(t, 4, 4)
	before := db.Snapshot()
	const perWriter = 40
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(own page.ID) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_, err := retryUpdate(context.Background(), db, func(tx *Tx) error {
					return tx.Modify(own, func(buf page.Buf) error {
						binary.LittleEndian.PutUint64(buf.Payload(), uint64(i+1))
						return nil
					})
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(ids[w])
	}
	wg.Wait()
	gc := db.Snapshot().GroupCommit.Sub(before.GroupCommit)
	if gc.Requests < 4*perWriter {
		t.Fatalf("Requests = %d, want >= %d commit forces", gc.Requests, 4*perWriter)
	}
	if gc.Piggybacked == 0 {
		t.Fatalf("no piggybacked forces across %d concurrent commits: %+v", 4*perWriter, gc)
	}
	if gc.Forces >= gc.Requests {
		t.Fatalf("group commit did not batch: %+v", gc)
	}
	t.Logf("group commit fan-in %.2f (%d requests, %d writes, %d piggybacked)",
		gc.FanIn(), gc.Requests, gc.Forces, gc.Piggybacked)
}

// TestPageLocksCrashRecovery: concurrent writers, a crash, and recovery —
// committed transactions survive, and the interleaved multi-writer log
// replays cleanly.
func TestPageLocksCrashRecovery(t *testing.T) {
	r := newRig(t, PolicyFaCEGSC)
	r.cfg.PageLocks = true
	db := r.open(t, false)
	var ids []page.ID
	err := db.Update(context.Background(), func(tx *Tx) error {
		for i := 0; i < 4; i++ {
			id, err := tx.Alloc(page.TypeHeap)
			if err != nil {
				return err
			}
			ids = append(ids, id)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(own page.ID, base uint64) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := retryUpdate(context.Background(), db, func(tx *Tx) error {
					return tx.Modify(own, func(buf page.Buf) error {
						binary.LittleEndian.PutUint64(buf.Payload(), base+uint64(i))
						return nil
					})
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(ids[w], uint64((w+1)*100))
	}
	wg.Wait()
	db.Crash()

	db2 := r.open(t, true)
	t.Cleanup(func() { db2.Close() })
	for w, id := range ids {
		want := uint64((w+1)*100 + 9)
		if err := db2.View(context.Background(), func(tx *Tx) error {
			return tx.Read(id, func(buf page.Buf) error {
				if got := binary.LittleEndian.Uint64(buf.Payload()); got != want {
					t.Errorf("page %d after recovery = %d, want %d", id, got, want)
				}
				return nil
			})
		}); err != nil {
			t.Fatal(err)
		}
	}
}
