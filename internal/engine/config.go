// Package engine ties the substrates together into a small transactional
// storage engine: DRAM buffer pool, optional flash cache extension,
// write-ahead log, checkpointer and restart recovery.  It plays the role
// PostgreSQL plays in the paper: the host system whose buffer manager,
// checkpoint process and recovery daemon FaCE extends.
package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/device/filedev"
	"github.com/reprolab/face/internal/face"
	"github.com/reprolab/face/internal/lock"
	"github.com/reprolab/face/internal/metrics"
	"github.com/reprolab/face/internal/obs"
)

// CachePolicy names the flash cache manager.  Policies are resolved
// through the registry in internal/face, where the paper's schemes
// register themselves at init time; the constants below name the built-in
// set but any registered name is valid.
type CachePolicy string

// Built-in cache policies.
const (
	// PolicyNone disables the flash cache (HDD-only or SSD-only setups).
	PolicyNone CachePolicy = "none"
	// PolicyFaCE is the basic mvFIFO FaCE cache.
	PolicyFaCE CachePolicy = "face"
	// PolicyFaCEGR is FaCE with Group Replacement.
	PolicyFaCEGR CachePolicy = "face+gr"
	// PolicyFaCEGSC is FaCE with Group Second Chance.
	PolicyFaCEGSC CachePolicy = "face+gsc"
	// PolicyLC is the Lazy Cleaning (LRU write-back) baseline.
	PolicyLC CachePolicy = "lc"
	// PolicyWriteThrough is the TAC-style write-through baseline.
	PolicyWriteThrough CachePolicy = "wt"
)

// UsesFlash reports whether the policy needs a flash device.
func (p CachePolicy) UsesFlash() bool { return face.PolicyUsesFlash(p.String()) }

// String returns the policy name.
func (p CachePolicy) String() string {
	if p == "" {
		return string(PolicyNone)
	}
	return string(p)
}

// ParsePolicy converts a string (as used by the CLI and the public options
// API) into a CachePolicy, rejecting names absent from the registry.
func ParsePolicy(s string) (CachePolicy, error) {
	if s == "" {
		return PolicyNone, nil
	}
	if !face.PolicyRegistered(s) {
		return "", fmt.Errorf("engine: unknown cache policy %q (registered: %s)",
			s, strings.Join(face.Policies(), ", "))
	}
	return CachePolicy(s), nil
}

// Errors returned by the engine.
var (
	ErrClosed    = errors.New("engine: database is closed")
	ErrCrashed   = errors.New("engine: database has crashed; reopen it to recover")
	ErrNoDevice  = errors.New("engine: missing required device")
	ErrTxDone    = errors.New("engine: transaction already finished")
	ErrConflict  = errors.New("engine: conflicting access: write in a read-only transaction")
	ErrTxManaged = errors.New("engine: manual Commit/Abort of a managed transaction")
)

// ErrDeadlock is returned by transactions refused by the page lock
// manager because waiting would close a cycle.  The transaction has been
// rolled back; retrying it is safe and expected.
var ErrDeadlock = lock.ErrDeadlock

// DefaultGroupCommitWindow is the group-commit collection window used
// under the page-lock scheduler when Config.GroupCommitWindow is zero.
const DefaultGroupCommitWindow = 200 * time.Microsecond

// Config describes a database instance.
type Config struct {
	// DataDev holds the database pages (a disk array in most experiments,
	// a flash SSD in the SSD-only configuration).
	DataDev device.Dev
	// LogDev holds the write-ahead log.
	LogDev device.Dev
	// FlashDev holds the flash cache; required when Policy uses flash.
	FlashDev device.Dev

	// Dir, when non-empty, opens the database on persistent file-backed
	// devices inside the directory (data.db, wal.log, flash.cache) instead
	// of caller-supplied simulated devices; DataDev/LogDev/FlashDev must
	// then be nil.  Reopening a directory whose data file already exists
	// automatically runs crash recovery, so kill-and-reopen is the normal
	// restart path.  The engine owns the files and closes them on
	// Close/Crash.
	Dir string
	// NoFsync disables the fsync durability barrier on file-backed
	// devices: faster, but a host crash can lose acknowledged commits (a
	// process crash cannot).  Ignored without Dir.
	NoFsync bool
	// FileWorkers is the data file's positioned-I/O worker pool width,
	// reported as the device's Parallelism (0 = DefaultFileWorkers).
	FileWorkers int
	// FileDataBlocks/FileLogBlocks/FileFlashBlocks override the logical
	// capacities of the device files in 4 KiB blocks (0 = generous sparse
	// defaults; the flash file is sized from FlashFrames).
	FileDataBlocks  int64
	FileLogBlocks   int64
	FileFlashBlocks int64

	// BufferPages is the DRAM buffer pool capacity in pages.
	BufferPages int
	// BufferShards is the number of independently locked shards the DRAM
	// buffer pool is striped over, so concurrent transactions hitting
	// different pages never share a pool mutex.  Zero derives the count
	// from GOMAXPROCS; 1 reproduces the historical single-mutex global-LRU
	// pool.  The count is clamped so every shard holds at least one page.
	BufferShards int
	// CacheStripes is the number of independently locked stripes the
	// flash cache's lookup structures (page directory, in-transit map) are
	// split over, so cache probes for different pages never contend with
	// each other or with an in-flight group write.  Zero derives the count
	// from GOMAXPROCS; 1 reproduces the historical single-mutex lookup
	// path.  Policies without striped structures (lc, wt) ignore it.
	CacheStripes int

	// Policy selects the flash cache scheme.
	Policy CachePolicy
	// FlashFrames is the flash cache capacity in page frames.
	FlashFrames int
	// GroupSize overrides the replacement batch size for the FaCE group
	// optimizations (default face.DefaultGroupSize).
	GroupSize int
	// SegmentEntries overrides the persistent metadata segment size.
	SegmentEntries int
	// CleanThreshold is the LC lazy-cleaner dirty fraction threshold.
	CleanThreshold float64

	// AsyncIODepth enables the asynchronous group-write and destage
	// pipeline for mvFIFO policies: evicted pages are staged into a
	// bounded ring of this many pages and written to flash by a background
	// group writer, so DRAM eviction no longer waits on flash I/O.  Zero
	// keeps the synchronous path.  Negative values select the default
	// depth.
	AsyncIODepth int
	// IOWriters is the number of destager workers writing cold dirty
	// pages back to disk under async I/O (0 = 1).  More workers exploit
	// the parallelism of a striped data array.
	IOWriters int

	// PageLocks replaces the single-writer transaction scheduler with the
	// page-granularity two-phase lock manager (internal/lock): Update
	// transactions run concurrently, acquiring shared locks on the pages
	// they read and exclusive locks on the pages they write at first
	// touch, held to commit or abort.  Transactions refused by deadlock
	// detection return ErrDeadlock and should be retried.  Commit-time log
	// forces from concurrent writers are batched by the WAL's group-commit
	// protocol.
	PageLocks bool
	// MaxWriters caps the number of concurrently admitted Update
	// transactions under PageLocks (0 = unlimited).  A bound keeps lock
	// contention and DRAM pin pressure proportionate to small buffer
	// pools.
	MaxWriters int
	// GroupCommitWindow is the leader's collection window for batching
	// commit-time log forces under PageLocks: zero selects
	// DefaultGroupCommitWindow, a negative value disables batching.  It
	// is ignored without PageLocks, where commits cannot overlap.
	GroupCommitWindow time.Duration
	// WalSegments selects the WAL front end: zero runs the lock-free
	// commit pipeline with the default log-buffer geometry, 1 selects the
	// historical mutex path (every append serializes on one lock; kept as
	// the ablation baseline), and values above 1 run the pipeline with
	// that many log buffer segments.
	WalSegments int

	// CheckpointEvery triggers a database checkpoint whenever this much
	// simulated time has passed since the previous one.  Zero disables
	// periodic checkpoints.
	CheckpointEvery time.Duration

	// Model is the CPU/overlap model used to derive elapsed simulated
	// time.  The zero value uses metrics.DefaultModel.
	Model metrics.Model

	// DisableObs turns the observability layer off entirely: no
	// histograms are allocated, commit-path tracing reduces to nil
	// checks, and Metrics() returns nil.  Off by default because the
	// measured overhead is small (see AblationObservability).
	DisableObs bool
	// Obs, when non-nil, is the metrics registry the engine registers
	// its histograms and counters into, letting an embedder (faced)
	// share one registry across the engine and the server.  Nil
	// allocates a private registry.  Ignored with DisableObs.
	Obs *obs.Registry
	// SlowTxThreshold enables the slow-transaction log: every committed
	// write transaction whose wall-clock latency reaches the threshold
	// emits a one-line per-phase breakdown through Logf.  Zero disables
	// the log; tracing itself stays on.  The span tracer reuses the same
	// threshold as its slow-trace pin bar.
	SlowTxThreshold time.Duration
	// Logf receives slow-transaction log lines (default log.Printf).
	Logf func(format string, args ...any)

	// DisableTracing turns off the request-scoped span tracer while
	// keeping the aggregate observability layer: no trace journal is
	// allocated, Tracer() returns nil, and the per-transaction span
	// recording reduces to nil checks.  Implied by DisableObs (the
	// tracer lives inside the observability layer).
	DisableTracing bool
	// TraceCapacity overrides the journal ring capacities (pinned and
	// sampled traces each get one ring of this many slots; 0 = the
	// trace package default).
	TraceCapacity int
	// TraceSampleEvery keeps one in every N unpinned traces in the
	// sampled ring (0 = default, negative disables sampling).
	TraceSampleEvery int

	// Recover runs crash recovery during Open.  Set it when reopening a
	// database after Crash; leave it false for a freshly initialised set
	// of devices.
	Recover bool
}

// DefaultFileWorkers is the data file's worker pool width when Config
// leaves FileWorkers at zero.
const DefaultFileWorkers = 4

// openFileDevices opens (creating if necessary) the file-backed device set
// of cfg.Dir and installs it into the device fields.  The returned set's
// Existed flag tells the caller whether the directory held an initialised
// database, in which case it runs crash recovery.
func (c *Config) openFileDevices() (*filedev.Set, error) {
	if c.DataDev != nil || c.LogDev != nil || c.FlashDev != nil {
		return nil, fmt.Errorf("engine: Dir and explicit devices are mutually exclusive")
	}
	workers := c.FileWorkers
	if workers <= 0 {
		workers = DefaultFileWorkers
	}
	flashBlocks := c.FileFlashBlocks
	if flashBlocks <= 0 && c.Policy.UsesFlash() {
		// A WithDir caller supplies no devices, so the flash file must be
		// sizeable from the configuration; point them at the missing
		// option rather than failing later with a confusing ErrNoDevice.
		if c.FlashFrames < 1 {
			return nil, fmt.Errorf("engine: policy %s on file-backed devices needs FlashFrames (or FileFlashBlocks) to size %s", c.Policy, filedev.FlashFile)
		}
		flashBlocks = face.FlashDeviceBlocks(c.FlashFrames, c.SegmentEntries) + face.FlashDeviceSlack
	}
	set, err := filedev.OpenSet(c.Dir, filedev.SetConfig{
		DataBlocks:  c.FileDataBlocks,
		LogBlocks:   c.FileLogBlocks,
		FlashBlocks: flashBlocks,
		Workers:     workers,
		NoFsync:     c.NoFsync,
	})
	if err != nil {
		return nil, err
	}
	// Under FaCE the flash cache is part of the persistent database: after
	// a checkpoint the only durable copy of a page may live in
	// flash.cache.  Reopening with a policy that ignores the flash file
	// would silently serve stale pre-checkpoint images from data.db, so
	// an existing non-empty cache file demands a flash policy.
	if set.Existed && !c.Policy.UsesFlash() {
		if fi, statErr := os.Stat(filepath.Join(c.Dir, filedev.FlashFile)); statErr == nil && fi.Size() > 0 {
			set.Close()
			return nil, fmt.Errorf("engine: %s holds a non-empty %s but policy %s does not use flash; reopen with the original flash policy (or delete the cache file only if the database was closed cleanly)",
				c.Dir, filedev.FlashFile, c.Policy)
		}
	}
	c.DataDev = set.Data
	c.LogDev = set.Log
	if set.Flash != nil {
		c.FlashDev = set.Flash
	}
	return set, nil
}

func (c *Config) validate() error {
	if c.DataDev == nil {
		return fmt.Errorf("%w: DataDev", ErrNoDevice)
	}
	if c.LogDev == nil {
		return fmt.Errorf("%w: LogDev", ErrNoDevice)
	}
	if c.BufferPages < 1 {
		return fmt.Errorf("engine: BufferPages must be at least 1")
	}
	if c.BufferShards < 0 {
		return fmt.Errorf("engine: BufferShards must not be negative")
	}
	if c.CacheStripes < 0 {
		return fmt.Errorf("engine: CacheStripes must not be negative")
	}
	if _, err := ParsePolicy(string(c.Policy)); err != nil {
		return err
	}
	if c.MaxWriters < 0 {
		return fmt.Errorf("engine: MaxWriters must not be negative")
	}
	if c.WalSegments < 0 {
		return fmt.Errorf("engine: WalSegments must not be negative")
	}
	if c.Policy.UsesFlash() {
		if c.FlashDev == nil {
			return fmt.Errorf("%w: FlashDev (policy %s)", ErrNoDevice, c.Policy)
		}
		if c.FlashFrames < 1 {
			return fmt.Errorf("engine: FlashFrames must be at least 1 for policy %s", c.Policy)
		}
	}
	return nil
}

// DefaultShards derives the shard/stripe count used when Config leaves
// BufferShards or CacheStripes at zero: the smallest power of two at or
// above GOMAXPROCS, capped at 64.  A power of two keeps the capacity split
// even and the cap bounds per-shard bookkeeping on very wide machines.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	s := 1
	for s < n {
		s <<= 1
	}
	return s
}

// resolveStriping fills in the derived shard and stripe counts so the rest
// of the engine (and its Snapshot) sees the effective values.
func (c *Config) resolveStriping() {
	if c.BufferShards == 0 {
		c.BufferShards = DefaultShards()
	}
	if c.BufferShards > c.BufferPages {
		c.BufferShards = c.BufferPages
	}
	if c.CacheStripes == 0 {
		c.CacheStripes = DefaultShards()
	}
}

// buildCache constructs the flash cache manager for the configured policy
// through the registry; policies without a flash cache yield (nil, nil).
// With AsyncIODepth set, the manager is wrapped in the asynchronous
// group-write and destage pipeline.
func (c *Config) buildCache(diskWrite face.DiskWriteFunc, pull face.PullFunc) (face.Extension, error) {
	dataDev := c.DataDev
	ext, err := face.NewPolicy(c.Policy.String(), face.PolicyParams{
		Dev:            c.FlashDev,
		Frames:         c.FlashFrames,
		GroupSize:      c.GroupSize,
		SegmentEntries: c.SegmentEntries,
		Stripes:        c.CacheStripes,
		CleanThreshold: c.CleanThreshold,
		DiskWrite:      diskWrite,
		DiskSync:       func() error { return device.Sync(dataDev) },
		Pull:           pull,
	})
	if err != nil || ext == nil || c.AsyncIODepth == 0 {
		return ext, err
	}
	depth := c.AsyncIODepth
	if depth < 0 {
		depth = 0 // NewAsync applies the default
	}
	return face.NewAsync(ext, face.AsyncConfig{Depth: depth, Writers: c.IOWriters})
}
