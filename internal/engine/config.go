// Package engine ties the substrates together into a small transactional
// storage engine: DRAM buffer pool, optional flash cache extension,
// write-ahead log, checkpointer and restart recovery.  It plays the role
// PostgreSQL plays in the paper: the host system whose buffer manager,
// checkpoint process and recovery daemon FaCE extends.
package engine

import (
	"errors"
	"fmt"
	"time"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/face"
	"github.com/reprolab/face/internal/metrics"
)

// CachePolicy selects the flash cache manager, mirroring the schemes
// compared in the paper's evaluation.
type CachePolicy string

// Cache policies.
const (
	// PolicyNone disables the flash cache (HDD-only or SSD-only setups).
	PolicyNone CachePolicy = "none"
	// PolicyFaCE is the basic mvFIFO FaCE cache.
	PolicyFaCE CachePolicy = "face"
	// PolicyFaCEGR is FaCE with Group Replacement.
	PolicyFaCEGR CachePolicy = "face+gr"
	// PolicyFaCEGSC is FaCE with Group Second Chance.
	PolicyFaCEGSC CachePolicy = "face+gsc"
	// PolicyLC is the Lazy Cleaning (LRU write-back) baseline.
	PolicyLC CachePolicy = "lc"
	// PolicyWriteThrough is the TAC-style write-through baseline.
	PolicyWriteThrough CachePolicy = "wt"
)

// UsesFlash reports whether the policy needs a flash device.
func (p CachePolicy) UsesFlash() bool { return p != PolicyNone && p != "" }

// String returns the policy name.
func (p CachePolicy) String() string {
	if p == "" {
		return string(PolicyNone)
	}
	return string(p)
}

// ParsePolicy converts a string (as used by the CLI) into a CachePolicy.
func ParsePolicy(s string) (CachePolicy, error) {
	switch CachePolicy(s) {
	case PolicyNone, PolicyFaCE, PolicyFaCEGR, PolicyFaCEGSC, PolicyLC, PolicyWriteThrough:
		return CachePolicy(s), nil
	case "":
		return PolicyNone, nil
	default:
		return "", fmt.Errorf("engine: unknown cache policy %q", s)
	}
}

// Errors returned by the engine.
var (
	ErrClosed   = errors.New("engine: database is closed")
	ErrCrashed  = errors.New("engine: database has crashed; reopen it to recover")
	ErrNoDevice = errors.New("engine: missing required device")
	ErrTxDone   = errors.New("engine: transaction already finished")
)

// Config describes a database instance.
type Config struct {
	// DataDev holds the database pages (a disk array in most experiments,
	// a flash SSD in the SSD-only configuration).
	DataDev device.Dev
	// LogDev holds the write-ahead log.
	LogDev device.Dev
	// FlashDev holds the flash cache; required when Policy uses flash.
	FlashDev device.Dev

	// BufferPages is the DRAM buffer pool capacity in pages.
	BufferPages int

	// Policy selects the flash cache scheme.
	Policy CachePolicy
	// FlashFrames is the flash cache capacity in page frames.
	FlashFrames int
	// GroupSize overrides the replacement batch size for the FaCE group
	// optimizations (default face.DefaultGroupSize).
	GroupSize int
	// SegmentEntries overrides the persistent metadata segment size.
	SegmentEntries int
	// CleanThreshold is the LC lazy-cleaner dirty fraction threshold.
	CleanThreshold float64

	// CheckpointEvery triggers a database checkpoint whenever this much
	// simulated time has passed since the previous one.  Zero disables
	// periodic checkpoints.
	CheckpointEvery time.Duration

	// Model is the CPU/overlap model used to derive elapsed simulated
	// time.  The zero value uses metrics.DefaultModel.
	Model metrics.Model

	// Recover runs crash recovery during Open.  Set it when reopening a
	// database after Crash; leave it false for a freshly initialised set
	// of devices.
	Recover bool
}

func (c *Config) validate() error {
	if c.DataDev == nil {
		return fmt.Errorf("%w: DataDev", ErrNoDevice)
	}
	if c.LogDev == nil {
		return fmt.Errorf("%w: LogDev", ErrNoDevice)
	}
	if c.BufferPages < 1 {
		return fmt.Errorf("engine: BufferPages must be at least 1")
	}
	if c.Policy.UsesFlash() {
		if c.FlashDev == nil {
			return fmt.Errorf("%w: FlashDev (policy %s)", ErrNoDevice, c.Policy)
		}
		if c.FlashFrames < 1 {
			return fmt.Errorf("engine: FlashFrames must be at least 1 for policy %s", c.Policy)
		}
	}
	return nil
}

// buildCache constructs the flash cache manager for the configured policy.
func (c *Config) buildCache(diskWrite face.DiskWriteFunc, pull face.PullFunc) (face.Extension, error) {
	if !c.Policy.UsesFlash() {
		return nil, nil
	}
	group := c.GroupSize
	if group <= 0 {
		group = face.DefaultGroupSize
	}
	switch c.Policy {
	case PolicyFaCE:
		return face.NewMVFIFO(face.MVFIFOConfig{
			Dev: c.FlashDev, Frames: c.FlashFrames, GroupSize: 1,
			SegmentEntries: c.SegmentEntries, DiskWrite: diskWrite,
		})
	case PolicyFaCEGR:
		return face.NewMVFIFO(face.MVFIFOConfig{
			Dev: c.FlashDev, Frames: c.FlashFrames, GroupSize: group,
			SegmentEntries: c.SegmentEntries, DiskWrite: diskWrite,
		})
	case PolicyFaCEGSC:
		return face.NewMVFIFO(face.MVFIFOConfig{
			Dev: c.FlashDev, Frames: c.FlashFrames, GroupSize: group, SecondChance: true,
			SegmentEntries: c.SegmentEntries, DiskWrite: diskWrite, Pull: pull,
		})
	case PolicyLC:
		return face.NewLC(face.LCConfig{
			Dev: c.FlashDev, Frames: c.FlashFrames, DiskWrite: diskWrite,
			CleanThreshold: c.CleanThreshold,
		})
	case PolicyWriteThrough:
		return face.NewLC(face.LCConfig{
			Dev: c.FlashDev, Frames: c.FlashFrames, DiskWrite: diskWrite,
			WriteThrough: true,
		})
	default:
		return nil, fmt.Errorf("engine: unknown cache policy %q", c.Policy)
	}
}
