package engine

import (
	"context"
	"errors"
	"time"
)

// This file is the transaction scheduler: bolt-style closure transactions
// with two concurrency regimes.
//
// Single-writer (the default): View transactions share the read side of
// txMu and run in parallel; Update transactions take the write side and
// run exclusively.  No page locks are needed — exclusion is global.
//
// Page locks (Config.PageLocks): both View and Update transactions hold
// the read side of txMu (which then only fences lifecycle operations:
// Checkpoint, Close, Crash, Tick take the write side) and isolation moves
// to the page-granularity lock manager.  Transactions lock pages at first
// touch — shared for Read, exclusive for Modify and Alloc — and hold them
// to commit or abort (strict 2PL), so the schedule stays serializable and
// concurrent writers feed the flash pipeline from multiple cores.  A
// transaction refused by deadlock detection is rolled back and returns
// ErrDeadlock; callers retry it.  Commit-time log forces of concurrent
// writers are batched by the WAL's group-commit protocol.
//
// The context is checked at the transaction boundaries — before the
// transaction begins and again before it commits — so a cancelled context
// never commits; under page locks it also bounds lock waits, unblocking a
// queued transaction mid-closure.
//
// With observability enabled the scheduler also drives the commit-path
// phase trace (obs.go): Update starts the trace before it waits for
// admission, the transaction's own hooks charge lock, buffer, WAL and
// force waits to their phases, and runManaged attributes the remainder of
// the closure's wall time to the closure phase.

// View runs fn in a read-only transaction.  Any number of View
// transactions run concurrently with each other.  The transaction is
// managed: fn must not call Commit or Abort, and any error it returns is
// propagated after rollback.  Writes inside fn fail with ErrConflict.
// Under Config.PageLocks a View acquires shared page locks as it reads
// and can therefore return ErrDeadlock; retrying is safe.
func (db *DB) View(ctx context.Context, fn func(*Tx) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if db.obs != nil {
		t0 := time.Now()
		defer func() { db.obs.view.Observe(time.Since(t0)) }()
	}
	db.txMu.RLock()
	defer db.txMu.RUnlock()
	return db.runManaged(ctx, true, nil, fn)
}

// Update runs fn in a read-write transaction.  If fn returns nil the
// transaction is committed (with a commit-time log force); if fn returns
// an error or the context is cancelled, the transaction is rolled back and
// the page images it changed are restored.
//
// Under the default scheduler Update transactions are serialized with each
// other and exclusive with every View.  Under Config.PageLocks they run
// concurrently, isolated by page locks, and may return ErrDeadlock after
// rollback; retrying the closure is safe and expected.
func (db *DB) Update(ctx context.Context, fn func(*Tx) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var tr *txTrace
	if db.obs != nil {
		tr = &txTrace{start: time.Now()}
		// A request trace arriving through the context gets the engine's
		// phase spans attached; without one the engine starts (and later
		// finishes) a trace of its own, so embedded deployments feed the
		// journal too.
		tr.span = traceFrom(ctx)
		if tr.span == nil {
			tr.span = db.obs.tracer.Start(0, "update")
			tr.own = tr.span != nil
		}
		defer db.obs.finishOwn(tr)
	}
	if db.locks == nil {
		// Single-writer: waiting for the exclusive scheduler lock is this
		// regime's admission wait.
		db.txMu.Lock()
		if tr != nil {
			tr.charge(phaseAdmission, tr.start, time.Since(tr.start), 0, "single-writer")
		}
		defer db.txMu.Unlock()
		return db.runManaged(ctx, false, tr, fn)
	}
	db.txMu.RLock()
	defer db.txMu.RUnlock()
	if db.writerSem != nil {
		select {
		case db.writerSem <- struct{}{}:
			if tr != nil {
				tr.charge(phaseAdmission, tr.start, time.Since(tr.start), 0, "writer-sem")
			}
			defer func() { <-db.writerSem }()
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// Register as a committer so the WAL's group-commit leader knows how
	// many concurrent commit forces it may collect.
	db.log.AddCommitter(1)
	defer db.log.AddCommitter(-1)
	return db.runManaged(ctx, false, tr, fn)
}

// runManaged executes fn in a managed transaction under whichever side of
// the scheduler lock the caller holds.  A non-nil tr carries the phase
// trace Update started before admission.
func (db *DB) runManaged(ctx context.Context, readonly bool, tr *txTrace, fn func(*Tx) error) error {
	tx, err := db.beginTx(ctx, readonly)
	if err != nil {
		return err
	}
	tx.tr = tr
	tx.managed = true
	defer func() {
		// Safety net: roll back if fn panicked past the paths below.
		if !tx.done {
			tx.abort()
		}
	}()
	var fnStart time.Time
	if tr != nil {
		fnStart = time.Now()
	}
	if err := fn(tx); err != nil {
		if aerr := tx.abort(); aerr != nil {
			return errors.Join(err, aerr)
		}
		return err
	}
	if tr != nil {
		// The closure phase is fn's wall time net of the engine waits its
		// page operations already charged (lock, buffer, WAL appends) —
		// user code plus anything untraced.  Clamped at zero so clock
		// skew between the measurements never produces a negative phase.
		inner := tr.phase[phaseLockWait] + tr.phase[phaseBuffer] + tr.phase[phaseWalAppend]
		if c := time.Since(fnStart) - inner; c > 0 {
			tr.charge(phaseClosure, fnStart, c, 0, "")
		}
	}
	if err := ctx.Err(); err != nil {
		if aerr := tx.abort(); aerr != nil {
			return errors.Join(err, aerr)
		}
		return err
	}
	return tx.commit()
}
