package engine

import (
	"context"
	"errors"
)

// This file is the transaction scheduler: bolt-style closure transactions
// with multi-reader/single-writer concurrency.  View transactions share a
// read lock and run in parallel; Update transactions take the write lock
// and run exclusively.  The layers below tolerate that parallelism: the
// DRAM buffer pool latches frames during fetch and eviction I/O, and the
// cache managers, WAL and devices serialize internally.
//
// The context is checked at the transaction boundaries — before the
// transaction begins and again before it commits — so a cancelled context
// never commits; it does not interrupt a closure mid-flight.

// View runs fn in a read-only transaction.  Any number of View
// transactions run concurrently with each other.  The transaction is
// managed: fn must not call Commit or Abort, and any error it returns is
// propagated after rollback.  Writes inside fn fail with ErrConflict.
func (db *DB) View(ctx context.Context, fn func(*Tx) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	db.txMu.RLock()
	defer db.txMu.RUnlock()
	return db.runManaged(ctx, true, fn)
}

// Update runs fn in a read-write transaction.  Update transactions are
// serialized with each other and exclusive with every View.  If fn returns
// nil the transaction is committed (with a commit-time log force); if fn
// returns an error or the context is cancelled, the transaction is rolled
// back and the page images it changed are restored.
func (db *DB) Update(ctx context.Context, fn func(*Tx) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	db.txMu.Lock()
	defer db.txMu.Unlock()
	return db.runManaged(ctx, false, fn)
}

// runManaged executes fn in a managed transaction under whichever side of
// the scheduler lock the caller holds.
func (db *DB) runManaged(ctx context.Context, readonly bool, fn func(*Tx) error) error {
	tx, err := db.beginTx(readonly)
	if err != nil {
		return err
	}
	tx.managed = true
	defer func() {
		// Safety net: roll back if fn panicked past the paths below.
		if !tx.done {
			tx.abort()
		}
	}()
	if err := fn(tx); err != nil {
		if aerr := tx.abort(); aerr != nil {
			return errors.Join(err, aerr)
		}
		return err
	}
	if err := ctx.Err(); err != nil {
		if aerr := tx.abort(); aerr != nil {
			return errors.Join(err, aerr)
		}
		return err
	}
	return tx.commit()
}
