package engine

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/reprolab/face/internal/face"
	"github.com/reprolab/face/internal/obs"
	"github.com/reprolab/face/internal/obs/trace"
	"github.com/reprolab/face/internal/wal"
)

// This file is the engine's observability layer: wall-clock phase tracing
// on the commit path, latency histograms, and scrape-time counters for
// every substrate (buffer pool, WAL, lock manager, flash cache pipeline).
//
// The layer is optional (Config.DisableObs) and its absence costs one nil
// check per instrumentation site: a disabled database carries a nil
// *dbObs, traced transactions carry a nil *txTrace, and every recording
// method no-ops on a nil receiver.

// Commit-path phases.  Each is a disjoint wall-time window inside one
// Update transaction, so their sum never exceeds the transaction's total
// latency:
//
//	admission    waiting to be admitted (writer semaphore, or the
//	             single-writer scheduler's exclusive lock)
//	lock_wait    blocked in the page lock manager
//	buffer       pinning pages (DRAM hits, misses, eviction stalls)
//	wal_append   reserving and copying log records
//	durable_wait the commit-time log force (group-commit park included)
//	closure      the transaction closure's own time net of the engine
//	             phases above (user code + everything untraced)
const (
	phaseAdmission = iota
	phaseLockWait
	phaseBuffer
	phaseWalAppend
	phaseDurable
	phaseClosure
	numPhases
)

var phaseNames = [numPhases]string{
	"admission", "lock_wait", "buffer", "wal_append", "durable_wait", "closure",
}

// txTrace accumulates per-phase wall time for one write transaction.  A
// nil trace disables tracing for its transaction.
type txTrace struct {
	start time.Time
	phase [numPhases]time.Duration
	// span is the request-scoped trace the phases also record into as
	// real spans (nil when the request is untraced or tracing is off).
	span *trace.Trace
	// own marks a span the engine started itself (no request context
	// carried one); the scheduler finishes it after commit or abort.
	own bool
}

// charge adds d to phase p and, when the transaction rides a
// request-scoped trace, records the occurrence as a span with its page
// and note annotations.  The caller computes d under its own nil guard,
// so this helper reads no clocks.
func (tr *txTrace) charge(p int, t0 time.Time, d time.Duration, pg uint64, note string) {
	tr.phase[p] += d
	if tr.span != nil {
		tr.span.Span(phaseNames[p], t0, d, pg, note)
	}
}

// traceCtxKey carries a *trace.Trace through a request context into
// Update, where the engine attaches its phase spans to it.
type traceCtxKey struct{}

// WithTrace returns a context carrying the request-scoped trace; the
// engine's Update attaches its commit-path spans to it.  A nil trace
// returns ctx unchanged.
func WithTrace(ctx context.Context, tr *trace.Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// traceFrom extracts the request trace, if any.
func traceFrom(ctx context.Context) *trace.Trace {
	tr, _ := ctx.Value(traceCtxKey{}).(*trace.Trace)
	return tr
}

// dbObs holds the engine's registered metrics and the slow-transaction
// log configuration.  A nil *dbObs disables the whole layer.
type dbObs struct {
	reg *obs.Registry

	txTotal *obs.Histogram
	view    *obs.Histogram
	phases  [numPhases]*obs.Histogram

	slowTx        *obs.Counter
	slowThreshold time.Duration
	logf          func(string, ...any)

	// tracer owns the span journal and flight recorder (nil with
	// Config.DisableTracing).
	tracer *trace.Tracer
}

// newDBObs builds the engine's metric set in cfg.Obs (or a private
// registry when the caller supplied none).
func newDBObs(cfg *Config) *dbObs {
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	o := &dbObs{
		reg:           reg,
		txTotal:       reg.Histogram("face_tx_total_seconds"),
		view:          reg.Histogram("face_view_seconds"),
		slowTx:        reg.Counter("face_slow_tx_total"),
		slowThreshold: cfg.SlowTxThreshold,
		logf:          cfg.Logf,
	}
	if o.logf == nil {
		o.logf = log.Printf
	}
	for i := range o.phases {
		o.phases[i] = reg.Histogram(`face_tx_phase_seconds{phase="` + phaseNames[i] + `"}`)
	}
	if !cfg.DisableTracing {
		o.tracer = trace.New(trace.Config{
			Capacity:    cfg.TraceCapacity,
			SampleEvery: cfg.TraceSampleEvery,
			SlowTx:      cfg.SlowTxThreshold,
		})
	}
	return o
}

// event records a flight-recorder lifecycle entry (open, recovery
// phases, checkpoint, close).  Nil-safe, so cold-path call sites need
// no guards of their own.
func (o *dbObs) event(format string, args ...any) {
	if o == nil || o.tracer == nil {
		return
	}
	o.tracer.Event(fmt.Sprintf(format, args...))
}

// finishOwn seals a span the engine started itself (an Update whose
// context carried no request trace), handing it to the tracer's
// tail-retention policy.  Request-owned spans are finished by the
// server instead.
func (o *dbObs) finishOwn(tr *txTrace) {
	if o == nil || o.tracer == nil || tr == nil || !tr.own {
		return
	}
	o.tracer.Finish(tr.span)
}

// recordCommit folds a committed write transaction's trace into the phase
// histograms and emits the slow-transaction log line for outliers.
func (o *dbObs) recordCommit(id wal.TxID, tr *txTrace) {
	if o == nil || tr == nil {
		return
	}
	total := time.Since(tr.start)
	// A traced commit leaves its trace ID as the exemplar on the latency
	// bucket it lands in, so the histogram's tail links back to a
	// concrete trace in the journal.
	o.txTotal.ObserveExemplar(total, uint64(tr.span.ID()))
	for i, h := range o.phases {
		h.Observe(tr.phase[i])
	}
	if o.slowThreshold > 0 && total >= o.slowThreshold {
		o.slowTx.Add(1)
		o.logf("obs: slow tx id=%d trace=%s total=%v admission=%v lock=%v buffer=%v wal=%v durable=%v closure=%v",
			id, tr.span.ID(), total,
			tr.phase[phaseAdmission], tr.phase[phaseLockWait], tr.phase[phaseBuffer],
			tr.phase[phaseWalAppend], tr.phase[phaseDurable], tr.phase[phaseClosure])
	}
}

// phasesSnapshot captures the phase histograms for engine.Snapshot.
func (o *dbObs) phasesSnapshot() obs.TxPhases {
	if o == nil {
		return obs.TxPhases{}
	}
	return obs.TxPhases{
		Total:       o.txTotal.Snapshot(),
		Admission:   o.phases[phaseAdmission].Snapshot(),
		LockWait:    o.phases[phaseLockWait].Snapshot(),
		Buffer:      o.phases[phaseBuffer].Snapshot(),
		WalAppend:   o.phases[phaseWalAppend].Snapshot(),
		DurableWait: o.phases[phaseDurable].Snapshot(),
		Closure:     o.phases[phaseClosure].Snapshot(),
	}
}

// registerMetrics exposes each substrate's existing counters as
// scrape-time callback metrics, so /metrics shows the whole stack without
// adding a single write to any hot path.  Called once at the end of Open.
func (db *DB) registerMetrics() {
	if db.obs == nil {
		return
	}
	reg := db.obs.reg
	reg.CounterFunc("face_committed_total", db.Committed)
	if t := db.obs.tracer; t != nil {
		reg.CounterFunc("face_trace_started_total", func() int64 { return t.Stats().Started })
		reg.CounterFunc("face_trace_completed_total", func() int64 { return t.Stats().Completed })
		reg.CounterFunc("face_trace_pinned_total", func() int64 { return t.Stats().Pinned })
		reg.CounterFunc("face_trace_sampled_total", func() int64 { return t.Stats().Sampled })
	}
	reg.CounterFunc("face_aborted_total", func() int64 {
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.aborted
	})
	reg.CounterFunc("face_checkpoints_total", db.Checkpoints)

	// Buffer pool.
	reg.CounterFunc("face_pool_hits_total", func() int64 { return db.pool.Stats().Hits })
	reg.CounterFunc("face_pool_misses_total", func() int64 { return db.pool.Stats().Misses })
	reg.CounterFunc("face_pool_evictions_total", func() int64 { return db.pool.Stats().Evictions })
	reg.CounterFunc("face_pool_pin_waits_total", func() int64 { return db.pool.Stats().PinWaits })

	// WAL commit pipeline.
	reg.CounterFunc("face_wal_appends_total", func() int64 { return db.log.Stats().Appends })
	reg.CounterFunc("face_wal_forces_total", func() int64 { return db.log.Stats().Forces })
	reg.CounterFunc("face_wal_reserve_stalls_total", func() int64 { return db.log.Stats().ReserveStalls })
	reg.CounterFunc("face_wal_syncs_total", func() int64 { return db.log.Stats().Syncs })

	// Page lock manager.
	if db.locks != nil {
		reg.CounterFunc("face_lock_waits_total", func() int64 { return db.locks.Stats().Waits })
		reg.CounterFunc("face_lock_deadlocks_total", func() int64 { return db.locks.Stats().Deadlocks })
	}

	// Flash cache and its async I/O pipeline.
	if db.cache != nil {
		reg.CounterFunc("face_cache_lookups_total", func() int64 { return db.cache.Stats().Lookups })
		reg.CounterFunc("face_cache_hits_total", func() int64 { return db.cache.Stats().Hits })
		reg.CounterFunc("face_cache_flash_writes_total", func() int64 { return db.cache.Stats().FlashPageWrites })
	}
	if p, ok := db.cache.(face.PipelineReporter); ok {
		reg.CounterFunc("face_iosched_staged_total", func() int64 { return p.PipelineStats().Staged })
		reg.CounterFunc("face_iosched_stalls_total", func() int64 { return p.PipelineStats().Stalls })
		reg.CounterFunc("face_iosched_destage_writes_total", func() int64 { return p.PipelineStats().DestageWrites })
	}
}

// Metrics returns the registry holding the engine's histograms and
// counters (nil when observability is disabled).  faced serves it at
// /metrics; embedders can render it with obs.Registry.WritePrometheus.
func (db *DB) Metrics() *obs.Registry {
	if db.obs == nil {
		return nil
	}
	return db.obs.reg
}

// Tracer returns the span tracer owning the trace journal and flight
// recorder (nil when observability or tracing is disabled).  faced
// hands it to the server layer and serves its Dump at /debug/traces.
func (db *DB) Tracer() *trace.Tracer {
	if db.obs == nil {
		return nil
	}
	return db.obs.tracer
}
