package engine

import (
	"log"
	"time"

	"github.com/reprolab/face/internal/face"
	"github.com/reprolab/face/internal/obs"
	"github.com/reprolab/face/internal/wal"
)

// This file is the engine's observability layer: wall-clock phase tracing
// on the commit path, latency histograms, and scrape-time counters for
// every substrate (buffer pool, WAL, lock manager, flash cache pipeline).
//
// The layer is optional (Config.DisableObs) and its absence costs one nil
// check per instrumentation site: a disabled database carries a nil
// *dbObs, traced transactions carry a nil *txTrace, and every recording
// method no-ops on a nil receiver.

// Commit-path phases.  Each is a disjoint wall-time window inside one
// Update transaction, so their sum never exceeds the transaction's total
// latency:
//
//	admission    waiting to be admitted (writer semaphore, or the
//	             single-writer scheduler's exclusive lock)
//	lock_wait    blocked in the page lock manager
//	buffer       pinning pages (DRAM hits, misses, eviction stalls)
//	wal_append   reserving and copying log records
//	durable_wait the commit-time log force (group-commit park included)
//	closure      the transaction closure's own time net of the engine
//	             phases above (user code + everything untraced)
const (
	phaseAdmission = iota
	phaseLockWait
	phaseBuffer
	phaseWalAppend
	phaseDurable
	phaseClosure
	numPhases
)

var phaseNames = [numPhases]string{
	"admission", "lock_wait", "buffer", "wal_append", "durable_wait", "closure",
}

// txTrace accumulates per-phase wall time for one write transaction.  A
// nil trace disables tracing for its transaction.
type txTrace struct {
	start time.Time
	phase [numPhases]time.Duration
}

// dbObs holds the engine's registered metrics and the slow-transaction
// log configuration.  A nil *dbObs disables the whole layer.
type dbObs struct {
	reg *obs.Registry

	txTotal *obs.Histogram
	view    *obs.Histogram
	phases  [numPhases]*obs.Histogram

	slowTx        *obs.Counter
	slowThreshold time.Duration
	logf          func(string, ...any)
}

// newDBObs builds the engine's metric set in cfg.Obs (or a private
// registry when the caller supplied none).
func newDBObs(cfg *Config) *dbObs {
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	o := &dbObs{
		reg:           reg,
		txTotal:       reg.Histogram("face_tx_total_seconds"),
		view:          reg.Histogram("face_view_seconds"),
		slowTx:        reg.Counter("face_slow_tx_total"),
		slowThreshold: cfg.SlowTxThreshold,
		logf:          cfg.Logf,
	}
	if o.logf == nil {
		o.logf = log.Printf
	}
	for i := range o.phases {
		o.phases[i] = reg.Histogram(`face_tx_phase_seconds{phase="` + phaseNames[i] + `"}`)
	}
	return o
}

// recordCommit folds a committed write transaction's trace into the phase
// histograms and emits the slow-transaction log line for outliers.
func (o *dbObs) recordCommit(id wal.TxID, tr *txTrace) {
	if o == nil || tr == nil {
		return
	}
	total := time.Since(tr.start)
	o.txTotal.Observe(total)
	for i, h := range o.phases {
		h.Observe(tr.phase[i])
	}
	if o.slowThreshold > 0 && total >= o.slowThreshold {
		o.slowTx.Add(1)
		o.logf("obs: slow tx id=%d total=%v admission=%v lock=%v buffer=%v wal=%v durable=%v closure=%v",
			id, total,
			tr.phase[phaseAdmission], tr.phase[phaseLockWait], tr.phase[phaseBuffer],
			tr.phase[phaseWalAppend], tr.phase[phaseDurable], tr.phase[phaseClosure])
	}
}

// phasesSnapshot captures the phase histograms for engine.Snapshot.
func (o *dbObs) phasesSnapshot() obs.TxPhases {
	if o == nil {
		return obs.TxPhases{}
	}
	return obs.TxPhases{
		Total:       o.txTotal.Snapshot(),
		Admission:   o.phases[phaseAdmission].Snapshot(),
		LockWait:    o.phases[phaseLockWait].Snapshot(),
		Buffer:      o.phases[phaseBuffer].Snapshot(),
		WalAppend:   o.phases[phaseWalAppend].Snapshot(),
		DurableWait: o.phases[phaseDurable].Snapshot(),
		Closure:     o.phases[phaseClosure].Snapshot(),
	}
}

// registerMetrics exposes each substrate's existing counters as
// scrape-time callback metrics, so /metrics shows the whole stack without
// adding a single write to any hot path.  Called once at the end of Open.
func (db *DB) registerMetrics() {
	if db.obs == nil {
		return
	}
	reg := db.obs.reg
	reg.CounterFunc("face_committed_total", db.Committed)
	reg.CounterFunc("face_aborted_total", func() int64 {
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.aborted
	})
	reg.CounterFunc("face_checkpoints_total", db.Checkpoints)

	// Buffer pool.
	reg.CounterFunc("face_pool_hits_total", func() int64 { return db.pool.Stats().Hits })
	reg.CounterFunc("face_pool_misses_total", func() int64 { return db.pool.Stats().Misses })
	reg.CounterFunc("face_pool_evictions_total", func() int64 { return db.pool.Stats().Evictions })
	reg.CounterFunc("face_pool_pin_waits_total", func() int64 { return db.pool.Stats().PinWaits })

	// WAL commit pipeline.
	reg.CounterFunc("face_wal_appends_total", func() int64 { return db.log.Stats().Appends })
	reg.CounterFunc("face_wal_forces_total", func() int64 { return db.log.Stats().Forces })
	reg.CounterFunc("face_wal_reserve_stalls_total", func() int64 { return db.log.Stats().ReserveStalls })
	reg.CounterFunc("face_wal_syncs_total", func() int64 { return db.log.Stats().Syncs })

	// Page lock manager.
	if db.locks != nil {
		reg.CounterFunc("face_lock_waits_total", func() int64 { return db.locks.Stats().Waits })
		reg.CounterFunc("face_lock_deadlocks_total", func() int64 { return db.locks.Stats().Deadlocks })
	}

	// Flash cache and its async I/O pipeline.
	if db.cache != nil {
		reg.CounterFunc("face_cache_lookups_total", func() int64 { return db.cache.Stats().Lookups })
		reg.CounterFunc("face_cache_hits_total", func() int64 { return db.cache.Stats().Hits })
		reg.CounterFunc("face_cache_flash_writes_total", func() int64 { return db.cache.Stats().FlashPageWrites })
	}
	if p, ok := db.cache.(face.PipelineReporter); ok {
		reg.CounterFunc("face_iosched_staged_total", func() int64 { return p.PipelineStats().Staged })
		reg.CounterFunc("face_iosched_stalls_total", func() int64 { return p.PipelineStats().Stalls })
		reg.CounterFunc("face_iosched_destage_writes_total", func() int64 { return p.PipelineStats().DestageWrites })
	}
}

// Metrics returns the registry holding the engine's histograms and
// counters (nil when observability is disabled).  faced serves it at
// /metrics; embedders can render it with obs.Registry.WritePrometheus.
func (db *DB) Metrics() *obs.Registry {
	if db.obs == nil {
		return nil
	}
	return db.obs.reg
}
