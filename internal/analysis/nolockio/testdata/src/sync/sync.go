// Package sync is a minimal stand-in for the standard library package;
// the analyzer keys on the package path and method names.
package sync

// A Mutex is an exclusive lock.
type Mutex struct{}

// Lock acquires the mutex.
func (m *Mutex) Lock() {}

// Unlock releases the mutex.
func (m *Mutex) Unlock() {}

// A RWMutex is a reader/writer lock.
type RWMutex struct{}

// Lock acquires the write lock.
func (m *RWMutex) Lock() {}

// Unlock releases the write lock.
func (m *RWMutex) Unlock() {}

// RLock acquires a read lock.
func (m *RWMutex) RLock() {}

// RUnlock releases a read lock.
func (m *RWMutex) RUnlock() {}
