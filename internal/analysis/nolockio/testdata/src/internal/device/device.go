// Package device is a minimal stand-in for the repository's device
// package; any call into it counts as I/O for the nolockio analyzer.
package device

// A Device is a block device.
type Device struct{}

// ReadAt reads from the device.
func (d *Device) ReadAt(p []byte, off int64) (int, error) { return 0, nil }

// WriteAt writes to the device.
func (d *Device) WriteAt(p []byte, off int64) (int, error) { return 0, nil }

// Sync flushes the device write cache.
func (d *Device) Sync() error { return nil }

// Stats is an in-memory accessor, not I/O.
func (d *Device) Stats() int64 { return 0 }
