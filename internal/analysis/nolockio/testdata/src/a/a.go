// Golden cases for the nolockio analyzer.
package a

import (
	"internal/device"
	"sync"
)

// Cache pairs a stripe mutex with a backing device; the two-lock
// protocol requires releasing mu before any device call.
type Cache struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	dev *device.Device
}

func (c *Cache) directBad() {
	c.mu.Lock()
	c.dev.Sync() // want `device I/O \(Sync\) while c\.mu is locked`
	c.mu.Unlock()
}

func (c *Cache) deferBad() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.dev.WriteAt(nil, 0) // want `device I/O \(WriteAt\) while c\.mu is locked`
	return err
}

func (c *Cache) writeLockBad() {
	c.rw.Lock()
	c.dev.Sync() // want `device I/O \(Sync\) while c\.rw is locked`
	c.rw.Unlock()
}

func (c *Cache) branchBad(dirty bool) {
	c.mu.Lock()
	if dirty {
		c.dev.Sync() // want `device I/O \(Sync\) while c\.mu is locked`
	}
	c.mu.Unlock()
	c.dev.Sync()
}

// flush performs device I/O directly, so callers holding a lock are
// flagged transitively.
func (c *Cache) flush() error {
	return c.dev.Sync()
}

func (c *Cache) transitiveBad() {
	c.mu.Lock()
	c.flush() // want `a call that performs device I/O \(flush\) while c\.mu is locked`
	c.mu.Unlock()
}

// twoHops reaches the device through flush.
func (c *Cache) twoHops() error {
	return c.flush()
}

func (c *Cache) transitiveTwoBad() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.twoHops() // want `a call that reaches device I/O via flush \(twoHops\) while c\.mu is locked`
}

// The forms below produce no diagnostics.

func (c *Cache) releaseFirst() {
	c.mu.Lock()
	c.mu.Unlock()
	c.dev.Sync()
}

func (c *Cache) accessorFine() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dev.Stats() // in-memory accessor, not blocking I/O
}

func (c *Cache) rlockTolerated() {
	c.rw.RLock()
	c.dev.Sync() // shared holders tolerate concurrent I/O by design
	c.rw.RUnlock()
}

func (c *Cache) closureRunsLater() func() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() error { return c.dev.Sync() }
}

func (c *Cache) allowSite() {
	c.mu.Lock()
	//lint:allow facevet/nolockio shutdown fence; no concurrent readers remain when it runs
	c.dev.Sync()
	c.mu.Unlock()
}
