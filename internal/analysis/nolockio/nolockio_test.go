package nolockio_test

import (
	"testing"

	"github.com/reprolab/face/internal/analysis/analysistest"
	"github.com/reprolab/face/internal/analysis/nolockio"
)

func TestNoLockIO(t *testing.T) {
	analysistest.Run(t, "testdata/src", nolockio.Analyzer, "a")
}
