// Package nolockio defines an analyzer that reports device I/O performed
// while a mutex acquired in the same function is still held.
//
// The cache's two-lock protocol (PR 2) and the WAL's reservation pipeline
// (PR 7) both exist to keep microsecond-scale critical sections away from
// millisecond-scale device writes: a stripe or manager mutex is released
// before ReadAt/WriteAt/Sync and reacquired afterward to revalidate.  One
// forgotten Unlock turns a concurrent cache into a serial one — silently,
// since the code stays correct.  This analyzer mechanizes the protocol:
// inside any function that acquires an exclusive sync.Mutex/sync.RWMutex
// Lock, no statement may reach internal/device I/O until the lock is
// released.
//
// Reachability is package-local and transitive: a function that calls
// one of internal/device's blocking entry points (ReadAt, WriteAt,
// ReadRun, WriteRun, Sync) is an I/O function, and so is anything in the
// same package that calls one.  Pure accessors on a device — Stats,
// NumBlocks and friends — are cheap snapshots and are exempt.  Lock tracking is flow-approximate — a
// linear walk per function where Lock() adds the receiver expression to
// the held set, Unlock() removes it, and `defer Unlock()` pins it for the
// rest of the body; branch bodies are walked with copies of the set.
// RLock is deliberately ignored (shared holders tolerate concurrent I/O
// by design — the scheduler's txMu.RLock spans whole transactions), as
// are goroutine bodies and deferred calls.  Cold paths that hold a lock
// across I/O on purpose (startup, shutdown, checkpoint fences, the
// compat-mode WAL) carry //lint:allow justifications.
package nolockio

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/reprolab/face/internal/analysis"
)

// Analyzer flags device I/O reached while a locally-acquired exclusive
// mutex is held.
var Analyzer = &analysis.Analyzer{
	Name: "nolockio",
	Doc:  "no path may reach internal/device I/O while holding a mutex acquired in the enclosing function",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// The device package itself is where I/O lives; the rule governs its
	// callers.
	if isDevicePath(pass.Pkg.Path()) {
		return nil
	}

	io := buildIOSet(pass)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &walker{pass: pass, io: io}
			w.block(fn.Body, map[string]bool{})
		}
	}
	return nil
}

func isDevicePath(path string) bool {
	return path == "internal/device" || strings.HasSuffix(path, "/internal/device")
}

// ioNames are the device entry points that block on the medium.  Other
// exported functions in internal/device (Stats, NumBlocks, Profile, ...)
// are in-memory accessors.
var ioNames = map[string]bool{
	"ReadAt":   true,
	"WriteAt":  true,
	"ReadRun":  true,
	"WriteRun": true,
	"Sync":     true,
}

// isDeviceIO reports whether fn is a blocking internal/device call.
func isDeviceIO(fn *types.Func) bool {
	return isDevicePath(fn.Pkg().Path()) && ioNames[fn.Name()]
}

// ioReason describes why a function counts as I/O, for diagnostics.
type ioReason struct {
	direct bool   // calls internal/device itself
	via    string // same-package callee it reaches I/O through
}

// buildIOSet computes the package-local transitive closure of "reaches
// internal/device": seed with functions that call the device package
// directly, then propagate through same-package calls to fixpoint.
func buildIOSet(pass *analysis.Pass) map[*types.Func]ioReason {
	// calls[f] = same-package functions f calls directly.
	calls := make(map[*types.Func][]*types.Func)
	io := make(map[*types.Func]ioReason)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			caller, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.FuncLit, *ast.GoStmt:
					// A closure or spawned goroutine does its I/O on
					// some later stack; constructing it here is not I/O.
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass, call)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				switch {
				case isDeviceIO(callee):
					io[caller] = ioReason{direct: true}
				case callee.Pkg() == pass.Pkg:
					calls[caller] = append(calls[caller], callee)
				}
				return true
			})
		}
	}

	for changed := true; changed; {
		changed = false
		for caller, callees := range calls {
			if _, ok := io[caller]; ok {
				continue
			}
			for _, callee := range callees {
				if _, ok := io[callee]; ok {
					io[caller] = ioReason{via: callee.Name()}
					changed = true
					break
				}
			}
		}
	}
	return io
}

// calleeFunc resolves the statically-known callee of call, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// walker performs the flow-approximate held-set walk over one function
// body.  held maps a mutex receiver expression (by source text) to true
// while an exclusive Lock on it is outstanding.
type walker struct {
	pass *analysis.Pass
	io   map[*types.Func]ioReason
}

func (w *walker) block(b *ast.BlockStmt, held map[string]bool) {
	for _, stmt := range b.List {
		w.stmt(stmt, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op := lockOp(w.pass, s.X); op != "" {
			if op == "Lock" {
				held[key] = true
			} else {
				delete(held, key)
			}
			return
		}
		w.exprs(held, s.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at return: the lock stays held for
		// the remainder of the linear walk, which is exactly what the
		// held set already says, so there is nothing to do.  Other
		// deferred calls run after the body — outside this walk's scope.
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the holder; only its
		// argument expressions are evaluated here.
		w.exprs(held, s.Call.Args...)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.exprs(held, s.Cond)
		w.block(s.Body, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.exprs(held, s.Cond)
		}
		inner := copyHeld(held)
		w.block(s.Body, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.exprs(held, s.X)
		w.block(s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.exprs(held, s.Tag)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.exprs(held, cc.List...)
				inner := copyHeld(held)
				for _, st := range cc.Body {
					w.stmt(st, inner)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, st := range cc.Body {
					w.stmt(st, inner)
				}
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				inner := copyHeld(held)
				if cc.Comm != nil {
					w.stmt(cc.Comm, inner)
				}
				for _, st := range cc.Body {
					w.stmt(st, inner)
				}
			}
		}
	case *ast.BlockStmt:
		w.block(s, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.AssignStmt:
		w.exprs(held, s.Rhs...)
		w.exprs(held, s.Lhs...)
	case *ast.ReturnStmt:
		w.exprs(held, s.Results...)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(held, vs.Values...)
				}
			}
		}
	case *ast.SendStmt:
		w.exprs(held, s.Chan, s.Value)
	case *ast.IncDecStmt:
		w.exprs(held, s.X)
	}
}

// exprs reports I/O calls inside the expressions when a lock is held.
// Function literals are not descended: they run later, under whatever
// locks hold then.
func (w *walker) exprs(held map[string]bool, exprs ...ast.Expr) {
	if len(held) == 0 {
		return
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(w.pass, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			var how string
			switch {
			case isDeviceIO(callee):
				how = "device I/O"
			case callee.Pkg() == w.pass.Pkg:
				if r, ok := w.io[callee]; ok {
					if r.direct {
						how = "a call that performs device I/O"
					} else {
						how = "a call that reaches device I/O via " + r.via
					}
				}
			}
			if how == "" {
				return true
			}
			w.pass.Reportf(call.Pos(), "%s (%s) while %s is locked; release the mutex before touching the device", how, callee.Name(), heldNames(held))
			return true
		})
	}
}

// lockOp recognizes m.Lock()/m.Unlock() on a sync.Mutex or sync.RWMutex
// (RLock/RUnlock are intentionally not tracked) and returns the receiver
// expression's source text plus the operation.
func lockOp(pass *analysis.Pass, e ast.Expr) (key, op string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	if fn.Name() != "Lock" && fn.Name() != "Unlock" {
		return "", ""
	}
	return types.ExprString(sel.X), fn.Name()
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	// Deterministic order for diagnostics.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}
