package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives.
//
// A finding that is intentional — compat-mode WAL writes under the
// append mutex, lifecycle fences that hold the scheduler lock across a
// final flush — is silenced in place with
//
//	//lint:allow facevet/<analyzer> <justification>
//
// on the flagged line or on the line directly above it.  The
// justification is mandatory: a directive without one is itself reported
// (as facevet/allow), so every suppression in the tree documents why the
// rule does not apply.  One directive may name several analyzers,
// comma-separated.

const allowPrefix = "lint:allow "

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos       token.Pos
	line      int
	analyzers []string // names without the facevet/ prefix
	justified bool
}

// parseAllowDirectives extracts the directives from every comment in the
// files.  Malformed analyzer references (no facevet/ prefix) are kept
// with an empty name so they surface as unjustified rather than being
// silently ignored.
func parseAllowDirectives(fset *token.FileSet, files []*ast.File) []allowDirective {
	var out []allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments are not directives
				}
				text, ok = strings.CutPrefix(text, allowPrefix)
				if !ok {
					continue
				}
				names, justification, _ := strings.Cut(strings.TrimSpace(text), " ")
				d := allowDirective{
					pos:       c.Pos(),
					line:      fset.Position(c.Pos()).Line,
					justified: strings.TrimSpace(justification) != "",
				}
				for _, n := range strings.Split(names, ",") {
					n = strings.TrimPrefix(strings.TrimSpace(n), "facevet/")
					d.analyzers = append(d.analyzers, n)
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applyAllowDirectives removes the diagnostics covered by a justified
// directive (same line, or the line directly below the directive) and
// appends a facevet/allow diagnostic for each directive that lacks a
// justification.
func applyAllowDirectives(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	directives := parseAllowDirectives(fset, files)
	if len(directives) == 0 {
		return diags
	}

	// (file, line, analyzer) -> allowed
	type key struct {
		file     string
		line     int
		analyzer string
	}
	allowed := make(map[key]bool)
	for _, d := range directives {
		if !d.justified {
			continue
		}
		file := fset.Position(d.pos).Filename
		for _, name := range d.analyzers {
			allowed[key{file, d.line, name}] = true
			allowed[key{file, d.line + 1, name}] = true
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if allowed[key{pos.Filename, pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	for _, d := range directives {
		if !d.justified {
			kept = append(kept, Diagnostic{
				Analyzer: "allow",
				Pos:      d.pos,
				Message:  "lint:allow directive needs a justification after the analyzer name",
			})
		}
	}
	return kept
}
