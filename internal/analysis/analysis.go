// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built on the standard library alone so
// the repository's invariant checkers (cmd/facevet) need no module
// downloads.  It provides:
//
//   - the Analyzer/Pass/Diagnostic API the checkers are written against
//     (analysis.go),
//   - a per-package driver that runs a set of analyzers and applies the
//     //lint:allow suppression directives (check.go, allow.go),
//   - the "unitchecker" protocol spoken by `go vet -vettool=...`
//     (unitchecker.go), and
//   - a standalone loader over `go list -export` for running the suite
//     without go vet (standalone.go).
//
// The API mirrors x/tools deliberately — Name/Doc/Run, Pass with
// Fset/Files/Pkg/TypesInfo, Reportf — so the analyzers port verbatim if
// the real dependency ever becomes available.  Facts, Requires and
// ResultOf are omitted: every facevet analyzer is package-local.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check.  Name identifies the analyzer in
// diagnostics and in //lint:allow directives (as facevet/<name>); Doc is
// the one-paragraph description printed by -help; Run performs the check
// on a single package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// A Diagnostic is one finding, attributed to the analyzer that produced
// it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, message string) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  message,
	})
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}
