package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// The unitchecker protocol spoken by `go vet -vettool=<tool>`.
//
// The go command probes the tool twice — `tool -V=full` for a version
// line it folds into the build cache key, and `tool -flags` for a JSON
// description of the flags it accepts — then invokes it once per package
// with a single argument, the path to a JSON config file describing the
// type-checked unit: file lists, the import map, and the export-data
// file for every dependency.  The tool typechecks the unit from source
// against those export files, runs its analyzers, prints diagnostics to
// stderr, and signals findings with exit code 2.  Units marked VetxOnly
// are dependencies loaded only for their facts; facevet's analyzers are
// package-local, so those exit immediately after touching the output
// file the go command expects.

// vetConfig mirrors the JSON config written by the go command for each
// vet unit (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standalone                bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool built from a set of analyzers.
// It dispatches on the command line: the go command's -V/-flags probes,
// a single *.cfg argument (one vet unit), or package patterns for the
// standalone `go list`-driven mode.  It does not return.
func Main(analyzers []*Analyzer) {
	progname := filepath.Base(os.Args[0])
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: %s [-<analyzer>...] [package pattern...]\n", progname)
		fmt.Fprintf(fs.Output(), "       go vet -vettool=$(which %s) ./...\n\nanalyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	vFlag := fs.String("V", "", "print version and exit (the go command probes with -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the analyzer flags in JSON and exit")
	selected := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		selected[a.Name] = fs.Bool(a.Name, false, "run only the named analyzers: "+a.Doc)
	}
	fs.Parse(os.Args[1:])

	switch {
	case *vFlag != "":
		printVersion(progname, *vFlag)
		os.Exit(0)
	case *flagsFlag:
		printFlags(analyzers)
		os.Exit(0)
	}

	enabled := analyzers
	var picked []*Analyzer
	for _, a := range analyzers {
		if *selected[a.Name] {
			picked = append(picked, a)
		}
	}
	if picked != nil {
		enabled = picked
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0], enabled))
	}
	os.Exit(runStandalone(enabled, args))
}

// printVersion emits the version line the go command hashes into its
// build cache key.  The format mirrors x/tools' unitchecker: name,
// "version devel", and a buildID derived from the tool binary itself so
// rebuilding the tool invalidates cached vet results.
func printVersion(progname, mode string) {
	if mode != "full" {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", progname, h.Sum(nil))
}

// printFlags describes the tool's flags to the go command, which uses
// the list to validate pass-through vet flags.
func printFlags(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range analyzers {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(out)
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
}

// runUnit analyzes one vet unit described by a go-command config file
// and returns the process exit code.
func runUnit(cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The go command expects the output file to exist even when there is
	// nothing to say; an empty file records "no facts".
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	diags, err := typecheckAndRun(fset, files, cfg.ImportPath, cfg.GoVersion,
		importer.ForCompiler(fset, compiler, lookup), analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return report(fset, diags)
}

func parseFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// typecheckAndRun checks the parsed files as package path against imp
// and runs the analyzers over the resulting unit.
func typecheckAndRun(fset *token.FileSet, files []*ast.File, path, goVersion string, imp types.Importer, analyzers []*Analyzer) ([]Diagnostic, error) {
	info := NewInfo()
	conf := types.Config{Importer: imp, GoVersion: goVersion}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", path, err)
	}
	unit := &Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	return Check(unit, analyzers)
}

// report prints the diagnostics in the canonical file:line:col form and
// returns the exit code go vet expects: 2 when there are findings.
func report(fset *token.FileSet, diags []Diagnostic) int {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [facevet/%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
