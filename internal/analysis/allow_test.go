package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// TestAllowDirectives covers the suppression machinery itself: a
// justified directive swallows the diagnostic on its line (and the line
// below), an unjustified one suppresses nothing and is reported in its
// own right, and a directive naming a different analyzer leaves the
// finding alone.
func TestAllowDirectives(t *testing.T) {
	const src = `package p

var x = 1

func unjustified() int {
	//lint:allow facevet/fake
	return x
}

func justified() int {
	//lint:allow facevet/fake covered on purpose
	return x
}

func sameLine() int {
	return x //lint:allow facevet/fake inline form
}

func wrongAnalyzer() int {
	//lint:allow facevet/other this names a different check
	return x
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	unit := &Unit{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info}

	fake := &Analyzer{
		Name: "fake",
		Doc:  "flags every return statement",
		Run: func(p *Pass) error {
			for _, file := range p.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					if r, ok := n.(*ast.ReturnStmt); ok {
						p.Report(r.Pos(), "return flagged")
					}
					return true
				})
			}
			return nil
		},
	}

	diags, err := Check(unit, []*Analyzer{fake})
	if err != nil {
		t.Fatal(err)
	}

	byLine := make(map[int][]string)
	for _, d := range diags {
		line := fset.Position(d.Pos).Line
		byLine[line] = append(byLine[line], d.Analyzer)
	}

	// Line 6: the unjustified directive is itself reported.
	if got := byLine[6]; len(got) != 1 || got[0] != "allow" {
		t.Errorf("line 6: want [allow] diagnostic for the unjustified directive, got %v", got)
	}
	// Line 7: the unjustified directive suppresses nothing.
	if got := byLine[7]; len(got) != 1 || got[0] != "fake" {
		t.Errorf("line 7: want the fake finding to survive an unjustified directive, got %v", got)
	}
	// Line 12: the justified directive suppresses the finding below it.
	if got := byLine[12]; len(got) != 0 {
		t.Errorf("line 12: want suppression under a justified directive, got %v", got)
	}
	// Line 16: the same-line form suppresses too.
	if got := byLine[16]; len(got) != 0 {
		t.Errorf("line 16: want suppression from a same-line directive, got %v", got)
	}
	// Line 21: a directive for another analyzer does not apply.
	if got := byLine[21]; len(got) != 1 || got[0] != "fake" {
		t.Errorf("line 21: want the fake finding to survive a directive naming another analyzer, got %v", got)
	}
	if len(diags) != 3 {
		t.Errorf("want 3 surviving diagnostics, got %d: %v", len(diags), diags)
	}
}
