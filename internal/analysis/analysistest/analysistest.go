// Package analysistest runs an analyzer over golden packages under a
// testdata directory and checks its diagnostics against // want
// comments, in the style of golang.org/x/tools/go/analysis/analysistest.
//
// Layout is GOPATH-shaped: testdata/src/<importpath>/*.go.  Imports
// resolve recursively inside the same src root, so each analyzer's
// testdata carries small fake versions of the packages its rules key on
// (sync, sync/atomic, time, errors, internal/device, internal/obs) and
// the tests run hermetically — no go list, no export data, no network.
// The fakes only need the right package path and the right names; the
// analyzers match on those, never on behavior.
//
// An expectation is a comment of the form
//
//	// want "regexp" `another`
//
// on the line the diagnostic is reported at.  Every diagnostic must be
// matched by an expectation on its line and every expectation must match
// a diagnostic; leftovers in either direction fail the test.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/reprolab/face/internal/analysis"
)

// Run loads each package path from srcRoot (a testdata/src directory),
// runs the analyzer through analysis.Check — allow directives included —
// and diffs the diagnostics against the // want comments.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := newLoader(srcRoot)
	for _, path := range paths {
		unit, err := l.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := analysis.Check(unit, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("checking %s: %v", path, err)
		}
		diff(t, l.fset, unit.Files, diags)
	}
}

// loader typechecks GOPATH-shaped packages from a src root, resolving
// imports recursively from the same root.
type loader struct {
	srcRoot string
	fset    *token.FileSet
	units   map[string]*analysis.Unit
}

func newLoader(srcRoot string) *loader {
	return &loader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		units:   make(map[string]*analysis.Unit),
	}
}

// Import implements types.Importer over the src root.
func (l *loader) Import(path string) (*types.Package, error) {
	unit, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return unit.Pkg, nil
}

func (l *loader) load(path string) (*analysis.Unit, error) {
	if u, ok := l.units[path]; ok {
		return u, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	u := &analysis.Unit{Fset: l.fset, Files: files, Pkg: pkg, TypesInfo: info}
	l.units[path] = u
	return u, nil
}

// expectation is one parsed // want regexp, anchored to a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// diff matches diagnostics against want expectations and reports every
// mismatch in both directions.
func diff(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for i := range wants {
			w := &wants[i]
			if w.met || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic [%s]: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// collectWants parses the // want comments out of the files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []expectation {
	t.Helper()
	var wants []expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, pos, text) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, expectation{
						file: pos.Filename,
						line: pos.Line,
						re:   re,
						raw:  raw,
					})
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts the sequence of "double-quoted" or `backquoted`
// regexps from a want comment's payload.
func splitQuoted(t *testing.T, pos token.Position, text string) []string {
	t.Helper()
	var out []string
	rest := strings.TrimSpace(text)
	for rest != "" {
		var end int
		switch rest[0] {
		case '"':
			end = strings.Index(rest[1:], `"`)
		case '`':
			end = strings.Index(rest[1:], "`")
		default:
			t.Fatalf("%s:%d: want expectation %q must be quoted", pos.Filename, pos.Line, rest)
		}
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want expectation %q", pos.Filename, pos.Line, rest)
		}
		quoted := rest[:end+2]
		if rest[0] == '"' {
			unq, err := strconv.Unquote(quoted)
			if err != nil {
				t.Fatalf("%s:%d: bad want string %q: %v", pos.Filename, pos.Line, quoted, err)
			}
			out = append(out, unq)
		} else {
			out = append(out, quoted[1:len(quoted)-1])
		}
		rest = strings.TrimSpace(rest[end+2:])
	}
	return out
}
