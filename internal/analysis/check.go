package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Unit is one type-checked package ready for analysis: the parse trees,
// the type information and the *types.Package the checkers consult.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// NewInfo returns a types.Info with every map the analyzers need
// populated by the type checker.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Check runs the analyzers over the unit, applies the //lint:allow
// directives, and returns the surviving diagnostics sorted by position.
func Check(u *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, u.Pkg.Path(), err)
		}
		diags = append(diags, pass.diagnostics...)
	}
	diags = applyAllowDirectives(u.Fset, u.Files, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := u.Fset.Position(diags[i].Pos), u.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, nil
}
