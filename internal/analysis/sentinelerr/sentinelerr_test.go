package sentinelerr_test

import (
	"testing"

	"github.com/reprolab/face/internal/analysis/analysistest"
	"github.com/reprolab/face/internal/analysis/sentinelerr"
)

func TestSentinelErr(t *testing.T) {
	analysistest.Run(t, "testdata/src", sentinelerr.Analyzer, "a", "allowpkg")
}
