// Golden cases for the sentinelerr analyzer.
package a

import (
	"b"
	"errors"
)

// ErrDeadlock and errClosed follow the sentinel naming convention.
var ErrDeadlock = errors.New("deadlock")

var errClosed = errors.New("closed")

// NotSentinel does not match the Err*/err* convention and is exempt.
var NotSentinel = errors.New("not a conventional sentinel")

// errs has a lowercase fourth character and is exempt, like "errors".
var errs = errors.New("plural, not a sentinel")

func compareEq(err error) bool {
	return err == ErrDeadlock // want `sentinel error a\.ErrDeadlock compared with ==; use errors\.Is`
}

func compareNeq(err error) bool {
	return err != errClosed // want `sentinel error a\.errClosed compared with !=; use errors\.Is`
}

func compareReversed(err error) bool {
	return ErrDeadlock == err // want `sentinel error a\.ErrDeadlock compared with ==; use errors\.Is`
}

func compareImported(err error) bool {
	return err == b.ErrGone // want `sentinel error b\.ErrGone compared with ==; use errors\.Is`
}

func switchMatch(err error) string {
	switch err {
	case ErrDeadlock: // want `sentinel error a\.ErrDeadlock matched by switch case`
		return "deadlock"
	case nil:
		return "ok"
	}
	return "other"
}

// The fixed forms below produce no diagnostics.

func viaErrorsIs(err error) bool {
	return errors.Is(err, ErrDeadlock)
}

func nilCheck(err error) bool {
	return err == nil
}

func unconventionalName(err error) bool {
	return err == NotSentinel
}

func lowercaseFollowOn(err error) bool {
	return err == errs
}

func localShadow() bool {
	ErrDeadlock := "a local, not the sentinel"
	return ErrDeadlock == "x"
}
