// Package b exports a sentinel for the cross-package comparison cases.
package b

import "errors"

// ErrGone is a sentinel error.
var ErrGone = errors.New("gone")
