// Package errors is a minimal stand-in for the standard library package,
// just enough surface for the golden tests to typecheck hermetically.
package errors

type errorString struct{ s string }

func (e *errorString) Error() string { return e.s }

// New returns an error with the given text.
func New(text string) error { return &errorString{text} }

// Is reports whether err matches target.
func Is(err, target error) bool { return err == target }
