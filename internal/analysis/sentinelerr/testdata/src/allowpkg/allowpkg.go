// Golden cases for the //lint:allow suppression path: both identity
// comparisons below are intentional and carry a justification, so the
// analyzer stays silent.
package allowpkg

import "errors"

// ErrStop is returned verbatim by managed closures.
var ErrStop = errors.New("stop")

func identityOnPurpose(err error) bool {
	//lint:allow facevet/sentinelerr the closure returns the exact sentinel by contract; a wrapped value means the abort failed
	return err == ErrStop
}

func sameLineDirective(err error) bool {
	return err == ErrStop //lint:allow facevet/sentinelerr identity is the contract here
}
