// Package sentinelerr defines an analyzer that reports sentinel errors
// matched with == or != instead of errors.Is.
//
// A sentinel — a package-level error variable named Err* or err* — is a
// stable identity, but the value that reaches a caller frequently is not:
// fmt.Errorf("%w"), errors.Join and retry wrappers all preserve the
// sentinel for errors.Is while breaking pointer equality.  PR 4's
// deadlock-vs-rollback accounting bug came from exactly this — a
// rollback whose abort had a deadlock joined onto it slipped past an
// `err == ErrRollback` test — so the comparison form is banned outright:
// identity checks that are genuinely about the unwrapped value (there is
// one, in the TPC-C driver) carry a //lint:allow justification instead.
//
// Both explicit comparisons and switch cases over an error tag are
// flagged.  Names that do not match the sentinel convention (io.EOF) are
// left alone.
package sentinelerr

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/reprolab/face/internal/analysis"
)

// Analyzer flags ==/!= comparisons against sentinel error variables.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelerr",
	Doc:  "sentinel errors (ErrDeadlock, ErrRollback, ErrClosed, ...) must be matched with errors.Is, never == or !=",
	Run:  run,
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range [2]ast.Expr{n.X, n.Y} {
					if obj := sentinel(pass, side); obj != nil {
						pass.Reportf(n.Pos(), "sentinel error %s compared with %s; use errors.Is", objName(obj), n.Op)
						break // one report per comparison
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				tv, ok := pass.TypesInfo.Types[n.Tag]
				if !ok || tv.Type == nil || !types.Implements(tv.Type, errorType) {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if obj := sentinel(pass, e); obj != nil {
							pass.Reportf(e.Pos(), "sentinel error %s matched by switch case (an == comparison); use errors.Is", objName(obj))
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinel reports whether e names a package-level error variable
// following the Err*/err* sentinel convention, returning its object.
func sentinel(pass *analysis.Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	// Package level, not a field or local.
	if v.IsField() || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	// The sentinel convention: Err or err followed by a capitalized word
	// (ErrDeadlock, errClosed).  Requiring the fourth character to be
	// non-lowercase keeps names like "errors" out.
	name := v.Name()
	if len(name) < 4 || (name[:3] != "Err" && name[:3] != "err") ||
		(name[3] >= 'a' && name[3] <= 'z') {
		return nil
	}
	if !types.Implements(v.Type(), errorType) {
		return nil
	}
	return v
}

func objName(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}
