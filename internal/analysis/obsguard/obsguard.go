// Package obsguard defines an analyzer that keeps the engine's hot paths
// free when observability is disabled.
//
// The observability layer's contract (PR 8) is that WithObservability
// (false) reduces every instrumentation site to a nil check: no
// time.Now/time.Since, no histogram writes.  That only holds if each
// timing call sits behind a nil guard — either lexically inside an
// `if x != nil { ... }` block, or in a function that returns early on
// `x == nil` before any clock is read.  The analyzer enforces exactly
// that shape for clock reads (time.Now, time.Since), histogram
// recording calls (methods of internal/obs types), and span-tracer
// recording calls (methods of internal/obs/trace types: Start, Finish,
// Span, Pin, Event) in the hot-path packages internal/engine and
// internal/server.  Trace methods are nil-receiver no-ops, but an
// unguarded call site still evaluates its arguments — typically a
// time.Since — so the guard requirement applies to them all the same.
//
// The guard detection is lexical, not dataflow: any enclosing if whose
// condition contains a `!= nil` comparison counts, as does any earlier
// top-level `if ... == nil { return ... }` in the same function.  Cold
// paths that legitimately read the clock unconditionally carry a
// //lint:allow justification.
package obsguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/reprolab/face/internal/analysis"
)

// Analyzer flags unguarded clock reads and histogram recording on engine
// and server hot paths.
var Analyzer = &analysis.Analyzer{
	Name: "obsguard",
	Doc:  "time.Now/time.Since and histogram recording on hot paths must sit behind a nil observability guard so WithObservability(false) stays free",
	Run:  run,
}

// hotPackages are the package path suffixes the rule applies to.
var hotPackages = []string{"internal/engine", "internal/server"}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	hot := false
	for _, suffix := range hotPackages {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			hot = true
			break
		}
	}
	if !hot {
		return nil
	}
	for _, f := range pass.Files {
		// Test files stress and measure; the rule is about production
		// hot paths.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		checkFile(pass, f)
	}
	return nil
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	// stack holds the enclosing nodes of the node being visited.
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if what := timedCall(pass, call); what != "" && !guarded(pass, stack, call) {
				pass.Reportf(call.Pos(), "%s on a hot path without a nil observability guard; wrap it in an `if x != nil` block or an early `if x == nil { return }`", what)
			}
		}
		stack = append(stack, n)
		return true
	}
	ast.Inspect(f, visit)
}

// timedCall reports whether call is a clock read or a histogram
// recording, returning a description for the diagnostic (empty when it
// is neither).
func timedCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	pkg := fn.Pkg().Path()
	switch {
	case pkg == "time" && (fn.Name() == "Now" || fn.Name() == "Since"):
		return "call to time." + fn.Name()
	case isObsPath(pkg) && fn.Type().(*types.Signature).Recv() != nil:
		// Recording methods mutate a metric; read-only snapshots are
		// scrape-path and exempt.
		switch fn.Name() {
		case "Observe", "ObserveExemplar", "Add", "Set", "Inc":
			return "histogram/metric recording (" + fn.Pkg().Name() + "." + recvTypeName(fn) + "." + fn.Name() + ")"
		}
	case isTracePath(pkg) && fn.Type().(*types.Signature).Recv() != nil:
		// Span-tracer recording methods are nil-receiver no-ops, but an
		// unguarded call site still evaluates its arguments (typically a
		// time.Since); read-only journal accessors are scrape-path and
		// exempt.
		switch fn.Name() {
		case "Start", "Finish", "Span", "Pin", "Event":
			return "span tracer recording (" + fn.Pkg().Name() + "." + recvTypeName(fn) + "." + fn.Name() + ")"
		}
	}
	return ""
}

func isObsPath(path string) bool {
	return path == "internal/obs" || strings.HasSuffix(path, "/internal/obs")
}

func isTracePath(path string) bool {
	return path == "internal/obs/trace" || strings.HasSuffix(path, "/internal/obs/trace")
}

func recvTypeName(fn *types.Func) string {
	t := fn.Type().(*types.Signature).Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// guarded reports whether the call at the top of stack sits behind a nil
// observability guard.
func guarded(pass *analysis.Pass, stack []ast.Node, call *ast.CallExpr) bool {
	// An enclosing if whose condition requires something non-nil guards
	// everything in its body (sched.go: `if db.obs != nil { t0 :=
	// time.Now(); ... }`), including deferred closures declared there.
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok || !condHasNonNil(ifStmt.Cond) {
			continue
		}
		if i+1 < len(stack) && stack[i+1] == ifStmt.Body {
			return true
		}
		if within(ifStmt.Body, call) {
			return true
		}
	}
	// Otherwise the enclosing function must return early on a nil check
	// before the call (tx.go: `if tx.tr == nil { return ... }`).
	body := enclosingFuncBody(stack)
	if body == nil {
		return false
	}
	for _, stmt := range body.List {
		if stmt.End() >= call.Pos() {
			break
		}
		ifStmt, ok := stmt.(*ast.IfStmt)
		if !ok || !condHasNil(ifStmt.Cond) {
			continue
		}
		if n := len(ifStmt.Body.List); n > 0 {
			if _, ok := ifStmt.Body.List[n-1].(*ast.ReturnStmt); ok {
				return true
			}
		}
	}
	return false
}

func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn.Body
		case *ast.FuncDecl:
			return fn.Body
		}
	}
	return nil
}

func within(n ast.Node, inner ast.Node) bool {
	return n != nil && n.Pos() <= inner.Pos() && inner.End() <= n.End()
}

// condHasNonNil reports whether the condition contains an `x != nil`
// comparison; condHasNil the same for `x == nil`.
func condHasNonNil(cond ast.Expr) bool { return condHasNilCompare(cond, token.NEQ) }
func condHasNil(cond ast.Expr) bool    { return condHasNilCompare(cond, token.EQL) }

func condHasNilCompare(cond ast.Expr, op token.Token) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == op {
			if isNil(b.X) || isNil(b.Y) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
