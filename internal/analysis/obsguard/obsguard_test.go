package obsguard_test

import (
	"testing"

	"github.com/reprolab/face/internal/analysis/analysistest"
	"github.com/reprolab/face/internal/analysis/obsguard"
)

func TestObsGuard(t *testing.T) {
	analysistest.Run(t, "testdata/src", obsguard.Analyzer, "internal/engine", "coldpkg")
}
