// Package time is a minimal stand-in for the standard library package;
// the analyzer keys on the package path and function names only.
package time

// A Time is an instant.
type Time struct{}

// A Duration is an elapsed interval.
type Duration int64

// Now returns the current instant.
func Now() Time { return Time{} }

// Since returns the time elapsed since t.
func Since(t Time) Duration { return 0 }
