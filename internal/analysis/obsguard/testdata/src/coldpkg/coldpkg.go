// Package coldpkg is outside the hot-path package set, so unguarded
// clock reads are fine here.
package coldpkg

import "time"

// Timestamp reads the clock unconditionally.
func Timestamp() time.Time {
	return time.Now()
}
