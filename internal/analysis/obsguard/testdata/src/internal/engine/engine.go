// Golden cases for the obsguard analyzer: the package path ends in
// internal/engine, so every clock read and recording call here must sit
// behind a nil observability guard.
package engine

import (
	"internal/obs"
	"internal/obs/trace"
	"time"
)

// DB carries optional observability state; nil means disabled.
type DB struct {
	hist   *obs.Histogram
	ops    *obs.Counter
	tracer *trace.Tracer
	tr     *trace.Trace
}

func (db *DB) unguarded() {
	t0 := time.Now() // want `call to time\.Now on a hot path without a nil observability guard`
	_ = t0
	db.hist.Observe(1) // want `histogram/metric recording \(obs\.Histogram\.Observe\) on a hot path`
}

func (db *DB) sinceUnguarded(t0 time.Time) {
	_ = time.Since(t0) // want `call to time\.Since on a hot path`
}

func (db *DB) countUnguarded() {
	db.ops.Add(1) // want `histogram/metric recording \(obs\.Counter\.Add\) on a hot path`
}

func (db *DB) exemplarUnguarded() {
	db.hist.ObserveExemplar(1, 7) // want `histogram/metric recording \(obs\.Histogram\.ObserveExemplar\) on a hot path`
}

func (db *DB) traceUnguarded() {
	db.tr = db.tracer.Start(1, "set")      // want `span tracer recording \(trace\.Tracer\.Start\) on a hot path`
	db.tr.Span("wal_append", 0, 1, 42, "") // want `span tracer recording \(trace\.Trace\.Span\) on a hot path`
	db.tr.Pin("slow_tx", "")               // want `span tracer recording \(trace\.Trace\.Pin\) on a hot path`
	db.tracer.Finish(db.tr)                // want `span tracer recording \(trace\.Tracer\.Finish\) on a hot path`
	db.tracer.Event("open: complete")      // want `span tracer recording \(trace\.Tracer\.Event\) on a hot path`
}

// The guarded forms below produce no diagnostics.

func (db *DB) guardedBlock() {
	if db.hist != nil {
		t0 := time.Now()
		defer func() {
			db.hist.Observe(int64(time.Since(t0)))
		}()
	}
}

func (db *DB) guardedCompound(enabled bool) {
	if enabled && db.ops != nil {
		db.ops.Add(1)
	}
}

func (db *DB) earlyReturn() {
	if db.hist == nil {
		return
	}
	t0 := time.Now()
	db.hist.Observe(int64(time.Since(t0)))
}

func (db *DB) scrape() []uint64 {
	return db.hist.Snapshot() // read-only accessor, exempt
}

func (db *DB) traceGuardedBlock() {
	if db.tracer != nil {
		db.tr = db.tracer.Start(1, "set")
		t0 := time.Now()
		db.tr.Span("buffer", 0, int64(time.Since(t0)), 9, "")
	}
}

func (db *DB) traceEarlyReturn() {
	if db.tr == nil {
		return
	}
	db.tr.Pin("deadlock", "cycle")
	db.tracer.Finish(db.tr)
}

func (db *DB) traceScrape() (uint64, int64) {
	// Read-only accessors are scrape-path and exempt.
	return db.tr.ID(), db.tracer.Stats()
}

func (db *DB) coldStart() {
	//lint:allow facevet/obsguard startup path, runs once per process
	t0 := time.Now()
	_ = t0
}
