// Golden cases for the obsguard analyzer: the package path ends in
// internal/engine, so every clock read and recording call here must sit
// behind a nil observability guard.
package engine

import (
	"internal/obs"
	"time"
)

// DB carries optional observability state; nil means disabled.
type DB struct {
	hist *obs.Histogram
	ops  *obs.Counter
}

func (db *DB) unguarded() {
	t0 := time.Now() // want `call to time\.Now on a hot path without a nil observability guard`
	_ = t0
	db.hist.Observe(1) // want `histogram/metric recording \(obs\.Histogram\.Observe\) on a hot path`
}

func (db *DB) sinceUnguarded(t0 time.Time) {
	_ = time.Since(t0) // want `call to time\.Since on a hot path`
}

func (db *DB) countUnguarded() {
	db.ops.Add(1) // want `histogram/metric recording \(obs\.Counter\.Add\) on a hot path`
}

// The guarded forms below produce no diagnostics.

func (db *DB) guardedBlock() {
	if db.hist != nil {
		t0 := time.Now()
		defer func() {
			db.hist.Observe(int64(time.Since(t0)))
		}()
	}
}

func (db *DB) guardedCompound(enabled bool) {
	if enabled && db.ops != nil {
		db.ops.Add(1)
	}
}

func (db *DB) earlyReturn() {
	if db.hist == nil {
		return
	}
	t0 := time.Now()
	db.hist.Observe(int64(time.Since(t0)))
}

func (db *DB) scrape() []uint64 {
	return db.hist.Snapshot() // read-only accessor, exempt
}

func (db *DB) coldStart() {
	//lint:allow facevet/obsguard startup path, runs once per process
	t0 := time.Now()
	_ = t0
}
