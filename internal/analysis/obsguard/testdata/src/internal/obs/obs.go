// Package obs is a minimal stand-in for the repository's observability
// package; the analyzer keys on the package path and method names.
package obs

// A Histogram records latency samples.
type Histogram struct{}

// Observe records one sample.
func (h *Histogram) Observe(d int64) {}

// ObserveExemplar records one sample and remembers the trace ID.
func (h *Histogram) ObserveExemplar(d int64, traceID uint64) {}

// Snapshot is a read-only scrape-path accessor, exempt from the rule.
func (h *Histogram) Snapshot() []uint64 { return nil }

// A Counter counts events.
type Counter struct{}

// Add increments the counter.
func (c *Counter) Add(n uint64) {}
