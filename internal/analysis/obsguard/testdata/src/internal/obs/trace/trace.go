// Package trace is a minimal stand-in for the repository's span-tracer
// package; the analyzer keys on the package path and method names.
package trace

// A Tracer mints and journals traces.
type Tracer struct{}

// Start begins a trace (recording).
func (t *Tracer) Start(id uint64, kind string) *Trace { return nil }

// Finish completes a trace and applies retention (recording).
func (t *Tracer) Finish(tr *Trace) {}

// Event records a flight-recorder entry (recording).
func (t *Tracer) Event(msg string) {}

// Stats is a read-only journal accessor, exempt from the rule.
func (t *Tracer) Stats() int64 { return 0 }

// A Trace accumulates spans for one request.
type Trace struct{}

// Span records one phase span (recording).
func (tr *Trace) Span(name string, t0, d int64, page uint64, note string) {}

// Pin marks the trace for retention (recording).
func (tr *Trace) Pin(kind, detail string) {}

// ID is a read-only accessor, exempt from the rule.
func (tr *Trace) ID() uint64 { return 0 }
