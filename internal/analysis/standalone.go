package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Standalone mode: `facevet ./...` without go vet.
//
// The tool shells out to `go list -export -json -deps`, which compiles
// the requested packages and reports, for every package in the
// dependency graph, the export-data file the compiler wrote into the
// build cache.  Packages named by the patterns (DepOnly false) are then
// typechecked from source against those export files — the same
// arrangement go vet sets up through vet.cfg, assembled here by hand.

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
	Error      *struct{ Err string }
}

// runStandalone analyzes the packages matching the patterns (default
// ./...) and returns the process exit code.
func runStandalone(analyzers []*Analyzer, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// Export-data index over the whole dependency graph.
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	exit := 0
	for _, p := range pkgs {
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "%s: %s\n", p.ImportPath, p.Error.Err)
			exit = 1
			continue
		}
		fset := token.NewFileSet()
		var names []string
		for _, f := range p.GoFiles {
			names = append(names, filepath.Join(p.Dir, f))
		}
		files, err := parseFiles(fset, names)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		lookup := func(path string) (io.ReadCloser, error) {
			if canonical, ok := p.ImportMap[path]; ok {
				path = canonical
			}
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}
		diags, err := typecheckAndRun(fset, files, p.ImportPath, "",
			importer.ForCompiler(fset, "gc", lookup), analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		if code := report(fset, diags); code > exit {
			exit = code
		}
	}
	return exit
}

// goList runs `go list -export -json -deps` over the patterns and
// decodes the package stream.
func goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(out)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			cmd.Wait()
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	return pkgs, nil
}
