// Package atomicmix defines an analyzer that reports variables accessed
// both through sync/atomic and through plain loads and stores.
//
// A word that is ever touched by atomic.LoadUint64/StoreUint64/Add...
// must be touched that way everywhere: one plain read racing an atomic
// store is undefined under the memory model even though it often works
// on amd64, and it is exactly the kind of latent bug a WAL sequence
// counter or cache clock hand develops when a new code path forgets the
// discipline.  The engine's own counters use the typed atomics
// (atomic.Uint64 and friends), which make the mix impossible by
// construction; this analyzer covers the function-style API so the
// pattern stays impossible when someone reaches for atomic.AddUint64 on
// a plain field instead.
//
// The analysis is package-local and object-based: any variable whose
// address is passed to a sync/atomic function is marked, and every other
// appearance of that variable — plain read, plain write, or an escaping
// &v not fed to sync/atomic — is reported.
package atomicmix

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/reprolab/face/internal/analysis"
)

// Analyzer flags mixed atomic and non-atomic access to the same variable.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "a variable accessed via sync/atomic anywhere must be accessed via sync/atomic everywhere",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// First walk: collect the variables used atomically, keyed by their
	// types.Object so s.f and other.f (same field) unify and distinct
	// locals named alike do not.
	atomicVars := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if v := addrOperand(pass, arg); v != nil {
					atomicVars[v] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Second walk: report every other appearance of a marked variable.
	// The parent stack distinguishes `&v` handed to sync/atomic (fine)
	// from plain uses, and skips the field names of composite literals
	// (Foo{seq: 0} mentions the object without reading it).
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || !atomicVars[v] {
				return true
			}
			if use := plainUse(pass, stack); use != "" {
				pass.Reportf(id.Pos(), "%s of %s, which is accessed with sync/atomic elsewhere; use the atomic API (or the typed atomic.Uint64 family) for every access", use, v.Name())
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic function
// (the function-style API; typed-atomic methods take no address and are
// safe by construction).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range [...]string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// addrOperand returns the variable v when arg is &v or &x.f, else nil.
func addrOperand(pass *analysis.Pass, arg ast.Expr) *types.Var {
	unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || unary.Op.String() != "&" {
		return nil
	}
	var id *ast.Ident
	switch e := ast.Unparen(unary.X).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// plainUse classifies the identifier at the top of stack.  It returns a
// description of the non-atomic use ("plain read", "plain write",
// "address escape") or "" when the use is part of a sync/atomic call.
func plainUse(pass *analysis.Pass, stack []ast.Node) string {
	// stack[len-1] is the Ident itself.  Walk outward through the
	// selector/paren wrappers to the first node that determines the kind
	// of use.
	i := len(stack) - 2
	for i >= 0 {
		switch stack[i].(type) {
		case *ast.SelectorExpr, *ast.ParenExpr:
			i--
			continue
		}
		break
	}
	if i < 0 {
		return "plain read"
	}
	switch parent := stack[i].(type) {
	case *ast.UnaryExpr:
		if parent.Op.String() == "&" {
			// &v: fine when the address feeds a sync/atomic call,
			// otherwise the pointer escapes to unknown plain access.
			if i-1 >= 0 {
				if call, ok := stack[i-1].(*ast.CallExpr); ok && isAtomicCall(pass, call) {
					return ""
				}
			}
			return "address escape"
		}
		return "plain read"
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if within(lhs, stack[len(stack)-1]) {
				return "plain write"
			}
		}
		return "plain read"
	case *ast.IncDecStmt:
		return "plain write"
	case *ast.KeyValueExpr:
		// Foo{seq: 0}: the key names the field, it does not access it;
		// the composite literal itself is initialization, which is the
		// one place a plain write is conventional.  Stay quiet.
		if parent.Key == stack[len(stack)-1] ||
			(len(stack) >= 2 && parent.Key == stack[len(stack)-2]) {
			return ""
		}
		return "plain read"
	}
	return "plain read"
}

func within(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}
